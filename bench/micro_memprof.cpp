// Object-centric memory profiling microbench (DESIGN.md §15).
//
// Measures the pieces the memprof subsystem adds to the pipeline:
//   - omap.serialize / omap.parse / omap.salvage: the epoch object-map
//     format round trip and the torn-write salvage sweep, per map;
//   - resolve.object: one kObjDmiss sample resolved through the flattened
//     epoch index (the backward walk over moved objects), per sample;
//   - ingest.obj: a recorded memprof session (allocation sites, moving GC,
//     DMISS_OBJ stream) replayed into the live server, per record — gated
//     on the online per-site table staying byte-identical to the offline
//     report;
//   - ingest.pc_idle: a PC-only scenario (no object samples at all)
//     replayed into the same server build. memprof is compiled in but
//     idle; bench_gate.py holds this number within 5% of baseline, so the
//     subsystem cannot tax the PC hot path by riding along.
//
// Emits BENCH_memprof.json (harness schema). VIPROF_QUICK=1 shrinks the
// iteration counts for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "memprof/agent.hpp"
#include "memprof/object_map.hpp"
#include "memprof/report.hpp"
#include "memprof/resolve.hpp"
#include "service/client.hpp"
#include "service/scenario.hpp"
#include "service/server.hpp"
#include "support/rng.hpp"
#include "workloads/generator.hpp"

namespace {

using namespace viprof;

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

bench::BenchRecord make_record(const std::string& name, int iterations,
                               double secs, double ops) {
  bench::BenchRecord record;
  record.name = name;
  record.iterations = iterations;
  record.seconds = secs;
  record.ns_per_op = ops > 0 ? secs * 1e9 / ops : 0.0;
  return record;
}

/// A representative partial map: one epoch's worth of allocations and
/// moves for a busy VM, with the site dictionary and a death tail.
memprof::ObjectMapFile representative_map() {
  memprof::ObjectMapFile file;
  file.epoch = 17;
  support::Xoshiro256 rng(0x0b9ec7);
  hw::Address cursor = 0x6200'0000;
  for (std::uint32_t s = 0; s < 32; ++s)
    file.sites.push_back({s, "synthetic.Bench.method" + std::to_string(s) + "@42"});
  for (std::uint64_t i = 0; i < 512; ++i) {
    const std::uint64_t size = 32 + rng.below(16) * 32;
    file.objects.push_back({cursor, size, 1000 + i,
                            static_cast<std::uint32_t>(rng.below(32))});
    cursor += size;
  }
  for (std::uint64_t i = 0; i < 64; ++i)
    file.dead.push_back({500 + i, 64 + rng.below(4) * 32,
                         static_cast<std::uint32_t>(rng.below(32))});
  return file;
}

/// The leak-shaped workload of the README walkthrough, recorded with the
/// memprof agent attached: object maps per epoch plus a DMISS_OBJ stream.
struct RecordedMemprof {
  std::unique_ptr<os::Machine> machine;
  std::unique_ptr<jvm::Vm> vm;
  std::unique_ptr<core::ProfilingSession> session;
  std::unique_ptr<memprof::MemProfAgent> agent;
};

RecordedMemprof record_memprof_session(std::uint64_t samples_scale) {
  workloads::GeneratorOptions opt;
  opt.name = "memleak";
  opt.seed = 0xbe9c;
  opt.methods = 24;
  opt.alloc_intensity = 1.0;
  opt.nursery_bytes = 256 * 1024;
  opt.total_app_ops = 2'500'000 * samples_scale;
  workloads::Workload w = workloads::make_synthetic(opt);
  for (jvm::MethodInfo& m : w.program.methods) {
    m.alloc_object_bytes = 96 + 32 * (m.id % 5);
    m.alloc_object_lifetime = m.id % 3;
  }
  for (std::size_t leak : {std::size_t{2}, std::size_t{5}}) {
    w.program.methods[leak].alloc_object_bytes = 768;
    w.program.methods[leak].alloc_object_lifetime = 1'000'000;
  }
  w.vm.heap.track_objects = true;

  RecordedMemprof run;
  os::MachineConfig mcfg;
  mcfg.seed = 0xbe9cf;
  run.machine = std::make_unique<os::Machine>(mcfg);
  run.vm = std::make_unique<jvm::Vm>(*run.machine, w.vm);
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.counters = {{hw::EventKind::kGlobalPowerEvents, 90'000, true},
                     {hw::EventKind::kBsqCacheReference, 4'000, true},
                     {hw::EventKind::kObjDmiss, 1'000, true}};
  config.agent.obj_map_dir = "obj_maps";
  run.session =
      std::make_unique<core::ProfilingSession>(*run.machine, *run.vm, config);
  run.agent = std::make_unique<memprof::MemProfAgent>(*run.machine);
  run.session->attach();
  run.vm->add_listener(run.agent.get());
  run.vm->setup(w.program);
  run.session->run();
  run.session->export_archive();
  return run;
}

std::uint64_t replay_once(service::ProfileServer& server, const os::Vfs& world,
                          const std::string& id) {
  auto conn = server.connect(id);
  service::ReplayClient client(world, id, *conn,
                               service::ReplayOptions{256, nullptr, {}});
  if (!client.run()) return 0;
  server.drain();
  return 1;
}

bool run() {
  const char* quick = std::getenv("VIPROF_QUICK");
  const bool is_quick = quick != nullptr && quick[0] == '1';
  const int map_iters = is_quick ? 400 : 2'000;
  const int resolve_iters = is_quick ? 100'000 : 500'000;
  const int reps = is_quick ? 2 : 3;

  std::vector<bench::BenchRecord> records;

  // --- Object-map format round trip, per map. ---
  const memprof::ObjectMapFile map = representative_map();
  std::string blob;
  {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < map_iters; ++i) blob = map.serialize();
    const double secs = seconds_since(start);
    records.push_back(make_record("omap.serialize", map_iters, secs, map_iters));
    std::printf("  omap.serialize  %8.0f ns/map  (%zu objects)\n",
                records.back().ns_per_op, map.objects.size());
  }
  {
    std::uint64_t parsed = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < map_iters; ++i) {
      const auto file = memprof::ObjectMapFile::parse(blob);
      if (file) parsed += file->objects.size();
    }
    const double secs = seconds_since(start);
    if (parsed != static_cast<std::uint64_t>(map_iters) * map.objects.size()) {
      std::fprintf(stderr, "FAIL: strict parse rejected an intact map\n");
      return false;
    }
    records.push_back(make_record("omap.parse", map_iters, secs, map_iters));
    std::printf("  omap.parse      %8.0f ns/map\n", records.back().ns_per_op);
  }
  {
    const std::string torn = blob.substr(0, blob.size() * 2 / 3);
    std::uint64_t salvaged = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < map_iters; ++i) {
      const memprof::ObjectMapFile::Recovery r =
          memprof::ObjectMapFile::salvage(torn, map.epoch);
      salvaged += r.file.objects.size();
    }
    const double secs = seconds_since(start);
    if (salvaged == 0) {
      std::fprintf(stderr, "FAIL: salvage recovered nothing from a torn map\n");
      return false;
    }
    records.push_back(make_record("omap.salvage", map_iters, secs, map_iters));
    std::printf("  omap.salvage    %8.0f ns/map  (torn at 2/3)\n",
                records.back().ns_per_op);
  }

  // --- Sample resolution through the flattened epoch index. ---
  {
    core::CodeMapIndex index;
    support::Xoshiro256 rng(0x9e50);
    constexpr std::uint64_t kEpochs = 24;
    for (std::uint64_t e = 0; e < kEpochs; ++e) {
      memprof::ObjectMapFile f;
      f.epoch = e;
      hw::Address cursor = 0x6200'0000 + (e % 2) * 0x80'0000;
      for (std::uint64_t i = 0; i < 384; ++i) {
        const std::uint64_t size = 32 + rng.below(16) * 32;
        f.objects.push_back({cursor, size, e * 1000 + i,
                             static_cast<std::uint32_t>(rng.below(64))});
        cursor += size;
      }
      index.add(f.to_code_map());
    }
    index.prepare();

    memprof::ObjectResolveStats stats;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < resolve_iters; ++i) {
      const hw::Address addr =
          0x6200'0000 + (rng.below(2)) * 0x80'0000 + rng.below(0x3'0000);
      memprof::resolve_object(&index, addr, rng.below(kEpochs), &stats);
    }
    const double secs = seconds_since(start);
    if (stats.resolved == 0) {
      std::fprintf(stderr, "FAIL: no probe ever resolved to a site\n");
      return false;
    }
    records.push_back(
        make_record("resolve.object", resolve_iters, secs, resolve_iters));
    std::printf("  resolve.object  %8.1f ns/sample  (%.1f%% resolved, "
                "%.2f walk steps/sample)\n",
                records.back().ns_per_op,
                100.0 * static_cast<double>(stats.resolved) /
                    static_cast<double>(resolve_iters),
                static_cast<double>(stats.backward_steps) /
                    static_cast<double>(resolve_iters));
  }

  // --- Object-sample ingest: the recorded memprof session replayed into
  // the live server, answer checked against the offline report. ---
  {
    const RecordedMemprof run = record_memprof_session(1);
    const std::vector<core::VmRegistration> regs =
        run.session->registrations().all();
    const memprof::ObjectReport obj =
        memprof::build_object_report(run.machine->vfs(), "samples", regs);
    const std::string offline = memprof::render_memprof(obj.sites, obj.profile, 25);
    const std::uint64_t obj_records = obj.samples;

    double best_secs = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      service::ProfileServer server;
      const auto start = std::chrono::steady_clock::now();
      if (!replay_once(server, run.machine->vfs(), "bench-mem")) {
        std::fprintf(stderr, "FAIL: memprof replay disconnected\n");
        return false;
      }
      const double secs = seconds_since(start);
      if (rep == 0 || secs < best_secs) best_secs = secs;
      if (server.query("memprof 25") != offline) {
        std::fprintf(stderr,
                     "FAIL: online memprof table differs from offline report\n");
        return false;
      }
    }
    records.push_back(make_record("ingest.obj", reps, best_secs,
                                  static_cast<double>(obj_records)));
    std::printf("  ingest.obj      %8.0f ns/record  (%llu object samples, "
                "online == offline)\n",
                records.back().ns_per_op,
                static_cast<unsigned long long>(obj_records));
  }

  // --- The idle gate: PC-only ingest with memprof compiled in but never
  // exercised. bench_gate.py enforces <= 5% regression on this number. ---
  {
    service::ScenarioConfig config;
    config.vms = 3;
    config.samples_per_event = is_quick ? 10'000 : 40'000;
    config.epochs = 24;
    config.methods = 256;
    auto scenario = service::record_scenario(config);
    const std::uint64_t total_records = 2 * config.samples_per_event;

    double best_secs = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      service::ProfileServer server;
      const auto start = std::chrono::steady_clock::now();
      if (!replay_once(server, scenario->vfs(), "bench-idle")) {
        std::fprintf(stderr, "FAIL: idle replay disconnected\n");
        return false;
      }
      const double secs = seconds_since(start);
      if (rep == 0 || secs < best_secs) best_secs = secs;
    }
    records.push_back(make_record("ingest.pc_idle", reps, best_secs,
                                  static_cast<double>(total_records)));
    std::printf("  ingest.pc_idle  %8.0f ns/record  (memprof idle; gated at 5%%)\n",
                records.back().ns_per_op);
  }

  bench::write_bench_json("memprof", records);
  return true;
}

}  // namespace

int main() { return run() ? 0 : 1; }
