// Shared measurement harness for the paper-figure benches.
//
// Reproduces the paper's methodology (Section 4.1): each configuration is
// run 10 times, the fastest and slowest runs are discarded, and the
// remaining 8 are averaged. Per-run measurement noise and per-configuration
// alignment bias (code layout differences between profiled and unprofiled
// builds — the standard explanation for the paper's occasional apparent
// speedups) are modelled as small seeded multiplicative factors, documented
// in EXPERIMENTS.md.
//
// Set VIPROF_QUICK=1 in the environment to use 4 runs instead of 10.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/viprof.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/telemetry.hpp"
#include "vertical/vertical_profiler.hpp"
#include "workloads/common.hpp"

namespace viprof::bench {

enum class Arm : std::uint8_t {
  kBase,
  kOprofile,  // stock OProfile at `period`
  kViprof,    // VIProf at `period`
  kVertical,  // Vertical Profiling comparator (instrumentation, no sampling)
};

inline const char* to_string(Arm arm) {
  switch (arm) {
    case Arm::kBase:     return "base";
    case Arm::kOprofile: return "oprofile";
    case Arm::kViprof:   return "viprof";
    case Arm::kVertical: return "vertical";
  }
  return "?";
}

struct RunOutcome {
  hw::Cycles cycles = 0;
  core::SessionResult session;
  /// Registry snapshot taken after the run, before the machine dies.
  support::TelemetrySnapshot telemetry;
};

inline std::uint64_t mix_seed(const std::string& name, Arm arm, std::uint64_t period,
                              std::uint64_t run) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto fold = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (char c : name) fold(static_cast<std::uint64_t>(c));
  fold(static_cast<std::uint64_t>(arm));
  fold(period);
  fold(run);
  return h;
}

/// Executes one run of `workload` under `arm` and returns measured cycles.
inline RunOutcome run_once(const workloads::Workload& workload, Arm arm,
                           std::uint64_t period, std::uint64_t run_index) {
  os::MachineConfig mcfg;
  mcfg.seed = mix_seed(workload.name, arm, period, run_index);
  os::Machine machine(mcfg);

  jvm::VmConfig vm_config = workload.vm;
  vm_config.seed ^= run_index * 0x9e3779b9ULL;  // run-to-run variation
  jvm::Vm vm(machine, vm_config);

  core::SessionConfig scfg;
  switch (arm) {
    case Arm::kBase:
    case Arm::kVertical:
      scfg.mode = core::ProfilingMode::kBase;
      break;
    case Arm::kOprofile:
      scfg.mode = core::ProfilingMode::kOprofile;
      break;
    case Arm::kViprof:
      scfg.mode = core::ProfilingMode::kViprof;
      break;
  }
  if (period > 0) {
    scfg.counters = {
        {hw::EventKind::kGlobalPowerEvents, period, true},
        // The paper samples L2 misses alongside time in all profiled runs;
        // the miss period scales with the cycle period to keep both columns
        // similarly populated.
        {hw::EventKind::kBsqCacheReference, std::max<std::uint64_t>(period / 64, 200),
         true},
    };
  }

  core::ProfilingSession session(machine, vm, scfg);
  session.attach();

  vertical::VerticalProfiler vertical_profiler(machine);
  if (arm == Arm::kVertical) vm.add_listener(&vertical_profiler);

  vm.setup(workload.program);
  RunOutcome outcome;
  outcome.session = session.run();
  outcome.cycles = outcome.session.cycles;
  outcome.telemetry = machine.telemetry().snapshot();
  return outcome;
}

inline int runs_per_config() {
  const char* quick = std::getenv("VIPROF_QUICK");
  return (quick != nullptr && quick[0] == '1') ? 4 : 10;
}

/// One measured configuration, machine-readable: what the BENCH_*.json CI
/// trajectory files carry per benchmark.
struct BenchRecord {
  std::string name;        // "<workload>.<arm>[.<period>]"
  int iterations = 0;      // runs contributing to the mean
  double seconds = 0.0;    // trimmed-mean virtual seconds
  double ns_per_op = 0.0;  // seconds normalised by the workload's app ops
  support::TelemetrySnapshot telemetry;  // registry snapshot of the final run
};

/// Full measurement of one (workload, arm, period): paper methodology plus
/// the modelled noise/alignment factors, with the telemetry of the last run
/// attached for the machine-readable output.
inline BenchRecord measure(const workloads::Workload& workload, Arm arm,
                           std::uint64_t period) {
  const int runs = runs_per_config();
  // Alignment bias: fixed per configuration, ~N(0, 0.8%).
  support::Xoshiro256 align_rng(mix_seed(workload.name, arm, period, 0xa119));
  const double alignment = arm == Arm::kBase ? 0.0 : align_rng.normal(0.0, 0.008);

  BenchRecord record;
  record.name = workload.name + std::string(".") + to_string(arm);
  if (period > 0) record.name += "." + std::to_string(period);
  record.iterations = runs;

  std::uint64_t last_app_ops = 0;
  std::vector<double> seconds;
  seconds.reserve(runs);
  for (int run = 0; run < runs; ++run) {
    RunOutcome outcome = run_once(workload, arm, period, run);
    support::Xoshiro256 noise_rng(mix_seed(workload.name, arm, period, 1000 + run));
    const double noise = noise_rng.normal(0.0, 0.003);
    const double secs = static_cast<double>(outcome.cycles) /
                        workloads::kCyclesPerSecond * (1.0 + alignment + noise);
    seconds.push_back(secs);
    last_app_ops = outcome.session.vm.app_ops;
    if (run == runs - 1) record.telemetry = std::move(outcome.telemetry);
  }
  record.seconds = support::trimmed_mean_drop_extremes(std::move(seconds));
  if (last_app_ops > 0) {
    record.ns_per_op = record.seconds * 1e9 / static_cast<double>(last_app_ops);
  }
  return record;
}

/// Measured seconds for one (workload, arm, period).
inline double measure_seconds(const workloads::Workload& workload, Arm arm,
                              std::uint64_t period) {
  return measure(workload, arm, period).seconds;
}

/// Serialises records as the BENCH_*.json schema: one object per measured
/// configuration with the telemetry snapshot embedded verbatim.
inline std::string bench_json(const std::string& bench_name,
                              const std::vector<BenchRecord>& records) {
  std::string out = "{\n\"bench\": \"" + bench_name + "\",\n\"results\": [";
  bool first = true;
  for (const BenchRecord& r : records) {
    out += first ? "\n" : ",\n";
    first = false;
    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\"name\": \"%s\", \"iterations\": %d, \"seconds\": %.6f, "
                  "\"ns_per_op\": %.3f, \"telemetry\": ",
                  r.name.c_str(), r.iterations, r.seconds, r.ns_per_op);
    out += head;
    out += r.telemetry.to_json();
    out += "}";
  }
  out += "\n]\n}\n";
  return out;
}

/// Writes BENCH_<name>.json next to the running binary (the CI trajectory
/// artifact). Failure to write is reported, never fatal: the human-readable
/// tables on stdout remain the primary output.
inline void write_bench_json(const std::string& bench_name,
                             const std::vector<BenchRecord>& records) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << bench_json(bench_name, records);
  std::printf("machine-readable results written to %s\n", path.c_str());
}

}  // namespace viprof::bench
