// Shared measurement harness for the paper-figure benches.
//
// Reproduces the paper's methodology (Section 4.1): each configuration is
// run 10 times, the fastest and slowest runs are discarded, and the
// remaining 8 are averaged. Per-run measurement noise and per-configuration
// alignment bias (code layout differences between profiled and unprofiled
// builds — the standard explanation for the paper's occasional apparent
// speedups) are modelled as small seeded multiplicative factors, documented
// in EXPERIMENTS.md.
//
// Set VIPROF_QUICK=1 in the environment to use 4 runs instead of 10.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/viprof.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "vertical/vertical_profiler.hpp"
#include "workloads/common.hpp"

namespace viprof::bench {

enum class Arm : std::uint8_t {
  kBase,
  kOprofile,  // stock OProfile at `period`
  kViprof,    // VIProf at `period`
  kVertical,  // Vertical Profiling comparator (instrumentation, no sampling)
};

inline const char* to_string(Arm arm) {
  switch (arm) {
    case Arm::kBase:     return "base";
    case Arm::kOprofile: return "oprofile";
    case Arm::kViprof:   return "viprof";
    case Arm::kVertical: return "vertical";
  }
  return "?";
}

struct RunOutcome {
  hw::Cycles cycles = 0;
  core::SessionResult session;
};

inline std::uint64_t mix_seed(const std::string& name, Arm arm, std::uint64_t period,
                              std::uint64_t run) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto fold = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (char c : name) fold(static_cast<std::uint64_t>(c));
  fold(static_cast<std::uint64_t>(arm));
  fold(period);
  fold(run);
  return h;
}

/// Executes one run of `workload` under `arm` and returns measured cycles.
inline RunOutcome run_once(const workloads::Workload& workload, Arm arm,
                           std::uint64_t period, std::uint64_t run_index) {
  os::MachineConfig mcfg;
  mcfg.seed = mix_seed(workload.name, arm, period, run_index);
  os::Machine machine(mcfg);

  jvm::VmConfig vm_config = workload.vm;
  vm_config.seed ^= run_index * 0x9e3779b9ULL;  // run-to-run variation
  jvm::Vm vm(machine, vm_config);

  core::SessionConfig scfg;
  switch (arm) {
    case Arm::kBase:
    case Arm::kVertical:
      scfg.mode = core::ProfilingMode::kBase;
      break;
    case Arm::kOprofile:
      scfg.mode = core::ProfilingMode::kOprofile;
      break;
    case Arm::kViprof:
      scfg.mode = core::ProfilingMode::kViprof;
      break;
  }
  if (period > 0) {
    scfg.counters = {
        {hw::EventKind::kGlobalPowerEvents, period, true},
        // The paper samples L2 misses alongside time in all profiled runs;
        // the miss period scales with the cycle period to keep both columns
        // similarly populated.
        {hw::EventKind::kBsqCacheReference, std::max<std::uint64_t>(period / 64, 200),
         true},
    };
  }

  core::ProfilingSession session(machine, vm, scfg);
  session.attach();

  vertical::VerticalProfiler vertical_profiler(machine);
  if (arm == Arm::kVertical) vm.add_listener(&vertical_profiler);

  vm.setup(workload.program);
  RunOutcome outcome;
  outcome.session = session.run();
  outcome.cycles = outcome.session.cycles;
  return outcome;
}

inline int runs_per_config() {
  const char* quick = std::getenv("VIPROF_QUICK");
  return (quick != nullptr && quick[0] == '1') ? 4 : 10;
}

/// Measured seconds for one (workload, arm, period): paper methodology plus
/// the modelled noise/alignment factors.
inline double measure_seconds(const workloads::Workload& workload, Arm arm,
                              std::uint64_t period) {
  const int runs = runs_per_config();
  // Alignment bias: fixed per configuration, ~N(0, 0.8%).
  support::Xoshiro256 align_rng(mix_seed(workload.name, arm, period, 0xa119));
  const double alignment = arm == Arm::kBase ? 0.0 : align_rng.normal(0.0, 0.008);

  std::vector<double> seconds;
  seconds.reserve(runs);
  for (int run = 0; run < runs; ++run) {
    const RunOutcome outcome = run_once(workload, arm, period, run);
    support::Xoshiro256 noise_rng(mix_seed(workload.name, arm, period, 1000 + run));
    const double noise = noise_rng.normal(0.0, 0.003);
    const double secs = static_cast<double>(outcome.cycles) /
                        workloads::kCyclesPerSecond * (1.0 + alignment + noise);
    seconds.push_back(secs);
  }
  return support::trimmed_mean_drop_extremes(std::move(seconds));
}

}  // namespace viprof::bench
