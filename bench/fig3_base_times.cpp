// Figure 3 reproduction: base execution time (seconds) for the evaluated
// benchmarks, no profiling or VM agents running.
//
// Paper values: pseudojbb 31, JVM98 (average) 5.74, antlr 8.7, bloat 28.5,
// fop 3.2, hsqldb 43, pmd 16.3, xalan 22.2 (ps is not listed; our model
// assumes 12 s — see EXPERIMENTS.md).
#include <cstdio>

#include "bench/harness.hpp"
#include "support/format.hpp"

int main() {
  using namespace viprof;

  std::printf("=== Figure 3: base execution time in seconds ===\n");
  std::printf("(virtual seconds at the workload calibration constant; paper\n");
  std::printf(" values from Fig. 3 for comparison)\n\n");

  support::TextTable table({"Benchmark", "Measured (s)", "Paper (s)", "Ratio"});
  double measured_sum = 0.0;
  double paper_sum = 0.0;
  int paper_rows = 0;
  std::vector<bench::BenchRecord> records;
  for (const workloads::Workload& w : workloads::figure2_suite()) {
    bench::BenchRecord record = bench::measure(w, bench::Arm::kBase, 0);
    const double secs = record.seconds;
    records.push_back(std::move(record));
    measured_sum += secs;
    std::string paper = "n/a";
    std::string ratio = "n/a";
    if (w.paper_base_seconds > 0.0) {
      paper = support::fixed(w.paper_base_seconds, 2);
      ratio = support::fixed(secs / w.paper_base_seconds, 3);
      paper_sum += w.paper_base_seconds;
      ++paper_rows;
    }
    table.add_row({w.name, support::fixed(secs, 2), paper, ratio});
    std::fflush(stdout);
  }
  table.add_row({"Average", support::fixed(measured_sum / 9.0, 2),
                 support::fixed(paper_sum / paper_rows, 2), ""});
  std::printf("%s\n", table.render().c_str());
  bench::write_bench_json("fig3_base_times", records);
  return 0;
}
