// Figure 1 reproduction: the VIProf vs stock-OProfile profile of the DaCapo
// `ps` benchmark, sampling GLOBAL_POWER_EVENTS (time) and
// BSQ_CACHE_REFERENCE (L2 data-cache misses).
//
// The paper's contrast: VIProf resolves Java application methods (JIT.App),
// VM-internal methods (RVM.map) and native symbols side by side, while
// stock OProfile collapses the same run into opaque "RVM.code.image
// (no symbols)" and "anon (range:...),jikesrvm" rows.
#include <cstdio>

#include "bench/harness.hpp"
#include "workloads/dacapo.hpp"

int main() {
  using namespace viprof;

  const std::vector<hw::EventKind> events = {hw::EventKind::kGlobalPowerEvents,
                                             hw::EventKind::kBsqCacheReference};

  for (const auto mode : {bench::Arm::kViprof, bench::Arm::kOprofile}) {
    const workloads::Workload w = workloads::make_dacapo("ps");
    os::MachineConfig mcfg;
    mcfg.seed = 0xf191;  // identical machine seed for both arms
    os::Machine machine(mcfg);
    jvm::Vm vm(machine, w.vm);

    core::SessionConfig scfg;
    scfg.mode = mode == bench::Arm::kViprof ? core::ProfilingMode::kViprof
                                            : core::ProfilingMode::kOprofile;
    scfg.counters = {
        {hw::EventKind::kGlobalPowerEvents, 90'000, true},
        {hw::EventKind::kBsqCacheReference, 1'400, true},
    };
    core::ProfilingSession session(machine, vm, scfg);
    session.attach();
    vm.setup(w.program);
    const core::SessionResult result = session.run();

    std::printf("=== %s profile of dacapo ps (time + L2 Dmiss) ===\n",
                mode == bench::Arm::kViprof ? "VIProf" : "OProfile");
    std::printf("run: %.1f virtual s, %llu samples (%llu dropped)\n\n",
                static_cast<double>(result.cycles) / workloads::kCyclesPerSecond,
                static_cast<unsigned long long>(result.nmi_count),
                static_cast<unsigned long long>(result.samples_dropped));
    std::printf("%s\n", session.report_text(events, 16).c_str());

    if (mode == bench::Arm::kViprof) {
      std::printf("-- cross-layer call arcs (VIProf extension, Section 4.2) --\n");
      std::printf("%s\n",
                  session.build_callgraph(hw::EventKind::kGlobalPowerEvents)
                      .render(10)
                      .c_str());
    }
  }
  return 0;
}
