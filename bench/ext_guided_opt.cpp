// Extension experiment: profile-guided cross-layer optimisation (the VIVA
// goal the paper motivates VIProf with). For each workload: one VIProf
// profiling pass produces advice; an A/B pair of unprofiled runs measures
// the benefit, split by which layer's advice is applied.
#include <cstdio>

#include "core/viprof.hpp"
#include "guidance/feedback.hpp"
#include "support/format.hpp"
#include "workloads/common.hpp"
#include "workloads/dacapo.hpp"
#include "workloads/generator.hpp"
#include "workloads/pseudojbb.hpp"

namespace {

using namespace viprof;
constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;

guidance::Advice profile_pass(const workloads::Workload& w, std::uint64_t seed) {
  os::MachineConfig mcfg;
  mcfg.seed = seed;
  os::Machine machine(mcfg);
  jvm::Vm vm(machine, w.vm);
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  core::ProfilingSession session(machine, vm, config);
  session.attach();
  vm.setup(w.program);
  session.run();
  const core::Profile profile = session.build_profile({kTime});
  return guidance::Advisor().analyze(profile, kTime);
}

hw::Cycles ab_run(const workloads::Workload& w, std::uint64_t seed,
                  const guidance::Advice* advice, bool vm_advice, bool kernel_advice) {
  os::MachineConfig mcfg;
  mcfg.seed = seed;
  os::Machine machine(mcfg);
  jvm::Vm vm(machine, w.vm);
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kBase;
  core::ProfilingSession session(machine, vm, config);
  session.attach();
  vm.setup(w.program);
  if (advice != nullptr) {
    guidance::FeedbackConfig fcfg;
    fcfg.apply_vm_advice = vm_advice;
    fcfg.apply_kernel_advice = kernel_advice;
    guidance::apply_advice(*advice, vm, machine, fcfg);
  }
  return session.run().cycles;
}

}  // namespace

int main() {
  std::printf("=== EXT: profile-guided cross-layer optimisation (A/B) ===\n\n");

  std::vector<workloads::Workload> suite;
  {
    workloads::GeneratorOptions opt;
    opt.name = "service";
    opt.seed = 404;
    opt.methods = 96;
    opt.zipf = 1.4;
    opt.total_app_ops = 90'000'000;
    opt.alloc_intensity = 0.35;
    opt.nursery_bytes = 4ull << 20;
    opt.syscall_frac = 0.07;
    suite.push_back(workloads::make_synthetic(opt));
  }
  suite.push_back(workloads::make_pseudojbb({2, 25'000}));
  suite.push_back(workloads::make_dacapo("ps"));

  support::TextTable table({"workload", "hot methods", "kernel routines",
                            "VM advice", "kernel advice", "both"});
  for (const workloads::Workload& w : suite) {
    const std::uint64_t seed = 0x6d0 + w.program.methods.size();
    const guidance::Advice advice = profile_pass(w, seed);
    const hw::Cycles base = ab_run(w, seed, nullptr, false, false);
    auto speedup = [&](bool vm_adv, bool kernel_adv) {
      const hw::Cycles c = ab_run(w, seed, &advice, vm_adv, kernel_adv);
      return support::fixed(static_cast<double>(base) / static_cast<double>(c), 4);
    };
    table.add_row({w.name, std::to_string(advice.hot_methods.size()),
                   std::to_string(advice.kernel_hotspots.size()),
                   speedup(true, false), speedup(false, true), speedup(true, true)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Speedup = base/guided; > 1.0000 is a win. VM advice skips the\n");
  std::printf("adaptive ladder's warm-up for proven-hot methods; kernel advice\n");
  std::printf("specialises the hottest syscall paths (VIVA-style). The unified\n");
  std::printf("profile is what lets one pass feed *both* layers.\n");
  return 0;
}
