// ABL4 microbenchmarks: offline resolution throughput — epoch code-map
// search (flattened index vs the legacy backward walk), RVM.map parsing,
// and an end-to-end resolve+aggregate pipeline measurement over a logged
// session. These are the post-processing costs the paper deliberately
// accepts to keep the online path cheap.
//
// Emits BENCH_resolve.json (harness schema) with the e2e throughput at
// 1/2/4 worker threads; the renders are checked byte-identical across
// thread counts before anything is written.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "core/code_map.hpp"
#include "core/resolve_pipeline.hpp"
#include "core/resolver.hpp"
#include "core/rvm_map.hpp"
#include "core/sample_log.hpp"
#include "jvm/boot_image.hpp"
#include "os/loader.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"

namespace {

using namespace viprof;

// Builds an index with `epochs` maps of `entries_per_epoch` bodies each;
// address ranges rotate so lookups exercise varying search depths.
core::CodeMapIndex build_index(std::uint64_t epochs, std::uint64_t entries_per_epoch) {
  core::CodeMapIndex index;
  for (std::uint64_t e = 0; e < epochs; ++e) {
    core::CodeMapFile file;
    file.epoch = e;
    for (std::uint64_t i = 0; i < entries_per_epoch; ++i) {
      core::CodeMapEntry entry;
      entry.address = 0x6000'0000 + ((e + i * epochs) % (entries_per_epoch * epochs)) * 0x1000;
      entry.size = 0x800;
      entry.symbol = "m" + std::to_string(e) + "_" + std::to_string(i);
      file.entries.push_back(std::move(entry));
    }
    index.add(std::move(file));
  }
  return index;
}

void BM_CodeMapResolveOwnEpoch(benchmark::State& state) {
  const auto epochs = static_cast<std::uint64_t>(state.range(0));
  core::CodeMapIndex index = build_index(epochs, 256);
  support::Xoshiro256 rng(1);
  for (auto _ : state) {
    // PC from a recent entry: hit in the newest map.
    const std::uint64_t pc = 0x6000'0000 + rng.below(256) * 0x1000 + 16;
    benchmark::DoNotOptimize(index.resolve(pc, epochs - 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodeMapResolveOwnEpoch)->Arg(4)->Arg(32)->Arg(256);

void BM_CodeMapResolveBackward(benchmark::State& state) {
  const auto epochs = static_cast<std::uint64_t>(state.range(0));
  core::CodeMapIndex index = build_index(epochs, 64);
  support::Xoshiro256 rng(2);
  for (auto _ : state) {
    // Random PC over the whole populated range: variable search depth.
    const std::uint64_t pc = 0x6000'0000 + rng.below(64 * epochs) * 0x1000 + 16;
    benchmark::DoNotOptimize(index.resolve(pc, epochs - 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodeMapResolveBackward)->Arg(4)->Arg(32)->Arg(256);

void BM_CodeMapResolveBackwardWalk(benchmark::State& state) {
  // The pre-flattening implementation, kept as the equivalence oracle:
  // walks maps newest-to-oldest per query. Same workload as ...Backward,
  // so the two series read as before/after.
  const auto epochs = static_cast<std::uint64_t>(state.range(0));
  core::CodeMapIndex index = build_index(epochs, 64);
  support::Xoshiro256 rng(2);
  for (auto _ : state) {
    const std::uint64_t pc = 0x6000'0000 + rng.below(64 * epochs) * 0x1000 + 16;
    benchmark::DoNotOptimize(index.resolve_walkback(pc, epochs - 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodeMapResolveBackwardWalk)->Arg(4)->Arg(32)->Arg(256);

void BM_CodeMapResolveMiss(benchmark::State& state) {
  core::CodeMapIndex index = build_index(static_cast<std::uint64_t>(state.range(0)), 64);
  for (auto _ : state) {
    // Unmapped PC: worst case for the walk, one probe for the flat index.
    benchmark::DoNotOptimize(index.resolve(0x9999'0000, ~0ull));
  }
}
BENCHMARK(BM_CodeMapResolveMiss)->Arg(4)->Arg(32)->Arg(256);

void BM_CodeMapSerialize(benchmark::State& state) {
  core::CodeMapFile file;
  file.epoch = 5;
  for (int i = 0; i < 512; ++i) {
    file.entries.push_back({0x6000'0000ull + i * 0x1000, 0x800,
                            "com.example.Klass" + std::to_string(i) + ".method"});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(file.serialize());
  }
}
BENCHMARK(BM_CodeMapSerialize);

void BM_CodeMapParse(benchmark::State& state) {
  core::CodeMapFile file;
  file.epoch = 5;
  for (int i = 0; i < 512; ++i) {
    file.entries.push_back({0x6000'0000ull + i * 0x1000, 0x800,
                            "com.example.Klass" + std::to_string(i) + ".method"});
  }
  const std::string blob = file.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::CodeMapFile::parse(blob));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * blob.size()));
}
BENCHMARK(BM_CodeMapParse);

void BM_RvmMapParse(benchmark::State& state) {
  // Boot-map format as BootImage emits it: "<hex-offset> <size> <name>\n".
  std::string blob;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    blob += support::hex(static_cast<std::uint64_t>(i) * 0x400) + " 1024 " +
            "com.ibm.jikesrvm.classloader.VM_Klass" + std::to_string(i) + ".method\n";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::parse_rvm_map(blob));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * blob.size()));
}
BENCHMARK(BM_RvmMapParse)->Arg(256)->Arg(4096);

// --- End-to-end resolve+aggregate throughput -------------------------------
//
// Builds a full resolver scenario (kernel, executable, libraries, boot
// image, churning JIT epochs), logs a session's worth of samples through
// the crash-consistent sample log, then measures build_profile-equivalent
// aggregation (read once, resolve every sample, hash-aggregate) at 1, 2
// and 4 worker threads. Renders must be byte-identical across counts.

struct E2eScenario {
  os::Machine machine;
  core::RegistrationTable table;
  std::unique_ptr<jvm::BootImage> boot;
  hw::Pid pid = 0;
  hw::Address exec_base = 0;
  hw::Address libc_base = 0;
  hw::Address boot_base = 0;
  hw::Address heap_base = 0;
  std::vector<core::LoggedSample> samples;
};

constexpr std::uint64_t kEpochs = 48;
constexpr std::uint64_t kMethods = 512;  // JIT method slots in the heap

std::unique_ptr<E2eScenario> build_scenario(std::size_t sample_count) {
  auto sc = std::make_unique<E2eScenario>();
  os::Process& proc = sc->machine.spawn("jikesrvm");
  sc->pid = proc.pid();

  os::Image& exec =
      sc->machine.registry().create("jikesrvm", os::ImageKind::kExecutable, 32 * 1024);
  exec.symbols().add("main", 0, 4096);
  exec.symbols().add("boot", 4096, 4096);
  sc->exec_base = sc->machine.loader().load_executable(proc, exec.id()).start;

  os::Image& libc =
      sc->machine.registry().create("libc-2.3.2.so", os::ImageKind::kSharedLib, 64 * 1024);
  libc.symbols().add("memset", 0x1000, 0x800);
  libc.symbols().add("memcpy", 0x1800, 0x800);
  sc->libc_base = sc->machine.loader().load_library(proc, libc.id()).start;

  sc->boot = std::make_unique<jvm::BootImage>(sc->machine.registry(),
                                              sc->machine.vfs(), "RVM.map");
  sc->boot_base = sc->machine.loader().map_at_anon_slot(proc, sc->boot->image()).start;
  sc->heap_base = sc->machine.loader().map_anon(proc, 8 << 20).start;

  core::VmRegistration reg;
  reg.pid = sc->pid;
  reg.heap_lo = sc->heap_base;
  reg.heap_hi = sc->heap_base + (8 << 20);
  reg.boot_base = sc->boot_base;
  reg.boot_size = sc->boot->size();
  reg.boot_map_path = "RVM.map";
  reg.jit_map_dir = "jit_maps";
  sc->table.add(reg);

  // Churning epoch maps: each epoch (re)places a rotating slice of the
  // method population, so resolution has to attribute against the newest
  // placement at-or-below the sample's epoch.
  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    core::CodeMapFile file;
    file.epoch = e;
    for (std::uint64_t i = 0; i < 96; ++i) {
      const std::uint64_t m = (e * 37 + i * 5) % kMethods;
      core::CodeMapEntry entry;
      entry.address = sc->heap_base + m * 0x1000 + (e % 4) * 0x80;
      entry.size = 0x800;
      entry.symbol = "app.K" + std::to_string(m / 16) + ".m" + std::to_string(m);
      file.entries.push_back(std::move(entry));
    }
    sc->machine.vfs().write(core::CodeMapFile::path_for("jit_maps", sc->pid, e),
                            file.serialize());
  }

  // Log the samples through the real writer/reader so the measured input
  // is exactly what a session leaves on disk.
  const hw::EventKind event = hw::EventKind::kGlobalPowerEvents;
  core::SampleLogWriter writer(sc->machine.vfs(), "bench_samples");
  support::Xoshiro256 rng(0xe2e);
  const hw::Address kernel_pc = sc->machine.kernel().routine("sys_read").base + 8;
  for (std::size_t n = 0; n < sample_count; ++n) {
    core::LoggedSample s;
    s.pid = sc->pid;
    s.epoch = rng.below(kEpochs);
    s.cycle = n;
    s.caller_pc = sc->exec_base + 16;
    const std::uint64_t kind = rng.below(100);
    if (kind < 70) {
      // JIT heap: random method slot, random offset — misses included.
      s.pc = sc->heap_base + rng.below(kMethods) * 0x1000 + rng.below(0x1000);
    } else if (kind < 80) {
      s.pc = sc->boot_base + rng.below(sc->boot->size());
    } else if (kind < 90) {
      s.pc = (kind & 1) ? sc->exec_base + rng.below(8 * 1024)
                        : sc->libc_base + 0x1000 + rng.below(0x1000);
    } else {
      s.pc = kernel_pc;
      s.mode = hw::CpuMode::kKernel;
    }
    writer.append(event, s);
    if ((n & 0xfff) == 0xfff) writer.flush();
  }
  writer.flush();
  sc->samples = core::SampleLogReader::read(sc->machine.vfs(), "bench_samples", event);
  return sc;
}

bool run_e2e() {
  const char* quick = std::getenv("VIPROF_QUICK");
  const bool is_quick = quick != nullptr && quick[0] == '1';
  const std::size_t sample_count = is_quick ? 20'000 : 100'000;
  const int reps = is_quick ? 2 : 3;
  const hw::EventKind event = hw::EventKind::kGlobalPowerEvents;

  std::printf("\n-- e2e resolve+aggregate (%zu samples, %u hardware threads) --\n",
              sample_count, std::thread::hardware_concurrency());
  std::unique_ptr<E2eScenario> sc = build_scenario(sample_count);

  core::Resolver resolver(sc->machine, sc->table, /*vm_aware=*/true);
  resolver.load();
  const auto resolve_fn = [&resolver](const core::LoggedSample& s,
                                      core::ResolveStats& stats) {
    return resolver.resolve(s, stats);
  };

  std::vector<bench::BenchRecord> records;
  std::string baseline_render;
  double baseline_secs = 0.0;
  bool identical = true;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    support::Telemetry telemetry;
    core::PipelineConfig pipeline_config{threads};
    pipeline_config.telemetry = &telemetry;
    core::ResolvePipeline pipeline(pipeline_config);
    double best_secs = 0.0;
    std::string render;
    for (int rep = 0; rep < reps; ++rep) {
      core::Profile profile;
      const auto start = std::chrono::steady_clock::now();
      pipeline.aggregate_profile(sc->samples, event, resolve_fn, profile);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (rep == 0 || elapsed.count() < best_secs) best_secs = elapsed.count();
      render = profile.render({event}, 30);
    }
    if (threads == 1) {
      baseline_render = render;
      baseline_secs = best_secs;
    } else if (render != baseline_render) {
      std::fprintf(stderr, "FAIL: %zu-thread render differs from 1-thread\n", threads);
      identical = false;
    }
    const double rate = static_cast<double>(sc->samples.size()) / best_secs;
    std::printf("  threads=%zu  %9.0f samples/sec  (%.3fs, speedup %.2fx)\n", threads,
                rate, best_secs, baseline_secs / best_secs);
    bench::BenchRecord record;
    record.name = "e2e_resolve_aggregate.t" + std::to_string(threads);
    record.iterations = reps;
    record.seconds = best_secs;
    record.ns_per_op = best_secs * 1e9 / static_cast<double>(sc->samples.size());
    record.telemetry = telemetry.snapshot();  // pool.* evidence of the timed region
    records.push_back(std::move(record));
  }
  if (!identical) return false;
  std::printf("  renders byte-identical across thread counts\n");
  bench::write_bench_json("resolve", records);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_e2e() ? 0 : 1;
}
