// ABL4 microbenchmarks: offline resolution throughput — epoch code-map
// backward search as a function of map count and churn, and RVM.map
// parsing. These are the post-processing costs the paper deliberately
// accepts to keep the online path cheap.
#include <benchmark/benchmark.h>

#include <string>

#include "core/code_map.hpp"
#include "support/rng.hpp"

namespace {

using namespace viprof;

// Builds an index with `epochs` maps of `entries_per_epoch` bodies each;
// address ranges rotate so lookups exercise varying search depths.
core::CodeMapIndex build_index(std::uint64_t epochs, std::uint64_t entries_per_epoch) {
  core::CodeMapIndex index;
  for (std::uint64_t e = 0; e < epochs; ++e) {
    core::CodeMapFile file;
    file.epoch = e;
    for (std::uint64_t i = 0; i < entries_per_epoch; ++i) {
      core::CodeMapEntry entry;
      entry.address = 0x6000'0000 + ((e + i * epochs) % (entries_per_epoch * epochs)) * 0x1000;
      entry.size = 0x800;
      entry.symbol = "m" + std::to_string(e) + "_" + std::to_string(i);
      file.entries.push_back(std::move(entry));
    }
    index.add(std::move(file));
  }
  return index;
}

void BM_CodeMapResolveOwnEpoch(benchmark::State& state) {
  const auto epochs = static_cast<std::uint64_t>(state.range(0));
  core::CodeMapIndex index = build_index(epochs, 256);
  support::Xoshiro256 rng(1);
  for (auto _ : state) {
    // PC from a recent entry: hit in the newest map.
    const std::uint64_t pc = 0x6000'0000 + rng.below(256) * 0x1000 + 16;
    benchmark::DoNotOptimize(index.resolve(pc, epochs - 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodeMapResolveOwnEpoch)->Arg(4)->Arg(32)->Arg(256);

void BM_CodeMapResolveBackward(benchmark::State& state) {
  const auto epochs = static_cast<std::uint64_t>(state.range(0));
  core::CodeMapIndex index = build_index(epochs, 64);
  support::Xoshiro256 rng(2);
  for (auto _ : state) {
    // Random PC over the whole populated range: variable search depth.
    const std::uint64_t pc = 0x6000'0000 + rng.below(64 * epochs) * 0x1000 + 16;
    benchmark::DoNotOptimize(index.resolve(pc, epochs - 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodeMapResolveBackward)->Arg(4)->Arg(32)->Arg(256);

void BM_CodeMapResolveMiss(benchmark::State& state) {
  core::CodeMapIndex index = build_index(static_cast<std::uint64_t>(state.range(0)), 64);
  for (auto _ : state) {
    // Unmapped PC: worst case, walks every map.
    benchmark::DoNotOptimize(index.resolve(0x9999'0000, ~0ull));
  }
}
BENCHMARK(BM_CodeMapResolveMiss)->Arg(4)->Arg(32)->Arg(256);

void BM_CodeMapSerialize(benchmark::State& state) {
  core::CodeMapFile file;
  file.epoch = 5;
  for (int i = 0; i < 512; ++i) {
    file.entries.push_back({0x6000'0000ull + i * 0x1000, 0x800,
                            "com.example.Klass" + std::to_string(i) + ".method"});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(file.serialize());
  }
}
BENCHMARK(BM_CodeMapSerialize);

void BM_CodeMapParse(benchmark::State& state) {
  core::CodeMapFile file;
  file.epoch = 5;
  for (int i = 0; i < 512; ++i) {
    file.entries.push_back({0x6000'0000ull + i * 0x1000, 0x800,
                            "com.example.Klass" + std::to_string(i) + ".method"});
  }
  const std::string blob = file.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::CodeMapFile::parse(blob));
  }
}
BENCHMARK(BM_CodeMapParse);

}  // namespace

BENCHMARK_MAIN();
