// Continuous-profiling service microbench: streaming ingest throughput at
// 1/2/4 ingest threads and online query latency (p50/p99) against a live
// server. Before anything is written the online aggregate is checked
// byte-identical to the offline viprof_report rendering — a bench run that
// got the wrong answer fast is a failure, not a result.
//
// Emits BENCH_service.json (harness schema). VIPROF_QUICK=1 shrinks the
// recorded scenario for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "service/client.hpp"
#include "service/scenario.hpp"
#include "service/server.hpp"

namespace {

using namespace viprof;

const std::vector<hw::EventKind> kEvents = {hw::EventKind::kGlobalPowerEvents,
                                            hw::EventKind::kBsqCacheReference};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t at = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[at];
}

bool run() {
  const char* quick = std::getenv("VIPROF_QUICK");
  const bool is_quick = quick != nullptr && quick[0] == '1';

  service::ScenarioConfig config;
  config.vms = 3;
  config.samples_per_event = is_quick ? 10'000 : 60'000;
  config.epochs = 24;
  config.methods = 256;
  const int reps = is_quick ? 2 : 3;
  const int query_rounds = is_quick ? 500 : 2'000;

  std::printf("-- service ingest + query bench (%llu samples/event, %zu vms) --\n",
              static_cast<unsigned long long>(config.samples_per_event), config.vms);
  auto scenario = service::record_scenario(config);
  const std::string offline = service::offline_render(scenario->vfs(), kEvents, 30);
  const std::uint64_t total_records =
      static_cast<std::uint64_t>(kEvents.size()) * config.samples_per_event;

  std::vector<bench::BenchRecord> records;
  double baseline_secs = 0.0;

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    double best_secs = 0.0;
    support::TelemetrySnapshot telemetry;
    for (int rep = 0; rep < reps; ++rep) {
      service::ServerConfig server_config;
      server_config.ingest_threads = threads;
      service::ProfileServer server(server_config);
      const auto start = std::chrono::steady_clock::now();
      {
        auto conn = server.connect("bench");
        service::ReplayClient client(scenario->vfs(), "bench", *conn,
                                     service::ReplayOptions{256, nullptr, {}});
        if (!client.run()) {
          std::fprintf(stderr, "FAIL: replay client disconnected\n");
          return false;
        }
      }
      server.drain();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (rep == 0 || elapsed.count() < best_secs) best_secs = elapsed.count();
      if (server.session_report("bench", 30, kEvents) != offline) {
        std::fprintf(stderr, "FAIL: online aggregate differs from offline report "
                             "(threads=%zu)\n", threads);
        return false;
      }
      // Snapshot before the server dies: the counters, lock-wait
      // histograms and queue gauges of the timed region are the record's
      // telemetry payload (empty snapshots defeat the contention evidence).
      telemetry = server.telemetry().snapshot();
    }
    if (threads == 1) baseline_secs = best_secs;
    const double rate = static_cast<double>(total_records) / best_secs;
    std::printf("  ingest threads=%zu  %9.0f records/sec  (%.3fs, speedup %.2fx)\n",
                threads, rate, best_secs, baseline_secs / best_secs);
    bench::BenchRecord record;
    record.name = "ingest.t" + std::to_string(threads);
    record.iterations = reps;
    record.seconds = best_secs;
    record.ns_per_op = best_secs * 1e9 / static_cast<double>(total_records);
    record.telemetry = std::move(telemetry);
    records.push_back(std::move(record));
  }
  std::printf("  online aggregates byte-identical to offline report\n");

  // Query latency against a fully-ingested server: the online path the
  // always-on service exists to serve.
  service::ProfileServer server;
  {
    auto conn = server.connect("bench");
    service::ReplayClient client(scenario->vfs(), "bench", *conn,
                                 service::ReplayOptions{256, nullptr, {}});
    if (!client.run()) return false;
  }
  server.drain();

  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(query_rounds));
  for (int i = 0; i < query_rounds; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const std::string out = server.query("top 20 --session bench");
    const std::chrono::duration<double, std::micro> elapsed =
        std::chrono::steady_clock::now() - start;
    if (out.rfind("error", 0) == 0) {
      std::fprintf(stderr, "FAIL: query failed: %s\n", out.c_str());
      return false;
    }
    latencies_us.push_back(elapsed.count());
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  const double p50 = percentile(latencies_us, 0.50);
  const double p99 = percentile(latencies_us, 0.99);
  std::printf("  query 'top 20' x%d  p50 %.1fus  p99 %.1fus\n", query_rounds, p50, p99);

  const support::TelemetrySnapshot query_telemetry = server.telemetry().snapshot();
  for (const auto& [name, us] : {std::pair<const char*, double>{"query.top.p50", p50},
                                 {"query.top.p99", p99}}) {
    bench::BenchRecord record;
    record.name = name;
    record.iterations = query_rounds;
    record.seconds = us * 1e-6;
    record.ns_per_op = us * 1e3;
    record.telemetry = query_telemetry;
    records.push_back(std::move(record));
  }

  bench::write_bench_json("service", records);
  return true;
}

}  // namespace

int main() { return run() ? 0 : 1; }
