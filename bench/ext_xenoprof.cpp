// Extension experiment (paper Section 5 future work): profiling multiple
// concurrently executing software stacks through the Xen layer.
//
// Two guest JVM stacks time-share the core under the credit scheduler.
// Arms: unprofiled, and XenoProf-extended VIProf at the 90K period. The
// harness reports (a) the added overhead in the virtualized setting and
// (b) the per-domain, per-layer attribution only the extended profiler can
// produce — including each domain's hypervisor-induced time.
#include <cstdio>

#include "support/format.hpp"
#include "workloads/common.hpp"
#include "workloads/generator.hpp"
#include "workloads/pseudojbb.hpp"
#include "xen/scheduler.hpp"
#include "xen/xenoprof.hpp"

namespace {

using namespace viprof;
constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;

struct World {
  std::unique_ptr<os::Machine> machine;
  std::unique_ptr<xen::Hypervisor> xen;
  workloads::Workload w1, w2;
  std::unique_ptr<jvm::Vm> vm1, vm2;
  xen::Domain d1, d2;
  std::unique_ptr<xen::XenoProfSession> session;
  xen::SchedulerStats sched;
};

World run_world(bool profiled) {
  World world;
  os::MachineConfig mcfg;
  mcfg.seed = 0xe17;
  world.machine = std::make_unique<os::Machine>(mcfg);
  world.xen = std::make_unique<xen::Hypervisor>(*world.machine);

  world.w1 = workloads::make_pseudojbb({2, 20'000});
  workloads::GeneratorOptions opt;
  opt.name = "batch";
  opt.seed = 5;
  opt.methods = 64;
  opt.total_app_ops = 60'000'000;
  opt.alloc_intensity = 0.5;
  opt.nursery_bytes = 2ull << 20;
  opt.syscall_frac = 0.06;
  world.w2 = workloads::make_synthetic(opt);

  world.vm1 = std::make_unique<jvm::Vm>(*world.machine, world.w1.vm);
  world.vm2 = std::make_unique<jvm::Vm>(*world.machine, world.w2.vm);
  world.d1 = xen::Domain{1, "dom1-jbb", world.vm1.get(), 256};
  world.d2 = xen::Domain{2, "dom2-batch", world.vm2.get(), 256};

  if (profiled) {
    world.session = std::make_unique<xen::XenoProfSession>(*world.machine, *world.xen);
    world.session->attach_guest(world.d1);
    world.session->attach_guest(world.d2);
  }
  world.vm1->setup(world.w1.program);
  world.vm2->setup(world.w2.program);
  if (profiled) world.session->start();

  xen::CreditScheduler scheduler(*world.machine, *world.xen);
  scheduler.add_domain(&world.d1);
  scheduler.add_domain(&world.d2);
  world.sched = scheduler.run_all();
  return world;
}

void print_layers(const char* label, core::Profile& profile) {
  const double total = static_cast<double>(profile.total(kTime));
  auto pct = [&](core::SampleDomain d) {
    return total > 0 ? 100.0 * static_cast<double>(profile.domain_total(d, kTime)) / total
                     : 0.0;
  };
  std::printf("  %-11s jit %5.1f%%  vm %4.1f%%  native %5.1f%%  kernel %4.1f%%  xen %4.1f%%\n",
              label, pct(core::SampleDomain::kJit), pct(core::SampleDomain::kBoot),
              pct(core::SampleDomain::kImage), pct(core::SampleDomain::kKernel),
              pct(core::SampleDomain::kHypervisor));
}

}  // namespace

int main() {
  std::printf("=== EXT: XenoProf/VIProf over two concurrent guest stacks ===\n\n");

  const World base = run_world(false);
  World prof = run_world(true);
  const xen::XenoProfResult result = prof.session->stop_and_flush();

  const double slowdown = static_cast<double>(prof.sched.total_cycles) /
                          static_cast<double>(base.sched.total_cycles);
  std::printf("machine time : base %.2f s, profiled %.2f s  -> slowdown %.3f\n",
              static_cast<double>(base.sched.total_cycles) / workloads::kCyclesPerSecond,
              static_cast<double>(prof.sched.total_cycles) / workloads::kCyclesPerSecond,
              slowdown);
  std::printf("hypervisor   : %.2f%% of machine time (base), %.2f%% (profiled)\n",
              100.0 * static_cast<double>(base.sched.hypervisor_cycles) /
                  static_cast<double>(base.sched.total_cycles),
              100.0 * static_cast<double>(prof.sched.hypervisor_cycles) /
                  static_cast<double>(prof.sched.total_cycles));
  std::printf("samples      : %llu total, %llu hypervisor-ring, %llu JIT\n\n",
              static_cast<unsigned long long>(result.samples),
              static_cast<unsigned long long>(result.daemon.hypervisor_samples),
              static_cast<unsigned long long>(result.daemon.jit_samples));

  std::printf("per-domain layer breakdown (time%%):\n");
  core::Profile p1 = prof.session->domain_profile(prof.d1, {kTime});
  core::Profile p2 = prof.session->domain_profile(prof.d2, {kTime});
  print_layers(prof.d1.name.c_str(), p1);
  print_layers(prof.d2.name.c_str(), p2);

  std::printf("\ntop symbols per domain:\n");
  std::printf("-- %s --\n%s\n", prof.d1.name.c_str(), p1.render({kTime}, 5).c_str());
  std::printf("-- %s --\n%s\n", prof.d2.name.c_str(), p2.render({kTime}, 5).c_str());
  std::printf("-- hypervisor --\n%s",
              prof.session->hypervisor_profile({kTime}).render({kTime}, 5).c_str());
  return 0;
}
