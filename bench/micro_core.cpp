// ABL3 microbenchmarks (host-time, google-benchmark): the data structures
// on VIProf's hot paths — the NMI-side ring buffer, the per-sample
// classification structures, and the cache model that drives event
// generation. These bound how much *host* time the simulator spends per
// simulated sample, and document the costs the cycle model abstracts.
#include <benchmark/benchmark.h>

#include "core/sample_buffer.hpp"
#include "hw/access_pattern.hpp"
#include "hw/cache.hpp"
#include "hw/perf_counter.hpp"
#include "os/address_space.hpp"
#include "os/symbol_table.hpp"

namespace {

using namespace viprof;

void BM_SampleBufferPushPop(benchmark::State& state) {
  core::SampleBuffer buffer(1 << 14);
  core::Sample s;
  s.pc = 0x1234;
  for (auto _ : state) {
    buffer.push(s);
    benchmark::DoNotOptimize(buffer.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleBufferPushPop);

void BM_SampleBufferPushFull(benchmark::State& state) {
  core::SampleBuffer buffer(64);
  core::Sample s;
  while (buffer.push(s)) {
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(buffer.push(s));  // always drops
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleBufferPushFull);

void BM_PerfCounterAdd(benchmark::State& state) {
  hw::PerfCounterUnit unit;
  unit.configure({{hw::EventKind::kGlobalPowerEvents, 90'000, true},
                  {hw::EventKind::kBsqCacheReference, 1'000, true}});
  std::vector<hw::Overflow> out;
  for (auto _ : state) {
    out.clear();
    unit.add(hw::EventKind::kGlobalPowerEvents, 5'000, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_PerfCounterAdd);

void BM_CacheAccess(benchmark::State& state) {
  hw::CacheModel cache;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr));
    addr += 64;
    if (addr > (1u << state.range(0))) addr = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(14)->Arg(21)->Arg(26);  // L1-fit, L2-fit, beyond

void BM_AccessSamplerChunk(benchmark::State& state) {
  hw::AccessSampler sampler(7);
  hw::CacheModel cache;
  hw::AccessPattern p;
  p.working_set = 256 * 1024;
  p.random_frac = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(p, 4'000, cache));
  }
  state.SetItemsProcessed(state.iterations() * 4'000);  // simulated ops/sec
}
BENCHMARK(BM_AccessSamplerChunk);

void BM_SymbolTableFind(benchmark::State& state) {
  os::SymbolTable table;
  const std::int64_t count = state.range(0);
  for (std::int64_t i = 0; i < count; ++i)
    table.add("sym" + std::to_string(i), static_cast<std::uint64_t>(i) * 256, 256);
  std::uint64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(offset));
    offset = (offset + 7919) % (static_cast<std::uint64_t>(count) * 256);
  }
}
BENCHMARK(BM_SymbolTableFind)->Arg(16)->Arg(256)->Arg(4096);

void BM_AddressSpaceFind(benchmark::State& state) {
  os::AddressSpace space;
  const std::int64_t count = state.range(0);
  for (std::int64_t i = 0; i < count; ++i)
    space.map(0x1000'0000 + static_cast<std::uint64_t>(i) * 0x10'0000, 0x8'0000,
              static_cast<os::ImageId>(i));
  std::uint64_t pc = 0x1000'0000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.find(pc));
    pc += 0x30'0001;
    if (pc > 0x1000'0000 + static_cast<std::uint64_t>(count) * 0x10'0000)
      pc = 0x1000'0000;
  }
}
BENCHMARK(BM_AddressSpaceFind)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
