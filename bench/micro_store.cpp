// Persistent-store microbench: ingest throughput into segment files,
// compaction throughput at 1/2/4 compactor threads, and historical query
// latency (p50/p99) against a fully-compacted store. Before anything is
// measured the store's answers are checked byte-identical to the offline
// canonical fold — before and after compaction, at every thread count — so
// a bench run that got the wrong answer fast is a failure, not a result.
//
// Emits BENCH_store.json (harness schema). VIPROF_QUICK=1 shrinks the
// interval population for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "os/vfs.hpp"
#include "store/profile_store.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace viprof;

constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;
constexpr auto kDmiss = hw::EventKind::kBsqCacheReference;
const std::vector<hw::EventKind> kEvents = {kTime, kDmiss};

core::Resolution res(std::string image, std::string symbol) {
  core::Resolution r;
  r.image = std::move(image);
  r.symbol = std::move(symbol);
  r.domain = core::SampleDomain::kJit;
  return r;
}

/// Interval j of the synthetic history: a few sessions, repeating ticks (so
/// compaction has merge keys to fold) and a method population wide enough
/// that segment dictionaries earn their keep.
store::IntervalProfile make_interval(std::uint64_t j, std::uint64_t methods) {
  store::IntervalProfile iv;
  iv.session = "vm-" + std::to_string(j % 3);
  iv.pid = 40 + j % 3;
  iv.tick_lo = iv.tick_hi = j / 6;
  iv.epoch_lo = j;
  iv.epoch_hi = j + 1;
  for (std::uint64_t m = 0; m < 4; ++m) {
    const std::uint64_t method = (j * 7 + m * 13) % methods;
    iv.profile.add(kTime, res("RVM.map", "method-" + std::to_string(method)),
                   10 + (j + m) % 97);
    if (m % 2 == 0) {
      iv.profile.add(kDmiss, res("RVM.map", "method-" + std::to_string(method)),
                     1 + (j + m) % 7);
    }
  }
  iv.profile.add(kTime, res("vmlinux", "do_page_fault"), 1 + j % 5);
  return iv;
}

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t at = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[at];
}

store::StoreConfig bench_config() {
  store::StoreConfig config;
  config.seal_after_intervals = 16;
  config.compact_fanin = 4;
  config.compact_min_segments = 2;
  return config;
}

bool run() {
  const char* quick = std::getenv("VIPROF_QUICK");
  const bool is_quick = quick != nullptr && quick[0] == '1';

  const std::uint64_t intervals = is_quick ? 600 : 6'000;
  const std::uint64_t methods = 256;
  const int reps = is_quick ? 2 : 3;
  const int query_rounds = is_quick ? 300 : 2'000;

  std::printf("-- profile store ingest + compaction + query bench "
              "(%llu intervals) --\n",
              static_cast<unsigned long long>(intervals));

  // The offline oracle: the canonical fold over the whole history.
  std::string oracle;
  {
    std::vector<store::IntervalProfile> ivs;
    ivs.reserve(intervals);
    for (std::uint64_t j = 0; j < intervals; ++j) {
      ivs.push_back(make_interval(j, methods));
      ivs.back().first_seq = j + 1;
    }
    std::sort(ivs.begin(), ivs.end(),
              [](const store::IntervalProfile& a, const store::IntervalProfile& b) {
                return store::canonical_less(a, b);
              });
    core::Profile folded;
    for (const store::IntervalProfile& iv : ivs) folded.merge(iv.profile);
    oracle = folded.render(kEvents, 30);
  }

  std::vector<bench::BenchRecord> records;

  // Phase 1: ingest throughput (append + seal path, no compaction).
  {
    double best_secs = 0.0;
    std::uint64_t bytes = 0;
    support::TelemetrySnapshot telemetry;
    for (int rep = 0; rep < reps; ++rep) {
      support::Telemetry registry;
      os::Vfs vfs;
      store::StoreConfig config = bench_config();
      config.telemetry = &registry;
      store::ProfileStore st(vfs, config);
      if (st.open().verdict != core::FsckVerdict::kClean) {
        std::fprintf(stderr, "FAIL: fresh store did not open clean\n");
        return false;
      }
      const auto start = std::chrono::steady_clock::now();
      for (std::uint64_t j = 0; j < intervals; ++j) {
        if (!st.ingest(make_interval(j, methods))) {
          std::fprintf(stderr, "FAIL: ingest rejected interval %llu\n",
                       static_cast<unsigned long long>(j));
          return false;
        }
      }
      st.seal_active();
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (rep == 0 || elapsed.count() < best_secs) best_secs = elapsed.count();
      bytes = vfs.bytes_written();
      if (st.render_top({}, kEvents, 30) != oracle) {
        std::fprintf(stderr, "FAIL: sealed-store query differs from fold\n");
        return false;
      }
      telemetry = registry.snapshot();  // taken around the timed region
    }
    const double rate = static_cast<double>(intervals) / best_secs;
    std::printf("  ingest           %9.0f intervals/sec  (%.3fs, %.1f MB)\n", rate,
                best_secs, static_cast<double>(bytes) / 1e6);
    bench::BenchRecord record;
    record.name = "ingest";
    record.iterations = reps;
    record.seconds = best_secs;
    record.ns_per_op = best_secs * 1e9 / static_cast<double>(intervals);
    record.telemetry = std::move(telemetry);
    records.push_back(std::move(record));
  }

  // Phase 2: compaction throughput at several thread counts, each checked
  // byte-identical to the fold (the determinism anchor, measured).
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    double best_secs = 0.0;
    std::size_t segments_before = 0, segments_after = 0;
    support::TelemetrySnapshot telemetry;
    for (int rep = 0; rep < reps; ++rep) {
      support::Telemetry registry;
      os::Vfs vfs;
      store::StoreConfig config = bench_config();
      config.telemetry = &registry;
      store::ProfileStore st(vfs, config);
      if (st.open().verdict != core::FsckVerdict::kClean) return false;
      for (std::uint64_t j = 0; j < intervals; ++j)
        if (!st.ingest(make_interval(j, methods))) return false;
      st.seal_active();
      segments_before = st.segment_count();

      support::ThreadPool pool(threads);
      pool.attach_telemetry(registry);
      const auto start = std::chrono::steady_clock::now();
      while (st.compact(&pool) > 0) {
      }
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (rep == 0 || elapsed.count() < best_secs) best_secs = elapsed.count();
      segments_after = st.segment_count();
      if (st.render_top({}, kEvents, 30) != oracle) {
        std::fprintf(stderr, "FAIL: compacted-store query differs from fold "
                             "(threads=%zu)\n", threads);
        return false;
      }
      telemetry = registry.snapshot();
    }
    const double rate = static_cast<double>(intervals) / best_secs;
    std::printf("  compact threads=%zu %8.0f intervals/sec  (%.3fs, %zu -> %zu "
                "segments)\n",
                threads, rate, best_secs, segments_before, segments_after);
    bench::BenchRecord record;
    record.name = "compact.t" + std::to_string(threads);
    record.iterations = reps;
    record.seconds = best_secs;
    record.ns_per_op = best_secs * 1e9 / static_cast<double>(intervals);
    record.telemetry = std::move(telemetry);
    records.push_back(std::move(record));
  }
  std::printf("  queries byte-identical to the canonical fold at every stage\n");

  // Phase 3: historical query latency against a fully-compacted store.
  support::Telemetry registry;
  os::Vfs vfs;
  store::StoreConfig query_config = bench_config();
  query_config.telemetry = &registry;
  store::ProfileStore st(vfs, query_config);
  if (st.open().verdict != core::FsckVerdict::kClean) return false;
  for (std::uint64_t j = 0; j < intervals; ++j)
    if (!st.ingest(make_interval(j, methods))) return false;
  st.seal_active();
  support::ThreadPool pool(2);
  pool.attach_telemetry(registry);
  while (st.compact(&pool) > 0) {
  }

  const store::WindowSpec window{intervals / 24, intervals / 8, "vm-1"};
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(query_rounds));
  for (int i = 0; i < query_rounds; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const std::string out = st.render_top(window, kEvents, 20);
    const std::chrono::duration<double, std::micro> elapsed =
        std::chrono::steady_clock::now() - start;
    if (out.empty()) {
      std::fprintf(stderr, "FAIL: windowed query rendered nothing\n");
      return false;
    }
    latencies_us.push_back(elapsed.count());
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  const double p50 = percentile(latencies_us, 0.50);
  const double p99 = percentile(latencies_us, 0.99);
  std::printf("  windowed 'top 20' x%d  p50 %.1fus  p99 %.1fus\n", query_rounds,
              p50, p99);

  const support::TelemetrySnapshot query_telemetry = registry.snapshot();
  for (const auto& [name, us] : {std::pair<const char*, double>{"query.window.p50", p50},
                                 {"query.window.p99", p99}}) {
    bench::BenchRecord record;
    record.name = name;
    record.iterations = query_rounds;
    record.seconds = us * 1e-6;
    record.ns_per_op = us * 1e3;
    record.telemetry = query_telemetry;
    records.push_back(std::move(record));
  }

  bench::write_bench_json("store", records);
  return true;
}

}  // namespace

int main() { return run() ? 0 : 1; }
