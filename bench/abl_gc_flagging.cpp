// Ablation ABL1 — GC move handling: flag-and-defer (the paper's design)
// versus logging full map entries from inside the collector.
//
// Paper Section 3, "VM Agent": "We simply flag it instead of actually
// logging it in order to avoid undue overhead. This is because the body of
// the GC methods are highly tuned and any calls to the outside of their
// code space will result in a significant performance hit."
//
// The bench runs GC-heavy workloads under both agent modes and reports the
// agent cost and end-to-end slowdown; both modes produce identical code
// maps (verified by the test suite), so the delta is pure overhead.
#include <cstdio>

#include "bench/harness.hpp"
#include "support/format.hpp"
#include "workloads/generator.hpp"

namespace {

using namespace viprof;

struct ArmResult {
  double slowdown = 0.0;
  core::AgentStats agent;
  std::uint64_t collections = 0;
};

ArmResult run_arm(const workloads::Workload& w, bool log_moves, hw::Cycles base_cycles) {
  os::MachineConfig mcfg;
  mcfg.seed = 0xab11;
  os::Machine machine(mcfg);
  jvm::Vm vm(machine, w.vm);
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.agent.log_moves_immediately = log_moves;
  core::ProfilingSession session(machine, vm, config);
  session.attach();
  vm.setup(w.program);
  const core::SessionResult result = session.run();
  ArmResult out;
  out.slowdown = static_cast<double>(result.cycles) / static_cast<double>(base_cycles);
  out.agent = result.agent;
  out.collections = result.vm.collections;
  return out;
}

hw::Cycles run_base(const workloads::Workload& w) {
  os::MachineConfig mcfg;
  mcfg.seed = 0xab11;
  os::Machine machine(mcfg);
  jvm::Vm vm(machine, w.vm);
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kBase;
  core::ProfilingSession session(machine, vm, config);
  session.attach();
  vm.setup(w.program);
  return session.run().cycles;
}

}  // namespace

int main() {
  std::printf("=== ABL1: GC move handling — flag-and-defer vs log-inside-GC ===\n\n");

  support::TextTable table({"workload", "GCs", "moves", "mode", "agent Mcycles",
                            "slowdown"});

  for (const std::uint32_t mature_age : {3u, 8u, 16u}) {
    workloads::GeneratorOptions opt;
    opt.name = "gcheavy-age" + std::to_string(mature_age);
    opt.seed = 42;
    opt.methods = 512;
    opt.zipf = 0.5;  // flat: all methods compiled, many bodies moving
    opt.total_app_ops = 40'000'000;
    opt.alloc_intensity = 0.8;
    opt.nursery_bytes = 768 * 1024;  // frequent collections
    opt.mature_age = mature_age;
    const workloads::Workload w = workloads::make_synthetic(opt);

    const hw::Cycles base = run_base(w);
    for (const bool log_moves : {false, true}) {
      const ArmResult r = run_arm(w, log_moves, base);
      table.add_row({w.name, std::to_string(r.collections),
                     std::to_string(r.agent.moves_flagged + r.agent.moves_logged),
                     log_moves ? "log-in-gc" : "flag (paper)",
                     support::fixed(static_cast<double>(r.agent.cost_cycles) / 1e6, 2),
                     support::fixed(r.slowdown, 4)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Flagging keeps the in-collector hook to ~%u cycles; logging pays\n",
              12u);
  std::printf("~30x that per moved body, growing with promotion age (more epochs\n");
  std::printf("of movement). Both modes yield byte-identical attribution.\n");
  return 0;
}
