// Fleet microbench: sharded ingest throughput at 1/2/4 shards, federated
// query latency against the populated fleet, and failover recovery cost
// (kill a shard mid-session, re-stream to the ring successor). Before
// anything is measured the federated answers are checked byte-identical to
// a single-server run over the same sessions — a bench that got the wrong
// answer fast is a failure, not a result.
//
// Emits BENCH_fleet.json (harness schema). VIPROF_QUICK=1 shrinks the
// session population for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "fleet/federator.hpp"
#include "fleet/fsck.hpp"
#include "fleet/router.hpp"
#include "service/client.hpp"
#include "service/scenario.hpp"
#include "service/server.hpp"
#include "support/fault.hpp"

namespace {

using namespace viprof;

using SessionMap = std::map<std::string, std::unique_ptr<service::RecordedScenario>>;

SessionMap record_sessions(std::size_t n, std::uint64_t samples) {
  SessionMap out;
  for (std::size_t i = 0; i < n; ++i) {
    service::ScenarioConfig sc;
    sc.vms = 2;
    sc.samples_per_event = samples;
    sc.epochs = 8;
    sc.methods = 64;
    sc.seed = 0xbe9c4 + i;
    out["sess-" + std::to_string(i)] = record_scenario(sc);
  }
  return out;
}

std::uint64_t total_records(const SessionMap& sessions, fleet::Router& router) {
  std::uint64_t total = 0;
  for (const auto& [id, scenario] : sessions) {
    const fleet::SessionOutcome out = router.ingest(scenario->vfs(), id);
    if (!out.completed) {
      std::fprintf(stderr, "micro_fleet: session %s did not complete\n", id.c_str());
      std::exit(1);
    }
    total += out.records_stored;
  }
  return total;
}

bool run() {
  const char* quick = std::getenv("VIPROF_QUICK");
  const bool is_quick = quick != nullptr && quick[0] == '1';

  const std::size_t session_count = is_quick ? 4 : 8;
  const std::uint64_t samples = is_quick ? 400 : 1'500;
  const int reps = is_quick ? 2 : 3;
  const int query_rounds = is_quick ? 200 : 1'000;

  std::printf("micro_fleet: %zu sessions, %llu samples/event%s\n", session_count,
              static_cast<unsigned long long>(samples), is_quick ? " (quick)" : "");

  const SessionMap sessions = record_sessions(session_count, samples);

  // The single-server oracle every federated answer must match.
  std::string oracle_top;
  {
    service::ProfileServer server;
    for (const auto& [id, scenario] : sessions) {
      auto conn = server.connect(id);
      service::ReplayClient client(scenario->vfs(), id, *conn,
                                   service::ReplayOptions{256, nullptr, {}});
      if (!client.run()) return false;
    }
    server.drain();
    oracle_top = server.query("top 20");
  }

  std::vector<bench::BenchRecord> records;

  // ---- ingest scaling: same sessions, 1/2/4 shards ------------------------
  for (const std::size_t shards : {1u, 2u, 4u}) {
    double best_secs = 0.0;
    std::uint64_t ingested = 0;
    support::TelemetrySnapshot telemetry;
    for (int rep = 0; rep < reps; ++rep) {
      os::Vfs fleet_vfs;
      fleet::FleetConfig config;
      config.shards = shards;
      fleet::Router router(fleet_vfs, config);
      const auto start = std::chrono::steady_clock::now();
      ingested = total_records(sessions, router);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (rep == 0 || elapsed.count() < best_secs) best_secs = elapsed.count();

      // Correctness gate: federated == single server, byte for byte.
      if (fleet::Federator(router).query("top 20") != oracle_top) {
        std::fprintf(stderr,
                     "micro_fleet: federated top diverged at %zu shards\n", shards);
        return false;
      }
      telemetry = router.telemetry().snapshot();  // around the timed region
    }
    bench::BenchRecord record;
    record.name = "ingest.s" + std::to_string(shards);
    record.iterations = reps;
    record.seconds = best_secs;
    record.ns_per_op = best_secs * 1e9 / static_cast<double>(ingested);
    record.telemetry = std::move(telemetry);
    records.push_back(record);
    std::printf("  ingest  %zu shards: %.3fs (%llu records, %.0f ns/record)\n",
                shards, best_secs, static_cast<unsigned long long>(ingested),
                record.ns_per_op);
  }

  // ---- federated query latency -------------------------------------------
  {
    os::Vfs fleet_vfs;
    fleet::FleetConfig config;
    config.shards = 4;
    fleet::Router router(fleet_vfs, config);
    (void)total_records(sessions, router);
    fleet::Federator federator(router);

    const auto start = std::chrono::steady_clock::now();
    std::size_t sink = 0;
    for (int i = 0; i < query_rounds; ++i) sink += federator.query("top 20").size();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (sink == 0) return false;

    const double us = elapsed.count() * 1e6 / query_rounds;
    bench::BenchRecord record;
    record.name = "query.top20.s4";
    record.iterations = query_rounds;
    record.seconds = us * 1e-6;
    record.ns_per_op = us * 1e3;
    record.telemetry = router.telemetry().snapshot();
    records.push_back(record);
    std::printf("  query   top20 over 4 shards: %.1f us/query\n", us);
  }

  // ---- failover recovery: kill a shard mid-session ------------------------
  {
    double best_secs = 0.0;
    std::uint64_t failovers = 0;
    support::TelemetrySnapshot telemetry;
    for (int rep = 0; rep < reps; ++rep) {
      os::Vfs fleet_vfs;
      support::FaultInjector fault;
      fault.schedule_kill(support::FaultComponent::kFleet, 25);
      fleet::FleetConfig config;
      config.shards = 2;
      config.fault = &fault;
      fleet::Router router(fleet_vfs, config);
      const auto start = std::chrono::steady_clock::now();
      (void)total_records(sessions, router);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (rep == 0 || elapsed.count() < best_secs) best_secs = elapsed.count();
      failovers = router.ledger().failover_sessions;

      const fleet::FleetFsckReport fsck = fleet::fsck_fleet(fleet_vfs);
      if (fsck.verdict != core::FsckVerdict::kClean || !fsck.ledger_balanced) {
        std::fprintf(stderr, "micro_fleet: post-failover fsck: %s\n",
                     fsck.summary.c_str());
        return false;
      }
      telemetry = router.telemetry().snapshot();
    }
    bench::BenchRecord record;
    record.name = "failover.kill1of2";
    record.iterations = reps;
    record.seconds = best_secs;
    record.ns_per_op =
        best_secs * 1e9 / static_cast<double>(session_count);
    record.telemetry = std::move(telemetry);
    records.push_back(record);
    std::printf("  failover 1-of-2 shards killed: %.3fs for %zu sessions "
                "(%llu failed over), fsck clean\n",
                best_secs, session_count,
                static_cast<unsigned long long>(failovers));
  }

  bench::write_bench_json("fleet", records);
  std::printf("micro_fleet: federated answers byte-identical to single server\n");
  return true;
}

}  // namespace

int main() { return run() ? 0 : 1; }
