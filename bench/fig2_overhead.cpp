// Figure 2 reproduction: profiling slowdown versus unprofiled execution.
//
// Arms (paper Fig. 2): stock OProfile at the median 90K-cycle period, and
// VIProf at 45K, 90K and 450K. Section 4.3's textual comparison against
// Vertical Profiling (~7% published average) is printed as an extra column.
//
// Values are time ratios normalised to base (1.00 = no slowdown); the paper
// reports ~5% average for both OProfile and VIProf at 90K, the majority of
// benchmarks under 10% with antlr above, and smaller slowdowns for longer
// benchmarks.
#include <cstdio>

#include "bench/harness.hpp"
#include "support/format.hpp"

int main() {
  using namespace viprof;

  struct ArmSpec {
    const char* label;
    bench::Arm arm;
    std::uint64_t period;
  };
  const ArmSpec arms[] = {
      {"Oprof 90K", bench::Arm::kOprofile, 90'000},
      {"VIProf 45K", bench::Arm::kViprof, 45'000},
      {"VIProf 90K", bench::Arm::kViprof, 90'000},
      {"VIProf 450K", bench::Arm::kViprof, 450'000},
      {"Vertical", bench::Arm::kVertical, 0},
  };
  constexpr int kArmCount = 5;

  std::printf("=== Figure 2: slowdown relative to base execution ===\n");
  std::printf("(1.000 = no overhead; paper methodology: %d runs, drop fastest\n",
              bench::runs_per_config());
  std::printf(" and slowest, average the rest)\n\n");

  support::TextTable table({"benchmark", "base(s)", "Oprof 90K", "VIProf 45K",
                            "VIProf 90K", "VIProf 450K", "Vertical"});
  double sums[kArmCount] = {};
  int rows = 0;
  std::vector<bench::BenchRecord> records;

  for (const workloads::Workload& w : workloads::figure2_suite()) {
    bench::BenchRecord base_record = bench::measure(w, bench::Arm::kBase, 0);
    const double base = base_record.seconds;
    records.push_back(std::move(base_record));
    std::vector<std::string> cells{w.name, support::fixed(base, 2)};
    for (int a = 0; a < kArmCount; ++a) {
      bench::BenchRecord record = bench::measure(w, arms[a].arm, arms[a].period);
      const double slowdown = record.seconds / base;
      sums[a] += slowdown;
      cells.push_back(support::fixed(slowdown, 3));
      records.push_back(std::move(record));
    }
    ++rows;
    table.add_row(std::move(cells));
    std::fflush(stdout);
  }

  std::vector<std::string> avg{"Average", ""};
  for (int a = 0; a < kArmCount; ++a) avg.push_back(support::fixed(sums[a] / rows, 3));
  table.add_row(std::move(avg));
  std::printf("%s\n", table.render().c_str());

  std::printf("Section 4.3 comparison (average overhead):\n");
  std::printf("  OProfile @90K : %+.1f%%   (paper: ~5%%)\n", (sums[0] / rows - 1) * 100);
  std::printf("  VIProf   @90K : %+.1f%%   (paper: similar to OProfile, ~5%%)\n",
              (sums[2] / rows - 1) * 100);
  std::printf("  Vertical prof.: %+.1f%%   (paper cites ~7%%, VM+app layers only)\n",
              (sums[4] / rows - 1) * 100);
  bench::write_bench_json("fig2_overhead", records);
  return 0;
}
