// Ablation ABL2 — partial epoch maps + backward search (the paper's design)
// versus writing a full code map at every epoch boundary.
//
// Trade-off: partial maps cost O(churn) to write but may force the offline
// resolver to walk several maps backwards; full maps cost O(all live code)
// per epoch but always resolve in the sample's own map. The paper picks
// partial maps because map writing happens *online* (it is benchmark
// slowdown) while the search happens *offline* in post-processing.
#include <cstdio>

#include "bench/harness.hpp"
#include "support/format.hpp"
#include "workloads/dacapo.hpp"
#include "workloads/generator.hpp"

namespace {

using namespace viprof;

struct ArmOutcome {
  double slowdown = 0.0;
  std::uint64_t maps = 0;
  std::uint64_t entries = 0;
  std::uint64_t map_bytes = 0;
  double avg_search_depth = 0.0;
  std::uint64_t jit_samples = 0;
};

ArmOutcome run_arm(const workloads::Workload& w, bool full_maps) {
  os::MachineConfig mcfg;
  mcfg.seed = 0xab12;
  os::Machine machine(mcfg);

  // Base run for the slowdown denominator.
  hw::Cycles base_cycles = 0;
  {
    os::Machine base_machine(mcfg);
    jvm::Vm base_vm(base_machine, w.vm);
    core::SessionConfig config;
    config.mode = core::ProfilingMode::kBase;
    core::ProfilingSession session(base_machine, base_vm, config);
    session.attach();
    base_vm.setup(w.program);
    base_cycles = session.run().cycles;
  }

  jvm::Vm vm(machine, w.vm);
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.agent.write_full_maps = full_maps;
  core::ProfilingSession session(machine, vm, config);
  session.attach();
  vm.setup(w.program);
  const core::SessionResult result = session.run();

  ArmOutcome out;
  out.slowdown = static_cast<double>(result.cycles) / static_cast<double>(base_cycles);
  out.maps = result.agent.maps_written;
  out.entries = result.agent.map_entries_written;
  for (const std::string& path : machine.vfs().list(config.agent.map_dir)) {
    out.map_bytes += machine.vfs().read(path)->size();
  }

  // Offline resolution pass: measure backward-search depth over the real
  // sample log.
  core::Resolver& resolver = session.resolver();
  std::uint64_t depth_sum = 0;
  for (const core::LoggedSample& s : core::SampleLogReader::read(
           machine.vfs(), session.daemon()->sample_dir(),
           hw::EventKind::kGlobalPowerEvents)) {
    const core::Resolution res = resolver.resolve(s);
    if (res.domain == core::SampleDomain::kJit && res.maps_searched > 0) {
      ++out.jit_samples;
      depth_sum += res.maps_searched;
    }
  }
  out.avg_search_depth =
      out.jit_samples ? static_cast<double>(depth_sum) / out.jit_samples : 0.0;
  return out;
}

}  // namespace

int main() {
  std::printf("=== ABL2: partial epoch maps + backward search vs full maps ===\n\n");

  support::TextTable table({"workload", "mode", "maps", "entries", "map KB",
                            "slowdown", "avg search depth"});

  std::vector<workloads::Workload> workloads_list;
  workloads_list.push_back(workloads::make_dacapo("antlr"));
  {
    workloads::GeneratorOptions opt;
    opt.name = "churny";
    opt.seed = 9;
    opt.methods = 600;
    opt.zipf = 0.6;
    opt.total_app_ops = 30'000'000;
    opt.alloc_intensity = 0.8;
    opt.nursery_bytes = 512 * 1024;
    opt.mature_age = 10;
    workloads_list.push_back(workloads::make_synthetic(opt));
  }

  for (const workloads::Workload& w : workloads_list) {
    for (const bool full : {false, true}) {
      const ArmOutcome r = run_arm(w, full);
      table.add_row({w.name, full ? "full maps" : "partial (paper)",
                     std::to_string(r.maps), std::to_string(r.entries),
                     std::to_string(r.map_bytes / 1024),
                     support::fixed(r.slowdown, 4),
                     support::fixed(r.avg_search_depth, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Partial maps trade a deeper *offline* search for less *online*\n");
  std::printf("writing — the right side of the trade for a runtime profiler.\n");
  return 0;
}
