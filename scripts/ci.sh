#!/usr/bin/env bash
# Tier-1 CI pipeline.
#
# 1. Configure + build the default (RelWithDebInfo) tree.
# 2. Run the whole ctest suite — this includes the `faults`, `telemetry`,
#    `resolve`, `service`, `store`, `fleet` and `memprof` labels — and then
#    each of those labels once more by name, so a label that silently lost
#    its tests fails the pipeline.
# 3. Smoke-run the resolution, service, store, fleet and memprof benchmarks
#    (VIPROF_QUICK) and check that they leave non-empty BENCH_resolve.json /
#    BENCH_service.json / BENCH_store.json / BENCH_fleet.json /
#    BENCH_memprof.json behind.
# 4. Rebuild one sanitizer configuration (VIPROF_SANITIZE=thread by default;
#    set VIPROF_SANITIZE=address to switch) and run the concurrency-sensitive
#    labelled suites under it.
#
# Usage: scripts/ci.sh [build-dir-prefix]     (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
SANITIZER="${VIPROF_SANITIZE:-thread}"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_label() {  # run_label <build-dir> <label>
  local count
  count="$(ctest --test-dir "$1" -L "$2" -N | sed -n 's/^Total Tests: //p')"
  if [ "${count:-0}" -eq 0 ]; then
    echo "ci.sh: label '$2' matches no tests in $1" >&2
    exit 1
  fi
  ctest --test-dir "$1" -L "$2" --output-on-failure -j "$JOBS"
}

echo "=== [1/4] tier-1 build + full test suite ($PREFIX) ==="
cmake -B "$PREFIX" -S . >/dev/null
cmake --build "$PREFIX" -j "$JOBS"
ctest --test-dir "$PREFIX" --output-on-failure -j "$JOBS"
run_label "$PREFIX" faults
run_label "$PREFIX" telemetry
run_label "$PREFIX" resolve
run_label "$PREFIX" service
run_label "$PREFIX" store
run_label "$PREFIX" fleet
run_label "$PREFIX" memprof

echo "=== [2/4] benchmark smoke (BENCH_resolve/service/store/fleet/memprof.json) ==="
(cd "$PREFIX" &&
 rm -f BENCH_resolve.json BENCH_service.json BENCH_store.json \
       BENCH_fleet.json BENCH_memprof.json &&
 VIPROF_QUICK=1 ./bench/micro_resolve \
   --benchmark_filter='BM_CodeMapResolveBackward|BM_RvmMapParse' &&
 test -s BENCH_resolve.json &&
 VIPROF_QUICK=1 ./bench/micro_service &&
 test -s BENCH_service.json &&
 VIPROF_QUICK=1 ./bench/micro_store &&
 test -s BENCH_store.json &&
 VIPROF_QUICK=1 ./bench/micro_fleet &&
 test -s BENCH_fleet.json &&
 VIPROF_QUICK=1 ./bench/micro_memprof &&
 test -s BENCH_memprof.json)
# Gate against the checked-in reference runs. Baseline-band drift is
# warn-only by default (quick runs on a noisy machine jitter);
# VIPROF_GATE=1 turns it fatal. The scaling gate inside bench_gate.py —
# ingest.t4 and e2e_resolve_aggregate.t4 must beat their .t1 ns/op by
# >= 10% — is always fatal on hosts with >= 4 CPUs: losing the parallel
# speedup means a global lock crept back into the striped ingest path.
# The strict gate — ingest.pc_idle within 5% of its baseline — is always
# fatal too: memprof compiled in but idle must not tax PC-only ingest.
python3 scripts/bench_gate.py --fresh "$PREFIX" --baseline bench/baselines

echo "=== [3/4] sanitizer build (VIPROF_SANITIZE=$SANITIZER) ==="
SAN_DIR="$PREFIX-$SANITIZER"
cmake -B "$SAN_DIR" -S . -DVIPROF_SANITIZE="$SANITIZER" >/dev/null
cmake --build "$SAN_DIR" -j "$JOBS"

echo "=== [4/4] labelled suites under $SANITIZER sanitizer ==="
run_label "$SAN_DIR" faults
run_label "$SAN_DIR" telemetry
run_label "$SAN_DIR" resolve
run_label "$SAN_DIR" service
run_label "$SAN_DIR" store
run_label "$SAN_DIR" fleet
run_label "$SAN_DIR" memprof

echo "ci.sh: all green"
