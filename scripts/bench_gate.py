#!/usr/bin/env python3
"""Benchmark regression gate for the BENCH_*.json CI artifacts.

Compares freshly produced BENCH_<suite>.json files against the checked-in
reference runs in bench/baselines/ and flags any benchmark whose ns_per_op
regressed beyond the tolerance band.

The simulated clock makes ns_per_op nearly deterministic for a given build,
but codegen and allocator drift across toolchains still moves it a few
percent — hence a band, not an equality check. New benchmarks (present in
the fresh run but not the baseline) and retired ones are reported but never
fail the gate; refresh the baselines when the set changes.

Besides the baseline band, the gate enforces *scaling*: the striped ingest
path (DESIGN.md §14) must make 4 threads strictly cheaper per op than 1 —
ingest.t4 <= 0.9 x ingest.t1 in BENCH_service.json, and the same ratio for
e2e_resolve_aggregate.t4 vs .t1 in BENCH_resolve.json. A violation is a
parallelism regression (a reintroduced global lock, a serialising queue)
and fails the gate regardless of --enforce. On hosts with fewer than 4
CPUs the wall-clock speedup physically cannot appear, so the scaling check
is skipped (with a notice) rather than reporting noise.

A few benchmarks also carry a *strict* per-benchmark band, tighter than
the general tolerance and always fatal: ingest.pc_idle in
BENCH_memprof.json must stay within 5% of baseline, because it measures
the PC-only ingest hot path with the memprof subsystem compiled in but
idle — any slip there is object-sample support taxing a path it promised
to leave alone (DESIGN.md §15).

Modes:
  - default: warn-only for baseline-band regressions. They print
    prominently but exit 0, so a noisy machine can't wedge CI. Scaling
    violations are always fatal (when >= 4 CPUs are present).
  - VIPROF_GATE=1 (or --enforce): baseline regressions exit 1 too.

Usage: scripts/bench_gate.py [--fresh DIR] [--baseline DIR]
                             [--tolerance PCT] [--enforce]
  --fresh DIR      directory containing BENCH_*.json from this run
                   (default: current directory)
  --baseline DIR   checked-in reference directory
                   (default: bench/baselines next to this script's repo)
  --tolerance PCT  allowed slowdown in percent (default: 25)
"""

import argparse
import json
import os
import sys


def load_results(path):
    """Return {bench_name: ns_per_op} from one BENCH_*.json file.

    Tolerates schema drift: anything that is a dict with a string "name"
    and a numeric "ns_per_op" counts, wherever it sits in the document.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    results = {}

    def walk(node):
        if isinstance(node, dict):
            name = node.get("name")
            ns = node.get("ns_per_op")
            if isinstance(name, str) and isinstance(ns, (int, float)):
                results[name] = float(ns)
            for value in node.values():
                walk(value)
        elif isinstance(node, list):
            for value in node:
                walk(value)

    walk(doc)
    return results


# (fresh file, fast config, slow config, max allowed fast/slow ns ratio).
SCALING_CHECKS = [
    ("BENCH_service.json", "ingest.t4", "ingest.t1", 0.9),
    ("BENCH_resolve.json", "e2e_resolve_aggregate.t4",
     "e2e_resolve_aggregate.t1", 0.9),
]


# (fresh file, benchmark, max allowed regression pct vs baseline). Tighter
# than the general band: ingest.pc_idle is the PC-only hot path with the
# memprof subsystem compiled in but idle — object-sample support riding
# along must cost the PC pipeline nothing, so a >5% slip is a real tax,
# not noise.
STRICT_CHECKS = [
    ("BENCH_memprof.json", "ingest.pc_idle", 5.0),
]


def check_strict(fresh_dir, baseline_dir):
    """Returns strict per-benchmark regressions (always fatal)."""
    violations = []
    for fname, name, max_pct in STRICT_CHECKS:
        fresh_path = os.path.join(fresh_dir, fname)
        base_path = os.path.join(baseline_dir, fname)
        if not os.path.isfile(fresh_path) or not os.path.isfile(base_path):
            continue  # missing files are reported by the band gate
        fresh = load_results(fresh_path)
        base = load_results(base_path)
        if name not in fresh or name not in base or base[name] <= 0:
            print(f"bench_gate: strict gate: {fname} lacks '{name}'; skipping")
            continue
        delta_pct = 100.0 * (fresh[name] - base[name]) / base[name]
        line = (f"{fname}: {name} = {base[name]:.1f} -> {fresh[name]:.1f} "
                f"ns/op ({delta_pct:+.1f}%, max +{max_pct:.0f}%)")
        if delta_pct > max_pct:
            violations.append(line)
        else:
            print(f"bench_gate: strict OK: {line}")
    return violations


def check_scaling(fresh_dir):
    """Returns a list of scaling violations (empty = pass or skipped)."""
    cpus = os.cpu_count() or 1
    if cpus < 4:
        print(f"bench_gate: scaling gate skipped: host has {cpus} CPU(s); "
              f"t4-vs-t1 wall-clock speedup needs >= 4")
        return []
    violations = []
    for fname, fast, slow, max_ratio in SCALING_CHECKS:
        path = os.path.join(fresh_dir, fname)
        if not os.path.isfile(path):
            continue  # the missing-file path is reported by the band gate
        results = load_results(path)
        if fast not in results or slow not in results:
            print(f"bench_gate: scaling gate: {fname} lacks "
                  f"'{fast}'/'{slow}'; skipping that pair")
            continue
        if results[slow] <= 0:
            continue
        ratio = results[fast] / results[slow]
        line = (f"{fname}: {fast} = {results[fast]:.1f} ns/op vs "
                f"{slow} = {results[slow]:.1f} ns/op "
                f"(ratio {ratio:.2f}, max {max_ratio:.2f})")
        if ratio > max_ratio:
            violations.append(line)
        else:
            print(f"bench_gate: scaling OK: {line}")
    return violations


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", default=".")
    parser.add_argument("--baseline", default=None)
    parser.add_argument("--tolerance", type=float, default=25.0)
    parser.add_argument("--enforce", action="store_true")
    args = parser.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_dir = args.baseline or os.path.join(repo, "bench", "baselines")
    enforce = args.enforce or os.environ.get("VIPROF_GATE") == "1"

    baseline_files = sorted(
        f for f in os.listdir(baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
    ) if os.path.isdir(baseline_dir) else []
    if not baseline_files:
        print(f"bench_gate: no baselines under {baseline_dir}; nothing to gate")
        return 0

    regressions = []
    improvements = []
    missing = []
    compared = 0
    for fname in baseline_files:
        fresh_path = os.path.join(args.fresh, fname)
        if not os.path.isfile(fresh_path):
            missing.append(fname)
            continue
        base = load_results(os.path.join(baseline_dir, fname))
        fresh = load_results(fresh_path)
        for name, base_ns in sorted(base.items()):
            if name not in fresh:
                print(f"bench_gate: {fname}: '{name}' retired "
                      f"(in baseline, not in fresh run)")
                continue
            if base_ns <= 0:
                continue
            compared += 1
            delta_pct = 100.0 * (fresh[name] - base_ns) / base_ns
            line = (f"{fname[len('BENCH_'):-len('.json')]}/{name}: "
                    f"{base_ns:.1f} -> {fresh[name]:.1f} ns/op "
                    f"({delta_pct:+.1f}%)")
            if delta_pct > args.tolerance:
                regressions.append(line)
            elif delta_pct < -args.tolerance:
                improvements.append(line)
        for name in sorted(set(fresh) - set(base)):
            print(f"bench_gate: {fname}: '{name}' is new (no baseline); "
                  f"refresh bench/baselines to start gating it")

    scaling_violations = check_scaling(args.fresh)
    strict_violations = check_strict(args.fresh, baseline_dir)

    for fname in missing:
        print(f"bench_gate: fresh run has no {fname} "
              f"(looked in {args.fresh})", file=sys.stderr)
    for line in improvements:
        print(f"bench_gate: FASTER than baseline band: {line} "
              f"(consider refreshing baselines)")
    if scaling_violations:
        for line in scaling_violations:
            print(f"bench_gate: SCALING REGRESSION: {line}", file=sys.stderr)
        print(f"bench_gate: {len(scaling_violations)} scaling violation(s): "
              f"t4 must beat t1 by >= 10% ns/op; failing", file=sys.stderr)
        return 1
    if strict_violations:
        for line in strict_violations:
            print(f"bench_gate: STRICT REGRESSION: {line}", file=sys.stderr)
        print(f"bench_gate: {len(strict_violations)} strict violation(s): "
              f"idle-path cost must stay within its band; failing",
              file=sys.stderr)
        return 1
    if regressions:
        for line in regressions:
            print(f"bench_gate: REGRESSION (> {args.tolerance:.0f}%): {line}",
                  file=sys.stderr)
        if enforce:
            print(f"bench_gate: {len(regressions)} regression(s); "
                  f"failing (VIPROF_GATE=1)", file=sys.stderr)
            return 1
        print(f"bench_gate: {len(regressions)} regression(s); warn-only "
              f"(set VIPROF_GATE=1 to enforce)")
        return 0
    if missing and enforce:
        print("bench_gate: missing fresh BENCH files while enforcing; failing",
              file=sys.stderr)
        return 1
    print(f"bench_gate: {compared} benchmark(s) within "
          f"{args.tolerance:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
