#!/usr/bin/env bash
# Fleet failover soak: sweep the kill checkpoint across the whole ingest
# window and prove the exact-accounting invariant holds at every single
# crash point, from two independent angles per round:
#
#   1. `viprof_fleet serve --kill-at N` exits 0 only if its own ledger
#      balances AND the in-process fsck audit is clean, and
#   2. the exported namespace is re-audited from disk by `viprof_fsck
#      --fleet`, the way an operator would after a real crash.
#
# Usage: scripts/soak_fleet.sh [build-dir] [rounds]   (default: build 60)
# Env:   SOAK_SESSIONS (default 3), SOAK_SHARDS (default 3),
#        SOAK_SEED (default 42) — vary the seed to shift retry jitter.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
ROUNDS="${2:-60}"
SESSIONS="${SOAK_SESSIONS:-3}"
SHARDS="${SOAK_SHARDS:-3}"
SEED="${SOAK_SEED:-42}"

FLEET_TOOL="$BUILD/tools/viprof_fleet"
FSCK_TOOL="$BUILD/tools/viprof_fsck"
for tool in "$FLEET_TOOL" "$FSCK_TOOL"; do
  if [ ! -x "$tool" ]; then
    echo "soak_fleet.sh: $tool not built (run cmake --build $BUILD first)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d "${TMPDIR:-/tmp}/viprof_soak_fleet.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

echo "soak_fleet: $ROUNDS rounds, $SESSIONS sessions x $SHARDS shards, seed $SEED"
failures=0
for ((round = 1; round <= ROUNDS; ++round)); do
  # Stride the kill point so the sweep covers preamble frames, jit-map
  # frames and the sample batches at the tail of each stream.
  kill_at=$((round * 3 + 1))
  export_dir="$WORK/round-$round"
  if ! "$FLEET_TOOL" serve --sessions "$SESSIONS" --shards "$SHARDS" \
        --kill-at "$kill_at" --seed "$SEED" --quiet \
        --export "$export_dir" >"$WORK/round-$round.log" 2>&1; then
    echo "soak_fleet: FAIL round $round (kill-at $kill_at): serve imbalanced" >&2
    cat "$WORK/round-$round.log" >&2
    failures=$((failures + 1))
    continue
  fi
  if ! "$FSCK_TOOL" --in "$export_dir" --fleet --quiet; then
    echo "soak_fleet: FAIL round $round (kill-at $kill_at): export fsck" >&2
    "$FSCK_TOOL" --in "$export_dir" --fleet >&2 || true
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "soak_fleet: $failures/$ROUNDS rounds FAILED" >&2
  exit 1
fi
echo "soak_fleet: all $ROUNDS rounds clean — acked == stored + lost at every kill point"
