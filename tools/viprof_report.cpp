// viprof_report — offline post-processing over an exported session
// directory (the opreport analogue). Works purely from files: the archive
// manifest, RVM.map, the epoch code maps and the per-event sample logs.
//
//   viprof_report --in /tmp/session [--top 20] [--threads N] [--oprofile-view]
#include <cstdio>
#include <string>

#include "core/annotate.hpp"
#include "core/archive.hpp"
#include "core/report.hpp"
#include "core/resolve_pipeline.hpp"
#include "core/sample_log.hpp"
#include "memprof/report.hpp"
#include "os/vfs.hpp"
#include "support/arg_scan.hpp"

namespace {

constexpr const char* kUsage =
    "usage: viprof_report --in DIR [--top N] [--threads N]\n"
    "                     [--oprofile-view] [--annotate IMAGE:SYMBOL]\n"
    "  --threads N resolves samples on N worker threads\n"
    "  (0 = one per hardware thread); output is identical.\n"
    "  --oprofile-view resolves as stock OProfile would\n"
    "  (anon ranges, opaque boot image) for comparison.\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace viprof;

  std::string in_dir;
  std::string annotate_target;
  std::size_t top = 20;
  std::size_t threads = 1;
  bool vm_aware = true;
  support::ArgScan args(argc, argv, kUsage);
  while (args.next()) {
    if (args.is("--in")) in_dir = args.value();
    else if (args.is("--top")) top = args.value_u64();
    else if (args.is("--threads")) threads = args.value_u64();
    else if (args.is("--oprofile-view")) vm_aware = false;
    else if (args.is("--annotate")) annotate_target = args.value();
    else args.fail_unknown();
  }
  if (in_dir.empty()) args.fail();

  os::Vfs vfs;
  vfs.import_from_directory(in_dir);
  const core::ArchiveResolver resolver(vfs, "archive", vm_aware);

  core::Profile profile;
  const std::vector<hw::EventKind> events = {hw::EventKind::kGlobalPowerEvents,
                                             hw::EventKind::kBsqCacheReference};
  // The ArchiveResolver keeps no outcome tallies; the pipeline's per-shard
  // stats are discarded.
  core::ResolvePipeline pipeline(core::PipelineConfig{threads});
  const auto resolve_fn = [&resolver](const core::LoggedSample& s,
                                      core::ResolveStats&) {
    return resolver.resolve(s);
  };
  std::vector<core::LoggedSample> time_samples;  // kept for --annotate
  std::uint64_t total = 0;
  for (hw::EventKind event : events) {
    std::vector<core::LoggedSample> samples =
        core::SampleLogReader::read(vfs, "samples", event);
    total += samples.size();
    pipeline.aggregate_profile(samples, event, resolve_fn, profile);
    if (event == hw::EventKind::kGlobalPowerEvents) time_samples = std::move(samples);
  }
  // Object-centric memory profile (DESIGN.md §15): DMISS_OBJ samples
  // resolved against the epoch object maps, ranked per allocation site.
  const memprof::ObjectReport obj =
      memprof::build_object_report(vfs, "samples", resolver.registrations());

  if (total == 0 && obj.samples == 0) {
    std::fprintf(stderr, "no samples under %s/samples\n", in_dir.c_str());
    return 1;
  }

  if (total != 0) {
    std::printf("%llu samples, %zu images, %zu processes (%s view)\n\n",
                static_cast<unsigned long long>(total), resolver.image_count(),
                resolver.process_count(), vm_aware ? "VIProf" : "stock OProfile");
    std::printf("%s", profile.render(events, top).c_str());
  }

  if (obj.samples != 0 || !obj.sites.sites().empty()) {
    std::printf("%s-- memory profile (%llu object samples) --\n%s",
                total != 0 ? "\n" : "", static_cast<unsigned long long>(obj.samples),
                memprof::render_memprof(obj.sites, obj.profile, top).c_str());
  }

  if (!annotate_target.empty()) {
    const auto colon = annotate_target.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--annotate wants IMAGE:SYMBOL\n");
      return support::kExitUsage;
    }
    // Reuse the already-read time samples instead of re-reading the log.
    const core::Annotation ann = core::annotate(
        time_samples, [&](const core::LoggedSample& s) { return resolver.resolve(s); },
        annotate_target.substr(0, colon), annotate_target.substr(colon + 1));
    std::printf("\n-- annotation (time samples) --\n%s", ann.render().c_str());
  }
  return 0;
}
