// viprof_store — the persistent profile store's CLI (DESIGN.md §11).
//
//   viprof_store ingest   --snap FILE|DIR --into DIR [--tick-base N]
//                         [--compact] [--threads N]
//   viprof_store compact  --store DIR [--threads N]
//   viprof_store fsck     --store DIR [--repair] [--quiet]
//   viprof_store top      --store DIR [--from T] [--to T] [--session S]
//                         [--event E] [--top N]
//   viprof_store series   --store DIR --image I --symbol SYM [--event E]
//                         [--from T] [--to T] [--session S]
//   viprof_store diff     --store DIR --before LO[:HI] --after LO[:HI]
//                         [--session S] [--event E] [--top N]
//   viprof_store segments --store DIR
//
// `ingest` converts a service snapshot (viprof_serve --export) into store
// intervals: each session's per-epoch profile becomes one interval at tick
// tick-base + epoch, the batch is sealed, and — with --compact — merged.
// The store directory round-trips through os::Vfs, so every mutation is
// written back with the same atomic temp+rename publish the store itself
// uses; query subcommands never modify the host directory.
//
// Exit status: 0 ok, 1 semantic findings (fsck: salvaged damage), 2 load
// errors (missing/corrupt store or snapshot), 3 usage. fsck's code is the
// store verdict itself (core::FsckVerdict convention).
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "os/vfs.hpp"
#include "service/query.hpp"
#include "store/profile_store.hpp"
#include "support/arg_scan.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace viprof;

constexpr const char* kUsage =
    "usage: viprof_store ingest   --snap FILE|DIR --into DIR [--tick-base N]\n"
    "                             [--compact] [--threads N]\n"
    "       viprof_store compact  --store DIR [--threads N]\n"
    "       viprof_store fsck     --store DIR [--repair] [--quiet]\n"
    "       viprof_store top [N]  --store DIR [--from T] [--to T] [--session S]\n"
    "                             [--event E] [--top N]\n"
    "       viprof_store series   --store DIR --image I --symbol SYM [--event E]\n"
    "                             [--from T] [--to T] [--session S]\n"
    "       viprof_store diff     --store DIR --before LO[:HI] --after LO[:HI]\n"
    "                             [--session S] [--event E] [--top N]\n"
    "       viprof_store segments --store DIR\n"
    "--snap takes a viprof-snapshot v1 file or a directory holding\n"
    "service.snap; each session epoch becomes one interval at tick\n"
    "tick-base + epoch. Windows are inclusive ticks.\n"
    "events: time (GLOBAL_POWER_EVENTS), dmiss (BSQ_CACHE_REFERENCE), or a\n"
    "full event name\n";

hw::EventKind event_or_die(const std::string& name) {
  if (name == "time") return hw::EventKind::kGlobalPowerEvents;
  if (name == "dmiss") return hw::EventKind::kBsqCacheReference;
  for (const hw::EventKind kind : hw::kAllEventKinds)
    if (name == hw::to_string(kind)) return kind;
  std::fprintf(stderr, "viprof_store: unknown event %s\n%s", name.c_str(), kUsage);
  std::exit(support::kExitUsage);
}

service::ServiceSnapshot load_snapshot_or_die(const std::string& arg) {
  std::string path = arg;
  if (std::filesystem::is_directory(path)) path += "/service.snap";
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "viprof_store: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  auto snap = service::ServiceSnapshot::parse(contents.str());
  if (!snap) {
    std::fprintf(stderr, "viprof_store: %s is not a valid service snapshot\n",
                 path.c_str());
    std::exit(2);
  }
  return *std::move(snap);
}

/// Pulls the host store directory into `vfs`. `required` distinguishes
/// query/compact subcommands (the store must exist) from ingest (a fresh
/// directory is fine).
void import_store(os::Vfs& vfs, const std::string& dir, bool required) {
  if (std::filesystem::is_directory(dir)) {
    vfs.import_from_directory(dir);
  } else if (required) {
    std::fprintf(stderr, "viprof_store: %s is not a directory\n", dir.c_str());
    std::exit(2);
  }
  if (required && vfs.file_count() == 0) {
    std::fprintf(stderr, "viprof_store: nothing under %s\n", dir.c_str());
    std::exit(2);
  }
}

/// open() the store, dying on an unrecoverable layout. Recovery repairs
/// stay in the Vfs; only mutating subcommands sync them back to the host.
store::StoreRecovery open_or_die(store::ProfileStore& st) {
  store::StoreRecovery rec = st.open();
  if (rec.verdict == core::FsckVerdict::kUnrecoverable) {
    std::fprintf(stderr, "viprof_store: %s\n", rec.summary.c_str());
    std::exit(2);
  }
  return rec;
}

/// "LO" or "LO:HI" (inclusive ticks) into a window.
store::WindowSpec window_or_die(const std::string& spec, const std::string& session) {
  store::WindowSpec w;
  w.session = session;
  const std::size_t colon = spec.find(':');
  char* end = nullptr;
  w.tick_lo = std::strtoull(spec.c_str(), &end, 10);
  if (end == spec.c_str()) {
    std::fprintf(stderr, "viprof_store: bad window %s\n%s", spec.c_str(), kUsage);
    std::exit(support::kExitUsage);
  }
  w.tick_hi = colon == std::string::npos
                  ? w.tick_lo
                  : std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgScan args(argc, argv, kUsage);
  if (!args.next()) args.fail();
  const std::string cmd = args.arg();

  std::string snap_arg, store_dir, session, event_name, image, symbol;
  std::string before_spec, after_spec;
  std::uint64_t tick_base = 0;
  std::uint64_t from = 0, to = ~0ull;
  std::size_t top = 20;
  std::size_t threads = 1;
  bool compact_after = false, repair = false, quiet = false;
  while (args.next()) {
    if (args.is("--snap")) snap_arg = args.value();
    else if (args.is("--into") || args.is("--store")) store_dir = args.value();
    else if (args.is("--tick-base")) tick_base = args.value_u64();
    else if (args.is("--compact")) compact_after = true;
    else if (args.is("--threads")) threads = args.value_u64();
    else if (args.is("--repair")) repair = true;
    else if (args.is("--quiet")) quiet = true;
    else if (args.is("--from")) from = args.value_u64();
    else if (args.is("--to")) to = args.value_u64();
    else if (args.is("--session")) session = args.value();
    else if (args.is("--event")) event_name = args.value();
    else if (args.is("--image")) image = args.value();
    else if (args.is("--symbol")) symbol = args.value();
    else if (args.is("--before")) before_spec = args.value();
    else if (args.is("--after")) after_spec = args.value();
    else if (args.is("--top")) top = args.value_u64();
    else if (cmd == "top" && std::isdigit(static_cast<unsigned char>(args.arg()[0])))
      top = std::strtoull(args.arg(), nullptr, 10);  // `top N`, as viprof_query
    else args.fail_unknown();
  }
  if (store_dir.empty()) args.fail();

  os::Vfs vfs;
  store::StoreConfig config;
  config.root = "";  // the host directory is the store root

  if (cmd == "ingest") {
    if (snap_arg.empty()) args.fail();
    const service::ServiceSnapshot snap = load_snapshot_or_die(snap_arg);
    import_store(vfs, store_dir, /*required=*/false);
    store::ProfileStore st(vfs, config);
    open_or_die(st);
    std::uint64_t ingested = 0;
    for (const service::SessionSnapshot& s : snap.sessions) {
      for (const auto& [epoch, profile] : s.epochs) {
        store::IntervalProfile iv;
        iv.session = s.id;
        iv.tick_lo = iv.tick_hi = tick_base + epoch;
        iv.epoch_lo = iv.epoch_hi = epoch;
        iv.profile = profile;
        if (st.ingest(std::move(iv))) ++ingested;
      }
    }
    st.seal_active();
    std::size_t merged = 0;
    if (compact_after) {
      support::ThreadPool pool(threads);
      merged = st.compact(&pool);
    }
    vfs.sync_to_directory(store_dir);
    std::printf("ingested %llu interval(s) into %s: %zu segment(s), %llu row(s)%s\n",
                static_cast<unsigned long long>(ingested), store_dir.c_str(),
                st.segment_count(),
                static_cast<unsigned long long>(st.live_rows()),
                merged != 0 ? ", compacted" : "");
    return 0;
  }

  if (cmd == "compact") {
    import_store(vfs, store_dir, /*required=*/true);
    store::ProfileStore st(vfs, config);
    open_or_die(st);
    support::ThreadPool pool(threads);
    const std::size_t outputs = st.compact(&pool);
    vfs.sync_to_directory(store_dir);
    std::printf("compaction wrote %zu segment(s); %zu live, %llu interval(s), %llu row(s)\n",
                outputs, st.segment_count(),
                static_cast<unsigned long long>(st.live_intervals()),
                static_cast<unsigned long long>(st.live_rows()));
    return 0;
  }

  if (cmd == "fsck") {
    import_store(vfs, store_dir, /*required=*/true);
    store::ProfileStore st(vfs, config);
    const store::StoreRecovery rec = repair ? st.open() : st.fsck();
    if (repair && rec.verdict != core::FsckVerdict::kUnrecoverable)
      vfs.sync_to_directory(store_dir);
    if (!quiet && !rec.details.empty()) std::fputs(rec.details.c_str(), stdout);
    std::printf("%s%s\n", rec.summary.c_str(),
                repair && rec.verdict != core::FsckVerdict::kUnrecoverable
                    ? ", repairs written back"
                    : "");
    return static_cast<int>(rec.verdict);
  }

  // Everything below is a read-only query over an opened store.
  import_store(vfs, store_dir, /*required=*/true);
  store::ProfileStore st(vfs, config);
  open_or_die(st);

  if (cmd == "top") {
    store::WindowSpec w{from, to, session};
    std::vector<hw::EventKind> events = {hw::EventKind::kGlobalPowerEvents,
                                         hw::EventKind::kBsqCacheReference};
    if (!event_name.empty()) events = {event_or_die(event_name)};
    std::printf("%s", st.render_top(w, events, top).c_str());
    return 0;
  }

  if (cmd == "series") {
    if (image.empty() || symbol.empty()) args.fail();
    store::WindowSpec w{from, to, session};
    const hw::EventKind event = event_name.empty()
                                    ? hw::EventKind::kGlobalPowerEvents
                                    : event_or_die(event_name);
    std::printf("%s", st.render_series(w, image, symbol, event).c_str());
    return 0;
  }

  if (cmd == "diff") {
    if (before_spec.empty() || after_spec.empty()) args.fail();
    const hw::EventKind event = event_name.empty()
                                    ? hw::EventKind::kGlobalPowerEvents
                                    : event_or_die(event_name);
    std::printf("%s", st.render_diff(window_or_die(before_spec, session),
                                     window_or_die(after_spec, session), event, top)
                          .c_str());
    return 0;
  }

  if (cmd == "segments") {
    std::printf("%s", st.render_segments().c_str());
    return 0;
  }

  args.fail();
}
