// viprof_sim — run a profiled workload and optionally export the session
// for offline post-processing (the opcontrol/oparchive half of the tool
// pair; see viprof_report for the opreport half).
//
//   viprof_sim --workload ps --mode viprof --period 90000 --top 15
//   viprof_sim --workload pseudojbb --mode viprof --out /tmp/session
//   viprof_report --in /tmp/session --top 20
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/viprof.hpp"
#include "memprof/agent.hpp"
#include "memprof/report.hpp"
#include "support/arg_scan.hpp"
#include "workloads/common.hpp"
#include "workloads/generator.hpp"
#include "workloads/memmix.hpp"

namespace {

using namespace viprof;

constexpr const char* kUsage =
    "usage: viprof_sim [--workload NAME] [--mode base|oprofile|viprof]\n"
    "                  [--period CYCLES] [--top N] [--seed N]\n"
    "                  [--callgraph] [--memprof] [--out DIR]\n"
    "workloads: pseudojbb JVM98 antlr bloat fop hsqldb pmd xalan ps\n"
    "           synthetic (default) allocheavy fragheavy leakshaped\n"
    "  --memprof  track heap objects, sample L2 data misses and rank\n"
    "             allocation sites (viprof mode only)\n";

workloads::Workload find_workload(const std::string& name) {
  if (name == "synthetic") {
    workloads::GeneratorOptions opt;
    opt.name = "synthetic";
    opt.total_app_ops = 30'000'000;
    opt.nursery_bytes = 2ull << 20;
    opt.native_frac = 0.08;
    opt.syscall_frac = 0.04;
    return workloads::make_synthetic(opt);
  }
  if (name == "allocheavy") return workloads::make_alloc_heavy();
  if (name == "fragheavy") return workloads::make_frag_heavy();
  if (name == "leakshaped") return workloads::make_leak_shaped();
  for (workloads::Workload& w : workloads::figure2_suite()) {
    if (w.name == name) return w;
  }
  std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
  std::exit(support::kExitUsage);
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_name = "synthetic";
  std::string mode_name = "viprof";
  std::uint64_t period = 90'000;
  std::size_t top = 15;
  std::uint64_t seed = 0x2007;
  bool callgraph = false;
  bool memprof_on = false;
  std::string out_dir;

  support::ArgScan args(argc, argv, kUsage);
  while (args.next()) {
    if (args.is("--workload")) workload_name = args.value();
    else if (args.is("--mode")) mode_name = args.value();
    else if (args.is("--period")) period = args.value_u64();
    else if (args.is("--top")) top = args.value_u64();
    else if (args.is("--seed")) seed = args.value_u64();
    else if (args.is("--callgraph")) callgraph = true;
    else if (args.is("--memprof")) memprof_on = true;
    else if (args.is("--out")) out_dir = args.value();
    else args.fail_unknown();
  }

  core::ProfilingMode mode = core::ProfilingMode::kBase;
  if (mode_name == "base") mode = core::ProfilingMode::kBase;
  else if (mode_name == "oprofile") mode = core::ProfilingMode::kOprofile;
  else if (mode_name == "viprof") mode = core::ProfilingMode::kViprof;
  else args.fail();

  workloads::Workload w = find_workload(workload_name);

  memprof_on = memprof_on && mode == core::ProfilingMode::kViprof;
  os::MachineConfig mcfg;
  mcfg.seed = seed;
  os::Machine machine(mcfg);
  if (memprof_on) w.vm.heap.track_objects = true;
  jvm::Vm vm(machine, w.vm);
  core::SessionConfig config;
  config.mode = mode;
  config.counters = {
      {hw::EventKind::kGlobalPowerEvents, period, true},
      {hw::EventKind::kBsqCacheReference, std::max<std::uint64_t>(period / 64, 200), true},
  };
  if (memprof_on) {
    config.counters.push_back(
        {hw::EventKind::kObjDmiss, std::max<std::uint64_t>(period / 64, 200), true});
    config.agent.obj_map_dir = "obj_maps";
  }
  core::ProfilingSession session(machine, vm, config);
  memprof::MemProfAgent memprof_agent(machine);
  session.attach();
  if (memprof_on) vm.add_listener(&memprof_agent);
  vm.setup(w.program);
  const core::SessionResult result = session.run();

  std::printf("workload %s under %s: %.2f virtual s, %llu samples, %llu epochs\n",
              w.name.c_str(), mode_name.c_str(),
              static_cast<double>(result.cycles) / workloads::kCyclesPerSecond,
              static_cast<unsigned long long>(result.nmi_count),
              static_cast<unsigned long long>(result.vm.collections));

  if (mode != core::ProfilingMode::kBase) {
    std::printf("\n%s\n",
                session
                    .report_text({hw::EventKind::kGlobalPowerEvents,
                                  hw::EventKind::kBsqCacheReference},
                                 top)
                    .c_str());
    if (callgraph) {
      std::printf("-- call graph --\n%s\n",
                  session.build_callgraph(hw::EventKind::kGlobalPowerEvents)
                      .render(top)
                      .c_str());
    }
    if (memprof_on) {
      const memprof::ObjectReport obj = memprof::build_object_report(
          machine.vfs(), "samples", session.registrations().all());
      std::printf("-- memory profile (%llu object samples) --\n%s\n",
                  static_cast<unsigned long long>(obj.samples),
                  memprof::render_memprof(obj.sites, obj.profile, top).c_str());
    }
  }

  if (!out_dir.empty()) {
    session.export_archive();
    machine.vfs().export_to_directory(out_dir);
    std::printf("session exported to %s (post-process with viprof_report)\n",
                out_dir.c_str());
  }
  return 0;
}
