// viprof_serve — the continuous-profiling service, driven to completion
// over recorded sessions (the oprofiled-as-a-service analogue,
// DESIGN.md §10).
//
// Each --in DIR is one recorded session (the layout viprof_report reads);
// its basename becomes the session id and a dedicated client thread
// replays it over a loopback connection — registrations, world files and
// checksummed sample batches — while the shared ingest pool aggregates
// online. After the streams drain, queries run against the live
// aggregates, --verify-offline checks the online render byte-for-byte
// against the offline viprof_report aggregation, and --export writes the
// per-session reports, the service snapshot (for viprof_query) and the
// server's own telemetry.
//
// Exit status: 0 ok, 1 online/offline verification mismatch, 2 load
// errors, 3 bad usage.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "os/vfs.hpp"
#include "service/client.hpp"
#include "service/scenario.hpp"
#include "service/server.hpp"
#include "support/arg_scan.hpp"

namespace {

using namespace viprof;

constexpr const char* kUsage =
    "usage: viprof_serve [--in DIR]... [--demo] [--threads N] [--queue N]\n"
    "                    [--policy backpressure|drop] [--batch N]\n"
    "                    [--query CMD]... [--verify-offline] [--export DIR]\n"
    "                    [--top N]\n"
    "  --in DIR          replay a recorded session directory (repeatable;\n"
    "                    the basename becomes the session id)\n"
    "  --demo            replay a built-in two-VM recorded scenario\n"
    "  --threads N       ingest worker threads (default 2)\n"
    "  --queue N         per-session batch queue capacity (default 64)\n"
    "  --policy P        overload policy: backpressure (default) or drop\n"
    "  --batch N         sample records per wire batch (default 256)\n"
    "  --query CMD       run a query after ingest (repeatable), e.g.\n"
    "                    'sessions', 'top 10', 'since-epoch 4', 'arcs 5',\n"
    "                    'stats [--json]', 'trace'\n"
    "  --verify-offline  check each online render against viprof_report's\n"
    "                    offline aggregation (exit 1 on any mismatch)\n"
    "  --export DIR      write per-session reports, service.snap and\n"
    "                    metrics.json\n";

std::string session_id_from(const std::string& dir) {
  std::string trimmed = dir;
  while (trimmed.size() > 1 && trimmed.back() == '/') trimmed.pop_back();
  const std::string name = std::filesystem::path(trimmed).filename().string();
  return name.empty() ? trimmed : name;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> in_dirs;
  std::vector<std::string> queries;
  bool demo = false;
  bool verify_offline = false;
  std::string export_dir;
  std::size_t top = 20;
  std::size_t batch_records = 256;
  service::ServerConfig config;

  support::ArgScan args(argc, argv, kUsage);
  while (args.next()) {
    if (args.is("--in")) in_dirs.emplace_back(args.value());
    else if (args.is("--demo")) demo = true;
    else if (args.is("--threads")) config.ingest_threads = args.value_u64();
    else if (args.is("--queue")) config.queue_capacity = args.value_u64();
    else if (args.is("--policy")) {
      const std::string policy = args.value();
      if (policy == "backpressure") config.policy = service::OverloadPolicy::kBackpressure;
      else if (policy == "drop") config.policy = service::OverloadPolicy::kDropNewest;
      else args.fail();
    }
    else if (args.is("--batch")) batch_records = args.value_u64();
    else if (args.is("--query")) queries.emplace_back(args.value());
    else if (args.is("--verify-offline")) verify_offline = true;
    else if (args.is("--export")) export_dir = args.value();
    else if (args.is("--top")) top = args.value_u64();
    else args.fail_unknown();
  }
  if (in_dirs.empty() && !demo) args.fail();

  // Load every recorded world up front (the threads borrow them).
  struct Source {
    std::string id;
    std::unique_ptr<os::Vfs> world;
    std::unique_ptr<service::RecordedScenario> demo_scenario;  // keeps vfs alive
  };
  std::vector<Source> sources;
  for (const std::string& dir : in_dirs) {
    Source src;
    src.id = session_id_from(dir);
    src.world = std::make_unique<os::Vfs>();
    src.world->import_from_directory(dir);
    if (!src.world->exists("archive/manifest")) {
      std::fprintf(stderr, "viprof_serve: %s has no archive/manifest\n", dir.c_str());
      return 2;
    }
    sources.push_back(std::move(src));
  }
  if (demo) {
    Source src;
    src.id = "demo";
    src.demo_scenario = service::record_scenario();
    sources.push_back(std::move(src));
  }

  service::ProfileServer server(config);
  {
    std::vector<std::thread> clients;
    clients.reserve(sources.size());
    for (Source& src : sources) {
      clients.emplace_back([&server, &src, batch_records] {
        const os::Vfs& world =
            src.world ? *src.world : src.demo_scenario->vfs();
        auto conn = server.connect(src.id);
        service::ReplayClient client(world, src.id, *conn,
                                     service::ReplayOptions{batch_records, nullptr, {}});
        client.run();
      });
    }
    for (std::thread& t : clients) t.join();
  }
  server.drain();

  std::printf("%s", server.query("sessions").c_str());
  for (const std::string& q : queries) {
    std::printf("\n-- query: %s --\n%s", q.c_str(), server.query(q).c_str());
  }

  int status = 0;
  if (verify_offline) {
    const std::vector<hw::EventKind> events = {hw::EventKind::kGlobalPowerEvents,
                                               hw::EventKind::kBsqCacheReference};
    for (const Source& src : sources) {
      const os::Vfs& world = src.world ? *src.world : src.demo_scenario->vfs();
      const std::string online = server.session_report(src.id, top, events);
      const std::string offline = service::offline_render(world, events, top);
      if (online == offline) {
        std::printf("\nverify %s: online aggregate identical to offline report\n",
                    src.id.c_str());
      } else {
        std::fprintf(stderr, "\nverify %s: MISMATCH\n-- online --\n%s-- offline --\n%s",
                     src.id.c_str(), online.c_str(), offline.c_str());
        status = 1;
      }
    }
  }

  if (!export_dir.empty()) {
    server.export_state(export_dir, top);
    std::printf("\nservice state exported to %s (query with viprof_query)\n",
                export_dir.c_str());
  }
  return status;
}
