// viprof_fsck — integrity checker and recovery tool for an exported
// session directory (the e2fsck analogue for a sample tree).
//
//   viprof_fsck --in DIR [--out DIR] [--samples SUBDIR] [--quiet]
//
// Scans every per-event sample log (record framing: sequence numbers +
// checksums) and every epoch code map (entry count + checksum trailer),
// reports exactly what is intact, salvageable and lost, and — with --out —
// emits the recoverable subset: sample logs re-framed from their verified
// records, damaged code maps rewritten as their salvaged prefix with the
// `truncated` marker preserved, everything else copied verbatim.
//
// Exit status: 0 when the tree is clean, 1 when corruption was found
// (whether or not a recovery tree was written), 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/code_map.hpp"
#include "core/sample_log.hpp"
#include "hw/event.hpp"
#include "os/vfs.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: viprof_fsck --in DIR [--out DIR] [--samples SUBDIR] [--quiet]\n"
               "  --in DIR        exported session directory to check\n"
               "  --out DIR       write the recoverable subset here\n"
               "  --samples NAME  sample subtree inside DIR (default: samples)\n"
               "  --quiet         only print the final verdict\n");
  std::exit(2);
}

std::string basename_of(const std::string& path) {
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace viprof;

  std::string in_dir;
  std::string out_dir;
  std::string samples_dir = "samples";
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--in")) in_dir = need("--in");
    else if (!std::strcmp(argv[i], "--out")) out_dir = need("--out");
    else if (!std::strcmp(argv[i], "--samples")) samples_dir = need("--samples");
    else if (!std::strcmp(argv[i], "--quiet")) quiet = true;
    else usage();
  }
  if (in_dir.empty()) usage();
  if (!std::filesystem::is_directory(in_dir)) {
    std::fprintf(stderr, "viprof_fsck: %s is not a directory\n", in_dir.c_str());
    return 2;
  }

  os::Vfs vfs;
  vfs.import_from_directory(in_dir);
  if (vfs.file_count() == 0) {
    std::fprintf(stderr, "viprof_fsck: nothing under %s\n", in_dir.c_str());
    return 2;
  }

  os::Vfs out;
  bool corrupt = false;
  std::uint64_t total_valid = 0, total_salvaged = 0, total_discarded = 0;
  std::uint64_t total_missing = 0, total_duplicates = 0;

  // --- Sample logs: one file per event, verified record by record ---------
  core::SampleLogWriter rewriter(out, samples_dir);
  std::vector<std::string> rewritten_paths;
  for (hw::EventKind event : hw::kAllEventKinds) {
    core::SampleLogReadStatus st;
    const auto samples = core::SampleLogReader::read_checked(vfs, samples_dir, event, st);
    if (st.missing) continue;
    const std::string path = core::SampleLogWriter::path_for(samples_dir, event);
    rewritten_paths.push_back(path);
    total_valid += st.valid;
    total_salvaged += st.salvaged;
    total_discarded += st.discarded_lines;
    total_missing += st.missing_records;
    total_duplicates += st.duplicate_records;
    if (!st.clean()) corrupt = true;
    if (!quiet) {
      std::printf("%-60s %s: %llu valid", path.c_str(),
                  st.clean() ? "clean" : "CORRUPT",
                  static_cast<unsigned long long>(st.valid));
      if (!st.clean())
        std::printf(", %llu salvaged, %llu line(s) discarded (%llu bytes)",
                    static_cast<unsigned long long>(st.salvaged),
                    static_cast<unsigned long long>(st.discarded_lines),
                    static_cast<unsigned long long>(st.discarded_bytes));
      if (st.missing_records)
        std::printf(", %llu missing (sequence gaps)",
                    static_cast<unsigned long long>(st.missing_records));
      if (st.duplicate_records)
        std::printf(", %llu duplicate(s) dropped",
                    static_cast<unsigned long long>(st.duplicate_records));
      std::printf("\n");
    }
    if (!out_dir.empty()) {
      for (const core::LoggedSample& s : samples) rewriter.append(event, s);
    }
  }
  if (!out_dir.empty()) rewriter.flush();

  // --- Epoch code maps: entry count + checksum trailer --------------------
  std::uint64_t maps_intact = 0, maps_truncated = 0, entries_salvaged = 0;
  for (const std::string& path : vfs.list("")) {
    if (basename_of(path).rfind("map.", 0) != 0) continue;
    const auto contents = vfs.read(path);
    const auto epoch_hint = core::CodeMapFile::epoch_from_path(path);
    const core::CodeMapFile::Recovery rec =
        core::CodeMapFile::salvage(*contents, epoch_hint.value_or(0));
    if (rec.intact) {
      ++maps_intact;
    } else {
      ++maps_truncated;
      entries_salvaged += rec.file.entries.size();
      corrupt = true;
      if (!quiet)
        std::printf("%-60s CORRUPT: salvaged %zu of %llu entries (epoch %llu%s)\n",
                    path.c_str(), rec.file.entries.size(),
                    static_cast<unsigned long long>(rec.entries_expected),
                    static_cast<unsigned long long>(rec.file.epoch),
                    rec.header_ok ? "" : ", epoch from file name");
    }
    if (!out_dir.empty()) out.write(path, rec.file.serialize());
  }

  // --- Everything else (manifest, RVM.map, reports) copies verbatim -------
  if (!out_dir.empty()) {
    for (const std::string& path : vfs.list("")) {
      if (out.exists(path)) continue;  // already rewritten above
      bool handled = false;
      for (const std::string& p : rewritten_paths) handled = handled || p == path;
      if (!handled) out.write(path, *vfs.read(path));
    }
    out.export_to_directory(out_dir);
  }

  std::printf("%s: %llu valid sample(s) (%llu salvaged), %llu discarded, "
              "%llu missing, %llu duplicate(s); %llu map(s) intact, %llu truncated "
              "(%llu entries salvaged)%s\n",
              corrupt ? "CORRUPTION FOUND" : "clean",
              static_cast<unsigned long long>(total_valid),
              static_cast<unsigned long long>(total_salvaged),
              static_cast<unsigned long long>(total_discarded),
              static_cast<unsigned long long>(total_missing),
              static_cast<unsigned long long>(total_duplicates),
              static_cast<unsigned long long>(maps_intact),
              static_cast<unsigned long long>(maps_truncated),
              static_cast<unsigned long long>(entries_salvaged),
              out_dir.empty() ? "" : (", recovery tree written to " + out_dir).c_str());
  return corrupt ? 1 : 0;
}
