// viprof_fsck — integrity checker and recovery tool for an exported
// session directory (the e2fsck analogue for a sample tree).
//
//   viprof_fsck --in DIR [--out DIR] [--samples SUBDIR] [--quiet] [--metrics]
//   viprof_fsck --in DIR --store [--out DIR] [--quiet]
//   viprof_fsck --in DIR --fleet [--quiet]
//
// Thin CLI over core::fsck_tree: scans every per-event sample log (record
// framing: sequence numbers + checksums) and every epoch code map (entry
// count + checksum trailer), reports findings through the self-telemetry
// registry (fsck.* counters; --metrics dumps them), and — with --out —
// emits the recoverable subset.
//
// --store switches to the persistent profile store layout (DESIGN.md §11):
// the crc-guarded manifest and §7-framed segment files are checked through
// store::ProfileStore::fsck, and --out writes the repaired store.
//
// --fleet switches to a fleet namespace (DESIGN.md §12): the crc-guarded
// fleet manifest is parsed, every shard partition is walked through store
// recovery, and the degradation ledger is audited — the check fails unless
// acked == stored + lost exactly and the stored total matches what the
// partitions actually hold.
//
// Exit status mirrors the verdict:
//   0  clean          every artifact verified end to end
//   1  salvaged       damage found; every damaged artifact partly recovered
//   2  unrecoverable  some artifact yielded nothing usable
//   3  usage errors
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/fsck.hpp"
#include "fleet/fsck.hpp"
#include "memprof/fsck.hpp"
#include "os/vfs.hpp"
#include "store/profile_store.hpp"
#include "support/arg_scan.hpp"
#include "support/telemetry.hpp"

namespace {

constexpr const char* kUsage =
    "usage: viprof_fsck --in DIR [--out DIR] [--samples SUBDIR] [--quiet]\n"
    "                   [--metrics]\n"
    "       viprof_fsck --in DIR --store [--out DIR] [--quiet]\n"
    "       viprof_fsck --in DIR --fleet [--quiet]\n"
    "  --in DIR        exported session directory to check\n"
    "  --out DIR       write the recoverable subset here\n"
    "  --samples NAME  sample subtree inside DIR (default: samples)\n"
    "  --store         DIR is a persistent profile store (manifest +\n"
    "                  segment files) rather than a sample tree\n"
    "  --fleet         DIR is a fleet namespace: fleet manifest + one store\n"
    "                  partition per shard; audits the degradation ledger\n"
    "  --quiet         only print the final verdict\n"
    "  --metrics       dump the fsck.* telemetry registry after the scan\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace viprof;

  std::string in_dir;
  std::string out_dir;
  core::FsckOptions opts;
  bool quiet = false;
  bool metrics = false;
  bool store_layout = false;
  bool fleet_layout = false;
  support::ArgScan args(argc, argv, kUsage);
  while (args.next()) {
    if (args.is("--in")) in_dir = args.value();
    else if (args.is("--out")) out_dir = args.value();
    else if (args.is("--samples")) opts.samples_dir = args.value();
    else if (args.is("--store")) store_layout = true;
    else if (args.is("--fleet")) fleet_layout = true;
    else if (args.is("--quiet")) quiet = true;
    else if (args.is("--metrics")) metrics = true;
    else args.fail_unknown();
  }
  if (in_dir.empty()) args.fail();
  if (store_layout && fleet_layout) args.fail();
  if (!std::filesystem::is_directory(in_dir)) {
    std::fprintf(stderr, "viprof_fsck: %s is not a directory\n", in_dir.c_str());
    return support::kExitUsage;
  }

  os::Vfs vfs;
  vfs.import_from_directory(in_dir);
  if (vfs.file_count() == 0) {
    std::fprintf(stderr, "viprof_fsck: nothing under %s\n", in_dir.c_str());
    return support::kExitUsage;
  }

  if (fleet_layout) {
    const fleet::FleetFsckReport report = fleet::fsck_fleet(vfs);
    if (!quiet && !report.details.empty()) std::fputs(report.details.c_str(), stdout);
    std::printf("%s\n", report.summary.c_str());
    return static_cast<int>(report.verdict);
  }

  if (store_layout) {
    store::StoreConfig config;
    config.root = "";  // --in DIR is the store root
    store::ProfileStore st(vfs, config);
    // Without --out this is a read-only dry run; with --out, open() applies
    // the repairs inside the Vfs and the repaired store is exported whole.
    const store::StoreRecovery rec = out_dir.empty() ? st.fsck() : st.open();
    const bool recovered =
        !out_dir.empty() && rec.verdict != core::FsckVerdict::kUnrecoverable;
    if (recovered) vfs.export_to_directory(out_dir);
    if (!quiet && !rec.details.empty()) std::fputs(rec.details.c_str(), stdout);
    std::printf("%s%s\n", rec.summary.c_str(),
                recovered ? (", repaired store written to " + out_dir).c_str() : "");
    return static_cast<int>(rec.verdict);
  }

  os::Vfs out;
  opts.write_recovery = !out_dir.empty();
  opts.verbose = !quiet;
  support::Telemetry telemetry;
  const core::FsckReport report = core::fsck_tree(vfs, &out, telemetry, opts);
  // Object maps ride the same tree (fsck_tree copies them verbatim into the
  // recovery tree); the memprof pass verifies them and rewrites the damaged
  // ones as their salvaged prefixes.
  const memprof::ObjectFsckReport omaps = memprof::fsck_object_maps(
      vfs, opts.write_recovery ? &out : nullptr, telemetry, !quiet);
  core::FsckVerdict verdict = report.verdict;
  if (omaps.corrupt && verdict == core::FsckVerdict::kClean)
    verdict = core::FsckVerdict::kSalvaged;
  if (omaps.dead_maps > 0) verdict = core::FsckVerdict::kUnrecoverable;

  if (!quiet && !report.details.empty()) std::fputs(report.details.c_str(), stdout);
  if (!quiet && !omaps.details.empty()) std::fputs(omaps.details.c_str(), stdout);
  if (opts.write_recovery) out.export_to_directory(out_dir);
  const bool any_omaps = omaps.maps_intact + omaps.maps_truncated > 0;
  std::printf("%s%s%s%s\n", report.summary.c_str(), any_omaps ? "; " : "",
              any_omaps ? omaps.summary.c_str() : "",
              out_dir.empty() ? "" : (", recovery tree written to " + out_dir).c_str());
  // Snapshot after the object-map pass so fsck.omaps.* shows up too.
  if (metrics) std::fputs(telemetry.snapshot().render_text("fsck.").c_str(), stdout);
  return static_cast<int>(verdict);
}
