// viprof_fsck — integrity checker and recovery tool for an exported
// session directory (the e2fsck analogue for a sample tree).
//
//   viprof_fsck --in DIR [--out DIR] [--samples SUBDIR] [--quiet] [--metrics]
//
// Thin CLI over core::fsck_tree: scans every per-event sample log (record
// framing: sequence numbers + checksums) and every epoch code map (entry
// count + checksum trailer), reports findings through the self-telemetry
// registry (fsck.* counters; --metrics dumps them), and — with --out —
// emits the recoverable subset.
//
// Exit status mirrors the verdict:
//   0  clean          every artifact verified end to end
//   1  salvaged       damage found; every damaged artifact partly recovered
//   2  unrecoverable  some artifact yielded nothing usable
//   3  usage errors
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/fsck.hpp"
#include "os/vfs.hpp"
#include "support/telemetry.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: viprof_fsck --in DIR [--out DIR] [--samples SUBDIR] [--quiet]\n"
               "                   [--metrics]\n"
               "  --in DIR        exported session directory to check\n"
               "  --out DIR       write the recoverable subset here\n"
               "  --samples NAME  sample subtree inside DIR (default: samples)\n"
               "  --quiet         only print the final verdict\n"
               "  --metrics       dump the fsck.* telemetry registry after the scan\n");
  std::exit(viprof::core::kFsckExitUsage);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace viprof;

  std::string in_dir;
  std::string out_dir;
  core::FsckOptions opts;
  bool quiet = false;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--in")) in_dir = need("--in");
    else if (!std::strcmp(argv[i], "--out")) out_dir = need("--out");
    else if (!std::strcmp(argv[i], "--samples")) opts.samples_dir = need("--samples");
    else if (!std::strcmp(argv[i], "--quiet")) quiet = true;
    else if (!std::strcmp(argv[i], "--metrics")) metrics = true;
    else usage();
  }
  if (in_dir.empty()) usage();
  if (!std::filesystem::is_directory(in_dir)) {
    std::fprintf(stderr, "viprof_fsck: %s is not a directory\n", in_dir.c_str());
    return core::kFsckExitUsage;
  }

  os::Vfs vfs;
  vfs.import_from_directory(in_dir);
  if (vfs.file_count() == 0) {
    std::fprintf(stderr, "viprof_fsck: nothing under %s\n", in_dir.c_str());
    return core::kFsckExitUsage;
  }

  os::Vfs out;
  opts.write_recovery = !out_dir.empty();
  opts.verbose = !quiet;
  support::Telemetry telemetry;
  const core::FsckReport report = core::fsck_tree(vfs, &out, telemetry, opts);

  if (!quiet && !report.details.empty()) std::fputs(report.details.c_str(), stdout);
  if (opts.write_recovery) out.export_to_directory(out_dir);
  std::printf("%s%s\n", report.summary.c_str(),
              out_dir.empty() ? "" : (", recovery tree written to " + out_dir).c_str());
  if (metrics) std::fputs(report.metrics.render_text("fsck.").c_str(), stdout);
  return static_cast<int>(report.verdict);
}
