// viprof_fleet — demo / operations front end for the fault-tolerant fleet
// layer (DESIGN.md §12).
//
//   viprof_fleet serve --sessions N --shards K [--kill-at CP] [--batch R]
//                      [--threads T] [--seed S] [--query "TEXT"]...
//                      [--export DIR] [--quiet]
//   viprof_fleet query "TEXT" --fleet DIR
//   viprof_fleet fsck --fleet DIR [--quiet]
//
// serve records N synthetic sessions (service::record_scenario) and streams
// them through a fleet::Router over K shards. --kill-at CP schedules a
// FaultComponent::kFleet process kill at fleet checkpoint CP — the shard
// being streamed to dies mid-session and the router fails the session over
// to its ring successor (or counts it into fleet.lost.* when none is
// left). After ingest the degradation ledger is printed and audited with
// fsck_fleet; --export writes the whole fleet namespace (manifest + one
// store partition per shard) to a host directory that `viprof_fleet
// query`, `viprof_query --fleet`, and `viprof_fsck --fleet` can consume.
//
// Query verbs (Federator::query / OfflineFleet::query):
//   sessions
//   top N [--event time|dmiss] [--session S]
//   diff BEFORE AFTER [--event E] [--top N]
//   stats [--json]
//   trace
//
// Exit status: serve exits 0 only when the ledger balances exactly AND the
// fleet fsck verdict is clean; query exits 0/2 (load errors); fsck mirrors
// the verdict (0/1/2). Usage errors exit 3.
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fleet/federator.hpp"
#include "fleet/fsck.hpp"
#include "fleet/router.hpp"
#include "os/vfs.hpp"
#include "service/scenario.hpp"
#include "support/arg_scan.hpp"
#include "support/fault.hpp"

namespace {

using namespace viprof;

constexpr const char* kUsage =
    "usage: viprof_fleet serve --sessions N --shards K [--kill-at CP]\n"
    "                          [--batch R] [--threads T] [--seed S]\n"
    "                          [--query \"TEXT\"]... [--export DIR] [--quiet]\n"
    "       viprof_fleet query \"TEXT\" --fleet DIR\n"
    "       viprof_fleet fsck --fleet DIR [--quiet]\n"
    "  serve    stream N synthetic sessions across K shards; --kill-at CP\n"
    "           kills the streamed-to shard at fleet checkpoint CP\n"
    "  query    answer a federated query over an exported fleet directory\n"
    "  fsck     audit the fleet manifest, partitions, and the exact\n"
    "           degradation ledger (acked == stored + lost)\n"
    "  query text: sessions | top N [--event time|dmiss] [--session S] |\n"
    "              diff BEFORE AFTER [--event E] [--top N] |\n"
    "              stats [--json] | trace\n";

os::Vfs import_fleet_or_die(const std::string& dir) {
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "viprof_fleet: %s is not a directory\n", dir.c_str());
    std::exit(2);
  }
  os::Vfs vfs;
  vfs.import_from_directory(dir);
  if (vfs.file_count() == 0) {
    std::fprintf(stderr, "viprof_fleet: nothing under %s\n", dir.c_str());
    std::exit(2);
  }
  return vfs;
}

int cmd_serve(support::ArgScan& args) {
  std::size_t sessions = 4;
  std::size_t shards = 3;
  std::uint64_t kill_at = 0;
  std::size_t batch = 256;
  std::size_t threads = 0;  // 0 = the ServerConfig default
  std::uint64_t seed = 0x5e55;
  std::vector<std::string> queries;
  std::string export_dir;
  bool quiet = false;
  while (args.next()) {
    if (args.is("--sessions")) sessions = args.value_u64();
    else if (args.is("--shards")) shards = args.value_u64();
    else if (args.is("--kill-at")) kill_at = args.value_u64();
    else if (args.is("--batch")) batch = args.value_u64();
    else if (args.is("--threads")) threads = args.value_u64();
    else if (args.is("--seed")) seed = args.value_u64();
    else if (args.is("--query")) queries.push_back(args.value());
    else if (args.is("--export")) export_dir = args.value();
    else if (args.is("--quiet")) quiet = true;
    else args.fail_unknown();
  }
  if (sessions == 0 || shards == 0) args.fail();

  support::FaultInjector fault;
  if (kill_at > 0) fault.schedule_kill(support::FaultComponent::kFleet, kill_at);

  os::Vfs fleet_vfs;
  fleet::FleetConfig config;
  config.shards = shards;
  config.batch_records = batch;
  // More ingest workers per shard = more pressure on the named locks;
  // the contention walkthrough (DESIGN.md §13) raises this to make the
  // serialisation points visible in `viprof_stat contention`.
  if (threads > 0) config.server.ingest_threads = threads;
  config.fault = &fault;
  fleet::Router router(fleet_vfs, config);

  for (std::size_t i = 0; i < sessions; ++i) {
    service::ScenarioConfig sc;
    sc.vms = 2;
    sc.samples_per_event = 800;
    sc.epochs = 8;
    sc.methods = 64;
    sc.seed = seed + i;
    const auto world = service::record_scenario(sc);
    const std::string id = "sess-" + std::to_string(i);
    const fleet::SessionOutcome out = router.ingest(world->vfs(), id);
    if (!quiet) {
      std::printf("%-12s -> %-12s %s attempts=%zu sent=%llu stored=%llu\n",
                  id.c_str(), out.shard.empty() ? "-" : out.shard.c_str(),
                  out.completed ? "ok      "
                  : out.refused ? "refused "
                                : "lost    ",
                  out.attempts, static_cast<unsigned long long>(out.records_sent),
                  static_cast<unsigned long long>(out.records_stored));
    }
  }

  const store::FleetLedger& ledger = router.ledger();
  std::printf(
      "fleet: acked %llu sessions / %llu records; stored %llu, "
      "lost wire %llu queue %llu dead %llu; failover %llu, refused %llu, "
      "retried %llu, kills %llu\n",
      static_cast<unsigned long long>(ledger.acked_sessions),
      static_cast<unsigned long long>(ledger.acked_records),
      static_cast<unsigned long long>(ledger.stored_records),
      static_cast<unsigned long long>(ledger.lost_wire),
      static_cast<unsigned long long>(ledger.lost_queue),
      static_cast<unsigned long long>(ledger.lost_dead_records),
      static_cast<unsigned long long>(ledger.failover_sessions),
      static_cast<unsigned long long>(ledger.refused_sessions),
      static_cast<unsigned long long>(ledger.retried_sends),
      static_cast<unsigned long long>(fault.stats().kills));

  fleet::Federator federator(router);
  for (const std::string& q : queries) {
    std::printf("== query: %s\n%s", q.c_str(), federator.query(q).c_str());
  }

  const fleet::FleetFsckReport fsck = fleet::fsck_fleet(fleet_vfs);
  std::printf("%s\n", fsck.summary.c_str());

  if (!export_dir.empty()) {
    // Telemetry rides along with the namespace: per-shard + fleet
    // metrics.json / trace.json, so the exported directory answers
    // `viprof_query stats/trace --fleet` and feeds
    // `viprof_stat trace-merge` / `viprof_stat contention`.
    router.export_telemetry();
    fleet_vfs.export_to_directory(export_dir);
    if (!quiet)
      std::printf("fleet namespace written to %s\n", export_dir.c_str());
  }
  const bool ok = ledger.balanced() && fsck.verdict == core::FsckVerdict::kClean;
  return ok ? 0 : static_cast<int>(fsck.verdict);
}

int cmd_query(support::ArgScan& args) {
  if (!args.next()) args.fail();
  const std::string text = args.arg();
  std::string fleet_dir;
  while (args.next()) {
    if (args.is("--fleet")) fleet_dir = args.value();
    else args.fail_unknown();
  }
  if (fleet_dir.empty()) args.fail();

  os::Vfs vfs = import_fleet_or_die(fleet_dir);
  auto fleet = fleet::OfflineFleet::open(vfs);
  if (!fleet) {
    std::fprintf(stderr,
                 "viprof_fleet: %s has no valid fleet manifest\n",
                 fleet_dir.c_str());
    return 2;
  }
  std::printf("%s", fleet->query(text).c_str());
  return 0;
}

int cmd_fsck(support::ArgScan& args) {
  std::string fleet_dir;
  bool quiet = false;
  while (args.next()) {
    if (args.is("--fleet")) fleet_dir = args.value();
    else if (args.is("--quiet")) quiet = true;
    else args.fail_unknown();
  }
  if (fleet_dir.empty()) args.fail();

  const os::Vfs vfs = import_fleet_or_die(fleet_dir);
  const fleet::FleetFsckReport report = fleet::fsck_fleet(vfs);
  if (!quiet && !report.details.empty()) std::fputs(report.details.c_str(), stdout);
  std::printf("%s\n", report.summary.c_str());
  return static_cast<int>(report.verdict);
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgScan args(argc, argv, kUsage);
  if (!args.next()) args.fail();
  const std::string cmd = args.arg();
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "query") return cmd_query(args);
  if (cmd == "fsck") return cmd_fsck(args);
  args.fail();
}
