// viprof_stat — dump, diff and snapshot the profiler's own telemetry
// registry from an exported session tree (the vmstat/opcontrol --status
// analogue for the profiler's self-observability layer, DESIGN.md §8).
//
//   viprof_stat dump --in DIR|FILE [--json] [--prefix P]
//   viprof_stat diff --before DIR|FILE --after DIR|FILE [--prefix P]
//   viprof_stat snapshot --in DIR|FILE --out FILE
//   viprof_stat trace-merge --in DIR|FILE [--in ...] [--out FILE]
//   viprof_stat contention --in DIR|FILE [--in ...] [--top N]
//
// DIR|FILE is either a metrics.json written by Session::export_telemetry or
// an exported session directory (the telemetry subtree is located inside).
// `dump` renders the registry as fixed-width tables (--json re-emits
// canonical JSON instead); `diff` prints metric-by-metric deltas between
// two snapshots (CI trajectory checks); `snapshot` copies a validated,
// canonicalised snapshot to FILE for later diffing.
//
// `trace-merge` folds several Chrome trace rings (per-shard trace.json
// files from a fleet export, or any mix of server/Machine traces) into one
// trace: each input becomes a Chrome "process" (pid = input order, named
// after its source), worker threads stay distinct tids, and timestamps are
// rebased to the earliest event so the shards line up on one axis. A
// directory input uses its trace.json, or — fleet-export layout — every
// <subdir>/trace.json beneath it, sorted.
//
// `contention` ranks locks by total wait: every lock.<name>.wait_ns
// histogram across the inputs is folded with HistogramSummary::merged
// (count-weighted percentiles — rank quality, not exact re-quantiles) and
// rendered worst-first with its acquired/contended counters. Directory
// inputs locate metrics.json the same way trace-merge locates traces.
//
// Exit status: 0 on success, 1 when `diff` found differences, 2 on load
// errors (including no traces / no lock telemetry found), 3 on bad usage.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/arg_scan.hpp"
#include "support/format.hpp"
#include "support/telemetry.hpp"

namespace {

using viprof::support::ChromeTrace;
using viprof::support::HistogramSummary;
using viprof::support::TelemetrySnapshot;

constexpr const char* kUsage =
    "usage: viprof_stat dump --in DIR|FILE [--json] [--prefix P]\n"
    "       viprof_stat diff --before DIR|FILE --after DIR|FILE [--prefix P]\n"
    "       viprof_stat snapshot --in DIR|FILE --out FILE\n"
    "       viprof_stat trace-merge --in DIR|FILE [--in ...] [--out FILE]\n"
    "       viprof_stat contention --in DIR|FILE [--in ...] [--top N]\n"
    "DIR|FILE: a metrics.json (trace-merge: trace.json), or an exported\n"
    "directory containing one; trace-merge/contention also accept a fleet\n"
    "export root and use every <shard>/trace.json|metrics.json under it.\n";

/// A metrics.json path: the argument itself, or the conventional locations
/// inside an exported session directory.
std::string locate_metrics(const std::string& arg) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(arg)) return arg;
  for (const char* sub :
       {"/archive/telemetry/metrics.json", "/telemetry/metrics.json", "/metrics.json"}) {
    if (fs::is_regular_file(arg + sub)) return arg + sub;
  }
  return arg;  // fall through to the load error below
}

TelemetrySnapshot load_or_die(const std::string& arg) {
  const std::string path = locate_metrics(arg);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "viprof_stat: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  auto snap = TelemetrySnapshot::from_json(contents.str());
  if (!snap) {
    std::fprintf(stderr, "viprof_stat: %s is not a telemetry snapshot\n", path.c_str());
    std::exit(2);
  }
  return *std::move(snap);
}

std::string slurp_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "viprof_stat: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

/// Expands one --in argument into (label, path) pairs for `leaf` files
/// ("trace.json" / "metrics.json"). A file names itself (labelled by its
/// parent directory); a directory contributes its own leaf when present,
/// and otherwise every <subdir>/leaf beneath it in sorted order — the
/// fleet-export layout, where the subdirs are the shards.
std::vector<std::pair<std::string, std::string>> locate_leaves(
    const std::string& arg, const char* leaf) {
  namespace fs = std::filesystem;
  const auto label_for = [](const fs::path& p) {
    const std::string dir = p.parent_path().filename().string();
    return dir.empty() ? p.filename().string() : dir;
  };
  std::vector<std::pair<std::string, std::string>> out;
  if (!fs::is_directory(arg)) {
    out.emplace_back(label_for(fs::path(arg)), arg);
    return out;
  }
  const std::string candidates[] = {"/" + std::string(leaf),
                                    "/archive/telemetry/" + std::string(leaf)};
  for (const std::string& sub : candidates) {
    if (fs::is_regular_file(arg + sub)) {
      out.emplace_back(label_for(fs::path(arg + sub)), arg + sub);
      return out;
    }
  }
  std::vector<fs::path> subs;
  for (const auto& entry : fs::directory_iterator(arg))
    if (entry.is_directory() && fs::is_regular_file(entry.path() / leaf))
      subs.push_back(entry.path() / leaf);
  std::sort(subs.begin(), subs.end());
  for (const fs::path& p : subs) out.emplace_back(label_for(p), p.string());
  return out;
}

/// Restricts a snapshot to metrics whose name starts with `prefix`.
TelemetrySnapshot filtered(TelemetrySnapshot snap, const std::string& prefix) {
  if (prefix.empty()) return snap;
  auto keep = [&prefix](const std::string& name) {
    return name.compare(0, prefix.size(), prefix) == 0;
  };
  std::erase_if(snap.counters, [&](const auto& kv) { return !keep(kv.first); });
  std::erase_if(snap.gauges, [&](const auto& kv) { return !keep(kv.first); });
  std::erase_if(snap.histograms, [&](const auto& kv) { return !keep(kv.first); });
  return snap;
}

}  // namespace

int main(int argc, char** argv) {
  viprof::support::ArgScan args(argc, argv, kUsage);
  if (!args.next()) args.fail();
  const std::string cmd = args.arg();

  std::vector<std::string> in_args;
  std::string before_arg, after_arg, out_path, prefix;
  std::size_t top = 20;
  bool as_json = false;
  while (args.next()) {
    if (args.is("--in")) in_args.push_back(args.value());
    else if (args.is("--before")) before_arg = args.value();
    else if (args.is("--after")) after_arg = args.value();
    else if (args.is("--out")) out_path = args.value();
    else if (args.is("--prefix")) prefix = args.value();
    else if (args.is("--top")) top = args.value_u64();
    else if (args.is("--json")) as_json = true;
    else args.fail_unknown();
  }
  const std::string in_arg = in_args.empty() ? "" : in_args.front();

  if (cmd == "dump") {
    if (in_arg.empty()) args.fail();
    const TelemetrySnapshot snap = filtered(load_or_die(in_arg), prefix);
    if (as_json) std::fputs(snap.to_json().c_str(), stdout);
    else std::fputs(snap.render_text().c_str(), stdout);
    return 0;
  }

  if (cmd == "diff") {
    if (before_arg.empty() || after_arg.empty()) args.fail();
    const TelemetrySnapshot before = filtered(load_or_die(before_arg), prefix);
    const TelemetrySnapshot after = filtered(load_or_die(after_arg), prefix);
    const std::string diff = TelemetrySnapshot::render_diff(before, after);
    std::fputs(diff.c_str(), stdout);
    return diff == "(no differences)\n" ? 0 : 1;
  }

  if (cmd == "snapshot") {
    if (in_arg.empty() || out_path.empty()) args.fail();
    const TelemetrySnapshot snap = load_or_die(in_arg);
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "viprof_stat: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << snap.to_json();
    std::printf("snapshot written to %s\n", out_path.c_str());
    return 0;
  }

  if (cmd == "trace-merge") {
    if (in_args.empty()) args.fail();
    std::vector<std::pair<std::string, ChromeTrace>> inputs;
    for (const std::string& arg : in_args) {
      for (const auto& [label, path] : locate_leaves(arg, "trace.json")) {
        auto trace = viprof::support::parse_chrome_trace(slurp_or_die(path));
        if (!trace) {
          std::fprintf(stderr, "viprof_stat: %s is not a Chrome trace\n",
                       path.c_str());
          return 2;
        }
        inputs.emplace_back(label, std::move(*trace));
      }
    }
    if (inputs.empty()) {
      std::fprintf(stderr, "viprof_stat: no trace.json found under the inputs\n");
      return 2;
    }
    const std::string merged = viprof::support::merge_chrome_traces(inputs);
    if (out_path.empty()) {
      std::fputs(merged.c_str(), stdout);
      return 0;
    }
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "viprof_stat: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << merged;
    std::printf("merged %zu traces into %s\n", inputs.size(), out_path.c_str());
    return 0;
  }

  if (cmd == "contention") {
    if (in_args.empty()) args.fail();
    // Fold every lock.<name>.wait_ns histogram (and its acquired/contended
    // counters) across the inputs, then rank by total wait.
    struct LockRow {
      HistogramSummary wait;
      std::uint64_t acquired = 0;
      std::uint64_t contended = 0;
    };
    std::map<std::string, LockRow> locks;
    for (const std::string& arg : in_args) {
      for (const auto& [label, path] : locate_leaves(arg, "metrics.json")) {
        const TelemetrySnapshot snap = load_or_die(path);
        for (const auto& [name, hist] : snap.histograms) {
          constexpr const char* kPrefix = "lock.";
          constexpr const char* kSuffix = ".wait_ns";
          if (name.size() <= 5 + 8) continue;
          if (name.compare(0, 5, kPrefix) != 0) continue;
          if (name.compare(name.size() - 8, 8, kSuffix) != 0) continue;
          const std::string lock = name.substr(5, name.size() - 5 - 8);
          LockRow& row = locks[lock];
          row.wait = HistogramSummary::merged(row.wait, hist);
          row.acquired += snap.counter("lock." + lock + ".acquired");
          row.contended += snap.counter("lock." + lock + ".contended");
        }
      }
    }
    if (locks.empty()) {
      std::fprintf(stderr, "viprof_stat: no lock telemetry in the inputs\n");
      return 2;
    }
    std::vector<std::pair<std::string, LockRow>> ranked(locks.begin(), locks.end());
    std::stable_sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second.wait.sum > b.second.wait.sum;
    });
    if (ranked.size() > top) ranked.resize(top);
    viprof::support::TextTable table({"Lock", "Acquired", "Contended", "Waits",
                                      "Total us", "Mean ns", "p50 ns", "p90 ns",
                                      "p99 ns", "Max ns"});
    const auto ns = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.0f", v);
      return std::string(buf);
    };
    for (const auto& [lock, row] : ranked) {
      char total[32];
      std::snprintf(total, sizeof total, "%.1f", row.wait.sum / 1000.0);
      table.add_row({lock, std::to_string(row.acquired),
                     std::to_string(row.contended), std::to_string(row.wait.count),
                     total, ns(row.wait.mean()), ns(row.wait.p50), ns(row.wait.p90),
                     ns(row.wait.p99), ns(row.wait.max)});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
  }

  args.fail();
}
