// viprof_stat — dump, diff and snapshot the profiler's own telemetry
// registry from an exported session tree (the vmstat/opcontrol --status
// analogue for the profiler's self-observability layer, DESIGN.md §8).
//
//   viprof_stat dump --in DIR|FILE [--json] [--prefix P]
//   viprof_stat diff --before DIR|FILE --after DIR|FILE [--prefix P]
//   viprof_stat snapshot --in DIR|FILE --out FILE
//
// DIR|FILE is either a metrics.json written by Session::export_telemetry or
// an exported session directory (the telemetry subtree is located inside).
// `dump` renders the registry as fixed-width tables (--json re-emits
// canonical JSON instead); `diff` prints metric-by-metric deltas between
// two snapshots (CI trajectory checks); `snapshot` copies a validated,
// canonicalised snapshot to FILE for later diffing.
//
// Exit status: 0 on success, 1 when `diff` found differences, 2 on load
// errors, 3 on bad usage.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "support/arg_scan.hpp"
#include "support/telemetry.hpp"

namespace {

using viprof::support::TelemetrySnapshot;

constexpr const char* kUsage =
    "usage: viprof_stat dump --in DIR|FILE [--json] [--prefix P]\n"
    "       viprof_stat diff --before DIR|FILE --after DIR|FILE [--prefix P]\n"
    "       viprof_stat snapshot --in DIR|FILE --out FILE\n"
    "DIR|FILE: a metrics.json, or an exported session directory\n"
    "containing one (archive/telemetry/metrics.json).\n";

/// A metrics.json path: the argument itself, or the conventional locations
/// inside an exported session directory.
std::string locate_metrics(const std::string& arg) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(arg)) return arg;
  for (const char* sub :
       {"/archive/telemetry/metrics.json", "/telemetry/metrics.json", "/metrics.json"}) {
    if (fs::is_regular_file(arg + sub)) return arg + sub;
  }
  return arg;  // fall through to the load error below
}

TelemetrySnapshot load_or_die(const std::string& arg) {
  const std::string path = locate_metrics(arg);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "viprof_stat: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  auto snap = TelemetrySnapshot::from_json(contents.str());
  if (!snap) {
    std::fprintf(stderr, "viprof_stat: %s is not a telemetry snapshot\n", path.c_str());
    std::exit(2);
  }
  return *std::move(snap);
}

/// Restricts a snapshot to metrics whose name starts with `prefix`.
TelemetrySnapshot filtered(TelemetrySnapshot snap, const std::string& prefix) {
  if (prefix.empty()) return snap;
  auto keep = [&prefix](const std::string& name) {
    return name.compare(0, prefix.size(), prefix) == 0;
  };
  std::erase_if(snap.counters, [&](const auto& kv) { return !keep(kv.first); });
  std::erase_if(snap.gauges, [&](const auto& kv) { return !keep(kv.first); });
  std::erase_if(snap.histograms, [&](const auto& kv) { return !keep(kv.first); });
  return snap;
}

}  // namespace

int main(int argc, char** argv) {
  viprof::support::ArgScan args(argc, argv, kUsage);
  if (!args.next()) args.fail();
  const std::string cmd = args.arg();

  std::string in_arg, before_arg, after_arg, out_path, prefix;
  bool as_json = false;
  while (args.next()) {
    if (args.is("--in")) in_arg = args.value();
    else if (args.is("--before")) before_arg = args.value();
    else if (args.is("--after")) after_arg = args.value();
    else if (args.is("--out")) out_path = args.value();
    else if (args.is("--prefix")) prefix = args.value();
    else if (args.is("--json")) as_json = true;
    else args.fail_unknown();
  }

  if (cmd == "dump") {
    if (in_arg.empty()) args.fail();
    const TelemetrySnapshot snap = filtered(load_or_die(in_arg), prefix);
    if (as_json) std::fputs(snap.to_json().c_str(), stdout);
    else std::fputs(snap.render_text().c_str(), stdout);
    return 0;
  }

  if (cmd == "diff") {
    if (before_arg.empty() || after_arg.empty()) args.fail();
    const TelemetrySnapshot before = filtered(load_or_die(before_arg), prefix);
    const TelemetrySnapshot after = filtered(load_or_die(after_arg), prefix);
    const std::string diff = TelemetrySnapshot::render_diff(before, after);
    std::fputs(diff.c_str(), stdout);
    return diff == "(no differences)\n" ? 0 : 1;
  }

  if (cmd == "snapshot") {
    if (in_arg.empty() || out_path.empty()) args.fail();
    const TelemetrySnapshot snap = load_or_die(in_arg);
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "viprof_stat: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << snap.to_json();
    std::printf("snapshot written to %s\n", out_path.c_str());
    return 0;
  }

  args.fail();
}
