// viprof_query — evaluate queries against a service snapshot written by
// viprof_serve / the server's snapshot frame (the opreport analogue for
// the continuous-profiling service; DESIGN.md §10).
//
//   viprof_query sessions    --snap FILE|DIR
//   viprof_query sessions    --fleet DIR
//   viprof_query top N       --snap FILE|DIR [--session S] [--event E]
//   viprof_query top N       --store DIR [--from T] [--to T] [--session S] [--event E]
//   viprof_query top N       --fleet DIR [--session S] [--event E]
//   viprof_query since-epoch K --snap FILE|DIR [--session S] [--top N]
//   viprof_query diff --before FILE|DIR --after FILE|DIR\n
//                     [--session S] [--event E] [--top N]
//   viprof_query diff --store DIR --before LO[:HI] --after LO[:HI]
//                     [--session S] [--event E] [--top N]
//
// FILE|DIR is a viprof-snapshot v1 file, or a directory containing
// service.snap (what --export writes). The snapshot carries its own
// FNV-1a trailer; a damaged file is rejected, never half-parsed.
//
// --store DIR answers the same questions from a persistent profile store
// (DESIGN.md §11) instead of a single snapshot: top folds every interval
// in the inclusive tick window, diff compares two tick windows. The full
// store surface (ingest, compaction, fsck, series) lives in viprof_store.
//
// --fleet DIR answers from an exported fleet namespace (DESIGN.md §12):
// the crc-guarded fleet manifest plus one store partition per shard, as
// written by `viprof_fleet serve --export`. Federated answers fold every
// partition in ascending session-id order, byte-identical to a
// single-server run over the same sessions.
//
// Exit status: 0 ok, 2 load errors (missing/corrupt snapshot or store),
// 3 usage.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "fleet/federator.hpp"
#include "os/vfs.hpp"
#include "service/query.hpp"
#include "store/profile_store.hpp"
#include "support/arg_scan.hpp"

namespace {

using namespace viprof;

constexpr const char* kUsage =
    "usage: viprof_query sessions --snap FILE|DIR\n"
    "       viprof_query sessions --fleet DIR\n"
    "       viprof_query top N --snap FILE|DIR [--session S] [--event E]\n"
    "       viprof_query top N --store DIR [--from T] [--to T] [--session S]\n"
    "                          [--event E]\n"
    "       viprof_query top N --fleet DIR [--session S] [--event E]\n"
    "       viprof_query since-epoch K --snap FILE|DIR [--session S] [--top N]\n"
    "       viprof_query diff --before FILE|DIR --after FILE|DIR\n"
    "                         [--session S] [--event E] [--top N]\n"
    "       viprof_query diff --store DIR --before LO[:HI] --after LO[:HI]\n"
    "                         [--session S] [--event E] [--top N]\n"
    "       viprof_query stats --fleet DIR [--json]\n"
    "       viprof_query trace --fleet DIR\n"
    "FILE|DIR: a viprof-snapshot v1 file, or a directory holding\n"
    "service.snap (as written by viprof_serve --export).\n"
    "--store DIR: a persistent profile store; windows are inclusive ticks.\n"
    "--fleet DIR: an exported fleet namespace (viprof_fleet serve --export).\n"
    "stats/trace answer from the telemetry files the fleet serve exported\n"
    "(per-shard + fleet metrics.json / trace.json).\n"
    "events: time (GLOBAL_POWER_EVENTS), dmiss (BSQ_CACHE_REFERENCE)\n";

service::ServiceSnapshot load_or_die(const std::string& arg) {
  std::string path = arg;
  if (std::filesystem::is_directory(path)) path += "/service.snap";
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "viprof_query: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  auto snap = service::ServiceSnapshot::parse(contents.str());
  if (!snap) {
    std::fprintf(stderr, "viprof_query: %s is not a valid service snapshot\n",
                 path.c_str());
    std::exit(2);
  }
  return *std::move(snap);
}

/// Imports and opens a store directory; exits 2 when it is missing or
/// unrecoverable. Recovery repairs stay inside the Vfs — queries never
/// write to the host directory.
std::unique_ptr<store::ProfileStore> open_store_or_die(os::Vfs& vfs,
                                                       const std::string& dir) {
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "viprof_query: %s is not a directory\n", dir.c_str());
    std::exit(2);
  }
  vfs.import_from_directory(dir);
  if (vfs.file_count() == 0) {
    std::fprintf(stderr, "viprof_query: nothing under %s\n", dir.c_str());
    std::exit(2);
  }
  store::StoreConfig config;
  config.root = "";  // the host directory is the store root
  auto st = std::make_unique<store::ProfileStore>(vfs, config);
  const store::StoreRecovery rec = st->open();
  if (rec.verdict == core::FsckVerdict::kUnrecoverable) {
    std::fprintf(stderr, "viprof_query: %s\n", rec.summary.c_str());
    std::exit(2);
  }
  return st;
}

/// "LO" or "LO:HI" (inclusive ticks) into a store window.
store::WindowSpec window_or_die(const std::string& spec, const std::string& session,
                                const char* usage) {
  store::WindowSpec w;
  w.session = session;
  const std::size_t colon = spec.find(':');
  char* end = nullptr;
  w.tick_lo = std::strtoull(spec.c_str(), &end, 10);
  if (end == spec.c_str()) {
    std::fprintf(stderr, "viprof_query: bad window %s\n%s", spec.c_str(), usage);
    std::exit(support::kExitUsage);
  }
  w.tick_hi = colon == std::string::npos
                  ? w.tick_lo
                  : std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
  return w;
}

/// Imports an exported fleet namespace and opens it read-only; exits 2
/// when the directory or its crc-guarded manifest is missing or damaged.
fleet::OfflineFleet open_fleet_or_die(os::Vfs& vfs, const std::string& dir) {
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "viprof_query: %s is not a directory\n", dir.c_str());
    std::exit(2);
  }
  vfs.import_from_directory(dir);
  auto fleet = fleet::OfflineFleet::open(vfs);
  if (!fleet) {
    std::fprintf(stderr, "viprof_query: %s has no valid fleet manifest\n",
                 dir.c_str());
    std::exit(2);
  }
  return *std::move(fleet);
}

hw::EventKind event_or_die(const std::string& name) {
  if (name == "time" || name == hw::to_string(hw::EventKind::kGlobalPowerEvents))
    return hw::EventKind::kGlobalPowerEvents;
  if (name == "dmiss" || name == hw::to_string(hw::EventKind::kBsqCacheReference))
    return hw::EventKind::kBsqCacheReference;
  std::fprintf(stderr, "viprof_query: unknown event %s\n%s", name.c_str(), kUsage);
  std::exit(support::kExitUsage);
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgScan args(argc, argv, kUsage);
  if (!args.next()) args.fail();
  const std::string cmd = args.arg();

  std::uint64_t n = 0;
  bool has_n = false;
  if ((cmd == "top" || cmd == "since-epoch") && args.next()) {
    n = std::strtoull(args.arg(), nullptr, 10);
    has_n = true;
  }
  if ((cmd == "top" || cmd == "since-epoch") && !has_n) args.fail();

  std::string snap_arg, before_arg, after_arg, session, event_name, store_dir;
  std::string fleet_dir;
  std::uint64_t from = 0, to = ~0ull;
  std::size_t top = 20;
  bool as_json = false;
  while (args.next()) {
    if (args.is("--snap")) snap_arg = args.value();
    else if (args.is("--store")) store_dir = args.value();
    else if (args.is("--fleet")) fleet_dir = args.value();
    else if (args.is("--before")) before_arg = args.value();
    else if (args.is("--after")) after_arg = args.value();
    else if (args.is("--from")) from = args.value_u64();
    else if (args.is("--to")) to = args.value_u64();
    else if (args.is("--session")) session = args.value();
    else if (args.is("--event")) event_name = args.value();
    else if (args.is("--top")) top = args.value_u64();
    else if (args.is("--json")) as_json = true;
    else args.fail_unknown();
  }

  const std::vector<hw::EventKind> report_events = {hw::EventKind::kGlobalPowerEvents,
                                                    hw::EventKind::kBsqCacheReference};

  if (cmd == "stats" || cmd == "trace") {
    if (fleet_dir.empty()) args.fail();
    os::Vfs vfs;
    const fleet::OfflineFleet fleet = open_fleet_or_die(vfs, fleet_dir);
    const std::string q = cmd == "trace" ? "trace"
                          : as_json      ? "stats --json"
                                         : "stats";
    const std::string out = fleet.query(q);
    if (out.rfind("error:", 0) == 0) {
      std::fprintf(stderr, "viprof_query: %s", out.c_str());
      return 2;
    }
    std::printf("%s", out.c_str());
    return 0;
  }

  if (cmd == "sessions" && !fleet_dir.empty()) {
    os::Vfs vfs;
    const fleet::OfflineFleet fleet = open_fleet_or_die(vfs, fleet_dir);
    std::printf("%s", fleet.query("sessions").c_str());
    return 0;
  }

  if (cmd == "sessions") {
    if (snap_arg.empty()) args.fail();
    std::printf("%s", service::render_sessions(load_or_die(snap_arg)).c_str());
    return 0;
  }

  if (cmd == "top" && !fleet_dir.empty()) {
    os::Vfs vfs;
    const fleet::OfflineFleet fleet = open_fleet_or_die(vfs, fleet_dir);
    std::vector<hw::EventKind> events = report_events;
    if (!event_name.empty()) events = {event_or_die(event_name)};
    const core::Profile profile =
        session.empty() ? fleet.merged_profile() : fleet.session_profile(session);
    std::printf("%s", profile.render(events, n).c_str());
    return 0;
  }

  if (cmd == "top" && !store_dir.empty()) {
    os::Vfs vfs;
    auto st = open_store_or_die(vfs, store_dir);
    std::vector<hw::EventKind> events = report_events;
    if (!event_name.empty()) events = {event_or_die(event_name)};
    std::printf("%s", st->render_top({from, to, session}, events, n).c_str());
    return 0;
  }

  if (cmd == "top") {
    if (snap_arg.empty()) args.fail();
    const service::ServiceSnapshot snap = load_or_die(snap_arg);
    core::Profile profile;
    if (session.empty()) {
      profile = snap.merged();
    } else if (const service::SessionSnapshot* s = snap.find(session)) {
      profile = s->profile;
    } else {
      std::fprintf(stderr, "viprof_query: no session %s in snapshot\n", session.c_str());
      return 2;
    }
    std::vector<hw::EventKind> events = report_events;
    if (!event_name.empty()) events = {event_or_die(event_name)};
    std::printf("%s", profile.render(events, n).c_str());
    return 0;
  }

  if (cmd == "since-epoch") {
    if (snap_arg.empty()) args.fail();
    const service::ServiceSnapshot snap = load_or_die(snap_arg);
    core::Profile profile;
    for (const service::SessionSnapshot& s : snap.sessions) {
      if (!session.empty() && s.id != session) continue;
      profile.merge(service::profile_since(s, n));
    }
    std::printf("%s", profile.render(report_events, top).c_str());
    return 0;
  }

  if (cmd == "diff" && !store_dir.empty()) {
    if (before_arg.empty() || after_arg.empty()) args.fail();
    os::Vfs vfs;
    auto st = open_store_or_die(vfs, store_dir);
    const hw::EventKind event = event_name.empty()
                                    ? hw::EventKind::kGlobalPowerEvents
                                    : event_or_die(event_name);
    std::printf("%s", st->render_diff(window_or_die(before_arg, session, kUsage),
                                      window_or_die(after_arg, session, kUsage),
                                      event, top)
                          .c_str());
    return 0;
  }

  if (cmd == "diff") {
    if (before_arg.empty() || after_arg.empty()) args.fail();
    const service::ServiceSnapshot before = load_or_die(before_arg);
    const service::ServiceSnapshot after = load_or_die(after_arg);
    const hw::EventKind event = event_name.empty()
                                    ? hw::EventKind::kGlobalPowerEvents
                                    : event_or_die(event_name);
    std::printf("%s", service::render_diff(before, after, session, event, top).c_str());
    return 0;
  }

  args.fail();
}
