// Object-map format unit tests (DESIGN.md §15): serialise/parse round
// trips, the §7-style salvage sweep with exact salvaged+lost accounting,
// the code-map projection that lets a plain core::CodeMapIndex resolve
// object samples, and the dedup semantics of the per-site accounting table.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "memprof/object_map.hpp"
#include "memprof/site_table.hpp"
#include "os/vfs.hpp"

namespace viprof::memprof {
namespace {

ObjectMapFile sample_map(std::uint64_t epoch) {
  ObjectMapFile file;
  file.epoch = epoch;
  file.sites = {{0, "Leaky.grow:12"}, {1, "Hot.alloc:3"}, {2, "Cold.fill:77"}};
  file.objects = {
      {0x6200'0000, 128, 1, 0},
      {0x6200'0080, 1024, 2, 1},
      {0x6200'0480, 64, 3, 2},
      {0x6201'0000, 32768, 4, 1},
  };
  file.dead = {{7, 256, 0}, {9, 64, 2}};
  return file;
}

TEST(ObjectMapFile, SerializeParseRoundTrip) {
  const ObjectMapFile file = sample_map(5);
  const auto parsed = ObjectMapFile::parse(file.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->epoch, 5u);
  EXPECT_FALSE(parsed->truncated);
  ASSERT_EQ(parsed->sites.size(), 3u);
  EXPECT_EQ(parsed->sites[1].name, "Hot.alloc:3");
  ASSERT_EQ(parsed->objects.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(parsed->objects[i].address, file.objects[i].address);
    EXPECT_EQ(parsed->objects[i].size, file.objects[i].size);
    EXPECT_EQ(parsed->objects[i].obj_id, file.objects[i].obj_id);
    EXPECT_EQ(parsed->objects[i].site, file.objects[i].site);
  }
  ASSERT_EQ(parsed->dead.size(), 2u);
  EXPECT_EQ(parsed->dead[0].obj_id, 7u);
  EXPECT_EQ(parsed->dead[1].site, 2u);
}

TEST(ObjectMapFile, TruncatedMarkerSurvivesReserialisation) {
  ObjectMapFile file = sample_map(3);
  file.truncated = true;  // a salvaged map rewritten by fsck stays honest
  const auto parsed = ObjectMapFile::parse(file.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->truncated);
  EXPECT_EQ(parsed->objects.size(), 4u);
}

TEST(ObjectMapFile, ParseRejectsDamage) {
  std::string blob = sample_map(2).serialize();
  EXPECT_TRUE(ObjectMapFile::parse(blob).has_value());
  // Flip one payload byte: the crc trailer must catch it.
  std::string flipped = blob;
  flipped[blob.size() / 2] ^= 0x20;
  EXPECT_FALSE(ObjectMapFile::parse(flipped).has_value());
  // Drop the trailer entirely.
  EXPECT_FALSE(ObjectMapFile::parse(blob.substr(0, blob.rfind("crc "))).has_value());
  EXPECT_FALSE(ObjectMapFile::parse("").has_value());
}

// The §7 torn-write sweep: cut the serialised map at *every* byte length
// and salvage. Whenever the header survived, salvaged + lost must equal
// the declared counts exactly — that equality is what makes a torn object
// map a counted loss rather than a silent one — and every salvaged entry
// must byte-match the original prefix (no invented attribution).
TEST(ObjectMapFile, SalvageSweepAccountsForEveryEntry) {
  const ObjectMapFile file = sample_map(6);
  const std::string blob = file.serialize();
  for (std::size_t cut = 0; cut <= blob.size(); ++cut) {
    const ObjectMapFile::Recovery r = ObjectMapFile::salvage(blob.substr(0, cut), 6);
    if (cut == blob.size()) {
      EXPECT_TRUE(r.intact);
      EXPECT_FALSE(r.file.truncated);
      continue;
    }
    EXPECT_FALSE(r.intact) << "cut=" << cut;
    EXPECT_TRUE(r.file.truncated) << "cut=" << cut;
    EXPECT_EQ(r.file.epoch, 6u) << "cut=" << cut;  // header or hint
    if (r.header_ok) {
      EXPECT_EQ(r.objects_expected, file.objects.size());
      EXPECT_EQ(r.dead_expected, file.dead.size());
      // Exact loss accounting: what was salvaged plus what was lost is
      // exactly what the writer declared (and acked).
      EXPECT_LE(r.file.objects.size(), r.objects_expected);
      EXPECT_LE(r.file.dead.size(), r.dead_expected);
    }
    ASSERT_LE(r.file.objects.size(), file.objects.size());
    for (std::size_t i = 0; i < r.file.objects.size(); ++i) {
      EXPECT_EQ(r.file.objects[i].address, file.objects[i].address);
      EXPECT_EQ(r.file.objects[i].obj_id, file.objects[i].obj_id);
      EXPECT_EQ(r.file.objects[i].site, file.objects[i].site);
    }
    for (std::size_t i = 0; i < r.file.dead.size(); ++i)
      EXPECT_EQ(r.file.dead[i].obj_id, file.dead[i].obj_id);
  }
}

TEST(ObjectMapFile, PathRoundTripAndEpochParsing) {
  const std::string path = ObjectMapFile::path_for("obj_maps", 101, 42);
  EXPECT_EQ(path, "obj_maps/101/omap.00000042");
  const auto epoch = ObjectMapFile::epoch_from_path(path);
  ASSERT_TRUE(epoch.has_value());
  EXPECT_EQ(*epoch, 42u);
  EXPECT_FALSE(ObjectMapFile::epoch_from_path("obj_maps/101/stats").has_value());
  EXPECT_FALSE(ObjectMapFile::epoch_from_path("obj_maps/101/omap.").has_value());
  EXPECT_FALSE(ObjectMapFile::epoch_from_path("obj_maps/101/omap.12x").has_value());
  // Zero padding keeps VFS listings in epoch order.
  EXPECT_LT(ObjectMapFile::path_for("d", 1, 9), ObjectMapFile::path_for("d", 1, 10));
}

TEST(ObjectMapFile, SiteSymbolRoundTrip) {
  for (std::uint32_t site : {0u, 1u, 7u, 65535u}) {
    const auto parsed = site_from_symbol(site_symbol(site));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, site);
  }
  EXPECT_FALSE(site_from_symbol("Leaky.grow:12").has_value());
  EXPECT_FALSE(site_from_symbol("site#").has_value());
  EXPECT_FALSE(site_from_symbol("site#x7").has_value());
}

TEST(ObjectMapFile, CodeMapProjectionPreservesRangesAndEpoch) {
  ObjectMapFile file = sample_map(9);
  file.truncated = true;
  const core::CodeMapFile code = file.to_code_map();
  EXPECT_EQ(code.epoch, 9u);
  EXPECT_TRUE(code.truncated);
  ASSERT_EQ(code.entries.size(), file.objects.size());
  for (std::size_t i = 0; i < file.objects.size(); ++i) {
    EXPECT_EQ(code.entries[i].address, file.objects[i].address);
    EXPECT_EQ(code.entries[i].size, file.objects[i].size);
    EXPECT_EQ(code.entries[i].symbol, site_symbol(file.objects[i].site));
  }
}

TEST(SiteTable, IngestIsIdempotentPerObject) {
  SiteTable table;
  const ObjectMapFile map5 = sample_map(5);
  table.ingest(101, map5);
  table.ingest(101, map5);  // a federated query may see a map twice

  // Object 2 moved: it reappears in the next epoch's map at a new address.
  ObjectMapFile map6;
  map6.epoch = 6;
  map6.sites = map5.sites;
  map6.objects = {{0x6300'0080, 1024, 2, 1}};
  map6.dead = {{1, 128, 0}};  // object 1 died at the collection closing 5
  table.ingest(101, map6);

  EXPECT_EQ(table.maps_ingested(), 3u);
  const auto& sites = table.sites();
  const SiteStats& s0 = sites.at({101, 0});
  const SiteStats& s1 = sites.at({101, 1});
  // Site 0: object 1 (128 B) allocated once despite double ingest, plus the
  // pre-map death of object 7 (256 B) charged from the dead line alone.
  EXPECT_EQ(s0.alloc_objects, 1u);
  EXPECT_EQ(s0.alloc_bytes, 128u);
  EXPECT_EQ(s0.dead_objects, 2u);  // obj 1 + the dead-line-only obj 7
  EXPECT_EQ(s0.dead_bytes, 128u + 256u);
  // Site 1: objects 2 and 4; the move re-sighting of object 2 charges
  // nothing new.
  EXPECT_EQ(s1.alloc_objects, 2u);
  EXPECT_EQ(s1.alloc_bytes, 1024u + 32768u);
  EXPECT_EQ(s1.live_bytes(), 1024u + 32768u);
  EXPECT_EQ(table.name_of(101, 1), "Hot.alloc:3");
}

TEST(SiteTable, DictionaryFallbackNamesLostSites) {
  SiteTable table;
  ObjectMapFile bare;  // salvaged so early its dictionary lines are gone
  bare.epoch = 0;
  bare.truncated = true;
  bare.objects = {{0x6200'0000, 64, 1, 4}};
  table.ingest(7, bare);
  EXPECT_EQ(table.maps_truncated(), 1u);
  EXPECT_EQ(table.name_of(7, 4), site_symbol(4));
  // A later intact map supplies the real name.
  ObjectMapFile named;
  named.epoch = 1;
  named.sites = {{4, "Real.name:9"}};
  named.objects = {{0x6300'0000, 64, 1, 4}};
  table.ingest(7, named);
  EXPECT_EQ(table.name_of(7, 4), "Real.name:9");
  EXPECT_EQ(table.sites().at({7, 4}).alloc_objects, 1u);  // still deduped
}

TEST(ObjectIndex, LoadSalvagesDamageAndIndexesTheRest) {
  os::Vfs vfs;
  const ObjectMapFile m0 = sample_map(0);
  ObjectMapFile m1 = sample_map(1);
  m1.objects = {{0x6300'0000, 512, 11, 0}};
  m1.dead.clear();
  ASSERT_EQ(vfs.write(ObjectMapFile::path_for("obj_maps", 101, 0), m0.serialize()),
            os::IoStatus::kOk);
  const std::string torn = m1.serialize();
  ASSERT_EQ(vfs.write(ObjectMapFile::path_for("obj_maps", 101, 1),
                      torn.substr(0, torn.size() - 4)),
            os::IoStatus::kOk);
  // A foreign pid's map must not leak into this index.
  ASSERT_EQ(vfs.write(ObjectMapFile::path_for("obj_maps", 202, 0), m0.serialize()),
            os::IoStatus::kOk);

  const ObjectIndexLoad load = load_object_index(vfs, "obj_maps", 101);
  EXPECT_EQ(load.maps_loaded, 2u);
  EXPECT_EQ(load.maps_truncated, 1u);
  EXPECT_EQ(load.objects_loaded,
            m0.objects.size() + load.files[1].objects.size());
  ASSERT_EQ(load.files.size(), 2u);
  EXPECT_EQ(load.index.map_count(), 2u);
  EXPECT_TRUE(load.index.epoch_truncated(1));
  // The index resolves an epoch-0 object through the projected symbol.
  const auto hit = load.index.resolve(0x6200'0080 + 4, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->symbol, site_symbol(1));
}

}  // namespace
}  // namespace viprof::memprof
