// ProfileStore end-to-end: ingest/seal/compact/retention and the
// determinism anchor — every query is a fold of interval profiles in the
// canonical order, so its bytes must be identical whether the intervals
// sit in the unsealed segment, sealed segments or compacted ones, at any
// compactor thread count, and across a close/re-open cycle.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "os/vfs.hpp"
#include "store/profile_store.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace viprof::store {
namespace {

constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;
constexpr auto kDmiss = hw::EventKind::kBsqCacheReference;
const std::vector<hw::EventKind> kEvents = {kTime, kDmiss};

core::Resolution res(const std::string& image, const std::string& symbol) {
  core::Resolution r;
  r.image = image;
  r.symbol = symbol;
  r.domain = core::SampleDomain::kJit;
  return r;
}

/// Interval j of the scenario: sessions alternate and ticks repeat every
/// four intervals, so some intervals share a merge key (same session, pid
/// and tick) — the compactor must fold those without changing any query.
IntervalProfile scenario_interval(std::uint64_t j) {
  IntervalProfile iv;
  iv.session = "vm-" + std::to_string(j % 2);
  iv.pid = 40 + j % 2;
  iv.tick_lo = iv.tick_hi = j / 4;
  iv.epoch_lo = j;
  iv.epoch_hi = j + 1;
  iv.profile.add(kTime, res("RVM.map", "method-" + std::to_string(j % 5)), 10 + j);
  iv.profile.add(kTime, res("vmlinux", "do_page_fault"), 1 + j % 3);
  iv.profile.add(kDmiss, res("RVM.map", "method-" + std::to_string(j % 5)), 1 + j % 7);
  return iv;
}

bool in_window(const IntervalProfile& iv, const WindowSpec& w) {
  return iv.tick_lo >= w.tick_lo && iv.tick_hi <= w.tick_hi &&
         (w.session.empty() || iv.session == w.session);
}

/// The offline oracle: the canonical fold over a captured interval set.
/// first_seq mirrors the store's assignment (1-based ingest order).
core::Profile fold(const std::vector<IntervalProfile>& ivs, const WindowSpec& w) {
  std::vector<const IntervalProfile*> in;
  for (const IntervalProfile& iv : ivs)
    if (in_window(iv, w)) in.push_back(&iv);
  std::sort(in.begin(), in.end(), [](const IntervalProfile* a, const IntervalProfile* b) {
    return canonical_less(*a, *b);
  });
  core::Profile out;
  for (const IntervalProfile* iv : in) out.merge(iv->profile);
  return out;
}

std::vector<IntervalProfile> scenario(std::size_t n) {
  std::vector<IntervalProfile> ivs;
  for (std::uint64_t j = 0; j < n; ++j) {
    ivs.push_back(scenario_interval(j));
    ivs.back().first_seq = j + 1;
  }
  return ivs;
}

StoreConfig small_config() {
  StoreConfig config;
  config.seal_after_intervals = 4;
  config.compact_fanin = 3;
  config.compact_min_segments = 2;
  return config;
}

/// Every query surface rendered at once, for byte comparisons.
std::string all_queries(const ProfileStore& st) {
  std::string out = st.render_top({}, kEvents, 15);
  out += st.render_top({0, 2, ""}, kEvents, 15);
  out += st.render_top({0, ~0ull, "vm-1"}, kEvents, 15);
  out += st.render_series({}, "RVM.map", "method-1", kTime);
  out += st.render_diff({0, 1, ""}, {2, 3, ""}, kTime, 10);
  return out;
}

std::string oracle_queries(const std::vector<IntervalProfile>& ivs) {
  std::string out = fold(ivs, {}).render(kEvents, 15);
  out += fold(ivs, {0, 2, ""}).render(kEvents, 15);
  out += fold(ivs, {0, ~0ull, "vm-1"}).render(kEvents, 15);
  // render_series / render_diff are folds too, but the oracle only needs
  // to cover them once: the store-vs-store comparisons below pin their
  // bytes across segment states and thread counts.
  return out;
}

TEST(ProfileStore, FreshStoreOpensCleanAndRequiresOpen) {
  os::Vfs vfs;
  ProfileStore st(vfs);
  EXPECT_FALSE(st.ingest(scenario_interval(0)));  // not open yet
  const StoreRecovery rec = st.open();
  EXPECT_TRUE(rec.fresh);
  EXPECT_EQ(rec.verdict, core::FsckVerdict::kClean);
  EXPECT_TRUE(st.ingest(scenario_interval(0)));
  EXPECT_EQ(st.live_intervals(), 1u);
}

TEST(ProfileStore, QueriesByteIdenticalAcrossSegmentStatesAndThreads) {
  const std::size_t kIntervals = 22;
  const std::vector<IntervalProfile> ivs = scenario(kIntervals);

  std::vector<std::string> unsealed_renders, sealed_renders, compacted_renders;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
    os::Vfs vfs;
    ProfileStore st(vfs, small_config());
    ASSERT_EQ(st.open().verdict, core::FsckVerdict::kClean);
    for (std::uint64_t j = 0; j < kIntervals; ++j)
      ASSERT_TRUE(st.ingest(scenario_interval(j)));

    // Stage 1: tail of the data still in the unsealed active segment.
    unsealed_renders.push_back(all_queries(st));
    ASSERT_TRUE(st.seal_active());
    sealed_renders.push_back(all_queries(st));

    // Stage 2: compacted, serially or on a pool.
    std::size_t outputs;
    if (threads == 0) {
      outputs = st.compact(nullptr);
    } else {
      support::ThreadPool pool(threads);
      outputs = st.compact(&pool);
    }
    EXPECT_GT(outputs, 0u);
    EXPECT_LT(st.segment_count(), (kIntervals + 3) / 4);
    compacted_renders.push_back(all_queries(st));

    // Stage 3: close and re-open over the same bytes.
    ProfileStore reopened(vfs, small_config());
    const StoreRecovery rec = reopened.open();
    EXPECT_EQ(rec.verdict, core::FsckVerdict::kClean);
    EXPECT_EQ(rec.intervals_lost, 0u);
    EXPECT_EQ(all_queries(reopened), compacted_renders.back());
  }

  // Unsealed == sealed == compacted, and identical at every thread count.
  for (const auto* stage : {&unsealed_renders, &sealed_renders, &compacted_renders}) {
    for (const std::string& r : *stage) EXPECT_EQ(r, (*stage)[0]);
  }
  EXPECT_EQ(unsealed_renders[0], sealed_renders[0]);
  EXPECT_EQ(sealed_renders[0], compacted_renders[0]);

  // And the whole family equals the offline canonical fold.
  const std::string expected = oracle_queries(ivs);
  EXPECT_EQ(unsealed_renders[0].substr(0, expected.size()), expected);
}

TEST(ProfileStore, CompactionDeduplicatesMergeKeysExactly) {
  os::Vfs vfs;
  ProfileStore st(vfs, small_config());
  ASSERT_EQ(st.open().verdict, core::FsckVerdict::kClean);
  const std::size_t kIntervals = 16;
  for (std::uint64_t j = 0; j < kIntervals; ++j)
    ASSERT_TRUE(st.ingest(scenario_interval(j)));
  ASSERT_TRUE(st.seal_active());

  EXPECT_EQ(st.live_intervals(), kIntervals);
  ASSERT_GT(st.compact(nullptr), 0u);
  // Ticks repeat every 4 intervals with 2 sessions: every merge key occurs
  // twice, so a full compaction folds pairs. (The exact live count depends
  // on which runs the fan-in grouped; it can only shrink.)
  EXPECT_LT(st.live_intervals(), kIntervals);
  EXPECT_EQ(fold(scenario(kIntervals), {}).render(kEvents, 15),
            st.render_top({}, kEvents, 15));
}

TEST(ProfileStore, RetentionDropsOldestWithExactAccounting) {
  support::Telemetry telemetry;
  os::Vfs vfs;
  StoreConfig config = small_config();
  config.seal_after_intervals = 2;
  config.retention_budget_rows = 18;  // each scenario interval carries 2 rows
  config.telemetry = &telemetry;
  ProfileStore st(vfs, config);
  ASSERT_EQ(st.open().verdict, core::FsckVerdict::kClean);

  const std::size_t kIntervals = 12;
  for (std::uint64_t j = 0; j < kIntervals; ++j)
    ASSERT_TRUE(st.ingest(scenario_interval(j)));
  ASSERT_TRUE(st.seal_active());

  EXPECT_LE(st.live_rows(), config.retention_budget_rows);
  const auto snap = telemetry.snapshot();
  const std::uint64_t dropped_ivs = snap.counter("store.retained.dropped_intervals");
  EXPECT_GT(dropped_ivs, 0u);
  EXPECT_GT(snap.counter("store.retained.dropped_segments"), 0u);
  EXPECT_EQ(snap.counter("store.retained.dropped_rows"), dropped_ivs * 2);
  EXPECT_EQ(st.live_intervals() + dropped_ivs, kIntervals);

  // Drops take whole oldest segments, so the survivors are exactly the
  // ingest-order suffix — and queries still equal the fold over it.
  std::vector<IntervalProfile> all = scenario(kIntervals);
  const std::vector<IntervalProfile> suffix(all.begin() + static_cast<std::ptrdiff_t>(dropped_ivs),
                                            all.end());
  EXPECT_EQ(st.render_top({}, kEvents, 15), fold(suffix, {}).render(kEvents, 15));
}

TEST(ProfileStore, SeriesAndDiffRenderKnownValues) {
  os::Vfs vfs;
  ProfileStore st(vfs);
  ASSERT_EQ(st.open().verdict, core::FsckVerdict::kClean);
  for (std::uint64_t tick = 0; tick < 3; ++tick) {
    IntervalProfile iv;
    iv.session = "s";
    iv.tick_lo = iv.tick_hi = tick;
    iv.profile.add(kTime, res("app", "hot"), 10 * (tick + 1));
    iv.profile.add(kTime, res("app", "cold"), 5);
    ASSERT_TRUE(st.ingest(std::move(iv)));
  }

  const std::string series = st.render_series({}, "app", "hot", kTime);
  EXPECT_NE(series.find("10"), std::string::npos);
  EXPECT_NE(series.find("20"), std::string::npos);
  EXPECT_NE(series.find("30"), std::string::npos);

  const std::string diff = st.render_diff({0, 0, ""}, {2, 2, ""}, kTime, 10);
  EXPECT_NE(diff.find("+20"), std::string::npos);  // hot: 10 -> 30
  EXPECT_NE(diff.find("hot"), std::string::npos);
  // cold is flat between the windows, so it must not appear as a mover.
  EXPECT_EQ(diff.find("cold"), std::string::npos);

  const std::string segments = st.render_segments();
  EXPECT_NE(segments.find("active"), std::string::npos);
}

}  // namespace
}  // namespace viprof::store
