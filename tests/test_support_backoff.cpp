// support::Backoff: the one retry policy behind the daemon's flush retry,
// the agent's map-write retry, and the fleet router's send retry. The
// tests pin the exact legacy schedules (so the PR 1 migrations are
// behaviour-preserving) and the properties the fleet's determinism
// acceptance leans on: cap, jitter reproducibility under a fixed seed,
// and timeout-budget exhaustion.
#include <gtest/gtest.h>

#include <vector>

#include "support/backoff.hpp"
#include "support/rng.hpp"

namespace viprof::support {
namespace {

std::vector<std::uint64_t> drain(Backoff& b) {
  std::vector<std::uint64_t> out;
  while (const auto d = b.next()) out.push_back(*d);
  return out;
}

TEST(Backoff, DoublingScheduleMatchesLegacyDaemonPolicy) {
  // The daemon's historical flush retry: 60k, 120k, 240k, then give up.
  BackoffConfig config;
  config.initial = 60'000;
  config.multiplier = 2.0;
  config.max_attempts = 3;
  Backoff backoff(config);
  EXPECT_EQ(drain(backoff), (std::vector<std::uint64_t>{60'000, 120'000, 240'000}));
  EXPECT_TRUE(backoff.exhausted());
  EXPECT_EQ(backoff.attempts(), 3u);
  EXPECT_EQ(backoff.spent(), 420'000u);
  // Exhaustion is sticky...
  EXPECT_FALSE(backoff.next().has_value());
  // ...until reset rearms the whole schedule.
  backoff.reset();
  EXPECT_EQ(backoff.next(), std::optional<std::uint64_t>(60'000));
}

TEST(Backoff, FlatScheduleMatchesLegacyAgentPolicy) {
  // The agent's historical map-write retry: a fixed cost per attempt.
  BackoffConfig config;
  config.initial = 8'000;
  config.multiplier = 1.0;
  config.max_attempts = 4;
  Backoff backoff(config);
  EXPECT_EQ(drain(backoff),
            (std::vector<std::uint64_t>{8'000, 8'000, 8'000, 8'000}));
}

TEST(Backoff, CapBoundsEveryDelay) {
  BackoffConfig config;
  config.initial = 1'000;
  config.multiplier = 2.0;
  config.cap = 3'000;
  config.max_attempts = 6;
  Backoff backoff(config);
  EXPECT_EQ(drain(backoff),
            (std::vector<std::uint64_t>{1'000, 2'000, 3'000, 3'000, 3'000, 3'000}));
}

TEST(Backoff, JitterIsDeterministicUnderFixedSeed) {
  BackoffConfig config;
  config.initial = 1'000;
  config.multiplier = 2.0;
  config.jitter = 0.5;
  config.max_attempts = 8;

  Xoshiro256 rng_a(42), rng_b(42), rng_c(7);
  Backoff a(config, &rng_a), b(config, &rng_b), c(config, &rng_c);
  const auto da = drain(a), db = drain(b), dc = drain(c);
  EXPECT_EQ(da, db);  // same seed, same schedule — replayable
  EXPECT_NE(da, dc);  // a different seed actually moves the draws
  ASSERT_EQ(da.size(), 8u);
  // Every jittered delay stays inside [nominal/2, nominal*3/2].
  std::uint64_t nominal = 1'000;
  for (const std::uint64_t d : da) {
    EXPECT_GE(d, nominal / 2);
    EXPECT_LE(d, nominal + nominal / 2);
    nominal *= 2;
  }
}

TEST(Backoff, ZeroJitterIgnoresRng) {
  BackoffConfig config;
  config.initial = 500;
  config.multiplier = 2.0;
  config.max_attempts = 3;
  Xoshiro256 rng(123);
  Backoff with_rng(config, &rng);
  Backoff without(config);
  EXPECT_EQ(drain(with_rng), drain(without));
}

TEST(Backoff, BudgetExhaustionActsAsTimeout) {
  BackoffConfig config;
  config.initial = 1'000;
  config.multiplier = 2.0;
  config.max_attempts = 100;  // attempts never bind; the budget does
  config.budget = 3'500;      // covers 1000 + 2000, not the 4000 after
  Backoff backoff(config);
  EXPECT_EQ(drain(backoff), (std::vector<std::uint64_t>{1'000, 2'000}));
  EXPECT_TRUE(backoff.exhausted());
  EXPECT_EQ(backoff.spent(), 3'000u);
  EXPECT_LE(backoff.spent(), config.budget);  // never overspends
}

TEST(Backoff, ZeroAttemptsRefusesImmediately) {
  BackoffConfig config;
  config.max_attempts = 0;
  Backoff backoff(config);
  EXPECT_FALSE(backoff.next().has_value());
  EXPECT_TRUE(backoff.exhausted());
  EXPECT_EQ(backoff.spent(), 0u);
}

}  // namespace
}  // namespace viprof::support
