// Fault injection against the continuous-profiling service: torn wire
// frames, a client disconnecting mid-stream, and ingest-queue overflow.
// The invariant under every fault is the same one the PR 1 storage layer
// established: damage is *counted and survived*, never silently absorbed
// and never fatal — the server keeps serving every other byte.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/client.hpp"
#include "service/query.hpp"
#include "service/scenario.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "support/fault.hpp"

namespace viprof::service {
namespace {

const std::vector<hw::EventKind> kEvents = {hw::EventKind::kGlobalPowerEvents,
                                            hw::EventKind::kBsqCacheReference};

ScenarioConfig small_scenario() {
  ScenarioConfig config;
  config.vms = 2;
  config.samples_per_event = 1200;
  config.epochs = 10;
  config.methods = 64;
  return config;
}

TEST(ServiceFaults, TornFrameIsCountedAndStreamRecovers) {
  auto scenario = record_scenario(small_scenario());
  support::FaultInjector fault;
  support::FaultRule rule;
  rule.path_prefix = "wire/lossy";
  rule.kind = support::FaultKind::kTornWrite;
  rule.skip = 40;  // well into the sample batches
  rule.count = 2;
  fault.add_rule(rule);

  ServerConfig config;
  config.fault = &fault;
  ProfileServer server(config);
  {
    auto conn = server.connect("lossy");
    ReplayClient client(scenario->vfs(), "lossy", *conn, ReplayOptions{32, &fault, {}});
    EXPECT_TRUE(client.run());  // the client is oblivious to wire damage
  }
  server.drain();

  const SessionStats stats = server.session("lossy")->stats();
  EXPECT_EQ(fault.stats().torn_writes, 2u);
  EXPECT_GE(stats.torn_frames, 2u);
  EXPECT_TRUE(stats.ended);  // kEndStream still made it through
  // The batches after the damage were ingested: most of the stream lands.
  EXPECT_GT(stats.records_ingested,
            2u * small_scenario().samples_per_event * 8 / 10);
  EXPECT_LT(stats.records_ingested, 2u * small_scenario().samples_per_event);
  EXPECT_GT(server.telemetry().snapshot().counter("service.frames.torn"), 0u);
  // The surviving aggregate still renders.
  EXPECT_NE(server.session_report("lossy", 10, kEvents).find("Image name"),
            std::string::npos);
}

TEST(ServiceFaults, RepeatedTornFramesInOneStreamEachResync) {
  // Not one unlucky frame but a rough patch: five consecutive torn writes
  // in a single stream. The decoder must resync after every one of them —
  // the frames behind the damage keep landing and kEndStream still closes
  // the session cleanly.
  auto scenario = record_scenario(small_scenario());
  support::FaultInjector fault;
  support::FaultRule rule;
  rule.path_prefix = "wire/rough";
  rule.kind = support::FaultKind::kTornWrite;
  rule.skip = 40;
  rule.count = 5;
  fault.add_rule(rule);

  ServerConfig config;
  config.fault = &fault;
  ProfileServer server(config);
  {
    auto conn = server.connect("rough");
    ReplayClient client(scenario->vfs(), "rough", *conn, ReplayOptions{32, &fault, {}});
    EXPECT_TRUE(client.run());
  }
  server.drain();

  const SessionStats stats = server.session("rough")->stats();
  EXPECT_EQ(fault.stats().torn_writes, 5u);
  EXPECT_GE(stats.torn_frames, 5u);
  EXPECT_TRUE(stats.ended);
  // Five small batches were damaged; the rest of the stream survived.
  EXPECT_GT(stats.records_ingested,
            2u * small_scenario().samples_per_event * 7 / 10);
  EXPECT_LT(stats.records_ingested, 2u * small_scenario().samples_per_event);
  EXPECT_GE(server.telemetry().snapshot().counter("service.frames.torn"), 5u);
  EXPECT_NE(server.session_report("rough", 10, kEvents).find("Image name"),
            std::string::npos);
}

TEST(ServiceFaults, LostFrameIsSkippedEntirely) {
  auto scenario = record_scenario(small_scenario());
  support::FaultInjector fault;
  support::FaultRule rule;
  rule.path_prefix = "wire/drop";
  rule.kind = support::FaultKind::kWriteError;  // the whole frame vanishes
  rule.skip = 50;
  rule.count = 1;
  fault.add_rule(rule);

  ServerConfig config;
  config.fault = &fault;
  ProfileServer server(config);
  {
    auto conn = server.connect("drop");
    ReplayClient client(scenario->vfs(), "drop", *conn, ReplayOptions{32, &fault, {}});
    EXPECT_TRUE(client.run());
  }
  server.drain();

  // A cleanly lost frame leaves no half-decoded bytes behind: the decoder
  // sees a gap, not garbage, and every later frame still parses.
  const SessionStats stats = server.session("drop")->stats();
  EXPECT_TRUE(stats.ended);
  EXPECT_LT(stats.records_ingested, 2u * small_scenario().samples_per_event);
}

TEST(ServiceFaults, ClientDisconnectMidStream) {
  auto scenario = record_scenario(small_scenario());
  support::FaultInjector fault;
  fault.schedule_kill(support::FaultComponent::kClient, 30);  // 30 frames in

  ProfileServer server;
  std::uint64_t frames_before_death = 0;
  {
    auto conn = server.connect("flaky");
    ReplayClient client(scenario->vfs(), "flaky", *conn, ReplayOptions{32, &fault, {}});
    EXPECT_FALSE(client.run());  // died before kEndStream
    EXPECT_TRUE(client.disconnected());
    frames_before_death = client.frames_sent();
  }  // connection closes here: the server observes the disconnect
  server.drain();

  EXPECT_EQ(frames_before_death, 30u);
  EXPECT_EQ(fault.stats().kills, 1u);
  const SessionStats stats = server.session("flaky")->stats();
  EXPECT_FALSE(stats.ended);
  EXPECT_GT(stats.records_ingested, 0u);  // the prefix landed and aggregated
  EXPECT_GT(server.telemetry().snapshot().counter("service.disconnects"), 0u);
  // The orphaned session still answers queries.
  EXPECT_NE(server.query("sessions").find("streaming"), std::string::npos);

  // A reconnecting client resumes the same session id cleanly.
  {
    auto conn = server.connect("flaky-retry");
    ReplayClient client(scenario->vfs(), "flaky", *conn, ReplayOptions{32, nullptr, {}});
    EXPECT_TRUE(client.run());
  }
  server.drain();
  EXPECT_TRUE(server.session("flaky")->stats().ended);
}

TEST(ServiceFaults, QueueOverflowDropsAreCounted) {
  auto scenario = record_scenario(small_scenario());
  support::FaultInjector fault;
  support::FaultRule rule;
  rule.path_prefix = "service/queue/congested";
  rule.kind = support::FaultKind::kWriteError;  // forced overflow
  rule.skip = 4;
  rule.count = 3;
  fault.add_rule(rule);

  ServerConfig config;
  config.fault = &fault;
  ProfileServer server(config);
  {
    auto conn = server.connect("congested");
    ReplayClient client(scenario->vfs(), "congested", *conn, ReplayOptions{64, &fault, {}});
    EXPECT_TRUE(client.run());
  }
  server.drain();

  const SessionStats stats = server.session("congested")->stats();
  EXPECT_EQ(stats.batches_dropped, 3u);
  EXPECT_GT(stats.records_dropped, 0u);
  // Drops never stall the pipeline: everything enqueued was applied.
  EXPECT_EQ(stats.batches_applied, stats.batches_enqueued);
  EXPECT_TRUE(stats.ended);
  EXPECT_EQ(stats.records_ingested + stats.records_dropped,
            2u * small_scenario().samples_per_event);
  const auto snap = server.telemetry().snapshot();
  EXPECT_EQ(snap.counter("service.batches.dropped"), 3u);
  EXPECT_EQ(snap.counter("service.records.dropped"), stats.records_dropped);
}

// --- Batched zero-copy decode path (DESIGN.md §14) --------------------------
//
// The server now decodes through FrameDecoder::next_view and parses sample
// payloads straight out of the wire buffer into per-batch arenas. Salvage
// must be *path-invariant*: the view path skips exactly the frames the
// per-frame copy path skips, and the striped apply path aggregates exactly
// what a single stripe would — damage never changes with the decode route.

TEST(ServiceFaults, BatchedViewDecodeSalvagesExactlyLikePerFrameDecode) {
  // One damaged byte stream, decoded twice: through next(Frame&) (the
  // per-frame copy path) and through next_view (the batch path the server
  // uses). Same surviving frames, same tears, same skipped bytes.
  std::string stream;
  for (int i = 0; i < 12; ++i) {
    std::string frame = encode_frame(
        FrameType::kSampleBatch, "batch payload " + std::to_string(i));
    if (i % 4 == 1) frame.resize(frame.size() / 2);        // torn mid-frame
    if (i % 4 == 3) frame[frame.size() - 1] ^= 0x20;       // crc damage
    stream += frame;
  }
  stream += encode_frame(FrameType::kEndStream, "");

  FrameDecoder per_frame;
  per_frame.feed(stream);
  std::vector<std::string> copied;
  Frame f;
  while (per_frame.next(f)) copied.push_back(f.payload);

  FrameDecoder batched;
  batched.feed(stream);
  std::vector<std::string> viewed;
  FrameView v;
  while (batched.next_view(v)) viewed.emplace_back(v.payload);

  EXPECT_EQ(viewed, copied);
  EXPECT_EQ(batched.torn_frames(), per_frame.torn_frames());
  EXPECT_EQ(batched.skipped_bytes(), per_frame.skipped_bytes());
  EXPECT_EQ(batched.buffered_bytes(), per_frame.buffered_bytes());
}

TEST(ServiceFaults, TornStreamSalvageIsStripeAndThreadInvariant) {
  // The same deterministic torn-write schedule replayed against a 1-thread/
  // 1-stripe server and a 4-thread/4-stripe server: the frames lost are
  // decided by the wire schedule, not the ingest topology, so the salvaged
  // aggregate — including every unresolved.* degradation bin — must render
  // byte-identically.
  auto scenario = record_scenario(small_scenario());

  auto run = [&](std::size_t threads, std::size_t stripes, SessionStats* stats) {
    support::FaultInjector fault;
    support::FaultRule rule;
    rule.path_prefix = "wire/invariant";
    rule.kind = support::FaultKind::kTornWrite;
    rule.skip = 40;
    rule.count = 4;
    fault.add_rule(rule);

    ServerConfig config;
    config.fault = &fault;
    config.ingest_threads = threads;
    config.agg_stripes = stripes;
    ProfileServer server(config);
    {
      auto conn = server.connect("invariant");
      ReplayClient client(scenario->vfs(), "invariant", *conn,
                          ReplayOptions{32, &fault, {}});
      EXPECT_TRUE(client.run());
    }
    server.drain();
    *stats = server.session("invariant")->stats();
    return server.session_report("invariant", 20, kEvents);
  };

  SessionStats serial_stats, striped_stats;
  const std::string serial = run(1, 1, &serial_stats);
  const std::string striped = run(4, 4, &striped_stats);

  EXPECT_EQ(striped, serial);
  EXPECT_EQ(striped_stats.records_ingested, serial_stats.records_ingested);
  EXPECT_EQ(striped_stats.torn_frames, serial_stats.torn_frames);
  EXPECT_GE(striped_stats.torn_frames, 4u);
  EXPECT_TRUE(striped_stats.ended);
}

TEST(ServiceFaults, ClientKillMidStreamThroughStripedBatchPath) {
  // The PR 2 kill test, re-run against the striped/batched pipeline: the
  // prefix that reached the wire before the kill aggregates identically
  // whether one stripe or four absorbed it.
  auto scenario = record_scenario(small_scenario());

  auto run = [&](std::size_t threads, std::size_t stripes, SessionStats* stats) {
    support::FaultInjector fault;
    fault.schedule_kill(support::FaultComponent::kClient, 30);  // past batch #1
    ServerConfig config;
    config.ingest_threads = threads;
    config.agg_stripes = stripes;
    ProfileServer server(config);
    {
      auto conn = server.connect("killed");
      ReplayClient client(scenario->vfs(), "killed", *conn,
                          ReplayOptions{32, &fault, {}});
      EXPECT_FALSE(client.run());  // died before kEndStream
    }
    server.drain();
    *stats = server.session("killed")->stats();
    return server.session_report("killed", 20, kEvents);
  };

  SessionStats serial_stats, striped_stats;
  const std::string serial = run(1, 1, &serial_stats);
  const std::string striped = run(4, 4, &striped_stats);

  EXPECT_EQ(striped, serial);
  EXPECT_EQ(striped_stats.records_ingested, serial_stats.records_ingested);
  EXPECT_GT(striped_stats.records_ingested, 0u);
  EXPECT_FALSE(striped_stats.ended);
}

// A crash in the middle of `viprof_serve --export` must never leave a
// reader-visible half-written snapshot: the export publishes every file
// via temp-write + rename, so the worst a kill can leave behind is a stale
// *.tmp next to the previous, fully intact version.
TEST(ServiceFaults, ExportCrashMidPublishLeavesOldSnapshotIntact) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "viprof_service_faults_export";
  fs::remove_all(dir);

  auto scenario = record_scenario(small_scenario());
  ProfileServer server;
  {
    auto conn = server.connect("s");
    ReplayClient client(scenario->vfs(), "s", *conn, ReplayOptions{128, nullptr, {}});
    ASSERT_TRUE(client.run());
  }
  server.drain();
  ASSERT_TRUE(server.export_state(dir.string(), 10));

  const auto read_file = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string v1 = read_file(dir / "service.snap");
  ASSERT_TRUE(ServiceSnapshot::parse(v1).has_value());

  // Simulate the kill landing between temp-write and rename: the torn temp
  // is on disk, the publish never happened.
  {
    std::ofstream torn(dir / "service.snap.tmp", std::ios::binary);
    torn << v1.substr(0, v1.size() / 3) << "XXXX torn";
  }
  const std::string after_crash = read_file(dir / "service.snap");
  EXPECT_EQ(after_crash, v1);  // readers still see the old snapshot, whole
  ASSERT_TRUE(ServiceSnapshot::parse(after_crash).has_value());

  // The next export publishes over both the snapshot and the stale temp.
  ASSERT_TRUE(server.export_state(dir.string(), 10));
  const std::string v2 = read_file(dir / "service.snap");
  ASSERT_TRUE(ServiceSnapshot::parse(v2).has_value());
  EXPECT_FALSE(fs::exists(dir / "service.snap.tmp"));

  fs::remove_all(dir);
}

}  // namespace
}  // namespace viprof::service
