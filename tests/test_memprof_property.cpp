// Property test for object-sample resolution (DESIGN.md §15): across
// randomized moving-GC schedules — objects allocated, copied between
// semispaces, promoted to the mature region and reclaimed, with epoch maps
// randomly lost or torn — resolving a data address through the flattened
// epoch index (resolve_object over the code-map projection) must agree
// exactly with a naive backward walk over the object-map files themselves,
// including every crash-aware refusal. Runs under TSan in the sanitizer CI
// stage: the shared prepared index is probed from several threads.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/code_map.hpp"
#include "memprof/object_map.hpp"
#include "memprof/resolve.hpp"
#include "support/rng.hpp"

namespace viprof::memprof {
namespace {

constexpr hw::Address kSemiBase[2] = {0x6200'0000, 0x6280'0000};
constexpr hw::Address kMatureBase = 0x6400'0000;

struct LiveObject {
  std::uint64_t id;
  hw::Address address;
  std::uint64_t size;
  std::uint32_t site;
  std::uint32_t age = 0;
  std::uint32_t lifetime;
  bool mature = false;
};

struct Schedule {
  std::map<std::uint64_t, ObjectMapFile> kept;  // maps that survived, by epoch
  core::CodeMapIndex index;
  std::uint64_t max_epoch = 0;
  std::vector<hw::Address> interesting;  // addresses that were ever occupied
};

/// Simulates `epochs` epochs of a copying collector over tracked objects,
/// writing one partial map per epoch exactly like the agent: objects
/// allocated this epoch plus objects the previous collection moved, plus
/// the previous collection's deaths. Each serialised map is then randomly
/// lost (never written) or torn (salvaged prefix), and the survivors feed
/// one CodeMapIndex through the to_code_map() projection.
Schedule random_schedule(support::Xoshiro256& rng, std::uint64_t epochs) {
  Schedule out;
  out.max_epoch = epochs == 0 ? 0 : epochs - 1;
  std::vector<LiveObject> live;
  std::vector<std::uint64_t> pending;  // ids for the next map (alloc or moved)
  std::vector<ObjectDeath> pending_dead;
  std::uint64_t next_id = 1;
  std::uint64_t mature_cursor = 0;

  auto find_live = [&](std::uint64_t id) -> LiveObject& {
    for (LiveObject& o : live)
      if (o.id == id) return o;
    static LiveObject none;
    ADD_FAILURE() << "pending id " << id << " not live";
    return none;
  };

  for (std::uint64_t e = 0; e < epochs; ++e) {
    std::uint64_t semi_cursor = 0;
    // The previous collection's survivors were copied into this epoch's
    // semispace; place them now (their map entry carries the new address).
    for (const std::uint64_t id : pending) {
      LiveObject& o = find_live(id);
      if (o.mature) continue;  // promoted at the same collection
      o.address = kSemiBase[e % 2] + semi_cursor;
      semi_cursor += o.size;
    }
    // Fresh allocations of this epoch.
    const std::uint64_t births = 1 + rng.below(12);
    for (std::uint64_t i = 0; i < births; ++i) {
      LiveObject o;
      o.id = next_id++;
      o.size = 32 + rng.below(8) * 32;
      o.site = static_cast<std::uint32_t>(rng.below(6));
      o.lifetime = static_cast<std::uint32_t>(rng.below(4));  // 0 = die young
      o.address = kSemiBase[e % 2] + semi_cursor;
      semi_cursor += o.size;
      live.push_back(o);
      pending.push_back(o.id);
    }

    ObjectMapFile file;
    file.epoch = e;
    for (std::uint32_t s = 0; s < 6; ++s)
      file.sites.push_back({s, "alloc.site." + std::to_string(s)});
    for (const std::uint64_t id : pending) {
      const LiveObject& o = find_live(id);
      file.objects.push_back({o.address, o.size, o.id, o.site});
      out.interesting.push_back(o.address);
      out.interesting.push_back(o.address + o.size - 1);
      out.interesting.push_back(o.address + o.size);  // one past: never covered by o
    }
    file.dead = pending_dead;
    pending.clear();
    pending_dead.clear();

    // The write may be lost or torn — exercised through the real
    // serialise/salvage path so the index sees exactly what a reader would.
    const std::uint64_t fate = rng.below(100);
    if (fate < 20) {
      // Lost: the epoch has no map at all.
    } else if (fate < 40) {
      const std::string blob = file.serialize();
      const std::size_t cut = rng.below(blob.size());
      const ObjectMapFile::Recovery r =
          ObjectMapFile::salvage(blob.substr(0, cut), e);
      out.kept.emplace(e, r.file);
      out.index.add(r.file.to_code_map());
    } else {
      out.kept.emplace(e, file);
      out.index.add(file.to_code_map());
    }

    // The collection closing epoch e: age every survivor, reclaim the
    // expired (death recorded in the *next* epoch's map), copy the rest —
    // occasionally promoting to the mature region, where the object stops
    // appearing in any later map.
    std::vector<LiveObject> next_live;
    for (LiveObject& o : live) {
      ++o.age;
      if (!o.mature && o.age > o.lifetime) {
        pending_dead.push_back({o.id, o.size, o.site});
        continue;
      }
      if (o.mature) {
        next_live.push_back(o);
        continue;
      }
      if (rng.below(100) < 15) {
        o.mature = true;
        o.address = kMatureBase + mature_cursor;
        mature_cursor += o.size;
      }
      pending.push_back(o.id);  // moved (or just promoted): in the next map
      next_live.push_back(o);
    }
    live.swap(next_live);
  }
  out.index.prepare();
  return out;
}

/// The naive oracle: the literal backward walk of DESIGN.md §15 over the
/// surviving ObjectMapFiles, independent of CodeMapIndex. Returns the
/// symbol resolve_object must produce.
std::string oracle(const Schedule& s, hw::Address addr, std::uint64_t epoch) {
  if (s.kept.empty()) return kUnresolvedObjNoMap;
  for (std::uint64_t e = epoch;; --e) {
    const auto it = s.kept.find(e);
    if (it == s.kept.end()) return kUnresolvedObjNoMap;
    for (const ObjectMapEntry& o : it->second.objects)
      if (o.contains(addr)) return site_symbol(o.site);
    if (it->second.truncated) return kUnresolvedObjTruncated;
    if (e == 0) return kUnresolvedObjUntracked;
  }
}

hw::Address random_probe(support::Xoshiro256& rng, const Schedule& s) {
  const std::uint64_t where = rng.below(10);
  if (where == 0) return kSemiBase[0] - 1 - rng.below(0x1000);  // below the heap
  if (where == 1) return kMatureBase + rng.below(0x10'0000);    // mature region
  if (where < 4 || s.interesting.empty())
    return kSemiBase[rng.below(2)] + rng.below(0x4000);  // anywhere in a semispace
  return s.interesting[rng.below(s.interesting.size())];  // boundary-exact
}

class MemprofResolveProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemprofResolveProperty, IndexMatchesNaiveBackwardWalk) {
  support::Xoshiro256 rng(GetParam() * 0x9e37 + 5);
  const std::uint64_t epochs = 2 + rng.below(12);
  const Schedule s = random_schedule(rng, epochs);

  ObjectResolveStats stats;
  const int kProbes = 3000;
  for (int probe = 0; probe < kProbes; ++probe) {
    const hw::Address addr = random_probe(rng, s);
    const std::uint64_t epoch = rng.below(s.max_epoch + 3);
    const core::Resolution res = resolve_object(&s.index, addr, epoch, &stats);
    ASSERT_EQ(res.symbol, oracle(s, addr, epoch))
        << "addr=" << addr << " epoch=" << epoch << " seed=" << GetParam();
    EXPECT_EQ(res.image, kObjectImage);
    EXPECT_EQ(res.domain, core::SampleDomain::kObject);

    // The flattened lookup the resolver rides on must itself agree with the
    // walkback oracle over projected object entries.
    const auto flat = s.index.lookup(addr, epoch);
    const auto walk = s.index.lookup_walkback(addr, epoch);
    ASSERT_EQ(flat.miss, walk.miss) << "addr=" << addr << " epoch=" << epoch;
    ASSERT_EQ(flat.hit.has_value(), walk.hit.has_value());
    if (flat.hit) ASSERT_EQ(flat.hit->symbol, walk.hit->symbol);
  }
  EXPECT_EQ(stats.resolved + stats.unresolved, static_cast<std::uint64_t>(kProbes));
  EXPECT_EQ(stats.unresolved, stats.no_map + stats.truncated_map + stats.untracked);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemprofResolveProperty,
                         ::testing::Range<std::uint64_t>(0, 16));

// The prepared index is shared read-only by every ingest worker; under TSan
// this asserts the const-query thread-safety contract for the object
// projection, and that concurrent resolution loses no sample to a bin the
// serial walk would not have chosen.
TEST(MemprofResolveProperty, ConcurrentResolutionMatchesSerial) {
  support::Xoshiro256 rng(0xc0ffee);
  const Schedule s = random_schedule(rng, 10);

  constexpr int kThreads = 4;
  constexpr int kProbes = 4000;
  std::vector<ObjectResolveStats> stats(kThreads);
  std::vector<std::uint64_t> mismatches(kThreads, 0);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        support::Xoshiro256 trng(0x7000 + t);
        for (int i = 0; i < kProbes; ++i) {
          const hw::Address addr = random_probe(trng, s);
          const std::uint64_t epoch = trng.below(s.max_epoch + 3);
          const core::Resolution res = resolve_object(&s.index, addr, epoch, &stats[t]);
          if (res.symbol != oracle(s, addr, epoch)) ++mismatches[t];
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }

  ObjectResolveStats merged;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0u) << "thread " << t;
    merged.merge(stats[t]);
  }
  // Replaying each thread's probe stream serially yields the same tallies.
  ObjectResolveStats serial;
  for (int t = 0; t < kThreads; ++t) {
    support::Xoshiro256 trng(0x7000 + t);
    for (int i = 0; i < kProbes; ++i) {
      const hw::Address addr = random_probe(trng, s);
      resolve_object(&s.index, addr, trng.below(s.max_epoch + 3), &serial);
    }
  }
  EXPECT_EQ(merged.resolved, serial.resolved);
  EXPECT_EQ(merged.no_map, serial.no_map);
  EXPECT_EQ(merged.truncated_map, serial.truncated_map);
  EXPECT_EQ(merged.untracked, serial.untracked);
  EXPECT_EQ(merged.backward_steps, serial.backward_steps);
}

}  // namespace
}  // namespace viprof::memprof
