// FaultInjector unit tests: rule matching, skip/count windows, seeded
// determinism, the ENOSPC capacity model and one-shot kill schedules.
#include "support/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "os/vfs.hpp"

namespace viprof::support {
namespace {

using Result = FaultInjector::WriteOutcome::Result;

TEST(FaultInjector, NoRulesPassesEverythingThrough) {
  FaultInjector fi;
  for (int i = 0; i < 100; ++i) {
    const auto out = fi.on_write("samples/x", 64);
    EXPECT_EQ(out.result, Result::kOk);
    EXPECT_EQ(out.kept_bytes, 64u);
  }
  EXPECT_EQ(fi.stats().writes_seen, 100u);
  EXPECT_EQ(fi.faults_injected(), 0u);
}

TEST(FaultInjector, RuleMatchesOnPathPrefixOnly) {
  FaultInjector fi;
  fi.add_rule({"samples/", FaultKind::kWriteError, 0, ~0ull, 1.0, 0.5});
  EXPECT_EQ(fi.on_write("jit_maps/101/map.00000001", 128).result, Result::kOk);
  EXPECT_EQ(fi.on_write("samples/GLOBAL_POWER_EVENTS.samples", 128).result,
            Result::kError);
  EXPECT_EQ(fi.stats().write_errors, 1u);
}

TEST(FaultInjector, SkipAndCountBoundTheFaultWindow) {
  FaultInjector fi;
  // Pass 2 writes through, then fail exactly 3, then pass again.
  fi.add_rule({"f", FaultKind::kWriteError, 2, 3, 1.0, 0.5});
  int errors = 0;
  for (int i = 0; i < 10; ++i) {
    if (fi.on_write("f", 8).result == Result::kError) ++errors;
  }
  EXPECT_EQ(errors, 3);
  EXPECT_EQ(fi.on_write("f", 8).result, Result::kOk);
}

TEST(FaultInjector, TornWriteKeepsTheConfiguredPrefix) {
  FaultInjector fi;
  fi.add_rule({"f", FaultKind::kTornWrite, 0, 1, 1.0, 0.25});
  const auto out = fi.on_write("f", 100);
  EXPECT_EQ(out.result, Result::kTorn);
  EXPECT_EQ(out.kept_bytes, 25u);
  EXPECT_EQ(fi.stats().torn_writes, 1u);
}

TEST(FaultInjector, ProbabilisticRuleIsDeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    FaultInjector fi(seed);
    fi.add_rule({"f", FaultKind::kWriteError, 0, ~0ull, 0.3, 0.5});
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i)
      pattern.push_back(fi.on_write("f", 8).result == Result::kError);
    return pattern;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
  // Roughly 30% of writes fail; allow generous slack.
  const auto p = run(42);
  const auto fails = std::count(p.begin(), p.end(), true);
  EXPECT_GT(fails, 30);
  EXPECT_LT(fails, 90);
}

TEST(FaultInjector, CapacityModelsEnospc) {
  FaultInjector fi;
  fi.set_capacity_bytes(100);
  EXPECT_EQ(fi.on_write("f", 60).result, Result::kOk);
  EXPECT_EQ(fi.on_write("f", 60).result, Result::kNoSpace);  // would exceed
  EXPECT_EQ(fi.on_write("f", 40).result, Result::kOk);       // still fits
  EXPECT_EQ(fi.on_write("f", 1).result, Result::kNoSpace);   // full now
  EXPECT_EQ(fi.stats().enospc_errors, 2u);
}

TEST(FaultInjector, KillScheduleIsOneShot) {
  FaultInjector fi;
  fi.schedule_kill(FaultComponent::kDaemon, 1'000);
  EXPECT_FALSE(fi.should_kill(FaultComponent::kDaemon, 999));
  EXPECT_FALSE(fi.should_kill(FaultComponent::kAgent, 5'000));  // other component
  EXPECT_TRUE(fi.should_kill(FaultComponent::kDaemon, 1'000));
  // Consumed: a restarted daemon is not instantly re-killed.
  EXPECT_FALSE(fi.should_kill(FaultComponent::kDaemon, 2'000));
  EXPECT_EQ(fi.stats().kills, 1u);
}

TEST(FaultInjector, VfsRoutesWritesThroughInjector) {
  os::Vfs vfs;
  FaultInjector fi;
  fi.add_rule({"bad/", FaultKind::kWriteError, 0, ~0ull, 1.0, 0.5});
  fi.add_rule({"torn/", FaultKind::kTornWrite, 0, ~0ull, 1.0, 0.5});
  vfs.set_fault_injector(&fi);

  EXPECT_EQ(vfs.write("ok/file", "0123456789"), os::IoStatus::kOk);
  EXPECT_EQ(vfs.write("bad/file", "0123456789"), os::IoStatus::kIoError);
  EXPECT_FALSE(vfs.exists("bad/file"));
  EXPECT_EQ(vfs.append("torn/file", "0123456789"), os::IoStatus::kTorn);
  EXPECT_EQ(vfs.read("torn/file")->size(), 5u);

  vfs.set_fault_injector(nullptr);
  EXPECT_EQ(vfs.write("bad/file", "x"), os::IoStatus::kOk);
}

TEST(FaultInjector, VfsEnospcLeavesFileUntouched) {
  os::Vfs vfs;
  FaultInjector fi;
  fi.set_capacity_bytes(10);
  vfs.set_fault_injector(&fi);
  EXPECT_EQ(vfs.append("f", "12345"), os::IoStatus::kOk);
  EXPECT_EQ(vfs.append("f", "1234567890"), os::IoStatus::kNoSpace);
  EXPECT_EQ(*vfs.read("f"), "12345");
}

}  // namespace
}  // namespace viprof::support
