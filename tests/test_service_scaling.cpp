// Scaling-path correctness for the striped ingest pipeline (DESIGN.md §14).
//
// Two families:
//  - Stripe sweep: the online-vs-offline byte-identity anchor must hold at
//    every (ingest threads, aggregation stripes) combination — the stripe
//    count is an internal throughput knob, never an observable.
//  - Concurrency stress: ingest, online queries, store flushes and RCU
//    snapshot installs in the shared code-map cache all race on purpose.
//    These tests exist to run under TSan in the sanitizer CI stage (ctest
//    -L service): the lock-free read path and the striped apply path must
//    be exactly as data-race-free as the single-mutex design they replaced.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/code_map.hpp"
#include "service/client.hpp"
#include "service/code_map_cache.hpp"
#include "service/scenario.hpp"
#include "service/server.hpp"

namespace viprof::service {
namespace {

const std::vector<hw::EventKind> kEvents = {hw::EventKind::kGlobalPowerEvents,
                                            hw::EventKind::kBsqCacheReference};

ScenarioConfig small_scenario() {
  ScenarioConfig config;
  config.vms = 2;
  config.samples_per_event = 3'000;
  config.epochs = 8;
  config.methods = 64;
  return config;
}

bool replay(ProfileServer& server, const RecordedScenario& scenario,
            const std::string& id) {
  auto conn = server.connect(id);
  ReplayClient client(scenario.vfs(), id, *conn, ReplayOptions{128, nullptr, {}});
  return client.run();
}

TEST(ServiceScaling, ByteIdentityAtEveryThreadAndStripeCount) {
  const auto scenario = record_scenario(small_scenario());
  const std::string offline = offline_render(scenario->vfs(), kEvents, 30);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t stripes :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      ServerConfig config;
      config.ingest_threads = threads;
      config.agg_stripes = stripes;
      ProfileServer server(config);
      ASSERT_TRUE(replay(server, *scenario, "sweep"));
      server.drain();
      ASSERT_EQ(server.session("sweep")->stripe_count(), stripes);
      EXPECT_EQ(server.session_report("sweep", 30, kEvents), offline)
          << "threads=" << threads << " stripes=" << stripes;
    }
  }
}

TEST(ServiceScaling, DefaultStripeCountFollowsPool) {
  ServerConfig config;
  config.ingest_threads = 3;
  ProfileServer server(config);
  auto conn = server.connect("c");
  // Frame-level open so a session exists without a full replay.
  conn->send(encode_frame(FrameType::kOpenSession, "auto"));
  ASSERT_NE(server.session("auto"), nullptr);
  EXPECT_EQ(server.session("auto")->stripe_count(), 3u);
}

TEST(ServiceScalingStress, ConcurrentIngestQueriesAndFlushes) {
  // Queries race the striped apply path mid-stream. Mid-stream answers are
  // subset-consistent (some batches not yet applied), but must never crash,
  // deadlock or tear; the post-drain answer must be the full serial one.
  const auto scenario = record_scenario(small_scenario());
  const std::string offline = offline_render(scenario->vfs(), kEvents, 30);

  ServerConfig config;
  config.ingest_threads = 4;
  config.agg_stripes = 4;
  ProfileServer server(config);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&server, &done, &queries, t] {
      while (!done.load(std::memory_order_acquire)) {
        switch ((queries.fetch_add(1, std::memory_order_relaxed) + t) % 4) {
          case 0: server.query("top 10 --session stress"); break;
          case 1: server.query("sessions"); break;
          case 2: server.query("arcs 10 --session stress"); break;
          default: server.query("since-epoch 2 --session stress"); break;
        }
      }
    });
  }

  ASSERT_TRUE(replay(server, *scenario, "stress"));
  server.drain();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(server.session_report("stress", 30, kEvents), offline);
}

TEST(ServiceScalingStress, CodeMapCacheSnapshotInstallUnderReaders) {
  // Hammer the RCU read path while writers install new snapshot
  // generations and evict over capacity: pins handed out must stay valid,
  // concurrent misses on one key must build once, and (under TSan) the
  // lock-free hit path must stay race-free against the copy-on-write swap.
  CodeMapCache cache(4);  // small: every installer round forces evictions

  auto build = [](std::uint64_t epoch) {
    return [epoch]() {
      core::CodeMapFile file;
      file.epoch = epoch;
      core::CodeMapEntry entry;
      entry.address = 0x1000 * (epoch + 1);
      entry.size = 0x800;
      entry.symbol = "m" + std::to_string(epoch);
      file.entries.push_back(std::move(entry));
      core::CodeMapIndex index;
      index.add(std::move(file));
      return index;
    };
  };
  std::atomic<std::uint64_t> builds{0};
  auto counted_build = [&builds, &build](std::uint64_t epoch) {
    return [&builds, fn = build(epoch)]() {
      builds.fetch_add(1, std::memory_order_relaxed);
      return fn();
    };
  };

  constexpr int kReaders = 4;
  constexpr int kRounds = 300;
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  // Readers: loop over a hot working set of 2 keys (stays resident).
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kRounds; ++i) {
        const std::uint64_t ceiling = static_cast<std::uint64_t>(t % 2);
        const CodeMapCache::IndexPtr pin =
            cache.get("s", 7, ceiling, counted_build(ceiling));
        ASSERT_NE(pin, nullptr);
        // The pin is usable even if the entry is evicted right now.
        pin->resolve(0x1000 * (ceiling + 1) + 4, ceiling);
      }
    });
  }
  // Installer: streams new generations through, forcing snapshot swaps
  // and LRU eviction churn against the readers.
  threads.emplace_back([&] {
    while (!start.load(std::memory_order_acquire)) {
    }
    for (int i = 0; i < kRounds; ++i) {
      const std::uint64_t ceiling = 100 + static_cast<std::uint64_t>(i);
      cache.get("s", 9, ceiling, counted_build(ceiling));
    }
  });
  start.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  // The 2 hot keys may be rebuilt if the installer churn evicts them, but
  // concurrent misses coalesce: far fewer builds than reader calls.
  EXPECT_GE(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), builds.load());
  EXPECT_LT(builds.load(),
            static_cast<std::uint64_t>(kReaders * kRounds + kRounds));
  EXPECT_GT(cache.evictions(), 0u);
}

}  // namespace
}  // namespace viprof::service
