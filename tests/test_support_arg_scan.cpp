// The shared CLI scanner behind every viprof_* tool: flag matching,
// value consumption, and the one usage convention the tools converged on —
// bad usage prints the usage text to stderr and exits kExitUsage (3).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "support/arg_scan.hpp"

namespace viprof::support {
namespace {

/// Owned argv for a scanner (ArgScan keeps pointers, so the storage must
/// outlive it).
struct Argv {
  std::vector<std::string> store;
  std::vector<char*> ptrs;

  Argv(std::initializer_list<const char*> args) {
    for (const char* a : args) store.emplace_back(a);
    for (std::string& s : store) ptrs.push_back(s.data());
  }
  int argc() { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
};

constexpr const char* kUsage = "usage: test-tool --in DIR [--top N]\n";

TEST(ArgScan, ScansFlagsAndValuesInOrder) {
  Argv a({"tool", "--in", "some/dir", "--top", "7", "--quiet"});
  ArgScan args(a.argc(), a.argv(), kUsage);

  std::string in;
  std::uint64_t top = 0;
  bool quiet = false;
  while (args.next()) {
    if (args.is("--in")) in = args.value();
    else if (args.is("--top")) top = args.value_u64();
    else if (args.is("--quiet")) quiet = true;
    else args.fail_unknown();
  }
  EXPECT_EQ(in, "some/dir");
  EXPECT_EQ(top, 7u);
  EXPECT_TRUE(quiet);
}

TEST(ArgScan, PositionalArgumentsReadableViaArg) {
  Argv a({"tool", "top", "5"});
  ArgScan args(a.argc(), a.argv(), kUsage);
  ASSERT_TRUE(args.next());
  EXPECT_STREQ(args.arg(), "top");
  EXPECT_TRUE(args.is("top"));
  EXPECT_FALSE(args.is("bottom"));
  ASSERT_TRUE(args.next());
  EXPECT_STREQ(args.arg(), "5");
  EXPECT_FALSE(args.next());  // exhausted
  // An empty command line (argv[0] only) yields nothing at all.
  Argv bare({"tool"});
  ArgScan none(bare.argc(), bare.argv(), kUsage);
  EXPECT_FALSE(none.next());
}

TEST(ArgScan, ValueU64ParsesUnsignedRange) {
  Argv a({"tool", "--n", "18446744073709551615", "--zero", "0", "--junk", "xyz"});
  ArgScan args(a.argc(), a.argv(), kUsage);
  ASSERT_TRUE(args.next());
  EXPECT_EQ(args.value_u64(), ~0ull);
  ASSERT_TRUE(args.next());
  EXPECT_EQ(args.value_u64(), 0u);
  ASSERT_TRUE(args.next());
  EXPECT_EQ(args.value_u64(), 0u);  // strtoull: non-numeric reads as 0
}

TEST(ArgScan, ExitUsageConstantMatchesToolConvention) {
  // viprof_fsck's verdicts own exit codes 0..2, which pinned usage at 3.
  EXPECT_EQ(kExitUsage, 3);
}

TEST(ArgScanDeathTest, MissingValueExitsUsage) {
  Argv a({"tool", "--in"});
  ArgScan args(a.argc(), a.argv(), kUsage);
  ASSERT_TRUE(args.next());
  EXPECT_EXIT({ (void)args.value(); }, ::testing::ExitedWithCode(kExitUsage),
              "--in needs a value");
}

TEST(ArgScanDeathTest, UnknownFlagExitsUsageWithDiagnostic) {
  Argv a({"tool", "--frobnicate"});
  ArgScan args(a.argc(), a.argv(), kUsage);
  ASSERT_TRUE(args.next());
  EXPECT_EXIT(args.fail_unknown(), ::testing::ExitedWithCode(kExitUsage),
              "unknown argument: --frobnicate");
}

TEST(ArgScanDeathTest, FailPrintsTheUsageText) {
  Argv a({"tool"});
  ArgScan args(a.argc(), a.argv(), kUsage);
  EXPECT_EXIT(args.fail(), ::testing::ExitedWithCode(kExitUsage),
              "usage: test-tool --in DIR");
}

TEST(ArgScanDeathTest, ConflictingModeFlagsExitUsage) {
  // The viprof_fsck migration pattern: --store and --fleet both parse
  // fine individually, but selecting two layouts at once is a usage
  // error, routed through the same fail() → exit-3 path as a bad flag.
  Argv a({"viprof_fsck", "--store", "--fleet"});
  ArgScan args(a.argc(), a.argv(), kUsage);
  bool store_layout = false;
  bool fleet_layout = false;
  const auto parse = [&] {
    while (args.next()) {
      if (args.is("--store")) store_layout = true;
      else if (args.is("--fleet")) fleet_layout = true;
      else args.fail_unknown();
    }
    if (store_layout && fleet_layout) args.fail();
    std::exit(0);  // unreachable for this argv
  };
  EXPECT_EXIT(parse(), ::testing::ExitedWithCode(kExitUsage),
              "usage: test-tool");
}

TEST(ArgScanDeathTest, StatsVerbWithoutFleetDirExitsUsage) {
  // The viprof_query observability verbs: `stats`/`trace` only answer over
  // an exported fleet namespace, so omitting --fleet is a usage error.
  Argv a({"viprof_query", "stats", "--json"});
  ArgScan args(a.argc(), a.argv(), kUsage);
  const auto parse = [&] {
    if (!args.next()) args.fail();
    const std::string cmd = args.arg();
    std::string fleet_dir;
    while (args.next()) {
      if (args.is("--fleet")) fleet_dir = args.value();
      else if (args.is("--json")) continue;
      else args.fail_unknown();
    }
    if ((cmd == "stats" || cmd == "trace") && fleet_dir.empty()) args.fail();
    std::exit(0);  // unreachable for this argv
  };
  EXPECT_EXIT(parse(), ::testing::ExitedWithCode(kExitUsage),
              "usage: test-tool");
}

TEST(ArgScanDeathTest, TraceMergeWithoutInputsExitsUsage) {
  // viprof_stat trace-merge/contention: at least one --in is mandatory —
  // merging or ranking nothing is a usage error, not an empty success.
  Argv a({"viprof_stat", "trace-merge", "--out", "merged.json"});
  ArgScan args(a.argc(), a.argv(), kUsage);
  const auto parse = [&] {
    if (!args.next()) args.fail();
    const std::string cmd = args.arg();
    std::vector<std::string> in_args;
    while (args.next()) {
      if (args.is("--in")) in_args.push_back(args.value());
      else if (args.is("--out")) (void)args.value();
      else if (args.is("--top")) (void)args.value_u64();
      else args.fail_unknown();
    }
    if ((cmd == "trace-merge" || cmd == "contention") && in_args.empty())
      args.fail();
    std::exit(0);
  };
  EXPECT_EXIT(parse(), ::testing::ExitedWithCode(kExitUsage),
              "usage: test-tool");
}

TEST(ArgScanDeathTest, ContentionRejectsUnknownFlags) {
  Argv a({"viprof_stat", "contention", "--in", "dir", "--percentile", "99"});
  ArgScan args(a.argc(), a.argv(), kUsage);
  const auto parse = [&] {
    args.next();  // verb
    while (args.next()) {
      if (args.is("--in")) (void)args.value();
      else if (args.is("--top")) (void)args.value_u64();
      else args.fail_unknown();
    }
    std::exit(0);
  };
  EXPECT_EXIT(parse(), ::testing::ExitedWithCode(kExitUsage),
              "unknown argument: --percentile");
}

}  // namespace
}  // namespace viprof::support
