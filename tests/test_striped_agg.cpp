// Property tests for the order-recovering striped aggregation accumulators
// (DESIGN.md §14). The invariant under test is the byte-identity anchor:
// for ANY stripe count, ANY batch→stripe assignment and ANY apply
// interleaving, folding batch partials through SeqProfile/SeqCallGraph and
// rendering ordered() must reproduce the serial aggregate byte for byte —
// row order, domains and totals included.
#include "core/striped_agg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/callgraph.hpp"
#include "core/report.hpp"
#include "core/resolver.hpp"

namespace viprof::core {
namespace {

constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;
constexpr auto kDmiss = hw::EventKind::kBsqCacheReference;
const std::vector<hw::EventKind> kEvents = {kTime, kDmiss};

struct Sample {
  Resolution res;
  hw::EventKind event = kTime;
  std::uint64_t count = 1;
};

Resolution make_res(std::uint64_t id, SampleDomain domain, bool resolved) {
  Resolution r;
  if (resolved) {
    r.image = (id % 3 == 0) ? "RVM.map" : (id % 3 == 1) ? "vmlinux" : "libc.so";
    r.symbol = "sym-" + std::to_string(id);
    r.symbol_base = 0x6000'0000 + id * 0x1000;
    r.symbol_size = 0x800;
  } else {
    // The unresolved degradation bins: distinct names, shared base 0.
    r.image = "[anon]";
    r.symbol = "unresolved." + std::to_string(id % 4);
    r.symbol_base = 0;
    r.symbol_size = 0;
  }
  r.domain = domain;
  return r;
}

/// A random stream chopped into batches. Symbol ids repeat across batches
/// (shared rows), some rows are unresolved bins, and a slice of ids
/// deliberately flips domain between occurrences — serial keeps the
/// first-seen domain, and recovery must too.
std::vector<std::vector<Sample>> make_batches(std::mt19937& rng,
                                              std::size_t batches,
                                              std::size_t per_batch) {
  std::vector<std::vector<Sample>> out(batches);
  std::uniform_int_distribution<std::uint64_t> id_dist(0, 40);
  std::uniform_int_distribution<int> pct(0, 99);
  for (std::size_t b = 0; b < batches; ++b) {
    out[b].reserve(per_batch);
    for (std::size_t i = 0; i < per_batch; ++i) {
      Sample s;
      const std::uint64_t id = id_dist(rng);
      const bool resolved = pct(rng) < 85;
      SampleDomain domain = (id % 2 == 0) ? SampleDomain::kJit : SampleDomain::kImage;
      if (id % 7 == 0 && pct(rng) < 50) domain = SampleDomain::kKernel;  // flips
      s.res = make_res(id, domain, resolved);
      s.event = pct(rng) < 70 ? kTime : kDmiss;
      s.count = 1 + static_cast<std::uint64_t>(pct(rng) % 3);
      out[b].push_back(std::move(s));
    }
  }
  return out;
}

Profile serial_profile(const std::vector<std::vector<Sample>>& batches) {
  Profile p;
  for (const auto& batch : batches)
    for (const Sample& s : batch) p.add(s.event, s.res, s.count);
  return p;
}

Profile batch_partial(const std::vector<Sample>& batch) {
  Profile p;
  for (const Sample& s : batch) p.add(s.event, s.res, s.count);
  return p;
}

void expect_rows_equal(const Profile& got, const Profile& want) {
  ASSERT_EQ(got.row_count(), want.row_count());
  for (std::size_t i = 0; i < want.rows().size(); ++i) {
    const ProfileRow& g = got.rows()[i];
    const ProfileRow& w = want.rows()[i];
    EXPECT_EQ(g.image, w.image) << "row " << i;
    EXPECT_EQ(g.symbol, w.symbol) << "row " << i;
    EXPECT_EQ(g.domain, w.domain) << "row " << i;
    for (std::size_t e = 0; e < hw::kEventKindCount; ++e)
      EXPECT_EQ(g.counts[e], w.counts[e]) << "row " << i << " event " << e;
  }
}

TEST(SeqProfileProperty, AnyStripeCountAndApplyOrderMatchesSerialBytes) {
  std::mt19937 rng(0x5eed);
  for (int round = 0; round < 6; ++round) {
    const auto batches = make_batches(rng, 24, 32);
    const Profile serial = serial_profile(batches);
    const std::string serial_render = serial.render(kEvents, 50);

    for (const std::size_t stripes : {1u, 2u, 4u, 8u}) {
      // Random apply interleaving: batches fold into their stripe in
      // shuffled completion order, exactly as racing workers would.
      std::vector<std::size_t> order(batches.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::shuffle(order.begin(), order.end(), rng);

      std::vector<SeqProfile> stripe_accs(stripes);
      for (const std::size_t seq : order)
        stripe_accs[seq % stripes].fold(seq, batch_partial(batches[seq]));

      // Cross-stripe merge in a random visit order too: query-time folds
      // must not depend on stripe enumeration order either.
      std::vector<std::size_t> visit(stripes);
      for (std::size_t i = 0; i < stripes; ++i) visit[i] = i;
      std::shuffle(visit.begin(), visit.end(), rng);
      SeqProfile combined;
      for (const std::size_t k : visit) combined.fold(stripe_accs[k]);

      const Profile recovered = combined.ordered();
      EXPECT_EQ(recovered.render(kEvents, 50), serial_render)
          << "stripes=" << stripes << " round=" << round;
      expect_rows_equal(recovered, serial);
    }
  }
}

TEST(SeqProfileProperty, FlushCutPointsAreInvisible) {
  // Split the same batch set at an arbitrary cut into "pending" windows
  // (what take_flush drains), recover each window, and merge the windows
  // in cut order: identical to recovering the whole stream at once.
  std::mt19937 rng(0xf1a5);
  const auto batches = make_batches(rng, 20, 24);
  const Profile serial = serial_profile(batches);

  for (const std::size_t cut : {1u, 7u, 13u, 19u}) {
    Profile merged;
    for (const auto& window :
         {std::pair<std::size_t, std::size_t>{0, cut}, {cut, batches.size()}}) {
      SeqProfile acc;
      for (std::size_t seq = window.first; seq < window.second; ++seq)
        acc.fold(seq, batch_partial(batches[seq]));
      merged.merge(acc.ordered());
    }
    EXPECT_EQ(merged.render(kEvents, 50), serial.render(kEvents, 50))
        << "cut=" << cut;
  }
}

TEST(SeqCallGraphProperty, AnyStripeCountAndApplyOrderMatchesSerial) {
  std::mt19937 rng(0xca11);
  std::uniform_int_distribution<std::uint64_t> id_dist(0, 12);
  std::uniform_int_distribution<int> pct(0, 99);

  // Arc stream: (caller, callee) pairs, batched.
  const std::size_t batch_count = 18;
  std::vector<std::vector<std::pair<Resolution, Resolution>>> batches(batch_count);
  for (auto& batch : batches) {
    for (int i = 0; i < 20; ++i) {
      const Resolution caller =
          make_res(id_dist(rng), SampleDomain::kImage, pct(rng) < 90);
      const Resolution callee =
          make_res(id_dist(rng) + 20, SampleDomain::kJit, pct(rng) < 80);
      batch.emplace_back(caller, callee);
    }
  }

  CallGraph serial;
  for (const auto& batch : batches)
    for (const auto& [caller, callee] : batch) serial.add_resolved(caller, callee);
  const std::string serial_render = serial.render(40);

  for (const std::size_t stripes : {1u, 2u, 4u, 8u}) {
    std::vector<std::size_t> order(batch_count);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);

    std::vector<SeqCallGraph> stripe_accs(stripes);
    for (const std::size_t seq : order) {
      CallGraph partial;
      for (const auto& [caller, callee] : batches[seq])
        partial.add_resolved(caller, callee);
      stripe_accs[seq % stripes].fold(seq, partial);
    }
    SeqCallGraph combined;
    for (auto& acc : stripe_accs) combined.fold(acc);

    const CallGraph recovered = combined.ordered();
    EXPECT_EQ(recovered.render(40), serial_render) << "stripes=" << stripes;
    EXPECT_EQ(recovered.total_samples(), serial.total_samples());
    ASSERT_EQ(recovered.total_arcs(), serial.total_arcs());
    for (std::size_t i = 0; i < serial.arcs().size(); ++i) {
      EXPECT_EQ(recovered.arcs()[i].caller_symbol, serial.arcs()[i].caller_symbol);
      EXPECT_EQ(recovered.arcs()[i].callee_symbol, serial.arcs()[i].callee_symbol);
      EXPECT_EQ(recovered.arcs()[i].count, serial.arcs()[i].count);
    }
  }
}

TEST(RowMemoProperty, MemoisedAddsEqualDirectAdds) {
  std::mt19937 rng(0x3e3e);
  std::uniform_int_distribution<std::uint64_t> id_dist(0, 30);
  std::uniform_int_distribution<int> pct(0, 99);

  Profile direct, memoised;
  RowMemo memo;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t id = id_dist(rng);
    const bool resolved = pct(rng) < 80;
    const Resolution res = make_res(
        id, id % 2 == 0 ? SampleDomain::kJit : SampleDomain::kKernel, resolved);
    const hw::EventKind event = pct(rng) < 60 ? kTime : kDmiss;
    const hw::Pid pid = 40 + id % 3;
    const std::uint64_t epoch = id % 5;
    const std::uint64_t count = 1 + static_cast<std::uint64_t>(pct(rng) % 4);
    direct.add(event, res, count);
    memo.add(memoised, event, pid, epoch, res, count);
  }
  EXPECT_EQ(memoised.render(kEvents, 60), direct.render(kEvents, 60));
  expect_rows_equal(memoised, direct);
  EXPECT_EQ(memoised.total(kTime), direct.total(kTime));
  EXPECT_EQ(memoised.total(kDmiss), direct.total(kDmiss));
}

}  // namespace
}  // namespace viprof::core
