// Failure-injection and stress tests: the profiler under hostile
// conditions — undersized buffers, extreme sampling rates, hardware skid,
// starved daemons — must degrade *gracefully and accountably*: drops are
// counted, attribution never lies, invariants hold.
#include <gtest/gtest.h>

#include <memory>

#include "core/viprof.hpp"
#include "workloads/generator.hpp"

namespace viprof {
namespace {

constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;

struct InjRun {
  std::unique_ptr<os::Machine> machine;
  std::unique_ptr<jvm::Vm> vm;
  std::unique_ptr<core::ProfilingSession> session;
  core::SessionResult result;
};

InjRun run_with(core::SessionConfig config, std::uint64_t ops = 3'000'000) {
  InjRun run;
  os::MachineConfig mcfg;
  mcfg.seed = 0xfa11;
  run.machine = std::make_unique<os::Machine>(mcfg);
  workloads::GeneratorOptions opt;
  opt.name = "inj";
  opt.seed = 4;
  opt.methods = 16;
  opt.total_app_ops = ops;
  opt.alloc_intensity = 0.6;
  opt.nursery_bytes = 512 * 1024;
  const workloads::Workload w = workloads::make_synthetic(opt);
  run.vm = std::make_unique<jvm::Vm>(*run.machine, w.vm);
  run.session = std::make_unique<core::ProfilingSession>(*run.machine, *run.vm, config);
  run.session->attach();
  run.vm->setup(w.program);
  run.result = run.session->run();
  return run;
}

TEST(FailureInjection, TinyBufferDropsAreCountedNotLost) {
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.buffer_capacity = 16;  // absurdly small
  // Slow the daemon so the buffer actually overflows.
  config.daemon.drain_watermark = 1'000'000;
  config.daemon.drain_period = 50'000'000;
  config.counters = {{kTime, 10'000, true}};
  InjRun run = run_with(config);
  EXPECT_GT(run.result.samples_dropped, 0u);
  // Conservation holds with drops included.
  std::uint64_t logged = 0;
  for (hw::EventKind e : hw::kAllEventKinds) {
    logged += core::SampleLogReader::read(run.machine->vfs(),
                                          run.session->daemon()->sample_dir(), e)
                  .size();
  }
  // Full ledger: pushed records = hw samples + markers (one per map);
  // every pushed record is either drained (markers are consumed, samples
  // are logged) or dropped. Nothing vanishes unaccounted.
  EXPECT_EQ(logged + run.result.daemon.epoch_markers + run.result.samples_dropped,
            run.result.nmi_count + run.result.agent.maps_written);
}

TEST(FailureInjection, DroppedEpochMarkersNeverCorruptAttributionForward) {
  // Even with heavy drops, surviving JIT samples must either resolve to a
  // real method or be explicitly unknown — never to a *wrong* method of a
  // different image class.
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.buffer_capacity = 16;
  config.daemon.drain_watermark = 1'000'000;
  config.daemon.drain_period = 50'000'000;
  config.counters = {{kTime, 10'000, true}};
  InjRun run = run_with(config);
  core::Resolver& r = run.session->resolver();
  for (const core::LoggedSample& s : core::SampleLogReader::read(
           run.machine->vfs(), run.session->daemon()->sample_dir(), kTime)) {
    const core::Resolution res = r.resolve(s);
    if (res.domain == core::SampleDomain::kJit) {
      EXPECT_TRUE(res.symbol.find("synthetic.inj") == 0 ||
                  res.symbol == "(unknown JIT code)")
          << res.symbol;
    }
  }
}

TEST(FailureInjection, ExtremeSamplingStillTerminatesAndConserves) {
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.counters = {{kTime, 5'000, true}};  // brutal rate; nmi_cost ~ period/2
  InjRun run = run_with(config, 1'000'000);
  EXPECT_GT(run.result.nmi_count, 100u);
  EXPECT_EQ(run.result.daemon.drained + run.result.samples_dropped,
            run.result.nmi_count + run.result.daemon.epoch_markers);
  // Overhead is large but the run completed and time is accounted.
  EXPECT_GT(run.result.cycles, 0u);
}

TEST(FailureInjection, PcSkidKeepsSamplesInsideSomeImage) {
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.pc_skid = 64;  // hardware-style late attribution
  InjRun run = run_with(config);
  core::Resolver& r = run.session->resolver();
  std::uint64_t unknown = 0, total = 0;
  for (const core::LoggedSample& s : core::SampleLogReader::read(
           run.machine->vfs(), run.session->daemon()->sample_dir(), kTime)) {
    ++total;
    if (r.resolve(s).domain == core::SampleDomain::kUnknown) ++unknown;
  }
  ASSERT_GT(total, 0u);
  EXPECT_EQ(unknown, 0u);  // skid is clamped to the executing body
}

TEST(FailureInjection, TinyDaemonBatchStillDrainsEverything) {
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.daemon.batch = 2;
  config.daemon.drain_watermark = 2;
  InjRun run = run_with(config);
  EXPECT_EQ(run.result.samples_dropped, 0u);
  EXPECT_GT(run.result.daemon.wakeups, 10u);
}

TEST(FailureInjection, ZeroGlueAndNoOutcallsWorkloadRuns) {
  workloads::GeneratorOptions opt;
  opt.name = "bare";
  opt.methods = 2;
  opt.total_app_ops = 200'000;
  opt.native_frac = 0.0;
  opt.syscall_frac = 0.0;
  opt.vm_glue_frac = 0.0;
  const workloads::Workload w = workloads::make_synthetic(opt);
  os::Machine machine;
  jvm::Vm vm(machine, w.vm);
  vm.setup(w.program);
  const jvm::RunStats stats = vm.run();
  EXPECT_GE(stats.app_ops, 200'000u);
  EXPECT_EQ(stats.native_ops, 0u);
  EXPECT_EQ(stats.kernel_ops, 0u);
}

TEST(FailureInjection, ReattachDifferentSessionToFreshMachineIsClean) {
  // Sessions must not leak NMI handlers into later machines (the destructor
  // clears the hook); two sequential full runs on fresh machines agree.
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  const core::SessionResult a = run_with(config).result;
  const core::SessionResult b = run_with(config).result;
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.nmi_count, b.nmi_count);
}

class BufferCapacitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BufferCapacitySweep, ConservationHoldsAtAnyCapacity) {
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.buffer_capacity = GetParam();
  config.counters = {{kTime, 20'000, true}};
  InjRun run = run_with(config, 1'500'000);
  std::uint64_t logged = 0;
  for (hw::EventKind e : hw::kAllEventKinds) {
    logged += core::SampleLogReader::read(run.machine->vfs(),
                                          run.session->daemon()->sample_dir(), e)
                  .size();
  }
  EXPECT_EQ(logged + run.result.daemon.epoch_markers + run.result.samples_dropped,
            run.result.nmi_count + run.result.agent.maps_written);
}

INSTANTIATE_TEST_SUITE_P(Capacities, BufferCapacitySweep,
                         ::testing::Values(16, 64, 512, 4096, 65536));

}  // namespace
}  // namespace viprof
