#include <gtest/gtest.h>

#include <memory>

#include "core/callgraph.hpp"
#include "os/loader.hpp"

namespace viprof::core {
namespace {

// Minimal world: one process with a libc mapping and a registered JIT heap
// with one code-map entry, so arcs can cross the JIT -> native boundary.
class CallGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    os::Process& proc = machine_.spawn("jikesrvm");
    pid_ = proc.pid();
    os::Image& libc =
        machine_.registry().create("libc-2.3.2.so", os::ImageKind::kSharedLib, 64 * 1024);
    libc.symbols().add("memset", 0, 0x1000);
    libc_base_ = machine_.loader().load_library(proc, libc.id()).start;
    heap_base_ = machine_.loader().map_anon(proc, 1 << 20).start;

    VmRegistration reg;
    reg.pid = pid_;
    reg.heap_lo = heap_base_;
    reg.heap_hi = heap_base_ + (1 << 20);
    reg.jit_map_dir = "jit_maps";
    table_.add(reg);

    CodeMapFile map0;
    map0.epoch = 0;
    map0.entries.push_back({heap_base_ + 0x100, 0x100, "app.Hot.loop"});
    machine_.vfs().write(CodeMapFile::path_for("jit_maps", pid_, 0), map0.serialize());

    resolver_ = std::make_unique<Resolver>(machine_, table_, true);
    resolver_->load();
  }

  LoggedSample arc_sample(hw::Address pc, hw::Address caller) {
    LoggedSample s;
    s.pc = pc;
    s.caller_pc = caller;
    s.mode = hw::CpuMode::kUser;
    s.pid = pid_;
    s.epoch = 0;
    return s;
  }

  os::Machine machine_;
  RegistrationTable table_;
  std::unique_ptr<Resolver> resolver_;
  hw::Pid pid_ = 0;
  hw::Address libc_base_ = 0, heap_base_ = 0;
};

TEST_F(CallGraphTest, AggregatesArcs) {
  CallGraph graph(*resolver_);
  for (int i = 0; i < 3; ++i)
    graph.add(arc_sample(libc_base_ + 0x10, heap_base_ + 0x120));
  graph.add(arc_sample(libc_base_ + 0x20, heap_base_ + 0x180));  // same arc
  const auto arcs = graph.ranked();
  ASSERT_EQ(arcs.size(), 1u);
  EXPECT_EQ(arcs[0].count, 4u);
  EXPECT_EQ(arcs[0].caller_symbol, "app.Hot.loop");
  EXPECT_EQ(arcs[0].callee_symbol, "memset");
}

TEST_F(CallGraphTest, SamplesWithoutCallerIgnored) {
  CallGraph graph(*resolver_);
  graph.add(arc_sample(libc_base_, 0));
  EXPECT_EQ(graph.total_samples(), 0u);
  EXPECT_EQ(graph.total_arcs(), 0u);
}

TEST_F(CallGraphTest, CrossLayerDetection) {
  CallGraph graph(*resolver_);
  // JIT -> native: crosses layers.
  graph.add(arc_sample(libc_base_ + 0x10, heap_base_ + 0x120));
  // JIT -> JIT: same layer.
  graph.add(arc_sample(heap_base_ + 0x110, heap_base_ + 0x150));
  const auto cross = graph.cross_layer_arcs();
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0].callee_image, "libc-2.3.2.so");
  EXPECT_TRUE(cross[0].crosses_layers());
  EXPECT_EQ(graph.total_arcs(), 2u);
}

TEST_F(CallGraphTest, KernelCalleeCrossesLayers) {
  CallGraph graph(*resolver_);
  LoggedSample s = arc_sample(machine_.kernel().routine("sys_read").base + 4,
                              heap_base_ + 0x120);
  s.mode = hw::CpuMode::kKernel;
  graph.add(s);
  const auto cross = graph.cross_layer_arcs();
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0].callee_symbol, "sys_read");
  EXPECT_EQ(cross[0].caller_domain, SampleDomain::kJit);
  EXPECT_EQ(cross[0].callee_domain, SampleDomain::kKernel);
}

TEST_F(CallGraphTest, RankedOrdersByCount) {
  CallGraph graph(*resolver_);
  for (int i = 0; i < 5; ++i)
    graph.add(arc_sample(libc_base_ + 0x10, heap_base_ + 0x120));
  graph.add(arc_sample(heap_base_ + 0x110, heap_base_ + 0x150));
  const auto arcs = graph.ranked();
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_GE(arcs[0].count, arcs[1].count);
}

TEST_F(CallGraphTest, RenderListsArcs) {
  CallGraph graph(*resolver_);
  graph.add(arc_sample(libc_base_ + 0x10, heap_base_ + 0x120));
  const std::string out = graph.render(10);
  EXPECT_NE(out.find("app.Hot.loop"), std::string::npos);
  EXPECT_NE(out.find("memset"), std::string::npos);
  EXPECT_NE(out.find("->"), std::string::npos);
}

}  // namespace
}  // namespace viprof::core
