// Arena / ArenaVector: the bump allocator behind zero-copy batch decode
// (DESIGN.md §14). The properties that matter to the ingest path: alignment
// of every returned pointer, stability of allocations until reset(), block
// recycling (reset() keeps storage, steady state stops growing), oversized
// requests, and ArenaVector growth preserving contents.
#include "support/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace viprof::support {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(512);
  std::vector<std::pair<char*, std::size_t>> allocs;
  for (std::size_t i = 1; i <= 64; ++i) {
    const std::size_t bytes = i * 7 % 96 + 1;
    auto* p = static_cast<char*>(arena.allocate(bytes, 8));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
    std::memset(p, static_cast<int>(i), bytes);
    allocs.emplace_back(p, bytes);
  }
  // No allocation overlaps another: every byte still holds its fill value.
  for (std::size_t i = 0; i < allocs.size(); ++i) {
    for (std::size_t b = 0; b < allocs[i].second; ++b) {
      ASSERT_EQ(static_cast<unsigned char>(allocs[i].first[b]), i + 1)
          << "allocation " << i << " byte " << b << " was clobbered";
    }
  }
}

TEST(Arena, TracksAllocatedAndReservedBytes) {
  Arena arena(1024);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  arena.allocate(100);
  arena.allocate(200);
  EXPECT_EQ(arena.bytes_allocated(), 300u);
  EXPECT_GE(arena.bytes_reserved(), 300u);
}

TEST(Arena, ResetRecyclesBlocksWithoutFreeing) {
  Arena arena(1024);
  for (int i = 0; i < 32; ++i) arena.allocate(512);
  const std::size_t reserved = arena.bytes_reserved();
  ASSERT_GT(reserved, 0u);

  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // blocks kept, not freed

  // The same workload after reset() reuses the block chain: steady-state
  // batches allocate no new storage.
  for (int i = 0; i < 32; ++i) arena.allocate(512);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(256);
  auto* small = static_cast<char*>(arena.allocate(16));
  auto* big = static_cast<char*>(arena.allocate(64 * 1024));
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xab, 64 * 1024);
  // The small allocation survives the oversized splice.
  std::memset(small, 0xcd, 16);
  EXPECT_EQ(static_cast<unsigned char>(big[0]), 0xab);
  EXPECT_GE(arena.bytes_reserved(), 64u * 1024);
}

TEST(ArenaVector, GrowthPreservesContents) {
  Arena arena(512);  // small blocks force several regrows
  ArenaVector<std::uint64_t> v(arena);
  EXPECT_TRUE(v.empty());
  for (std::uint64_t i = 0; i < 10'000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 10'000u);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_EQ(v[i], i * 3) << "element " << i << " lost across growth";
  }
  // Range iteration agrees with indexing.
  std::uint64_t n = 0;
  for (std::uint64_t x : v) {
    ASSERT_EQ(x, n * 3);
    ++n;
  }
  EXPECT_EQ(n, 10'000u);
}

TEST(ArenaVector, ReserveThenFillNeverRegrows) {
  Arena arena;
  ArenaVector<int> v(arena);
  v.reserve(1000);
  const std::size_t reserved = arena.bytes_reserved();
  int* base = v.data();
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.data(), base);  // no regrow: pointers into it stayed valid
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaVector, ClearReusesCapacity) {
  Arena arena;
  ArenaVector<int> v(arena);
  for (int i = 0; i < 100; ++i) v.push_back(i);
  int* base = v.data();
  v.clear();
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 100; ++i) v.push_back(-i);
  EXPECT_EQ(v.data(), base);
  EXPECT_EQ(v[99], -99);
}

}  // namespace
}  // namespace viprof::support
