// core::fsck_tree verdict classification and registry reporting — the
// library behind viprof_fsck and its 0/1/2 exit codes.
#include <gtest/gtest.h>

#include "core/code_map.hpp"
#include "core/fsck.hpp"
#include "core/sample_log.hpp"
#include "os/vfs.hpp"

namespace viprof::core {
namespace {

LoggedSample make_sample(hw::Address pc, std::uint64_t epoch) {
  LoggedSample s;
  s.pc = pc;
  s.caller_pc = pc + 0x10;
  s.mode = hw::CpuMode::kUser;
  s.pid = 101;
  s.epoch = epoch;
  s.cycle = 42;
  return s;
}

void write_clean_log(os::Vfs& vfs, int samples = 8) {
  SampleLogWriter writer(vfs, "samples");
  for (int i = 0; i < samples; ++i)
    writer.append(hw::EventKind::kGlobalPowerEvents, make_sample(0x1000 + i, 0));
  writer.flush();
}

void write_map(os::Vfs& vfs, std::uint64_t epoch, bool truncate_bytes) {
  CodeMapFile file;
  file.epoch = epoch;
  for (int i = 0; i < 4; ++i) {
    CodeMapEntry e;
    e.address = 0x9000'0000 + epoch * 0x1000 + i * 0x100;
    e.size = 0x80;
    e.symbol = "App.m" + std::to_string(i);
    file.entries.push_back(e);
  }
  std::string blob = file.serialize();
  if (truncate_bytes) blob.resize(blob.size() / 2);  // lose trailer + tail entries
  vfs.write(CodeMapFile::path_for("jit_maps", 101, epoch), blob);
}

TEST(Fsck, CleanTreeVerdict) {
  os::Vfs vfs;
  write_clean_log(vfs);
  write_map(vfs, 0, false);
  support::Telemetry tele;
  const FsckReport report = fsck_tree(vfs, nullptr, tele);

  EXPECT_EQ(report.verdict, FsckVerdict::kClean);
  EXPECT_FALSE(report.corrupt);
  EXPECT_EQ(report.valid_records, 8u);
  EXPECT_EQ(report.maps_intact, 1u);
  EXPECT_EQ(static_cast<int>(report.verdict), kFsckExitClean);
  // Findings flow through the registry.
  EXPECT_EQ(report.metrics.counter("fsck.samples.valid"), 8u);
  EXPECT_EQ(report.metrics.counter("fsck.maps.intact"), 1u);
  EXPECT_DOUBLE_EQ(report.metrics.gauge("fsck.verdict"), 0.0);
}

TEST(Fsck, TruncatedMapWithSalvageableEntriesIsSalvaged) {
  os::Vfs vfs;
  write_clean_log(vfs);
  write_map(vfs, 0, false);
  write_map(vfs, 1, true);  // damaged, but a prefix of entries survives
  support::Telemetry tele;
  const FsckReport report = fsck_tree(vfs, nullptr, tele);

  EXPECT_EQ(report.verdict, FsckVerdict::kSalvaged);
  EXPECT_TRUE(report.corrupt);
  EXPECT_EQ(report.maps_intact, 1u);
  EXPECT_EQ(report.maps_truncated, 1u);
  EXPECT_GT(report.map_entries_salvaged, 0u);
  EXPECT_EQ(report.dead_maps, 0u);
  EXPECT_EQ(static_cast<int>(report.verdict), kFsckExitSalvaged);
  EXPECT_EQ(report.metrics.counter("fsck.maps.truncated"), 1u);
  EXPECT_DOUBLE_EQ(report.metrics.gauge("fsck.verdict"), 1.0);
}

TEST(Fsck, LogWithNothingVerifiableIsUnrecoverable) {
  os::Vfs vfs;
  // A sample log that exists but contains only garbage: no record survives.
  vfs.write(SampleLogWriter::path_for("samples", hw::EventKind::kGlobalPowerEvents),
            "!!!! not a sample log\ngarbage line two\n");
  support::Telemetry tele;
  const FsckReport report = fsck_tree(vfs, nullptr, tele);

  EXPECT_EQ(report.verdict, FsckVerdict::kUnrecoverable);
  EXPECT_EQ(report.valid_records, 0u);
  EXPECT_EQ(report.dead_logs, 1u);
  EXPECT_EQ(static_cast<int>(report.verdict), kFsckExitUnrecoverable);
  EXPECT_EQ(report.metrics.counter("fsck.logs.unrecoverable"), 1u);
  EXPECT_DOUBLE_EQ(report.metrics.gauge("fsck.verdict"), 2.0);
}

TEST(Fsck, CorruptLogWithSurvivorsIsSalvagedAndRecoveryRewrites) {
  os::Vfs vfs;
  write_clean_log(vfs, 6);
  // Damage the middle of the log: some records survive on either side.
  const std::string path =
      SampleLogWriter::path_for("samples", hw::EventKind::kGlobalPowerEvents);
  std::string contents = *vfs.read(path);
  const auto mid = contents.find('\n', contents.size() / 2);
  ASSERT_NE(mid, std::string::npos);
  contents[mid + 3] = '#';
  contents[mid + 4] = '#';
  vfs.write(path, contents);

  support::Telemetry tele;
  os::Vfs out;
  FsckOptions opts;
  opts.write_recovery = true;
  const FsckReport report = fsck_tree(vfs, &out, tele, opts);

  EXPECT_EQ(report.verdict, FsckVerdict::kSalvaged);
  EXPECT_GT(report.valid_records, 0u);
  EXPECT_LT(report.valid_records, 6u);

  // The rewritten tree is clean: a second fsck over it reports no damage
  // beyond the already-counted sequence gap.
  support::Telemetry tele2;
  const FsckReport again = fsck_tree(out, nullptr, tele2);
  EXPECT_FALSE(again.corrupt);
  EXPECT_EQ(again.valid_records, report.valid_records);
}

TEST(Fsck, DetailsAndSummaryMentionFindings) {
  os::Vfs vfs;
  write_clean_log(vfs);
  write_map(vfs, 0, true);
  support::Telemetry tele;
  const FsckReport report = fsck_tree(vfs, nullptr, tele);
  EXPECT_NE(report.details.find("CORRUPT"), std::string::npos);
  EXPECT_NE(report.summary.find("salvaged"), std::string::npos);
}

}  // namespace
}  // namespace viprof::core
