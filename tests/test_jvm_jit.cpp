#include <gtest/gtest.h>

#include "jvm/jit.hpp"

namespace viprof::jvm {
namespace {

MethodInfo method_of(std::uint64_t bytecode) {
  MethodInfo m;
  m.id = 0;
  m.klass = "Test";
  m.name = "m";
  m.bytecode_size = bytecode;
  return m;
}

HeapConfig heap_config() {
  HeapConfig c;
  c.heap_bytes = 8ull << 20;
  c.code_semi_bytes = 1ull << 20;
  c.mature_code_bytes = 2ull << 20;
  return c;
}

TEST(Jit, CodeSizeGrowsWithTier) {
  Heap heap(0x1000'0000, heap_config());
  JitCompiler jit(heap);
  const MethodInfo m = method_of(500);
  std::uint64_t prev = 0;
  for (auto level : {OptLevel::kBaseline, OptLevel::kOpt0, OptLevel::kOpt1, OptLevel::kOpt2}) {
    const std::uint64_t size = jit.code_size_for(m, level);
    EXPECT_GT(size, prev);
    prev = size;
  }
}

TEST(Jit, CompileCostGrowsWithTier) {
  Heap heap(0x1000'0000, heap_config());
  JitCompiler jit(heap);
  const MethodInfo m = method_of(500);
  hw::Cycles prev = 0;
  for (auto level : {OptLevel::kBaseline, OptLevel::kOpt0, OptLevel::kOpt1, OptLevel::kOpt2}) {
    const hw::Cycles cost = jit.compile_cost_for(m, level);
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

TEST(Jit, CpiImprovesWithTier) {
  Heap heap(0x1000'0000, heap_config());
  JitCompiler jit(heap);
  EXPECT_EQ(jit.cpi_scale(OptLevel::kBaseline), 1.0);
  EXPECT_LT(jit.cpi_scale(OptLevel::kOpt0), 1.0);
  EXPECT_LT(jit.cpi_scale(OptLevel::kOpt1), jit.cpi_scale(OptLevel::kOpt0));
  EXPECT_LT(jit.cpi_scale(OptLevel::kOpt2), jit.cpi_scale(OptLevel::kOpt1));
}

TEST(Jit, MinimumSizeAndCostFloors) {
  Heap heap(0x1000'0000, heap_config());
  JitCompiler jit(heap);
  const MethodInfo tiny = method_of(1);
  EXPECT_GE(jit.code_size_for(tiny, OptLevel::kBaseline), 64u);
  EXPECT_GE(jit.compile_cost_for(tiny, OptLevel::kBaseline), 1'000u);
}

TEST(Jit, CompileAllocatesBodyInHeap) {
  Heap heap(0x1000'0000, heap_config());
  JitCompiler jit(heap);
  const MethodInfo m = method_of(300);
  const CompileOutcome out = jit.compile(m, OptLevel::kBaseline);
  ASSERT_NE(out.code, kInvalidCode);
  EXPECT_TRUE(heap.contains(heap.code(out.code).address));
  EXPECT_GT(out.cost, 0u);
  EXPECT_EQ(jit.compiles_at(OptLevel::kBaseline), 1u);
}

TEST(Jit, RecompileKillsOldBody) {
  Heap heap(0x1000'0000, heap_config());
  JitCompiler jit(heap);
  const MethodInfo m = method_of(300);
  const CompileOutcome base = jit.compile(m, OptLevel::kBaseline);
  const CompileOutcome opt = jit.compile(m, OptLevel::kOpt1, base.code);
  EXPECT_TRUE(heap.code(base.code).dead);
  EXPECT_FALSE(heap.code(opt.code).dead);
  EXPECT_EQ(heap.code(opt.code).level, OptLevel::kOpt1);
  EXPECT_NE(heap.code(opt.code).address, heap.code(base.code).address);
}

TEST(RecompilePolicy, ThresholdsSelectLevels) {
  RecompilePolicy policy;  // 300K / 3M / 20M
  EXPECT_EQ(policy.target_level(0), OptLevel::kBaseline);
  EXPECT_EQ(policy.target_level(299'999), OptLevel::kBaseline);
  EXPECT_EQ(policy.target_level(300'000), OptLevel::kOpt0);
  EXPECT_EQ(policy.target_level(2'999'999), OptLevel::kOpt0);
  EXPECT_EQ(policy.target_level(3'000'000), OptLevel::kOpt1);
  EXPECT_EQ(policy.target_level(20'000'000), OptLevel::kOpt2);
  EXPECT_EQ(policy.target_level(~0ull), OptLevel::kOpt2);
}

TEST(RecompilePolicy, CustomThresholds) {
  RecompilePolicy policy{10, 20, 30};
  EXPECT_EQ(policy.target_level(9), OptLevel::kBaseline);
  EXPECT_EQ(policy.target_level(15), OptLevel::kOpt0);
  EXPECT_EQ(policy.target_level(25), OptLevel::kOpt1);
  EXPECT_EQ(policy.target_level(35), OptLevel::kOpt2);
}

}  // namespace
}  // namespace viprof::jvm
