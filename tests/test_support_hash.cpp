// Pins the hash primitives in support/hash.hpp to their canonical constants
// and reference digests. Every framed on-disk format (sample logs, code
// maps, object maps, store segments, manifests) and the fleet ring / trace
// minting key on these functions: if any constant drifts, previously
// written files stop verifying and byte-identity anchors break silently.
// This test makes that drift loud.
#include "support/hash.hpp"

#include <gtest/gtest.h>

#include "fleet/ring.hpp"
#include "support/traced_mutex.hpp"

namespace viprof {
namespace {

TEST(SupportHash, Fnv1a32PinnedVectors) {
  // Offset basis: hash of the empty string IS the basis constant.
  EXPECT_EQ(support::fnv1a(""), 0x811c9dc5u);
  // Canonical published FNV-1a test vectors.
  EXPECT_EQ(support::fnv1a("a"), 0xe40c292cu);
  EXPECT_EQ(support::fnv1a("foobar"), 0xbf9cf968u);
  // One multiplier step from the basis: (basis ^ 'a') * prime.
  EXPECT_EQ(support::fnv1a("a"), (0x811c9dc5u ^ 'a') * 0x01000193u);
}

TEST(SupportHash, Fnv1a32BinarySafe) {
  const char raw[] = {'\0', '\x01', '\xff', '\0'};
  const std::uint32_t h = support::fnv1a(raw, sizeof(raw));
  std::uint32_t want = 0x811c9dc5u;
  for (const char c : raw) {
    want ^= static_cast<unsigned char>(c);
    want *= 0x01000193u;
  }
  EXPECT_EQ(h, want);
}

TEST(SupportHash, Fnv1a64PinnedVectors) {
  EXPECT_EQ(support::fnv1a64(""), 14695981039346656037ull);  // 0xcbf29ce484222325
  EXPECT_EQ(support::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(support::fnv1a64("foobar"), 0x85944171f73967e8ull);
  EXPECT_EQ(support::fnv1a64("a"),
            (14695981039346656037ull ^ 'a') * 1099511628211ull);
}

TEST(SupportHash, Fmix64PinnedConstants) {
  // fmix64(0) must be 0 (all-xor/multiply of zero), and one known vector
  // pins the two multiplier constants.
  EXPECT_EQ(support::fmix64(0), 0ull);
  std::uint64_t h = 1;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  EXPECT_EQ(support::fmix64(1), h);
  EXPECT_EQ(support::fmix64(1), 0xb456bcfc34c2cb2cull);
}

// The migrated call sites must keep their historical outputs bit-for-bit:
// ring vnode placement decides shard ownership (fleet manifest compat) and
// trace ids are stamped into exported Chrome traces.
TEST(SupportHash, RingHashIsFmixOfFnv) {
  const std::string key = "shard-2#7";
  EXPECT_EQ(fleet::fnv1a64(key), support::fmix64(support::fnv1a64(key)));
  EXPECT_NE(fleet::fnv1a64("shard-2#7"), fleet::fnv1a64("shard-2#8"));
}

TEST(SupportHash, TraceMintIsRawFnv64WithZeroGuard) {
  const auto ctx = support::TraceContext::mint("sess-41");
  EXPECT_EQ(ctx.trace_id, support::fnv1a64("sess-41"));
  EXPECT_NE(ctx.trace_id, 0ull);
  // mint never returns 0 even if the raw hash were 0.
  EXPECT_TRUE(ctx.valid());
}

}  // namespace
}  // namespace viprof
