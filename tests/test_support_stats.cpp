#include <gtest/gtest.h>

#include "support/stats.hpp"

namespace viprof::support {
namespace {

TEST(Mean, Basic) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stddev, Basic) {
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 0.001);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

// The paper's methodology: 10 runs, drop fastest and slowest, average 8.
TEST(TrimmedMean, PaperMethodology) {
  std::vector<double> runs = {10.0, 11.0, 10.5, 10.2, 10.8,
                              10.1, 10.9, 10.3, 50.0, 1.0};
  // Drops 1.0 and 50.0; averages the remaining 8.
  const double expected =
      (10.0 + 11.0 + 10.5 + 10.2 + 10.8 + 10.1 + 10.9 + 10.3) / 8.0;
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes(runs), expected);
}

TEST(TrimmedMean, OutliersDoNotShiftResult) {
  std::vector<double> clean = {10.0, 10.0, 10.0, 10.0, 10.0};
  std::vector<double> noisy = {10.0, 10.0, 10.0, 0.001, 9999.0};
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes(clean), 10.0);
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes(noisy), 10.0);
}

TEST(TrimmedMean, SmallSamplesFallBackToMean) {
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({}), 0.0);
}

TEST(TrimmedMean, ExactlyThreeKeepsMiddle) {
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_extremes({1.0, 100.0, 7.0}), 7.0);
}

TEST(Geomean, Basic) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Geomean, SlowdownRatios) {
  // Geomean of slowdowns is scale-invariant: 1.05 and 1/1.05 cancel.
  EXPECT_NEAR(geomean({1.05, 1.0 / 1.05}), 1.0, 1e-12);
}

}  // namespace
}  // namespace viprof::support
