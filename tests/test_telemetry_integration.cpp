// End-to-end checks of the self-telemetry subsystem (DESIGN.md §8): a full
// session populates every layer's metrics, the exported snapshot and Chrome
// trace are well-formed, the overhead gauge agrees with an externally
// measured base-vs-viprof comparison, and injected faults are counted
// exactly once in the fault.* namespace.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/viprof.hpp"
#include "support/telemetry.hpp"
#include "workloads/generator.hpp"

namespace viprof {
namespace {

struct SessionRun {
  std::unique_ptr<os::Machine> machine;
  std::unique_ptr<jvm::Vm> vm;
  std::unique_ptr<core::ProfilingSession> session;
  core::SessionResult result;
};

SessionRun run_session(core::ProfilingMode mode, std::uint64_t period,
                       std::uint64_t machine_seed = 0x7e1e,
                       support::FaultInjector* fault = nullptr) {
  SessionRun run;
  os::MachineConfig mcfg;
  mcfg.seed = machine_seed;
  run.machine = std::make_unique<os::Machine>(mcfg);

  workloads::GeneratorOptions opt;
  opt.name = "tele";
  opt.seed = 5;
  opt.methods = 24;
  opt.total_app_ops = 4'000'000;
  opt.alloc_intensity = 0.6;
  opt.nursery_bytes = 512 * 1024;
  opt.native_frac = 0.08;
  opt.syscall_frac = 0.04;
  const workloads::Workload w = workloads::make_synthetic(opt);

  run.vm = std::make_unique<jvm::Vm>(*run.machine, w.vm);
  core::SessionConfig config;
  config.mode = mode;
  config.fault = fault;
  if (period > 0) {
    config.counters = {{hw::EventKind::kGlobalPowerEvents, period, true},
                       {hw::EventKind::kBsqCacheReference, period / 64, true}};
  }
  run.session = std::make_unique<core::ProfilingSession>(*run.machine, *run.vm, config);
  run.session->attach();
  run.vm->setup(w.program);
  run.result = run.session->run();
  return run;
}

TEST(TelemetryIntegration, EveryLayerReportsNonZeroMetrics) {
  SessionRun run = run_session(core::ProfilingMode::kViprof, 45'000);
  // Resolution populates the resolver.* counters.
  run.session->build_profile({hw::EventKind::kGlobalPowerEvents});
  const support::TelemetrySnapshot snap = run.machine->telemetry().snapshot();

  // Kernel/NMI layer: every NMI either delivered a sample or dropped one.
  EXPECT_EQ(snap.counter("os.nmi.delivered") + snap.counter("os.nmi.dropped"),
            run.result.nmi_count);
  EXPECT_GT(snap.gauge("core.buffer.peak_occupancy"), 0.0);
  // Daemon layer. daemon.drained counts in-run drains only (the end-of-run
  // final_flush is outside measured time), so it is bounded by the total.
  EXPECT_GT(snap.counter("daemon.wakeups"), 0u);
  EXPECT_GT(snap.counter("daemon.flushes"), 0u);
  EXPECT_GT(snap.counter("daemon.samples.jit"), 0u);
  EXPECT_GT(snap.counter("daemon.drained"), 0u);
  EXPECT_LE(snap.counter("daemon.drained"), run.result.daemon.drained);
  // Agent layer.
  EXPECT_EQ(snap.counter("agent.maps_written"), run.result.agent.maps_written);
  EXPECT_GT(snap.counter("agent.maps_written"), 0u);
  EXPECT_GT(snap.counter("agent.compiles_logged"), 0u);
  // Resolver layer.
  EXPECT_GT(snap.counter("resolver.jit.resolved"), 0u);
  ASSERT_EQ(snap.histograms.count("resolver.walkback.depth"), 1u);
  EXPECT_GT(snap.histograms.at("resolver.walkback.depth").count, 0u);
  // VFS layer.
  EXPECT_GT(snap.counter("vfs.writes"), 0u);
  // Overhead accounting.
  EXPECT_GT(snap.gauge("profiler.cycles.nmi"), 0.0);
  EXPECT_GT(snap.gauge("profiler.cycles.daemon"), 0.0);
  EXPECT_GT(snap.gauge("profiler.cycles.agent"), 0.0);
  EXPECT_GT(snap.gauge("profiler.overhead_pct"), 0.0);
}

TEST(TelemetryIntegration, SpansCoverDrainGcAndMapWrites) {
  SessionRun run = run_session(core::ProfilingMode::kViprof, 45'000);
  const auto spans = run.machine->telemetry().spans().spans();
  ASSERT_FALSE(spans.empty());
  bool saw_drain = false, saw_gc = false, saw_map = false;
  for (const support::Span& s : spans) {
    const std::string name = s.name;
    if (name == "daemon.drain") saw_drain = true;
    if (name == "jvm.gc") {
      saw_gc = true;
      EXPECT_NE(s.arg, support::SpanTracer::kNoArg);  // carries the epoch
    }
    if (name == "agent.map_write") saw_map = true;
    EXPECT_GE(s.end_cycle, s.begin_cycle);
  }
  EXPECT_TRUE(saw_drain);
  EXPECT_TRUE(saw_gc);
  EXPECT_TRUE(saw_map);
}

TEST(TelemetryIntegration, ExportedSnapshotAndTraceAreWellFormed) {
  SessionRun run = run_session(core::ProfilingMode::kViprof, 45'000);
  run.session->export_archive();
  const os::Vfs& vfs = run.machine->vfs();

  const auto metrics = vfs.read("archive/telemetry/metrics.json");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_TRUE(support::json_well_formed(*metrics));
  const auto loaded = support::TelemetrySnapshot::from_json(*metrics);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_GT(loaded->counter("daemon.flushes"), 0u);
  EXPECT_GT(loaded->counter("agent.maps_written"), 0u);
  EXPECT_GT(loaded->gauge("profiler.overhead_pct"), 0.0);

  const auto trace = vfs.read("archive/telemetry/trace.json");
  ASSERT_TRUE(trace.has_value());
  EXPECT_TRUE(support::json_well_formed(*trace));
  EXPECT_NE(trace->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace->find("jvm.gc"), std::string::npos);

  EXPECT_TRUE(vfs.read("archive/telemetry/metrics.txt").has_value());
}

TEST(TelemetryIntegration, OverheadGaugeMatchesExternalMeasurement) {
  // The acceptance check for the overhead accounting: the gauge computed
  // from internal cycle attribution must agree (±1 pp) with the Fig. 2
  // methodology — the same workload run with and without the profiler.
  SessionRun base = run_session(core::ProfilingMode::kBase, 0, 0x0dda);
  SessionRun viprof = run_session(core::ProfilingMode::kViprof, 90'000, 0x0dda);

  const double external =
      100.0 *
      (static_cast<double>(viprof.result.cycles) - static_cast<double>(base.result.cycles)) /
      static_cast<double>(base.result.cycles);
  const double internal =
      viprof.machine->telemetry().snapshot().gauge("profiler.overhead_pct");
  EXPECT_GT(internal, 0.0);
  EXPECT_NEAR(internal, external, 1.0);
}

TEST(TelemetryIntegration, TracingOverheadStaysWithinOnePoint) {
  // Acceptance gate for DESIGN.md §13: with span tracing enabled,
  // profiler.overhead_pct must stay within 1 pp of the same run untraced.
  // Both runs use the same machine seed and sampling period; only the span
  // kill-switch differs, so any drift is tracing cost leaking into the
  // profiler's own cycle attribution.
  SessionRun traced = run_session(core::ProfilingMode::kViprof, 90'000, 0x13c);

  os::MachineConfig mcfg;
  mcfg.seed = 0x13c;
  auto machine = std::make_unique<os::Machine>(mcfg);
  machine->telemetry().spans().set_enabled(false);  // untraced twin
  workloads::GeneratorOptions opt;
  opt.name = "tele";
  opt.seed = 5;
  opt.methods = 24;
  opt.total_app_ops = 4'000'000;
  opt.alloc_intensity = 0.6;
  opt.nursery_bytes = 512 * 1024;
  opt.native_frac = 0.08;
  opt.syscall_frac = 0.04;
  const workloads::Workload w = workloads::make_synthetic(opt);
  auto vm = std::make_unique<jvm::Vm>(*machine, w.vm);
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.counters = {{hw::EventKind::kGlobalPowerEvents, 90'000, true},
                     {hw::EventKind::kBsqCacheReference, 90'000 / 64, true}};
  core::ProfilingSession session(*machine, *vm, config);
  session.attach();
  vm->setup(w.program);
  (void)session.run();

  const double traced_pct =
      traced.machine->telemetry().snapshot().gauge("profiler.overhead_pct");
  const double untraced_pct =
      machine->telemetry().snapshot().gauge("profiler.overhead_pct");
  EXPECT_GT(traced_pct, 0.0);
  EXPECT_GT(untraced_pct, 0.0);
  EXPECT_EQ(machine->telemetry().spans().recorded(), 0u);
  EXPECT_NEAR(traced_pct, untraced_pct, 1.0);
}

TEST(TelemetryIntegration, InjectedFaultsCountedExactlyOnce) {
  support::FaultInjector fault(0xfa17);
  support::FaultRule rule;
  rule.path_prefix = "samples/";
  rule.kind = support::FaultKind::kWriteError;
  rule.skip = 2;
  rule.count = 5;
  fault.add_rule(rule);

  SessionRun run = run_session(core::ProfilingMode::kViprof, 45'000, 0xfa, &fault);
  const support::TelemetrySnapshot snap = run.machine->telemetry().snapshot();

  // The injector is the only writer of fault.*: the registry view equals
  // the injector's own stats exactly — nothing double-counts through the
  // VFS or the retrying components.
  EXPECT_EQ(snap.counter("fault.write_errors"), fault.stats().write_errors);
  EXPECT_EQ(snap.counter("fault.writes_seen"), fault.stats().writes_seen);
  EXPECT_EQ(snap.counter("fault.torn_writes"), fault.stats().torn_writes);
  EXPECT_EQ(fault.stats().write_errors, 5u);
  // The daemon observed the same faults from its side (retries), but in its
  // own namespace; vfs.writes counts attempts, not faults.
  EXPECT_GT(snap.counter("daemon.flush.write_errors") +
                snap.counter("daemon.flush.retries"),
            0u);
}

TEST(TelemetryIntegration, SnapshotDiffTracksSecondRunOnSameMachine) {
  SessionRun run = run_session(core::ProfilingMode::kViprof, 90'000);
  const support::TelemetrySnapshot before = run.machine->telemetry().snapshot();
  const support::TelemetrySnapshot after_same = run.machine->telemetry().snapshot();
  EXPECT_EQ(support::TelemetrySnapshot::render_diff(before, after_same),
            "(no differences)\n");
  run.machine->telemetry().counter("daemon.drained").inc(1);
  const support::TelemetrySnapshot after = run.machine->telemetry().snapshot();
  const std::string diff = support::TelemetrySnapshot::render_diff(before, after);
  EXPECT_NE(diff.find("daemon.drained"), std::string::npos);
  EXPECT_NE(diff.find("+1"), std::string::npos);
}

}  // namespace
}  // namespace viprof
