#include <gtest/gtest.h>

#include "os/symbol_table.hpp"

namespace viprof::os {
namespace {

TEST(SymbolTable, FindInsideSymbol) {
  SymbolTable t;
  t.add("foo", 0x100, 0x50);
  t.add("bar", 0x200, 0x10);
  const auto hit = t.find(0x120);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "foo");
}

TEST(SymbolTable, BoundariesAreHalfOpen) {
  SymbolTable t;
  t.add("foo", 0x100, 0x50);
  EXPECT_TRUE(t.find(0x100).has_value());   // first byte
  EXPECT_TRUE(t.find(0x14f).has_value());   // last byte
  EXPECT_FALSE(t.find(0x150).has_value());  // one past the end
  EXPECT_FALSE(t.find(0xff).has_value());   // one before
}

TEST(SymbolTable, GapsReturnNothing) {
  SymbolTable t;
  t.add("a", 0x0, 0x10);
  t.add("b", 0x100, 0x10);
  EXPECT_FALSE(t.find(0x50).has_value());
}

TEST(SymbolTable, UnorderedInsertIsSorted) {
  SymbolTable t;
  t.add("late", 0x900, 0x10);
  t.add("early", 0x100, 0x10);
  t.add("middle", 0x500, 0x10);
  EXPECT_EQ(t.find(0x905)->name, "late");
  EXPECT_EQ(t.find(0x105)->name, "early");
  EXPECT_EQ(t.find(0x505)->name, "middle");
  const auto& ordered = t.ordered();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered[0].name, "early");
  EXPECT_EQ(ordered[2].name, "late");
}

TEST(SymbolTable, EmptyTable) {
  SymbolTable t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.find(0).has_value());
}

TEST(SymbolTable, AdjacentSymbolsResolveCorrectly) {
  SymbolTable t;
  t.add("a", 0x0, 0x100);
  t.add("b", 0x100, 0x100);
  EXPECT_EQ(t.find(0xff)->name, "a");
  EXPECT_EQ(t.find(0x100)->name, "b");
}

TEST(SymbolTableDeathTest, OverlappingSymbolsAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SymbolTable t;
  t.add("a", 0x0, 0x100);
  t.add("b", 0x80, 0x100);  // overlaps a
  EXPECT_DEATH((void)t.find(0x10), "VIPROF_CHECK");
}

}  // namespace
}  // namespace viprof::os
