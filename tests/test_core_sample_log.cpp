#include <gtest/gtest.h>

#include "core/sample_log.hpp"
#include "support/fault.hpp"

namespace viprof::core {
namespace {

LoggedSample make_sample(hw::Address pc, std::uint64_t epoch) {
  LoggedSample s;
  s.pc = pc;
  s.caller_pc = pc + 0x10;
  s.mode = hw::CpuMode::kUser;
  s.pid = 101;
  s.epoch = epoch;
  s.cycle = 777;
  return s;
}

TEST(SampleLog, RoundTrip) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "samples");
  writer.append(hw::EventKind::kGlobalPowerEvents, make_sample(0x1234, 2));
  writer.append(hw::EventKind::kGlobalPowerEvents, make_sample(0xc0001000, 3));
  writer.flush();

  const auto read =
      SampleLogReader::read(vfs, "samples", hw::EventKind::kGlobalPowerEvents);
  ASSERT_EQ(read.size(), 2u);
  EXPECT_EQ(read[0].pc, 0x1234u);
  EXPECT_EQ(read[0].caller_pc, 0x1244u);
  EXPECT_EQ(read[0].pid, 101u);
  EXPECT_EQ(read[0].epoch, 2u);
  EXPECT_EQ(read[0].cycle, 777u);
  EXPECT_EQ(read[1].pc, 0xc0001000u);
  EXPECT_EQ(read[1].epoch, 3u);
}

TEST(SampleLog, KernelModePreserved) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "s");
  LoggedSample s = make_sample(0xc000'0000, 0);
  s.mode = hw::CpuMode::kKernel;
  writer.append(hw::EventKind::kBsqCacheReference, s);
  writer.flush();
  const auto read = SampleLogReader::read(vfs, "s", hw::EventKind::kBsqCacheReference);
  ASSERT_EQ(read.size(), 1u);
  EXPECT_EQ(read[0].mode, hw::CpuMode::kKernel);
}

TEST(SampleLog, EventsGoToSeparateFiles) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "s");
  writer.append(hw::EventKind::kGlobalPowerEvents, make_sample(1, 0));
  writer.append(hw::EventKind::kBsqCacheReference, make_sample(2, 0));
  writer.flush();
  EXPECT_EQ(SampleLogReader::read(vfs, "s", hw::EventKind::kGlobalPowerEvents).size(), 1u);
  EXPECT_EQ(SampleLogReader::read(vfs, "s", hw::EventKind::kBsqCacheReference).size(), 1u);
  EXPECT_TRUE(SampleLogReader::read(vfs, "s", hw::EventKind::kItlbMiss).empty());
}

TEST(SampleLog, NothingWrittenBeforeFlush) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "s");
  writer.append(hw::EventKind::kGlobalPowerEvents, make_sample(1, 0));
  EXPECT_TRUE(SampleLogReader::read(vfs, "s", hw::EventKind::kGlobalPowerEvents).empty());
  writer.flush();
  EXPECT_EQ(SampleLogReader::read(vfs, "s", hw::EventKind::kGlobalPowerEvents).size(), 1u);
}

TEST(SampleLog, FlushAppendsAcrossBatches) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "s");
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i)
      writer.append(hw::EventKind::kGlobalPowerEvents, make_sample(i, 0));
    writer.flush();
  }
  EXPECT_EQ(SampleLogReader::read(vfs, "s", hw::EventKind::kGlobalPowerEvents).size(), 30u);
  EXPECT_EQ(writer.written(hw::EventKind::kGlobalPowerEvents), 30u);
}

TEST(SampleLog, MissingDirectoryReadsEmpty) {
  os::Vfs vfs;
  EXPECT_TRUE(SampleLogReader::read(vfs, "absent", hw::EventKind::kGlobalPowerEvents).empty());
}

// --- read_checked: missing vs empty vs corrupt are distinct outcomes ------

constexpr auto kEv = hw::EventKind::kGlobalPowerEvents;

TEST(SampleLog, StatusDistinguishesMissingFromEmpty) {
  os::Vfs vfs;
  SampleLogReadStatus st;
  SampleLogReader::read_checked(vfs, "s", kEv, st);
  EXPECT_TRUE(st.missing);
  EXPECT_FALSE(st.empty());

  vfs.write(SampleLogWriter::path_for("s", kEv), "");
  SampleLogReader::read_checked(vfs, "s", kEv, st);
  EXPECT_FALSE(st.missing);
  EXPECT_FALSE(st.corrupt);
  EXPECT_TRUE(st.empty());
  EXPECT_TRUE(st.clean());
}

TEST(SampleLog, StatusFlagsGarbageAsCorruptNotEmpty) {
  os::Vfs vfs;
  vfs.write(SampleLogWriter::path_for("s", kEv), "this is not a sample log\n");
  SampleLogReadStatus st;
  const auto read = SampleLogReader::read_checked(vfs, "s", kEv, st);
  EXPECT_TRUE(read.empty());
  EXPECT_TRUE(st.corrupt);
  EXPECT_FALSE(st.empty());
  EXPECT_EQ(st.discarded_lines, 1u);
  EXPECT_EQ(st.valid, 0u);
}

TEST(SampleLog, TruncatedTailIsSalvagedAndCounted) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "s");
  for (int i = 0; i < 10; ++i) writer.append(kEv, make_sample(0x1000 + i, 1));
  writer.flush();
  const std::string path = SampleLogWriter::path_for("s", kEv);
  std::string contents = *vfs.read(path);
  contents.resize(contents.size() - 15);  // tear mid-way through the last line
  vfs.remove(path);
  vfs.write(path, contents);

  SampleLogReadStatus st;
  const auto read = SampleLogReader::read_checked(vfs, "s", kEv, st);
  EXPECT_EQ(read.size(), 9u);
  EXPECT_TRUE(st.corrupt);
  EXPECT_EQ(st.salvaged, 9u);
  EXPECT_EQ(st.discarded_lines, 1u);
  EXPECT_GT(st.discarded_bytes, 0u);
  for (std::size_t i = 0; i < read.size(); ++i) EXPECT_EQ(read[i].pc, 0x1000 + i);
}

TEST(SampleLog, MidFileDamageResynchronisesAtNextRecord) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "s");
  for (int i = 0; i < 6; ++i) writer.append(kEv, make_sample(0x2000 + i, 1));
  writer.flush();
  const std::string path = SampleLogWriter::path_for("s", kEv);
  std::string contents = *vfs.read(path);
  // Overwrite a byte in the middle of record 2's body: its checksum fails,
  // but records on either side must still verify independently.
  const std::size_t second_line = contents.find('\n', contents.find('\n') + 1) + 1;
  contents[second_line + 3] = '#';
  vfs.remove(path);
  vfs.write(path, contents);

  SampleLogReadStatus st;
  const auto read = SampleLogReader::read_checked(vfs, "s", kEv, st);
  EXPECT_EQ(read.size(), 5u);
  EXPECT_TRUE(st.corrupt);
  EXPECT_EQ(st.discarded_lines, 1u);
  EXPECT_EQ(st.missing_records, 1u);  // the damaged record shows as a seq gap
  for (const LoggedSample& s : read) EXPECT_NE(s.pc, 0x2002u);
}

TEST(SampleLog, DuplicateSequenceNumbersAreDropped) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "s");
  for (int i = 0; i < 3; ++i) writer.append(kEv, make_sample(0x3000 + i, 1));
  writer.flush();
  const std::string path = SampleLogWriter::path_for("s", kEv);
  // A replayed batch that had already landed: append the same bytes again.
  const std::string contents = *vfs.read(path);
  vfs.append(path, contents);

  SampleLogReadStatus st;
  const auto read = SampleLogReader::read_checked(vfs, "s", kEv, st);
  EXPECT_EQ(read.size(), 3u);  // each record delivered exactly once
  EXPECT_EQ(st.duplicate_records, 3u);
  EXPECT_FALSE(st.corrupt);  // duplicates are well-framed, not damage
}

TEST(SampleLog, WriteErrorSpillsAndRetrySucceeds) {
  os::Vfs vfs;
  support::FaultInjector fi;
  fi.add_rule({"s/", support::FaultKind::kWriteError, 0, 1, 1.0, 0.5});
  vfs.set_fault_injector(&fi);

  SampleLogWriter writer(vfs, "s");
  for (int i = 0; i < 4; ++i) writer.append(kEv, make_sample(0x4000 + i, 1));
  LogFlushResult first = writer.flush();
  EXPECT_EQ(first.write_errors, 1u);
  EXPECT_FALSE(first.fully_flushed);
  EXPECT_GT(writer.pending_bytes(), 0u);

  LogFlushResult second = writer.flush();  // rule exhausted: this one lands
  EXPECT_TRUE(second.fully_flushed);
  EXPECT_EQ(writer.pending_bytes(), 0u);

  SampleLogReadStatus st;
  const auto read = SampleLogReader::read_checked(vfs, "s", kEv, st);
  EXPECT_EQ(read.size(), 4u);
  EXPECT_TRUE(st.clean());
  EXPECT_EQ(st.missing_records, 0u);
}

TEST(SampleLog, SpillOverflowDropsOldestWholeRecords) {
  os::Vfs vfs;
  support::FaultInjector fi;
  fi.add_rule({"s/", support::FaultKind::kWriteError, 0, ~0ull, 1.0, 0.5});
  vfs.set_fault_injector(&fi);

  SampleLogWriter writer(vfs, "s");
  writer.set_spill_capacity(120);  // roughly two records
  for (int i = 0; i < 6; ++i) writer.append(kEv, make_sample(0x5000 + i, 1));
  const LogFlushResult r = writer.flush();
  EXPECT_GT(r.records_dropped, 0u);
  EXPECT_EQ(r.records_dropped, writer.spill_dropped());
  EXPECT_LE(writer.pending_bytes(), 120u + 64u);  // bounded (one record slack)

  // When the disk heals, the survivors land; the reader sees the drops as a
  // leading sequence gap — counted, not silent.
  vfs.set_fault_injector(nullptr);
  writer.flush();
  SampleLogReadStatus st;
  const auto read = SampleLogReader::read_checked(vfs, "s", kEv, st);
  EXPECT_EQ(read.size() + r.records_dropped, 6u);
  EXPECT_EQ(st.missing_records, r.records_dropped);
}

TEST(SampleLog, DiscardPendingCountsAndConsumesSequence) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "s");
  writer.append(kEv, make_sample(1, 0));
  writer.append(kEv, make_sample(2, 0));
  EXPECT_EQ(writer.discard_pending(), 2u);
  EXPECT_EQ(writer.pending_bytes(), 0u);
  // Sequence numbers stay consumed: post-crash records reveal the loss.
  writer.append(kEv, make_sample(3, 0));
  writer.flush();
  SampleLogReadStatus st;
  SampleLogReader::read_checked(vfs, "s", kEv, st);
  EXPECT_EQ(st.valid, 1u);
  EXPECT_EQ(st.missing_records, 2u);
}

}  // namespace
}  // namespace viprof::core
