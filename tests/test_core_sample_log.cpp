#include <gtest/gtest.h>

#include "core/sample_log.hpp"

namespace viprof::core {
namespace {

LoggedSample make_sample(hw::Address pc, std::uint64_t epoch) {
  LoggedSample s;
  s.pc = pc;
  s.caller_pc = pc + 0x10;
  s.mode = hw::CpuMode::kUser;
  s.pid = 101;
  s.epoch = epoch;
  s.cycle = 777;
  return s;
}

TEST(SampleLog, RoundTrip) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "samples");
  writer.append(hw::EventKind::kGlobalPowerEvents, make_sample(0x1234, 2));
  writer.append(hw::EventKind::kGlobalPowerEvents, make_sample(0xc0001000, 3));
  writer.flush();

  const auto read =
      SampleLogReader::read(vfs, "samples", hw::EventKind::kGlobalPowerEvents);
  ASSERT_EQ(read.size(), 2u);
  EXPECT_EQ(read[0].pc, 0x1234u);
  EXPECT_EQ(read[0].caller_pc, 0x1244u);
  EXPECT_EQ(read[0].pid, 101u);
  EXPECT_EQ(read[0].epoch, 2u);
  EXPECT_EQ(read[0].cycle, 777u);
  EXPECT_EQ(read[1].pc, 0xc0001000u);
  EXPECT_EQ(read[1].epoch, 3u);
}

TEST(SampleLog, KernelModePreserved) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "s");
  LoggedSample s = make_sample(0xc000'0000, 0);
  s.mode = hw::CpuMode::kKernel;
  writer.append(hw::EventKind::kBsqCacheReference, s);
  writer.flush();
  const auto read = SampleLogReader::read(vfs, "s", hw::EventKind::kBsqCacheReference);
  ASSERT_EQ(read.size(), 1u);
  EXPECT_EQ(read[0].mode, hw::CpuMode::kKernel);
}

TEST(SampleLog, EventsGoToSeparateFiles) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "s");
  writer.append(hw::EventKind::kGlobalPowerEvents, make_sample(1, 0));
  writer.append(hw::EventKind::kBsqCacheReference, make_sample(2, 0));
  writer.flush();
  EXPECT_EQ(SampleLogReader::read(vfs, "s", hw::EventKind::kGlobalPowerEvents).size(), 1u);
  EXPECT_EQ(SampleLogReader::read(vfs, "s", hw::EventKind::kBsqCacheReference).size(), 1u);
  EXPECT_TRUE(SampleLogReader::read(vfs, "s", hw::EventKind::kItlbMiss).empty());
}

TEST(SampleLog, NothingWrittenBeforeFlush) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "s");
  writer.append(hw::EventKind::kGlobalPowerEvents, make_sample(1, 0));
  EXPECT_TRUE(SampleLogReader::read(vfs, "s", hw::EventKind::kGlobalPowerEvents).empty());
  writer.flush();
  EXPECT_EQ(SampleLogReader::read(vfs, "s", hw::EventKind::kGlobalPowerEvents).size(), 1u);
}

TEST(SampleLog, FlushAppendsAcrossBatches) {
  os::Vfs vfs;
  SampleLogWriter writer(vfs, "s");
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i)
      writer.append(hw::EventKind::kGlobalPowerEvents, make_sample(i, 0));
    writer.flush();
  }
  EXPECT_EQ(SampleLogReader::read(vfs, "s", hw::EventKind::kGlobalPowerEvents).size(), 30u);
  EXPECT_EQ(writer.written(hw::EventKind::kGlobalPowerEvents), 30u);
}

TEST(SampleLog, MissingDirectoryReadsEmpty) {
  os::Vfs vfs;
  EXPECT_TRUE(SampleLogReader::read(vfs, "absent", hw::EventKind::kGlobalPowerEvents).empty());
}

}  // namespace
}  // namespace viprof::core
