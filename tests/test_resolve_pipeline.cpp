// Parallel resolution pipeline (DESIGN.md §9): the worker pool itself,
// hash-aggregated Profile/CallGraph merging, and the pipeline's central
// promise — byte-identical output for any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/resolve_pipeline.hpp"
#include "core/resolver.hpp"
#include "jvm/boot_image.hpp"
#include "os/loader.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace viprof::core {
namespace {

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForDegenerateCounts) {
  support::ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, SubmitAndWaitIdle) {
  support::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
  // The pool is reusable after wait_idle.
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 65);
}

// --- Profile / CallGraph merge ----------------------------------------------

Resolution res_of(const std::string& image, const std::string& symbol) {
  Resolution r;
  r.image = image;
  r.symbol = symbol;
  r.domain = SampleDomain::kImage;
  return r;
}

TEST(ProfileMergeTest, MergeSumsCountsAndKeepsFirstInsertionOrder) {
  const hw::EventKind e = hw::EventKind::kGlobalPowerEvents;
  Profile a;
  a.add(e, res_of("img", "alpha"));
  a.add(e, res_of("img", "beta"), 3);

  Profile b;
  b.add(e, res_of("img", "beta"), 2);  // existing row
  b.add(e, res_of("img", "gamma"));    // new row, must append after beta

  a.merge(b);
  EXPECT_EQ(a.total(e), 7u);
  ASSERT_EQ(a.row_count(), 3u);
  EXPECT_EQ(a.rows()[0].symbol, "alpha");
  EXPECT_EQ(a.rows()[1].symbol, "beta");
  EXPECT_EQ(a.rows()[2].symbol, "gamma");
  EXPECT_EQ(a.find("img", "beta")->count(e), 5u);
}

TEST(ProfileMergeTest, ShardOrderMergeMatchesSerialAggregation) {
  // Split a sample stream into contiguous shards, aggregate each privately,
  // merge in shard order: identical rows in identical order.
  const hw::EventKind e = hw::EventKind::kBsqCacheReference;
  support::Xoshiro256 rng(7);
  std::vector<Resolution> stream;
  for (int i = 0; i < 500; ++i) {
    stream.push_back(res_of("img" + std::to_string(rng.below(3)),
                            "sym" + std::to_string(rng.below(40))));
  }

  Profile serial;
  for (const Resolution& r : stream) serial.add(e, r);

  Profile merged;
  const std::size_t shards = 7;
  for (std::size_t k = 0; k < shards; ++k) {
    Profile part;
    const std::size_t lo = stream.size() * k / shards;
    const std::size_t hi = stream.size() * (k + 1) / shards;
    for (std::size_t i = lo; i < hi; ++i) part.add(e, stream[i]);
    merged.merge(part);
  }

  EXPECT_EQ(merged.render({e}, 50), serial.render({e}, 50));
  ASSERT_EQ(merged.row_count(), serial.row_count());
  for (std::size_t i = 0; i < serial.row_count(); ++i) {
    EXPECT_EQ(merged.rows()[i].symbol, serial.rows()[i].symbol) << i;
    EXPECT_EQ(merged.rows()[i].count(e), serial.rows()[i].count(e)) << i;
  }
}

// --- End-to-end pipeline ----------------------------------------------------

// Full resolver scenario with churning epoch maps, shared by the
// thread-count equivalence tests.
class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    os::Process& proc = machine_.spawn("jikesrvm");
    pid_ = proc.pid();

    os::Image& exec =
        machine_.registry().create("jikesrvm", os::ImageKind::kExecutable, 32 * 1024);
    exec.symbols().add("main", 0, 4096);
    exec_base_ = machine_.loader().load_executable(proc, exec.id()).start;

    boot_ = std::make_unique<jvm::BootImage>(machine_.registry(), machine_.vfs(),
                                             "RVM.map");
    boot_base_ = machine_.loader().map_at_anon_slot(proc, boot_->image()).start;
    heap_base_ = machine_.loader().map_anon(proc, 4 << 20).start;

    VmRegistration reg;
    reg.pid = pid_;
    reg.heap_lo = heap_base_;
    reg.heap_hi = heap_base_ + (4 << 20);
    reg.boot_base = boot_base_;
    reg.boot_size = boot_->size();
    reg.boot_map_path = "RVM.map";
    reg.jit_map_dir = "jit_maps";
    table_.add(reg);

    // 12 epochs over 64 method slots, with churn; epoch 5 left missing and
    // epoch 8 truncated so the degradation bins are exercised too.
    for (std::uint64_t e = 0; e < 12; ++e) {
      if (e == 5) continue;
      CodeMapFile file;
      file.epoch = e;
      file.truncated = e == 8;
      for (std::uint64_t i = 0; i < 24; ++i) {
        const std::uint64_t m = (e * 7 + i * 3) % 64;
        file.entries.push_back({heap_base_ + m * 0x1000 + (e % 2) * 0x100, 0x800,
                                "app.K.m" + std::to_string(m)});
      }
      machine_.vfs().write(CodeMapFile::path_for("jit_maps", pid_, e),
                           file.serialize());
    }

    support::Xoshiro256 rng(42);
    for (int n = 0; n < 6000; ++n) {
      LoggedSample s;
      s.pid = pid_;
      s.epoch = rng.below(12);
      s.cycle = static_cast<std::uint64_t>(n);
      s.caller_pc = exec_base_ + rng.below(4096);
      const std::uint64_t kind = rng.below(10);
      if (kind < 7) {
        s.pc = heap_base_ + rng.below(64) * 0x1000 + rng.below(0x1000);
      } else if (kind < 8) {
        s.pc = boot_base_ + rng.below(boot_->size());
      } else if (kind < 9) {
        s.pc = exec_base_ + rng.below(4096);
      } else {
        s.pc = machine_.kernel().routine("sys_read").base + 4;
        s.mode = hw::CpuMode::kKernel;
        s.caller_pc = 0;  // kernel samples without a caller are skipped
      }
      samples_.push_back(s);
    }
  }

  os::Machine machine_;
  RegistrationTable table_;
  std::unique_ptr<jvm::BootImage> boot_;
  hw::Pid pid_ = 0;
  hw::Address exec_base_ = 0, boot_base_ = 0, heap_base_ = 0;
  std::vector<LoggedSample> samples_;
};

TEST_F(PipelineTest, ProfileByteIdenticalAcrossThreadCounts) {
  const hw::EventKind e = hw::EventKind::kGlobalPowerEvents;
  Resolver resolver(machine_, table_, true);
  resolver.load();
  const auto fn = [&resolver](const LoggedSample& s, ResolveStats& st) {
    return resolver.resolve(s, st);
  };

  PipelineConfig serial_cfg;
  serial_cfg.threads = 1;
  ResolvePipeline serial(serial_cfg);
  Profile base;
  const ResolveStats base_stats = serial.aggregate_profile(samples_, e, fn, base);
  EXPECT_GT(base_stats.jit_resolved, 0u);
  EXPECT_GT(base_stats.unresolved_missing_map, 0u);
  EXPECT_GT(base_stats.unresolved_truncated_map, 0u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
    PipelineConfig cfg;
    cfg.threads = threads;
    cfg.min_shard = 64;  // force real sharding despite the small input
    ResolvePipeline pipeline(cfg);
    EXPECT_EQ(pipeline.threads(), threads);
    Profile p;
    const ResolveStats stats = pipeline.aggregate_profile(samples_, e, fn, p);

    EXPECT_EQ(p.render({e}, 100), base.render({e}, 100)) << threads << " threads";
    ASSERT_EQ(p.row_count(), base.row_count());
    for (std::size_t i = 0; i < base.row_count(); ++i) {
      EXPECT_EQ(p.rows()[i].image, base.rows()[i].image);
      EXPECT_EQ(p.rows()[i].symbol, base.rows()[i].symbol);
      EXPECT_EQ(p.rows()[i].count(e), base.rows()[i].count(e));
    }
    EXPECT_EQ(stats.jit_resolved, base_stats.jit_resolved);
    EXPECT_EQ(stats.jit_unresolved, base_stats.jit_unresolved);
    EXPECT_EQ(stats.backward_steps, base_stats.backward_steps);
    EXPECT_EQ(stats.unresolved_missing_map, base_stats.unresolved_missing_map);
    EXPECT_EQ(stats.unresolved_truncated_map, base_stats.unresolved_truncated_map);
  }
}

TEST_F(PipelineTest, CallGraphByteIdenticalAcrossThreadCounts) {
  Resolver resolver(machine_, table_, true);
  resolver.load();

  CallGraph base(resolver);
  PipelineConfig serial_cfg;
  serial_cfg.threads = 1;
  ResolvePipeline(serial_cfg).aggregate_callgraph(samples_, base);
  EXPECT_GT(base.total_arcs(), 0u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    PipelineConfig cfg;
    cfg.threads = threads;
    cfg.min_shard = 64;
    CallGraph g(resolver);
    ResolvePipeline(cfg).aggregate_callgraph(samples_, g);
    EXPECT_EQ(g.render(100), base.render(100)) << threads << " threads";
    EXPECT_EQ(g.total_arcs(), base.total_arcs());
    EXPECT_EQ(g.total_samples(), base.total_samples());
  }
}

TEST_F(PipelineTest, FoldedStatsMatchSerialResolverCounters) {
  const hw::EventKind e = hw::EventKind::kGlobalPowerEvents;
  // Serial resolver, stats-less path: the historical behaviour.
  Resolver serial(machine_, table_, true);
  serial.load();
  Profile p1;
  for (const LoggedSample& s : samples_) p1.add(e, serial.resolve(s));

  // Pipeline + fold: the counters must end up identical.
  Resolver threaded(machine_, table_, true);
  threaded.load();
  PipelineConfig cfg;
  cfg.threads = 4;
  cfg.min_shard = 64;
  ResolvePipeline pipeline(cfg);
  Profile p2;
  const ResolveStats stats = pipeline.aggregate_profile(
      samples_, e,
      [&threaded](const LoggedSample& s, ResolveStats& st) {
        return threaded.resolve(s, st);
      },
      p2);
  threaded.fold(stats);

  EXPECT_EQ(threaded.jit_resolved(), serial.jit_resolved());
  EXPECT_EQ(threaded.jit_unresolved(), serial.jit_unresolved());
  EXPECT_EQ(threaded.backward_steps(), serial.backward_steps());
  EXPECT_EQ(threaded.unresolved_missing_map(), serial.unresolved_missing_map());
  EXPECT_EQ(threaded.unresolved_truncated_map(), serial.unresolved_truncated_map());
  EXPECT_EQ(p2.render({e}, 100), p1.render({e}, 100));
}

TEST(PipelineConfigTest, SmallInputsRunInline) {
  PipelineConfig cfg;
  cfg.threads = 8;  // default min_shard: 2048 per shard
  ResolvePipeline pipeline(cfg);
  // 100 samples < min_shard: the pipeline must still produce output (and
  // runs the serial path internally — observable only as correct results).
  std::vector<LoggedSample> samples(100);
  Profile p;
  const hw::EventKind e = hw::EventKind::kGlobalPowerEvents;
  pipeline.aggregate_profile(
      samples, e,
      [](const LoggedSample&, ResolveStats&) { return Resolution{}; }, p);
  EXPECT_EQ(p.total(e), 100u);
}

}  // namespace
}  // namespace viprof::core
