#include <gtest/gtest.h>

#include <memory>

#include "workloads/generator.hpp"
#include "xen/scheduler.hpp"
#include "xen/xenoprof.hpp"

namespace viprof::xen {
namespace {

constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;

workloads::Workload guest_workload(const std::string& name, std::uint64_t seed,
                                   std::uint64_t ops) {
  workloads::GeneratorOptions opt;
  opt.name = name;
  opt.seed = seed;
  opt.methods = 16;
  opt.total_app_ops = ops;
  opt.alloc_intensity = 0.5;
  opt.nursery_bytes = 1ull << 20;
  opt.syscall_frac = 0.05;
  return workloads::make_synthetic(opt);
}

TEST(Hypervisor, RegistersWithMachine) {
  os::Machine machine;
  Hypervisor xen(machine);
  ASSERT_TRUE(machine.hypervisor().has_value());
  EXPECT_EQ(machine.hypervisor()->image, xen.image());
  EXPECT_TRUE(machine.hypervisor()->contains(Hypervisor::kXenBase));
  EXPECT_EQ(machine.registry().get(xen.image()).name(), "xen-syms");
}

TEST(Hypervisor, AboveTheKernel) {
  os::Machine machine;
  Hypervisor xen(machine);
  EXPECT_GT(xen.base(), machine.kernel().base() + machine.kernel().size());
  EXPECT_FALSE(machine.kernel().contains(xen.base()));
}

TEST(Hypervisor, RoutinesResolvable) {
  os::Machine machine;
  Hypervisor xen(machine);
  for (const char* name : {"hypercall_entry", "shadow_page_fault", "csched_schedule",
                           "vcpu_context_switch", "xenoprof_nmi_handler"}) {
    const HypervisorRoutine& r = xen.routine(name);
    EXPECT_TRUE(xen.contains(r.base));
    const auto sym =
        machine.registry().get(xen.image()).symbols().find(r.base - xen.base());
    ASSERT_TRUE(sym.has_value());
    EXPECT_EQ(sym->name, name);
  }
}

TEST(Hypervisor, ExecAdvancesClockInRingMinusOne) {
  os::Machine machine;
  Hypervisor xen(machine);
  const hw::Cycles before = machine.cpu().now();
  xen.exec(Hypervisor::Activity::kSchedule, 50'000, 7);
  EXPECT_EQ(machine.cpu().now() - before, 50'000u);
  EXPECT_EQ(xen.cycles_executed(), 50'000u);
  EXPECT_EQ(machine.cpu().context().mode, hw::CpuMode::kHypervisor);
  EXPECT_EQ(machine.cpu().context().pid, 7u);
}

TEST(CreditScheduler, RunsAllDomainsToCompletion) {
  os::Machine machine;
  Hypervisor xen(machine);
  const workloads::Workload w1 = guest_workload("g1", 1, 2'000'000);
  const workloads::Workload w2 = guest_workload("g2", 2, 1'000'000);
  jvm::Vm vm1(machine, w1.vm), vm2(machine, w2.vm);
  vm1.setup(w1.program);
  vm2.setup(w2.program);
  Domain d1{1, "d1", &vm1, 256};
  Domain d2{2, "d2", &vm2, 256};
  CreditScheduler scheduler(machine, xen);
  scheduler.add_domain(&d1);
  scheduler.add_domain(&d2);
  const SchedulerStats stats = scheduler.run_all();
  EXPECT_TRUE(d1.finished);
  EXPECT_TRUE(d2.finished);
  EXPECT_GE(d1.stats.app_ops, 2'000'000u);
  EXPECT_GE(d2.stats.app_ops, 1'000'000u);
  EXPECT_GT(stats.context_switches, 1u);
  EXPECT_GT(stats.hypervisor_cycles, 0u);
  EXPECT_GT(d1.slices, 1u);
}

TEST(CreditScheduler, WeightsShiftSliceShares) {
  os::Machine machine;
  Hypervisor xen(machine);
  const workloads::Workload w1 = guest_workload("heavy", 1, 3'000'000);
  const workloads::Workload w2 = guest_workload("light", 2, 3'000'000);
  jvm::Vm vm1(machine, w1.vm), vm2(machine, w2.vm);
  vm1.setup(w1.program);
  vm2.setup(w2.program);
  Domain d1{1, "heavy", &vm1, 512};
  Domain d2{2, "light", &vm2, 128};
  CreditScheduler scheduler(machine, xen);
  scheduler.add_domain(&d1);
  scheduler.add_domain(&d2);
  scheduler.run_all();
  // Same work, 4x the weight: the heavy domain should not get fewer slices
  // while both are runnable; a coarse check is that it finishes first or
  // with at most as many total slices.
  EXPECT_LE(d1.slices, d2.slices + 2);
}

class XenoProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<os::Machine>(os::MachineConfig{0xfeed, 3.4, {}});
    xen_ = std::make_unique<Hypervisor>(*machine_);
    w1_ = guest_workload("xg1", 11, 2'500'000);
    w2_ = guest_workload("xg2", 12, 2'500'000);
    vm1_ = std::make_unique<jvm::Vm>(*machine_, w1_.vm);
    vm2_ = std::make_unique<jvm::Vm>(*machine_, w2_.vm);
    session_ = std::make_unique<XenoProfSession>(*machine_, *xen_);
    d1_ = Domain{1, "d1", vm1_.get(), 256};
    d2_ = Domain{2, "d2", vm2_.get(), 256};
    session_->attach_guest(d1_);
    session_->attach_guest(d2_);
    vm1_->setup(w1_.program);
    vm2_->setup(w2_.program);
    session_->start();
    CreditScheduler scheduler(*machine_, *xen_);
    scheduler.add_domain(&d1_);
    scheduler.add_domain(&d2_);
    scheduler.run_all();
    result_ = session_->stop_and_flush();
  }

  std::unique_ptr<os::Machine> machine_;
  std::unique_ptr<Hypervisor> xen_;
  workloads::Workload w1_, w2_;
  std::unique_ptr<jvm::Vm> vm1_, vm2_;
  std::unique_ptr<XenoProfSession> session_;
  Domain d1_, d2_;
  XenoProfResult result_;
};

TEST_F(XenoProfTest, CapturesSamplesFromBothGuestsAndXen) {
  EXPECT_GT(result_.samples, 0u);
  EXPECT_GT(result_.daemon.jit_samples, 0u);
  EXPECT_GT(result_.daemon.hypervisor_samples, 0u);
  EXPECT_EQ(result_.dropped, 0u);
}

TEST_F(XenoProfTest, DomainProfilesAreDisjointByApplication) {
  core::Profile p1 = session_->domain_profile(d1_, {kTime});
  core::Profile p2 = session_->domain_profile(d2_, {kTime});
  bool p1_has_own = false, p1_has_other = false;
  for (const auto& row : p1.rows()) {
    if (row.symbol.find("synthetic.xg1") == 0) p1_has_own = true;
    if (row.symbol.find("synthetic.xg2") == 0) p1_has_other = true;
  }
  EXPECT_TRUE(p1_has_own);
  EXPECT_FALSE(p1_has_other);
  EXPECT_GT(p2.domain_total(core::SampleDomain::kJit, kTime), 0u);
}

TEST_F(XenoProfTest, BothGuestsEpochMapsResolve) {
  core::Resolver& r = session_->resolver();
  for (const Domain* d : {&d1_, &d2_}) {
    const core::CodeMapIndex* maps = r.code_maps(d->vm->pid());
    ASSERT_NE(maps, nullptr);
    EXPECT_GT(maps->map_count(), 0u);
  }
  // Per-pid epochs: no cross-contamination means high resolution rates.
  core::Profile p1 = session_->domain_profile(d1_, {kTime});
  core::Profile p2 = session_->domain_profile(d2_, {kTime});
  const std::uint64_t total = r.jit_resolved() + r.jit_unresolved();
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(r.jit_resolved()) / static_cast<double>(total), 0.99);
}

TEST_F(XenoProfTest, HypervisorProfileOnlyXenSymbols) {
  core::Profile xp = session_->hypervisor_profile({kTime});
  EXPECT_GT(xp.total(kTime), 0u);
  for (const auto& row : xp.rows()) {
    EXPECT_EQ(row.image, "xen-syms");
    EXPECT_EQ(row.domain, core::SampleDomain::kHypervisor);
  }
}

TEST_F(XenoProfTest, DomainProfileIncludesItsHypervisorTime) {
  // XenoProf attribution: Xen cycles spent on behalf of a domain appear in
  // that domain's profile as xen-syms rows.
  core::Profile p1 = session_->domain_profile(d1_, {kTime});
  EXPECT_GT(p1.domain_total(core::SampleDomain::kHypervisor, kTime), 0u);
}

}  // namespace
}  // namespace viprof::xen
