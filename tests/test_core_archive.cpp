#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "core/archive.hpp"
#include "core/viprof.hpp"
#include "workloads/generator.hpp"

namespace viprof::core {
namespace {

struct ArchivedRun {
  std::unique_ptr<os::Machine> machine;
  std::unique_ptr<jvm::Vm> vm;
  std::unique_ptr<ProfilingSession> session;
  SessionResult result;
};

ArchivedRun run_and_archive(ProfilingMode mode) {
  ArchivedRun run;
  os::MachineConfig mcfg;
  mcfg.seed = 0xa4c;
  run.machine = std::make_unique<os::Machine>(mcfg);

  workloads::GeneratorOptions opt;
  opt.name = "arch";
  opt.seed = 6;
  opt.methods = 20;
  opt.total_app_ops = 3'000'000;
  opt.alloc_intensity = 0.6;
  opt.nursery_bytes = 512 * 1024;
  opt.native_frac = 0.08;
  opt.syscall_frac = 0.04;
  const workloads::Workload w = workloads::make_synthetic(opt);

  run.vm = std::make_unique<jvm::Vm>(*run.machine, w.vm);
  SessionConfig config;
  config.mode = mode;
  run.session = std::make_unique<ProfilingSession>(*run.machine, *run.vm, config);
  run.session->attach();
  run.vm->setup(w.program);
  run.result = run.session->run();
  run.session->export_archive();
  return run;
}

TEST(Archive, ManifestWritten) {
  ArchivedRun run = run_and_archive(ProfilingMode::kViprof);
  ASSERT_TRUE(run.machine->vfs().exists("archive/manifest"));
  const std::string manifest = *run.machine->vfs().read("archive/manifest");
  EXPECT_NE(manifest.find("image "), std::string::npos);
  EXPECT_NE(manifest.find("kernel "), std::string::npos);
  EXPECT_NE(manifest.find("reg "), std::string::npos);
  EXPECT_NE(manifest.find("vmlinux"), std::string::npos);
}

TEST(Archive, OfflineResolverMatchesLiveResolverExactly) {
  ArchivedRun run = run_and_archive(ProfilingMode::kViprof);
  Resolver& live = run.session->resolver();
  const ArchiveResolver offline(run.machine->vfs(), "archive", true);

  std::uint64_t compared = 0;
  for (hw::EventKind event : hw::kAllEventKinds) {
    for (const LoggedSample& s : SampleLogReader::read(
             run.machine->vfs(), run.session->daemon()->sample_dir(), event)) {
      const Resolution a = live.resolve(s);
      const Resolution b = offline.resolve(s);
      ASSERT_EQ(a.image, b.image) << "pc=" << s.pc;
      ASSERT_EQ(a.symbol, b.symbol) << "pc=" << s.pc;
      ASSERT_EQ(a.domain, b.domain) << "pc=" << s.pc;
      ++compared;
    }
  }
  EXPECT_GT(compared, 100u);
}

TEST(Archive, OprofileViewMatchesToo) {
  ArchivedRun run = run_and_archive(ProfilingMode::kOprofile);
  Resolver& live = run.session->resolver();  // vm_aware = false in this mode
  const ArchiveResolver offline(run.machine->vfs(), "archive", false);
  std::uint64_t anon_rows = 0;
  for (const LoggedSample& s : SampleLogReader::read(
           run.machine->vfs(), run.session->daemon()->sample_dir(),
           hw::EventKind::kGlobalPowerEvents)) {
    const Resolution a = live.resolve(s);
    const Resolution b = offline.resolve(s);
    ASSERT_EQ(a.image, b.image);
    ASSERT_EQ(a.symbol, b.symbol);
    if (b.domain == SampleDomain::kAnon) ++anon_rows;
  }
  EXPECT_GT(anon_rows, 0u);
}

TEST(Archive, SurvivesDiskRoundTrip) {
  ArchivedRun run = run_and_archive(ProfilingMode::kViprof);
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("viprof_archive_test_" + std::to_string(::getpid()));
  run.machine->vfs().export_to_directory(dir.string());

  os::Vfs imported;
  imported.import_from_directory(dir.string());
  const ArchiveResolver offline(imported, "archive", true);
  EXPECT_GT(offline.image_count(), 3u);
  EXPECT_GE(offline.process_count(), 2u);  // jikesrvm + oprofiled

  Resolver& live = run.session->resolver();
  std::uint64_t compared = 0;
  for (const LoggedSample& s : SampleLogReader::read(imported, "samples",
                                                     hw::EventKind::kGlobalPowerEvents)) {
    const Resolution a = live.resolve(s);
    const Resolution b = offline.resolve(s);
    ASSERT_EQ(a.image, b.image);
    ASSERT_EQ(a.symbol, b.symbol);
    ++compared;
  }
  EXPECT_GT(compared, 50u);
  fs::remove_all(dir);
}

TEST(Archive, StrippedAndAnonKindsPreserved) {
  ArchivedRun run = run_and_archive(ProfilingMode::kViprof);
  const std::string manifest = *run.machine->vfs().read("archive/manifest");
  EXPECT_NE(manifest.find(" anon "), std::string::npos);   // heap mapping
  EXPECT_NE(manifest.find(" boot "), std::string::npos);   // RVM.code.image
  EXPECT_NE(manifest.find(" lib "), std::string::npos);    // libc
}

TEST(VfsDisk, ExportImportRoundTrip) {
  namespace fs = std::filesystem;
  os::Vfs vfs;
  vfs.write("a/b/c.txt", "hello");
  vfs.write("top.txt", "world");
  const fs::path dir =
      fs::temp_directory_path() / ("viprof_vfs_test_" + std::to_string(::getpid()));
  vfs.export_to_directory(dir.string());
  os::Vfs back;
  back.import_from_directory(dir.string());
  EXPECT_EQ(*back.read("a/b/c.txt"), "hello");
  EXPECT_EQ(*back.read("top.txt"), "world");
  EXPECT_EQ(back.file_count(), 2u);
  fs::remove_all(dir);
}

TEST(VfsDisk, PrefixedExport) {
  namespace fs = std::filesystem;
  os::Vfs vfs;
  vfs.write("samples/x", "1");
  vfs.write("other/y", "2");
  const fs::path dir =
      fs::temp_directory_path() / ("viprof_vfs_prefix_" + std::to_string(::getpid()));
  vfs.export_to_directory(dir.string(), "samples");
  EXPECT_TRUE(fs::exists(dir / "samples/x"));
  EXPECT_FALSE(fs::exists(dir / "other/y"));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace viprof::core
