#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/transport.hpp"
#include "service/wire.hpp"
#include "support/fault.hpp"

namespace viprof::service {
namespace {

std::vector<Frame> decode_all(FrameDecoder& decoder) {
  std::vector<Frame> frames;
  Frame f;
  while (decoder.next(f)) frames.push_back(f);
  return frames;
}

TEST(Wire, RoundTripsFrames) {
  FrameDecoder decoder;
  decoder.feed(encode_frame(FrameType::kHello, "client-1"));
  decoder.feed(encode_frame(FrameType::kSampleBatch, "batch GLOBAL_POWER_EVENTS 0\n"));
  const std::vector<Frame> frames = decode_all(decoder);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[0].payload, "client-1");
  EXPECT_EQ(frames[1].type, FrameType::kSampleBatch);
  EXPECT_EQ(decoder.torn_frames(), 0u);
}

TEST(Wire, DecodesByteByByte) {
  // Frames split at arbitrary boundaries must reassemble.
  const std::string bytes = encode_frame(FrameType::kFile, "path\ncontents") +
                            encode_frame(FrameType::kEndStream, "");
  FrameDecoder decoder;
  std::vector<Frame> frames;
  Frame f;
  for (char c : bytes) {
    decoder.feed(&c, 1);
    while (decoder.next(f)) frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, "path\ncontents");
  EXPECT_EQ(frames[1].type, FrameType::kEndStream);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(Wire, EmptyPayloadAndBinaryPayload) {
  std::string binary("\x00\x01VF\xff payload \n with magic inside", 33);
  FrameDecoder decoder;
  decoder.feed(encode_frame(FrameType::kQuery, ""));
  decoder.feed(encode_frame(FrameType::kReply, binary));
  const std::vector<Frame> frames = decode_all(decoder);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, "");
  EXPECT_EQ(frames[1].payload, binary);
}

TEST(Wire, CorruptCrcSkipsFrameAndResyncs) {
  std::string damaged = encode_frame(FrameType::kHello, "aaaa");
  damaged[damaged.size() - 1] ^= 0x40;  // flip a crc bit
  FrameDecoder decoder;
  decoder.feed(damaged);
  decoder.feed(encode_frame(FrameType::kHello, "bbbb"));
  const std::vector<Frame> frames = decode_all(decoder);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, "bbbb");
  EXPECT_GE(decoder.torn_frames(), 1u);
  EXPECT_GT(decoder.skipped_bytes(), 0u);
}

TEST(Wire, GarbageBetweenFramesIsSkipped) {
  FrameDecoder decoder;
  decoder.feed("no frame here at all ");
  decoder.feed(encode_frame(FrameType::kHello, "x"));
  decoder.feed("VF\x7f");  // bogus type: damage, not a frame
  decoder.feed(encode_frame(FrameType::kHello, "y"));
  const std::vector<Frame> frames = decode_all(decoder);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, "x");
  EXPECT_EQ(frames[1].payload, "y");
  EXPECT_GE(decoder.torn_frames(), 1u);
}

TEST(Wire, RepeatedTornFramesResyncEveryTime) {
  // One stream, many tears: every torn prefix swallows the head of the
  // frame behind it during the crc check, and the decoder must rescan and
  // recover the intact frame after *each* tear, not just the first.
  FrameDecoder decoder;
  const int kTears = 6;
  for (int i = 0; i < kTears; ++i) {
    std::string torn = encode_frame(
        FrameType::kFile, "doomed-" + std::to_string(i) + "\npayload bytes");
    torn.resize(torn.size() / 2);  // only a prefix reaches the wire
    decoder.feed(torn);
    decoder.feed(encode_frame(FrameType::kSampleBatch,
                              "batch " + std::to_string(i)));
  }
  decoder.feed(encode_frame(FrameType::kEndStream, ""));
  const std::vector<Frame> frames = decode_all(decoder);
  ASSERT_EQ(frames.size(), static_cast<std::size_t>(kTears) + 1);
  for (int i = 0; i < kTears; ++i) {
    EXPECT_EQ(frames[i].type, FrameType::kSampleBatch);
    EXPECT_EQ(frames[i].payload, "batch " + std::to_string(i));
  }
  EXPECT_EQ(frames.back().type, FrameType::kEndStream);
  EXPECT_GE(decoder.torn_frames(), static_cast<std::uint64_t>(kTears));
  EXPECT_GT(decoder.skipped_bytes(), 0u);
}

TEST(Wire, TruncatedFrameStaysBuffered) {
  const std::string whole = encode_frame(FrameType::kFile, "p\n0123456789");
  FrameDecoder decoder;
  decoder.feed(whole.data(), whole.size() - 3);
  Frame f;
  EXPECT_FALSE(decoder.next(f));
  EXPECT_GT(decoder.buffered_bytes(), 0u);  // a disconnect here = torn frame
  decoder.feed(whole.data() + whole.size() - 3, 3);
  EXPECT_TRUE(decoder.next(f));
  EXPECT_EQ(f.payload, "p\n0123456789");
}

TEST(Wire, OversizedLengthIsRejectedAsDamage) {
  // Corrupt the length field to a huge value: the decoder must not wait
  // for 4GB of payload, it must resync.
  std::string frame = encode_frame(FrameType::kHello, "zz");
  frame[4] = '\xff';
  frame[5] = '\xff';
  frame[6] = '\xff';
  frame[7] = '\x7f';
  FrameDecoder decoder;
  decoder.feed(frame);
  decoder.feed(encode_frame(FrameType::kHello, "ok"));
  const std::vector<Frame> frames = decode_all(decoder);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, "ok");
  EXPECT_GE(decoder.torn_frames(), 1u);
}

TEST(LoopbackTransport, DeliversToSink) {
  std::string received;
  LoopbackTransport wire(
      "c", [&](const char* data, std::size_t size) { received.append(data, size); },
      nullptr, nullptr);
  EXPECT_TRUE(wire.send("hello"));
  EXPECT_TRUE(wire.send(" world"));
  EXPECT_EQ(received, "hello world");
  wire.close();
  EXPECT_FALSE(wire.send("late"));
  EXPECT_EQ(received, "hello world");
}

TEST(LoopbackTransport, CloseHookFiresOnce) {
  int closes = 0;
  {
    LoopbackTransport wire("c", [](const char*, std::size_t) {}, [&] { ++closes; },
                           nullptr);
    wire.close();
    wire.close();
  }  // destructor must not re-fire
  EXPECT_EQ(closes, 1);
}

TEST(LoopbackTransport, TornWriteDeliversPrefixOnly) {
  support::FaultInjector fault;
  support::FaultRule rule;
  rule.path_prefix = "wire/c";
  rule.kind = support::FaultKind::kTornWrite;
  rule.skip = 1;  // first frame lands intact
  rule.count = 1;
  fault.add_rule(rule);
  std::string received;
  LoopbackTransport wire(
      "c", [&](const char* data, std::size_t size) { received.append(data, size); },
      nullptr, &fault);

  const std::string f1 = encode_frame(FrameType::kHello, "first");
  const std::string f2 = encode_frame(FrameType::kHello, "second");
  EXPECT_TRUE(wire.send(f1));
  wire.send(f2);  // torn mid-frame by the injector
  EXPECT_EQ(wire.torn_sends(), 1u);
  EXPECT_LT(received.size(), f1.size() + f2.size());

  // The decoder sees one intact frame and damage, never a corrupt accept.
  FrameDecoder decoder;
  decoder.feed(received);
  const std::vector<Frame> frames = decode_all(decoder);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, "first");
}

// --- Zero-copy view decode (DESIGN.md §14) ----------------------------------

TEST(WireView, NextViewYieldsPayloadsWithoutCopying) {
  FrameDecoder decoder;
  decoder.feed(encode_frame(FrameType::kHello, "client-1"));
  decoder.feed(encode_frame(FrameType::kSampleBatch, "batch GLOBAL_POWER_EVENTS 0\n"));
  FrameView v;
  ASSERT_TRUE(decoder.next_view(v));
  EXPECT_EQ(v.type, FrameType::kHello);
  EXPECT_EQ(v.payload, "client-1");
  ASSERT_TRUE(decoder.next_view(v));
  EXPECT_EQ(v.type, FrameType::kSampleBatch);
  EXPECT_EQ(v.payload, "batch GLOBAL_POWER_EVENTS 0\n");
  EXPECT_FALSE(decoder.next_view(v));
  // Every consumed byte is accounted: nothing left pending.
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_EQ(decoder.torn_frames(), 0u);
}

TEST(WireView, ViewStaysValidUntilNextDecoderCall) {
  // The contract the server's batch path relies on: the string_view handed
  // out by next_view() must be readable until the *next* feed()/next()/
  // next_view() — the parser reads samples straight out of it.
  FrameDecoder decoder;
  const std::string big(8 * 1024, 'q');
  decoder.feed(encode_frame(FrameType::kFile, "a\n" + big));
  decoder.feed(encode_frame(FrameType::kEndStream, ""));
  FrameView v;
  ASSERT_TRUE(decoder.next_view(v));
  // Consume the view's bytes *after* next_view returned.
  EXPECT_EQ(v.payload.substr(0, 2), "a\n");
  EXPECT_EQ(v.payload.size(), 2u + big.size());
  for (std::size_t i = 2; i < v.payload.size(); i += 997) {
    ASSERT_EQ(v.payload[i], 'q') << "view byte " << i << " invalidated early";
  }
  ASSERT_TRUE(decoder.next_view(v));  // previous view dies here, by contract
  EXPECT_EQ(v.type, FrameType::kEndStream);
}

TEST(WireView, LazyCompactionReclaimsConsumedBytesOnFeed) {
  // Draining N buffered frames through next_view() must not memmove the
  // buffer head N times: consumed bytes linger (tracked, not visible in
  // buffered_bytes) and are erased once on the next feed().
  FrameDecoder decoder;
  std::string stream;
  for (int i = 0; i < 16; ++i)
    stream += encode_frame(FrameType::kQuery, "q" + std::to_string(i));
  decoder.feed(stream);
  FrameView v;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(decoder.next_view(v));
    EXPECT_EQ(v.payload, "q" + std::to_string(i));
  }
  EXPECT_FALSE(decoder.next_view(v));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);  // all consumed, none pending
  // Feeding more triggers the single compaction; decode continues cleanly.
  decoder.feed(encode_frame(FrameType::kEndStream, ""));
  ASSERT_TRUE(decoder.next_view(v));
  EXPECT_EQ(v.type, FrameType::kEndStream);
}

TEST(WireView, NextAndNextViewInteroperateOnOneStream) {
  FrameDecoder decoder;
  decoder.feed(encode_frame(FrameType::kHello, "h"));
  decoder.feed(encode_frame(FrameType::kQuery, "top 5"));
  decoder.feed(encode_frame(FrameType::kEndStream, ""));
  Frame owned;
  FrameView view;
  ASSERT_TRUE(decoder.next(owned));
  EXPECT_EQ(owned.payload, "h");
  ASSERT_TRUE(decoder.next_view(view));
  EXPECT_EQ(view.payload, "top 5");
  ASSERT_TRUE(decoder.next(owned));
  EXPECT_EQ(owned.type, FrameType::kEndStream);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WireView, TornFramesResyncThroughNextView) {
  // The zero-copy path must salvage damage exactly like next(): count the
  // tear, skip to the next magic, and keep decoding.
  FrameDecoder decoder;
  std::string torn = encode_frame(FrameType::kFile, "doomed\npayload");
  torn.resize(torn.size() / 2);
  decoder.feed(torn);
  decoder.feed(encode_frame(FrameType::kSampleBatch, "batch survives"));
  std::string damaged = encode_frame(FrameType::kHello, "cccc");
  damaged[damaged.size() - 2] ^= 0x10;  // crc damage
  decoder.feed(damaged);
  decoder.feed(encode_frame(FrameType::kEndStream, ""));

  FrameView v;
  std::vector<std::string> payloads;
  while (decoder.next_view(v)) payloads.emplace_back(v.payload);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "batch survives");
  EXPECT_EQ(payloads[1], "");
  EXPECT_GE(decoder.torn_frames(), 2u);
  EXPECT_GT(decoder.skipped_bytes(), 0u);
}

TEST(WireView, TracedFrameDecodesContextThroughView) {
  const support::TraceContext trace{0xabcdef0011223344ull, 9};
  FrameDecoder decoder;
  decoder.feed(encode_frame(FrameType::kSampleBatch, "payload", trace));
  FrameView v;
  ASSERT_TRUE(decoder.next_view(v));
  EXPECT_EQ(v.payload, "payload");
  EXPECT_EQ(v.trace.trace_id, trace.trace_id);
  EXPECT_EQ(v.trace.parent_span, 9u);
}

// --- Trace-context extension (DESIGN.md §13) --------------------------------

TEST(WireTrace, TracedFrameRoundTripsContext) {
  const support::TraceContext trace{0x1122334455667788ull, 42};
  FrameDecoder decoder;
  decoder.feed(encode_frame(FrameType::kSampleBatch, "payload", trace));
  const std::vector<Frame> frames = decode_all(decoder);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, "payload");
  EXPECT_EQ(frames[0].trace.trace_id, trace.trace_id);
  EXPECT_EQ(frames[0].trace.parent_span, 42u);
  EXPECT_EQ(decoder.torn_frames(), 0u);
}

TEST(WireTrace, UntracedEncodingIsByteIdenticalToHistorical) {
  // The flags byte was reserved-zero before the extension existed; an
  // untraced frame must still encode exactly as it always did, so mixed
  // old/new fleets interoperate.
  const std::string plain = encode_frame(FrameType::kHello, "abc");
  const std::string with_empty_ctx =
      encode_frame(FrameType::kHello, "abc", support::TraceContext{});
  EXPECT_EQ(plain, with_empty_ctx);
  EXPECT_EQ(plain.size(), kFrameHeaderBytes + 3 + kFrameTrailerBytes);
  EXPECT_EQ(plain[3], '\0');  // flags byte stays zero

  const std::string traced =
      encode_frame(FrameType::kHello, "abc", support::TraceContext{1, 0});
  EXPECT_EQ(traced.size(), plain.size() + kFrameTraceExtBytes);
  EXPECT_EQ(static_cast<std::uint8_t>(traced[3]), kFrameFlagTraced);

  FrameDecoder decoder;
  decoder.feed(plain);
  const std::vector<Frame> frames = decode_all(decoder);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_FALSE(frames[0].trace.valid());
}

TEST(WireTrace, UnknownFlagBitsAreDamageNotMisparses) {
  // A frame claiming a flag this decoder does not know could carry an
  // extension of unknown size — skipping it as damage (counted, resynced)
  // is the only safe read.
  std::string bytes = encode_frame(FrameType::kHello, "abc");
  bytes[3] = static_cast<char>(0x2);
  bytes += encode_frame(FrameType::kEndStream, "");
  FrameDecoder decoder;
  decoder.feed(bytes);
  const std::vector<Frame> frames = decode_all(decoder);
  ASSERT_EQ(frames.size(), 1u);  // the good frame after the damage
  EXPECT_EQ(frames[0].type, FrameType::kEndStream);
  EXPECT_GE(decoder.torn_frames(), 1u);
}

TEST(WireTrace, TracedFramesSurviveByteByByteReassembly) {
  const support::TraceContext trace = support::TraceContext::mint("sess-7");
  const std::string bytes =
      encode_frame(FrameType::kFile, "f\nbody", trace) +
      encode_frame(FrameType::kEndStream, "", trace);
  FrameDecoder decoder;
  std::vector<Frame> frames;
  Frame f;
  for (char c : bytes) {
    decoder.feed(&c, 1);
    while (decoder.next(f)) frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].trace.trace_id, trace.trace_id);
  EXPECT_EQ(frames[1].trace.trace_id, trace.trace_id);
}

}  // namespace
}  // namespace viprof::service
