// Crash-recovery and storage-fault tests: the full pipeline under injected
// write failures, torn appends, disk-full and component kills. The contract
// everywhere: the run completes, every lost record is counted somewhere
// (dropped / spilled / salvaged / discarded / sequence gap / unresolved
// bin), and no sample is ever attributed to the wrong method.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/viprof.hpp"
#include "support/fault.hpp"
#include "workloads/generator.hpp"

namespace viprof {
namespace {

constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;

struct FaultRun {
  std::unique_ptr<os::Machine> machine;
  std::unique_ptr<jvm::Vm> vm;
  std::unique_ptr<core::ProfilingSession> session;
  core::SessionResult result;
};

FaultRun make_run(core::SessionConfig config, std::uint64_t ops = 2'000'000) {
  FaultRun run;
  os::MachineConfig mcfg;
  mcfg.seed = 0xc4a5;
  run.machine = std::make_unique<os::Machine>(mcfg);
  workloads::GeneratorOptions opt;
  opt.name = "crash";
  opt.seed = 7;
  opt.methods = 16;
  opt.total_app_ops = ops;
  opt.alloc_intensity = 0.6;
  opt.nursery_bytes = 512 * 1024;
  const workloads::Workload w = workloads::make_synthetic(opt);
  run.vm = std::make_unique<jvm::Vm>(*run.machine, w.vm);
  run.session = std::make_unique<core::ProfilingSession>(*run.machine, *run.vm, config);
  run.session->attach();
  run.vm->setup(w.program);
  return run;
}

FaultRun full_run(core::SessionConfig config, std::uint64_t ops = 2'000'000) {
  FaultRun run = make_run(std::move(config), ops);
  run.result = run.session->run();
  return run;
}

core::SessionConfig base_config() {
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.counters = {{kTime, 20'000, true},
                     {hw::EventKind::kBsqCacheReference, 1'000, true}};
  return config;
}

/// Sum of read_checked over all events; accumulates per-file statuses.
std::uint64_t read_all(const FaultRun& run, core::SampleLogReadStatus& total) {
  std::uint64_t valid = 0;
  for (hw::EventKind e : hw::kAllEventKinds) {
    core::SampleLogReadStatus st;
    core::SampleLogReader::read_checked(run.machine->vfs(),
                                        run.session->daemon()->sample_dir(), e, st);
    valid += st.valid;
    total.corrupt = total.corrupt || st.corrupt;
    total.valid += st.valid;
    total.salvaged += st.salvaged;
    total.discarded_lines += st.discarded_lines;
    total.discarded_bytes += st.discarded_bytes;
    total.duplicate_records += st.duplicate_records;
    total.missing_records += st.missing_records;
  }
  return valid;
}

/// Every JIT-domain sample resolves to a workload method or an explicit
/// unresolved bin — never to a method name damage could have invented.
void assert_no_misattribution(FaultRun& run) {
  core::Resolver& r = run.session->resolver();
  for (hw::EventKind e : hw::kAllEventKinds) {
    for (const core::LoggedSample& s : core::SampleLogReader::read(
             run.machine->vfs(), run.session->daemon()->sample_dir(), e)) {
      const core::Resolution res = r.resolve(s);
      if (res.domain != core::SampleDomain::kJit) continue;
      EXPECT_TRUE(res.symbol.find("synthetic.crash") == 0 ||
                  res.symbol == core::kUnresolvedMissingMap ||
                  res.symbol == core::kUnresolvedTruncatedMap ||
                  res.symbol == core::kUnknownJit)
          << res.symbol;
    }
  }
}

// --- The e2e scenario: kill the daemon mid-run, restart, conserve --------

TEST(CrashRecovery, DaemonKillMidRunRestartConservesSamples) {
  core::SessionConfig config = base_config();
  support::FaultInjector fi(0xdead);
  fi.schedule_kill(support::FaultComponent::kDaemon, 5'000'000);
  config.fault = &fi;
  FaultRun run = make_run(config);

  // Drive the VM in small slices until the scheduled kill lands.
  bool more = true;
  while (more && !run.session->daemon()->killed()) more = run.vm->step(20'000);
  ASSERT_TRUE(run.session->daemon()->killed());
  EXPECT_EQ(fi.stats().kills, 1u);

  // Let the dead window accumulate backlog, then restart and run out.
  for (int i = 0; i < 10 && more; ++i) more = run.vm->step(50'000);
  run.session->restart_daemon();
  EXPECT_FALSE(run.session->daemon()->killed());
  while (more) more = run.vm->step(200'000);
  run.result = run.session->finish_run();

  const core::DaemonStats& d = run.result.daemon;
  EXPECT_EQ(d.crashes, 1u);
  EXPECT_EQ(d.restarts, 1u);
  ASSERT_GT(run.result.nmi_count, 100u);

  // Buffer conservation: everything pushed (hardware samples + the agent's
  // epoch markers, which are enqueued whether or not the map write landed)
  // was drained, dropped, or is still sitting in the buffer.
  const std::uint64_t markers_pushed =
      run.result.agent.maps_written + run.result.agent.maps_dropped;
  EXPECT_EQ(d.drained + run.result.samples_dropped + run.result.samples_left_in_buffer,
            run.result.nmi_count + markers_pushed);
  EXPECT_EQ(run.result.samples_left_in_buffer, 0u);

  // Log conservation: every sample the daemon drained is either a verified
  // record on disk or in a counted loss bucket (crash-discarded pending
  // shows up to readers as a sequence gap).
  core::SampleLogReadStatus st;
  const std::uint64_t valid = read_all(run, st);
  EXPECT_EQ(valid + st.missing_records + d.spill_dropped_records,
            d.drained - d.epoch_markers);
  EXPECT_EQ(st.missing_records, d.crash_lost_records);
  EXPECT_FALSE(st.corrupt);  // a crash loses records, it does not corrupt files

  assert_no_misattribution(run);
}

TEST(CrashRecovery, UnrestartedCrashLeavesBacklogCounted) {
  core::SessionConfig config = base_config();
  support::FaultInjector fi;
  fi.schedule_kill(support::FaultComponent::kDaemon, 5'000'000);
  config.fault = &fi;
  FaultRun run = full_run(config);

  EXPECT_EQ(run.result.daemon.crashes, 1u);
  EXPECT_EQ(run.result.daemon.restarts, 0u);
  // The dead daemon's backlog stays in the buffer, visible and counted.
  EXPECT_GT(run.result.samples_left_in_buffer + run.result.samples_dropped, 0u);
  EXPECT_EQ(run.result.daemon.drained + run.result.samples_dropped +
                run.result.samples_left_in_buffer,
            run.result.nmi_count + run.result.agent.maps_written +
                run.result.agent.maps_dropped);
}

// --- Storage faults on the sample logs -----------------------------------

TEST(CrashRecovery, TornSampleAppendIsSalvagedAndCounted) {
  core::SessionConfig config = base_config();
  support::FaultInjector fi(0x7041);
  fi.add_rule({"samples/", support::FaultKind::kTornWrite, 2, 1, 1.0, 0.4});
  config.fault = &fi;
  FaultRun run = full_run(config);

  const core::DaemonStats& d = run.result.daemon;
  EXPECT_EQ(d.flush_torn_writes, 1u);

  core::SampleLogReadStatus st;
  const std::uint64_t valid = read_all(run, st);
  EXPECT_TRUE(st.corrupt);
  EXPECT_GT(st.salvaged, 0u);        // the damaged file still yielded records
  EXPECT_GT(st.discarded_lines, 0u); // the torn region was rejected, not trusted
  // Torn records were framed, so the reader sees them as a sequence gap:
  // verified + gap covers everything handed to the writer.
  EXPECT_EQ(valid + st.missing_records + d.spill_dropped_records,
            d.drained - d.epoch_markers);
  assert_no_misattribution(run);
}

TEST(CrashRecovery, TransientWriteErrorRetriesWithoutLoss) {
  core::SessionConfig config = base_config();
  support::FaultInjector fi;
  fi.add_rule({"samples/", support::FaultKind::kWriteError, 1, 1, 1.0, 0.5});
  config.fault = &fi;
  FaultRun run = full_run(config);

  const core::DaemonStats& d = run.result.daemon;
  EXPECT_EQ(d.flush_write_errors, 1u);
  EXPECT_GE(d.flush_retries, 1u);  // the in-chunk retry made it land
  EXPECT_EQ(d.spill_dropped_records, 0u);

  core::SampleLogReadStatus st;
  const std::uint64_t valid = read_all(run, st);
  EXPECT_FALSE(st.corrupt);
  EXPECT_EQ(st.missing_records, 0u);  // nothing lost: retry, not drop
  EXPECT_EQ(valid, d.drained - d.epoch_markers);
}

TEST(CrashRecovery, DiskFullSpillsThenDropsOldestCounted) {
  core::SessionConfig config = base_config();
  support::FaultInjector fi;
  fi.set_capacity_bytes(24 * 1024);  // fills partway through the run
  config.fault = &fi;
  config.daemon.spill_capacity_bytes = 2 * 1024;  // small spill: force drops
  FaultRun run = full_run(config);

  EXPECT_GT(fi.stats().enospc_errors, 0u);
  const core::DaemonStats& d = run.result.daemon;
  EXPECT_GT(d.spill_dropped_records, 0u);

  core::SampleLogReadStatus st;
  const std::uint64_t valid = read_all(run, st);
  // Whatever landed before the disk filled is verifiable; drops plus the
  // still-spilled tail account for the rest (never more records than drained).
  EXPECT_LE(valid + st.missing_records + d.spill_dropped_records,
            d.drained - d.epoch_markers);
  EXPECT_GT(valid, 0u);
  assert_no_misattribution(run);
}

// --- Storage faults on the code maps -------------------------------------

TEST(CrashRecovery, DroppedCodeMapYieldsMissingMapBinNotLies) {
  core::SessionConfig config = base_config();
  support::FaultInjector fi;
  // First map lands; every later map write fails permanently.
  fi.add_rule({"jit_maps/", support::FaultKind::kWriteError, 1, ~0ull, 1.0, 0.5});
  config.fault = &fi;
  FaultRun run = full_run(config);

  const core::AgentStats& a = run.result.agent;
  EXPECT_GT(a.maps_dropped, 0u);
  EXPECT_GT(a.map_write_errors, 0u);
  // The epoch marker is still pushed for a dropped map: epochs advance so
  // later samples can never be resolved against a stale map.
  EXPECT_EQ(run.result.daemon.epoch_markers, a.maps_written + a.maps_dropped);

  assert_no_misattribution(run);
  core::Resolver& r = run.session->resolver();
  EXPECT_GT(r.unresolved_missing_map(), 0u);
  EXPECT_EQ(r.unresolved_truncated_map(), 0u);
}

TEST(CrashRecovery, TornCodeMapSalvagesPrefixAndBinsTheRest) {
  core::SessionConfig config = base_config();
  support::FaultInjector fi(0x70b1);
  // Every map after the first lands torn, keeping only a small prefix.
  fi.add_rule({"jit_maps/", support::FaultKind::kTornWrite, 1, ~0ull, 1.0, 0.15});
  config.fault = &fi;
  FaultRun run = full_run(config);

  const core::AgentStats& a = run.result.agent;
  EXPECT_GT(a.maps_torn, 0u);

  assert_no_misattribution(run);
  core::Resolver& r = run.session->resolver();
  const core::CodeMapIndex* maps = r.code_maps(run.vm->pid());
  ASSERT_NE(maps, nullptr);
  EXPECT_GT(maps->truncated_count(), 0u);
  EXPECT_GT(r.unresolved_truncated_map(), 0u);
}

TEST(CrashRecovery, AgentKillStopsMapsAndBinsLaterSamples) {
  core::SessionConfig config = base_config();
  support::FaultInjector fi;
  config.fault = &fi;
  FaultRun run = make_run(config);

  // Let a few epochs complete normally, then kill the agent mid-run so the
  // remaining epochs have neither maps nor markers.
  bool more = true;
  while (more && run.session->agent()->stats().maps_written < 2)
    more = run.vm->step(20'000);
  ASSERT_GE(run.session->agent()->stats().maps_written, 2u);
  fi.schedule_kill(support::FaultComponent::kAgent, run.machine->cpu().now());
  while (more) more = run.vm->step(200'000);
  run.result = run.session->finish_run();
  EXPECT_TRUE(run.session->agent()->killed());

  const core::AgentStats& a = run.result.agent;
  EXPECT_GT(a.killed_epochs, 0u);
  // A dead agent pushes no markers, so buffer conservation uses the markers
  // the daemon actually saw.
  EXPECT_EQ(run.result.daemon.drained + run.result.samples_dropped,
            run.result.nmi_count + run.result.daemon.epoch_markers);

  assert_no_misattribution(run);
  // Samples from the unclosed final epoch have no map to resolve against.
  core::Resolver& r = run.session->resolver();
  EXPECT_GT(r.unresolved_missing_map(), 0u);
}

// --- Chaos: everything at once, deterministically -------------------------

TEST(CrashRecovery, ChaosRunCompletesWithFullLedger) {
  core::SessionConfig config = base_config();
  support::FaultInjector fi(0xc4a05);
  fi.add_rule({"samples/", support::FaultKind::kWriteError, 0, ~0ull, 0.10, 0.5});
  fi.add_rule({"samples/", support::FaultKind::kTornWrite, 0, ~0ull, 0.05, 0.6});
  fi.add_rule({"jit_maps/", support::FaultKind::kWriteError, 0, ~0ull, 0.15, 0.5});
  fi.add_rule({"jit_maps/", support::FaultKind::kTornWrite, 0, ~0ull, 0.10, 0.3});
  config.fault = &fi;
  FaultRun run = full_run(config);

  ASSERT_GT(run.result.nmi_count, 100u);
  EXPECT_GT(fi.faults_injected(), 0u);

  // Buffer ledger.
  const core::DaemonStats& d = run.result.daemon;
  EXPECT_EQ(d.drained + run.result.samples_dropped,
            run.result.nmi_count + d.epoch_markers);
  // Log ledger: verified + gaps + spill drops covers all drained samples
  // (spilled-but-unflushed remainder allows <=; final_flush retries shrink it).
  core::SampleLogReadStatus st;
  const std::uint64_t valid = read_all(run, st);
  EXPECT_LE(valid + st.missing_records + d.spill_dropped_records,
            d.drained - d.epoch_markers);
  EXPECT_GT(valid, 0u);

  // And the one inviolable rule, under the whole storm:
  assert_no_misattribution(run);
}

TEST(CrashRecovery, CollidingEpochHintsMergeInsteadOfAborting) {
  // Two map files whose names both decode to epoch 3: a corrupt leftover
  // ("map.00000003", header unreadable — salvaged empty under the name
  // hint) next to an unpadded but intact "map.3". load() used to die on
  // the second add() for the same epoch; the collision must instead merge
  // the entries and mark the epoch truncated — provenance is ambiguous,
  // so absence from the merged map proves nothing.
  os::Vfs vfs;
  vfs.write("jit_maps/9/map.00000003", "@@@ header destroyed by a torn write\n");
  core::CodeMapFile intact;
  intact.epoch = 3;
  intact.entries.push_back({0x6000, 128, "ghost.A"});
  vfs.write("jit_maps/9/map.3", intact.serialize());

  core::CodeMapIndex index;
  const auto stats = index.load(vfs, "jit_maps", 9);
  EXPECT_EQ(stats.maps_loaded, 2u);
  EXPECT_EQ(stats.maps_intact, 1u);
  EXPECT_EQ(stats.maps_truncated, 1u);
  EXPECT_EQ(index.map_count(), 1u);  // merged into one epoch-3 map
  EXPECT_TRUE(index.epoch_truncated(3));
  EXPECT_EQ(index.truncated_count(), 1u);
  EXPECT_EQ(index.total_entries(), stats.entries_loaded);

  // Entries from the intact file still resolve; the truncated marking
  // stops lookup() from treating the merged map as exhaustive.
  const auto hit = index.resolve(0x6000 + 8, 3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->symbol, "ghost.A");
  const auto miss = index.lookup(0x5000, 3);
  EXPECT_EQ(miss.miss, core::JitLookupMiss::kTruncatedMap);
}

TEST(CrashRecovery, ChaosRunIsDeterministicUnderSeed) {
  auto ledger = [] {
    core::SessionConfig config = base_config();
    support::FaultInjector fi(0x5eed5);
    fi.add_rule({"samples/", support::FaultKind::kTornWrite, 0, ~0ull, 0.08, 0.5});
    fi.add_rule({"jit_maps/", support::FaultKind::kWriteError, 0, ~0ull, 0.20, 0.5});
    config.fault = &fi;
    FaultRun run = full_run(config, 1'000'000);
    core::SampleLogReadStatus st;
    const std::uint64_t valid = read_all(run, st);
    return std::tuple(valid, st.missing_records, st.discarded_lines,
                      fi.stats().torn_writes, fi.stats().write_errors,
                      run.result.daemon.drained, run.result.agent.maps_dropped);
  };
  EXPECT_EQ(ledger(), ledger());
}

}  // namespace
}  // namespace viprof
