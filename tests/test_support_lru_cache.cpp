#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "support/lru_cache.hpp"

namespace viprof::support {
namespace {

TEST(LruCache, MissThenHit) {
  LruCache<std::string, int> cache(2);
  EXPECT_EQ(cache.get("a"), nullptr);
  cache.put("a", 1);
  ASSERT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(*cache.get("a"), 1);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  ASSERT_NE(cache.get("a"), nullptr);  // refresh a; b is now oldest
  cache.put("c", 3);
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, PutOverwritesInPlace) {
  LruCache<std::string, int> cache(2);
  cache.put("a", 1);
  cache.put("b", 2);
  cache.put("a", 10);  // overwrite, not insert: nothing evicted
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(*cache.get("a"), 10);
  ASSERT_TRUE(cache.most_recent().has_value());
  EXPECT_EQ(*cache.most_recent(), "a");
}

TEST(LruCache, ZeroCapacityClampsToOne) {
  LruCache<int, int> cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  cache.put(1, 1);
  cache.put(2, 2);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_NE(cache.get(2), nullptr);
}

TEST(LruCache, SharedPtrValueSurvivesEviction) {
  // The code-map cache pattern: a pinned shared_ptr outlives its slot.
  LruCache<int, std::shared_ptr<int>> cache(1);
  cache.put(1, std::make_shared<int>(41));
  std::shared_ptr<int> pin = *cache.get(1);
  cache.put(2, std::make_shared<int>(42));
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(*pin, 41);
}

TEST(LruCache, ClearResetsEntriesButKeepsStats) {
  LruCache<int, int> cache(4);
  cache.put(1, 1);
  (void)cache.get(1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace viprof::support
