#include <gtest/gtest.h>

#include <string>

#include "service/query.hpp"

namespace viprof::service {
namespace {

core::Resolution res(const char* image, const char* symbol, core::SampleDomain domain) {
  core::Resolution r;
  r.image = image;
  r.symbol = symbol;
  r.domain = domain;
  return r;
}

ServiceSnapshot make_snapshot() {
  ServiceSnapshot snap;
  SessionSnapshot s;
  s.id = "alpha";
  s.profile.add(hw::EventKind::kGlobalPowerEvents,
                res("anon (tgid:42 range:0x1000-0x2000)", "(unknown JIT code)",
                    core::SampleDomain::kAnon),
                7);
  s.profile.add(hw::EventKind::kBsqCacheReference,
                res("vmlinux", "sys_read", core::SampleDomain::kKernel), 3);
  s.epochs[2].add(hw::EventKind::kGlobalPowerEvents,
                  res("vmlinux", "sys_read", core::SampleDomain::kKernel), 4);
  s.epochs[5].add(hw::EventKind::kGlobalPowerEvents,
                  res("JIT.App", "app.K1.m3", core::SampleDomain::kJit), 2);
  snap.sessions.push_back(std::move(s));

  SessionSnapshot t;
  t.id = "beta";
  t.profile.add(hw::EventKind::kGlobalPowerEvents,
                res("libc-2.3.2.so", "memcpy", core::SampleDomain::kImage), 5);
  snap.sessions.push_back(std::move(t));
  return snap;
}

TEST(ServiceSnapshot, SerializeParseRoundTrip) {
  const ServiceSnapshot snap = make_snapshot();
  const std::string text = snap.serialize();
  const auto parsed = ServiceSnapshot::parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->sessions.size(), 2u);

  // Rebuilt profiles must render byte-identically — row order included.
  const std::vector<hw::EventKind> events = {hw::EventKind::kGlobalPowerEvents,
                                             hw::EventKind::kBsqCacheReference};
  EXPECT_EQ(parsed->sessions[0].profile.render(events, 10),
            snap.sessions[0].profile.render(events, 10));
  EXPECT_EQ(parsed->sessions[1].profile.render(events, 10),
            snap.sessions[1].profile.render(events, 10));
  // And re-serialising the parse is a fixed point.
  EXPECT_EQ(parsed->serialize(), text);
}

TEST(ServiceSnapshot, EpochProfilesSurviveRoundTrip) {
  const std::string text = make_snapshot().serialize();
  const auto parsed = ServiceSnapshot::parse(text);
  ASSERT_TRUE(parsed.has_value());
  const SessionSnapshot* alpha = parsed->find("alpha");
  ASSERT_NE(alpha, nullptr);
  ASSERT_EQ(alpha->epochs.size(), 2u);
  EXPECT_EQ(profile_since(*alpha, 0).total(hw::EventKind::kGlobalPowerEvents), 6u);
  EXPECT_EQ(profile_since(*alpha, 3).total(hw::EventKind::kGlobalPowerEvents), 2u);
  EXPECT_EQ(profile_since(*alpha, 6).total(hw::EventKind::kGlobalPowerEvents), 0u);
}

TEST(ServiceSnapshot, RejectsBitFlip) {
  std::string text = make_snapshot().serialize();
  // Flip one byte inside a count field (not the crc line itself).
  const std::size_t at = text.find("row ");
  ASSERT_NE(at, std::string::npos);
  text[at + 4] ^= 0x1;
  EXPECT_FALSE(ServiceSnapshot::parse(text).has_value());
}

TEST(ServiceSnapshot, RejectsTruncationAndGarbage) {
  const std::string text = make_snapshot().serialize();
  EXPECT_FALSE(ServiceSnapshot::parse(text.substr(0, text.size() / 2)).has_value());
  EXPECT_FALSE(ServiceSnapshot::parse("").has_value());
  EXPECT_FALSE(ServiceSnapshot::parse("not a snapshot\n").has_value());
  // Valid crc over an invalid body must still be rejected.
  EXPECT_FALSE(ServiceSnapshot::parse("crc 00000000\n").has_value());
}

TEST(ServiceSnapshot, FindAndMerged) {
  const ServiceSnapshot snap = make_snapshot();
  EXPECT_NE(snap.find("alpha"), nullptr);
  EXPECT_EQ(snap.find("gamma"), nullptr);
  const core::Profile merged = snap.merged();
  EXPECT_EQ(merged.total(hw::EventKind::kGlobalPowerEvents), 12u);
  EXPECT_EQ(merged.total(hw::EventKind::kBsqCacheReference), 3u);
}

TEST(RenderSessions, ListsEverySession) {
  const std::string text = render_sessions(make_snapshot());
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
}

TEST(RenderDiff, RanksMoversByAbsoluteDelta) {
  ServiceSnapshot before = make_snapshot();
  ServiceSnapshot after = make_snapshot();
  // memcpy grows by 20 in beta; alpha's JIT row disappears entirely.
  after.sessions[1].profile.add(
      hw::EventKind::kGlobalPowerEvents,
      res("libc-2.3.2.so", "memcpy", core::SampleDomain::kImage), 20);
  before.sessions[0].profile.add(
      hw::EventKind::kGlobalPowerEvents,
      res("JIT.App", "app.K9.m99", core::SampleDomain::kJit), 9);

  const std::string diff = render_diff(before, after, "",
                                       hw::EventKind::kGlobalPowerEvents, 10);
  const std::size_t memcpy_at = diff.find("memcpy");
  const std::size_t removed_at = diff.find("app.K9.m99");
  ASSERT_NE(memcpy_at, std::string::npos);
  ASSERT_NE(removed_at, std::string::npos);
  EXPECT_LT(memcpy_at, removed_at);  // +20 outranks -9
  EXPECT_NE(diff.find("+20"), std::string::npos);
  EXPECT_NE(diff.find("-9"), std::string::npos);
}

TEST(RenderDiff, SessionFilterRestrictsTheComparison) {
  ServiceSnapshot before = make_snapshot();
  ServiceSnapshot after = make_snapshot();
  after.sessions[1].profile.add(
      hw::EventKind::kGlobalPowerEvents,
      res("libc-2.3.2.so", "memcpy", core::SampleDomain::kImage), 20);
  const std::string diff =
      render_diff(before, after, "alpha", hw::EventKind::kGlobalPowerEvents, 10);
  EXPECT_EQ(diff.find("memcpy"), std::string::npos);  // beta-only change
}

}  // namespace
}  // namespace viprof::service
