#include <gtest/gtest.h>

#include "core/registration.hpp"

namespace viprof::core {
namespace {

VmRegistration make_reg(hw::Pid pid, hw::Address heap_lo, hw::Address heap_hi,
                        hw::Address boot_base = 0, std::uint64_t boot_size = 0) {
  VmRegistration reg;
  reg.pid = pid;
  reg.heap_lo = heap_lo;
  reg.heap_hi = heap_hi;
  reg.boot_base = boot_base;
  reg.boot_size = boot_size;
  return reg;
}

TEST(RegistrationTable, AddAndLookup) {
  RegistrationTable table;
  EXPECT_EQ(table.add(make_reg(7, 0x1000, 0x2000)), RegisterStatus::kOk);
  ASSERT_NE(table.find_pid(7), nullptr);
  EXPECT_EQ(table.find_pid(7)->heap_lo, 0x1000u);
  EXPECT_EQ(table.find_pid(8), nullptr);
}

TEST(RegistrationTable, RejectsDuplicatePid) {
  RegistrationTable table;
  EXPECT_EQ(table.add(make_reg(7, 0x1000, 0x2000)), RegisterStatus::kOk);
  EXPECT_EQ(table.add(make_reg(7, 0x9000, 0xa000)), RegisterStatus::kDuplicatePid);
  // The original registration survives the rejected add.
  EXPECT_EQ(table.find_pid(7)->heap_lo, 0x1000u);
  EXPECT_EQ(table.all().size(), 1u);
}

TEST(RegistrationTable, RejectsEmptyOrInvertedHeap) {
  RegistrationTable table;
  EXPECT_EQ(table.add(make_reg(1, 0x2000, 0x2000)), RegisterStatus::kBadRange);
  EXPECT_EQ(table.add(make_reg(2, 0x3000, 0x2000)), RegisterStatus::kBadRange);
  EXPECT_TRUE(table.all().empty());
}

TEST(RegistrationTable, RejectsHeapOverlappingOwnBootImage) {
  RegistrationTable table;
  // Boot image [0x4000, 0x6000) vs heap [0x5000, 0x8000): overlap.
  EXPECT_EQ(table.add(make_reg(1, 0x5000, 0x8000, 0x4000, 0x2000)),
            RegisterStatus::kOverlap);
  // Adjacent (heap starts exactly at boot end) is fine.
  EXPECT_EQ(table.add(make_reg(1, 0x6000, 0x8000, 0x4000, 0x2000)),
            RegisterStatus::kOk);
}

TEST(RegistrationTable, CrossPidRangesMayCollide) {
  // Separate address spaces: two VMs may legitimately report the same
  // virtual heap range.
  RegistrationTable table;
  EXPECT_EQ(table.add(make_reg(1, 0x1000, 0x2000)), RegisterStatus::kOk);
  EXPECT_EQ(table.add(make_reg(2, 0x1000, 0x2000)), RegisterStatus::kOk);
  EXPECT_EQ(table.all().size(), 2u);
}

TEST(RegistrationTable, RemoveThenReRegister) {
  RegistrationTable table;
  EXPECT_EQ(table.add(make_reg(7, 0x1000, 0x2000)), RegisterStatus::kOk);
  EXPECT_TRUE(table.remove(7));
  EXPECT_EQ(table.find_pid(7), nullptr);
  EXPECT_FALSE(table.remove(7));  // already gone
  // The pid is free again; the new range wins.
  EXPECT_EQ(table.add(make_reg(7, 0x9000, 0xa000)), RegisterStatus::kOk);
  EXPECT_EQ(table.find_pid(7)->heap_lo, 0x9000u);
}

TEST(RegistrationTable, VersionBumpsOnEveryMutation) {
  RegistrationTable table;
  const std::uint64_t v0 = table.version();
  table.add(make_reg(7, 0x1000, 0x2000));
  const std::uint64_t v1 = table.version();
  EXPECT_GT(v1, v0);
  // Rejected adds leave the version alone.
  table.add(make_reg(7, 0x1000, 0x2000));
  EXPECT_EQ(table.version(), v1);
  table.remove(7);
  EXPECT_GT(table.version(), v1);
  const std::uint64_t v2 = table.version();
  table.remove(7);  // no-op remove
  EXPECT_EQ(table.version(), v2);
}

TEST(RegistrationTable, ClearBumpsVersionOnlyWhenNonEmpty) {
  RegistrationTable table;
  const std::uint64_t v0 = table.version();
  table.clear();
  EXPECT_EQ(table.version(), v0);
  table.add(make_reg(1, 0x1000, 0x2000));
  const std::uint64_t v1 = table.version();
  table.clear();
  EXPECT_GT(table.version(), v1);
  EXPECT_TRUE(table.all().empty());
}

TEST(RegistrationTable, LookupsStayConsistentUnderChurn) {
  // Register/deregister churn: pid 1 is permanent, pids 2..N cycle. Every
  // observation of pid 1 must see its full, unchanged registration.
  RegistrationTable table;
  ASSERT_EQ(table.add(make_reg(1, 0x10'0000, 0x20'0000)), RegisterStatus::kOk);
  for (int round = 0; round < 200; ++round) {
    const hw::Pid pid = static_cast<hw::Pid>(2 + (round % 5));
    const std::uint64_t base = 0x100'0000ull + static_cast<std::uint64_t>(pid) * 0x10000;
    ASSERT_EQ(table.add(make_reg(pid, base, base + 0x8000)), RegisterStatus::kOk);

    const VmRegistration* fixed = table.find_pid(1);
    ASSERT_NE(fixed, nullptr);
    EXPECT_EQ(fixed->heap_lo, 0x10'0000u);
    EXPECT_EQ(fixed->heap_hi, 0x20'0000u);
    ASSERT_NE(table.find_heap(pid, base + 0x100), nullptr);

    ASSERT_TRUE(table.remove(pid));
    EXPECT_EQ(table.find_pid(pid), nullptr);
  }
  EXPECT_EQ(table.all().size(), 1u);
  // 1 initial add + 200 adds + 200 removes.
  EXPECT_EQ(table.version(), 401u);
}

}  // namespace
}  // namespace viprof::core
