#include <gtest/gtest.h>

#include <memory>

#include "core/agent.hpp"
#include "core/code_map.hpp"

namespace viprof::core {
namespace {

// Drives the agent hooks directly against a hand-built heap, isolating the
// agent's code-buffer / flag / map-write behaviour from the VM.
class AgentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    buffer_ = std::make_unique<SampleBuffer>(1024);
    agent_ = std::make_unique<VmAgent>(machine_, *buffer_, table_, config_);

    jvm::HeapConfig hc;
    hc.heap_bytes = 8ull << 20;
    hc.code_semi_bytes = 1ull << 20;
    hc.mature_code_bytes = 2ull << 20;
    os::Process& proc = machine_.spawn("jikesrvm");
    pid_ = proc.pid();
    heap_ = std::make_unique<jvm::Heap>(0x6000'0000, hc);
    boot_ = std::make_unique<jvm::BootImage>(machine_.registry(), machine_.vfs(),
                                             "RVM.map");

    jvm::VmStartInfo info;
    info.pid = pid_;
    info.heap_lo = heap_->base();
    info.heap_hi = heap_->end();
    info.boot = boot_.get();
    info.boot_base = 0x5800'0000;
    info.heap = heap_.get();
    agent_->on_vm_start(info);
  }

  jvm::MethodInfo method(jvm::MethodId id) {
    jvm::MethodInfo m;
    m.id = id;
    m.klass = "pkg.Klass" + std::to_string(id);
    m.name = "run";
    return m;
  }

  const jvm::CodeObject& compile(jvm::MethodId id) {
    const jvm::CodeObject& code = heap_->alloc_code(id, 512, jvm::OptLevel::kBaseline);
    agent_->on_method_compiled(method(id), code);
    return code;
  }

  AgentConfig config_;
  os::Machine machine_;
  RegistrationTable table_;
  std::unique_ptr<SampleBuffer> buffer_;
  std::unique_ptr<VmAgent> agent_;
  std::unique_ptr<jvm::Heap> heap_;
  std::unique_ptr<jvm::BootImage> boot_;
  hw::Pid pid_ = 0;
};

TEST_F(AgentTest, RegistersVmOnStart) {
  ASSERT_EQ(table_.all().size(), 1u);
  const VmRegistration& reg = table_.all()[0];
  EXPECT_EQ(reg.pid, pid_);
  EXPECT_EQ(reg.heap_lo, heap_->base());
  EXPECT_EQ(reg.heap_hi, heap_->end());
  EXPECT_EQ(reg.boot_map_path, "RVM.map");
  EXPECT_NE(table_.find_heap(pid_, heap_->base() + 100), nullptr);
  EXPECT_EQ(table_.find_heap(pid_, heap_->end()), nullptr);
}

TEST_F(AgentTest, AgentLibraryLoadedIntoProcess) {
  EXPECT_NE(machine_.registry().find_by_name("libviprofagent.so"), nullptr);
  ASSERT_NE(agent_->agent_context(), nullptr);
  const os::Process* proc = machine_.find_process(pid_);
  EXPECT_TRUE(
      proc->address_space().find(agent_->agent_context()->code_base).has_value());
}

TEST_F(AgentTest, EpochMapContainsCompiledBodies) {
  // Capture addresses by value: alloc_code may relocate the object table.
  const hw::Address a = compile(1).address;
  const hw::Address b = compile(2).address;
  agent_->on_epoch_end(heap_->epoch(), false);

  CodeMapIndex index;
  index.load(machine_.vfs(), config_.map_dir, pid_);
  EXPECT_EQ(index.resolve(a, 0)->symbol, "pkg.Klass1.run");
  EXPECT_EQ(index.resolve(b + 100, 0)->symbol, "pkg.Klass2.run");
}

TEST_F(AgentTest, EpochMarkerPushedOnMapWrite) {
  compile(1);
  agent_->on_epoch_end(heap_->epoch(), false);
  bool saw_marker = false;
  while (const auto s = buffer_->pop()) {
    if (s->kind == RecordKind::kEpochMarker) {
      saw_marker = true;
      EXPECT_EQ(s->epoch, 0u);
    }
  }
  EXPECT_TRUE(saw_marker);
}

TEST_F(AgentTest, PendingClearedAfterWrite) {
  compile(1);
  agent_->on_epoch_end(0, false);
  agent_->on_epoch_end(1, false);  // no new compiles: empty partial map
  const auto contents =
      machine_.vfs().read(CodeMapFile::path_for(config_.map_dir, pid_, 1));
  ASSERT_TRUE(contents.has_value());
  const auto parsed = CodeMapFile::parse(*contents);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->entries.empty());
}

TEST_F(AgentTest, MovedBodiesEnterNextMapAtNewAddress) {
  const jvm::CodeId id = compile(1).id;
  agent_->on_epoch_end(0, false);  // map 0 has the pre-move address
  const hw::Address old_address = heap_->code(id).address;

  heap_->collect([&](const jvm::CodeObject& moved, hw::Address old) {
    agent_->on_method_moved(method(moved.method), old, moved);
  });
  const hw::Address new_address = heap_->code(id).address;
  ASSERT_NE(new_address, old_address);
  agent_->on_epoch_end(1, false);  // map 1: flagged move, current address

  CodeMapIndex index;
  index.load(machine_.vfs(), config_.map_dir, pid_);
  // Samples from epoch 0 resolve at the old address; epoch 1 at the new one.
  EXPECT_EQ(index.resolve(old_address, 0)->symbol, "pkg.Klass1.run");
  EXPECT_EQ(index.resolve(new_address, 1)->symbol, "pkg.Klass1.run");
  EXPECT_FALSE(index.resolve(new_address, 0).has_value());
}

TEST_F(AgentTest, FlagModeIsCheaperThanLogMode) {
  const jvm::CodeObject& code = compile(1);
  const hw::Cycles flag_cost =
      agent_->on_method_moved(method(1), code.address, code);
  EXPECT_EQ(flag_cost, config_.move_flag_cost);

  AgentConfig log_config = config_;
  log_config.log_moves_immediately = true;
  SampleBuffer buffer2(64);
  RegistrationTable table2;
  VmAgent logger(machine_, buffer2, table2, log_config);
  jvm::VmStartInfo info;
  info.pid = pid_;
  info.heap = heap_.get();
  info.heap_lo = heap_->base();
  info.heap_hi = heap_->end();
  logger.on_vm_start(info);
  const hw::Cycles log_cost = logger.on_method_moved(method(1), code.address, code);
  EXPECT_EQ(log_cost, log_config.move_log_cost);
  EXPECT_GT(log_cost, flag_cost);
}

TEST_F(AgentTest, DuplicateEventsDedupedWithinEpoch) {
  const jvm::CodeObject& code = compile(1);
  // The same body flagged twice (e.g. probed twice) appears once per map.
  agent_->on_method_moved(method(1), code.address, code);
  agent_->on_method_moved(method(1), code.address, code);
  agent_->on_epoch_end(0, false);
  const auto parsed = CodeMapFile::parse(
      *machine_.vfs().read(CodeMapFile::path_for(config_.map_dir, pid_, 0)));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->entries.size(), 1u);
}

TEST_F(AgentTest, CostsScaleWithEntries) {
  for (jvm::MethodId id = 0; id < 10; ++id) compile(id);
  const hw::Cycles cost = agent_->on_epoch_end(0, false);
  EXPECT_EQ(cost, config_.map_write_base + 10 * config_.map_write_per_entry);
  EXPECT_EQ(agent_->stats().maps_written, 1u);
  EXPECT_EQ(agent_->stats().map_entries_written, 10u);
}

TEST_F(AgentTest, StatsAccumulate) {
  compile(1);
  compile(2);
  const jvm::CodeObject& code = heap_->code(0);
  agent_->on_method_moved(method(code.method), code.address, code);
  agent_->on_epoch_end(0, false);
  const AgentStats& stats = agent_->stats();
  EXPECT_EQ(stats.compiles_logged, 2u);
  EXPECT_EQ(stats.moves_flagged, 1u);
  EXPECT_EQ(stats.moves_logged, 0u);
  EXPECT_GT(stats.cost_cycles, 0u);
}

}  // namespace
}  // namespace viprof::core
