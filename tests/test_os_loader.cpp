#include <gtest/gtest.h>

#include "os/loader.hpp"

namespace viprof::os {
namespace {

TEST(Loader, ExecutableAtCanonicalBase) {
  ImageRegistry registry;
  Image& exec = registry.create("app", ImageKind::kExecutable, 10'000);
  Process proc(1, "app");
  Loader loader(registry);
  const Vma vma = loader.load_executable(proc, exec.id());
  EXPECT_EQ(vma.start, Loader::kExecBase);
  EXPECT_EQ(vma.size(), Loader::page_align(10'000));
}

TEST(Loader, LibrariesPackWithGuardPages) {
  ImageRegistry registry;
  Image& a = registry.create("liba.so", ImageKind::kSharedLib, 4096);
  Image& b = registry.create("libb.so", ImageKind::kSharedLib, 4096);
  Process proc(1, "app");
  Loader loader(registry);
  const Vma va = loader.load_library(proc, a.id());
  const Vma vb = loader.load_library(proc, b.id());
  EXPECT_EQ(va.start, Loader::kLibBase);
  EXPECT_GT(vb.start, va.end);  // guard page between
  EXPECT_FALSE(proc.address_space().find(va.end).has_value());
}

TEST(Loader, AnonMappingsGetFreshImages) {
  ImageRegistry registry;
  Process proc(1, "jvm");
  Loader loader(registry);
  const Vma v1 = loader.map_anon(proc, 1 << 20);
  const Vma v2 = loader.map_anon(proc, 1 << 20);
  EXPECT_NE(v1.image, v2.image);
  EXPECT_EQ(registry.get(v1.image).kind(), ImageKind::kAnon);
  EXPECT_GE(v1.start, Loader::kAnonBase);
  EXPECT_GT(v2.start, v1.end);
}

TEST(Loader, MapAtAnonSlotKeepsImageIdentity) {
  ImageRegistry registry;
  Image& boot = registry.create("RVM.code.image", ImageKind::kBootImage, 8 << 20);
  Process proc(1, "jvm");
  Loader loader(registry);
  const Vma vma = loader.map_at_anon_slot(proc, boot.id());
  EXPECT_EQ(vma.image, boot.id());
  EXPECT_EQ(proc.address_space().find(vma.start + 100)->image, boot.id());
}

TEST(Loader, PageAlign) {
  EXPECT_EQ(Loader::page_align(0), 0u);
  EXPECT_EQ(Loader::page_align(1), 4096u);
  EXPECT_EQ(Loader::page_align(4096), 4096u);
  EXPECT_EQ(Loader::page_align(4097), 8192u);
}

TEST(ImageRegistry, LookupByIdAndName) {
  ImageRegistry registry;
  Image& a = registry.create("one", ImageKind::kSharedLib, 100);
  registry.create("two", ImageKind::kSharedLib, 100);
  EXPECT_EQ(registry.get(a.id()).name(), "one");
  EXPECT_NE(registry.find_by_name("two"), nullptr);
  EXPECT_EQ(registry.find_by_name("three"), nullptr);
  EXPECT_EQ(registry.count(), 2u);
}

TEST(ImageRegistry, StrippedFlag) {
  ImageRegistry registry;
  Image& s = registry.create("libxul.so.0d", ImageKind::kSharedLib, 100, true);
  EXPECT_TRUE(s.stripped());
  Image& n = registry.create("libc.so", ImageKind::kSharedLib, 100);
  EXPECT_FALSE(n.stripped());
}

}  // namespace
}  // namespace viprof::os
