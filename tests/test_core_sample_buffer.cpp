#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/sample_buffer.hpp"

namespace viprof::core {
namespace {

Sample sample_with_pc(std::uint64_t pc) {
  Sample s;
  s.pc = pc;
  return s;
}

TEST(SampleBuffer, FifoOrder) {
  SampleBuffer buffer(8);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(buffer.push(sample_with_pc(i)));
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto s = buffer.pop();
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->pc, i);
  }
  EXPECT_FALSE(buffer.pop().has_value());
}

TEST(SampleBuffer, CapacityRoundedToPowerOfTwo) {
  SampleBuffer buffer(100);
  EXPECT_EQ(buffer.capacity(), 128u);
}

TEST(SampleBuffer, DropsWhenFull) {
  SampleBuffer buffer(4);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(buffer.push(sample_with_pc(i)));
  EXPECT_FALSE(buffer.push(sample_with_pc(99)));
  EXPECT_EQ(buffer.dropped(), 1u);
  // Oldest samples intact.
  EXPECT_EQ(buffer.pop()->pc, 0u);
}

TEST(SampleBuffer, ReusableAfterDrain) {
  SampleBuffer buffer(4);
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(buffer.push(sample_with_pc(i)));
    for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(buffer.pop().has_value());
  }
  EXPECT_EQ(buffer.pushed(), 40u);
  EXPECT_EQ(buffer.popped(), 40u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(SampleBuffer, SizeTracksBacklog) {
  SampleBuffer buffer(8);
  EXPECT_TRUE(buffer.empty());
  buffer.push(sample_with_pc(1));
  buffer.push(sample_with_pc(2));
  EXPECT_EQ(buffer.size(), 2u);
  buffer.pop();
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(SampleBuffer, MarkerRecordsSurviveRoundTrip) {
  SampleBuffer buffer(8);
  buffer.push(Sample::epoch_marker(55, 7, 12345));
  const auto s = buffer.pop();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->kind, RecordKind::kEpochMarker);
  EXPECT_EQ(s->pid, 55u);
  EXPECT_EQ(s->epoch, 7u);
  EXPECT_EQ(s->cycle, 12345u);
}

// Concurrency: one real producer thread, one real consumer thread. The
// consumer must observe exactly the produced sequence (no loss except
// explicit drops, no reordering, no duplication).
TEST(SampleBuffer, SpscThreadsPreserveSequence) {
  SampleBuffer buffer(1024);
  constexpr std::uint64_t kCount = 200'000;
  std::atomic<bool> done{false};
  std::vector<std::uint64_t> received;
  received.reserve(kCount);

  std::thread consumer([&] {
    while (true) {
      if (auto s = buffer.pop()) {
        received.push_back(s->pc);
      } else if (done.load(std::memory_order_acquire) && buffer.empty()) {
        break;
      }
    }
  });

  std::uint64_t produced = 0;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!buffer.push(sample_with_pc(i))) {
      // Full: spin until the consumer catches up (bounded in practice).
      std::this_thread::yield();
    }
    ++produced;
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  ASSERT_EQ(received.size(), produced);
  for (std::uint64_t i = 0; i < received.size(); ++i) ASSERT_EQ(received[i], i);
}

TEST(SampleBuffer, SpscWithDropsNeverReorders) {
  SampleBuffer buffer(64);
  constexpr std::uint64_t kCount = 100'000;
  std::atomic<bool> done{false};
  std::vector<std::uint64_t> received;

  std::thread consumer([&] {
    while (true) {
      if (auto s = buffer.pop()) {
        received.push_back(s->pc);
      } else if (done.load(std::memory_order_acquire) && buffer.empty()) {
        break;
      }
    }
  });

  for (std::uint64_t i = 0; i < kCount; ++i) buffer.push(sample_with_pc(i));  // may drop
  done.store(true, std::memory_order_release);
  consumer.join();

  // Received values strictly increasing (subsequence of the produced stream).
  for (std::size_t i = 1; i < received.size(); ++i)
    ASSERT_LT(received[i - 1], received[i]);
  EXPECT_EQ(received.size() + buffer.dropped(), kCount);
}

// Counter-conservation stress under real contention: a tiny ring hammered
// at full speed from both sides, repeatedly. pushed == popped + dropped +
// backlog must hold at every quiescent point. Build with
// -DVIPROF_SANITIZE=thread to run this under TSan.
TEST(SampleBuffer, SpscStressConservesCounters) {
  constexpr std::uint64_t kPerRound = 50'000;
  for (int round = 0; round < 4; ++round) {
    SampleBuffer buffer(16);  // tiny: maximal head/tail contention + drops
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> consumed{0};

    std::thread consumer([&] {
      while (true) {
        if (buffer.pop()) {
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else if (done.load(std::memory_order_acquire) && buffer.empty()) {
          break;
        }
      }
    });

    for (std::uint64_t i = 0; i < kPerRound; ++i) buffer.push(sample_with_pc(i));
    done.store(true, std::memory_order_release);
    consumer.join();

    EXPECT_EQ(buffer.pushed() + buffer.dropped(), kPerRound);
    EXPECT_EQ(buffer.popped(), consumed.load());
    EXPECT_EQ(buffer.pushed(), buffer.popped() + buffer.size());
    EXPECT_GT(buffer.dropped(), 0u);  // the tiny ring must have overflowed
  }
}

}  // namespace
}  // namespace viprof::core
