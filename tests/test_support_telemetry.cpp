#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/telemetry.hpp"

namespace viprof::support {
namespace {

// --- Registry basics --------------------------------------------------------

TEST(Telemetry, RegistrationIsIdempotent) {
  Telemetry tele;
  Counter& a = tele.counter("daemon.drained");
  Counter& b = tele.counter("daemon.drained");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);

  LatencyHistogram& h1 = tele.histogram("daemon.drain.backlog", 0, 10, 8);
  LatencyHistogram& h2 = tele.histogram("daemon.drain.backlog", 99, 99, 1);
  EXPECT_EQ(&h1, &h2);  // later bucket parameters are ignored
}

TEST(Telemetry, GaugeLastWriteWins) {
  Telemetry tele;
  Gauge& g = tele.gauge("profiler.overhead_pct");
  g.set(4.5);
  g.set(5.25);
  EXPECT_DOUBLE_EQ(g.value(), 5.25);
  EXPECT_DOUBLE_EQ(tele.snapshot().gauge("profiler.overhead_pct"), 5.25);
}

TEST(Telemetry, SnapshotCapturesAllKinds) {
  Telemetry tele;
  tele.counter("a.count").inc(7);
  tele.gauge("b.gauge").set(-1.5);
  tele.histogram("c.hist", 0, 1, 4).add(2.0);
  const TelemetrySnapshot snap = tele.snapshot();
  EXPECT_EQ(snap.counter("a.count"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauge("b.gauge"), -1.5);
  ASSERT_EQ(snap.histograms.count("c.hist"), 1u);
  EXPECT_EQ(snap.histograms.at("c.hist").count, 1u);
  EXPECT_EQ(snap.counter("missing"), 0u);  // absent names read as zero
}

// --- Registry concurrency: a daemon thread and an agent thread hammer the
// same registry; registration races and handle increments must both be safe
// and lossless (the NMI-path contract).

TEST(Telemetry, ConcurrentCountersAreLossless) {
  Telemetry tele;
  constexpr int kPerThread = 50'000;
  auto worker = [&tele](const char* own_metric) {
    Counter& own = tele.counter(own_metric);
    Counter& shared = tele.counter("shared.total");
    LatencyHistogram& hist = tele.histogram("shared.latency", 0, 100, 16);
    for (int i = 0; i < kPerThread; ++i) {
      own.inc();
      shared.inc();
      if (i % 64 == 0) hist.add(static_cast<double>(i % 1000));
    }
  };
  std::thread daemon(worker, "daemon.drained");
  std::thread agent(worker, "agent.compiles_logged");
  daemon.join();
  agent.join();

  const TelemetrySnapshot snap = tele.snapshot();
  EXPECT_EQ(snap.counter("daemon.drained"), static_cast<std::uint64_t>(kPerThread));
  EXPECT_EQ(snap.counter("agent.compiles_logged"),
            static_cast<std::uint64_t>(kPerThread));
  EXPECT_EQ(snap.counter("shared.total"), static_cast<std::uint64_t>(2 * kPerThread));
  EXPECT_EQ(snap.histograms.at("shared.latency").count,
            2u * ((kPerThread + 63) / 64));
}

// --- Histogram percentile edge cases ---------------------------------------

TEST(LatencyHistogramTest, EmptySummaryIsAllZero) {
  LatencyHistogram h(0, 10, 8);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleReportsThatSample) {
  LatencyHistogram h(0, 10, 8);
  h.add(37.0);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 37.0);
  EXPECT_DOUBLE_EQ(s.max, 37.0);
  // Every percentile of a one-sample distribution is the sample itself, not
  // a bucket midpoint.
  EXPECT_DOUBLE_EQ(s.p50, 37.0);
  EXPECT_DOUBLE_EQ(s.p90, 37.0);
  EXPECT_DOUBLE_EQ(s.p99, 37.0);
}

TEST(LatencyHistogramTest, SaturatingValuesClampToObservedMax) {
  LatencyHistogram h(0, 10, 4);  // covers [0, 40); everything else overflows
  for (int i = 0; i < 100; ++i) h.add(1e9);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  // The whole mass sits in the overflow bucket: percentiles saturate at the
  // exact max instead of inventing an in-range midpoint.
  EXPECT_DOUBLE_EQ(s.p50, 1e9);
  EXPECT_DOUBLE_EQ(s.p99, 1e9);
  EXPECT_DOUBLE_EQ(s.max, 1e9);
}

TEST(LatencyHistogramTest, PercentilesAreMonotoneAndClamped) {
  LatencyHistogram h(0, 10, 10);
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  const HistogramSummary s = h.summary();
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
  EXPECT_NEAR(s.p50, 50.0, 5.0);  // bucket-midpoint estimate stays close
  EXPECT_NEAR(s.p90, 90.0, 5.0);
}

// --- Span ring --------------------------------------------------------------

TEST(SpanTracerTest, OverflowDropsOldestWholeSpans) {
  SpanTracer tracer(4);
  for (std::uint64_t i = 0; i < 7; ++i) {
    tracer.record("span", "test", i * 100, i * 100 + 50);
  }
  EXPECT_EQ(tracer.recorded(), 7u);
  EXPECT_EQ(tracer.dropped(), 3u);  // the 3 oldest whole spans overwritten
  const std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Survivors are the newest four, oldest first, each intact begin/end pair.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].begin_cycle, (i + 3) * 100);
    EXPECT_EQ(spans[i].end_cycle, (i + 3) * 100 + 50);
  }
}

TEST(SpanTracerTest, InstantAndArgSpans) {
  SpanTracer tracer(8);
  tracer.record("jvm.gc", "gc", 100, 900, /*arg=*/3);
  tracer.instant("daemon.crash", "daemon", 500);
  const std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].arg, 3u);
  EXPECT_FALSE(spans[0].instant);
  EXPECT_TRUE(spans[1].instant);
  EXPECT_EQ(spans[1].arg, SpanTracer::kNoArg);
}

TEST(SpanTracerTest, ChromeTraceJsonIsWellFormed) {
  SpanTracer tracer(16);
  tracer.record("daemon.drain", "daemon", 3400, 6800);
  tracer.record("agent.map_write", "gc", 10'000, 20'000, /*arg=*/2);
  tracer.instant("daemon.crash", "daemon", 30'000);
  const std::string json = tracer.to_chrome_json(3400.0);
  EXPECT_TRUE(json_well_formed(json));
  // Chrome trace format essentials: the traceEvents array, complete-span
  // and instant phases, and the epoch argument.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1"), std::string::npos);  // 3400 cycles = 1 µs
}

TEST(SpanTracerTest, EmptyTraceIsWellFormed) {
  SpanTracer tracer(4);
  EXPECT_TRUE(json_well_formed(tracer.to_chrome_json(3400.0)));
}

// --- Snapshot serialisation -------------------------------------------------

TEST(TelemetrySnapshotTest, JsonRoundTrip) {
  Telemetry tele;
  tele.counter("daemon.drained").inc(123);
  tele.gauge("profiler.overhead_pct").set(4.875);
  LatencyHistogram& h = tele.histogram("resolver.walkback.depth", 0, 1, 8);
  h.add(0);
  h.add(1);
  h.add(5);
  const TelemetrySnapshot snap = tele.snapshot();

  const std::string json = snap.to_json();
  EXPECT_TRUE(json_well_formed(json));
  const auto loaded = TelemetrySnapshot::from_json(json);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->counters, snap.counters);
  EXPECT_EQ(loaded->gauges, snap.gauges);
  ASSERT_EQ(loaded->histograms.size(), 1u);
  const HistogramSummary& hs = loaded->histograms.at("resolver.walkback.depth");
  EXPECT_EQ(hs.count, 3u);
  EXPECT_DOUBLE_EQ(hs.min, 0.0);
  EXPECT_DOUBLE_EQ(hs.max, 5.0);
}

TEST(TelemetrySnapshotTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(TelemetrySnapshot::from_json("").has_value());
  EXPECT_FALSE(TelemetrySnapshot::from_json("{").has_value());
  EXPECT_FALSE(TelemetrySnapshot::from_json("[1,2]").has_value());
  EXPECT_FALSE(TelemetrySnapshot::from_json("{\"counters\": {\"x\": \"nan\"}}")
                   .has_value());
  EXPECT_FALSE(TelemetrySnapshot::from_json("{} trailing").has_value());
}

TEST(TelemetrySnapshotTest, RenderTextFiltersByPrefix) {
  Telemetry tele;
  tele.counter("daemon.drained").inc(5);
  tele.counter("agent.maps_written").inc(2);
  const TelemetrySnapshot snap = tele.snapshot();
  const std::string all = snap.render_text();
  EXPECT_NE(all.find("daemon.drained"), std::string::npos);
  EXPECT_NE(all.find("agent.maps_written"), std::string::npos);
  const std::string only_daemon = snap.render_text("daemon.");
  EXPECT_NE(only_daemon.find("daemon.drained"), std::string::npos);
  EXPECT_EQ(only_daemon.find("agent.maps_written"), std::string::npos);
}

TEST(TelemetrySnapshotTest, DiffShowsOnlyChangedMetrics) {
  Telemetry tele;
  Counter& changed = tele.counter("daemon.drained");
  tele.counter("daemon.crashes");  // stays zero
  changed.inc(10);
  const TelemetrySnapshot before = tele.snapshot();
  changed.inc(5);
  tele.gauge("profiler.overhead_pct").set(4.5);
  const TelemetrySnapshot after = tele.snapshot();

  const std::string diff = TelemetrySnapshot::render_diff(before, after);
  EXPECT_NE(diff.find("daemon.drained"), std::string::npos);
  EXPECT_NE(diff.find("+5"), std::string::npos);
  EXPECT_NE(diff.find("profiler.overhead_pct"), std::string::npos);
  EXPECT_EQ(diff.find("daemon.crashes"), std::string::npos);

  EXPECT_EQ(TelemetrySnapshot::render_diff(after, after), "(no differences)\n");
}

// --- Summary merging (the contention report's fold) -------------------------

TEST(HistogramSummaryTest, MergedFoldsCountsExactlyAndClampsPercentiles) {
  LatencyHistogram a(0, 10, 8), b(0, 10, 8);
  for (int i = 0; i < 10; ++i) a.add(5.0);
  for (int i = 0; i < 30; ++i) b.add(50.0);
  const HistogramSummary m = HistogramSummary::merged(a.summary(), b.summary());
  EXPECT_EQ(m.count, 40u);
  EXPECT_DOUBLE_EQ(m.sum, 10 * 5.0 + 30 * 50.0);
  EXPECT_DOUBLE_EQ(m.min, 5.0);   // min/max combine exactly, not estimated
  EXPECT_DOUBLE_EQ(m.max, 50.0);
  // Count-weighted percentiles: rank quality only, but always in range and
  // pulled toward the heavier side.
  EXPECT_GE(m.p50, m.min);
  EXPECT_LE(m.p99, m.max);
  EXPECT_GT(m.p50, 5.0);

  // Merging with an empty summary is the identity.
  const HistogramSummary id = HistogramSummary::merged(a.summary(), HistogramSummary{});
  EXPECT_EQ(id.count, 10u);
  EXPECT_DOUBLE_EQ(id.max, a.summary().max);
}

TEST(LatencyHistogramTest, BucketMidpointNeverEscapesObservedRange) {
  // Regression for the clamp: all mass in one wide bucket whose midpoint
  // (500) lies far outside the observed values — the estimate must clamp
  // to the exact min/max, not report the midpoint.
  LatencyHistogram h(0, 1000, 4);
  h.add(7.0);
  h.add(7.0);
  h.add(7.0);
  const HistogramSummary s = h.summary();
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.p50, 7.0);
  EXPECT_DOUBLE_EQ(s.p90, 7.0);
  EXPECT_DOUBLE_EQ(s.p99, 7.0);
}

// --- Chrome trace parse + merge ---------------------------------------------

TEST(ChromeTraceTest, ParseReadsBackEveryEvent) {
  SpanTracer tracer(16);
  tracer.record("service.batch.apply", "service", 1000, 4000, /*arg=*/7,
                /*trace=*/0xabcdef);
  tracer.instant("daemon.crash", "daemon", 9000);
  const std::optional<ChromeTrace> trace =
      parse_chrome_trace(tracer.to_chrome_json(1000.0));
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->events.size(), 2u);
  const ChromeTraceEvent& x = trace->events[0];
  EXPECT_EQ(x.name, "service.batch.apply");
  EXPECT_EQ(x.ph, "X");
  EXPECT_EQ(x.pid, 1);
  EXPECT_EQ(x.tid, this_thread_ordinal());
  EXPECT_DOUBLE_EQ(x.ts, 1.0);   // 1000 ns at 1000 cycles/µs
  EXPECT_DOUBLE_EQ(x.dur, 3.0);
  // args survive verbatim (trace tag included) for a lossless re-emit.
  EXPECT_NE(x.args_json.find("\"epoch\":7"), std::string::npos);
  EXPECT_NE(x.args_json.find("abcdef"), std::string::npos);
  EXPECT_EQ(trace->events[1].ph, "i");
}

TEST(ChromeTraceTest, ParseRejectsNonTraces) {
  EXPECT_FALSE(parse_chrome_trace("not json").has_value());
  EXPECT_FALSE(parse_chrome_trace("{}").has_value());
  EXPECT_FALSE(parse_chrome_trace("{\"traceEvents\":7}").has_value());
  const auto empty = parse_chrome_trace("{\"traceEvents\":[]}");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->events.empty());
}

TEST(ChromeTraceTest, MergeAssignsPidsNamesProcessesAndRebasesTime) {
  // Two shard rings with different time origins: the merge must give each
  // its own pid lane, name the lanes, and rebase to a common zero.
  SpanTracer early(8), late(8);
  early.record("service.batch.parse", "service", 5'000, 6'000);
  late.record("service.flush", "service", 905'000, 909'000);
  late.instant("mark", "service", 910'000);

  std::vector<std::pair<std::string, ChromeTrace>> inputs;
  inputs.emplace_back("shard-0", *parse_chrome_trace(early.to_chrome_json(1000.0)));
  inputs.emplace_back("shard-1", *parse_chrome_trace(late.to_chrome_json(1000.0)));
  const std::string merged = merge_chrome_traces(inputs);
  EXPECT_TRUE(json_well_formed(merged));

  const std::optional<ChromeTrace> out = parse_chrome_trace(merged);
  ASSERT_TRUE(out.has_value());
  // 2 process_name metadata + 3 events.
  ASSERT_EQ(out->events.size(), 5u);
  int meta = 0;
  double min_ts = 1e18;
  for (const ChromeTraceEvent& e : out->events) {
    EXPECT_FALSE(e.name.empty());
    EXPECT_GE(e.pid, 1);
    EXPECT_LE(e.pid, 2);
    if (e.ph == "M") {
      ++meta;
      EXPECT_EQ(e.name, "process_name");
      continue;
    }
    min_ts = std::min(min_ts, e.ts);
    EXPECT_GE(e.ts, 0.0);
    if (e.ph == "X") {
      EXPECT_GT(e.dur, 0.0);
    }
  }
  EXPECT_EQ(meta, 2);
  EXPECT_DOUBLE_EQ(min_ts, 0.0);  // rebased: earliest event sits at zero
  EXPECT_NE(merged.find("\"shard-0\""), std::string::npos);
  EXPECT_NE(merged.find("\"shard-1\""), std::string::npos);

  // Lane identity: shard-0's event is pid 1, shard-1's pid 2.
  for (const ChromeTraceEvent& e : out->events) {
    if (e.name == "service.batch.parse") {
      EXPECT_EQ(e.pid, 1);
    }
    if (e.name == "service.flush") {
      EXPECT_EQ(e.pid, 2);
    }
  }
}

TEST(ChromeTraceTest, MergeSkipsIncomingMetadataAndKeepsTids) {
  // A merged trace re-merged must not duplicate process_name records, and
  // per-thread lanes survive both hops.
  SpanTracer tracer(8);
  tracer.record("a", "t", 0, 1000);
  std::vector<std::pair<std::string, ChromeTrace>> first;
  first.emplace_back("inner", *parse_chrome_trace(tracer.to_chrome_json(1000.0)));
  const std::string once = merge_chrome_traces(first);

  std::vector<std::pair<std::string, ChromeTrace>> second;
  second.emplace_back("outer", *parse_chrome_trace(once));
  const std::optional<ChromeTrace> out = parse_chrome_trace(merge_chrome_traces(second));
  ASSERT_TRUE(out.has_value());
  int meta = 0;
  for (const ChromeTraceEvent& e : out->events)
    if (e.ph == "M") ++meta;
  EXPECT_EQ(meta, 1);  // one fresh "outer" label, the stale one dropped
  ASSERT_EQ(out->events.size(), 2u);
  EXPECT_EQ(out->events[1].tid, this_thread_ordinal());
}

TEST(TelemetrySnapshotTest, SnapshotSurfacesSpanRingDrops) {
  Telemetry tele(4);
  for (int i = 0; i < 7; ++i) tele.spans().record("s", "t", i, i + 1);
  const TelemetrySnapshot snap = tele.snapshot();
  EXPECT_EQ(snap.counter("telemetry.spans.recorded"), 7u);
  EXPECT_EQ(snap.counter("telemetry.spans.dropped"), 3u);
}

}  // namespace
}  // namespace viprof::support
