// Property test for the flattened epoch index (DESIGN.md §9): on randomized
// map populations — gaps, truncation, churn, overlapping and degenerate
// entries — the O(log n) flattened resolve()/lookup() must agree exactly
// with the original per-query backward walk, kept as resolve_walkback() /
// lookup_walkback().
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/code_map.hpp"
#include "support/rng.hpp"

namespace viprof::core {
namespace {

bool same_hit(const std::optional<CodeMapIndex::Hit>& a,
              const std::optional<CodeMapIndex::Hit>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return a->symbol == b->symbol && a->found_in_epoch == b->found_in_epoch &&
         a->maps_searched == b->maps_searched && a->address == b->address &&
         a->size == b->size;
}

std::string describe(const std::optional<CodeMapIndex::Hit>& h) {
  if (!h.has_value()) return "(miss)";
  return h->symbol + " @" + std::to_string(h->address) + "+" +
         std::to_string(h->size) + " epoch=" + std::to_string(h->found_in_epoch) +
         " searched=" + std::to_string(h->maps_searched);
}

// One randomized index: epochs in [0, max_epochs) each present with ~75%
// probability, ~20% of present maps truncated, entries drawn from a small
// address window so placements collide and shadow each other across epochs.
CodeMapIndex random_index(support::Xoshiro256& rng, std::uint64_t max_epochs) {
  CodeMapIndex index;
  const hw::Address base = 0x7000'0000;
  for (std::uint64_t e = 0; e < max_epochs; ++e) {
    if (rng.below(100) < 25) continue;  // missing epoch (lost map write)
    CodeMapFile file;
    file.epoch = e;
    file.truncated = rng.below(100) < 20;
    const std::uint64_t entries = 1 + rng.below(24);
    for (std::uint64_t i = 0; i < entries; ++i) {
      CodeMapEntry entry;
      entry.address = base + rng.below(96) * 0x100;
      // Mix of sizes: empty bodies, small bodies, bodies overlapping the
      // next slot — the walk resolves overlaps by sorted-predecessor probe
      // and the flat view must reproduce that choice.
      const std::uint64_t kind = rng.below(10);
      if (kind == 0) entry.size = 0;
      else if (kind < 8) entry.size = 0x40 + rng.below(0x100);
      else entry.size = 0x200 + rng.below(0x400);
      entry.symbol = "e" + std::to_string(e) + "_i" + std::to_string(i);
      file.entries.push_back(std::move(entry));
    }
    // Occasionally an entry at the very top of the address space, where
    // address + size can wrap: such an entry must cover nothing.
    if (rng.below(100) < 10) {
      file.entries.push_back({~0ull - rng.below(0x40), 0x100, "wrap_e" + std::to_string(e)});
    }
    index.add(std::move(file));
  }
  return index;
}

class FlatIndexPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatIndexPropertyTest, FlattenedQueriesMatchBackwardWalk) {
  support::Xoshiro256 rng(GetParam());
  const std::uint64_t max_epochs = 2 + rng.below(14);
  CodeMapIndex index = random_index(rng, max_epochs);
  if (index.map_count() == 0) {
    // Degenerate draw: both paths must report kNoMaps.
    const auto lk = index.lookup(0x7000'0000, 3);
    EXPECT_EQ(lk.miss, JitLookupMiss::kNoMaps);
    EXPECT_EQ(index.lookup_walkback(0x7000'0000, 3).miss, JitLookupMiss::kNoMaps);
    return;
  }

  const hw::Address base = 0x7000'0000;
  for (int probe = 0; probe < 2000; ++probe) {
    // PCs concentrated on the populated window plus occasional outliers
    // (below, far above, near the wrap entries).
    hw::Address pc;
    const std::uint64_t where = rng.below(20);
    if (where == 0) pc = base - 1 - rng.below(0x1000);
    else if (where == 1) pc = base + 0x10'0000 + rng.below(0x1000);
    else if (where == 2) pc = ~0ull - rng.below(0x80);
    else pc = base + rng.below(96 * 0x100 + 0x400);
    // Query epochs: in range, at the edges, and above the newest map.
    const std::uint64_t epoch = rng.below(max_epochs + 3);

    const auto flat = index.resolve(pc, epoch);
    const auto walk = index.resolve_walkback(pc, epoch);
    ASSERT_TRUE(same_hit(flat, walk))
        << "resolve pc=" << pc << " epoch=" << epoch << " seed=" << GetParam()
        << "\n  flat: " << describe(flat) << "\n  walk: " << describe(walk);

    const auto flat_lk = index.lookup(pc, epoch);
    const auto walk_lk = index.lookup_walkback(pc, epoch);
    ASSERT_EQ(flat_lk.miss, walk_lk.miss)
        << "lookup pc=" << pc << " epoch=" << epoch << " seed=" << GetParam()
        << " flat=" << to_string(flat_lk.miss) << " walk=" << to_string(walk_lk.miss);
    ASSERT_TRUE(same_hit(flat_lk.hit, walk_lk.hit))
        << "lookup pc=" << pc << " epoch=" << epoch << " seed=" << GetParam()
        << "\n  flat: " << describe(flat_lk.hit)
        << "\n  walk: " << describe(walk_lk.hit);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatIndexPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 24));

TEST(FlatIndexTest, AddAfterPrepareInvalidatesTheFlattenedView) {
  CodeMapIndex index;
  CodeMapFile f0;
  f0.epoch = 0;
  f0.entries.push_back({0x1000, 0x100, "old"});
  index.add(std::move(f0));
  EXPECT_EQ(index.resolve(0x1040, 5)->symbol, "old");  // builds the flat view

  CodeMapFile f3;
  f3.epoch = 3;
  f3.entries.push_back({0x1000, 0x100, "new"});
  index.add(std::move(f3));  // must invalidate and rebuild on next query
  EXPECT_EQ(index.resolve(0x1040, 5)->symbol, "new");
  EXPECT_EQ(index.resolve(0x1040, 2)->symbol, "old");
}

TEST(FlatIndexTest, MovedIndexKeepsAnswering) {
  CodeMapIndex index;
  CodeMapFile f;
  f.epoch = 2;
  f.entries.push_back({0x2000, 0x80, "sym"});
  index.add(std::move(f));
  index.prepare();

  CodeMapIndex moved(std::move(index));
  ASSERT_TRUE(moved.resolve(0x2010, 2).has_value());
  EXPECT_EQ(moved.resolve(0x2010, 2)->symbol, "sym");

  CodeMapIndex assigned;
  assigned = std::move(moved);
  ASSERT_TRUE(assigned.resolve(0x2010, 2).has_value());
  EXPECT_EQ(assigned.resolve(0x2010, 2)->symbol, "sym");
}

}  // namespace
}  // namespace viprof::core
