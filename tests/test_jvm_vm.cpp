#include <gtest/gtest.h>

#include <vector>

#include "jvm/vm.hpp"
#include "workloads/generator.hpp"

namespace viprof::jvm {
namespace {

workloads::Workload tiny_workload(std::uint64_t ops = 2'000'000) {
  workloads::GeneratorOptions opt;
  opt.name = "vmtest";
  opt.seed = 21;
  opt.methods = 12;
  opt.total_app_ops = ops;
  opt.alloc_intensity = 0.6;
  opt.nursery_bytes = 512 * 1024;
  return workloads::make_synthetic(opt);
}

TEST(Vm, SetupLoadsImagesAndHeap) {
  os::Machine machine;
  workloads::Workload w = tiny_workload();
  Vm vm(machine, w.vm);
  vm.setup(w.program);
  EXPECT_NE(machine.registry().find_by_name("jikesrvm"), nullptr);
  EXPECT_NE(machine.registry().find_by_name("libc-2.3.2.so"), nullptr);
  EXPECT_NE(machine.registry().find_by_name("RVM.code.image"), nullptr);
  EXPECT_GT(vm.heap().data_bytes(), 0u);
  EXPECT_TRUE(machine.vfs().exists("RVM.map"));
  // The heap anon mapping exists in the process space.
  const os::Process* proc = machine.find_process(vm.pid());
  ASSERT_NE(proc, nullptr);
  EXPECT_TRUE(proc->address_space().find(vm.heap().base()).has_value());
}

TEST(Vm, RunExecutesRequestedOps) {
  os::Machine machine;
  workloads::Workload w = tiny_workload(1'500'000);
  Vm vm(machine, w.vm);
  vm.setup(w.program);
  const RunStats stats = vm.run();
  EXPECT_GE(stats.app_ops, 1'500'000u);
  EXPECT_GT(stats.invocations, 0u);
  EXPECT_GT(stats.cycles, stats.app_ops);  // cpi > 1 with misses
  EXPECT_EQ(machine.cpu().now(), stats.cycles);  // run started at cycle 0
}

TEST(Vm, MethodsBaselineCompiledOnFirstUse) {
  os::Machine machine;
  workloads::Workload w = tiny_workload();
  Vm vm(machine, w.vm);
  vm.setup(w.program);
  const RunStats stats = vm.run();
  EXPECT_GT(stats.compiles[0], 0u);
  EXPECT_LE(stats.compiles[0], w.program.methods.size());
}

TEST(Vm, HotMethodsGetRecompiled) {
  os::Machine machine;
  workloads::Workload w = tiny_workload(6'000'000);
  w.vm.recompile = RecompilePolicy{50'000, 200'000, 1'000'000};
  Vm vm(machine, w.vm);
  vm.setup(w.program);
  const RunStats stats = vm.run();
  EXPECT_GT(stats.compiles[1] + stats.compiles[2] + stats.compiles[3], 0u);
}

TEST(Vm, AllocationDrivesCollections) {
  os::Machine machine;
  workloads::Workload w = tiny_workload(3'000'000);
  Vm vm(machine, w.vm);
  vm.setup(w.program);
  const RunStats stats = vm.run();
  EXPECT_GT(stats.collections, 0u);
  EXPECT_EQ(stats.collections, vm.heap().epoch());
}

struct RecordingListener : VmEventListener {
  std::vector<std::string> events;
  hw::Cycles on_vm_start(const VmStartInfo& info) override {
    EXPECT_NE(info.heap, nullptr);
    EXPECT_LT(info.heap_lo, info.heap_hi);
    events.push_back("start");
    return 0;
  }
  hw::Cycles on_method_compiled(const MethodInfo&, const CodeObject&) override {
    events.push_back("compile");
    return 0;
  }
  hw::Cycles on_method_moved(const MethodInfo&, hw::Address, const CodeObject&) override {
    events.push_back("move");
    return 0;
  }
  hw::Cycles on_epoch_end(std::uint64_t, bool final_epoch) override {
    events.push_back(final_epoch ? "final-epoch" : "epoch");
    return 0;
  }
  hw::Cycles on_gc_end(std::uint64_t) override {
    events.push_back("gc-end");
    return 0;
  }
  hw::Cycles on_vm_shutdown() override {
    events.push_back("shutdown");
    return 0;
  }
};

TEST(Vm, ListenerSeesLifecycleInOrder) {
  os::Machine machine;
  workloads::Workload w = tiny_workload(2'000'000);
  Vm vm(machine, w.vm);
  RecordingListener listener;
  vm.add_listener(&listener);
  vm.setup(w.program);
  vm.run();
  ASSERT_FALSE(listener.events.empty());
  EXPECT_EQ(listener.events.front(), "start");
  // Epoch-end precedes each gc-end; final epoch then shutdown at the end.
  EXPECT_EQ(listener.events.back(), "shutdown");
  EXPECT_EQ(listener.events[listener.events.size() - 2], "final-epoch");
  bool saw_epoch = false;
  for (std::size_t i = 0; i < listener.events.size(); ++i) {
    if (listener.events[i] == "gc-end") {
      ASSERT_TRUE(saw_epoch);  // some "epoch" must precede the first gc-end
    }
    if (listener.events[i] == "epoch") saw_epoch = true;
  }
}

TEST(Vm, ListenerCostChargedToClock) {
  workloads::Workload w = tiny_workload(500'000);

  os::Machine plain_machine;
  Vm plain(plain_machine, w.vm);
  plain.setup(w.program);
  const hw::Cycles base = plain.run().cycles;

  struct CostlyListener : VmEventListener {
    hw::Cycles on_method_compiled(const MethodInfo&, const CodeObject&) override {
      return 100'000;
    }
  } costly;
  os::Machine machine;
  Vm vm(machine, w.vm);
  vm.add_listener(&costly);
  vm.setup(w.program);
  const RunStats stats = vm.run();
  EXPECT_GT(stats.agent_cycles, 0u);
  EXPECT_GT(stats.cycles, base);
}

TEST(Vm, ForceGcMovesCode) {
  os::Machine machine;
  workloads::Workload w = tiny_workload();
  Vm vm(machine, w.vm);
  vm.setup(w.program);
  vm.force_compile(0, OptLevel::kBaseline);
  const CodeId code = vm.current_code(0);
  const hw::Address before = vm.heap().code(code).address;
  vm.force_gc();
  EXPECT_NE(vm.heap().code(code).address, before);
}

TEST(Vm, OutcallsExecuteNativeAndKernelOps) {
  os::Machine machine;
  workloads::GeneratorOptions opt;
  opt.name = "outcalls";
  opt.methods = 4;
  opt.total_app_ops = 1'000'000;
  opt.native_frac = 0.2;
  opt.syscall_frac = 0.1;
  workloads::Workload w = workloads::make_synthetic(opt);
  Vm vm(machine, w.vm);
  vm.setup(w.program);
  const RunStats stats = vm.run();
  EXPECT_GT(stats.native_ops, 0u);
  EXPECT_GT(stats.kernel_ops, 0u);
}

TEST(Vm, GlueFractionProducesVmOps) {
  os::Machine machine;
  workloads::GeneratorOptions opt;
  opt.name = "glue";
  opt.methods = 4;
  opt.total_app_ops = 2'000'000;
  opt.vm_glue_frac = 0.05;
  workloads::Workload w = workloads::make_synthetic(opt);
  Vm vm(machine, w.vm);
  vm.setup(w.program);
  const RunStats stats = vm.run();
  EXPECT_GT(stats.vm_ops, 0u);
}

TEST(Vm, DeterministicForIdenticalSeeds) {
  workloads::Workload w = tiny_workload(1'000'000);
  os::MachineConfig mcfg;
  mcfg.seed = 99;
  os::Machine m1(mcfg), m2(mcfg);
  Vm v1(m1, w.vm), v2(m2, w.vm);
  v1.setup(w.program);
  v2.setup(w.program);
  EXPECT_EQ(v1.run().cycles, v2.run().cycles);
}

TEST(Vm, BackgroundServiceStealsCpu) {
  struct FixedService : os::BackgroundService {
    int remaining = 5;
    std::optional<os::WorkChunk> next_work(hw::Cycles) override {
      if (remaining == 0) return std::nullopt;
      --remaining;
      os::WorkChunk chunk;
      chunk.context = hw::ExecContext{0x9000, 0x100, hw::CpuMode::kUser, 99, 0};
      chunk.cycles = 50'000;
      chunk.ops = 10'000;
      return chunk;
    }
  };
  workloads::Workload w = tiny_workload(300'000);
  os::Machine machine;
  Vm vm(machine, w.vm);
  FixedService service;
  vm.add_service(&service);
  vm.setup(w.program);
  const RunStats stats = vm.run();
  EXPECT_EQ(service.remaining, 0);
  EXPECT_GE(stats.service_cycles, 5u * 50'000u);
}

}  // namespace
}  // namespace viprof::jvm
