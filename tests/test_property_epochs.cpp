// Property test for the paper's core correctness claim: with partial,
// epoch-keyed code maps and backward search, every sample taken at any
// point of a compile / recompile / GC-move interleaving is attributed to
// the method whose body occupied that address *at sample time*.
//
// A randomized driver interleaves compiles, recompiles, collections and
// samples, maintaining a ground-truth oracle of (pc, epoch) -> method; the
// offline pipeline (agent-written maps + CodeMapIndex backward search) must
// agree with the oracle on every recorded sample.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "core/code_map.hpp"
#include "support/rng.hpp"

namespace viprof::core {
namespace {

// Param: (seed, full_maps). Both the paper's partial maps and the ABL2
// full-map mode must satisfy the attribution property.
class EpochPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(EpochPropertyTest, BackwardSearchMatchesGroundTruth) {
  const std::uint64_t seed = std::get<0>(GetParam());
  const bool full_maps = std::get<1>(GetParam());
  support::Xoshiro256 rng(seed);

  os::Machine machine;
  os::Process& proc = machine.spawn("jikesrvm");
  RegistrationTable table;
  SampleBuffer buffer(1 << 16);
  AgentConfig agent_config;
  agent_config.write_full_maps = full_maps;
  VmAgent agent(machine, buffer, table, agent_config);

  jvm::HeapConfig hc;
  hc.heap_bytes = 16ull << 20;
  hc.code_semi_bytes = 2ull << 20;
  hc.mature_code_bytes = 4ull << 20;
  hc.mature_age = 2 + static_cast<std::uint32_t>(seed % 4);  // vary promotion
  jvm::Heap heap(0x6000'0000, hc);

  jvm::VmStartInfo info;
  info.pid = proc.pid();
  info.heap_lo = heap.base();
  info.heap_hi = heap.end();
  info.heap = &heap;
  agent.on_vm_start(info);

  auto method_info = [](jvm::MethodId id) {
    jvm::MethodInfo m;
    m.id = id;
    m.klass = "prop.K" + std::to_string(id);
    m.name = "m";
    return m;
  };

  struct RecordedSample {
    hw::Address pc;
    std::uint64_t epoch;
    std::string expected;
  };
  std::vector<RecordedSample> samples;
  std::vector<jvm::CodeId> live;                    // current body per method
  std::vector<jvm::MethodId> method_of_live;        // parallel array

  jvm::MethodId next_method = 0;
  const int kActions = 400;
  for (int step = 0; step < kActions; ++step) {
    const std::uint64_t dice = rng.below(100);
    if (dice < 25 || live.empty()) {
      // Compile a brand-new method.
      const jvm::MethodId id = next_method++;
      const std::uint64_t size = 64 + rng.below(2048);
      const jvm::CodeObject& code = heap.alloc_code(id, size, jvm::OptLevel::kBaseline);
      agent.on_method_compiled(method_info(id), code);
      live.push_back(code.id);
      method_of_live.push_back(id);
    } else if (dice < 40) {
      // Recompile an existing method at a higher tier: old body dies.
      const std::size_t pick = rng.below(live.size());
      const jvm::MethodId id = method_of_live[pick];
      heap.kill_code(live[pick]);
      const jvm::CodeObject& code =
          heap.alloc_code(id, 64 + rng.below(4096), jvm::OptLevel::kOpt1);
      agent.on_method_compiled(method_info(id), code);
      live[pick] = code.id;
    } else if (dice < 55) {
      // Collection: close the epoch (map write), then move code.
      agent.on_epoch_end(heap.epoch(), false);
      heap.collect([&](const jvm::CodeObject& moved, hw::Address old_address) {
        agent.on_method_moved(method_info(moved.method), old_address, moved);
      });
    } else {
      // Take a sample inside a random live body.
      const std::size_t pick = rng.below(live.size());
      const jvm::CodeObject& body = heap.code(live[pick]);
      const hw::Address pc = body.address + rng.below(body.size);
      samples.push_back(
          {pc, heap.epoch(), method_info(method_of_live[pick]).qualified_name()});
    }
  }
  // Final epoch map at shutdown.
  agent.on_epoch_end(heap.epoch(), true);

  ASSERT_FALSE(samples.empty());

  CodeMapIndex index;
  index.load(machine.vfs(), agent_config.map_dir, proc.pid());
  ASSERT_GT(index.map_count(), 0u);

  std::uint64_t backward_hits = 0;
  for (const RecordedSample& s : samples) {
    const auto hit = index.resolve(s.pc, s.epoch);
    ASSERT_TRUE(hit.has_value())
        << "pc=" << s.pc << " epoch=" << s.epoch << " seed=" << seed;
    EXPECT_EQ(hit->symbol, s.expected)
        << "pc=" << s.pc << " epoch=" << s.epoch << " seed=" << seed;
    if (hit->maps_searched > 1) ++backward_hits;
  }
  // Partial maps must actually exercise the backward search. (Full maps
  // mostly resolve in the sample's own epoch, but a mature body superseded
  // mid-epoch still legitimately needs the walk — attribution, asserted
  // above, is what matters in both modes.)
  if (!full_maps && index.map_count() > 3) {
    EXPECT_GT(backward_hits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpochPropertyTest,
                         ::testing::Combine(::testing::Range<std::uint64_t>(0, 12),
                                            ::testing::Bool()));

}  // namespace
}  // namespace viprof::core
