#include <gtest/gtest.h>

#include "jvm/vm.hpp"
#include "vertical/vertical_profiler.hpp"
#include "workloads/generator.hpp"

namespace viprof::vertical {
namespace {

workloads::Workload workload(std::uint64_t ops = 2'000'000) {
  workloads::GeneratorOptions opt;
  opt.name = "vert";
  opt.seed = 13;
  opt.methods = 8;
  opt.total_app_ops = ops;
  opt.alloc_intensity = 0.5;
  opt.nursery_bytes = 512 * 1024;
  return workloads::make_synthetic(opt);
}

TEST(VerticalProfiler, RecordsInvocationsAndCompiles) {
  os::Machine machine;
  const workloads::Workload w = workload();
  jvm::Vm vm(machine, w.vm);
  VerticalProfiler profiler(machine);
  vm.add_listener(&profiler);
  vm.setup(w.program);
  const jvm::RunStats stats = vm.run();
  EXPECT_EQ(profiler.stats().invocations_recorded, stats.invocations);
  EXPECT_GT(profiler.stats().compiles_recorded, 0u);
  EXPECT_EQ(profiler.stats().gcs_recorded, stats.collections);
}

TEST(VerticalProfiler, ChargesOverhead) {
  const workloads::Workload w = workload();
  os::MachineConfig mcfg;
  mcfg.seed = 7;

  os::Machine base_machine(mcfg);
  jvm::Vm base_vm(base_machine, w.vm);
  base_vm.setup(w.program);
  const hw::Cycles base = base_vm.run().cycles;

  os::Machine prof_machine(mcfg);
  jvm::Vm prof_vm(prof_machine, w.vm);
  VerticalProfiler profiler(prof_machine);
  prof_vm.add_listener(&profiler);
  prof_vm.setup(w.program);
  const hw::Cycles profiled = prof_vm.run().cycles;

  EXPECT_GT(profiled, base);
  EXPECT_GT(profiler.stats().cost_cycles, 0u);
  // Rough band: instrumentation should cost whole percents, not 10x.
  EXPECT_LT(static_cast<double>(profiled) / base, 1.5);
}

TEST(VerticalProfiler, WritesTraceToVfs) {
  os::Machine machine;
  const workloads::Workload w = workload();
  jvm::Vm vm(machine, w.vm);
  VerticalProfiler profiler(machine);
  vm.add_listener(&profiler);
  vm.setup(w.program);
  vm.run();
  const auto trace = machine.vfs().read("vertical/trace.log");
  ASSERT_TRUE(trace.has_value());
  EXPECT_NE(trace->find("C synthetic.vert"), std::string::npos);  // compile records
  EXPECT_NE(trace->find("G "), std::string::npos);                // gc records
}

TEST(VerticalProfiler, ReportRanksMethodsByOps) {
  os::Machine machine;
  const workloads::Workload w = workload();
  jvm::Vm vm(machine, w.vm);
  VerticalProfiler profiler(machine);
  vm.add_listener(&profiler);
  vm.setup(w.program);
  vm.run();
  const std::string report = profiler.report(5);
  EXPECT_NE(report.find("Ops %"), std::string::npos);
  EXPECT_NE(report.find("synthetic.vert"), std::string::npos);
}

TEST(VerticalProfiler, NoOsVisibility) {
  // Vertical profiling sees VM/app events only: its report never contains
  // kernel or native-library names (the limitation the paper stresses).
  os::Machine machine;
  workloads::GeneratorOptions opt;
  opt.name = "vertos";
  opt.methods = 4;
  opt.total_app_ops = 1'000'000;
  opt.native_frac = 0.2;
  opt.syscall_frac = 0.1;
  const workloads::Workload w = workloads::make_synthetic(opt);
  jvm::Vm vm(machine, w.vm);
  VerticalProfiler profiler(machine);
  vm.add_listener(&profiler);
  vm.setup(w.program);
  vm.run();
  const std::string report = profiler.report(100);
  EXPECT_EQ(report.find("memset"), std::string::npos);
  EXPECT_EQ(report.find("vmlinux"), std::string::npos);
  EXPECT_EQ(report.find("sys_write"), std::string::npos);
}

}  // namespace
}  // namespace viprof::vertical
