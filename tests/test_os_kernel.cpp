#include <gtest/gtest.h>

#include "os/kernel.hpp"

namespace viprof::os {
namespace {

TEST(Kernel, MappedAtCanonicalBase) {
  ImageRegistry registry;
  Kernel kernel(registry);
  EXPECT_EQ(kernel.base(), Loader::kKernelBase);
  EXPECT_GT(kernel.size(), 0u);
  EXPECT_TRUE(kernel.contains(kernel.base()));
  EXPECT_TRUE(kernel.contains(kernel.base() + kernel.size() - 1));
  EXPECT_FALSE(kernel.contains(kernel.base() + kernel.size()));
  EXPECT_FALSE(kernel.contains(0x1000));
}

TEST(Kernel, StandardRoutinesExist) {
  ImageRegistry registry;
  Kernel kernel(registry);
  for (const char* name : {"schedule", "sys_read", "sys_write", "sys_futex",
                           "do_page_fault", "oprofile_nmi_handler",
                           "oprofile_buffer_sync", "sys_gettimeofday"}) {
    const KernelRoutine& r = kernel.routine(name);
    EXPECT_EQ(r.name, name);
    EXPECT_GT(r.size, 0u);
    EXPECT_TRUE(kernel.contains(r.base));
  }
}

TEST(Kernel, ContextIsKernelMode) {
  ImageRegistry registry;
  Kernel kernel(registry);
  const hw::ExecContext ctx = kernel.context("sys_write", 42);
  EXPECT_EQ(ctx.mode, hw::CpuMode::kKernel);
  EXPECT_EQ(ctx.pid, 42u);
  EXPECT_TRUE(kernel.contains(ctx.code_base));
}

TEST(Kernel, SymbolsResolveThroughImage) {
  ImageRegistry registry;
  Kernel kernel(registry);
  const Image& img = registry.get(kernel.image());
  EXPECT_EQ(img.name(), "vmlinux");
  EXPECT_EQ(img.kind(), ImageKind::kKernel);
  const KernelRoutine& r = kernel.routine("do_page_fault");
  const auto sym = img.symbols().find(kernel.offset_of(r.base + 10));
  ASSERT_TRUE(sym.has_value());
  EXPECT_EQ(sym->name, "do_page_fault");
}

TEST(Kernel, RoutinesDoNotOverlap) {
  ImageRegistry registry;
  Kernel kernel(registry);
  const Image& img = registry.get(kernel.image());
  // ordered() checks the non-overlap invariant internally.
  EXPECT_GE(img.symbols().ordered().size(), 10u);
}

TEST(KernelDeathTest, UnknownRoutineAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ImageRegistry registry;
  Kernel kernel(registry);
  EXPECT_DEATH((void)kernel.routine("sys_does_not_exist"), "VIPROF_CHECK");
}

}  // namespace
}  // namespace viprof::os
