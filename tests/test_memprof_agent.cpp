// The memory-profiling agent against a real VM run: one partial object map
// per epoch written just before the GC that closes it, deaths recorded in
// the following epoch's map, hot survivors changing address across maps
// (the moving-GC property the whole subsystem exists for), and exact
// agreement between the agent's own ack counters and what a reader finds
// in the map tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/viprof.hpp"
#include "memprof/agent.hpp"
#include "memprof/object_map.hpp"
#include "workloads/generator.hpp"

namespace viprof::memprof {
namespace {

workloads::Workload small_memprof_workload(std::uint64_t seed = 0x3e3) {
  workloads::GeneratorOptions opt;
  opt.name = "memtest";
  opt.seed = seed;
  opt.methods = 24;
  opt.alloc_intensity = 1.0;
  opt.nursery_bytes = 256 * 1024;  // small nursery: several collections
  opt.total_app_ops = 2'500'000;
  workloads::Workload w = workloads::make_synthetic(opt);
  for (jvm::MethodInfo& m : w.program.methods) {
    m.alloc_object_bytes = 96 + 32 * (m.id % 5);
    m.alloc_object_lifetime = m.id % 4;  // 1-3: survive (and move); 0: die young
  }
  w.vm.heap.track_objects = true;
  return w;
}

struct AgentRun {
  std::unique_ptr<os::Machine> machine;
  std::unique_ptr<jvm::Vm> vm;
  std::unique_ptr<core::ProfilingSession> session;
  std::unique_ptr<MemProfAgent> agent;
  core::SessionResult result;
};

AgentRun run_with_agent(const MemProfConfig& mconfig = {}) {
  AgentRun run;
  os::MachineConfig mcfg;
  mcfg.seed = 0x3e3f;
  run.machine = std::make_unique<os::Machine>(mcfg);
  const workloads::Workload w = small_memprof_workload();
  run.vm = std::make_unique<jvm::Vm>(*run.machine, w.vm);
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.counters = {{hw::EventKind::kGlobalPowerEvents, 90'000, true},
                     {hw::EventKind::kObjDmiss, 2'000, true}};
  config.agent.obj_map_dir = "obj_maps";
  run.session = std::make_unique<core::ProfilingSession>(*run.machine, *run.vm, config);
  run.agent = std::make_unique<MemProfAgent>(*run.machine, mconfig);
  run.session->attach();
  run.vm->add_listener(run.agent.get());
  run.vm->setup(w.program);
  run.result = run.session->run();
  return run;
}

/// Every intact omap under obj_maps/<pid>/, parsed, keyed by epoch.
std::map<std::uint64_t, ObjectMapFile> read_maps(const os::Vfs& vfs, hw::Pid pid) {
  std::map<std::uint64_t, ObjectMapFile> out;
  for (const std::string& path : vfs.list("obj_maps/" + std::to_string(pid) + "/")) {
    const auto contents = vfs.read(path);
    if (!contents) continue;
    const auto parsed = ObjectMapFile::parse(*contents);
    EXPECT_TRUE(parsed.has_value()) << path << " failed strict parse";
    if (parsed) out.emplace(parsed->epoch, *parsed);
  }
  return out;
}

TEST(MemProfAgent, WritesOneIntactMapPerEpochAndAcksExactly) {
  AgentRun run = run_with_agent();
  ASSERT_GE(run.result.vm.collections, 2u) << "workload must GC several times";

  const hw::Pid pid = run.session->registrations().all().at(0).pid;
  const std::map<std::uint64_t, ObjectMapFile> maps =
      read_maps(run.machine->vfs(), pid);
  const MemProfStats& stats = run.agent->stats();

  // One map per epoch, epochs contiguous from 0 — the same schedule the VM
  // agent follows for code maps.
  ASSERT_EQ(maps.size(), stats.maps_written);
  std::uint64_t expect_epoch = 0;
  for (const auto& [epoch, file] : maps) EXPECT_EQ(epoch, expect_epoch++);

  // The agent's acks equal what a reader finds, line for line: that
  // equality is the baseline the fsck loss accounting is measured against.
  std::uint64_t objects = 0, deaths = 0;
  for (const auto& [epoch, file] : maps) {
    objects += file.objects.size();
    deaths += file.dead.size();
    EXPECT_FALSE(file.sites.empty()) << "map " << epoch << " lost its dictionary";
  }
  EXPECT_EQ(objects, stats.map_entries_written);
  EXPECT_EQ(deaths, stats.map_deaths_written);
  // Healthy run: every allocation and every move flag lands in exactly one
  // map, and every flagged death is recorded once.
  EXPECT_EQ(stats.map_entries_written, stats.allocs_logged + stats.moves_flagged);
  EXPECT_EQ(stats.map_deaths_written, stats.deads_flagged);
  EXPECT_EQ(stats.maps_dropped, 0u);
  EXPECT_EQ(stats.maps_torn, 0u);
  EXPECT_GT(stats.allocs_logged, 0u);
  EXPECT_GT(stats.cost_cycles, 0u);
  EXPECT_GT(stats.sites_announced, 0u);

  // The agent's overhead is charged on the simulated CPU like any other
  // listener's (it shows up in the Fig. 2 arm, not free).
  EXPECT_GE(run.result.vm.agent_cycles, stats.cost_cycles);

  // Self-telemetry mirrors the ack counters (memprof.* namespace).
  support::Telemetry& tele = run.machine->telemetry();
  EXPECT_EQ(tele.counter("memprof.maps_written").value(), stats.maps_written);
  EXPECT_EQ(tele.counter("memprof.map_entries").value(), stats.map_entries_written);
  EXPECT_EQ(tele.counter("memprof.allocs_logged").value(), stats.allocs_logged);
}

TEST(MemProfAgent, DeathsPostdateEverySightingAndSurvivorsMove) {
  AgentRun run = run_with_agent();
  const hw::Pid pid = run.session->registrations().all().at(0).pid;
  const std::map<std::uint64_t, ObjectMapFile> maps =
      read_maps(run.machine->vfs(), pid);
  ASSERT_GE(maps.size(), 3u);

  // First epoch each object was sighted (allocated) in.
  std::map<std::uint64_t, std::uint64_t> first_seen;
  std::map<std::uint64_t, std::set<hw::Address>> addresses;
  for (const auto& [epoch, file] : maps) {
    for (const ObjectMapEntry& o : file.objects) {
      first_seen.emplace(o.obj_id, epoch);
      addresses[o.obj_id].insert(o.address);
    }
  }

  // A death line always post-dates every map entry for the object: deaths
  // are flagged by the collection that closes an epoch, after that epoch's
  // map is already on disk.
  std::set<std::uint64_t> dead_ids;
  for (const auto& [epoch, file] : maps) {
    for (const ObjectDeath& d : file.dead) {
      EXPECT_TRUE(dead_ids.insert(d.obj_id).second)
          << "object " << d.obj_id << " died twice";
      const auto it = first_seen.find(d.obj_id);
      ASSERT_NE(it, first_seen.end()) << "death without any sighting";
      EXPECT_LT(it->second, epoch) << "object " << d.obj_id;
    }
  }

  // The moving-GC property: some survivor was copied and re-sighted at a
  // different address — the case epoch-keyed maps exist to disambiguate.
  std::uint64_t movers = 0;
  for (const auto& [id, addrs] : addresses)
    if (addrs.size() >= 2) ++movers;
  EXPECT_GT(movers, 0u) << "no tracked object ever moved under GC";

  // And within any single map, tracked live objects never overlap.
  for (const auto& [epoch, file] : maps) {
    std::vector<ObjectMapEntry> sorted = file.objects;
    std::sort(sorted.begin(), sorted.end(),
              [](const ObjectMapEntry& a, const ObjectMapEntry& b) {
                return a.address < b.address;
              });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      EXPECT_LE(sorted[i - 1].address + sorted[i - 1].size, sorted[i].address)
          << "overlap in map " << epoch;
    }
  }
}

TEST(MemProfAgent, TrackingDisabledWritesNothing) {
  AgentRun run = [] {
    AgentRun r;
    os::MachineConfig mcfg;
    mcfg.seed = 0x11;
    r.machine = std::make_unique<os::Machine>(mcfg);
    workloads::Workload w = small_memprof_workload();
    w.vm.heap.track_objects = false;  // profiling without the heap hooks
    r.vm = std::make_unique<jvm::Vm>(*r.machine, w.vm);
    core::SessionConfig config;
    config.mode = core::ProfilingMode::kViprof;
    config.agent.obj_map_dir = "obj_maps";
    r.session = std::make_unique<core::ProfilingSession>(*r.machine, *r.vm, config);
    r.agent = std::make_unique<MemProfAgent>(*r.machine);
    r.session->attach();
    r.vm->add_listener(r.agent.get());
    r.vm->setup(w.program);
    r.result = r.session->run();
    return r;
  }();
  EXPECT_EQ(run.agent->stats().allocs_logged, 0u);
  EXPECT_EQ(run.agent->stats().map_entries_written, 0u);
  // Maps may still be written (empty per epoch); every one must be benign.
  const hw::Pid pid = run.session->registrations().all().at(0).pid;
  for (const auto& [epoch, file] : read_maps(run.machine->vfs(), pid))
    EXPECT_TRUE(file.objects.empty()) << "map " << epoch;
}

}  // namespace
}  // namespace viprof::memprof
