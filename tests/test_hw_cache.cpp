#include <gtest/gtest.h>

#include "hw/cache.hpp"

namespace viprof::hw {
namespace {

CacheLevelConfig tiny_config() {
  // 4 sets x 2 ways x 64B lines = 512B.
  return CacheLevelConfig{512, 64, 2};
}

TEST(CacheLevel, ColdMissThenHit) {
  CacheLevel cache(tiny_config());
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1030));  // same line (64B granularity)
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(CacheLevel, DifferentLinesMissSeparately) {
  CacheLevel cache(tiny_config());
  EXPECT_FALSE(cache.access(0x0));
  EXPECT_FALSE(cache.access(0x40));
  EXPECT_TRUE(cache.access(0x0));
  EXPECT_TRUE(cache.access(0x40));
}

TEST(CacheLevel, AssociativityConflictEvictsLru) {
  CacheLevel cache(tiny_config());  // 4 sets, 2 ways
  // Three addresses mapping to set 0: line numbers 0, 4, 8.
  const Address a = 0 * 64, b = 4 * 64, c = 8 * 64;
  cache.access(a);  // miss, set0 = {a}
  cache.access(b);  // miss, set0 = {a, b}
  cache.access(a);  // hit, a is MRU
  cache.access(c);  // miss, evicts b (LRU)
  EXPECT_TRUE(cache.access(a));
  EXPECT_FALSE(cache.access(b));  // was evicted (and now refilled over c)
}

TEST(CacheLevel, WaysAreFilledBeforeEviction) {
  CacheLevel cache(CacheLevelConfig{1024, 64, 4});  // 4 sets x 4 ways
  const Address set_stride = 4 * 64;
  for (int i = 0; i < 4; ++i) cache.access(i * set_stride);  // fill set 0
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(cache.access(i * set_stride));
}

TEST(CacheLevel, FlushInvalidatesEverything) {
  CacheLevel cache(tiny_config());
  cache.access(0x0);
  cache.access(0x40);
  cache.flush();
  EXPECT_FALSE(cache.access(0x0));
  EXPECT_FALSE(cache.access(0x40));
}

TEST(CacheLevel, SetCountComputed) {
  CacheLevel cache(CacheLevelConfig{16 * 1024, 64, 4});
  EXPECT_EQ(cache.sets(), 64u);  // 16K / (64 * 4)
}

TEST(CacheModel, L1MissCanHitL2) {
  CacheModelConfig config;
  config.l1 = tiny_config();
  config.l2 = CacheLevelConfig{4096, 64, 4};
  CacheModel model(config);
  model.access(0x0);  // cold: misses both
  // Evict line 0 from tiny L1 by filling its set.
  model.access(4 * 64);
  model.access(8 * 64);
  const AccessResult r = model.access(0x0);
  EXPECT_FALSE(r.l1_hit);
  EXPECT_TRUE(r.l2_hit);  // still resident in the larger L2
}

TEST(CacheModel, CountsAccessesAndMisses) {
  CacheModel model;
  for (int i = 0; i < 100; ++i) model.access(i * 64);
  EXPECT_EQ(model.accesses(), 100u);
  EXPECT_EQ(model.l1_misses(), 100u);
  EXPECT_EQ(model.l2_misses(), 100u);
  for (int i = 0; i < 100; ++i) model.access(i * 64);
  EXPECT_EQ(model.l1_misses(), 100u);  // all hits second time
}

TEST(CacheModel, SequentialWorkingSetBiggerThanL1FitsL2) {
  CacheModel model;  // 16KB L1 / 2MB L2 defaults
  const int lines = 1024;  // 64KB: exceeds L1, fits L2
  for (int round = 0; round < 2; ++round)
    for (int i = 0; i < lines; ++i) model.access(i * 64);
  // Second round: L1 thrashing continues, L2 absorbs everything.
  EXPECT_EQ(model.l2_misses(), static_cast<std::uint64_t>(lines));
  EXPECT_GT(model.l1_misses(), static_cast<std::uint64_t>(lines));
}

// Parametrised LRU stress: any power-of-two way count preserves the
// invariant that a just-touched line is never the next victim.
class CacheWaysTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheWaysTest, MruLineSurvivesConflict) {
  const std::uint32_t ways = GetParam();
  CacheLevel cache(CacheLevelConfig{64ull * ways * 4, 64, ways});  // 4 sets
  const Address set_stride = 4 * 64;
  for (std::uint32_t i = 0; i < ways; ++i) cache.access(i * set_stride);
  cache.access(0);  // make line 0 MRU
  cache.access(ways * set_stride);  // one conflict eviction
  EXPECT_TRUE(cache.access(0));
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheWaysTest, ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace viprof::hw
