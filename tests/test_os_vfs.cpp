#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "os/vfs.hpp"
#include "support/fault.hpp"

namespace viprof::os {
namespace {

TEST(Vfs, WriteAndRead) {
  Vfs vfs;
  vfs.write("/a/b.txt", "hello");
  const auto contents = vfs.read("/a/b.txt");
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(*contents, "hello");
}

TEST(Vfs, MissingFile) {
  Vfs vfs;
  EXPECT_FALSE(vfs.read("/nope").has_value());
  EXPECT_FALSE(vfs.exists("/nope"));
}

TEST(Vfs, OverwriteReplaces) {
  Vfs vfs;
  vfs.write("/f", "one");
  vfs.write("/f", "two");
  EXPECT_EQ(*vfs.read("/f"), "two");
  EXPECT_EQ(vfs.file_count(), 1u);
}

TEST(Vfs, AppendConcatenatesAndCreates) {
  Vfs vfs;
  vfs.append("/log", "a");
  vfs.append("/log", "b");
  EXPECT_EQ(*vfs.read("/log"), "ab");
}

TEST(Vfs, ListByPrefixSorted) {
  Vfs vfs;
  vfs.write("/maps/2", "");
  vfs.write("/maps/1", "");
  vfs.write("/maps/10", "");
  vfs.write("/other", "");
  const auto files = vfs.list("/maps/");
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], "/maps/1");
  EXPECT_EQ(files[1], "/maps/10");  // lexicographic
  EXPECT_EQ(files[2], "/maps/2");
}

TEST(Vfs, ListEmptyPrefixReturnsAll) {
  Vfs vfs;
  vfs.write("/x", "");
  vfs.write("/y", "");
  EXPECT_EQ(vfs.list("").size(), 2u);
}

TEST(Vfs, RemoveDeletes) {
  Vfs vfs;
  vfs.write("/f", "x");
  vfs.remove("/f");
  EXPECT_FALSE(vfs.exists("/f"));
  vfs.remove("/f");  // idempotent
}

TEST(Vfs, BytesWrittenAccumulates) {
  Vfs vfs;
  vfs.write("/a", "1234");
  vfs.append("/a", "56");
  EXPECT_EQ(vfs.bytes_written(), 6u);
}

// --- Host-directory export/import round trips -----------------------------

/// Fresh temp dir per test, removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag)
      : path(std::filesystem::temp_directory_path() /
             (std::string("viprof_vfs_test_") + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(Vfs, ExportImportRoundTripPreservesEverything) {
  TempDir dir("roundtrip");
  Vfs vfs;
  vfs.write("samples/GLOBAL_POWER_EVENTS.samples", "1 2 3\n4 5 6\n");
  vfs.write("jit_maps/101/map.00000000", "epoch 0 entries 0\n");
  vfs.write("archive/manifest", std::string("binary\x00\x01\x02 bytes\n", 16));
  vfs.write("empty.file", "");
  vfs.export_to_directory(dir.path.string());

  Vfs back;
  back.import_from_directory(dir.path.string());
  EXPECT_EQ(back.file_count(), vfs.file_count());
  for (const std::string& path : vfs.list("")) {
    ASSERT_TRUE(back.exists(path)) << path;
    EXPECT_EQ(*back.read(path), *vfs.read(path)) << path;
  }
}

TEST(Vfs, ExportEmptyFileMaterialisesOnDisk) {
  TempDir dir("empty");
  Vfs vfs;
  vfs.write("dir/empty", "");
  vfs.export_to_directory(dir.path.string());
  EXPECT_TRUE(std::filesystem::is_regular_file(dir.path / "dir/empty"));
  EXPECT_EQ(std::filesystem::file_size(dir.path / "dir/empty"), 0u);

  Vfs back;
  back.import_from_directory(dir.path.string());
  ASSERT_TRUE(back.exists("dir/empty"));
  EXPECT_EQ(*back.read("dir/empty"), "");
}

TEST(Vfs, ExportPrefixFilterSelectsSubtree) {
  TempDir dir("prefix");
  Vfs vfs;
  vfs.write("samples/a", "A");
  vfs.write("samples/b", "B");
  vfs.write("jit_maps/m", "M");
  vfs.export_to_directory(dir.path.string(), "samples/");

  Vfs back;
  back.import_from_directory(dir.path.string());
  EXPECT_EQ(back.file_count(), 2u);
  EXPECT_TRUE(back.exists("samples/a"));
  EXPECT_TRUE(back.exists("samples/b"));
  EXPECT_FALSE(back.exists("jit_maps/m"));
}

TEST(Vfs, ImportIntoPopulatedVfsOverwritesCollidingPaths) {
  TempDir dir("overwrite");
  Vfs src;
  src.write("f", "new");
  src.export_to_directory(dir.path.string());

  Vfs dst;
  dst.write("f", "old");
  dst.write("untouched", "keep");
  dst.import_from_directory(dir.path.string());
  EXPECT_EQ(*dst.read("f"), "new");
  EXPECT_EQ(*dst.read("untouched"), "keep");
}

// --- rename / atomic publish / host sync ----------------------------------

TEST(Vfs, RenameMovesAndReplacesAtomically) {
  Vfs vfs;
  vfs.write("a", "new");
  vfs.write("b", "old");
  EXPECT_EQ(vfs.rename("a", "b"), IoStatus::kOk);
  EXPECT_FALSE(vfs.exists("a"));
  EXPECT_EQ(*vfs.read("b"), "new");
  EXPECT_EQ(vfs.file_count(), 1u);
}

TEST(Vfs, RenameMissingSourceFailsWithoutDamage) {
  Vfs vfs;
  vfs.write("b", "old");
  EXPECT_EQ(vfs.rename("nope", "b"), IoStatus::kIoError);
  EXPECT_EQ(*vfs.read("b"), "old");
}

TEST(Vfs, RenameOntoItselfIsANoOp) {
  Vfs vfs;
  vfs.write("f", "keep");
  EXPECT_EQ(vfs.rename("f", "f"), IoStatus::kOk);
  EXPECT_EQ(*vfs.read("f"), "keep");
}

TEST(Vfs, RenameFaultsFailWholeNeverTear) {
  support::FaultInjector faults;
  support::FaultRule rule;
  rule.path_prefix = "dst";
  rule.kind = support::FaultKind::kTornWrite;  // metadata cannot tear...
  faults.add_rule(rule);
  Vfs vfs;
  vfs.write("src", "payload");
  vfs.write("dst", "old");
  vfs.set_fault_injector(&faults);  // armed only for the rename itself
  EXPECT_EQ(vfs.rename("src", "dst"), IoStatus::kIoError);  // ...so: whole failure
  EXPECT_EQ(*vfs.read("src"), "payload");  // source untouched
  EXPECT_EQ(*vfs.read("dst"), "old");      // destination untouched
}

TEST(Vfs, AtomicWriteFilePublishesWholeAndCleansTemp) {
  TempDir dir("atomicwrite");
  const std::string target = (dir.path / "service.snap").string();
  ASSERT_TRUE(atomic_write_file(target, "v1 contents\n"));
  EXPECT_EQ(std::filesystem::file_size(target), 12u);
  EXPECT_FALSE(std::filesystem::exists(target + ".tmp"));

  // Replacing is equally atomic; the temp never survives.
  ASSERT_TRUE(atomic_write_file(target, "v2\n"));
  EXPECT_EQ(std::filesystem::file_size(target), 3u);
  EXPECT_FALSE(std::filesystem::exists(target + ".tmp"));
}

TEST(Vfs, AtomicWriteFileFailureLeavesOldContents) {
  TempDir dir("atomicfail");
  const std::string target = (dir.path / "sub" / "f").string();
  EXPECT_FALSE(atomic_write_file(target, "x"));  // parent dir missing
  EXPECT_FALSE(std::filesystem::exists(target));
}

TEST(Vfs, SyncToDirectoryRemovesRetiredFiles) {
  TempDir dir("sync");
  Vfs vfs;
  vfs.write("segments/seg-000000.vseg", "a");
  vfs.write("segments/seg-000001.vseg", "b");
  vfs.write("MANIFEST", "m1");
  vfs.sync_to_directory(dir.path.string());
  EXPECT_TRUE(std::filesystem::exists(dir.path / "segments/seg-000000.vseg"));

  // Compaction: both inputs retired, one output adopted, manifest swapped.
  vfs.remove("segments/seg-000000.vseg");
  vfs.remove("segments/seg-000001.vseg");
  vfs.write("segments/seg-000002.vseg", "ab");
  vfs.write("MANIFEST", "m2");
  vfs.sync_to_directory(dir.path.string());

  EXPECT_FALSE(std::filesystem::exists(dir.path / "segments/seg-000000.vseg"));
  EXPECT_FALSE(std::filesystem::exists(dir.path / "segments/seg-000001.vseg"));
  EXPECT_TRUE(std::filesystem::exists(dir.path / "segments/seg-000002.vseg"));

  Vfs back;
  back.import_from_directory(dir.path.string());
  EXPECT_EQ(back.file_count(), 2u);
  EXPECT_EQ(*back.read("MANIFEST"), "m2");
}

TEST(Vfs, SyncToMissingDirectoryJustExports) {
  TempDir dir("syncfresh");
  std::filesystem::remove_all(dir.path);  // sync must create it
  Vfs vfs;
  vfs.write("f", "x");
  vfs.sync_to_directory(dir.path.string());
  EXPECT_TRUE(std::filesystem::is_regular_file(dir.path / "f"));
}

}  // namespace
}  // namespace viprof::os
