#include <gtest/gtest.h>

#include "os/vfs.hpp"

namespace viprof::os {
namespace {

TEST(Vfs, WriteAndRead) {
  Vfs vfs;
  vfs.write("/a/b.txt", "hello");
  const auto contents = vfs.read("/a/b.txt");
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(*contents, "hello");
}

TEST(Vfs, MissingFile) {
  Vfs vfs;
  EXPECT_FALSE(vfs.read("/nope").has_value());
  EXPECT_FALSE(vfs.exists("/nope"));
}

TEST(Vfs, OverwriteReplaces) {
  Vfs vfs;
  vfs.write("/f", "one");
  vfs.write("/f", "two");
  EXPECT_EQ(*vfs.read("/f"), "two");
  EXPECT_EQ(vfs.file_count(), 1u);
}

TEST(Vfs, AppendConcatenatesAndCreates) {
  Vfs vfs;
  vfs.append("/log", "a");
  vfs.append("/log", "b");
  EXPECT_EQ(*vfs.read("/log"), "ab");
}

TEST(Vfs, ListByPrefixSorted) {
  Vfs vfs;
  vfs.write("/maps/2", "");
  vfs.write("/maps/1", "");
  vfs.write("/maps/10", "");
  vfs.write("/other", "");
  const auto files = vfs.list("/maps/");
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], "/maps/1");
  EXPECT_EQ(files[1], "/maps/10");  // lexicographic
  EXPECT_EQ(files[2], "/maps/2");
}

TEST(Vfs, ListEmptyPrefixReturnsAll) {
  Vfs vfs;
  vfs.write("/x", "");
  vfs.write("/y", "");
  EXPECT_EQ(vfs.list("").size(), 2u);
}

TEST(Vfs, RemoveDeletes) {
  Vfs vfs;
  vfs.write("/f", "x");
  vfs.remove("/f");
  EXPECT_FALSE(vfs.exists("/f"));
  vfs.remove("/f");  // idempotent
}

TEST(Vfs, BytesWrittenAccumulates) {
  Vfs vfs;
  vfs.write("/a", "1234");
  vfs.append("/a", "56");
  EXPECT_EQ(vfs.bytes_written(), 6u);
}

}  // namespace
}  // namespace viprof::os
