#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "os/vfs.hpp"

namespace viprof::os {
namespace {

TEST(Vfs, WriteAndRead) {
  Vfs vfs;
  vfs.write("/a/b.txt", "hello");
  const auto contents = vfs.read("/a/b.txt");
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(*contents, "hello");
}

TEST(Vfs, MissingFile) {
  Vfs vfs;
  EXPECT_FALSE(vfs.read("/nope").has_value());
  EXPECT_FALSE(vfs.exists("/nope"));
}

TEST(Vfs, OverwriteReplaces) {
  Vfs vfs;
  vfs.write("/f", "one");
  vfs.write("/f", "two");
  EXPECT_EQ(*vfs.read("/f"), "two");
  EXPECT_EQ(vfs.file_count(), 1u);
}

TEST(Vfs, AppendConcatenatesAndCreates) {
  Vfs vfs;
  vfs.append("/log", "a");
  vfs.append("/log", "b");
  EXPECT_EQ(*vfs.read("/log"), "ab");
}

TEST(Vfs, ListByPrefixSorted) {
  Vfs vfs;
  vfs.write("/maps/2", "");
  vfs.write("/maps/1", "");
  vfs.write("/maps/10", "");
  vfs.write("/other", "");
  const auto files = vfs.list("/maps/");
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], "/maps/1");
  EXPECT_EQ(files[1], "/maps/10");  // lexicographic
  EXPECT_EQ(files[2], "/maps/2");
}

TEST(Vfs, ListEmptyPrefixReturnsAll) {
  Vfs vfs;
  vfs.write("/x", "");
  vfs.write("/y", "");
  EXPECT_EQ(vfs.list("").size(), 2u);
}

TEST(Vfs, RemoveDeletes) {
  Vfs vfs;
  vfs.write("/f", "x");
  vfs.remove("/f");
  EXPECT_FALSE(vfs.exists("/f"));
  vfs.remove("/f");  // idempotent
}

TEST(Vfs, BytesWrittenAccumulates) {
  Vfs vfs;
  vfs.write("/a", "1234");
  vfs.append("/a", "56");
  EXPECT_EQ(vfs.bytes_written(), 6u);
}

// --- Host-directory export/import round trips -----------------------------

/// Fresh temp dir per test, removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag)
      : path(std::filesystem::temp_directory_path() /
             (std::string("viprof_vfs_test_") + tag)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(Vfs, ExportImportRoundTripPreservesEverything) {
  TempDir dir("roundtrip");
  Vfs vfs;
  vfs.write("samples/GLOBAL_POWER_EVENTS.samples", "1 2 3\n4 5 6\n");
  vfs.write("jit_maps/101/map.00000000", "epoch 0 entries 0\n");
  vfs.write("archive/manifest", std::string("binary\x00\x01\x02 bytes\n", 16));
  vfs.write("empty.file", "");
  vfs.export_to_directory(dir.path.string());

  Vfs back;
  back.import_from_directory(dir.path.string());
  EXPECT_EQ(back.file_count(), vfs.file_count());
  for (const std::string& path : vfs.list("")) {
    ASSERT_TRUE(back.exists(path)) << path;
    EXPECT_EQ(*back.read(path), *vfs.read(path)) << path;
  }
}

TEST(Vfs, ExportEmptyFileMaterialisesOnDisk) {
  TempDir dir("empty");
  Vfs vfs;
  vfs.write("dir/empty", "");
  vfs.export_to_directory(dir.path.string());
  EXPECT_TRUE(std::filesystem::is_regular_file(dir.path / "dir/empty"));
  EXPECT_EQ(std::filesystem::file_size(dir.path / "dir/empty"), 0u);

  Vfs back;
  back.import_from_directory(dir.path.string());
  ASSERT_TRUE(back.exists("dir/empty"));
  EXPECT_EQ(*back.read("dir/empty"), "");
}

TEST(Vfs, ExportPrefixFilterSelectsSubtree) {
  TempDir dir("prefix");
  Vfs vfs;
  vfs.write("samples/a", "A");
  vfs.write("samples/b", "B");
  vfs.write("jit_maps/m", "M");
  vfs.export_to_directory(dir.path.string(), "samples/");

  Vfs back;
  back.import_from_directory(dir.path.string());
  EXPECT_EQ(back.file_count(), 2u);
  EXPECT_TRUE(back.exists("samples/a"));
  EXPECT_TRUE(back.exists("samples/b"));
  EXPECT_FALSE(back.exists("jit_maps/m"));
}

TEST(Vfs, ImportIntoPopulatedVfsOverwritesCollidingPaths) {
  TempDir dir("overwrite");
  Vfs src;
  src.write("f", "new");
  src.export_to_directory(dir.path.string());

  Vfs dst;
  dst.write("f", "old");
  dst.write("untouched", "keep");
  dst.import_from_directory(dir.path.string());
  EXPECT_EQ(*dst.read("f"), "new");
  EXPECT_EQ(*dst.read("untouched"), "keep");
}

}  // namespace
}  // namespace viprof::os
