// Memprof under injected faults: torn object-map writes salvage to exact
// salvaged+lost==acked accounting, an agent killed mid-run degrades every
// later epoch's object samples to the counted unresolved.obj.no_map bin,
// and — the invariant everything else serves — a damaged tree never
// *mis*attributes: any sample the degraded run still resolves gets exactly
// the attribution the undamaged twin run gave it.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/viprof.hpp"
#include "memprof/agent.hpp"
#include "memprof/fsck.hpp"
#include "memprof/object_map.hpp"
#include "memprof/report.hpp"
#include "support/fault.hpp"
#include "workloads/generator.hpp"

namespace viprof::memprof {
namespace {

workloads::Workload fault_workload() {
  workloads::GeneratorOptions opt;
  opt.name = "memfault";
  opt.seed = 0x5a5;
  opt.methods = 24;
  opt.alloc_intensity = 1.0;
  opt.nursery_bytes = 256 * 1024;
  opt.total_app_ops = 2'500'000;
  workloads::Workload w = workloads::make_synthetic(opt);
  for (jvm::MethodInfo& m : w.program.methods) {
    m.alloc_object_bytes = 96 + 32 * (m.id % 5);
    m.alloc_object_lifetime = m.id % 3;
  }
  w.vm.heap.track_objects = true;
  return w;
}

struct FaultedRun {
  std::unique_ptr<os::Machine> machine;
  std::unique_ptr<jvm::Vm> vm;
  std::unique_ptr<core::ProfilingSession> session;
  std::unique_ptr<MemProfAgent> agent;
  core::SessionResult result;

  ObjectReport object_report() const {
    return build_object_report(machine->vfs(), "samples",
                               session->registrations().all());
  }
};

/// Same seeds every time: with both injectors null this is the undamaged
/// twin of a faulted run, sample for sample. `vfs_fi` damages writes (torn
/// maps); `agent_fi` carries scheduled kills for the *memprof* agent alone —
/// wired through MemProfConfig, not SessionConfig, because the VM code
/// agent consults (and consumes) the same kAgent kill schedule.
FaultedRun run_memprof(support::FaultInjector* vfs_fi,
                       support::FaultInjector* agent_fi = nullptr) {
  FaultedRun run;
  os::MachineConfig mcfg;
  mcfg.seed = 0xfa11;
  run.machine = std::make_unique<os::Machine>(mcfg);
  const workloads::Workload w = fault_workload();
  run.vm = std::make_unique<jvm::Vm>(*run.machine, w.vm);
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.counters = {{hw::EventKind::kGlobalPowerEvents, 90'000, true},
                     {hw::EventKind::kObjDmiss, 1'500, true}};
  config.agent.obj_map_dir = "obj_maps";
  config.fault = vfs_fi;  // installed into the machine's VFS by attach()
  run.session = std::make_unique<core::ProfilingSession>(*run.machine, *run.vm, config);
  MemProfConfig mconfig;
  mconfig.fault = agent_fi;  // scheduled kills, memprof agent only
  run.agent = std::make_unique<MemProfAgent>(*run.machine, mconfig);
  run.session->attach();
  run.vm->add_listener(run.agent.get());
  run.vm->setup(w.program);
  run.result = run.session->run();
  return run;
}

std::uint64_t bin_count(const core::Profile& profile, const char* symbol) {
  const core::ProfileRow* row = profile.find(kObjectImage, symbol);
  return row ? row->count(hw::EventKind::kObjDmiss) : 0;
}

/// (record index -> site symbol) for every sample the run attributed.
std::map<std::size_t, std::string> attributions(const os::Vfs& vfs,
                                                const std::vector<core::VmRegistration>& regs) {
  std::map<hw::Pid, core::CodeMapIndex> indexes;
  for (const core::VmRegistration& reg : regs)
    if (!reg.obj_map_dir.empty())
      indexes.emplace(reg.pid, load_object_index(vfs, reg.obj_map_dir, reg.pid).index);
  std::map<std::size_t, std::string> out;
  const auto samples =
      core::SampleLogReader::read(vfs, "samples", hw::EventKind::kObjDmiss);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto it = indexes.find(samples[i].pid);
    const core::Resolution res = resolve_object(
        it == indexes.end() ? nullptr : &it->second, samples[i].pc, samples[i].epoch);
    if (site_from_symbol(res.symbol)) out.emplace(i, res.symbol);
  }
  return out;
}

TEST(MemprofFaults, TornMapWriteSalvagesWithExactAccounting) {
  support::FaultInjector fi(0x70b2);
  support::FaultRule rule;
  rule.path_prefix = "obj_maps";
  rule.kind = support::FaultKind::kTornWrite;
  rule.skip = 2;   // third object-map write lands torn
  rule.count = 1;
  rule.torn_keep_frac = 0.35;
  fi.add_rule(rule);
  const FaultedRun damaged = run_memprof(&fi);
  const FaultedRun clean = run_memprof(nullptr);

  const MemProfStats& stats = damaged.agent->stats();
  EXPECT_EQ(fi.stats().torn_writes, 1u);
  EXPECT_EQ(stats.maps_torn, 1u);
  EXPECT_EQ(stats.maps_dropped, 0u);
  // A torn write still acked: the agent counted every entry it handed the
  // VFS, which is exactly the baseline fsck's loss accounting closes with.
  EXPECT_EQ(stats.maps_written, clean.agent->stats().maps_written);

  support::Telemetry tele;
  const ObjectFsckReport fsck =
      fsck_object_maps(damaged.machine->vfs(), nullptr, tele);
  EXPECT_TRUE(fsck.corrupt);
  EXPECT_EQ(fsck.maps_truncated, 1u);
  EXPECT_EQ(fsck.dead_maps, 0u);
  EXPECT_GT(fsck.objects_lost, 0u);
  // salvaged + lost == declared == acked: walk the tree and close the books
  // against the agent's own counters.
  std::uint64_t declared_intact = 0;
  const hw::Pid pid = damaged.session->registrations().all().at(0).pid;
  for (const std::string& path :
       damaged.machine->vfs().list("obj_maps/" + std::to_string(pid) + "/")) {
    const auto parsed = ObjectMapFile::parse(*damaged.machine->vfs().read(path));
    if (parsed) declared_intact += parsed->objects.size();
  }
  EXPECT_EQ(declared_intact + fsck.objects_salvaged + fsck.objects_lost,
            stats.map_entries_written);
  EXPECT_EQ(tele.counter("fsck.omaps.objects_lost").value(), fsck.objects_lost);

  // The twin runs logged identical sample streams (a torn map write costs
  // what a clean one does), so attribution is comparable record by record.
  ASSERT_EQ(damaged.machine->vfs().read(
                core::SampleLogWriter::path_for("samples", hw::EventKind::kObjDmiss)),
            clean.machine->vfs().read(
                core::SampleLogWriter::path_for("samples", hw::EventKind::kObjDmiss)));

  // Degraded, never wrong: the torn epoch's losses land in the counted
  // truncated bin, and every sample the damaged tree still attributes gets
  // the same site the undamaged twin gave it.
  const ObjectReport dmg = damaged.object_report();
  const ObjectReport cln = clean.object_report();
  EXPECT_GT(dmg.stats.truncated_map, 0u);
  EXPECT_EQ(cln.stats.truncated_map, 0u);
  EXPECT_EQ(bin_count(dmg.profile, kUnresolvedObjTruncated), dmg.stats.truncated_map);
  EXPECT_LT(dmg.stats.resolved, cln.stats.resolved);

  const auto dmg_sites = attributions(damaged.machine->vfs(),
                                      damaged.session->registrations().all());
  const auto cln_sites = attributions(clean.machine->vfs(),
                                      clean.session->registrations().all());
  for (const auto& [record, site] : dmg_sites) {
    const auto it = cln_sites.find(record);
    ASSERT_NE(it, cln_sites.end()) << "record " << record;
    EXPECT_EQ(it->second, site) << "record " << record << " misattributed";
  }
}

TEST(MemprofFaults, KilledAgentDegradesLaterEpochsToCountedNoMap) {
  support::FaultInjector fi(0xdead2);
  fi.schedule_kill(support::FaultComponent::kAgent, 4'000'000);
  const FaultedRun run = run_memprof(nullptr, &fi);

  const MemProfStats& stats = run.agent->stats();
  ASSERT_TRUE(run.agent->killed());
  ASSERT_GT(stats.killed_epochs, 0u);
  ASSERT_GT(stats.maps_written, 0u) << "kill landed before the first map";

  // Maps stop at the kill; the epochs written are exactly the contiguous
  // prefix before it.
  const hw::Pid pid = run.session->registrations().all().at(0).pid;
  const ObjectIndexLoad load =
      load_object_index(run.machine->vfs(), "obj_maps", pid);
  EXPECT_EQ(load.maps_loaded, stats.maps_written);
  const std::uint64_t last_epoch = load.index.max_epoch();
  EXPECT_EQ(last_epoch + 1, stats.maps_written);

  // Every object sample after the last map is a counted no_map — and *only*
  // those samples are (the surviving prefix is contiguous and intact).
  const auto samples = core::SampleLogReader::read(run.machine->vfs(), "samples",
                                                   hw::EventKind::kObjDmiss);
  std::uint64_t beyond = 0;
  for (const core::LoggedSample& s : samples)
    if (s.epoch > last_epoch) ++beyond;
  ASSERT_GT(beyond, 0u) << "no object samples after the kill";

  const ObjectReport report = run.object_report();
  EXPECT_EQ(report.stats.no_map, beyond);
  EXPECT_EQ(bin_count(report.profile, kUnresolvedObjNoMap), beyond);
  EXPECT_EQ(report.stats.resolved + report.stats.unresolved, samples.size());

  // Never wrong: nothing beyond the last map resolves to a site.
  const auto sites = attributions(run.machine->vfs(),
                                  run.session->registrations().all());
  for (const auto& [record, site] : sites)
    EXPECT_LE(samples[record].epoch, last_epoch) << "record " << record;
}

TEST(MemprofFaults, FsckRecoveryRewritesSalvagedPrefixThatStaysHonest) {
  support::FaultInjector fi(0x70b3);
  support::FaultRule rule;
  rule.path_prefix = "obj_maps";
  rule.kind = support::FaultKind::kTornWrite;
  rule.skip = 1;
  rule.count = 2;  // two consecutive torn maps
  rule.torn_keep_frac = 0.4;
  fi.add_rule(rule);
  const FaultedRun damaged = run_memprof(&fi);
  EXPECT_EQ(damaged.agent->stats().maps_torn, 2u);

  // Recovery pass: copy the tree, rewriting damaged maps as their salvaged
  // prefix with the truncated marker set.
  os::Vfs recovered;
  for (const std::string& path : damaged.machine->vfs().list("obj_maps"))
    recovered.write(path, *damaged.machine->vfs().read(path));
  support::Telemetry tele;
  const ObjectFsckReport first = fsck_object_maps(damaged.machine->vfs(),
                                                  &recovered, tele, false);
  EXPECT_TRUE(first.corrupt);
  EXPECT_EQ(first.maps_truncated, 2u);

  // The rewritten tree is clean — but still *marked*: a second scan finds
  // nothing corrupt, yet resolution keeps refusing to walk past the
  // truncated epochs (honesty survives recovery).
  const ObjectFsckReport second = fsck_object_maps(recovered, nullptr, tele, false);
  EXPECT_FALSE(second.corrupt);
  EXPECT_EQ(second.maps_intact, first.maps_intact + first.maps_truncated);

  const hw::Pid pid = damaged.session->registrations().all().at(0).pid;
  const ObjectIndexLoad before = load_object_index(damaged.machine->vfs(), "obj_maps", pid);
  const ObjectIndexLoad after = load_object_index(recovered, "obj_maps", pid);
  EXPECT_EQ(after.maps_truncated, 2u);
  EXPECT_EQ(before.objects_loaded, after.objects_loaded);
  // Same refusals either way: rewriting loses no attribution and adds none.
  const auto samples = core::SampleLogReader::read(damaged.machine->vfs(), "samples",
                                                   hw::EventKind::kObjDmiss);
  for (const core::LoggedSample& s : samples) {
    const core::Resolution a = resolve_object(&before.index, s.pc, s.epoch);
    const core::Resolution b = resolve_object(&after.index, s.pc, s.epoch);
    ASSERT_EQ(a.symbol, b.symbol);
  }
}

}  // namespace
}  // namespace viprof::memprof
