#include <gtest/gtest.h>

#include "support/format.hpp"

namespace viprof::support {
namespace {

TEST(Fixed, RoundsToRequestedDecimals) {
  EXPECT_EQ(fixed(3.14159, 4), "3.1416");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(3.0, 0), "3");
  EXPECT_EQ(fixed(-1.005, 1), "-1.0");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // never truncates
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

TEST(Hex, Formats) {
  EXPECT_EQ(hex(0), "0x0");
  EXPECT_EQ(hex(255), "0xff");
  EXPECT_EQ(hex(0x62785000ull), "0x62785000");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"N %", "Name"});
  t.add_row({"1.5", "alpha"});
  t.add_row({"100.25", "b"});
  const std::string out = t.render();
  // Numeric column right-aligned to the widest cell (6 chars).
  EXPECT_NE(out.find("   1.5"), std::string::npos);
  EXPECT_NE(out.find("100.25"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"A", "B", "C"});
  t.add_row({"1"});  // missing cells become empty
  const std::string out = t.render();
  EXPECT_NE(out.find('1'), std::string::npos);
}

TEST(TextTable, LastColumnNotPadded) {
  TextTable t({"A", "Symbol"});
  t.add_row({"1", "x"});
  t.add_row({"2", "a.very.long.symbol.name"});
  for (const auto& line : {t.render()}) {
    // No trailing spaces after the short symbol.
    EXPECT_EQ(line.find("x "), std::string::npos);
  }
}

}  // namespace
}  // namespace viprof::support
