// Contention-instrumented locks and trace-context plumbing (DESIGN.md
// §13): the uncontended fast path counts but never clocks, genuine waits
// land in the lock.<name>.wait_ns histogram plus waiter/holder spans, and
// detached locks degrade to plain mutexes. The concurrent cases double as
// TSan subjects — the telemetry suite runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "support/telemetry.hpp"
#include "support/traced_mutex.hpp"

namespace viprof::support {
namespace {

TEST(TraceContext, MintIsDeterministicAndNeverZero) {
  const TraceContext a = TraceContext::mint("sess-0");
  const TraceContext b = TraceContext::mint("sess-0");
  const TraceContext c = TraceContext::mint("sess-1");
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.trace_id, b.trace_id);  // same session ⇒ same trace, any shard
  EXPECT_NE(a.trace_id, c.trace_id);
  EXPECT_TRUE(TraceContext::mint("").valid());
  EXPECT_FALSE(TraceContext{}.valid());
}

TEST(ThreadOrdinal, DenseDistinctAndStable) {
  EXPECT_GE(this_thread_ordinal(), 1u);
  EXPECT_EQ(this_thread_ordinal(), this_thread_ordinal());

  std::mutex mu;
  std::set<std::uint32_t> seen;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      const std::uint32_t mine = this_thread_ordinal();
      EXPECT_EQ(mine, this_thread_ordinal());
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(mine);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(seen.size(), 8u);  // every thread got its own lane
}

TEST(TracedMutex, DetachedDegradesToPlainMutex) {
  TracedMutex mu("test.detached");
  {
    std::lock_guard<TracedMutex> lock(mu);
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  EXPECT_STREQ(mu.name(), "test.detached");
}

TEST(TracedMutex, UncontendedFastPathCountsButNeverClocks) {
  Telemetry telemetry;
  TracedMutex mu("test.fast");
  mu.attach(telemetry);
  for (int i = 0; i < 100; ++i) {
    std::lock_guard<TracedMutex> lock(mu);
  }
  const TelemetrySnapshot snap = telemetry.snapshot();
  EXPECT_EQ(snap.counter("lock.test.fast.acquired"), 100u);
  EXPECT_EQ(snap.counter("lock.test.fast.contended"), 0u);
  ASSERT_EQ(snap.histograms.count("lock.test.fast.wait_ns"), 1u);
  EXPECT_EQ(snap.histograms.at("lock.test.fast.wait_ns").count, 0u);
  EXPECT_EQ(telemetry.spans().recorded(), 0u);  // no spans off the fast path
}

TEST(TracedMutex, ContendedAcquisitionRecordsWaitAndHoldSpans) {
  Telemetry telemetry;
  TracedMutex mu("test.hot");
  mu.attach(telemetry);

  // The 20 ms hold is a generous window, but a loaded scheduler can still
  // delay this thread past it — retry until the slow path actually fired.
  std::uint64_t contended = 0;
  std::uint64_t rounds = 0;
  while (contended == 0 && ++rounds <= 50) {
    std::atomic<bool> held{false};
    std::thread holder([&] {
      mu.lock();
      held.store(true);
      // Keep the lock long enough that the main thread's try_lock misses
      // and it takes the timed slow path.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      mu.unlock();
    });
    while (!held.load()) std::this_thread::yield();
    {
      std::lock_guard<TracedMutex> lock(mu);  // must wait for the holder
    }
    holder.join();
    contended = telemetry.snapshot().counter("lock.test.hot.contended");
  }
  ASSERT_GT(contended, 0u);

  const TelemetrySnapshot snap = telemetry.snapshot();
  EXPECT_EQ(snap.counter("lock.test.hot.acquired"), 2 * rounds);
  const HistogramSummary wait = snap.histograms.at("lock.test.hot.wait_ns");
  EXPECT_EQ(wait.count, contended);  // counter and histogram in lockstep
  EXPECT_GT(wait.sum, 0.0);

  // Both sides of the story: the waiter's span and the holder's span,
  // named after the lock so the contention report and the trace agree.
  bool saw_wait = false, saw_hold = false;
  for (const Span& s : telemetry.spans().spans()) {
    if (std::string(s.cat) == "lock.wait") saw_wait = true;
    if (std::string(s.cat) == "lock.hold") saw_hold = true;
    EXPECT_STREQ(s.name, "test.hot");
    EXPECT_GE(s.end_cycle, s.begin_cycle);
  }
  EXPECT_TRUE(saw_wait);
  EXPECT_TRUE(saw_hold);
}

TEST(TracedMutex, TryLockFailureIsNotAnAcquisition) {
  Telemetry telemetry;
  TracedMutex mu("test.try");
  mu.attach(telemetry);
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_EQ(telemetry.snapshot().counter("lock.test.try.acquired"), 1u);
}

TEST(TracedMutex, WorksUnderConditionVariableAny) {
  // cv waits relock through TracedMutex::lock, so a slow wake-up counts as
  // real contention — exactly what the reorder buffer's applied_cv_ needs.
  Telemetry telemetry;
  TracedMutex mu("test.cv");
  mu.attach(telemetry);
  std::condition_variable_any cv;
  bool ready = false;
  std::thread signaller([&] {
    std::lock_guard<TracedMutex> lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    std::unique_lock<TracedMutex> lock(mu);
    cv.wait(lock, [&] { return ready; });
  }
  signaller.join();
  EXPECT_GE(telemetry.snapshot().counter("lock.test.cv.acquired"), 2u);
}

TEST(TracedSharedMutex, SharedWaitsCountWithoutHoldSpans) {
  Telemetry telemetry;
  TracedSharedMutex mu("test.rw");
  mu.attach(telemetry);

  // Readers through a free lock: fast path only.
  {
    std::shared_lock<TracedSharedMutex> r1(mu);
    std::shared_lock<TracedSharedMutex> r2(mu);
  }
  TelemetrySnapshot snap = telemetry.snapshot();
  EXPECT_EQ(snap.counter("lock.test.rw.acquired"), 2u);
  EXPECT_EQ(snap.counter("lock.test.rw.contended"), 0u);

  // A reader blocked behind a writer takes the timed shared slow path.
  // As above, retry: the reader can miss the 20 ms hold window entirely
  // on a loaded machine, which is an uncontended (fast-path) acquisition.
  std::uint64_t contended = 0;
  std::uint64_t rounds = 0;
  while (contended == 0 && ++rounds <= 50) {
    std::atomic<bool> held{false};
    std::thread writer([&] {
      std::lock_guard<TracedSharedMutex> w(mu);
      held.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    while (!held.load()) std::this_thread::yield();
    {
      std::shared_lock<TracedSharedMutex> r(mu);
    }
    writer.join();
    contended = telemetry.snapshot().counter("lock.test.rw.contended");
  }
  ASSERT_GT(contended, 0u);

  snap = telemetry.snapshot();
  EXPECT_EQ(snap.counter("lock.test.rw.acquired"), 2 + 2 * rounds);
  EXPECT_EQ(snap.histograms.at("lock.test.rw.wait_ns").count, contended);
  // Shared holds have no single holder, so only the waiter span exists.
  for (const Span& s : telemetry.spans().spans())
    EXPECT_STREQ(s.cat, "lock.wait");
}

TEST(TracedMutexStress, EveryAcquisitionCountedUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5'000;
  Telemetry telemetry;
  TracedMutex mu("test.stress");
  mu.attach(telemetry);

  std::uint64_t guarded = 0;  // the payload the lock actually protects
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::lock_guard<TracedMutex> lock(mu);
        ++guarded;
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(guarded, static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  const TelemetrySnapshot snap = telemetry.snapshot();
  EXPECT_EQ(snap.counter("lock.test.stress.acquired"),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  // Contended count and wait samples must agree exactly.
  EXPECT_EQ(snap.counter("lock.test.stress.contended"),
            snap.histograms.at("lock.test.stress.wait_ns").count);
}

TEST(SpanTracerStress, ConcurrentRecordingKeepsExactAccounting) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 4'000;
  constexpr std::size_t kCapacity = 1024;
  Telemetry telemetry(kCapacity);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&telemetry, t] {
      const std::uint64_t trace =
          TraceContext::mint("stress-" + std::to_string(t)).trace_id;
      for (int i = 0; i < kSpansPerThread; ++i)
        telemetry.spans().record("span.stress", "test", i, i + 1,
                                 SpanTracer::kNoArg, trace);
    });
  }
  // Concurrent readers: exports must be safe against in-flight recording.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      (void)telemetry.spans().to_chrome_json(1000.0);
      (void)telemetry.snapshot();
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true);
  reader.join();

  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kSpansPerThread;
  EXPECT_EQ(telemetry.spans().recorded(), total);
  EXPECT_EQ(telemetry.spans().dropped(), total - kCapacity);
  EXPECT_EQ(telemetry.spans().spans().size(), kCapacity);
  // The drop accounting is injected into every snapshot (never silent).
  const TelemetrySnapshot snap = telemetry.snapshot();
  EXPECT_EQ(snap.counter("telemetry.spans.recorded"), total);
  EXPECT_EQ(snap.counter("telemetry.spans.dropped"), total - kCapacity);
}

TEST(SpanTracer, DisabledKillSwitchRecordsNothing) {
  Telemetry telemetry;
  telemetry.spans().set_enabled(false);
  telemetry.spans().record("span.off", "test", 0, 10);
  telemetry.spans().instant("mark.off", "test", 5);
  EXPECT_EQ(telemetry.spans().recorded(), 0u);
  telemetry.spans().set_enabled(true);
  telemetry.spans().record("span.on", "test", 0, 10);
  EXPECT_EQ(telemetry.spans().recorded(), 1u);
}

}  // namespace
}  // namespace viprof::support
