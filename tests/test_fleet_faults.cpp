// Fleet failure paths: transient send faults retried through Backoff,
// circuit-break failover to the ring successor, the kill-a-shard sweep
// across every FaultComponent::kFleet checkpoint (ISSUE 6 acceptance:
// fsck exits clean and acked == stored + lost, exactly, at every kill
// point), whole-fleet death, and retry determinism under a fixed seed.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fleet/federator.hpp"
#include "fleet/fsck.hpp"
#include "fleet/router.hpp"
#include "service/scenario.hpp"
#include "support/fault.hpp"

namespace viprof::fleet {
namespace {

service::ScenarioConfig tiny_scenario(std::uint64_t seed) {
  service::ScenarioConfig config;
  config.vms = 2;
  config.samples_per_event = 300;
  config.epochs = 4;
  config.methods = 32;
  config.seed = seed;
  return config;
}

std::map<std::string, std::unique_ptr<service::RecordedScenario>> record_sessions(
    std::size_t n) {
  std::map<std::string, std::unique_ptr<service::RecordedScenario>> out;
  for (std::size_t i = 0; i < n; ++i)
    out["sess-" + std::to_string(i)] = record_scenario(tiny_scenario(0xfee7 + i));
  return out;
}

void expect_exact_accounting(const Router& router, const os::Vfs& fleet_vfs) {
  const store::FleetLedger& ledger = router.ledger();
  EXPECT_EQ(ledger.acked_records,
            ledger.stored_records + ledger.lost_wire + ledger.lost_queue +
                ledger.lost_dead_records)
      << "ledger imbalance";
  const FleetFsckReport fsck = fsck_fleet(fleet_vfs);
  EXPECT_EQ(fsck.verdict, core::FsckVerdict::kClean) << fsck.summary;
  EXPECT_TRUE(fsck.ledger_balanced) << fsck.summary;
  EXPECT_TRUE(fsck.stored_matches) << fsck.summary;
}

TEST(FleetFaults, TransientSendErrorsAreRetriedToSuccess) {
  const auto sessions = record_sessions(1);
  os::Vfs fleet_vfs;
  support::FaultInjector fault;
  support::FaultRule rule;
  rule.path_prefix = "fleet/send/";  // whichever shard owns the session
  rule.kind = support::FaultKind::kWriteError;
  rule.skip = 10;
  rule.count = 2;  // two consecutive failures on one frame; retries cover it
  fault.add_rule(rule);

  FleetConfig config;
  config.shards = 2;
  config.fault = &fault;
  Router router(fleet_vfs, config);
  const SessionOutcome outcome =
      router.ingest(sessions.begin()->second->vfs(), sessions.begin()->first);

  // The retry loop absorbed both faults: no frame lost, no failover.
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.records_lost_wire, 0u);
  EXPECT_EQ(router.ledger().retried_sends, 2u);
  EXPECT_EQ(router.ledger().retried_giveups, 0u);
  EXPECT_EQ(router.ledger().circuit_opens, 0u);
  EXPECT_EQ(outcome.records_sent, outcome.records_stored);
  expect_exact_accounting(router, fleet_vfs);
}

TEST(FleetFaults, CircuitBreakFailsSessionOverToRingSuccessor) {
  const auto sessions = record_sessions(1);
  const std::string id = sessions.begin()->first;
  os::Vfs fleet_vfs;

  // Probe run: learn the session's ring owner and how many frames it
  // streams, so the persistent fault can start three frames before the end
  // — after sample batches have been delivered on the doomed attempt.
  FleetConfig probe_config;
  probe_config.shards = 3;
  std::string owner;
  std::uint64_t frames = 0;
  {
    os::Vfs scratch;
    Router probe(scratch, probe_config);
    owner = probe.ring().owner(id);
    ASSERT_TRUE(probe.ingest(sessions.begin()->second->vfs(), id).completed);
    frames = probe.fleet_checkpoints();
  }
  ASSERT_GT(frames, 6u);

  // Every send to the owner fails persistently from there on: three frame
  // give-ups open the circuit on the stream's final frames.
  support::FaultRule rule;
  rule.path_prefix = "fleet/send/" + owner;
  rule.kind = support::FaultKind::kWriteError;
  rule.skip = frames - 3;
  support::FaultInjector persistent;
  persistent.add_rule(rule);

  FleetConfig config = probe_config;
  config.fault = &persistent;
  Router router(fleet_vfs, config);
  const SessionOutcome outcome =
      router.ingest(sessions.begin()->second->vfs(), id);

  // The session failed over and completed on the successor.
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_NE(outcome.shard, owner);
  EXPECT_EQ(router.ledger().circuit_opens, 1u);
  EXPECT_EQ(router.ledger().retried_giveups, 3u);
  EXPECT_EQ(router.ledger().failover_sessions, 1u);
  EXPECT_GT(router.ledger().failover_records, 0u);
  // Two frames were dropped before the third give-up opened the circuit —
  // but they belonged to the *aborted* attempt, which was re-streamed in
  // full, so nothing terminal was lost.
  EXPECT_EQ(outcome.records_lost_wire, 0u);

  // The broken shard is alive but unroutable, and the partial session was
  // discarded on it (no double count anywhere).
  EXPECT_TRUE(router.alive(owner));
  EXPECT_FALSE(router.routable(owner));
  ASSERT_NE(router.server(owner), nullptr);
  EXPECT_EQ(router.server(owner)->session(id), nullptr);
  expect_exact_accounting(router, fleet_vfs);
}

// The headline acceptance: kill the streamed-to shard at *every* fleet
// checkpoint in turn; at each kill point the fleet must settle with the
// ledger exact and `fsck --fleet` clean — no silent loss, no double count.
TEST(FleetFaults, KillSweepHoldsExactAccountingAtEveryCheckpoint) {
  const auto sessions = record_sessions(2);

  // Clean run: enumerate the checkpoints.
  std::uint64_t total_checkpoints = 0;
  std::string clean_top;
  {
    os::Vfs fleet_vfs;
    support::FaultInjector fault;
    FleetConfig config;
    config.shards = 2;
    config.fault = &fault;
    Router router(fleet_vfs, config);
    for (const auto& [id, scenario] : sessions)
      ASSERT_TRUE(router.ingest(scenario->vfs(), id).completed);
    total_checkpoints = router.fleet_checkpoints();
    clean_top = Federator(router).query("top 20");
  }
  ASSERT_GT(total_checkpoints, 20u);

  std::size_t killed_runs = 0, failovers = 0;
  for (std::uint64_t cp = 1; cp <= total_checkpoints; ++cp) {
    os::Vfs fleet_vfs;
    support::FaultInjector fault;
    fault.schedule_kill(support::FaultComponent::kFleet, cp);
    FleetConfig config;
    config.shards = 2;
    config.fault = &fault;
    Router router(fleet_vfs, config);
    std::size_t completed = 0;
    for (const auto& [id, scenario] : sessions)
      completed += router.ingest(scenario->vfs(), id).completed ? 1 : 0;

    ASSERT_EQ(fault.stats().kills, 1u) << "checkpoint " << cp;
    ++killed_runs;
    failovers += router.ledger().failover_sessions;
    // One shard of two died: the survivor must have finished every session.
    EXPECT_EQ(completed, sessions.size()) << "checkpoint " << cp;
    expect_exact_accounting(router, fleet_vfs);
  }
  EXPECT_EQ(killed_runs, total_checkpoints);
  EXPECT_GT(failovers, 0u);  // the sweep actually exercised failover
}

TEST(FleetFaults, WholeFleetDeathIsCountedNotSilent) {
  const auto sessions = record_sessions(2);

  // Probe run: how many frames does the first session stream? The kill is
  // placed near the end so sample batches are in flight when it fires.
  std::uint64_t frames = 0;
  {
    os::Vfs scratch;
    FleetConfig probe_config;
    probe_config.shards = 1;
    Router probe(scratch, probe_config);
    ASSERT_TRUE(probe
                    .ingest(sessions.begin()->second->vfs(),
                            sessions.begin()->first)
                    .completed);
    frames = probe.fleet_checkpoints();
  }
  ASSERT_GT(frames, 4u);

  os::Vfs fleet_vfs;
  support::FaultInjector fault;
  fault.schedule_kill(support::FaultComponent::kFleet, frames - 2);
  FleetConfig config;
  config.shards = 1;  // no successor to fail over to
  config.fault = &fault;
  Router router(fleet_vfs, config);

  auto it = sessions.begin();
  const SessionOutcome first = router.ingest(it->second->vfs(), it->first);
  ++it;
  const SessionOutcome second = router.ingest(it->second->vfs(), it->first);

  // First session: the only shard died under it — every record sent on the
  // terminal attempt is exact, counted dead loss.
  EXPECT_FALSE(first.completed);
  EXPECT_TRUE(first.lost_dead);
  EXPECT_GT(first.records_sent, 0u);
  EXPECT_EQ(router.ledger().lost_dead_records, first.records_sent);
  EXPECT_EQ(router.ledger().lost_dead_sessions, 1u);
  // Second session: nothing left to even try — refused, not acked.
  EXPECT_TRUE(second.refused);
  EXPECT_EQ(router.ledger().refused_sessions, 1u);
  EXPECT_EQ(router.ledger().acked_sessions, 1u);
  expect_exact_accounting(router, fleet_vfs);
}

// ISSUE 6 acceptance: two runs with the same seed and fault schedule are
// indistinguishable — identical fleet.retried.* counters, identical merged
// profiles, identical manifests.
TEST(FleetFaults, RetrySchedulesAreDeterministicUnderFixedSeed) {
  const auto sessions = record_sessions(2);

  struct RunResult {
    store::FleetLedger ledger;
    std::string top;
    std::string manifest;
  };
  const auto run = [&]() -> RunResult {
    os::Vfs fleet_vfs;
    support::FaultInjector fault(0xfa017);
    support::FaultRule rule;
    rule.path_prefix = "fleet/send/";
    rule.kind = support::FaultKind::kWriteError;
    rule.skip = 3;
    rule.count = 40;
    rule.probability = 0.5;  // seeded coin: deterministic, not trivial
    fault.add_rule(rule);
    FleetConfig config;
    config.shards = 2;
    config.seed = 0xd00d;
    config.retry.jitter = 0.25;  // jitter actually drawn from the rng
    config.fault = &fault;
    Router router(fleet_vfs, config);
    for (const auto& [id, scenario] : sessions) router.ingest(scenario->vfs(), id);
    RunResult result;
    result.ledger = router.ledger();
    result.top = Federator(router).query("top 20");
    result.manifest = *fleet_vfs.read(store::kFleetManifestPath);
    return result;
  };

  const RunResult a = run();
  const RunResult b = run();
  EXPECT_GT(a.ledger.retried_sends, 0u);  // the schedule was exercised
  EXPECT_EQ(a.ledger.retried_sends, b.ledger.retried_sends);
  EXPECT_EQ(a.ledger.retried_giveups, b.ledger.retried_giveups);
  EXPECT_EQ(a.ledger.circuit_opens, b.ledger.circuit_opens);
  EXPECT_EQ(a.ledger.acked_records, b.ledger.acked_records);
  EXPECT_EQ(a.ledger.stored_records, b.ledger.stored_records);
  EXPECT_EQ(a.ledger.lost_wire, b.ledger.lost_wire);
  EXPECT_EQ(a.top, b.top);
  EXPECT_EQ(a.manifest, b.manifest);
}

}  // namespace
}  // namespace viprof::fleet
