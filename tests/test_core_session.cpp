#include <gtest/gtest.h>

#include "core/viprof.hpp"
#include "workloads/generator.hpp"

namespace viprof::core {
namespace {

workloads::Workload session_workload(std::uint64_t ops = 3'000'000) {
  workloads::GeneratorOptions opt;
  opt.name = "sess";
  opt.seed = 5;
  opt.methods = 16;
  opt.total_app_ops = ops;
  opt.alloc_intensity = 0.6;
  opt.nursery_bytes = 512 * 1024;
  opt.native_frac = 0.1;
  opt.syscall_frac = 0.05;
  return workloads::make_synthetic(opt);
}

struct ModeRun {
  std::unique_ptr<jvm::Vm> vm;
  std::unique_ptr<ProfilingSession> session;
  SessionResult result;
};

ModeRun run_mode(ProfilingMode mode, os::Machine& machine) {
  ModeRun run;
  const workloads::Workload w = session_workload();
  run.vm = std::make_unique<jvm::Vm>(machine, w.vm);
  SessionConfig config;
  config.mode = mode;
  run.session = std::make_unique<ProfilingSession>(machine, *run.vm, config);
  run.session->attach();
  run.vm->setup(w.program);
  run.result = run.session->run();
  return run;
}

TEST(Session, BaseModeHasZeroProfilingActivity) {
  os::Machine machine;
  const SessionResult result = run_mode(ProfilingMode::kBase, machine).result;
  EXPECT_EQ(result.nmi_count, 0u);
  EXPECT_EQ(result.nmi_cycles, 0u);
  EXPECT_EQ(result.daemon.drained, 0u);
  EXPECT_EQ(result.agent.maps_written, 0u);
  EXPECT_GT(result.cycles, 0u);
}

TEST(Session, ProfiledModesTakeSamples) {
  os::Machine m1, m2;
  const SessionResult oprof = run_mode(ProfilingMode::kOprofile, m1).result;
  const SessionResult viprof = run_mode(ProfilingMode::kViprof, m2).result;
  EXPECT_GT(oprof.nmi_count, 0u);
  EXPECT_GT(viprof.nmi_count, 0u);
  // Every sample drained or still pending is accounted; none invented.
  EXPECT_GE(oprof.daemon.drained, oprof.nmi_count - oprof.samples_dropped);
}

TEST(Session, ProfilingCostsCycles) {
  os::MachineConfig mcfg;
  mcfg.seed = 77;
  os::Machine base_machine(mcfg), prof_machine(mcfg);
  const SessionResult base = run_mode(ProfilingMode::kBase, base_machine).result;
  const SessionResult prof = run_mode(ProfilingMode::kViprof, prof_machine).result;
  EXPECT_GT(prof.cycles, base.cycles);
}

TEST(Session, ViprofResolvesJitSamples) {
  os::Machine machine;
  ModeRun run = run_mode(ProfilingMode::kViprof, machine);
  ProfilingSession* session = run.session.get();
  const Profile profile = session->build_profile({hw::EventKind::kGlobalPowerEvents});
  EXPECT_GT(profile.domain_total(SampleDomain::kJit, hw::EventKind::kGlobalPowerEvents),
            0u);
  // JIT samples resolve to actual method names, not the unknown bucket.
  bool found_method = false;
  for (const auto& row : profile.rows()) {
    if (row.image == "JIT.App" && row.symbol.find("synthetic.sess") == 0) {
      found_method = true;
    }
  }
  EXPECT_TRUE(found_method);
  EXPECT_GT(session->resolver().jit_resolved(), 0u);
}

TEST(Session, OprofileLeavesJitAnonymous) {
  os::Machine machine;
  ModeRun run = run_mode(ProfilingMode::kOprofile, machine);
  const Profile profile = run.session->build_profile({hw::EventKind::kGlobalPowerEvents});
  EXPECT_EQ(profile.domain_total(SampleDomain::kJit, hw::EventKind::kGlobalPowerEvents),
            0u);
  EXPECT_GT(profile.domain_total(SampleDomain::kAnon, hw::EventKind::kGlobalPowerEvents),
            0u);
  bool anon_row = false;
  for (const auto& row : profile.rows()) {
    if (row.image.find("anon (range:0x") == 0) anon_row = true;
  }
  EXPECT_TRUE(anon_row);
}

TEST(Session, EpochMapsWrittenPerCollection) {
  os::Machine machine;
  const SessionResult result = run_mode(ProfilingMode::kViprof, machine).result;
  EXPECT_GT(result.vm.collections, 0u);
  // One map per closed epoch plus the final shutdown map.
  EXPECT_EQ(result.agent.maps_written, result.vm.collections + 1);
}

TEST(Session, SampleTotalsConserved) {
  os::Machine machine;
  const SessionResult result = run_mode(ProfilingMode::kViprof, machine).result;
  // Daemon drained records = NMI samples + epoch markers - drops.
  EXPECT_EQ(result.daemon.drained + result.samples_dropped,
            result.nmi_count + result.daemon.epoch_markers);
}

TEST(Session, ReportTextContainsHeaders) {
  os::Machine machine;
  ModeRun run = run_mode(ProfilingMode::kViprof, machine);
  const std::string report = run.session->report_text(
      {hw::EventKind::kGlobalPowerEvents, hw::EventKind::kBsqCacheReference}, 10);
  EXPECT_NE(report.find("Time %"), std::string::npos);
  EXPECT_NE(report.find("Dmiss %"), std::string::npos);
}

TEST(Session, CallgraphHasCrossLayerArcs) {
  os::Machine machine;
  ModeRun run = run_mode(ProfilingMode::kViprof, machine);
  CallGraph graph = run.session->build_callgraph(hw::EventKind::kGlobalPowerEvents);
  // The workload's hot method calls memset and sys_write.
  EXPECT_FALSE(graph.cross_layer_arcs().empty());
}

TEST(Session, SmallerPeriodMoreSamples) {
  std::uint64_t counts[2] = {};
  std::uint64_t periods[2] = {45'000, 450'000};
  for (int i = 0; i < 2; ++i) {
    os::MachineConfig mcfg;
    mcfg.seed = 123;
    os::Machine machine(mcfg);
    const workloads::Workload w = session_workload();
    jvm::Vm vm(machine, w.vm);
    SessionConfig config;
    config.mode = ProfilingMode::kViprof;
    config.counters = {{hw::EventKind::kGlobalPowerEvents, periods[i], true}};
    ProfilingSession session(machine, vm, config);
    session.attach();
    vm.setup(w.program);
    counts[i] = session.run().nmi_count;
  }
  EXPECT_GT(counts[0], counts[1] * 5);
}

TEST(Session, BaseModeDisablesCounters) {
  os::Machine machine;
  const workloads::Workload w = session_workload(500'000);
  jvm::Vm vm(machine, w.vm);
  SessionConfig config;
  config.mode = ProfilingMode::kBase;
  ProfilingSession session(machine, vm, config);
  session.attach();
  vm.setup(w.program);
  session.run();
  EXPECT_FALSE(machine.cpu().counters().enabled());
  EXPECT_EQ(machine.cpu().nmi_count(), 0u);
}

}  // namespace
}  // namespace viprof::core
