// Fleet layer, fault-free behaviour: consistent-hash routing, the
// federated-query byte-identity anchor (a federated answer over N shards
// equals a single-server run over the same sessions, byte for byte, at
// shard counts 1/2/4 — ISSUE 6 acceptance), the offline export path, and
// shard join/leave rebalancing.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fleet/federator.hpp"
#include "fleet/fsck.hpp"
#include "fleet/ring.hpp"
#include "fleet/router.hpp"
#include "service/client.hpp"
#include "service/scenario.hpp"
#include "service/server.hpp"

namespace viprof::fleet {
namespace {

const std::vector<hw::EventKind> kEvents = {hw::EventKind::kGlobalPowerEvents,
                                            hw::EventKind::kBsqCacheReference};

service::ScenarioConfig small_scenario(std::uint64_t seed) {
  service::ScenarioConfig config;
  config.vms = 2;
  config.samples_per_event = 800;
  config.epochs = 8;
  config.methods = 64;
  config.seed = seed;
  return config;
}

/// A handful of distinct recorded sessions, keyed by session id.
std::map<std::string, std::unique_ptr<service::RecordedScenario>> record_sessions(
    std::size_t n) {
  std::map<std::string, std::unique_ptr<service::RecordedScenario>> out;
  for (std::size_t i = 0; i < n; ++i)
    out["sess-" + std::to_string(i)] = record_scenario(small_scenario(0x5e55 + i));
  return out;
}

/// The single-server oracle: every session streamed into one
/// ProfileServer, queried directly.
std::unique_ptr<service::ProfileServer> single_server(
    const std::map<std::string, std::unique_ptr<service::RecordedScenario>>& sessions) {
  auto server = std::make_unique<service::ProfileServer>();
  for (const auto& [id, scenario] : sessions) {
    auto conn = server->connect(id);
    service::ReplayClient client(scenario->vfs(), id, *conn,
                                 service::ReplayOptions{256, nullptr, {}});
    EXPECT_TRUE(client.run());
  }
  server->drain();
  return server;
}

TEST(Ring, PreferenceListsAreStableAndComplete) {
  Ring ring(16);
  ring.add("a");
  ring.add("b");
  ring.add("c");
  const auto pref = ring.preference("some-session");
  ASSERT_EQ(pref.size(), 3u);
  EXPECT_EQ(std::set<std::string>(pref.begin(), pref.end()),
            (std::set<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ring.owner("some-session"), pref.front());
  // Same membership, same answer — two routers always agree.
  Ring other(16);
  other.add("c");
  other.add("a");
  other.add("b");
  EXPECT_EQ(other.preference("some-session"), pref);
  // Removing a non-owner leaves the owner in place.
  Ring smaller = ring;
  const std::string victim = pref.back();
  smaller.remove(victim);
  EXPECT_EQ(smaller.owner("some-session"), pref.front());
}

TEST(Ring, VnodesSpreadSessionsAcrossShards) {
  Ring ring(16);
  ring.add("shard-0");
  ring.add("shard-1");
  ring.add("shard-2");
  std::map<std::string, int> hits;
  for (int i = 0; i < 300; ++i) hits[ring.owner("sess-" + std::to_string(i))]++;
  for (const auto& [shard, count] : hits) {
    EXPECT_GT(count, 30) << shard;  // no shard starves
  }
  EXPECT_EQ(hits.size(), 3u);
}

TEST(FleetRouter, FederatedQueriesMatchSingleServerByteForByte) {
  const auto sessions = record_sessions(5);
  const auto oracle = single_server(sessions);
  const std::string oracle_top = oracle->query("top 20");
  const std::string oracle_sessions = oracle->query("sessions");
  const std::string oracle_top_time = oracle->query("top 10 --event time");

  for (const std::size_t shard_count : {1u, 2u, 4u}) {
    os::Vfs fleet_vfs;
    FleetConfig config;
    config.shards = shard_count;
    Router router(fleet_vfs, config);
    std::set<std::string> used_shards;
    for (const auto& [id, scenario] : sessions) {
      const SessionOutcome outcome = router.ingest(scenario->vfs(), id);
      EXPECT_TRUE(outcome.completed) << id;
      EXPECT_EQ(outcome.attempts, 1u);
      EXPECT_EQ(outcome.records_lost_wire, 0u);
      EXPECT_EQ(outcome.records_lost_queue, 0u);
      EXPECT_EQ(outcome.records_sent, outcome.records_stored);
      used_shards.insert(outcome.shard);
    }
    Federator federator(router);
    EXPECT_EQ(federator.query("top 20"), oracle_top) << shard_count << " shards";
    EXPECT_EQ(federator.query("top 10 --event time"), oracle_top_time);
    EXPECT_EQ(federator.query("sessions"), oracle_sessions);
    if (shard_count == 4) {
      EXPECT_GT(used_shards.size(), 1u);
    }

    // Clean ledger: everything acked was stored, nothing was lost.
    const store::FleetLedger& ledger = router.ledger();
    EXPECT_EQ(ledger.acked_sessions, sessions.size());
    EXPECT_TRUE(ledger.balanced());
    EXPECT_EQ(ledger.lost_wire + ledger.lost_queue + ledger.lost_dead_records, 0u);
    const FleetFsckReport fsck = fsck_fleet(fleet_vfs);
    EXPECT_EQ(fsck.verdict, core::FsckVerdict::kClean) << fsck.summary;
    EXPECT_TRUE(fsck.stored_matches);
  }
}

TEST(FleetRouter, PerSessionProfilesMatchSingleServerReports) {
  const auto sessions = record_sessions(3);
  const auto oracle = single_server(sessions);

  os::Vfs fleet_vfs;
  FleetConfig config;
  config.shards = 3;
  Router router(fleet_vfs, config);
  for (const auto& [id, scenario] : sessions)
    ASSERT_TRUE(router.ingest(scenario->vfs(), id).completed);

  Federator federator(router);
  for (const auto& [id, scenario] : sessions) {
    EXPECT_EQ(federator.session_profile(id).render(kEvents, 15),
              oracle->session_report(id, 15, kEvents))
        << id;
  }
  // diff of a session against itself is the null regression — and must
  // render identically through the partitions.
  EXPECT_EQ(federator.render_diff("sess-0", "sess-1",
                                  hw::EventKind::kGlobalPowerEvents, 10),
            core::render_diff(oracle->session("sess-0")->merged_profile(),
                              oracle->session("sess-1")->merged_profile(),
                              hw::EventKind::kGlobalPowerEvents, 10));
}

TEST(FleetRouter, OfflineFleetAnswersMatchLiveFederator) {
  const auto sessions = record_sessions(3);
  os::Vfs fleet_vfs;
  FleetConfig config;
  config.shards = 2;
  Router router(fleet_vfs, config);
  for (const auto& [id, scenario] : sessions)
    ASSERT_TRUE(router.ingest(scenario->vfs(), id).completed);
  Federator federator(router);

  // The fleet namespace *is* the durable state: re-opening it cold (the
  // viprof_fleet query path) answers identically to the live federator.
  os::Vfs exported = fleet_vfs;
  auto offline = OfflineFleet::open(exported);
  ASSERT_TRUE(offline.has_value());
  EXPECT_EQ(offline->manifest().ledger.acked_sessions, sessions.size());
  EXPECT_EQ(offline->query("top 20"), federator.query("top 20"));
  EXPECT_EQ(offline->sessions().size(), sessions.size());
  for (const auto& [id, scenario] : sessions)
    EXPECT_EQ(offline->session_profile(id).render(kEvents, 15),
              federator.session_profile(id).render(kEvents, 15));

  // A damaged manifest is all-or-nothing.
  os::Vfs damaged = fleet_vfs;
  std::string bytes = *damaged.read(store::kFleetManifestPath);
  bytes[bytes.size() / 2] ^= 0x20;
  damaged.write(store::kFleetManifestPath, bytes);
  EXPECT_FALSE(OfflineFleet::open(damaged).has_value());
}

TEST(FleetRouter, JoinAndLeaveRebalanceTheRing) {
  const auto sessions = record_sessions(4);
  os::Vfs fleet_vfs;
  FleetConfig config;
  config.shards = 2;
  Router router(fleet_vfs, config);

  auto it = sessions.begin();
  ASSERT_TRUE(router.ingest(it->second->vfs(), it->first).completed);
  ++it;

  // Join: the new shard becomes routable for subsequent sessions.
  ASSERT_TRUE(router.add_shard("shard-joined"));
  EXPECT_FALSE(router.add_shard("shard-joined"));  // name taken
  EXPECT_TRUE(router.routable("shard-joined"));
  for (; it != sessions.end(); ++it)
    ASSERT_TRUE(router.ingest(it->second->vfs(), it->first).completed);

  // Leave: quiesced, flushed, out of the ring — its partition still serves.
  const std::string departing = router.ring().owner("sess-0");
  ASSERT_TRUE(router.remove_shard(departing));
  EXPECT_FALSE(router.routable(departing));
  EXPECT_NE(router.partition(departing), nullptr);
  EXPECT_EQ(router.ledger().rebalances, 2u);

  // Every stored session is still fully answerable after both rebalances.
  Federator federator(router);
  EXPECT_EQ(federator.sessions().size(), sessions.size());
  const auto oracle = single_server(sessions);
  EXPECT_EQ(federator.query("top 20"), oracle->query("top 20"));

  // A session routed after the leave lands on a surviving shard.
  auto extra = record_scenario(small_scenario(0x9999));
  const SessionOutcome outcome = router.ingest(extra->vfs(), "zz-late");
  EXPECT_TRUE(outcome.completed);
  EXPECT_NE(outcome.shard, departing);

  const FleetFsckReport fsck = fsck_fleet(fleet_vfs);
  EXPECT_EQ(fsck.verdict, core::FsckVerdict::kClean) << fsck.summary;
}

// --- Cross-layer trace propagation + fleet telemetry (DESIGN.md §13) --------

TEST(FleetTrace, SessionsCarryMintedTraceAcrossShards) {
  const auto sessions = record_sessions(4);
  os::Vfs fleet_vfs;
  FleetConfig config;
  config.shards = 3;
  Router router(fleet_vfs, config);
  std::set<std::string> used_shards;
  for (const auto& [id, scenario] : sessions) {
    const SessionOutcome outcome = router.ingest(scenario->vfs(), id);
    ASSERT_TRUE(outcome.completed);
    used_shards.insert(outcome.shard);

    // The wire carried the router's minted context; the shard's session
    // adopted it rather than minting its own.
    service::ProfileServer* server = router.server(outcome.shard);
    ASSERT_NE(server, nullptr);
    const auto session = server->session(id);
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(session->trace(), support::TraceContext::mint(id).trace_id);
  }
  ASSERT_GT(used_shards.size(), 1u);  // the merge below spans ≥ 2 shards

  // Every shard's ingest spans are tagged with some session's trace id.
  std::set<std::uint64_t> expected;
  for (const auto& [id, scenario] : sessions)
    expected.insert(support::TraceContext::mint(id).trace_id);
  for (const std::string& shard : used_shards) {
    for (const support::Span& s : router.server(shard)->telemetry().spans().spans()) {
      if (std::string(s.cat).rfind("lock.", 0) == 0) continue;  // untagged
      EXPECT_TRUE(expected.count(s.trace)) << s.name << " on " << shard;
    }
  }

  // The federated merge folds the fleet ring and every shard ring into one
  // well-formed Chrome trace with one pid lane per process.
  Federator federator(router);
  const std::optional<support::ChromeTrace> merged =
      support::parse_chrome_trace(federator.query("trace"));
  ASSERT_TRUE(merged.has_value());
  std::set<int> pids;
  bool saw_fleet = false, saw_service = false;
  for (const support::ChromeTraceEvent& e : merged->events) {
    EXPECT_FALSE(e.name.empty());
    pids.insert(e.pid);
    if (e.name == "fleet.ingest") saw_fleet = true;
    if (e.name.rfind("service.", 0) == 0) saw_service = true;
  }
  EXPECT_GE(pids.size(), 1u + used_shards.size());  // fleet + each used shard
  EXPECT_TRUE(saw_fleet);
  EXPECT_TRUE(saw_service);
}

TEST(FleetTrace, ExportedTelemetryAnswersOffline) {
  const auto sessions = record_sessions(3);
  os::Vfs fleet_vfs;
  FleetConfig config;
  config.shards = 2;
  Router router(fleet_vfs, config);
  for (const auto& [id, scenario] : sessions)
    ASSERT_TRUE(router.ingest(scenario->vfs(), id).completed);

  // fleet + 2 shards, metrics + trace each.
  EXPECT_EQ(router.export_telemetry(), 6u);
  // Telemetry files must not disturb the fsck verdict.
  const FleetFsckReport fsck = fsck_fleet(fleet_vfs);
  EXPECT_EQ(fsck.verdict, core::FsckVerdict::kClean) << fsck.summary;

  os::Vfs exported = fleet_vfs;
  auto offline = OfflineFleet::open(exported);
  ASSERT_TRUE(offline.has_value());

  // stats: lock contention metrics from every source, shards included.
  const std::string stats = offline->query("stats --json");
  EXPECT_NE(stats.find("\"fleet\""), std::string::npos);
  EXPECT_NE(stats.find("\"shard-0\""), std::string::npos);
  EXPECT_NE(stats.find("lock.store.manifest.acquired"), std::string::npos);
  EXPECT_NE(stats.find("lock.service.session.agg.acquired"), std::string::npos);
  EXPECT_TRUE(support::json_well_formed(stats));

  // trace: the offline merge parses and spans the same processes as live.
  const std::optional<support::ChromeTrace> merged =
      support::parse_chrome_trace(offline->query("trace"));
  ASSERT_TRUE(merged.has_value());
  std::set<int> pids;
  for (const support::ChromeTraceEvent& e : merged->events) pids.insert(e.pid);
  EXPECT_GE(pids.size(), 3u);  // fleet + both shards

  // Live federator sections agree on the sources.
  Federator federator(router);
  const std::string live = federator.query("stats");
  EXPECT_NE(live.find("== fleet =="), std::string::npos);
  EXPECT_NE(live.find("== shard-0 =="), std::string::npos);
  EXPECT_NE(live.find("== shard-1 =="), std::string::npos);
}

}  // namespace
}  // namespace viprof::fleet
