#include <gtest/gtest.h>

#include "support/histogram.hpp"

namespace viprof::support {
namespace {

TEST(Histogram, BucketsValues) {
  Histogram h(0.0, 10.0, 5);  // [0,10) [10,20) ... [40,50)
  h.add(5.0);
  h.add(15.0);
  h.add(15.5);
  h.add(49.9);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h(10.0, 5.0, 2);  // [10,15) [15,20)
  h.add(9.9);
  h.add(20.0);
  h.add(12.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.5, 10);
  h.add(2.5, 5);
  EXPECT_EQ(h.bucket(0), 10u);
  EXPECT_EQ(h.bucket(2), 5u);
  EXPECT_EQ(h.total(), 15u);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h(0.0, 1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  const double q25 = h.quantile(0.25);
  const double q50 = h.quantile(0.50);
  const double q90 = h.quantile(0.90);
  EXPECT_LT(q25, q50);
  EXPECT_LT(q50, q90);
  EXPECT_NEAR(q50, 50.0, 2.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('2'), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace viprof::support
