#include <gtest/gtest.h>

#include <memory>

#include "core/resolver.hpp"
#include "jvm/boot_image.hpp"
#include "os/loader.hpp"

namespace viprof::core {
namespace {

class ResolverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    os::Process& proc = machine_.spawn("jikesrvm");
    pid_ = proc.pid();

    os::Image& exec =
        machine_.registry().create("jikesrvm", os::ImageKind::kExecutable, 32 * 1024);
    exec.symbols().add("main", 0, 4096);
    exec_base_ = machine_.loader().load_executable(proc, exec.id()).start;

    os::Image& libc =
        machine_.registry().create("libc-2.3.2.so", os::ImageKind::kSharedLib, 64 * 1024);
    libc.symbols().add("memset", 0x1000, 0x800);
    libc_base_ = machine_.loader().load_library(proc, libc.id()).start;

    os::Image& stripped = machine_.registry().create(
        "libxul.so.0d", os::ImageKind::kSharedLib, 64 * 1024, /*stripped=*/true);
    stripped.symbols().add("hidden", 0, 0x1000);
    stripped_base_ = machine_.loader().load_library(proc, stripped.id()).start;

    boot_ = std::make_unique<jvm::BootImage>(machine_.registry(), machine_.vfs(),
                                             "RVM.map");
    boot_base_ = machine_.loader().map_at_anon_slot(proc, boot_->image()).start;

    heap_base_ = machine_.loader().map_anon(proc, 4 << 20).start;

    VmRegistration reg;
    reg.pid = pid_;
    reg.heap_lo = heap_base_;
    reg.heap_hi = heap_base_ + (4 << 20);
    reg.boot_base = boot_base_;
    reg.boot_size = boot_->size();
    reg.boot_map_path = "RVM.map";
    reg.jit_map_dir = "jit_maps";
    table_.add(reg);

    // Two epochs of JIT code maps: method m at A in epoch 0, moved to B.
    CodeMapFile map0;
    map0.epoch = 0;
    map0.entries.push_back({heap_base_ + 0x100, 0x80, "app.Klass.hot"});
    machine_.vfs().write(CodeMapFile::path_for("jit_maps", pid_, 0), map0.serialize());
    CodeMapFile map1;
    map1.epoch = 1;
    map1.entries.push_back({heap_base_ + 0x900, 0x80, "app.Klass.hot"});
    machine_.vfs().write(CodeMapFile::path_for("jit_maps", pid_, 1), map1.serialize());
  }

  Resolver make_resolver(bool vm_aware) {
    Resolver r(machine_, table_, vm_aware);
    r.load();
    return r;
  }

  os::Machine machine_;
  RegistrationTable table_;
  std::unique_ptr<jvm::BootImage> boot_;
  hw::Pid pid_ = 0;
  hw::Address exec_base_ = 0, libc_base_ = 0, stripped_base_ = 0;
  hw::Address boot_base_ = 0, heap_base_ = 0;
};

TEST_F(ResolverTest, KernelSymbols) {
  Resolver r = make_resolver(true);
  const auto res = r.resolve_pc(machine_.kernel().routine("sys_read").base + 4,
                                hw::CpuMode::kKernel, pid_, 0);
  EXPECT_EQ(res.domain, SampleDomain::kKernel);
  EXPECT_EQ(res.image, "vmlinux");
  EXPECT_EQ(res.symbol, "sys_read");
}

TEST_F(ResolverTest, KernelPcInUserModeStillKernel) {
  // NMI skid can report user mode with a kernel PC; the range check wins.
  Resolver r = make_resolver(true);
  const auto res = r.resolve_pc(machine_.kernel().routine("schedule").base,
                                hw::CpuMode::kUser, pid_, 0);
  EXPECT_EQ(res.domain, SampleDomain::kKernel);
}

TEST_F(ResolverTest, ExecutableAndLibrarySymbols) {
  Resolver r = make_resolver(true);
  const auto exec_res = r.resolve_pc(exec_base_ + 10, hw::CpuMode::kUser, pid_, 0);
  EXPECT_EQ(exec_res.image, "jikesrvm");
  EXPECT_EQ(exec_res.symbol, "main");
  const auto lib_res = r.resolve_pc(libc_base_ + 0x1200, hw::CpuMode::kUser, pid_, 0);
  EXPECT_EQ(lib_res.image, "libc-2.3.2.so");
  EXPECT_EQ(lib_res.symbol, "memset");
}

TEST_F(ResolverTest, SymbolGapsReportNoSymbols) {
  Resolver r = make_resolver(true);
  const auto res = r.resolve_pc(libc_base_ + 0x5000, hw::CpuMode::kUser, pid_, 0);
  EXPECT_EQ(res.image, "libc-2.3.2.so");
  EXPECT_EQ(res.symbol, "(no symbols)");
}

TEST_F(ResolverTest, StrippedLibraryHidesSymbols) {
  Resolver r = make_resolver(true);
  const auto res = r.resolve_pc(stripped_base_ + 10, hw::CpuMode::kUser, pid_, 0);
  EXPECT_EQ(res.image, "libxul.so.0d");
  EXPECT_EQ(res.symbol, "(no symbols)");
}

TEST_F(ResolverTest, BootImageThroughRvmMap) {
  Resolver r = make_resolver(true);
  const jvm::BootRoutine& routine = boot_->routines(jvm::VmService::kGc).front();
  const auto res = r.resolve_pc(boot_base_ + routine.offset + 8, hw::CpuMode::kUser,
                                pid_, 0);
  EXPECT_EQ(res.domain, SampleDomain::kBoot);
  EXPECT_EQ(res.image, "RVM.map");
  EXPECT_EQ(res.symbol, routine.name);
}

TEST_F(ResolverTest, BootImageOpaqueToStockOprofile) {
  Resolver r = make_resolver(false);
  const auto res = r.resolve_pc(boot_base_ + 8, hw::CpuMode::kUser, pid_, 0);
  EXPECT_EQ(res.domain, SampleDomain::kBoot);
  EXPECT_EQ(res.image, "RVM.code.image");
  EXPECT_EQ(res.symbol, "(no symbols)");
}

TEST_F(ResolverTest, JitSamplesResolveThroughEpochMaps) {
  Resolver r = make_resolver(true);
  const auto res =
      r.resolve_pc(heap_base_ + 0x120, hw::CpuMode::kUser, pid_, 0);
  EXPECT_EQ(res.domain, SampleDomain::kJit);
  EXPECT_EQ(res.image, "JIT.App");
  EXPECT_EQ(res.symbol, "app.Klass.hot");
  EXPECT_EQ(res.maps_searched, 1u);
}

TEST_F(ResolverTest, MovedMethodResolvesInLaterEpoch) {
  Resolver r = make_resolver(true);
  const auto res =
      r.resolve_pc(heap_base_ + 0x940, hw::CpuMode::kUser, pid_, 1);
  EXPECT_EQ(res.symbol, "app.Klass.hot");
  EXPECT_EQ(res.maps_searched, 1u);
}

TEST_F(ResolverTest, BackwardSearchAcrossEpochs) {
  // Sample in epoch 1 at the epoch-0 address: method not compiled or moved
  // in epoch 1 -> backward search lands in map 0.
  Resolver r = make_resolver(true);
  const auto res =
      r.resolve_pc(heap_base_ + 0x120, hw::CpuMode::kUser, pid_, 1);
  EXPECT_EQ(res.symbol, "app.Klass.hot");
  EXPECT_EQ(res.maps_searched, 2u);
  EXPECT_GT(r.backward_steps(), 0u);
}

TEST_F(ResolverTest, UnknownJitAddress) {
  Resolver r = make_resolver(true);
  const auto res =
      r.resolve_pc(heap_base_ + 0x3f'0000, hw::CpuMode::kUser, pid_, 1);
  EXPECT_EQ(res.domain, SampleDomain::kJit);
  EXPECT_EQ(res.symbol, "(unknown JIT code)");
  EXPECT_EQ(r.jit_unresolved(), 1u);
}

TEST_F(ResolverTest, StockOprofileReportsAnonRange) {
  Resolver r = make_resolver(false);
  const auto res = r.resolve_pc(heap_base_ + 0x120, hw::CpuMode::kUser, pid_, 0);
  EXPECT_EQ(res.domain, SampleDomain::kAnon);
  EXPECT_NE(res.image.find("anon (range:0x"), std::string::npos);
  EXPECT_NE(res.image.find("jikesrvm"), std::string::npos);
  EXPECT_EQ(res.symbol, "(no symbols)");
}

TEST_F(ResolverTest, UnknownPidAndUnmappedPc) {
  Resolver r = make_resolver(true);
  const auto nopid = r.resolve_pc(0x1234, hw::CpuMode::kUser, 999, 0);
  EXPECT_EQ(nopid.domain, SampleDomain::kUnknown);
  const auto unmapped = r.resolve_pc(0xbf00'0000, hw::CpuMode::kUser, pid_, 0);
  EXPECT_EQ(unmapped.domain, SampleDomain::kUnknown);
  EXPECT_EQ(unmapped.image, "unmapped");
}

TEST_F(ResolverTest, ResolveLoggedSampleConvenience) {
  Resolver r = make_resolver(true);
  LoggedSample s;
  s.pc = heap_base_ + 0x120;
  s.mode = hw::CpuMode::kUser;
  s.pid = pid_;
  s.epoch = 0;
  EXPECT_EQ(r.resolve(s).symbol, "app.Klass.hot");
  EXPECT_EQ(r.jit_resolved(), 1u);
}

}  // namespace
}  // namespace viprof::core
