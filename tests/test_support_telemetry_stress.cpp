// Multi-threaded stress over the telemetry registry: concurrent
// registration of overlapping metric names plus hot-path updates through
// registered handles. Runs in the telemetry suite, which CI also executes
// under ThreadSanitizer — the assertions here are exact-count checks, the
// data-race checking is TSan's job.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "support/telemetry.hpp"

namespace viprof::support {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 20'000;

TEST(TelemetryStress, SharedCounterCountsEveryIncrement) {
  Telemetry telemetry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&telemetry] {
      // Half the threads re-register by name each time (registry path),
      // half bump a pre-registered handle (hot path). Both must count.
      Counter& mine = telemetry.counter("stress.shared");
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (i % 2 == 0) mine.inc();
        else telemetry.counter("stress.shared").inc();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(telemetry.counter("stress.shared").value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(TelemetryStress, DistinctNamesRegisterConcurrently) {
  Telemetry telemetry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&telemetry, t] {
      const std::string name = "stress.per_thread." + std::to_string(t);
      for (int i = 0; i < kOpsPerThread; ++i) telemetry.counter(name).inc();
      telemetry.gauge(name + ".gauge").set(static_cast<double>(t));
    });
  }
  for (auto& t : threads) t.join();

  const TelemetrySnapshot snap = telemetry.snapshot();
  for (int t = 0; t < kThreads; ++t) {
    const std::string name = "stress.per_thread." + std::to_string(t);
    EXPECT_EQ(snap.counter(name), static_cast<std::uint64_t>(kOpsPerThread)) << name;
    EXPECT_EQ(snap.gauge(name + ".gauge"), static_cast<double>(t));
  }
}

TEST(TelemetryStress, SharedHistogramKeepsEverySample) {
  Telemetry telemetry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&telemetry, t] {
      LatencyHistogram& hist = telemetry.histogram("stress.hist", 0.0, 10.0, 32);
      for (int i = 0; i < kOpsPerThread; ++i)
        hist.add(static_cast<double>((t * kOpsPerThread + i) % 320));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(telemetry.histogram("stress.hist", 0.0, 10.0, 32).summary().count,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(TelemetryStress, MixedWorkloadSnapshotsWhileWriting) {
  // Snapshot readers racing writers: every snapshot must be internally
  // sane (no torn names, monotone counter reads).
  Telemetry telemetry;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&telemetry, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        telemetry.counter("mixed.ctr").inc();
        telemetry.gauge("mixed.gauge").set(1.0);
        telemetry.histogram("mixed.hist", 0.0, 1.0, 8).add(0.5);
      }
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const TelemetrySnapshot snap = telemetry.snapshot();
    const std::uint64_t now = snap.counter("mixed.ctr");
    EXPECT_GE(now, last);
    last = now;
  }
  stop = true;
  for (auto& t : writers) t.join();
}

}  // namespace
}  // namespace viprof::support
