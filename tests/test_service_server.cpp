#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/query.hpp"
#include "service/scenario.hpp"
#include "service/server.hpp"

namespace viprof::service {
namespace {

const std::vector<hw::EventKind> kEvents = {hw::EventKind::kGlobalPowerEvents,
                                            hw::EventKind::kBsqCacheReference};

ScenarioConfig small_scenario() {
  ScenarioConfig config;
  config.vms = 2;
  config.samples_per_event = 1500;
  config.epochs = 12;
  config.methods = 96;
  return config;
}

void replay(ProfileServer& server, const os::Vfs& world, const std::string& id,
            std::size_t batch_records = 128) {
  auto conn = server.connect(id);
  ReplayClient client(world, id, *conn, ReplayOptions{batch_records, nullptr, {}});
  ASSERT_TRUE(client.run());
}

// The correctness anchor: the online rolling aggregate must render
// byte-identically to offline viprof_report over the same sample stream,
// at any ingest thread count and batch size.
TEST(ProfileServer, OnlineAggregateMatchesOfflineReport) {
  auto scenario = record_scenario(small_scenario());
  const std::string offline = offline_render(scenario->vfs(), kEvents, 30);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t batch : {std::size_t{32}, std::size_t{997}}) {
      ServerConfig config;
      config.ingest_threads = threads;
      config.queue_capacity = 4;  // force backpressure on the way
      ProfileServer server(config);
      replay(server, scenario->vfs(), "s", batch);
      server.drain();
      EXPECT_EQ(server.session_report("s", 30, kEvents), offline)
          << "threads=" << threads << " batch=" << batch;
    }
  }
}

TEST(ProfileServer, ConcurrentSessionsStayIsolated) {
  // Three different recorded sessions streamed by three client threads at
  // once: each session's aggregate must match its own offline report.
  std::vector<std::unique_ptr<RecordedScenario>> scenarios;
  std::vector<std::string> offlines;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ScenarioConfig config = small_scenario();
    config.samples_per_event = 800;
    config.seed = 0x900d + i * 17;
    scenarios.push_back(record_scenario(config));
    offlines.push_back(offline_render(scenarios.back()->vfs(), kEvents, 20));
  }

  ServerConfig config;
  config.ingest_threads = 4;
  ProfileServer server(config);
  {
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      clients.emplace_back([&server, &scenarios, i] {
        const std::string id = "vmhost-" + std::to_string(i);
        auto conn = server.connect(id);
        ReplayClient client(scenarios[i]->vfs(), id, *conn, ReplayOptions{64, nullptr, {}});
        EXPECT_TRUE(client.run());
      });
    }
    for (auto& t : clients) t.join();
  }
  server.drain();

  ASSERT_EQ(server.session_ids().size(), 3u);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(server.session_report("vmhost-" + std::to_string(i), 20, kEvents),
              offlines[i])
        << "session " << i;
  }
}

TEST(ProfileServer, BackpressureNeverDrops) {
  auto scenario = record_scenario(small_scenario());
  ServerConfig config;
  config.ingest_threads = 2;
  config.queue_capacity = 1;  // maximal pressure
  ProfileServer server(config);
  replay(server, scenario->vfs(), "s", 16);
  server.drain();

  const SessionStats stats = server.session("s")->stats();
  EXPECT_EQ(stats.batches_dropped, 0u);
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(stats.records_ingested, 2u * small_scenario().samples_per_event);
  EXPECT_TRUE(stats.ended);
  EXPECT_EQ(stats.batches_applied, stats.batches_enqueued);
}

TEST(ProfileServer, QueriesAnswerDuringAndAfterIngest) {
  auto scenario = record_scenario(small_scenario());
  ProfileServer server;

  // Queries racing a live stream must stay well-formed (they see a clean
  // prefix of the stream, applied in order).
  std::thread streamer([&] {
    auto conn = server.connect("s");
    ReplayClient client(scenario->vfs(), "s", *conn, ReplayOptions{32, nullptr, {}});
    EXPECT_TRUE(client.run());
  });
  for (int i = 0; i < 20; ++i) {
    const std::string out = server.query("top 5 --session s");
    // Before the kOpenSession frame lands the only acceptable answer is
    // "no such session"; afterwards the query must render cleanly.
    if (out.rfind("error", 0) == 0) {
      EXPECT_NE(out.find("no such session"), std::string::npos) << out;
    }
    std::this_thread::yield();
  }
  streamer.join();
  server.drain();

  EXPECT_NE(server.query("sessions").find("ended"), std::string::npos);
  EXPECT_NE(server.query("top 5").find("Image name"), std::string::npos);
  EXPECT_NE(server.query("arcs 5").find("Caller"), std::string::npos);
  EXPECT_EQ(server.query("nonsense").rfind("error", 0), 0u);
  // since-epoch 0 covers every epoch (ties may order differently than the
  // merged profile, so compare against the epoch-merged rendering).
  EXPECT_EQ(server.query("since-epoch 0 --session s"),
            server.session("s")->profile_since_epoch(0).render(kEvents, 20));
}

TEST(ProfileServer, QueryFramesTravelTheWire) {
  auto scenario = record_scenario(small_scenario());
  ProfileServer server;
  auto conn = server.connect("s");
  {
    ReplayClient client(scenario->vfs(), "s", *conn, ReplayOptions{128, nullptr, {}});
    ASSERT_TRUE(client.run());
  }
  server.drain();

  ASSERT_TRUE(conn->send(encode_frame(FrameType::kQuery, "sessions")));
  std::optional<Frame> reply;
  std::optional<Frame> last;
  while ((last = conn->next_reply())) reply = last;
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kReply);
  EXPECT_NE(reply->payload.find("ended"), std::string::npos);
  EXPECT_GT(server.telemetry().snapshot().counter("service.queries"), 0u);
}

TEST(ProfileServer, RegistrationHardeningOverTheWire) {
  ProfileServer server;
  auto conn = server.connect("c");
  ASSERT_TRUE(conn->send(encode_frame(FrameType::kOpenSession, "s")));
  ASSERT_TRUE(conn->send(
      encode_frame(FrameType::kRegisterVm, "reg 7 10000 20000 0 0 - -")));
  // Duplicate pid: rejected with a kError reply, counted, first one kept.
  ASSERT_TRUE(conn->send(
      encode_frame(FrameType::kRegisterVm, "reg 7 30000 40000 0 0 - -")));
  // Inverted heap range: rejected.
  ASSERT_TRUE(conn->send(
      encode_frame(FrameType::kRegisterVm, "reg 8 5000 4000 0 0 - -")));

  std::size_t errors = 0;
  while (auto reply = conn->next_reply())
    if (reply->type == FrameType::kError) ++errors;
  EXPECT_EQ(errors, 2u);

  const SessionStats stats = server.session("s")->stats();
  EXPECT_EQ(stats.registrations, 1u);
  EXPECT_EQ(stats.registrations_rejected, 2u);
  EXPECT_EQ(server.session("s")->registration_version(), 1u);
}

TEST(ProfileServer, FramesBeforeOpenSessionAreRejected) {
  ProfileServer server;
  auto conn = server.connect("c");
  ASSERT_TRUE(conn->send(
      encode_frame(FrameType::kSampleBatch, "batch GLOBAL_POWER_EVENTS 0\n")));
  auto reply = conn->next_reply();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_TRUE(server.session_ids().empty());
}

TEST(ProfileServer, CodeMapCacheIsSharedAndBounded) {
  ScenarioConfig sc = small_scenario();
  sc.vms = 3;  // every batch pins 3 (pid, ceiling) keys — the 2-entry
               // cache must evict on every batch, never corrupt results
  auto scenario = record_scenario(sc);

  ServerConfig config;
  config.ingest_threads = 2;
  config.code_map_cache_capacity = 2;
  ProfileServer server(config);
  replay(server, scenario->vfs(), "s", 48);
  server.drain();

  EXPECT_LE(server.code_map_cache().capacity(), 2u);
  // 3 pids cycling through 2 slots guarantee misses and evictions; whether
  // ingest ever *hits* depends on worker interleaving, so exercise the hit
  // path deterministically with a direct probe instead.
  EXPECT_GT(server.code_map_cache().misses(), 0u);
  EXPECT_GT(server.code_map_cache().evictions(), 0u);
  const std::uint64_t hits_before = server.code_map_cache().hits();
  const auto probe = [] { return core::CodeMapIndex(); };
  (void)server.code_map_cache().get("probe", 999, 0, probe);  // miss
  (void)server.code_map_cache().get("probe", 999, 0, probe);  // hit
  EXPECT_EQ(server.code_map_cache().hits(), hits_before + 1);
  // Metrics are published to the server's registry as monotonic counters.
  const auto snap = server.telemetry().snapshot();
  EXPECT_GT(snap.counter("service.map_cache.misses"), 0u);
  EXPECT_GT(snap.counter("service.map_cache.evictions"), 0u);
  // A tiny cache costs rebuilds, never correctness.
  EXPECT_EQ(server.session_report("s", 20, kEvents),
            offline_render(scenario->vfs(), kEvents, 20));
}

TEST(ProfileServer, SnapshotRoundTripsThroughQueryModule) {
  auto scenario = record_scenario(small_scenario());
  ProfileServer server;
  replay(server, scenario->vfs(), "s");
  server.drain();

  const auto parsed = ServiceSnapshot::parse(server.snapshot());
  ASSERT_TRUE(parsed.has_value());
  const SessionSnapshot* s = parsed->find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->profile.render(kEvents, 20),
            server.session("s")->merged_profile().render(kEvents, 20));
  EXPECT_EQ(profile_since(*s, 6).render(kEvents, 20),
            server.session("s")->profile_since_epoch(6).render(kEvents, 20));
}

TEST(ProfileServer, CallGraphAccumulatesArcs) {
  auto scenario = record_scenario(small_scenario());
  ProfileServer server;
  replay(server, scenario->vfs(), "s");
  server.drain();

  const std::vector<core::CallArc> arcs = server.session("s")->ranked_arcs();
  ASSERT_FALSE(arcs.empty());
  // The scenario's caller is always the VM executable's main symbol.
  EXPECT_EQ(arcs[0].caller_symbol, "main");
  for (std::size_t i = 1; i < arcs.size(); ++i)
    EXPECT_GE(arcs[i - 1].count, arcs[i].count);
}

}  // namespace
}  // namespace viprof::service
