#include <gtest/gtest.h>

#include "hw/access_pattern.hpp"

namespace viprof::hw {
namespace {

TEST(AccessSampler, ZeroOpsProducesNothing) {
  AccessSampler sampler(1);
  CacheModel cache;
  AccessPattern p;
  const SampledAccesses out = sampler.sample(p, 0, cache);
  EXPECT_EQ(out.accesses, 0.0);
  EXPECT_EQ(cache.accesses(), 0u);
}

TEST(AccessSampler, AccessesScaleWithOps) {
  AccessSampler sampler(1);
  CacheModel cache;
  AccessPattern p;
  p.accesses_per_op = 0.5;
  const SampledAccesses out = sampler.sample(p, 10'000, cache);
  EXPECT_DOUBLE_EQ(out.accesses, 5'000.0);
  // But only kProbesPerChunk real cache probes were issued.
  EXPECT_EQ(cache.accesses(), AccessSampler::kProbesPerChunk);
}

TEST(AccessSampler, MissesNeverExceedAccesses) {
  AccessSampler sampler(2);
  CacheModel cache;
  AccessPattern p;
  p.working_set = 8 * 1024 * 1024;  // guaranteed misses
  p.random_frac = 1.0;
  p.hot_frac = 0.0;
  for (int i = 0; i < 50; ++i) {
    const SampledAccesses out = sampler.sample(p, 4'000, cache);
    EXPECT_LE(out.l2_misses, out.l1_misses + 1e-9);
    EXPECT_LE(out.l1_misses, out.accesses + 1e-9);
  }
}

TEST(AccessSampler, HotRegionStaysResident) {
  AccessSampler sampler(3);
  CacheModel cache;
  AccessPattern p;
  p.base = 0x1000'0000;
  p.working_set = 16 * 1024 * 1024;
  p.hot_frac = 1.0;  // every access in the hot 2KB
  double misses = 0.0;
  for (int i = 0; i < 100; ++i) misses = sampler.sample(p, 4'000, cache).l1_misses;
  EXPECT_EQ(misses, 0.0);  // warmed up: 2KB lives in L1
}

TEST(AccessSampler, ColdRandomWalkMisses) {
  AccessSampler sampler(4);
  CacheModel cache;
  AccessPattern p;
  p.base = 0x2000'0000;
  p.working_set = 64 * 1024 * 1024;  // far beyond L2
  p.random_frac = 1.0;
  p.hot_frac = 0.0;
  double total_l2 = 0.0;
  for (int i = 0; i < 20; ++i) total_l2 += sampler.sample(p, 4'000, cache).l2_misses;
  EXPECT_GT(total_l2, 0.0);
}

TEST(AccessSampler, HotBaseRedirectsHotAccesses) {
  AccessSampler sampler(5);
  CacheModel cache;
  AccessPattern a, b;
  a.base = 0x1000'0000;
  b.base = 0x7000'0000;
  a.hot_base = b.hot_base = 0x5000'0000;  // shared stack
  a.hot_frac = b.hot_frac = 1.0;
  for (int i = 0; i < 50; ++i) sampler.sample(a, 4'000, cache);
  // Pattern b's hot region is the same memory: immediately warm.
  const SampledAccesses out = sampler.sample(b, 4'000, cache);
  EXPECT_EQ(out.l1_misses, 0.0);
}

TEST(AccessSampler, DeterministicForSeed) {
  AccessSampler s1(9), s2(9);
  CacheModel c1, c2;
  AccessPattern p;
  p.working_set = 512 * 1024;
  p.random_frac = 0.4;
  p.hot_frac = 0.5;
  for (int i = 0; i < 30; ++i) {
    const auto a = s1.sample(p, 4'000, c1);
    const auto b = s2.sample(p, 4'000, c2);
    EXPECT_DOUBLE_EQ(a.l1_misses, b.l1_misses);
    EXPECT_DOUBLE_EQ(a.l2_misses, b.l2_misses);
  }
}

TEST(AccessSampler, FewOpsFewProbes) {
  AccessSampler sampler(6);
  CacheModel cache;
  AccessPattern p;
  p.accesses_per_op = 0.5;
  sampler.sample(p, 4, cache);  // 2 scaled accesses -> at most 2 probes
  EXPECT_LE(cache.accesses(), 2u);
}

}  // namespace
}  // namespace viprof::hw
