#include <gtest/gtest.h>

#include "core/report.hpp"

namespace viprof::core {
namespace {

Resolution res(const std::string& image, const std::string& symbol,
               SampleDomain domain = SampleDomain::kImage) {
  Resolution r;
  r.image = image;
  r.symbol = symbol;
  r.domain = domain;
  return r;
}

constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;
constexpr auto kDmiss = hw::EventKind::kBsqCacheReference;

TEST(Profile, AggregatesByImageAndSymbol) {
  Profile p;
  p.add(kTime, res("libc", "memset"));
  p.add(kTime, res("libc", "memset"));
  p.add(kTime, res("libc", "memcpy"));
  EXPECT_EQ(p.row_count(), 2u);
  EXPECT_EQ(p.total(kTime), 3u);
  EXPECT_EQ(p.find("libc", "memset")->count(kTime), 2u);
}

TEST(Profile, SameSymbolDifferentImageSeparate) {
  Profile p;
  p.add(kTime, res("liba", "(no symbols)"));
  p.add(kTime, res("libb", "(no symbols)"));
  EXPECT_EQ(p.row_count(), 2u);
}

TEST(Profile, PercentAgainstEventTotal) {
  Profile p;
  p.add(kTime, res("a", "x"), 30);
  p.add(kTime, res("b", "y"), 70);
  p.add(kDmiss, res("a", "x"), 1);
  EXPECT_DOUBLE_EQ(p.percent(*p.find("a", "x"), kTime), 30.0);
  EXPECT_DOUBLE_EQ(p.percent(*p.find("b", "y"), kTime), 70.0);
  EXPECT_DOUBLE_EQ(p.percent(*p.find("a", "x"), kDmiss), 100.0);
  EXPECT_DOUBLE_EQ(p.percent(*p.find("b", "y"), kDmiss), 0.0);
}

TEST(Profile, PercentZeroTotalIsZero) {
  Profile p;
  p.add(kTime, res("a", "x"));
  EXPECT_DOUBLE_EQ(p.percent(*p.find("a", "x"), kDmiss), 0.0);
}

TEST(Profile, RankedSortsByPrimaryEvent) {
  Profile p;
  p.add(kTime, res("a", "cold"), 1);
  p.add(kTime, res("b", "hot"), 10);
  p.add(kTime, res("c", "warm"), 5);
  const auto rows = p.ranked(kTime);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].symbol, "hot");
  EXPECT_EQ(rows[1].symbol, "warm");
  EXPECT_EQ(rows[2].symbol, "cold");
}

TEST(Profile, DomainTotals) {
  Profile p;
  p.add(kTime, res("JIT.App", "m1", SampleDomain::kJit), 5);
  p.add(kTime, res("JIT.App", "m2", SampleDomain::kJit), 3);
  p.add(kTime, res("vmlinux", "sys_read", SampleDomain::kKernel), 2);
  EXPECT_EQ(p.domain_total(SampleDomain::kJit, kTime), 8u);
  EXPECT_EQ(p.domain_total(SampleDomain::kKernel, kTime), 2u);
  EXPECT_EQ(p.domain_total(SampleDomain::kAnon, kTime), 0u);
}

TEST(Profile, RenderFig1Shape) {
  Profile p;
  p.add(kTime, res("RVM.map", "com.ibm.jikesrvm.MainThread.run"), 13);
  p.add(kDmiss, res("RVM.map", "com.ibm.jikesrvm.MainThread.run"), 1);
  p.add(kTime, res("libc-2.3.2.so", "memset"), 7);
  const std::string out = p.render({kTime, kDmiss}, 10);
  EXPECT_NE(out.find("Time %"), std::string::npos);
  EXPECT_NE(out.find("Dmiss %"), std::string::npos);
  EXPECT_NE(out.find("Image name"), std::string::npos);
  EXPECT_NE(out.find("Symbol name"), std::string::npos);
  EXPECT_NE(out.find("65.0000"), std::string::npos);  // 13/20 of time
  EXPECT_NE(out.find("com.ibm.jikesrvm.MainThread.run"), std::string::npos);
  // Top row is the time-dominant one.
  EXPECT_LT(out.find("MainThread"), out.find("memset"));
}

TEST(Profile, RenderHonoursTopN) {
  Profile p;
  for (int i = 0; i < 20; ++i)
    p.add(kTime, res("img", "sym" + std::to_string(i)), 20 - i);
  const std::string out = p.render({kTime}, 5);
  EXPECT_NE(out.find("sym0"), std::string::npos);
  EXPECT_NE(out.find("sym4"), std::string::npos);
  EXPECT_EQ(out.find("sym5"), std::string::npos);
}

TEST(Profile, EventColumnTitles) {
  EXPECT_STREQ(event_column_title(kTime), "Time %");
  EXPECT_STREQ(event_column_title(kDmiss), "Dmiss %");
}

TEST(Profile, WeightedAdds) {
  Profile p;
  p.add(kTime, res("a", "x"), 100);
  EXPECT_EQ(p.total(kTime), 100u);
  EXPECT_EQ(p.find("a", "x")->count(kTime), 100u);
}

}  // namespace
}  // namespace viprof::core
