#include <gtest/gtest.h>

#include "core/viprof.hpp"
#include "guidance/feedback.hpp"
#include "workloads/generator.hpp"

namespace viprof::guidance {
namespace {

constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;

core::Resolution row(const std::string& image, const std::string& symbol,
                     core::SampleDomain domain) {
  core::Resolution r;
  r.image = image;
  r.symbol = symbol;
  r.domain = domain;
  return r;
}

TEST(Advisor, EmptyProfileGivesEmptyAdvice) {
  core::Profile profile;
  const Advice advice = Advisor().analyze(profile, kTime);
  EXPECT_TRUE(advice.empty());
  EXPECT_EQ(advice.jit_frac, 0.0);
}

TEST(Advisor, FlagsHotJitMethodsAboveThreshold) {
  core::Profile profile;
  profile.add(kTime, row("JIT.App", "app.Hot.run", core::SampleDomain::kJit), 50);
  profile.add(kTime, row("JIT.App", "app.Cold.run", core::SampleDomain::kJit), 1);
  profile.add(kTime, row("libc", "memset", core::SampleDomain::kImage), 49);
  const Advice advice = Advisor().analyze(profile, kTime);
  ASSERT_EQ(advice.hot_methods.size(), 1u);
  EXPECT_EQ(advice.hot_methods[0].qualified_name, "app.Hot.run");
  EXPECT_NEAR(advice.hot_methods[0].time_frac, 0.5, 1e-9);
  EXPECT_NEAR(advice.jit_frac, 0.51, 1e-9);
  EXPECT_NEAR(advice.native_frac, 0.49, 1e-9);
}

TEST(Advisor, FlagsKernelHotspotsButNeverTheProfiler) {
  core::Profile profile;
  profile.add(kTime, row("vmlinux", "sys_write", core::SampleDomain::kKernel), 10);
  profile.add(kTime, row("vmlinux", "oprofile_nmi_handler", core::SampleDomain::kKernel),
              20);
  profile.add(kTime, row("JIT.App", "a.b", core::SampleDomain::kJit), 70);
  const Advice advice = Advisor().analyze(profile, kTime);
  ASSERT_EQ(advice.kernel_hotspots.size(), 1u);
  EXPECT_EQ(advice.kernel_hotspots[0].routine, "sys_write");
}

TEST(Advisor, SkipsUnknownJitBucket) {
  core::Profile profile;
  profile.add(kTime, row("JIT.App", "(unknown JIT code)", core::SampleDomain::kJit), 100);
  const Advice advice = Advisor().analyze(profile, kTime);
  EXPECT_TRUE(advice.hot_methods.empty());
}

TEST(Advisor, RespectsLimits) {
  AdvisorConfig config;
  config.max_methods = 2;
  core::Profile profile;
  for (int i = 0; i < 6; ++i) {
    profile.add(kTime, row("JIT.App", "m" + std::to_string(i), core::SampleDomain::kJit),
                10);
  }
  const Advice advice = Advisor(config).analyze(profile, kTime);
  EXPECT_EQ(advice.hot_methods.size(), 2u);
}

TEST(Advisor, RenderMentionsEverything) {
  core::Profile profile;
  profile.add(kTime, row("JIT.App", "pkg.M.f", core::SampleDomain::kJit), 80);
  profile.add(kTime, row("vmlinux", "sys_futex", core::SampleDomain::kKernel), 20);
  const std::string out = Advisor().analyze(profile, kTime).render();
  EXPECT_NE(out.find("pkg.M.f"), std::string::npos);
  EXPECT_NE(out.find("sys_futex"), std::string::npos);
  EXPECT_NE(out.find("layer breakdown"), std::string::npos);
}

TEST(Feedback, AggressiveMethodsCompileAtTopTierImmediately) {
  os::Machine machine;
  workloads::GeneratorOptions opt;
  opt.name = "fb";
  opt.seed = 8;
  opt.methods = 8;
  opt.total_app_ops = 400'000;
  const workloads::Workload w = workloads::make_synthetic(opt);
  jvm::Vm vm(machine, w.vm);
  vm.setup(w.program);

  Advice advice;
  advice.hot_methods.push_back({w.program.methods[0].qualified_name(), 0.5});
  const FeedbackReport report = apply_advice(advice, vm, machine);
  EXPECT_EQ(report.methods_boosted, 1u);

  vm.run();
  const jvm::CodeId code = vm.current_code(0);
  ASSERT_NE(code, jvm::kInvalidCode);
  EXPECT_EQ(vm.heap().code(code).level, jvm::OptLevel::kOpt2);
}

TEST(Feedback, KernelSpecializationReducesCpi) {
  os::Machine machine;
  const double before = machine.kernel().routine("sys_write").cpi;
  Advice advice;
  advice.kernel_hotspots.push_back({"sys_write", 0.1});
  jvm::Vm vm(machine, {});  // kernel advice needs no VM state
  FeedbackConfig config;
  config.apply_vm_advice = false;
  const FeedbackReport report = apply_advice(advice, vm, machine, config);
  EXPECT_EQ(report.routines_specialized, 1u);
  EXPECT_LT(machine.kernel().routine("sys_write").cpi, before);
}

TEST(Feedback, GuidedRunBeatsBaselineOnSkewedWorkload) {
  workloads::GeneratorOptions opt;
  opt.name = "skew";
  opt.seed = 91;
  opt.methods = 32;
  opt.zipf = 1.6;
  opt.total_app_ops = 20'000'000;
  opt.syscall_frac = 0.06;
  const workloads::Workload w = workloads::make_synthetic(opt);

  // Profiling pass.
  Advice advice;
  {
    os::MachineConfig mcfg;
    mcfg.seed = 0xfeedb;
    os::Machine machine(mcfg);
    jvm::Vm vm(machine, w.vm);
    core::SessionConfig config;
    config.mode = core::ProfilingMode::kViprof;
    core::ProfilingSession session(machine, vm, config);
    session.attach();
    vm.setup(w.program);
    session.run();
    advice = Advisor().analyze(session.build_profile({kTime}), kTime);
  }
  ASSERT_FALSE(advice.hot_methods.empty());

  auto timed_run = [&](bool guided) {
    os::MachineConfig mcfg;
    mcfg.seed = 0xfeedb;
    os::Machine machine(mcfg);
    jvm::Vm vm(machine, w.vm);
    vm.setup(w.program);
    if (guided) apply_advice(advice, vm, machine);
    return vm.run().cycles;
  };
  const hw::Cycles base = timed_run(false);
  const hw::Cycles guided = timed_run(true);
  EXPECT_LT(guided, base);
}

}  // namespace
}  // namespace viprof::guidance
