// The paper's generality claim (Section 2): the VIProf mechanism "is simple
// and general enough to support a wide range of virtual execution
// environments (multiple Java virtual machines as well as Microsoft .Net
// common language runtimes)". This suite profiles a CLR-flavored stack
// through the *identical* machinery — registration, agent hooks, epoch code
// maps, backward search — and checks that only the runtime's identity
// changes, never the profiler.
#include <gtest/gtest.h>

#include <memory>

#include "core/archive.hpp"
#include "core/viprof.hpp"
#include "workloads/generator.hpp"

namespace viprof {
namespace {

constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;

struct ClrRun {
  std::unique_ptr<os::Machine> machine;
  std::unique_ptr<jvm::Vm> vm;
  std::unique_ptr<core::ProfilingSession> session;
  core::SessionResult result;
};

ClrRun run_clr(core::ProfilingMode mode) {
  ClrRun run;
  os::MachineConfig mcfg;
  mcfg.seed = 0xc14;
  run.machine = std::make_unique<os::Machine>(mcfg);
  workloads::GeneratorOptions opt;
  opt.name = "dotnetapp";
  opt.seed = 21;
  opt.methods = 16;
  opt.total_app_ops = 3'000'000;
  opt.alloc_intensity = 0.6;
  opt.nursery_bytes = 512 * 1024;
  opt.flavor = jvm::VmFlavor::kClr;
  const workloads::Workload w = workloads::make_synthetic(opt);
  run.vm = std::make_unique<jvm::Vm>(*run.machine, w.vm);
  core::SessionConfig config;
  config.mode = mode;
  run.session = std::make_unique<core::ProfilingSession>(*run.machine, *run.vm, config);
  run.session->attach();
  run.vm->setup(w.program);
  run.result = run.session->run();
  return run;
}

TEST(ClrFlavor, HostIdentityIsClr) {
  ClrRun run = run_clr(core::ProfilingMode::kViprof);
  EXPECT_NE(run.machine->registry().find_by_name("clrhost"), nullptr);
  EXPECT_NE(run.machine->registry().find_by_name("CLR.native.image"), nullptr);
  EXPECT_EQ(run.machine->registry().find_by_name("RVM.code.image"), nullptr);
  EXPECT_TRUE(run.machine->vfs().exists("CLR.map"));
  EXPECT_FALSE(run.machine->vfs().exists("RVM.map"));
}

TEST(ClrFlavor, ViprofResolvesClrInternalsAndJit) {
  ClrRun run = run_clr(core::ProfilingMode::kViprof);
  const core::Profile profile = run.session->build_profile({kTime});
  // JIT samples resolve through the same epoch-map machinery.
  EXPECT_GT(profile.domain_total(core::SampleDomain::kJit, kTime), 0u);
  // Runtime internals show under the CLR.map label with CLR symbol names.
  bool clr_internal = false;
  for (const auto& row : profile.rows()) {
    if (row.domain != core::SampleDomain::kBoot) continue;
    EXPECT_EQ(row.image, "CLR.map");
    if (row.symbol.find("mscorwks!") == 0 || row.symbol.find("clrjit!") == 0) {
      clr_internal = true;
    }
    EXPECT_EQ(row.symbol.find("com.ibm.jikesrvm"), std::string::npos);
  }
  EXPECT_TRUE(clr_internal);
}

TEST(ClrFlavor, StockOprofileSeesOpaqueClrImage) {
  ClrRun run = run_clr(core::ProfilingMode::kOprofile);
  const core::Profile profile = run.session->build_profile({kTime});
  bool opaque = false, anon = false;
  for (const auto& row : profile.rows()) {
    if (row.image == "CLR.native.image" && row.symbol == "(no symbols)") opaque = true;
    if (row.image.find("anon (range:0x") == 0 &&
        row.image.find("clrhost") != std::string::npos) {
      anon = true;
    }
  }
  EXPECT_TRUE(opaque);
  EXPECT_TRUE(anon);
}

TEST(ClrFlavor, EpochMapsAndAgentWorkUnchanged) {
  ClrRun run = run_clr(core::ProfilingMode::kViprof);
  EXPECT_GT(run.result.vm.collections, 0u);
  EXPECT_EQ(run.result.agent.maps_written, run.result.vm.collections + 1);
  run.session->build_profile({kTime});  // drives the resolver
  EXPECT_GT(run.session->resolver().jit_resolved(), 0u);
  EXPECT_EQ(run.session->resolver().jit_unresolved(), 0u);
}

TEST(ClrFlavor, ArchiveRoundTripKeepsClrLabels) {
  ClrRun run = run_clr(core::ProfilingMode::kViprof);
  run.session->export_archive();
  const core::ArchiveResolver offline(run.machine->vfs(), "archive", true);
  core::Resolver& live = run.session->resolver();
  for (const core::LoggedSample& s : core::SampleLogReader::read(
           run.machine->vfs(), run.session->daemon()->sample_dir(), kTime)) {
    const core::Resolution a = live.resolve(s);
    const core::Resolution b = offline.resolve(s);
    ASSERT_EQ(a.image, b.image);
    ASSERT_EQ(a.symbol, b.symbol);
  }
}

}  // namespace
}  // namespace viprof
