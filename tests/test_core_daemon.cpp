#include <gtest/gtest.h>

#include <memory>

#include "core/daemon.hpp"
#include "core/sample_log.hpp"
#include "os/loader.hpp"

namespace viprof::core {
namespace {

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A profiled "JVM" process with one mapped library and one anon heap.
    os::Process& proc = machine_.spawn("jikesrvm");
    pid_ = proc.pid();
    os::Image& lib =
        machine_.registry().create("libc-2.3.2.so", os::ImageKind::kSharedLib, 64 * 1024);
    lib.symbols().add("memset", 0, 4096);
    lib_base_ = machine_.loader().load_library(proc, lib.id()).start;
    heap_base_ = machine_.loader().map_anon(proc, 4 << 20).start;

    VmRegistration reg;
    reg.pid = pid_;
    reg.heap_lo = heap_base_;
    reg.heap_hi = heap_base_ + (4 << 20);
    table_.add(reg);

    config_.drain_watermark = 4;
    config_.batch = 64;
    buffer_ = std::make_unique<SampleBuffer>(1024);
  }

  Daemon make_daemon(bool vm_aware) {
    DaemonConfig c = config_;
    c.vm_aware = vm_aware;
    return Daemon(machine_, *buffer_, table_, c);
  }

  Sample sample_at(hw::Address pc, hw::CpuMode mode = hw::CpuMode::kUser) {
    Sample s;
    s.pc = pc;
    s.mode = mode;
    s.pid = pid_;
    return s;
  }

  void drain_all(Daemon& daemon) {
    while (daemon.next_work(machine_.cpu().now()).has_value()) {
    }
    daemon.final_flush();
  }

  os::Machine machine_;
  RegistrationTable table_;
  DaemonConfig config_;
  std::unique_ptr<SampleBuffer> buffer_;
  hw::Pid pid_ = 0;
  hw::Address lib_base_ = 0;
  hw::Address heap_base_ = 0;
};

TEST_F(DaemonTest, IdleWhenBufferEmpty) {
  Daemon daemon = make_daemon(true);
  EXPECT_FALSE(daemon.next_work(1'000'000).has_value());
}

TEST_F(DaemonTest, WaitsForWatermark) {
  Daemon daemon = make_daemon(true);
  buffer_->push(sample_at(lib_base_));
  EXPECT_FALSE(daemon.next_work(100).has_value());  // 1 < watermark 4, period young
  buffer_->push(sample_at(lib_base_));
  buffer_->push(sample_at(lib_base_));
  buffer_->push(sample_at(lib_base_));
  EXPECT_TRUE(daemon.next_work(100).has_value());
}

TEST_F(DaemonTest, PeriodTriggersEvenBelowWatermark) {
  Daemon daemon = make_daemon(true);
  buffer_->push(sample_at(lib_base_));
  EXPECT_TRUE(daemon.next_work(config_.drain_period + 1).has_value());
}

TEST_F(DaemonTest, ClassifiesKernelImageJitAnon) {
  Daemon daemon = make_daemon(true);
  buffer_->push(sample_at(os::Loader::kKernelBase + 0x100, hw::CpuMode::kKernel));
  buffer_->push(sample_at(lib_base_ + 100));    // image
  buffer_->push(sample_at(heap_base_ + 100));   // registered heap -> jit
  buffer_->push(sample_at(0x7fff'0000));        // unmapped -> anon path
  drain_all(daemon);
  EXPECT_EQ(daemon.stats().kernel_samples, 1u);
  EXPECT_EQ(daemon.stats().image_samples, 1u);
  EXPECT_EQ(daemon.stats().jit_samples, 1u);
  EXPECT_EQ(daemon.stats().anon_samples, 1u);
}

TEST_F(DaemonTest, VmUnawareTreatsHeapAsAnon) {
  Daemon daemon = make_daemon(false);
  buffer_->push(sample_at(heap_base_ + 100));
  drain_all(daemon);
  EXPECT_EQ(daemon.stats().jit_samples, 0u);
  EXPECT_EQ(daemon.stats().anon_samples, 1u);
}

TEST_F(DaemonTest, EpochMarkersAdvanceTagging) {
  Daemon daemon = make_daemon(true);
  buffer_->push(sample_at(heap_base_ + 0x10));
  buffer_->push(Sample::epoch_marker(pid_, 0, 100));
  buffer_->push(sample_at(heap_base_ + 0x20));
  buffer_->push(Sample::epoch_marker(pid_, 1, 200));
  buffer_->push(sample_at(heap_base_ + 0x30));
  drain_all(daemon);
  EXPECT_EQ(daemon.current_epoch(pid_), 2u);
  EXPECT_EQ(daemon.stats().epoch_markers, 2u);

  const auto logged = SampleLogReader::read(machine_.vfs(), daemon.sample_dir(),
                                            hw::EventKind::kGlobalPowerEvents);
  ASSERT_EQ(logged.size(), 3u);
  EXPECT_EQ(logged[0].epoch, 0u);
  EXPECT_EQ(logged[1].epoch, 1u);
  EXPECT_EQ(logged[2].epoch, 2u);
}

TEST_F(DaemonTest, WorkChunkCostReflectsClassification) {
  Daemon daemon = make_daemon(true);
  for (int i = 0; i < 4; ++i) buffer_->push(sample_at(heap_base_));
  const auto work = daemon.next_work(0);
  ASSERT_TRUE(work.has_value());
  EXPECT_EQ(work->cycles, config_.wakeup_cost + 4 * config_.per_sample_jit);
  EXPECT_GT(work->ops, 0u);
}

TEST_F(DaemonTest, AnonPathCostsMoreThanJitPath) {
  Daemon viprof = make_daemon(true);
  for (int i = 0; i < 4; ++i) buffer_->push(sample_at(heap_base_));
  const auto jit_work = viprof.next_work(0);

  Daemon oprof = make_daemon(false);
  for (int i = 0; i < 4; ++i) buffer_->push(sample_at(heap_base_));
  const auto anon_work = oprof.next_work(0);

  ASSERT_TRUE(jit_work && anon_work);
  EXPECT_GT(anon_work->cycles, jit_work->cycles);
}

TEST_F(DaemonTest, BatchLimitsPerChunkWork) {
  config_.batch = 8;
  Daemon daemon = make_daemon(true);
  for (int i = 0; i < 20; ++i) buffer_->push(sample_at(lib_base_));
  daemon.next_work(0);
  EXPECT_EQ(daemon.stats().drained, 8u);
  daemon.next_work(0);
  daemon.next_work(0);
  EXPECT_EQ(daemon.stats().drained, 20u);
}

TEST_F(DaemonTest, FinalFlushDrainsEverything) {
  Daemon daemon = make_daemon(true);
  for (int i = 0; i < 3; ++i) buffer_->push(sample_at(lib_base_));  // below watermark
  daemon.final_flush();
  EXPECT_TRUE(buffer_->empty());
  EXPECT_EQ(daemon.stats().drained, 3u);
  const auto logged = SampleLogReader::read(machine_.vfs(), daemon.sample_dir(),
                                            hw::EventKind::kGlobalPowerEvents);
  EXPECT_EQ(logged.size(), 3u);
}

TEST_F(DaemonTest, DaemonHasItsOwnProcessIdentity) {
  Daemon daemon = make_daemon(true);
  (void)daemon;
  EXPECT_NE(machine_.registry().find_by_name("oprofiled"), nullptr);
}

TEST_F(DaemonTest, BootImageSamplesAreImageClass) {
  os::Image& boot =
      machine_.registry().create("RVM.code.image", os::ImageKind::kBootImage, 1 << 20);
  os::Process* proc = machine_.find_process(pid_);
  const hw::Address boot_base =
      machine_.loader().map_at_anon_slot(*proc, boot.id()).start;
  Daemon daemon = make_daemon(true);
  buffer_->push(sample_at(boot_base + 0x40));
  drain_all(daemon);
  EXPECT_EQ(daemon.stats().image_samples, 1u);
  EXPECT_EQ(daemon.stats().anon_samples, 0u);
}

}  // namespace
}  // namespace viprof::core
