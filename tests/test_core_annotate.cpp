#include <gtest/gtest.h>

#include <memory>

#include "core/annotate.hpp"
#include "core/viprof.hpp"
#include "workloads/generator.hpp"

namespace viprof::core {
namespace {

constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;

Resolution fixed_resolution(const std::string& image, const std::string& symbol,
                            hw::Address base, std::uint64_t size) {
  Resolution r;
  r.image = image;
  r.symbol = symbol;
  r.symbol_base = base;
  r.symbol_size = size;
  r.domain = SampleDomain::kImage;
  return r;
}

LoggedSample at(hw::Address pc) {
  LoggedSample s;
  s.pc = pc;
  return s;
}

TEST(Annotate, BucketsByOffset) {
  // Symbol body [0x1000, 0x1100), 4 buckets of 0x40.
  std::vector<LoggedSample> samples = {at(0x1000), at(0x1001), at(0x1040),
                                       at(0x10ff), at(0x9999)};
  const Annotation ann = annotate(
      samples,
      [](const LoggedSample& s) {
        if (s.pc >= 0x1000 && s.pc < 0x1100)
          return fixed_resolution("img", "f", 0x1000, 0x100);
        return fixed_resolution("other", "g", 0x9000, 0x1000);
      },
      "img", "f", 4);
  EXPECT_EQ(ann.total_samples, 4u);  // the 0x9999 sample is g
  EXPECT_EQ(ann.buckets[0], 2u);
  EXPECT_EQ(ann.buckets[1], 1u);
  EXPECT_EQ(ann.buckets[2], 0u);
  EXPECT_EQ(ann.buckets[3], 1u);
  EXPECT_EQ(ann.out_of_range, 0u);
}

TEST(Annotate, OutOfRangeCounted) {
  std::vector<LoggedSample> samples = {at(0x2000)};
  const Annotation ann = annotate(
      samples,
      [](const LoggedSample&) {
        // Resolution claims the symbol but with an extent not covering pc.
        return fixed_resolution("img", "f", 0x1000, 0x100);
      },
      "img", "f", 4);
  EXPECT_EQ(ann.total_samples, 1u);
  EXPECT_EQ(ann.out_of_range, 1u);
}

TEST(Annotate, RenderContainsBarsAndOffsets) {
  std::vector<LoggedSample> samples = {at(0x1000), at(0x1000), at(0x10c0)};
  const Annotation ann = annotate(
      samples,
      [](const LoggedSample&) { return fixed_resolution("img", "f", 0x1000, 0x100); },
      "img", "f", 4);
  const std::string out = ann.render();
  EXPECT_NE(out.find("img:f"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("0x40"), std::string::npos);
}

TEST(Annotate, EndToEndJitMethodStableAcrossMoves) {
  // Profile a real run, annotate the hottest JIT method: every in-body
  // sample must land in range even though the body moved between epochs
  // (offsets are computed against the epoch-correct body address).
  os::MachineConfig mcfg;
  mcfg.seed = 0xa22;
  os::Machine machine(mcfg);
  workloads::GeneratorOptions opt;
  opt.name = "anno";
  opt.seed = 2;
  opt.methods = 8;
  opt.zipf = 1.6;
  opt.total_app_ops = 4'000'000;
  opt.alloc_intensity = 0.7;
  opt.nursery_bytes = 512 * 1024;
  const workloads::Workload w = workloads::make_synthetic(opt);
  jvm::Vm vm(machine, w.vm);
  SessionConfig config;
  config.mode = ProfilingMode::kViprof;
  config.counters = {{kTime, 20'000, true}};
  ProfilingSession session(machine, vm, config);
  session.attach();
  vm.setup(w.program);
  const SessionResult result = session.run();
  ASSERT_GT(result.vm.collections, 1u);  // bodies actually moved

  const Profile profile = session.build_profile({kTime});
  std::string hot_symbol;
  for (const ProfileRow& row : profile.ranked(kTime)) {
    if (row.domain == SampleDomain::kJit && row.symbol[0] != '(') {
      hot_symbol = row.symbol;
      break;
    }
  }
  ASSERT_FALSE(hot_symbol.empty());

  Resolver& resolver = session.resolver();
  const auto samples =
      SampleLogReader::read(machine.vfs(), session.daemon()->sample_dir(), kTime);
  const Annotation ann = annotate(
      samples, [&](const LoggedSample& s) { return resolver.resolve(s); }, "JIT.App",
      hot_symbol);
  EXPECT_GT(ann.total_samples, 20u);
  EXPECT_EQ(ann.out_of_range, 0u);
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t b : ann.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, ann.total_samples);
  EXPECT_GT(ann.symbol_size, 0u);
}

TEST(Annotate, ResolutionCarriesSymbolExtent) {
  os::Machine machine;
  workloads::GeneratorOptions opt;
  opt.name = "ext";
  opt.methods = 4;
  opt.total_app_ops = 500'000;
  const workloads::Workload w = workloads::make_synthetic(opt);
  jvm::Vm vm(machine, w.vm);
  SessionConfig config;
  config.mode = ProfilingMode::kViprof;
  ProfilingSession session(machine, vm, config);
  session.attach();
  vm.setup(w.program);
  session.run();
  Resolver& r = session.resolver();
  // Kernel symbol extent.
  const hw::Address pc = machine.kernel().routine("sys_write").base + 8;
  const Resolution res = r.resolve_pc(pc, hw::CpuMode::kKernel, vm.pid(), 0);
  EXPECT_EQ(res.symbol_base, machine.kernel().routine("sys_write").base);
  EXPECT_EQ(res.symbol_size, machine.kernel().routine("sys_write").size);
  EXPECT_GE(pc, res.symbol_base);
  EXPECT_LT(pc, res.symbol_base + res.symbol_size);
}

}  // namespace
}  // namespace viprof::core
