#include <gtest/gtest.h>

#include "core/code_map.hpp"

namespace viprof::core {
namespace {

CodeMapFile map_of(std::uint64_t epoch,
                   std::vector<std::tuple<hw::Address, std::uint64_t, std::string>> rows) {
  CodeMapFile file;
  file.epoch = epoch;
  for (auto& [addr, size, sym] : rows) file.entries.push_back({addr, size, sym});
  return file;
}

TEST(CodeMapFile, SerializeParseRoundTrip) {
  const CodeMapFile original =
      map_of(3, {{0x1000, 256, "a.b.c"}, {0x2000, 512, "d.e.f"}});
  const auto parsed = CodeMapFile::parse(original.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->epoch, 3u);
  ASSERT_EQ(parsed->entries.size(), 2u);
  EXPECT_EQ(parsed->entries[0].address, 0x1000u);
  EXPECT_EQ(parsed->entries[0].size, 256u);
  EXPECT_EQ(parsed->entries[0].symbol, "a.b.c");
  EXPECT_EQ(parsed->entries[1].symbol, "d.e.f");
}

TEST(CodeMapFile, EmptyMapRoundTrips) {
  const auto parsed = CodeMapFile::parse(map_of(9, {}).serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->epoch, 9u);
  EXPECT_TRUE(parsed->entries.empty());
}

TEST(CodeMapFile, MalformedHeaderRejected) {
  EXPECT_FALSE(CodeMapFile::parse("").has_value());
  EXPECT_FALSE(CodeMapFile::parse("bogus 3\n").has_value());
  EXPECT_FALSE(CodeMapFile::parse("epoch notanumber\n").has_value());
}

TEST(CodeMapFile, MalformedEntryRejected) {
  EXPECT_FALSE(CodeMapFile::parse("epoch 1\n0x10\n").has_value());
}

TEST(CodeMapFile, PathOrdersByEpoch) {
  const std::string p1 = CodeMapFile::path_for("jit_maps", 100, 1);
  const std::string p10 = CodeMapFile::path_for("jit_maps", 100, 10);
  const std::string p2 = CodeMapFile::path_for("jit_maps", 100, 2);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p10);  // zero padding keeps numeric order
}

TEST(CodeMapIndex, ResolveInOwnEpoch) {
  CodeMapIndex index;
  index.add(map_of(0, {{0x1000, 100, "m0"}}));
  const auto hit = index.resolve(0x1010, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->symbol, "m0");
  EXPECT_EQ(hit->found_in_epoch, 0u);
  EXPECT_EQ(hit->maps_searched, 1u);
}

TEST(CodeMapIndex, BackwardSearchFindsOlderOccupant) {
  CodeMapIndex index;
  index.add(map_of(0, {{0x1000, 100, "old"}}));
  index.add(map_of(1, {{0x9000, 100, "unrelated"}}));
  index.add(map_of(2, {{0x8000, 100, "another"}}));
  // Sample in epoch 2 at an address only map 0 covers: "the method was
  // neither compiled nor moved during this particular epoch".
  const auto hit = index.resolve(0x1050, 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->symbol, "old");
  EXPECT_EQ(hit->found_in_epoch, 0u);
  EXPECT_EQ(hit->maps_searched, 3u);
}

TEST(CodeMapIndex, NewestOccupantWins) {
  CodeMapIndex index;
  // The same address range is recycled across epochs.
  index.add(map_of(0, {{0x1000, 100, "first"}}));
  index.add(map_of(3, {{0x1000, 100, "second"}}));
  EXPECT_EQ(index.resolve(0x1000, 5)->symbol, "second");
  EXPECT_EQ(index.resolve(0x1000, 2)->symbol, "first");  // before the recycle
}

TEST(CodeMapIndex, FutureEpochMapsInvisible) {
  CodeMapIndex index;
  index.add(map_of(4, {{0x1000, 100, "later"}}));
  EXPECT_FALSE(index.resolve(0x1000, 3).has_value());
  EXPECT_TRUE(index.resolve(0x1000, 4).has_value());
}

TEST(CodeMapIndex, MissReturnsNothing) {
  CodeMapIndex index;
  index.add(map_of(0, {{0x1000, 100, "m"}}));
  EXPECT_FALSE(index.resolve(0x5000, 0).has_value());
  EXPECT_FALSE(index.resolve(0x1100, 0).has_value());  // one past the end
}

TEST(CodeMapIndex, SparseEpochsSkipped) {
  CodeMapIndex index;
  index.add(map_of(0, {{0x1000, 100, "m"}}));
  index.add(map_of(7, {{0x2000, 100, "n"}}));
  const auto hit = index.resolve(0x1000, 9);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->symbol, "m");
  EXPECT_EQ(hit->maps_searched, 2u);  // only two maps exist
  EXPECT_EQ(index.max_epoch(), 7u);
}

TEST(CodeMapIndex, LoadFromVfs) {
  os::Vfs vfs;
  vfs.write(CodeMapFile::path_for("jit_maps", 42, 0),
            map_of(0, {{0x1000, 100, "a"}}).serialize());
  vfs.write(CodeMapFile::path_for("jit_maps", 42, 1),
            map_of(1, {{0x2000, 100, "b"}}).serialize());
  // Another pid's maps must not leak in.
  vfs.write(CodeMapFile::path_for("jit_maps", 43, 0),
            map_of(0, {{0x3000, 100, "c"}}).serialize());
  CodeMapIndex index;
  index.load(vfs, "jit_maps", 42);
  EXPECT_EQ(index.map_count(), 2u);
  EXPECT_EQ(index.total_entries(), 2u);
  EXPECT_TRUE(index.resolve(0x2000, 1).has_value());
  EXPECT_FALSE(index.resolve(0x3000, 1).has_value());
}

// --- Damage detection, salvage and the crash-aware lookup -----------------

TEST(CodeMapFile, TornFileRejectedByStrictParseButSalvaged) {
  const CodeMapFile original = map_of(
      5, {{0x1000, 100, "a"}, {0x2000, 100, "b"}, {0x3000, 100, "c"}});
  std::string torn = original.serialize();
  torn.resize(torn.size() / 2);  // lose the tail: entries + crc trailer

  EXPECT_FALSE(CodeMapFile::parse(torn).has_value());
  const auto r = CodeMapFile::salvage(torn, 99);
  EXPECT_FALSE(r.intact);
  EXPECT_TRUE(r.header_ok);
  EXPECT_EQ(r.file.epoch, 5u);  // header survived: hint not needed
  EXPECT_EQ(r.entries_expected, 3u);
  EXPECT_TRUE(r.file.truncated);
  EXPECT_LT(r.file.entries.size(), 3u);  // a verified prefix only
  for (const CodeMapEntry& e : r.file.entries) EXPECT_FALSE(e.symbol.empty());
}

TEST(CodeMapFile, HeaderlessDamageFallsBackToEpochHint) {
  const auto r = CodeMapFile::salvage("garbage\nmore garbage\n", 7);
  EXPECT_FALSE(r.intact);
  EXPECT_FALSE(r.header_ok);
  EXPECT_EQ(r.file.epoch, 7u);
  EXPECT_TRUE(r.file.truncated);
  EXPECT_TRUE(r.file.entries.empty());
}

TEST(CodeMapFile, IntactFileSurvivesSalvageUnchanged) {
  const CodeMapFile original = map_of(2, {{0x1000, 100, "a"}});
  const auto r = CodeMapFile::salvage(original.serialize(), 0);
  EXPECT_TRUE(r.intact);
  EXPECT_FALSE(r.file.truncated);
  EXPECT_EQ(r.file.entries.size(), 1u);
}

TEST(CodeMapFile, TruncatedMarkerRoundTripsThroughReserialization) {
  // fsck re-serialises a salvaged map; the marker must survive so the
  // recovered tree stays honest about what it lost.
  CodeMapFile file = map_of(4, {{0x1000, 100, "a"}});
  file.truncated = true;
  const auto parsed = CodeMapFile::parse(file.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->truncated);
  CodeMapIndex index;
  index.add(*parsed);
  EXPECT_TRUE(index.epoch_truncated(4));
}

TEST(CodeMapFile, EpochFromPath) {
  EXPECT_EQ(CodeMapFile::epoch_from_path(CodeMapFile::path_for("jit_maps", 42, 17)),
            17u);
  EXPECT_EQ(CodeMapFile::epoch_from_path("map.00000003"), 3u);
  EXPECT_FALSE(CodeMapFile::epoch_from_path("RVM.map").has_value());
  EXPECT_FALSE(CodeMapFile::epoch_from_path("map.notanumber").has_value());
}

TEST(CodeMapIndex, LoadSalvagesDamagedFilesAndCountsThem) {
  os::Vfs vfs;
  vfs.write(CodeMapFile::path_for("jit_maps", 42, 0),
            map_of(0, {{0x1000, 100, "a"}}).serialize());
  std::string torn =
      map_of(1, {{0x2000, 100, "b"}, {0x3000, 100, "c"}}).serialize();
  torn.resize(torn.size() - 18);  // lose the crc trailer and part of "c"
  vfs.write(CodeMapFile::path_for("jit_maps", 42, 1), torn);

  CodeMapIndex index;
  const auto stats = index.load(vfs, "jit_maps", 42);
  EXPECT_EQ(stats.maps_loaded, 2u);
  EXPECT_EQ(stats.maps_intact, 1u);
  EXPECT_EQ(stats.maps_truncated, 1u);
  EXPECT_TRUE(index.epoch_truncated(1));
  EXPECT_EQ(index.truncated_count(), 1u);
}

TEST(CodeMapIndex, LookupRefusesToCrossMissingEpoch) {
  CodeMapIndex index;
  index.add(map_of(0, {{0x1000, 100, "old"}}));
  index.add(map_of(2, {{0x9000, 100, "other"}}));  // epoch 1's map was lost
  // The lax resolve guesses "old"; the crash-aware lookup refuses.
  EXPECT_EQ(index.resolve(0x1000, 2)->symbol, "old");
  const auto lk = index.lookup(0x1000, 2);
  EXPECT_FALSE(lk.hit.has_value());
  EXPECT_EQ(lk.miss, JitLookupMiss::kMissingEpochMap);
  // Below the gap the walk is contiguous and still works.
  EXPECT_EQ(index.lookup(0x1000, 0).hit->symbol, "old");
}

TEST(CodeMapIndex, LookupRefusesToCrossTruncatedEpoch) {
  CodeMapIndex index;
  index.add(map_of(0, {{0x1000, 100, "old"}}));
  CodeMapFile damaged = map_of(1, {{0x5000, 100, "salvaged"}});
  damaged.truncated = true;
  index.add(damaged);

  // A hit inside the salvaged prefix is trusted (entries are checksummed)...
  EXPECT_EQ(index.lookup(0x5000, 1).hit->symbol, "salvaged");
  // ...but absence proves nothing: the walk stops instead of guessing "old".
  const auto lk = index.lookup(0x1000, 1);
  EXPECT_FALSE(lk.hit.has_value());
  EXPECT_EQ(lk.miss, JitLookupMiss::kTruncatedMap);
}

TEST(CodeMapIndex, LookupMissKinds) {
  CodeMapIndex empty;
  EXPECT_EQ(empty.lookup(0x1000, 3).miss, JitLookupMiss::kNoMaps);

  CodeMapIndex intact;
  intact.add(map_of(0, {{0x1000, 100, "a"}}));
  intact.add(map_of(1, {{0x2000, 100, "b"}}));
  const auto lk = intact.lookup(0x7777, 1);  // all maps intact, pc nowhere
  EXPECT_EQ(lk.miss, JitLookupMiss::kNotFound);
  EXPECT_EQ(intact.lookup(0x1000, 1).hit->maps_searched, 2u);
}

TEST(CodeMapIndex, EntriesSortedEvenIfWrittenUnsorted) {
  CodeMapIndex index;
  index.add(map_of(0, {{0x3000, 100, "c"}, {0x1000, 100, "a"}, {0x2000, 100, "b"}}));
  EXPECT_EQ(index.resolve(0x1000, 0)->symbol, "a");
  EXPECT_EQ(index.resolve(0x2050, 0)->symbol, "b");
  EXPECT_EQ(index.resolve(0x3050, 0)->symbol, "c");
}

}  // namespace
}  // namespace viprof::core
