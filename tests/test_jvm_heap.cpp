#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "jvm/heap.hpp"

namespace viprof::jvm {
namespace {

HeapConfig small_config() {
  HeapConfig c;
  c.heap_bytes = 8ull << 20;
  c.code_semi_bytes = 1ull << 20;
  c.mature_code_bytes = 2ull << 20;
  c.nursery_data_bytes = 1ull << 20;
  c.mature_age = 3;
  return c;
}

TEST(Heap, CodeAllocationInsideHeap) {
  Heap heap(0x6000'0000, small_config());
  const CodeObject& obj = heap.alloc_code(1, 4096, OptLevel::kBaseline);
  EXPECT_TRUE(heap.contains(obj.address));
  EXPECT_TRUE(heap.contains(obj.address + obj.size - 1));
  EXPECT_EQ(obj.method, 1u);
  EXPECT_EQ(obj.level, OptLevel::kBaseline);
  EXPECT_EQ(obj.epoch_compiled, 0u);
}

TEST(Heap, AllocationsDoNotOverlap) {
  Heap heap(0x6000'0000, small_config());
  const auto a = heap.alloc_code(1, 1000, OptLevel::kBaseline).address;
  const auto b = heap.alloc_code(2, 1000, OptLevel::kBaseline).address;
  EXPECT_GE(b, a + 1000);
}

TEST(Heap, DataAllocationTriggersGcNeed) {
  Heap heap(0x6000'0000, small_config());
  EXPECT_FALSE(heap.gc_needed());
  heap.alloc_data((1ull << 20) - 1);
  EXPECT_FALSE(heap.gc_needed());
  heap.alloc_data(1);
  EXPECT_TRUE(heap.gc_needed());
}

TEST(Heap, CollectMovesLiveCode) {
  Heap heap(0x6000'0000, small_config());
  const CodeId id = heap.alloc_code(1, 4096, OptLevel::kBaseline).id;
  const hw::Address before = heap.code(id).address;
  hw::Address observed_old = 0;
  const GcStats stats = heap.collect(
      [&](const CodeObject& moved, hw::Address old) {
        EXPECT_EQ(moved.id, id);
        observed_old = old;
      });
  EXPECT_EQ(stats.code_moved, 1u);
  EXPECT_EQ(observed_old, before);
  EXPECT_NE(heap.code(id).address, before);
  EXPECT_TRUE(heap.contains(heap.code(id).address));
}

TEST(Heap, EpochIncrementsPerCollection) {
  Heap heap(0x6000'0000, small_config());
  EXPECT_EQ(heap.epoch(), 0u);
  heap.collect(nullptr);
  heap.collect(nullptr);
  EXPECT_EQ(heap.epoch(), 2u);
}

TEST(Heap, PromotionAtMatureAgeStopsMoves) {
  Heap heap(0x6000'0000, small_config());  // mature_age = 3
  const CodeId id = heap.alloc_code(1, 4096, OptLevel::kBaseline).id;
  std::vector<hw::Address> addresses{heap.code(id).address};
  for (int gc = 0; gc < 6; ++gc) {
    heap.collect(nullptr);
    addresses.push_back(heap.code(id).address);
  }
  // Moves on GCs 1..3 (promoted on the 3rd), then stable.
  EXPECT_NE(addresses[0], addresses[1]);
  EXPECT_NE(addresses[1], addresses[2]);
  EXPECT_NE(addresses[2], addresses[3]);
  EXPECT_EQ(addresses[3], addresses[4]);
  EXPECT_EQ(addresses[4], addresses[5]);
  EXPECT_TRUE(heap.code(id).in_mature);
}

TEST(Heap, PromotedCodeInMatureRegion) {
  HeapConfig c = small_config();
  Heap heap(0x6000'0000, c);
  const CodeId id = heap.alloc_code(1, 4096, OptLevel::kBaseline).id;
  for (int gc = 0; gc < 4; ++gc) heap.collect(nullptr);
  const hw::Address mature_lo = 0x6000'0000 + 2 * c.code_semi_bytes;
  const hw::Address mature_hi = mature_lo + c.mature_code_bytes;
  EXPECT_GE(heap.code(id).address, mature_lo);
  EXPECT_LT(heap.code(id).address, mature_hi);
}

TEST(Heap, DeadCodeNotMovedAndReclaimedOnce) {
  Heap heap(0x6000'0000, small_config());
  const CodeId id = heap.alloc_code(1, 4096, OptLevel::kBaseline).id;
  heap.kill_code(id);
  int moves = 0;
  GcStats s1 = heap.collect([&](const CodeObject&, hw::Address) { ++moves; });
  EXPECT_EQ(moves, 0);
  EXPECT_EQ(s1.code_reclaimed, 1u);
  GcStats s2 = heap.collect(nullptr);
  EXPECT_EQ(s2.code_reclaimed, 0u);  // not double counted
}

TEST(Heap, SemispaceSpaceReusedAfterCollect) {
  HeapConfig c = small_config();
  Heap heap(0x6000'0000, c);
  // Fill most of a semispace with dead bodies.
  for (int i = 0; i < 100; ++i) {
    const CodeId id = heap.alloc_code(i, 8'000, OptLevel::kBaseline).id;
    heap.kill_code(id);
  }
  const std::uint64_t before = heap.nursery_code_bytes();
  EXPECT_EQ(before, 0u);  // all dead
  heap.collect(nullptr);
  // After collection the new semispace is empty; allocation restarts cleanly.
  const CodeObject& fresh = heap.alloc_code(200, 4096, OptLevel::kBaseline);
  EXPECT_TRUE(heap.contains(fresh.address));
}

TEST(Heap, LiveBytesIncludeSurvivingData) {
  HeapConfig c = small_config();
  c.data_survival = 0.5;
  Heap heap(0x6000'0000, c);
  heap.alloc_data(1'000'000);
  const GcStats stats = heap.collect(nullptr);
  EXPECT_GE(stats.live_bytes, 500'000u);
  EXPECT_EQ(heap.data_allocated_since_gc(), 0u);  // reset
}

TEST(Heap, AddressesUniqueAmongLiveBodies) {
  Heap heap(0x6000'0000, small_config());
  for (int i = 0; i < 50; ++i) heap.alloc_code(i, 1000 + i * 16, OptLevel::kBaseline);
  for (int gc = 0; gc < 5; ++gc) {
    heap.collect(nullptr);
    std::map<hw::Address, hw::Address> ranges;  // start -> end
    for (const CodeObject& obj : heap.all_code()) {
      if (obj.dead) continue;
      ranges[obj.address] = obj.address + obj.size;
    }
    hw::Address prev_end = 0;
    for (const auto& [start, end] : ranges) {
      EXPECT_GE(start, prev_end);
      prev_end = end;
    }
  }
}

TEST(Heap, DataRegionDisjointFromCodeRegions) {
  HeapConfig c = small_config();
  Heap heap(0x6000'0000, c);
  EXPECT_GE(heap.data_base(),
            0x6000'0000 + 2 * c.code_semi_bytes + c.mature_code_bytes);
  EXPECT_GT(heap.data_bytes(), 0u);
  EXPECT_LE(heap.data_base() + heap.data_bytes(), heap.end());
}

TEST(Heap, GcNeededWhenCodeSemispaceNearlyFull) {
  HeapConfig c = small_config();  // 1MB semispace, 1/8 headroom
  Heap heap(0x6000'0000, c);
  heap.alloc_code(0, 900 * 1024, OptLevel::kBaseline);
  EXPECT_TRUE(heap.gc_needed());
}

}  // namespace
}  // namespace viprof::jvm
