#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/bounded_queue.hpp"

namespace viprof::support {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueue, TryPushRefusesWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
}

TEST(BoundedQueue, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> second_landed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until the consumer pops
    second_landed = true;
  });
  // The producer must be parked: the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(second_landed.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(second_landed.load());
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, CloseDrainsThenExhausts) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // rejected after close
  EXPECT_EQ(q.pop(), 1);    // buffered items still drain
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);  // then exhausted, not blocked
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();
  consumer.join();
}

TEST(BoundedQueue, PopForExpiresEmptyThenDrainsAfterClose) {
  BoundedQueue<int> q(4);
  // Expiry on an empty open queue: nullopt, but the queue is NOT closed —
  // the caller uses closed() to tell a timeout from a shutdown.
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(5)), std::nullopt);
  EXPECT_FALSE(q.closed());
  ASSERT_TRUE(q.push(7));
  q.close();
  // Closed but not drained: the buffered item is still delivered.
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(5)), 7);
  // Closed and drained: immediate exhaustion, no timeout wait.
  EXPECT_EQ(q.pop_for(std::chrono::hours(1)), std::nullopt);
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueue, PopForRacingCloseNeverDropsTheLastItem) {
  // A consumer parked in a timed pop while the producer pushes one final
  // item and immediately closes: the item must be delivered, and the
  // consumer must wake from close() without waiting out the full timeout.
  for (int round = 0; round < 50; ++round) {
    BoundedQueue<int> q(2);
    std::optional<int> got;
    std::optional<int> after;
    std::thread consumer([&] {
      got = q.pop_for(std::chrono::seconds(10));
      after = q.pop_for(std::chrono::seconds(10));
    });
    ASSERT_TRUE(q.push(round));
    q.close();
    consumer.join();  // bounded by close(), not by the 10 s timeouts
    EXPECT_EQ(got, round);
    EXPECT_EQ(after, std::nullopt);
  }
}

TEST(BoundedQueue, PopForTimedWaitWokenByLatePush) {
  BoundedQueue<int> q(1);
  std::optional<int> got;
  std::thread consumer(
      [&] { got = q.pop_for(std::chrono::seconds(10)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(q.push(42));
  consumer.join();
  EXPECT_EQ(got, 42);
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);
  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++consumed;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(p * kPerProducer + i));
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), kTotal);
  EXPECT_EQ(sum.load(), static_cast<long long>(kTotal) * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace viprof::support
