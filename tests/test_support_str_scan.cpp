// Single-pass scanner helpers: these replace the istringstream + sscanf
// parse loops, so the tests pin the sscanf-isms callers depend on —
// leading-whitespace skipping, %8x-style digit caps, and a LineCursor
// that refuses to yield an unterminated tail.
#include <gtest/gtest.h>

#include <string_view>

#include "support/str_scan.hpp"

namespace viprof::support {
namespace {

TEST(LineCursorTest, YieldsOnlyTerminatedLines) {
  LineCursor cursor("one\ntwo\nchopped");
  std::string_view line;
  ASSERT_TRUE(cursor.next(line));
  EXPECT_EQ(line, "one");
  ASSERT_TRUE(cursor.next(line));
  EXPECT_EQ(line, "two");
  EXPECT_FALSE(cursor.next(line));  // the tail is not a line
  EXPECT_EQ(cursor.tail(), "chopped");
}

TEST(LineCursorTest, EmptyLinesAndCleanEnd) {
  LineCursor cursor("\na\n");
  std::string_view line;
  ASSERT_TRUE(cursor.next(line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(cursor.next(line));
  EXPECT_EQ(line, "a");
  EXPECT_FALSE(cursor.next(line));
  EXPECT_TRUE(cursor.tail().empty());
}

TEST(ScanU64Test, SkipsLeadingWhitespaceLikeSscanf) {
  std::string_view s = "  \t42 rest";
  std::uint64_t v = 0;
  ASSERT_TRUE(scan_u64(s, v));
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(s, " rest");
}

TEST(ScanU64Test, RejectsNonDigits) {
  std::string_view s = "x42";
  std::uint64_t v = 0;
  EXPECT_FALSE(scan_u64(s, v));
  EXPECT_EQ(s, "x42");  // untouched on failure
}

TEST(ScanHex64Test, OptionalPrefixAndCase) {
  std::uint64_t v = 0;
  std::string_view s = "0x1aB rest";
  ASSERT_TRUE(scan_hex64(s, v));
  EXPECT_EQ(v, 0x1abu);
  EXPECT_EQ(s, " rest");

  s = "deadBEEF";
  ASSERT_TRUE(scan_hex64(s, v));
  EXPECT_EQ(v, 0xdeadbeefull);

  // "0x" with no digit after it is the number 0 followed by an 'x', as
  // with sscanf %x: the prefix is only taken when a digit follows.
  s = "0x";
  ASSERT_TRUE(scan_hex64(s, v));
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(s, "x");
}

TEST(ScanHex64Test, MaxDigitsMirrorsSscanfFieldWidth) {
  // The crc trailer is written as %08x and read back with %8x.
  std::uint64_t v = 0;
  std::string_view s = "123456789";
  ASSERT_TRUE(scan_hex64(s, v, 8));
  EXPECT_EQ(v, 0x12345678u);
  EXPECT_EQ(s, "9");
}

TEST(ScanLitTest, ConsumesExactPrefixOnly) {
  std::string_view s = "epoch 7";
  ASSERT_TRUE(scan_lit(s, "epoch"));
  EXPECT_EQ(s, " 7");
  EXPECT_FALSE(scan_lit(s, "entries"));
  EXPECT_EQ(s, " 7");
}

TEST(ScanTokenTest, WhitespaceDelimited) {
  std::string_view s = "  com.example.K.m  next";
  std::string_view tok;
  ASSERT_TRUE(scan_token(s, tok));
  EXPECT_EQ(tok, "com.example.K.m");
  ASSERT_TRUE(scan_token(s, tok));
  EXPECT_EQ(tok, "next");
  EXPECT_FALSE(scan_token(s, tok));  // nothing but the end left
}

TEST(AtEndTest, TrailingWhitespaceIsEnd) {
  EXPECT_TRUE(at_end(""));
  EXPECT_TRUE(at_end("   \t\r"));
  EXPECT_FALSE(at_end(" x"));
}

}  // namespace
}  // namespace viprof::support
