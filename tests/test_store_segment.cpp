// Segment file framing: §7 discipline applied to interval profiles. A
// writer/reader round trip must be lossless; every kind of damage (torn
// tail, flipped bytes, duplicated or missing lines) must be skipped *and
// counted*, never silently absorbed or fatal.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "store/segment.hpp"

namespace viprof::store {
namespace {

constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;
constexpr auto kDmiss = hw::EventKind::kBsqCacheReference;

const std::vector<hw::EventKind> kEvents = {kTime, kDmiss};

core::Resolution res(const std::string& image, const std::string& symbol) {
  core::Resolution r;
  r.image = image;
  r.symbol = symbol;
  r.domain = core::SampleDomain::kJit;
  return r;
}

IntervalProfile make_interval(std::uint64_t tick, std::uint64_t seed) {
  IntervalProfile iv;
  iv.session = "vm-" + std::to_string(seed % 2);
  iv.pid = 40 + seed % 2;
  iv.tick_lo = iv.tick_hi = tick;
  iv.epoch_lo = seed;
  iv.epoch_hi = seed + 1;
  iv.first_seq = 0;  // assigned by the store; irrelevant to framing
  iv.profile.add(kTime, res("RVM.map", "org.jikesrvm.compile"), 10 + seed);
  iv.profile.add(kTime, res("anon (tgid:40 range:0x1000)", "java.util.HashMap.get"),
                 3 + seed);
  iv.profile.add(kDmiss, res("RVM.map", "org.jikesrvm.compile"), seed + 1);
  return iv;
}

std::string whole_segment(SegmentWriter& w, const std::vector<IntervalProfile>& ivs) {
  std::string content = w.header();
  for (const IntervalProfile& iv : ivs) content += w.encode_interval(iv);
  content += w.encode_seal(ivs.size());
  return content;
}

TEST(StoreSegment, RoundTripIsLossless) {
  SegmentWriter w(7);
  const std::vector<IntervalProfile> ivs = {make_interval(3, 0), make_interval(4, 1)};
  const SegmentSalvage got = read_segment(whole_segment(w, ivs));

  EXPECT_TRUE(got.clean());
  EXPECT_TRUE(got.header_ok);
  EXPECT_TRUE(got.sealed);
  EXPECT_EQ(got.segment_id, 7u);
  ASSERT_EQ(got.intervals.size(), 2u);
  EXPECT_EQ(got.intervals_dropped, 0u);
  EXPECT_EQ(got.rows_dropped, 0u);
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    EXPECT_EQ(got.intervals[i].session, ivs[i].session);
    EXPECT_EQ(got.intervals[i].pid, ivs[i].pid);
    EXPECT_EQ(got.intervals[i].tick_lo, ivs[i].tick_lo);
    EXPECT_EQ(got.intervals[i].epoch_lo, ivs[i].epoch_lo);
    EXPECT_EQ(got.intervals[i].epoch_hi, ivs[i].epoch_hi);
    // Byte-identical rendering: rows, counts and insertion order survive.
    EXPECT_EQ(got.intervals[i].profile.render(kEvents, 10),
              ivs[i].profile.render(kEvents, 10));
  }
}

TEST(StoreSegment, DictionaryInternsAcrossIntervals) {
  SegmentWriter w(1);
  std::string first = w.encode_interval(make_interval(1, 0));
  std::string second = w.encode_interval(make_interval(2, 0));  // same symbols
  // The first interval carries the dictionary; the second must reference
  // it without re-emitting D lines.
  EXPECT_NE(first.find(" D "), std::string::npos);
  EXPECT_EQ(second.find(" D "), std::string::npos);
}

TEST(StoreSegment, UnsealedSegmentStillSalvages) {
  SegmentWriter w(2);
  std::string content = w.header();  // sequenced: header takes seq 0
  content += w.encode_interval(make_interval(1, 0));
  const SegmentSalvage got = read_segment(content);
  EXPECT_TRUE(got.clean());
  EXPECT_FALSE(got.sealed);
  EXPECT_EQ(got.intervals_salvaged, 1u);
}

TEST(StoreSegment, TornTailIsDiscardedAndCounted) {
  SegmentWriter w(3);
  const std::vector<IntervalProfile> ivs = {make_interval(1, 0), make_interval(2, 1)};
  std::string content = whole_segment(w, ivs);
  content.resize(content.size() - 5);  // tear mid-line (the seal record)

  const SegmentSalvage got = read_segment(content);
  EXPECT_FALSE(got.clean());
  EXPECT_FALSE(got.sealed);  // the seal record was the torn line
  EXPECT_GE(got.lines_discarded, 1u);
  EXPECT_EQ(got.intervals_salvaged, 2u);  // data lines all landed
}

TEST(StoreSegment, CorruptLineDropsItsIntervalWithRowAccounting) {
  SegmentWriter w(4);
  const std::vector<IntervalProfile> ivs = {make_interval(1, 0), make_interval(2, 1)};
  std::string content = whole_segment(w, ivs);
  // Flip one byte inside the *second* interval's first R record.
  const std::size_t iv2 = content.find(" I 2 ");  // second interval's I line
  ASSERT_NE(iv2, std::string::npos);
  const std::size_t r = content.find(" R ", iv2);
  ASSERT_NE(r, std::string::npos);
  content[r + 3] = content[r + 3] == '0' ? '1' : '0';

  const SegmentSalvage got = read_segment(content);
  EXPECT_FALSE(got.clean());
  EXPECT_GE(got.lines_discarded, 1u);
  // One interval fully intact, the damaged one dropped with its rows.
  EXPECT_EQ(got.intervals_salvaged + got.intervals_dropped, 2u);
  EXPECT_EQ(got.intervals_dropped, 1u);
  EXPECT_GT(got.rows_dropped, 0u);
  EXPECT_EQ(got.rows_salvaged, ivs[0].profile.row_count());
}

TEST(StoreSegment, DuplicateAndMissingLinesAreCounted) {
  SegmentWriter w(5);
  const std::vector<IntervalProfile> ivs = {make_interval(1, 0)};
  const std::string content = whole_segment(w, ivs);

  // Duplicate a full line (replayed write): skipped, counted, harmless.
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t nl = content.find('\n', start);
    lines.push_back(content.substr(start, nl - start + 1));
    start = nl + 1;
  }
  ASSERT_GE(lines.size(), 4u);
  std::string dup;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    dup += lines[i];
    if (i == 2) dup += lines[2];
  }
  const SegmentSalvage with_dup = read_segment(dup);
  EXPECT_EQ(with_dup.duplicate_lines, 1u);
  EXPECT_EQ(with_dup.intervals_salvaged, 1u);

  // Remove a middle line: a sequence gap, and the interval it belonged to
  // fails its declared-row count.
  std::string gap;
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (i != 3) gap += lines[i];
  const SegmentSalvage with_gap = read_segment(gap);
  EXPECT_FALSE(with_gap.clean());
  EXPECT_GE(with_gap.gap_lines, 1u);
  EXPECT_EQ(with_gap.intervals_dropped, 1u);
}

TEST(StoreSegment, GarbageAndEmptyInputsAreRejectedNotFatal) {
  const SegmentSalvage empty = read_segment("");
  EXPECT_FALSE(empty.header_ok);
  EXPECT_EQ(empty.intervals_salvaged, 0u);

  const SegmentSalvage noise = read_segment("this is not a segment\nat all\n");
  EXPECT_FALSE(noise.header_ok);
  EXPECT_FALSE(noise.clean());
  EXPECT_EQ(noise.intervals_salvaged, 0u);
}

}  // namespace
}  // namespace viprof::store
