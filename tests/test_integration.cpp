// End-to-end invariants over full profiling sessions: conservation of
// samples, resolvability of every logged record, overhead ordering across
// sampling rates, and the VIProf-vs-OProfile visibility contrast — the
// system-level claims of the paper.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/viprof.hpp"
#include "workloads/generator.hpp"

namespace viprof {
namespace {

struct SessionRun {
  std::unique_ptr<os::Machine> machine;
  std::unique_ptr<jvm::Vm> vm;
  std::unique_ptr<core::ProfilingSession> session;
  core::SessionResult result;
};

SessionRun run_session(core::ProfilingMode mode, std::uint64_t period,
                       std::uint64_t machine_seed = 0xabc,
                       std::uint64_t ops = 4'000'000) {
  SessionRun run;
  os::MachineConfig mcfg;
  mcfg.seed = machine_seed;
  run.machine = std::make_unique<os::Machine>(mcfg);

  workloads::GeneratorOptions opt;
  opt.name = "integ";
  opt.seed = 3;
  opt.methods = 24;
  opt.total_app_ops = ops;
  opt.alloc_intensity = 0.6;
  opt.nursery_bytes = 512 * 1024;
  opt.native_frac = 0.08;
  opt.syscall_frac = 0.04;
  const workloads::Workload w = workloads::make_synthetic(opt);

  run.vm = std::make_unique<jvm::Vm>(*run.machine, w.vm);
  core::SessionConfig config;
  config.mode = mode;
  if (period > 0) {
    config.counters = {{hw::EventKind::kGlobalPowerEvents, period, true},
                       {hw::EventKind::kBsqCacheReference, period / 64, true}};
  }
  run.session = std::make_unique<core::ProfilingSession>(*run.machine, *run.vm, config);
  run.session->attach();
  run.vm->setup(w.program);
  run.result = run.session->run();
  return run;
}

TEST(Integration, EverySampleIsLoggedOrDropped) {
  SessionRun run = run_session(core::ProfilingMode::kViprof, 90'000);
  std::uint64_t logged = 0;
  for (hw::EventKind e : hw::kAllEventKinds) {
    logged += core::SampleLogReader::read(run.machine->vfs(),
                                          run.session->daemon()->sample_dir(), e)
                  .size();
  }
  EXPECT_EQ(logged + run.result.samples_dropped, run.result.nmi_count);
}

TEST(Integration, EveryLoggedSampleResolves) {
  SessionRun run = run_session(core::ProfilingMode::kViprof, 45'000);
  core::Resolver& resolver = run.session->resolver();
  std::uint64_t unknown_domain = 0;
  std::uint64_t total = 0;
  for (hw::EventKind e : hw::kAllEventKinds) {
    for (const core::LoggedSample& s : core::SampleLogReader::read(
             run.machine->vfs(), run.session->daemon()->sample_dir(), e)) {
      const core::Resolution res = resolver.resolve(s);
      ++total;
      EXPECT_FALSE(res.image.empty());
      EXPECT_FALSE(res.symbol.empty());
      if (res.domain == core::SampleDomain::kUnknown) ++unknown_domain;
    }
  }
  EXPECT_GT(total, 100u);
  EXPECT_EQ(unknown_domain, 0u);
}

TEST(Integration, ViprofAttributesJitThatOprofileCannot) {
  SessionRun viprof = run_session(core::ProfilingMode::kViprof, 90'000, 0x111);
  SessionRun oprof = run_session(core::ProfilingMode::kOprofile, 90'000, 0x111);

  const core::Profile vp =
      viprof.session->build_profile({hw::EventKind::kGlobalPowerEvents});
  const core::Profile op =
      oprof.session->build_profile({hw::EventKind::kGlobalPowerEvents});

  constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;
  // The same workload: VIProf sees JIT methods, OProfile sees anon.
  EXPECT_GT(vp.domain_total(core::SampleDomain::kJit, kTime), 0u);
  EXPECT_EQ(vp.domain_total(core::SampleDomain::kAnon, kTime), 0u);
  EXPECT_EQ(op.domain_total(core::SampleDomain::kJit, kTime), 0u);
  EXPECT_GT(op.domain_total(core::SampleDomain::kAnon, kTime), 0u);
  // Both see kernel + native symbols identically (OProfile's strength kept).
  EXPECT_GT(vp.domain_total(core::SampleDomain::kKernel, kTime), 0u);
  EXPECT_GT(op.domain_total(core::SampleDomain::kKernel, kTime), 0u);
}

TEST(Integration, JitResolutionRateIsHigh) {
  SessionRun run = run_session(core::ProfilingMode::kViprof, 45'000);
  run.session->build_profile({hw::EventKind::kGlobalPowerEvents});
  const core::Resolver& r = run.session->resolver();
  const std::uint64_t total = r.jit_resolved() + r.jit_unresolved();
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(r.jit_resolved()) / static_cast<double>(total), 0.99);
}

TEST(Integration, OverheadOrderedBySamplingRate) {
  const hw::Cycles base =
      run_session(core::ProfilingMode::kBase, 0, 0x7).result.cycles;
  const hw::Cycles c45 =
      run_session(core::ProfilingMode::kViprof, 45'000, 0x7).result.cycles;
  const hw::Cycles c90 =
      run_session(core::ProfilingMode::kViprof, 90'000, 0x7).result.cycles;
  const hw::Cycles c450 =
      run_session(core::ProfilingMode::kViprof, 450'000, 0x7).result.cycles;
  EXPECT_GT(c45, c90);
  EXPECT_GT(c90, c450);
  EXPECT_GT(c450, base);
}

TEST(Integration, EpochTagsMatchCollectionCount) {
  SessionRun run = run_session(core::ProfilingMode::kViprof, 45'000);
  std::uint64_t max_epoch = 0;
  for (const core::LoggedSample& s : core::SampleLogReader::read(
           run.machine->vfs(), run.session->daemon()->sample_dir(),
           hw::EventKind::kGlobalPowerEvents)) {
    max_epoch = std::max(max_epoch, s.epoch);
  }
  EXPECT_LE(max_epoch, run.result.vm.collections);
  EXPECT_GT(run.result.vm.collections, 0u);
}

TEST(Integration, EpochsMonotonePerPidInLogOrder) {
  // Epochs are tracked per VM (pid): each pid's tag sequence is monotone;
  // the daemon's own samples and kernel samples of other pids stay at 0.
  SessionRun run = run_session(core::ProfilingMode::kViprof, 45'000);
  std::map<hw::Pid, std::uint64_t> prev;
  for (const core::LoggedSample& s : core::SampleLogReader::read(
           run.machine->vfs(), run.session->daemon()->sample_dir(),
           hw::EventKind::kGlobalPowerEvents)) {
    EXPECT_GE(s.epoch, prev[s.pid]);
    prev[s.pid] = s.epoch;
  }
  EXPECT_GT(prev.size(), 0u);
}

TEST(Integration, DaemonStealsMeasurableCpu) {
  SessionRun run = run_session(core::ProfilingMode::kOprofile, 45'000);
  EXPECT_GT(run.result.vm.service_cycles, 0u);
  EXPECT_GT(run.result.daemon.wakeups, 0u);
  // Daemon cost is bounded by its accounted cycles (plus chunk rounding).
  EXPECT_GE(run.result.vm.service_cycles, run.result.daemon.cost_cycles);
}

TEST(Integration, ProfilerVisibleInOwnProfileUnderHeavySampling) {
  SessionRun run = run_session(core::ProfilingMode::kViprof, 10'000);
  const core::Profile profile =
      run.session->build_profile({hw::EventKind::kGlobalPowerEvents});
  const core::ProfileRow* nmi = profile.find("vmlinux", "oprofile_nmi_handler");
  ASSERT_NE(nmi, nullptr);
  EXPECT_GT(nmi->count(hw::EventKind::kGlobalPowerEvents), 0u);
  const core::ProfileRow* daemon = profile.find("oprofiled", "opd_process_samples");
  ASSERT_NE(daemon, nullptr);
}

TEST(Integration, MultipleEventsLoggedIndependently) {
  SessionRun run = run_session(core::ProfilingMode::kViprof, 90'000);
  const auto time_samples = core::SampleLogReader::read(
      run.machine->vfs(), run.session->daemon()->sample_dir(),
      hw::EventKind::kGlobalPowerEvents);
  const auto miss_samples = core::SampleLogReader::read(
      run.machine->vfs(), run.session->daemon()->sample_dir(),
      hw::EventKind::kBsqCacheReference);
  EXPECT_GT(time_samples.size(), 0u);
  EXPECT_GT(miss_samples.size(), 0u);
}

TEST(Integration, AllFiveEventKindsFlowEndToEnd) {
  SessionRun run;
  os::MachineConfig mcfg;
  mcfg.seed = 0x5e5;
  run.machine = std::make_unique<os::Machine>(mcfg);
  workloads::GeneratorOptions opt;
  opt.name = "integ";
  opt.seed = 3;
  opt.methods = 24;
  opt.total_app_ops = 4'000'000;
  opt.alloc_intensity = 0.6;
  opt.nursery_bytes = 512 * 1024;
  const workloads::Workload w = workloads::make_synthetic(opt);
  run.vm = std::make_unique<jvm::Vm>(*run.machine, w.vm);
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.counters = {
      {hw::EventKind::kGlobalPowerEvents, 90'000, true},
      {hw::EventKind::kBsqCacheReference, 1'000, true},
      {hw::EventKind::kInstrRetired, 50'000, true},
      {hw::EventKind::kItlbMiss, 50, true},
      {hw::EventKind::kBranchMispredict, 1'000, true},
  };
  run.session = std::make_unique<core::ProfilingSession>(*run.machine, *run.vm, config);
  run.session->attach();
  run.vm->setup(w.program);
  run.result = run.session->run();

  const core::Profile profile = run.session->build_profile(
      {hw::EventKind::kGlobalPowerEvents, hw::EventKind::kBsqCacheReference,
       hw::EventKind::kInstrRetired, hw::EventKind::kBranchMispredict});
  EXPECT_GT(profile.total(hw::EventKind::kGlobalPowerEvents), 0u);
  EXPECT_GT(profile.total(hw::EventKind::kBsqCacheReference), 0u);
  EXPECT_GT(profile.total(hw::EventKind::kInstrRetired), 0u);
  EXPECT_GT(profile.total(hw::EventKind::kBranchMispredict), 0u);
  // A four-column Fig. 1-style render works too.
  const std::string out = profile.render(
      {hw::EventKind::kGlobalPowerEvents, hw::EventKind::kBsqCacheReference,
       hw::EventKind::kInstrRetired, hw::EventKind::kBranchMispredict},
      5);
  EXPECT_NE(out.find("Instr %"), std::string::npos);
  EXPECT_NE(out.find("BrMiss %"), std::string::npos);
}

TEST(Integration, DeterministicEndToEnd) {
  const core::SessionResult a =
      run_session(core::ProfilingMode::kViprof, 90'000, 0x42).result;
  const core::SessionResult b =
      run_session(core::ProfilingMode::kViprof, 90'000, 0x42).result;
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.nmi_count, b.nmi_count);
  EXPECT_EQ(a.daemon.drained, b.daemon.drained);
  EXPECT_EQ(a.agent.map_entries_written, b.agent.map_entries_written);
}

}  // namespace
}  // namespace viprof
