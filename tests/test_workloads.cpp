#include <gtest/gtest.h>

#include <set>

#include "workloads/common.hpp"
#include "workloads/dacapo.hpp"
#include "workloads/generator.hpp"
#include "workloads/jvm98.hpp"
#include "workloads/pseudojbb.hpp"

namespace viprof::workloads {
namespace {

void check_well_formed(const Workload& w) {
  SCOPED_TRACE(w.name);
  ASSERT_FALSE(w.program.methods.empty());
  for (std::size_t i = 0; i < w.program.methods.size(); ++i) {
    const jvm::MethodInfo& m = w.program.methods[i];
    EXPECT_EQ(m.id, i);  // dense ids, required by the VM
    EXPECT_GT(m.bytecode_size, 0u);
    EXPECT_GT(m.ops_per_invocation, 0u);
    EXPECT_GT(m.weight, 0.0);
    double outcalls = 0.0;
    for (const auto& oc : m.outcalls) outcalls += oc.frac_ops;
    EXPECT_LT(outcalls, 0.95);
  }
  EXPECT_GT(w.program.total_app_ops, 0u);
  // Every native outcall target must exist in some declared library.
  std::set<std::string> symbols;
  for (const auto& lib : w.program.libraries)
    for (const auto& s : lib.symbols) symbols.insert(lib.name + "/" + s.name);
  for (const auto& m : w.program.methods) {
    for (const auto& oc : m.outcalls) {
      if (oc.kind == jvm::OutCall::Kind::kNative) {
        EXPECT_TRUE(symbols.count(oc.library + "/" + oc.symbol))
            << oc.library << "/" << oc.symbol;
      }
    }
  }
}

TEST(Workloads, Figure2SuiteMatchesPaperOrder) {
  const auto suite = figure2_suite();
  ASSERT_EQ(suite.size(), 9u);
  const char* expected[] = {"pseudojbb", "JVM98", "antlr", "bloat", "fop",
                            "hsqldb", "pmd", "xalan", "ps"};
  for (std::size_t i = 0; i < suite.size(); ++i) EXPECT_EQ(suite[i].name, expected[i]);
}

TEST(Workloads, AllSuiteWorkloadsWellFormed) {
  for (const Workload& w : figure2_suite()) check_well_formed(w);
}

TEST(Workloads, PaperBaseSecondsMatchFigure3) {
  const auto suite = figure2_suite();
  EXPECT_DOUBLE_EQ(suite[0].paper_base_seconds, 31.0);   // pseudojbb
  EXPECT_DOUBLE_EQ(suite[1].paper_base_seconds, 5.74);   // JVM98
  EXPECT_DOUBLE_EQ(suite[2].paper_base_seconds, 8.7);    // antlr
  EXPECT_DOUBLE_EQ(suite[3].paper_base_seconds, 28.5);   // bloat
  EXPECT_DOUBLE_EQ(suite[4].paper_base_seconds, 3.2);    // fop
  EXPECT_DOUBLE_EQ(suite[5].paper_base_seconds, 43.0);   // hsqldb
  EXPECT_DOUBLE_EQ(suite[6].paper_base_seconds, 16.3);   // pmd
  EXPECT_DOUBLE_EQ(suite[7].paper_base_seconds, 22.2);   // xalan
}

TEST(Workloads, PsCarriesFig1Symbols) {
  const Workload ps = make_dacapo("ps");
  bool parse_line = false;
  for (const auto& m : ps.program.methods) {
    if (m.qualified_name() ==
        "edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner.parseLine") {
      parse_line = true;
      EXPECT_FALSE(m.outcalls.empty());
    }
  }
  EXPECT_TRUE(parse_line);
  bool libfb = false, libxul_stripped = false;
  for (const auto& lib : ps.program.libraries) {
    if (lib.name == "libfb.so") libfb = true;
    if (lib.name == "libxul.so.0d") libxul_stripped = lib.stripped;
  }
  EXPECT_TRUE(libfb);
  EXPECT_TRUE(libxul_stripped);
}

TEST(Workloads, DacapoSizesScaleRunLength) {
  const Workload small = make_dacapo("fop", DacapoSize::kSmall);
  const Workload dflt = make_dacapo("fop", DacapoSize::kDefault);
  const Workload large = make_dacapo("fop", DacapoSize::kLarge);
  EXPECT_LT(small.program.total_app_ops, dflt.program.total_app_ops);
  EXPECT_LT(dflt.program.total_app_ops, large.program.total_app_ops);
  // Same program character (methods identical), different run length.
  EXPECT_EQ(small.program.methods.size(), large.program.methods.size());
  // Only the large input corresponds to a Fig. 3 row.
  EXPECT_EQ(small.paper_base_seconds, 0.0);
  EXPECT_GT(large.paper_base_seconds, 0.0);
}

TEST(Workloads, AntlrIsColdCodeHeavy) {
  const Workload antlr = make_dacapo("antlr");
  const Workload hsqldb = make_dacapo("hsqldb");
  EXPECT_GT(antlr.program.methods.size(), 4 * hsqldb.program.methods.size());
  EXPECT_LT(antlr.vm.heap.nursery_data_bytes, hsqldb.vm.heap.nursery_data_bytes);
  EXPECT_GT(antlr.vm.heap.mature_age, hsqldb.vm.heap.mature_age);
}

TEST(Workloads, Jvm98HasAllSevenPackages) {
  const Workload w = make_jvm98();
  std::set<std::string> packages;
  for (const auto& m : w.program.methods) {
    packages.insert(m.klass.substr(0, m.klass.find(".benchmarks.") + 20));
  }
  std::set<std::string> distinct;
  for (const auto& m : w.program.methods) {
    const auto pos = m.klass.find('_');
    if (pos != std::string::npos) distinct.insert(m.klass.substr(pos, 4));
  }
  EXPECT_EQ(distinct.size(), 7u);
}

TEST(Workloads, PseudoJbbScalesWithTransactions) {
  const Workload small = make_pseudojbb({3, 50'000});
  const Workload large = make_pseudojbb({3, 200'000});
  EXPECT_LT(small.program.total_app_ops, large.program.total_app_ops);
  EXPECT_NEAR(static_cast<double>(large.program.total_app_ops) /
                  static_cast<double>(small.program.total_app_ops),
              4.0, 0.01);
}

TEST(Workloads, GeneratorHonoursOptions) {
  GeneratorOptions opt;
  opt.methods = 33;
  opt.total_app_ops = 123'456;
  opt.nursery_bytes = 1 << 20;
  opt.mature_age = 7;
  opt.native_frac = 0.1;
  const Workload w = make_synthetic(opt);
  EXPECT_EQ(w.program.methods.size(), 33u);
  EXPECT_EQ(w.program.total_app_ops, 123'456u);
  EXPECT_EQ(w.vm.heap.nursery_data_bytes, 1u << 20);
  EXPECT_EQ(w.vm.heap.mature_age, 7u);
  EXPECT_FALSE(w.program.methods.front().outcalls.empty());
  check_well_formed(w);
}

TEST(Workloads, GeneratorDeterministicPerSeed) {
  const Workload a = make_synthetic({.seed = 4}), b = make_synthetic({.seed = 4});
  ASSERT_EQ(a.program.methods.size(), b.program.methods.size());
  for (std::size_t i = 0; i < a.program.methods.size(); ++i) {
    EXPECT_EQ(a.program.methods[i].qualified_name(),
              b.program.methods[i].qualified_name());
    EXPECT_EQ(a.program.methods[i].ops_per_invocation,
              b.program.methods[i].ops_per_invocation);
  }
}

TEST(Workloads, OpsForSecondsInvertsCalibration) {
  EXPECT_EQ(ops_for_seconds(1.0, 2.0), static_cast<std::uint64_t>(kCyclesPerSecond / 2));
  EXPECT_EQ(ops_for_seconds(10.0, 4.0),
            static_cast<std::uint64_t>(10.0 * kCyclesPerSecond / 4));
}

TEST(Workloads, ZipfWeightsDecreasing) {
  std::vector<jvm::MethodInfo> methods;
  MethodPopulation pop;
  pop.count = 10;
  pop.zipf_s = 1.0;
  append_methods(methods, pop);
  for (std::size_t i = 1; i < methods.size(); ++i)
    EXPECT_GT(methods[i - 1].weight, methods[i].weight);
}

}  // namespace
}  // namespace viprof::workloads
