// Store crash consistency: the compactor-component kill schedule sweeps
// every checkpoint of a scripted ingest/seal/compact workload, and after
// each simulated crash the store must recover with *exact* accounting —
// in a kill-only run nothing is ever lost (appends land before the
// checkpoint that can kill them), and the recovered queries are the
// canonical fold of exactly the appended prefix. Torn and failing appends
// add real loss, which must be counted, never silent.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "os/vfs.hpp"
#include "store/profile_store.hpp"
#include "support/fault.hpp"
#include "support/thread_pool.hpp"

namespace viprof::store {
namespace {

constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;
constexpr auto kDmiss = hw::EventKind::kBsqCacheReference;
const std::vector<hw::EventKind> kEvents = {kTime, kDmiss};

core::Resolution res(const std::string& image, const std::string& symbol) {
  core::Resolution r;
  r.image = image;
  r.symbol = symbol;
  r.domain = core::SampleDomain::kJit;
  return r;
}

/// Unique merge keys (distinct ticks) so compaction never folds intervals:
/// interval counts are conserved and "salvaged == appended" is exact.
IntervalProfile make_interval(std::uint64_t j) {
  IntervalProfile iv;
  iv.session = "vm";
  iv.pid = 40;
  iv.tick_lo = iv.tick_hi = j;
  iv.epoch_lo = j;
  iv.epoch_hi = j + 1;
  iv.profile.add(kTime, res("RVM.map", "method-" + std::to_string(j % 5)), 10 + j);
  iv.profile.add(kDmiss, res("vmlinux", "do_irq"), 1 + j % 3);
  return iv;
}

core::Profile fold_prefix(std::uint64_t n) {
  core::Profile out;
  for (std::uint64_t j = 0; j < n; ++j) out.merge(make_interval(j).profile);
  return out;
}

StoreConfig tight_config() {
  StoreConfig config;
  config.seal_after_intervals = 3;
  config.compact_fanin = 2;
  config.compact_min_segments = 2;
  return config;
}

/// The scripted workload: 14 ingests with a mid-way and a final
/// compaction. Returns how many intervals were appended to disk before the
/// kill fired (an ingest that entered while the store was alive appends
/// before any checkpoint that can kill it — except when the append itself
/// opened a fresh segment and the kill hit during that setup, which the
/// recovery accounting below detects as salvaged-count truth anyway).
void run_workload(ProfileStore& st, support::ThreadPool* pool) {
  for (std::uint64_t j = 0; j < 14; ++j) {
    st.ingest(make_interval(j));
    if (st.killed()) return;
    if (j == 8 && st.compact(pool) == 0 && st.killed()) return;
  }
  st.seal_active();
  if (st.killed()) return;
  st.compact(pool);
}

TEST(StoreFaults, KillSweepRecoversWithZeroLoss) {
  // Sweep the kill point across every checkpoint the workload reaches;
  // stop once a run completes unkilled.
  bool completed_unkilled = false;
  int swept = 0;
  for (std::uint64_t kill_at = 1; !completed_unkilled && kill_at < 200; ++kill_at) {
    support::FaultInjector faults;
    faults.schedule_kill(support::FaultComponent::kCompactor, kill_at);
    os::Vfs vfs;
    vfs.set_fault_injector(&faults);
    support::ThreadPool pool(2);
    {
      ProfileStore st(vfs, tight_config());
      ASSERT_EQ(st.open().verdict, core::FsckVerdict::kClean);
      run_workload(st, &pool);
      completed_unkilled = !st.killed();
    }  // crash: the store object is discarded mid-flight
    ++swept;

    // fsck is a read-only dry run and must agree with the open that
    // follows it.
    ProfileStore recovered(vfs, tight_config());
    const StoreRecovery dry = recovered.fsck();
    const StoreRecovery rec = recovered.open();
    EXPECT_NE(rec.verdict, core::FsckVerdict::kUnrecoverable) << "kill_at=" << kill_at;
    EXPECT_EQ(dry.intervals_salvaged, rec.intervals_salvaged) << "kill_at=" << kill_at;
    EXPECT_EQ(dry.intervals_lost, rec.intervals_lost) << "kill_at=" << kill_at;

    // Kill-only crash model: every appended interval is recoverable and
    // the accounting must say so — zero loss, exactly.
    EXPECT_EQ(rec.intervals_lost, 0u) << "kill_at=" << kill_at;
    EXPECT_EQ(rec.rows_lost, 0u) << "kill_at=" << kill_at;
    EXPECT_LE(rec.intervals_salvaged, 14u) << "kill_at=" << kill_at;
    if (completed_unkilled) {
      EXPECT_EQ(rec.intervals_salvaged, 14u);
    }

    // The recovered store serves exactly the appended prefix (ingest order
    // is append order, so the salvaged set is always a prefix).
    EXPECT_EQ(recovered.render_top({}, kEvents, 20),
              fold_prefix(rec.intervals_salvaged).render(kEvents, 20))
        << "kill_at=" << kill_at;

    // Recovery converges: a second open over the repaired bytes is clean.
    ProfileStore again(vfs, tight_config());
    const StoreRecovery rec2 = again.open();
    EXPECT_EQ(rec2.verdict, core::FsckVerdict::kClean) << "kill_at=" << kill_at;
    EXPECT_EQ(rec2.intervals_salvaged, rec.intervals_salvaged) << "kill_at=" << kill_at;
  }
  EXPECT_TRUE(completed_unkilled);
  EXPECT_GT(swept, 10);  // the sweep exercised many distinct checkpoints
}

TEST(StoreFaults, TornAppendIsCountedAsLossAfterCrash) {
  support::FaultInjector faults;
  support::FaultRule rule;
  rule.path_prefix = "store/segments/";
  rule.kind = support::FaultKind::kTornWrite;
  rule.skip = 4;   // the header write + first appends succeed
  rule.count = 1;  // one torn append
  faults.add_rule(rule);
  os::Vfs vfs;
  vfs.set_fault_injector(&faults);

  StoreConfig config = tight_config();
  config.seal_after_intervals = 100;  // keep everything in the active segment
  std::uint64_t acked = 0;
  {
    ProfileStore st(vfs, config);
    ASSERT_EQ(st.open().verdict, core::FsckVerdict::kClean);
    for (std::uint64_t j = 0; j < 8; ++j)
      if (st.ingest(make_interval(j))) ++acked;
    // In memory nothing is missing: the store still answers over all 8.
    EXPECT_EQ(st.window_profile({}).render(kEvents, 20),
              fold_prefix(8).render(kEvents, 20));
  }  // crash without ever sealing

  ASSERT_EQ(faults.stats().torn_writes, 1u);
  ProfileStore recovered(vfs, config);
  const StoreRecovery rec = recovered.open();
  EXPECT_NE(rec.verdict, core::FsckVerdict::kClean);
  // The torn interval is real loss — counted, not silent. The torn tail
  // can also glue onto the next append's first line and take a second
  // interval with it, but never more, and never without accounting.
  EXPECT_GE(rec.intervals_lost, 1u);
  EXPECT_LE(rec.intervals_lost, 2u);
  EXPECT_GT(rec.rows_lost, 0u);
  EXPECT_EQ(rec.intervals_salvaged + rec.intervals_lost, acked);
}

TEST(StoreFaults, TransientManifestSwapFailureHealsOnNextSwap) {
  support::FaultInjector faults;
  support::FaultRule rule;
  rule.path_prefix = "store/MANIFEST.tmp";
  rule.kind = support::FaultKind::kWriteError;
  rule.skip = 2;   // open() and the first segment registration succeed
  rule.count = 1;  // one rejected temp write: the old generation survives
  faults.add_rule(rule);
  os::Vfs vfs;
  vfs.set_fault_injector(&faults);

  StoreConfig config = tight_config();
  config.root = "store";
  {
    ProfileStore st(vfs, config);
    ASSERT_EQ(st.open().verdict, core::FsckVerdict::kClean);
    for (std::uint64_t j = 0; j < 9; ++j) EXPECT_TRUE(st.ingest(make_interval(j)));
    st.seal_active();
  }  // crash

  // The rejected swap left the previous generation intact on disk; the
  // next successful swap republished the full state, so recovery sees a
  // coherent store with nothing lost.
  ASSERT_EQ(faults.stats().write_errors, 1u);
  ProfileStore recovered(vfs, config);
  const StoreRecovery rec = recovered.open();
  EXPECT_NE(rec.verdict, core::FsckVerdict::kUnrecoverable);
  EXPECT_EQ(rec.intervals_lost, 0u);
  EXPECT_EQ(rec.rows_lost, 0u);
  EXPECT_EQ(rec.intervals_salvaged, 9u);
  EXPECT_EQ(recovered.render_top({}, kEvents, 20), fold_prefix(9).render(kEvents, 20));
}

TEST(StoreFaults, DiskFullDegradesWithCountedLoss) {
  support::FaultInjector faults;
  faults.set_capacity_bytes(4096);
  os::Vfs vfs;
  vfs.set_fault_injector(&faults);

  support::Telemetry telemetry;
  StoreConfig config = tight_config();
  config.telemetry = &telemetry;
  std::uint64_t acked = 0;
  {
    ProfileStore st(vfs, config);
    if (st.open().verdict == core::FsckVerdict::kUnrecoverable) GTEST_SKIP();
    for (std::uint64_t j = 0; j < 30 && !st.killed(); ++j)
      if (st.ingest(make_interval(j))) ++acked;
  }
  ASSERT_GT(faults.stats().enospc_errors, 0u);
  EXPECT_GT(telemetry.snapshot().counter("store.ingest.append_errors"), 0u);

  // Whatever survives the full disk must still be a consistent store: the
  // scan never reports more data than was ever acked, and a whole-missing
  // append can at worst go unreported (its bytes never existed), never
  // corrupt a neighbour.
  ProfileStore recovered(vfs, config);
  const StoreRecovery rec = recovered.open();
  EXPECT_NE(rec.verdict, core::FsckVerdict::kUnrecoverable);
  EXPECT_LE(rec.intervals_salvaged + rec.intervals_lost, acked);
  EXPECT_GT(rec.intervals_salvaged, 0u);
}

}  // namespace
}  // namespace viprof::store
