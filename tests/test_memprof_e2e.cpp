// End-to-end memory profiling byte-identity (ISSUE 10 acceptance): a real
// memprof session — allocation sites, moving GC, epoch object maps, a
// DMISS_OBJ sample stream spanning several GC moves of hot objects — is
// exported, then replayed into the continuous-profiling server at several
// ingest-thread and stripe counts, and routed across fleet shards at 1/2/4.
// The per-allocation-site table each path renders must equal the offline
// viprof_report pass byte for byte.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/viprof.hpp"
#include "fleet/federator.hpp"
#include "fleet/router.hpp"
#include "memprof/agent.hpp"
#include "memprof/object_map.hpp"
#include "memprof/report.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "workloads/generator.hpp"

namespace viprof::memprof {
namespace {

/// A leak-shaped mix small enough for a test: most sites die young, two
/// survive every collection (and therefore move under the copying GC).
workloads::Workload leaky_workload(std::uint64_t seed) {
  workloads::GeneratorOptions opt;
  opt.name = "memleak";
  opt.seed = seed;
  opt.methods = 24;
  opt.alloc_intensity = 1.0;
  opt.nursery_bytes = 256 * 1024;
  opt.total_app_ops = 2'500'000;
  workloads::Workload w = workloads::make_synthetic(opt);
  for (jvm::MethodInfo& m : w.program.methods) {
    m.alloc_object_bytes = 96 + 32 * (m.id % 5);
    m.alloc_object_lifetime = m.id % 3;
  }
  for (std::size_t leak : {std::size_t{2}, std::size_t{5}}) {
    jvm::MethodInfo& m = w.program.methods[leak];
    m.alloc_object_bytes = 768;
    m.alloc_object_lifetime = 1'000'000;  // survives — and moves — every GC
  }
  w.vm.heap.track_objects = true;
  return w;
}

struct RecordedMemprof {
  std::unique_ptr<os::Machine> machine;
  std::unique_ptr<jvm::Vm> vm;
  std::unique_ptr<core::ProfilingSession> session;
  std::unique_ptr<MemProfAgent> agent;

  const os::Vfs& vfs() const { return machine->vfs(); }
  std::vector<core::VmRegistration> regs() const {
    return session->registrations().all();
  }
};

RecordedMemprof record_memprof_session(std::uint64_t seed) {
  RecordedMemprof run;
  os::MachineConfig mcfg;
  mcfg.seed = seed;
  run.machine = std::make_unique<os::Machine>(mcfg);
  const workloads::Workload w = leaky_workload(seed * 31 + 7);
  run.vm = std::make_unique<jvm::Vm>(*run.machine, w.vm);
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.counters = {{hw::EventKind::kGlobalPowerEvents, 90'000, true},
                     {hw::EventKind::kBsqCacheReference, 4'000, true},
                     {hw::EventKind::kObjDmiss, 1'500, true}};
  config.agent.obj_map_dir = "obj_maps";
  run.session = std::make_unique<core::ProfilingSession>(*run.machine, *run.vm, config);
  run.agent = std::make_unique<MemProfAgent>(*run.machine);
  run.session->attach();
  run.vm->add_listener(run.agent.get());
  run.vm->setup(w.program);
  run.session->run();
  run.session->export_archive();
  return run;
}

std::string offline_memprof(const RecordedMemprof& run, std::size_t top) {
  const ObjectReport obj = build_object_report(run.vfs(), "samples", run.regs());
  return render_memprof(obj.sites, obj.profile, top);
}

void replay(service::ProfileServer& server, const RecordedMemprof& run,
            const std::string& id) {
  auto conn = server.connect(id);
  service::ReplayClient client(run.vfs(), id, *conn,
                               service::ReplayOptions{128, nullptr, {}});
  ASSERT_TRUE(client.run());
}

TEST(MemprofE2E, SessionHasSamplesSpanningGcMoves) {
  const RecordedMemprof run = record_memprof_session(0xa11a);
  const hw::Pid pid = run.regs().at(0).pid;

  // Hot survivors moved: some object is sighted at >= 2 addresses.
  std::map<std::uint64_t, std::set<hw::Address>> addresses;
  std::uint64_t maps = 0;
  for (const std::string& path :
       run.vfs().list("obj_maps/" + std::to_string(pid) + "/")) {
    const auto parsed = ObjectMapFile::parse(*run.vfs().read(path));
    ASSERT_TRUE(parsed.has_value()) << path;
    ++maps;
    for (const ObjectMapEntry& o : parsed->objects)
      addresses[o.obj_id].insert(o.address);
  }
  ASSERT_GE(maps, 3u);
  std::uint64_t movers = 0;
  for (const auto& [id, addrs] : addresses)
    if (addrs.size() >= 2) ++movers;
  EXPECT_GT(movers, 0u);

  // The object-sample stream exists and spans multiple epochs, so
  // resolution genuinely exercises the backward walk across moved maps.
  const auto samples = core::SampleLogReader::read(run.vfs(), "samples",
                                                   hw::EventKind::kObjDmiss);
  ASSERT_GT(samples.size(), 50u);
  std::set<std::uint64_t> epochs;
  for (const core::LoggedSample& s : samples) epochs.insert(s.epoch);
  EXPECT_GE(epochs.size(), 2u);

  // And most of it attributes: the report is about the sites, with the
  // degradation bins a footnote, not the other way round.
  const ObjectReport obj = build_object_report(run.vfs(), "samples", run.regs());
  EXPECT_EQ(obj.samples, samples.size());
  EXPECT_GT(obj.stats.resolved, obj.samples / 2);
  EXPECT_EQ(obj.stats.resolved + obj.stats.unresolved, obj.samples);
  EXPECT_GT(obj.stats.backward_steps, obj.stats.resolved)
      << "no sample ever resolved through an older epoch's map";

  // The leak sites dominate live bytes.
  std::uint64_t live = 0, total_alloc = 0;
  for (const auto& [key, stats] : obj.sites.sites()) {
    live += stats.live_bytes();
    total_alloc += stats.alloc_bytes;
  }
  EXPECT_GT(live, 0u);
  EXPECT_GT(total_alloc, live);
}

TEST(MemprofE2E, OnlineMatchesOfflineAtAnyThreadAndStripeCount) {
  const RecordedMemprof run = record_memprof_session(0xbee);
  const std::string oracle = offline_memprof(run, 25);
  ASSERT_NE(oracle.find("degradation:"), std::string::npos);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    for (const std::size_t stripes : {1u, 4u}) {
      service::ServerConfig config;
      config.ingest_threads = threads;
      config.agg_stripes = stripes;
      service::ProfileServer server(config);
      replay(server, run, "mem-e2e");
      server.drain();
      EXPECT_EQ(server.query("memprof 25"), oracle)
          << threads << " threads, " << stripes << " stripes";
      EXPECT_EQ(server.query("memprof 25 --session mem-e2e"), oracle);
    }
  }

  service::ProfileServer server;
  replay(server, run, "mem-e2e");
  server.drain();
  EXPECT_EQ(server.query("memprof 25 --session nope"),
            "error: no such session: nope\n");
}

TEST(MemprofE2E, FederatedMemprofMatchesSingleServerAtAnyShardCount) {
  const RecordedMemprof a = record_memprof_session(0x51);
  const RecordedMemprof b = record_memprof_session(0x52);

  service::ProfileServer single;
  replay(single, a, "mem-a");
  replay(single, b, "mem-b");
  single.drain();
  const std::string oracle = single.query("memprof 25");
  ASSERT_NE(oracle.find("object maps:"), std::string::npos);

  for (const std::size_t shard_count : {1u, 2u, 4u}) {
    os::Vfs fleet_vfs;
    fleet::FleetConfig config;
    config.shards = shard_count;
    fleet::Router router(fleet_vfs, config);
    ASSERT_TRUE(router.ingest(a.vfs(), "mem-a").completed);
    ASSERT_TRUE(router.ingest(b.vfs(), "mem-b").completed);
    fleet::Federator federator(router);
    EXPECT_EQ(federator.query("memprof 25"), oracle) << shard_count << " shards";
  }
}

}  // namespace
}  // namespace viprof::memprof
