#include <gtest/gtest.h>

#include <vector>

#include "hw/cpu.hpp"

namespace viprof::hw {
namespace {

ExecContext user_ctx(Address base = 0x1000, std::uint64_t size = 0x1000) {
  return ExecContext{base, size, CpuMode::kUser, 42, 0};
}

TEST(Cpu, ClockAdvances) {
  Cpu cpu;
  cpu.set_context(user_ctx());
  cpu.advance(1'000, {});
  cpu.advance(2'000, {});
  EXPECT_EQ(cpu.now(), 3'000u);
}

TEST(Cpu, NoHandlerNoCrashOnOverflow) {
  Cpu cpu;
  cpu.counters().configure({{EventKind::kGlobalPowerEvents, 100, true}});
  cpu.set_context(user_ctx());
  cpu.advance(1'000, {});
  EXPECT_EQ(cpu.nmi_count(), 10u);
}

TEST(Cpu, SampleLandsInsideContext) {
  Cpu cpu;
  cpu.counters().configure({{EventKind::kGlobalPowerEvents, 500, true}});
  const ExecContext ctx = user_ctx(0x40'0000, 0x2000);
  cpu.set_context(ctx);
  std::vector<SampleContext> samples;
  cpu.set_nmi_handler([&](const SampleContext& sc) -> Cycles {
    samples.push_back(sc);
    return 0;
  });
  cpu.advance(5'000, {});
  ASSERT_EQ(samples.size(), 10u);
  for (const auto& sc : samples) {
    EXPECT_GE(sc.pc, ctx.code_base);
    EXPECT_LT(sc.pc, ctx.code_base + ctx.code_size);
    EXPECT_EQ(sc.mode, CpuMode::kUser);
    EXPECT_EQ(sc.pid, 42u);
  }
}

TEST(Cpu, OverflowCycleIsExact) {
  Cpu cpu;
  cpu.counters().configure({{EventKind::kGlobalPowerEvents, 1'000, true}});
  cpu.set_context(user_ctx());
  std::vector<Cycles> at;
  cpu.set_nmi_handler([&](const SampleContext& sc) -> Cycles {
    at.push_back(sc.cycle);
    return 0;
  });
  // Three chunks of 700: overflows at cycle 1000 (in chunk 2) and 2000 (chunk 3).
  cpu.advance(700, {});
  cpu.advance(700, {});
  cpu.advance(700, {});
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], 1'000u);
  EXPECT_EQ(at[1], 2'000u);
}

TEST(Cpu, HandlerCostChargedToClockAndOverheadCounter) {
  Cpu cpu;
  cpu.counters().configure({{EventKind::kGlobalPowerEvents, 100, true}});
  cpu.set_context(user_ctx());
  cpu.set_nmi_handler([](const SampleContext&) -> Cycles { return 30; });
  cpu.advance(100, {});
  EXPECT_EQ(cpu.now(), 130u);  // 100 workload + 30 handler
  EXPECT_EQ(cpu.nmi_overhead_cycles(), 30u);
  EXPECT_EQ(cpu.nmi_count(), 1u);
}

TEST(Cpu, HandlerCyclesKeepCounting) {
  // Handler cost itself eventually overflows the counter: the profiler
  // samples its own handler (as OProfile does under aggressive rates).
  Cpu cpu;
  cpu.counters().configure({{EventKind::kGlobalPowerEvents, 100, true}});
  const ExecContext prof{0xc00'0000, 0x100, CpuMode::kKernel, 0, 0};
  cpu.set_profiler_context(prof);
  cpu.set_context(user_ctx());
  std::vector<SampleContext> samples;
  cpu.set_nmi_handler([&](const SampleContext& sc) -> Cycles {
    samples.push_back(sc);
    return 60;  // more than half the period
  });
  cpu.advance(200, {});  // overflows at 100 and 200; handler cycles add 120 more
  // 200 workload + >=120 handler cycles => at least one self-sample.
  bool saw_profiler_pc = false;
  for (const auto& sc : samples) {
    if (sc.pc >= prof.code_base && sc.pc < prof.code_base + prof.code_size) {
      saw_profiler_pc = true;
      EXPECT_EQ(sc.mode, CpuMode::kKernel);
    }
  }
  EXPECT_TRUE(saw_profiler_pc);
  EXPECT_GE(cpu.now(), 200u + 120u);
}

TEST(Cpu, FractionalEventsAccumulateAcrossChunks) {
  Cpu cpu;
  cpu.counters().configure({{EventKind::kBsqCacheReference, 1, true}});
  cpu.set_context(user_ctx());
  int fired = 0;
  cpu.set_nmi_handler([&](const SampleContext& sc) -> Cycles {
    if (sc.event == EventKind::kBsqCacheReference) ++fired;
    return 0;
  });
  ChunkEvents ev;
  ev.l2_misses = 0.25;
  for (int i = 0; i < 8; ++i) cpu.advance(100, ev);  // 2.0 misses total
  EXPECT_EQ(fired, 2);
}

TEST(Cpu, InstructionEventsMapToChunk) {
  Cpu cpu;
  cpu.counters().configure({{EventKind::kInstrRetired, 1'000, true}});
  cpu.set_context(user_ctx());
  int fired = 0;
  cpu.set_nmi_handler([&](const SampleContext&) -> Cycles {
    ++fired;
    return 0;
  });
  ChunkEvents ev;
  ev.instructions = 500;
  cpu.advance(600, ev);
  cpu.advance(600, ev);
  EXPECT_EQ(fired, 1);
}

TEST(Cpu, SkidStaysInsideBody) {
  Cpu cpu;
  cpu.counters().configure({{EventKind::kGlobalPowerEvents, 50, true}});
  cpu.set_max_skid(4096);  // larger than the body
  const ExecContext ctx = user_ctx(0x5000, 256);
  cpu.set_context(ctx);
  std::vector<Address> pcs;
  cpu.set_nmi_handler([&](const SampleContext& sc) -> Cycles {
    pcs.push_back(sc.pc);
    return 0;
  });
  cpu.advance(5'000, {});
  ASSERT_FALSE(pcs.empty());
  for (Address pc : pcs) {
    EXPECT_GE(pc, ctx.code_base);
    EXPECT_LT(pc, ctx.code_base + ctx.code_size);
  }
}

TEST(Cpu, CallerPcPropagates) {
  Cpu cpu;
  cpu.counters().configure({{EventKind::kGlobalPowerEvents, 10, true}});
  ExecContext ctx = user_ctx();
  ctx.caller_pc = 0xdeadbeef;
  cpu.set_context(ctx);
  Address seen = 0;
  cpu.set_nmi_handler([&](const SampleContext& sc) -> Cycles {
    seen = sc.caller_pc;
    return 0;
  });
  cpu.advance(10, {});
  EXPECT_EQ(seen, 0xdeadbeefu);
}

TEST(Cpu, MultiEventOverflowsOrderedByCycle) {
  Cpu cpu;
  cpu.counters().configure({{EventKind::kGlobalPowerEvents, 100, true},
                            {EventKind::kInstrRetired, 40, true}});
  cpu.set_context(user_ctx());
  std::vector<Cycles> order;
  cpu.set_nmi_handler([&](const SampleContext& sc) -> Cycles {
    order.push_back(sc.cycle);
    return 0;
  });
  ChunkEvents ev;
  ev.instructions = 100;
  cpu.advance(200, ev);
  for (std::size_t i = 1; i < order.size(); ++i) EXPECT_LE(order[i - 1], order[i]);
  EXPECT_EQ(order.size(), 4u);  // 2 cycle overflows + 2 instr overflows
}

}  // namespace
}  // namespace viprof::hw
