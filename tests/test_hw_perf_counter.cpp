#include <gtest/gtest.h>

#include "hw/perf_counter.hpp"

namespace viprof::hw {
namespace {

TEST(PerfCounter, NoOverflowBelowPeriod) {
  PerfCounterUnit unit;
  unit.configure({{EventKind::kGlobalPowerEvents, 100, true}});
  std::vector<Overflow> out;
  unit.add(EventKind::kGlobalPowerEvents, 99, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(unit.total(EventKind::kGlobalPowerEvents), 99u);
}

TEST(PerfCounter, OverflowAtExactPeriod) {
  PerfCounterUnit unit;
  unit.configure({{EventKind::kGlobalPowerEvents, 100, true}});
  std::vector<Overflow> out;
  unit.add(EventKind::kGlobalPowerEvents, 100, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].offset, 100u);  // fired on the 100th event
  EXPECT_EQ(out[0].kind, EventKind::kGlobalPowerEvents);
}

TEST(PerfCounter, MultipleOverflowsInOneBatch) {
  PerfCounterUnit unit;
  unit.configure({{EventKind::kGlobalPowerEvents, 10, true}});
  std::vector<Overflow> out;
  unit.add(EventKind::kGlobalPowerEvents, 35, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].offset, 10u);
  EXPECT_EQ(out[1].offset, 20u);
  EXPECT_EQ(out[2].offset, 30u);
  // Remaining 5 counted toward the next overflow.
  out.clear();
  unit.add(EventKind::kGlobalPowerEvents, 5, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].offset, 5u);
}

TEST(PerfCounter, StateCarriesAcrossAdds) {
  PerfCounterUnit unit;
  unit.configure({{EventKind::kBsqCacheReference, 100, true}});
  std::vector<Overflow> out;
  for (int i = 0; i < 9; ++i) unit.add(EventKind::kBsqCacheReference, 10, out);
  EXPECT_TRUE(out.empty());
  unit.add(EventKind::kBsqCacheReference, 10, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].offset, 10u);
}

TEST(PerfCounter, IndependentCountersPerEvent) {
  PerfCounterUnit unit;
  unit.configure({{EventKind::kGlobalPowerEvents, 10, true},
                  {EventKind::kBsqCacheReference, 3, true}});
  std::vector<Overflow> out;
  unit.add(EventKind::kGlobalPowerEvents, 9, out);
  unit.add(EventKind::kBsqCacheReference, 9, out);
  ASSERT_EQ(out.size(), 3u);  // only the cache counter fired (3 times)
  for (const auto& o : out) EXPECT_EQ(o.kind, EventKind::kBsqCacheReference);
}

TEST(PerfCounter, UnwatchedEventsStillCounted) {
  PerfCounterUnit unit;
  unit.configure({{EventKind::kGlobalPowerEvents, 10, true}});
  std::vector<Overflow> out;
  unit.add(EventKind::kItlbMiss, 1000, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(unit.total(EventKind::kItlbMiss), 1000u);
  EXPECT_FALSE(unit.watches(EventKind::kItlbMiss));
  EXPECT_TRUE(unit.watches(EventKind::kGlobalPowerEvents));
}

TEST(PerfCounter, DisabledUnitCountsButNeverOverflows) {
  PerfCounterUnit unit;
  unit.configure({{EventKind::kGlobalPowerEvents, 10, true}});
  unit.set_enabled(false);
  std::vector<Overflow> out;
  unit.add(EventKind::kGlobalPowerEvents, 1000, out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(unit.watches(EventKind::kGlobalPowerEvents));
  EXPECT_EQ(unit.total(EventKind::kGlobalPowerEvents), 1000u);
}

TEST(PerfCounter, DisabledCounterIgnored) {
  PerfCounterUnit unit;
  unit.configure({{EventKind::kGlobalPowerEvents, 10, false}});
  std::vector<Overflow> out;
  unit.add(EventKind::kGlobalPowerEvents, 100, out);
  EXPECT_TRUE(out.empty());
}

TEST(PerfCounter, ReconfigureResetsState) {
  PerfCounterUnit unit;
  unit.configure({{EventKind::kGlobalPowerEvents, 10, true}});
  std::vector<Overflow> out;
  unit.add(EventKind::kGlobalPowerEvents, 9, out);
  unit.configure({{EventKind::kGlobalPowerEvents, 10, true}});
  unit.add(EventKind::kGlobalPowerEvents, 9, out);
  EXPECT_TRUE(out.empty());  // remaining reset to full period
  EXPECT_EQ(unit.total(EventKind::kGlobalPowerEvents), 9u);  // totals reset too
}

TEST(PerfCounter, OverflowCountStat) {
  PerfCounterUnit unit;
  unit.configure({{EventKind::kGlobalPowerEvents, 7, true}});
  std::vector<Overflow> out;
  unit.add(EventKind::kGlobalPowerEvents, 700, out);
  EXPECT_EQ(unit.overflows(EventKind::kGlobalPowerEvents), 100u);
}

// Property sweep: for any period and any chunking of N events, the number
// of overflows is floor(N / period) and offsets are strictly increasing.
class PerfCounterPeriodTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PerfCounterPeriodTest, OverflowCountMatchesFloorDivision) {
  const std::uint64_t period = GetParam();
  PerfCounterUnit unit;
  unit.configure({{EventKind::kGlobalPowerEvents, period, true}});
  std::vector<Overflow> out;
  const std::uint64_t total = 10 * period + period / 2;
  // Add in awkward chunk sizes.
  std::uint64_t added = 0;
  std::uint64_t chunk = 1;
  while (added < total) {
    const std::uint64_t n = std::min(chunk, total - added);
    std::vector<Overflow> batch;
    unit.add(EventKind::kGlobalPowerEvents, n, batch);
    for (std::size_t i = 1; i < batch.size(); ++i)
      EXPECT_LT(batch[i - 1].offset, batch[i].offset);
    out.insert(out.end(), batch.begin(), batch.end());
    added += n;
    chunk = chunk * 3 + 1;
  }
  EXPECT_EQ(out.size(), total / period);
}

INSTANTIATE_TEST_SUITE_P(Periods, PerfCounterPeriodTest,
                         ::testing::Values(1, 2, 3, 7, 45'000, 90'000, 450'000));

}  // namespace
}  // namespace viprof::hw
