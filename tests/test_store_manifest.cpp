// Manifest round trip and damage rejection. The manifest is the store's
// single source of truth for which segments are live, so its parse is
// all-or-nothing: a valid file reproduces every field exactly, anything
// else (flipped byte, truncation, missing trailer) yields nullopt and the
// recovery path falls back to a full scan.
#include <gtest/gtest.h>

#include <string>

#include "store/manifest.hpp"

namespace viprof::store {
namespace {

Manifest make_manifest() {
  Manifest m;
  m.generation = 9;
  m.next_seq = 123;
  m.next_segment = 5;
  m.dropped_intervals = 7;
  m.dropped_rows = 70;
  m.dropped_segments = 2;

  ManifestSegment sealed;
  sealed.name = "segments/seg-000003.vseg";
  sealed.id = 3;
  sealed.sealed = true;
  sealed.intervals = 8;
  sealed.rows = 41;
  sealed.tick_lo = 10;
  sealed.tick_hi = 17;
  sealed.seq_lo = 30;
  sealed.seq_hi = 37;
  m.segments.push_back(sealed);

  ManifestSegment active;
  active.name = "segments/seg-000004.vseg";
  active.id = 4;
  active.sealed = false;
  active.seq_lo = 38;
  m.segments.push_back(active);

  m.tombstones.push_back("segments/seg-000001.vseg");
  return m;
}

TEST(StoreManifest, RoundTripPreservesEveryField) {
  const Manifest m = make_manifest();
  const auto got = Manifest::parse(m.serialize());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->generation, m.generation);
  EXPECT_EQ(got->next_seq, m.next_seq);
  EXPECT_EQ(got->next_segment, m.next_segment);
  EXPECT_EQ(got->dropped_intervals, m.dropped_intervals);
  EXPECT_EQ(got->dropped_rows, m.dropped_rows);
  EXPECT_EQ(got->dropped_segments, m.dropped_segments);
  ASSERT_EQ(got->segments.size(), 2u);
  EXPECT_EQ(got->segments[0].name, m.segments[0].name);
  EXPECT_EQ(got->segments[0].id, 3u);
  EXPECT_TRUE(got->segments[0].sealed);
  EXPECT_EQ(got->segments[0].intervals, 8u);
  EXPECT_EQ(got->segments[0].rows, 41u);
  EXPECT_EQ(got->segments[0].tick_lo, 10u);
  EXPECT_EQ(got->segments[0].tick_hi, 17u);
  EXPECT_EQ(got->segments[0].seq_lo, 30u);
  EXPECT_EQ(got->segments[0].seq_hi, 37u);
  EXPECT_FALSE(got->segments[1].sealed);
  ASSERT_EQ(got->tombstones.size(), 1u);
  EXPECT_EQ(got->tombstones[0], "segments/seg-000001.vseg");
  // Serialisation is canonical: a round-tripped manifest re-serialises to
  // the same bytes (generation swaps can be compared textually).
  EXPECT_EQ(got->serialize(), m.serialize());
}

TEST(StoreManifest, FindLocatesSegmentsByName) {
  Manifest m = make_manifest();
  ASSERT_NE(m.find("segments/seg-000004.vseg"), nullptr);
  EXPECT_EQ(m.find("segments/seg-000004.vseg")->id, 4u);
  EXPECT_EQ(m.find("segments/seg-999999.vseg"), nullptr);
}

TEST(StoreManifest, DamageIsRejectedWhole) {
  const std::string good = make_manifest().serialize();

  std::string flipped = good;
  const std::size_t pos = flipped.find("41");  // a sealed row count
  ASSERT_NE(pos, std::string::npos);
  flipped[pos] = '9';
  EXPECT_FALSE(Manifest::parse(flipped).has_value());

  std::string truncated = good.substr(0, good.size() / 2);
  EXPECT_FALSE(Manifest::parse(truncated).has_value());

  std::string no_trailer = good.substr(0, good.rfind("crc "));
  EXPECT_FALSE(Manifest::parse(no_trailer).has_value());

  EXPECT_FALSE(Manifest::parse("").has_value());
  EXPECT_FALSE(Manifest::parse("not a manifest\n").has_value());
}

}  // namespace
}  // namespace viprof::store
