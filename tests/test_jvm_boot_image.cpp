#include <gtest/gtest.h>

#include <map>
#include "jvm/boot_image.hpp"
#include "support/rng.hpp"

namespace viprof::jvm {
namespace {

TEST(BootImage, RegistersImageAndWritesMap) {
  os::ImageRegistry registry;
  os::Vfs vfs;
  BootImage boot(registry, vfs, "RVM.map");
  EXPECT_NE(boot.image(), os::kInvalidImage);
  EXPECT_EQ(registry.get(boot.image()).name(), "RVM.code.image");
  EXPECT_EQ(registry.get(boot.image()).kind(), os::ImageKind::kBootImage);
  ASSERT_TRUE(vfs.exists("RVM.map"));
  // Map lines == symbol count.
  const std::string map = *vfs.read("RVM.map");
  std::size_t lines = 0;
  for (char c : map)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, boot.symbol_count());
}

TEST(BootImage, Fig1SymbolsPresent) {
  os::ImageRegistry registry;
  os::Vfs vfs;
  BootImage boot(registry, vfs, "RVM.map");
  const std::string map = *vfs.read("RVM.map");
  for (const char* sym :
       {"com.ibm.jikesrvm.classloader.VM_NormalMethod.getOsrPrologueLength",
        "com.ibm.jikesrvm.classloader.VM_NormalMethod.hasArrayRead",
        "com.ibm.jikesrvm.opt.VM_OptCompiledMethod.createCodePatchMaps",
        "com.ibm.jikesrvm.opt.VM_OptGenericGCMapIterator.checkForMissedSpills",
        "com.ibm.jikesrvm.MainThread.run",
        "com.ibm.jikesrvm.classloader.VM_NormalMethod.finalizeOsrSpecialization",
        "com.ibm.jikesrvm.opt.VM_OptMachineCodeMap.getMethodForMCOffset",
        "java.util.Vector.trimToSize"}) {
    EXPECT_NE(map.find(sym), std::string::npos) << sym;
  }
}

TEST(BootImage, EveryServiceHasRoutines) {
  os::ImageRegistry registry;
  os::Vfs vfs;
  BootImage boot(registry, vfs, "RVM.map");
  for (std::size_t s = 0; s < kVmServiceCount; ++s) {
    EXPECT_FALSE(boot.routines(static_cast<VmService>(s)).empty());
  }
}

TEST(BootImage, RoutinesWithinImage) {
  os::ImageRegistry registry;
  os::Vfs vfs;
  BootImage boot(registry, vfs, "RVM.map");
  for (std::size_t s = 0; s < kVmServiceCount; ++s) {
    for (const BootRoutine& r : boot.routines(static_cast<VmService>(s))) {
      EXPECT_LE(r.offset + r.size, boot.size());
    }
  }
}

TEST(BootImage, SymbolsResolvableThroughImage) {
  os::ImageRegistry registry;
  os::Vfs vfs;
  BootImage boot(registry, vfs, "RVM.map");
  const os::Image& img = registry.get(boot.image());
  const BootRoutine& r = boot.routines(VmService::kGc).front();
  const auto sym = img.symbols().find(r.offset + r.size / 2);
  ASSERT_TRUE(sym.has_value());
  EXPECT_EQ(sym->name, r.name);
}

TEST(BootImage, WeightedPickRespectsWeights) {
  os::ImageRegistry registry;
  os::Vfs vfs;
  BootImage boot(registry, vfs, "RVM.map");
  support::Xoshiro256 rng(11);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20'000; ++i) counts[boot.pick(VmService::kGc, rng).name]++;
  // copyObject (weight .35) should dominate checkForMissedSpills (.20).
  EXPECT_GT(counts["com.ibm.jikesrvm.mm.mmtk.VM_CopySpace.copyObject"],
            counts["com.ibm.jikesrvm.opt.VM_OptGenericGCMapIterator.checkForMissedSpills"]);
  // Every routine of the service gets picked at least once.
  EXPECT_EQ(counts.size(), boot.routines(VmService::kGc).size());
}

TEST(BootImage, MapParsesBackIntoSymbolTable) {
  os::ImageRegistry registry;
  os::Vfs vfs;
  BootImage boot(registry, vfs, "bootdir/RVM.map");
  EXPECT_EQ(boot.map_path(), "bootdir/RVM.map");
  EXPECT_TRUE(vfs.exists("bootdir/RVM.map"));
  EXPECT_GT(boot.symbol_count(), 250u);  // named + filler population
}

}  // namespace
}  // namespace viprof::jvm
