#include <gtest/gtest.h>

#include "os/address_space.hpp"

namespace viprof::os {
namespace {

TEST(AddressSpace, MapAndFind) {
  AddressSpace space;
  space.map(0x1000, 0x1000, 7);
  const auto vma = space.find(0x1800);
  ASSERT_TRUE(vma.has_value());
  EXPECT_EQ(vma->image, 7u);
  EXPECT_EQ(vma->start, 0x1000u);
  EXPECT_EQ(vma->end, 0x2000u);
}

TEST(AddressSpace, FindOutsideReturnsNothing) {
  AddressSpace space;
  space.map(0x1000, 0x1000, 1);
  EXPECT_FALSE(space.find(0xfff).has_value());
  EXPECT_FALSE(space.find(0x2000).has_value());  // end is exclusive
  EXPECT_TRUE(space.find(0x1fff).has_value());
}

TEST(AddressSpace, MultipleMappingsSorted) {
  AddressSpace space;
  space.map(0x8000, 0x1000, 3);
  space.map(0x1000, 0x1000, 1);
  space.map(0x4000, 0x1000, 2);
  EXPECT_EQ(space.find(0x1100)->image, 1u);
  EXPECT_EQ(space.find(0x4100)->image, 2u);
  EXPECT_EQ(space.find(0x8100)->image, 3u);
  ASSERT_EQ(space.vmas().size(), 3u);
  EXPECT_LT(space.vmas()[0].start, space.vmas()[1].start);
  EXPECT_LT(space.vmas()[1].start, space.vmas()[2].start);
}

TEST(AddressSpace, ImageOffsetAccountsForFileOffset) {
  AddressSpace space;
  space.map(0x10000, 0x1000, 5, /*file_offset=*/0x400);
  const auto off = space.image_offset(0x10010);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(*off, 0x410u);
}

TEST(AddressSpace, UnmapRemovesMapping) {
  AddressSpace space;
  space.map(0x1000, 0x1000, 1);
  space.map(0x3000, 0x1000, 2);
  space.unmap(0x1000);
  EXPECT_FALSE(space.find(0x1500).has_value());
  EXPECT_TRUE(space.find(0x3500).has_value());
}

TEST(AddressSpace, RemapAfterUnmap) {
  AddressSpace space;
  space.map(0x1000, 0x1000, 1);
  space.unmap(0x1000);
  space.map(0x1000, 0x2000, 9);
  EXPECT_EQ(space.find(0x2800)->image, 9u);
}

TEST(AddressSpaceDeathTest, OverlapRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  AddressSpace space;
  space.map(0x1000, 0x1000, 1);
  EXPECT_DEATH(space.map(0x1800, 0x1000, 2), "VIPROF_CHECK");
  EXPECT_DEATH(space.map(0x0800, 0x1000, 2), "VIPROF_CHECK");
}

TEST(AddressSpace, AdjacentMappingsAllowed) {
  AddressSpace space;
  space.map(0x1000, 0x1000, 1);
  space.map(0x2000, 0x1000, 2);  // touches but does not overlap
  EXPECT_EQ(space.find(0x1fff)->image, 1u);
  EXPECT_EQ(space.find(0x2000)->image, 2u);
}

}  // namespace
}  // namespace viprof::os
