#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/rng.hpp"

namespace viprof::support {
namespace {

TEST(SplitMix64, DeterministicFromSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicFromSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, BelowRespectsBound) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256, BelowZeroReturnsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro256, BelowOneAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, RangeInclusive) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(77);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro256, ChanceMatchesProbability) {
  Xoshiro256 rng(31);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(hits / 20'000.0, 0.25, 0.02);
}

TEST(Xoshiro256, NormalMeanAndSpread) {
  Xoshiro256 rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Xoshiro256, ZipfSkewsTowardLowRanks) {
  Xoshiro256 rng(29);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50'000; ++i) ++counts[rng.zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  // Every rank reachable.
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(Xoshiro256, ZipfBoundsRespected) {
  Xoshiro256 rng(41);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.zipf(7, 0.9), 7u);
  EXPECT_EQ(rng.zipf(1, 1.0), 0u);
  EXPECT_EQ(rng.zipf(0, 1.0), 0u);
}

TEST(Xoshiro256, ZipfZeroSkewIsUniformish) {
  Xoshiro256 rng(43);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40'000; ++i) ++counts[rng.zipf(4, 0.0)];
  for (int c : counts) EXPECT_NEAR(c / 40'000.0, 0.25, 0.03);
}

}  // namespace
}  // namespace viprof::support
