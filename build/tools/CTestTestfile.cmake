# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_viprof_sim "/root/repo/build/tools/viprof_sim" "--workload" "synthetic" "--mode" "viprof" "--top" "5" "--out" "/root/repo/build/tools/smoke_session")
set_tests_properties(tool_viprof_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_viprof_report "/root/repo/build/tools/viprof_report" "--in" "/root/repo/build/tools/smoke_session" "--top" "5")
set_tests_properties(tool_viprof_report PROPERTIES  DEPENDS "tool_viprof_sim" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
