// SPEC JVM98 model: the paper reports JVM98 as a single composite entry
// (input size 100); we model it as one program containing the seven
// benchmark packages with their characteristic mixes.
#pragma once

#include "workloads/common.hpp"

namespace viprof::workloads {

Workload make_jvm98();

}  // namespace viprof::workloads
