#include "workloads/generator.hpp"

namespace viprof::workloads {

Workload make_synthetic(const GeneratorOptions& options) {
  Workload w;
  w.name = options.name;
  w.paper_base_seconds = 0.0;  // not a paper benchmark

  w.program.name = options.name;
  w.program.flavor = options.flavor;
  w.program.libraries.push_back(libc_spec());
  w.program.vm_glue_frac = options.vm_glue_frac;

  MethodPopulation pop;
  pop.package = "synthetic." + options.name;
  pop.count = options.methods;
  pop.seed = options.seed;
  pop.zipf_s = options.zipf;
  pop.alloc_lo = options.alloc_intensity * 0.5;
  pop.alloc_hi = options.alloc_intensity * 1.5;
  append_methods(w.program.methods, pop);

  if (!w.program.methods.empty() &&
      (options.native_frac > 0.0 || options.syscall_frac > 0.0)) {
    auto& hottest = w.program.methods.front();
    if (options.native_frac > 0.0) {
      hottest.outcalls.push_back(
          {jvm::OutCall::Kind::kNative, "libc-2.3.2.so", "memset", options.native_frac});
    }
    if (options.syscall_frac > 0.0) {
      hottest.outcalls.push_back(
          {jvm::OutCall::Kind::kSyscall, "", "sys_write", options.syscall_frac});
    }
  }
  finalize_ids(w.program);

  w.program.total_app_ops = options.total_app_ops;
  w.vm.seed = options.seed ^ 0x5eed;
  w.vm.heap.nursery_data_bytes = options.nursery_bytes;
  w.vm.heap.mature_age = options.mature_age;
  return w;
}

}  // namespace viprof::workloads
