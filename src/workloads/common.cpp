#include "workloads/common.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "workloads/dacapo.hpp"
#include "workloads/jvm98.hpp"
#include "workloads/pseudojbb.hpp"

namespace viprof::workloads {

jvm::NativeLibrarySpec libc_spec() {
  jvm::NativeLibrarySpec libc;
  libc.name = "libc-2.3.2.so";  // Debian sarge's glibc (paper's testbed)
  libc.symbols = {
      {"memset", 2048, 0.7, 256 * 1024, 0.02, 1.0},
      {"memcpy", 3072, 0.75, 256 * 1024, 0.02, 1.0},
      {"strcmp", 1024, 0.9, 64 * 1024, 0.10, 0.8},
      {"malloc", 4096, 1.3, 256 * 1024, 0.40, 0.6},
      {"free", 2048, 1.2, 256 * 1024, 0.40, 0.5},
      {"read", 1024, 1.1, 128 * 1024, 0.15, 0.7},
      {"write", 1024, 1.1, 128 * 1024, 0.15, 0.7},
      {"gettimeofday", 512, 0.9, 4 * 1024, 0.05, 0.3},
  };
  return libc;
}

void append_methods(std::vector<jvm::MethodInfo>& methods, const MethodPopulation& pop) {
  static const char* kKlassLeaves[] = {"Parser", "Lexer",   "Builder", "Visitor",
                                       "Table",  "Index",   "Encoder", "Decoder",
                                       "Engine", "Manager", "Node",    "Buffer"};
  static const char* kMethodNames[] = {"process", "scan",  "emit",    "resolve",
                                       "lookup",  "apply", "compute", "update",
                                       "insert",  "match", "reduce",  "walk"};
  support::Xoshiro256 rng(pop.seed);
  auto in_range = [&](std::uint64_t lo, std::uint64_t hi) { return rng.range(lo, hi); };
  auto in_range_d = [&](double lo, double hi) { return lo + rng.uniform() * (hi - lo); };

  for (std::size_t i = 0; i < pop.count; ++i) {
    jvm::MethodInfo m;
    m.klass = pop.package + "." + kKlassLeaves[i % std::size(kKlassLeaves)] +
              std::to_string(i / std::size(kKlassLeaves));
    m.name = kMethodNames[(i * 7) % std::size(kMethodNames)];
    m.descriptor = "()V";
    m.bytecode_size = in_range(pop.bytecode_lo, pop.bytecode_hi);
    m.base_cpi = in_range_d(pop.cpi_lo, pop.cpi_hi);
    // Zipf-like skew over the population order: early methods are hot.
    m.weight = 1.0 / __builtin_pow(static_cast<double>(i + 1), pop.zipf_s);
    m.ops_per_invocation = in_range(pop.ops_lo, pop.ops_hi);
    m.alloc_bytes_per_op = in_range_d(pop.alloc_lo, pop.alloc_hi);
    m.working_set = in_range(pop.ws_lo, pop.ws_hi);
    m.stride = rng.chance(0.5) ? 64 : 128;
    m.random_frac = in_range_d(pop.random_frac_lo, pop.random_frac_hi);
    m.accesses_per_op = in_range_d(0.25, 0.45);
    methods.push_back(std::move(m));
  }
}

void finalize_ids(jvm::JavaProgramSpec& program) {
  for (std::size_t i = 0; i < program.methods.size(); ++i) {
    program.methods[i].id = static_cast<jvm::MethodId>(i);
  }
}

std::uint64_t ops_for_seconds(double seconds, double cycles_per_op) {
  VIPROF_CHECK(seconds > 0.0 && cycles_per_op > 0.0);
  return static_cast<std::uint64_t>(seconds * kCyclesPerSecond / cycles_per_op);
}

std::vector<Workload> figure2_suite() {
  std::vector<Workload> suite;
  suite.push_back(make_pseudojbb());
  suite.push_back(make_jvm98());
  suite.push_back(make_dacapo("antlr"));
  suite.push_back(make_dacapo("bloat"));
  suite.push_back(make_dacapo("fop"));
  suite.push_back(make_dacapo("hsqldb"));
  suite.push_back(make_dacapo("pmd"));
  suite.push_back(make_dacapo("xalan"));
  suite.push_back(make_dacapo("ps"));
  return suite;
}

}  // namespace viprof::workloads
