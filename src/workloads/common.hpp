// Workload infrastructure: the bundle of (program spec, VM configuration)
// that models one of the paper's benchmarks, plus shared building blocks
// (standard native libraries, synthetic method generation) and the virtual
// time calibration.
//
// Time calibration: the paper's testbed is a 3.4 GHz Pentium 4; simulating
// 3.4e9 cycles per benchmark-second is intractable, so the simulator runs
// with a fixed 1:170 time dilation — one *reported* benchmark second equals
// kCyclesPerSecond virtual cycles. Sampling periods (45K/90K/450K cycles)
// are kept at the paper's values, so per-reported-second sample counts are
// 1/170th of the real system's; all overhead ratios (the Fig. 2 metric) are
// dilation-invariant because every profiling cost is expressed in the same
// virtual cycles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jvm/method.hpp"
#include "jvm/program.hpp"
#include "jvm/vm.hpp"

namespace viprof::workloads {

/// Virtual cycles per reported benchmark second (see header comment).
inline constexpr double kCyclesPerSecond = 2.0e7;

struct Workload {
  std::string name;                 // Fig. 2/3 row label
  jvm::JavaProgramSpec program;
  jvm::VmConfig vm;                 // heap sizing / thresholds tuned per benchmark
  double paper_base_seconds = 0.0;  // Fig. 3 reference value
};

/// libc with the symbols our programs call (memset prominently — Fig. 1).
jvm::NativeLibrarySpec libc_spec();

/// Parameters for synthetic method population generation.
struct MethodPopulation {
  std::string package;          // klass prefix
  std::size_t count = 200;
  std::uint64_t seed = 42;
  std::uint64_t bytecode_lo = 80, bytecode_hi = 1'200;
  std::uint64_t ops_lo = 8'000, ops_hi = 40'000;
  double zipf_s = 1.1;          // weight skew: rank-r weight ~ 1/(r+1)^s
  double cpi_lo = 0.9, cpi_hi = 1.6;
  std::uint64_t ws_lo = 8 * 1024, ws_hi = 256 * 1024;
  double random_frac_lo = 0.05, random_frac_hi = 0.35;
  double alloc_lo = 0.05, alloc_hi = 0.6;  // bytes per op
};

/// Appends `pop.count` synthetic methods to `methods` (ids assigned densely
/// continuing from the current size).
void append_methods(std::vector<jvm::MethodInfo>& methods, const MethodPopulation& pop);

/// Assigns dense ids; call after all methods are appended.
void finalize_ids(jvm::JavaProgramSpec& program);

/// total_app_ops for a target base runtime given a measured calibration
/// factor (cycles per app op for this workload, from the calibration bench).
std::uint64_t ops_for_seconds(double seconds, double cycles_per_op);

/// All Fig. 2 workloads in paper order: pseudojbb, JVM98, antlr, bloat,
/// fop, hsqldb, pmd, xalan, ps.
std::vector<Workload> figure2_suite();

}  // namespace viprof::workloads
