// Parameterised synthetic workload generator, used by tests, ablation
// benches and the examples: a single knob set producing a well-formed
// Workload whose GC/compile/sample behaviour is predictable.
#pragma once

#include <cstdint>
#include <string>

#include "workloads/common.hpp"

namespace viprof::workloads {

struct GeneratorOptions {
  std::string name = "synthetic";
  std::uint64_t seed = 7;
  std::size_t methods = 64;
  double zipf = 1.0;
  std::uint64_t total_app_ops = 20'000'000;
  double alloc_intensity = 0.4;    // bytes per op (mid of the range)
  std::uint64_t nursery_bytes = 2ull << 20;
  std::uint32_t mature_age = 3;
  double native_frac = 0.05;       // memset share on the hottest method
  double syscall_frac = 0.02;      // sys_write share on the hottest method
  double vm_glue_frac = 0.02;
  jvm::VmFlavor flavor = jvm::VmFlavor::kJikesRvm;  // hosting runtime
};

Workload make_synthetic(const GeneratorOptions& options = {});

}  // namespace viprof::workloads
