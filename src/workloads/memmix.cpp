#include "workloads/memmix.hpp"

namespace viprof::workloads {

Workload make_alloc_heavy(std::uint64_t seed) {
  GeneratorOptions options;
  options.name = "allocheavy";
  options.seed = seed;
  options.methods = 48;
  options.alloc_intensity = 1.2;          // bytes per op, well above default
  options.nursery_bytes = 1ull << 20;     // small nursery: frequent GC
  options.total_app_ops = 12'000'000;
  Workload w = make_synthetic(options);
  for (jvm::MethodInfo& m : w.program.methods) {
    m.alloc_object_bytes = 64 + 32 * (m.id % 7);  // small objects, many of them
    m.alloc_object_lifetime = 1;                  // die at their first survival check
  }
  return w;
}

Workload make_frag_heavy(std::uint64_t seed) {
  GeneratorOptions options;
  options.name = "fragheavy";
  options.seed = seed;
  options.methods = 48;
  options.alloc_intensity = 0.8;
  options.nursery_bytes = 2ull << 20;
  options.total_app_ops = 12'000'000;
  Workload w = make_synthetic(options);
  // Interleave tiny and huge objects with staggered lifetimes: each GC
  // copies a different subset forward, so surviving objects change address
  // repeatedly and neighbouring survivors come from different sites.
  static const std::uint64_t kSizes[] = {64, 4096, 512, 32768, 128, 8192};
  for (jvm::MethodInfo& m : w.program.methods) {
    m.alloc_object_bytes = kSizes[m.id % std::size(kSizes)];
    m.alloc_object_lifetime = 1 + m.id % 4;
  }
  return w;
}

Workload make_leak_shaped(std::uint64_t seed) {
  GeneratorOptions options;
  options.name = "leakshaped";
  options.seed = seed;
  options.methods = 48;
  options.alloc_intensity = 0.5;
  options.nursery_bytes = 2ull << 20;
  options.total_app_ops = 12'000'000;
  Workload w = make_synthetic(options);
  for (jvm::MethodInfo& m : w.program.methods) {
    m.alloc_object_bytes = 128;
    m.alloc_object_lifetime = 1;
  }
  // Two moderately-warm methods leak: their long-lived fraction survives
  // every collection the run will ever perform, yet the methods' working
  // sets are configured cold so the leaked bytes draw almost no data
  // misses — peak allocated-but-cold inefficiency.
  for (std::size_t leak : {std::size_t{3}, std::size_t{7}}) {
    if (leak >= w.program.methods.size()) continue;
    jvm::MethodInfo& m = w.program.methods[leak];
    m.alloc_object_bytes = 1024;
    m.alloc_object_lifetime = 1'000'000;  // never dies within a run
    m.working_set = 4 * 1024;             // tight, cache-resident: few misses
    m.random_frac = 0.02;
  }
  return w;
}

}  // namespace viprof::workloads
