// SPEC pseudoJBB model: JBB2000 with a fixed transaction count (3 warehouses
// x 100K transactions in the paper) so execution time is directly
// measurable. Long-running server workload: a small hot transaction core,
// steady allocation, futex/syscall traffic.
#pragma once

#include "workloads/common.hpp"

namespace viprof::workloads {

struct PseudoJbbOptions {
  std::uint32_t warehouses = 3;
  std::uint64_t transactions = 100'000;
};

Workload make_pseudojbb(const PseudoJbbOptions& options = {});

}  // namespace viprof::workloads
