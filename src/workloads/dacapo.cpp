#include "workloads/dacapo.hpp"

#include "support/check.hpp"

namespace viprof::workloads {

namespace {

struct DacapoParams {
  const char* name;
  double base_seconds;     // Fig. 3
  double cycles_per_op;    // calibration (see bench/calibrate)
  std::size_t methods;
  double zipf;             // invocation skew; lower = flatter = more cold code
  std::uint64_t ops_lo, ops_hi;
  double alloc_lo, alloc_hi;
  std::uint64_t nursery_kb;
  std::uint32_t mature_age;
  double glue;
};

// ps has no Fig. 3 row (the table omits it); 12 s is assumed and recorded
// as an assumption in EXPERIMENTS.md.
constexpr DacapoParams kParams[] = {
    //  name     base    cyc/op meth  zipf  ops_lo  ops_hi  all_lo all_hi nursKB age glue
    {"antlr",    8.7,    15.61, 2400, 0.45, 1'500,  4'500,  0.40,  0.85,  256,   12, 0.03},
    {"bloat",    28.5,   5.53,  1100, 0.95, 10'000, 36'000, 0.20,  0.50,  6'144,  3, 0.02},
    {"fop",      3.2,    8.16,  520,  0.80, 8'000,  24'000, 0.15,  0.45,  4'096,  4, 0.02},
    {"hsqldb",   43.0,   3.11,  420,  1.20, 14'000, 44'000, 0.45,  0.90,  12'288, 3, 0.02},
    {"pmd",      16.3,   6.52,  1300, 0.85, 8'000,  28'000, 0.25,  0.60,  4'096,  4, 0.02},
    {"xalan",    22.2,   5.00,  760,  1.00, 10'000, 34'000, 0.30,  0.60,  6'144,  3, 0.02},
    {"ps",       12.0,   4.05,  340,  1.30, 10'000, 30'000, 0.15,  0.40,  6'144,  3, 0.02},
};

const DacapoParams& params_for(const std::string& name) {
  for (const auto& p : kParams)
    if (name == p.name) return p;
  VIPROF_CHECK(false && "unknown dacapo benchmark");
  __builtin_unreachable();
}

/// The ps (javapostscript) front: explicit hot methods matching Fig. 1's
/// symbols, with the memset/libfb/libxul native behaviour the figure shows.
void add_ps_hot_methods(jvm::JavaProgramSpec& program) {
  jvm::MethodInfo parse;
  parse.klass = "edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner";
  parse.name = "parseLine";
  parse.bytecode_size = 900;
  parse.base_cpi = 1.05;
  parse.weight = 14.0;  // dominant hot method
  parse.ops_per_invocation = 26'000;
  parse.alloc_bytes_per_op = 0.22;
  parse.working_set = 96 * 1024;
  parse.random_frac = 0.15;
  parse.accesses_per_op = 0.45;
  parse.outcalls = {
      {jvm::OutCall::Kind::kNative, "libc-2.3.2.so", "memset", 0.10},
      {jvm::OutCall::Kind::kSyscall, "", "sys_read", 0.02},
  };
  program.methods.push_back(std::move(parse));

  jvm::MethodInfo render;
  render.klass = "edu.unm.cs.oal.dacapo.javapostscript.red.render.Canvas";
  render.name = "fill";
  render.bytecode_size = 600;
  render.base_cpi = 1.0;
  render.weight = 6.0;
  render.ops_per_invocation = 20'000;
  render.alloc_bytes_per_op = 0.10;
  render.working_set = 512 * 1024;
  render.random_frac = 0.05;
  render.accesses_per_op = 0.55;
  render.outcalls = {
      {jvm::OutCall::Kind::kNative, "libfb.so", "fbCopyAreammx", 0.08},
      {jvm::OutCall::Kind::kNative, "libfb.so", "fbCompositeSolidMask_nx8x8888mmx", 0.05},
      {jvm::OutCall::Kind::kNative, "libxul.so.0d", "render_glyphs", 0.04},
      {jvm::OutCall::Kind::kNative, "libc-2.3.2.so", "memset", 0.04},
  };
  program.methods.push_back(std::move(render));

  jvm::NativeLibrarySpec libfb;
  libfb.name = "libfb.so";
  libfb.symbols = {
      {"fbCopyAreammx", 4096, 0.65, 2 * 1024 * 1024, 0.02, 1.1},
      {"fbCompositeSolidMask_nx8x8888mmx", 6144, 0.7, 2 * 1024 * 1024, 0.02, 1.1},
  };
  program.libraries.push_back(std::move(libfb));

  jvm::NativeLibrarySpec libxul;
  libxul.name = "libxul.so.0d";
  libxul.stripped = true;  // "(no symbols)" in Fig. 1
  libxul.symbols = {
      {"render_glyphs", 8192, 1.0, 1024 * 1024, 0.25, 0.7},
  };
  program.libraries.push_back(std::move(libxul));
}

}  // namespace

Workload make_dacapo(const std::string& name, DacapoSize size) {
  const DacapoParams& p = params_for(name);

  // The real harness's input sizes roughly quarter/halve the large run.
  const double size_scale = size == DacapoSize::kLarge    ? 1.0
                            : size == DacapoSize::kDefault ? 0.45
                                                           : 0.18;

  Workload w;
  w.name = name;
  w.paper_base_seconds = size == DacapoSize::kLarge ? p.base_seconds : 0.0;

  w.program.name = "dacapo." + name;
  w.program.libraries.push_back(libc_spec());
  w.program.vm_glue_frac = p.glue;

  if (name == "ps") add_ps_hot_methods(w.program);

  MethodPopulation pop;
  pop.package = "dacapo." + name;
  pop.count = p.methods;
  pop.seed = 0xdaca90 + static_cast<std::uint64_t>(p.base_seconds * 10);
  pop.zipf_s = p.zipf;
  pop.ops_lo = p.ops_lo;
  pop.ops_hi = p.ops_hi;
  pop.alloc_lo = p.alloc_lo;
  pop.alloc_hi = p.alloc_hi;
  append_methods(w.program.methods, pop);
  finalize_ids(w.program);

  w.program.total_app_ops = static_cast<std::uint64_t>(
      static_cast<double>(ops_for_seconds(p.base_seconds, p.cycles_per_op)) *
      size_scale);

  w.vm.seed = pop.seed ^ 0x5eed;
  w.vm.heap.nursery_data_bytes = p.nursery_kb * 1024ull;
  w.vm.heap.mature_age = p.mature_age;
  return w;
}

}  // namespace viprof::workloads
