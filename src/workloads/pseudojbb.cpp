#include "workloads/pseudojbb.hpp"

namespace viprof::workloads {

namespace {

// The five TPC-C-style transaction types JBB executes, with their published
// mix. Each becomes a hot method; the per-warehouse working set is the
// warehouse's object tree.
struct Txn {
  const char* name;
  double mix;
  std::uint64_t ops;
  double alloc;
};

constexpr Txn kTxns[] = {
    {"processNewOrder", 0.433, 26'000, 0.45},
    {"processPayment", 0.433, 18'000, 0.30},
    {"processOrderStatus", 0.043, 12'000, 0.15},
    {"processDelivery", 0.043, 22'000, 0.35},
    {"processStockLevel", 0.043, 20'000, 0.20},
};

}  // namespace

Workload make_pseudojbb(const PseudoJbbOptions& options) {
  Workload w;
  w.name = "pseudojbb";
  w.paper_base_seconds = 31.0;  // Fig. 3

  w.program.name = "pseudojbb";
  w.program.libraries.push_back(libc_spec());
  w.program.vm_glue_frac = 0.025;  // JBB's own driver loop

  for (const Txn& t : kTxns) {
    jvm::MethodInfo m;
    m.klass = "spec.jbb.TransactionManager";
    m.name = t.name;
    m.bytecode_size = 1'400;
    m.base_cpi = 1.15;
    m.weight = t.mix * 100.0;
    m.ops_per_invocation = t.ops;
    m.alloc_bytes_per_op = t.alloc;
    // Warehouse tree: working set grows with warehouse count.
    m.working_set = static_cast<std::uint64_t>(options.warehouses) * 384 * 1024;
    m.random_frac = 0.35;  // pointer chasing through the object tree
    m.accesses_per_op = 0.5;
    m.outcalls = {
        {jvm::OutCall::Kind::kSyscall, "", "sys_futex", 0.015},
        {jvm::OutCall::Kind::kSyscall, "", "sys_gettimeofday", 0.01},
        {jvm::OutCall::Kind::kNative, "libc-2.3.2.so", "memcpy", 0.03},
    };
    w.program.methods.push_back(std::move(m));
  }

  // Supporting cast: districts, items, B-trees, reporting.
  MethodPopulation pop;
  pop.package = "spec.jbb.infra";
  pop.count = 240;
  pop.seed = 0x1bb;
  pop.zipf_s = 1.3;
  pop.ops_lo = 6'000;
  pop.ops_hi = 20'000;
  pop.alloc_lo = 0.10;
  pop.alloc_hi = 0.45;
  pop.ws_hi = 1024 * 1024;
  append_methods(w.program.methods, pop);
  finalize_ids(w.program);

  // Scale run length with the configured transaction volume (the paper's
  // 3 warehouses x 100K transactions is the 31 s Fig. 3 configuration).
  const double scale = static_cast<double>(options.transactions) / 100'000.0 *
                       static_cast<double>(options.warehouses) / 3.0;
  w.program.total_app_ops = ops_for_seconds(31.0 * scale, 3.02);

  w.vm.seed = 0x1bb ^ 0x5eed;
  w.vm.heap.nursery_data_bytes = 10ull << 20;
  w.vm.heap.mature_age = 3;
  return w;
}

}  // namespace viprof::workloads
