#include "workloads/jvm98.hpp"

namespace viprof::workloads {

namespace {

struct SubBench {
  const char* package;
  std::size_t methods;
  double zipf;
  double alloc_lo, alloc_hi;
  std::uint64_t ws_hi;
};

// The seven JVM98 programs, roughly in their published character:
// compress/mpegaudio are tight loops on small hot sets; db/jack allocate
// heavily; javac has the widest code base.
constexpr SubBench kSubBenches[] = {
    {"spec.benchmarks._201_compress", 40, 1.6, 0.02, 0.10, 64 * 1024},
    {"spec.benchmarks._202_jess", 110, 1.1, 0.25, 0.55, 128 * 1024},
    {"spec.benchmarks._209_db", 60, 1.4, 0.40, 0.80, 1024 * 1024},
    {"spec.benchmarks._213_javac", 260, 0.8, 0.25, 0.55, 256 * 1024},
    {"spec.benchmarks._222_mpegaudio", 70, 1.5, 0.03, 0.12, 96 * 1024},
    {"spec.benchmarks._227_mtrt", 90, 1.2, 0.20, 0.45, 512 * 1024},
    {"spec.benchmarks._228_jack", 130, 1.0, 0.30, 0.60, 128 * 1024},
};

}  // namespace

Workload make_jvm98() {
  Workload w;
  w.name = "JVM98";
  w.paper_base_seconds = 5.74;  // Fig. 3: JVM98 (average)

  w.program.name = "specjvm98";
  w.program.libraries.push_back(libc_spec());
  w.program.vm_glue_frac = 0.02;
  // The harness runs the programs back to back: phase behaviour.
  w.program.phase_ops = 12'000'000;

  std::uint64_t seed = 0x98;
  for (const SubBench& sb : kSubBenches) {
    MethodPopulation pop;
    pop.package = sb.package;
    pop.count = sb.methods;
    pop.seed = seed++;
    pop.zipf_s = sb.zipf;
    pop.ops_lo = 6'000;
    pop.ops_hi = 26'000;
    pop.alloc_lo = sb.alloc_lo;
    pop.alloc_hi = sb.alloc_hi;
    pop.ws_hi = sb.ws_hi;
    append_methods(w.program.methods, pop);
  }
  finalize_ids(w.program);

  w.program.total_app_ops = ops_for_seconds(5.74, 8.17);

  w.vm.seed = 0x98 ^ 0x5eed;
  w.vm.heap.nursery_data_bytes = 4ull << 20;
  w.vm.heap.mature_age = 4;
  return w;
}

}  // namespace viprof::workloads
