// Memory-behaviour workload mixes for the object-centric profiler
// (DESIGN.md §15): three synthetic programs whose allocation shapes stress
// distinct parts of the memprof pipeline.
//
//   alloc-heavy — high allocation rate of small short-lived objects on a
//     small nursery: many GCs, large per-epoch object maps, high map churn.
//   frag-heavy  — wildly mixed object sizes with staggered lifetimes:
//     survivors of different sizes interleave through the copying
//     collector, so hot objects move repeatedly across epochs (the
//     backward-walk resolution path).
//   leak-shaped — a couple of moderately-warm sites allocate objects that
//     effectively never die while the truly hot code touches other data:
//     live bytes accumulate with few data misses, the exact shape the
//     allocated-but-cold memory-inefficiency ranking exists to surface.
#pragma once

#include <cstdint>

#include "workloads/generator.hpp"

namespace viprof::workloads {

Workload make_alloc_heavy(std::uint64_t seed = 11);
Workload make_frag_heavy(std::uint64_t seed = 13);
Workload make_leak_shaped(std::uint64_t seed = 17);

}  // namespace viprof::workloads
