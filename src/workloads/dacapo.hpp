// DaCapo benchmark models (paper uses the `large` inputs of antlr, bloat,
// fop, hsqldb, pmd, xalan, ps).
//
// Each model is calibrated on two axes:
//   * base runtime — Fig. 3 seconds at the workload calibration constant;
//   * profiling-relevant character — number of methods that get compiled,
//     allocation rate (GC/epoch frequency), promotion age (how long code
//     keeps moving), native/kernel fractions.
// antlr is the paper's worst case for VIProf: short run, thousands of cold
// methods compiled throughout, frequent collections — so code maps are
// written often and amortise poorly (>10% slowdown at the 90K rate).
#pragma once

#include <string>

#include "workloads/common.hpp"

namespace viprof::workloads {

/// DaCapo input sizes. The paper evaluates `large`; the smaller inputs
/// scale the run length (and therefore GC/compile amortisation) the way
/// the real harness's -s flag does.
enum class DacapoSize { kSmall, kDefault, kLarge };

/// One of: antlr, bloat, fop, hsqldb, pmd, xalan, ps.
Workload make_dacapo(const std::string& name, DacapoSize size = DacapoSize::kLarge);

}  // namespace viprof::workloads
