#include "store/segment.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/format.hpp"

namespace viprof::store {

namespace {

std::optional<core::SampleDomain> domain_from(const char* name) {
  using D = core::SampleDomain;
  for (D d : {D::kHypervisor, D::kKernel, D::kImage, D::kBoot, D::kJit, D::kAnon,
              D::kObject, D::kUnknown}) {
    if (std::strcmp(name, core::to_string(d)) == 0) return d;
  }
  return std::nullopt;
}

}  // namespace

SegmentWriter::SegmentWriter(std::uint64_t segment_id) : segment_id_(segment_id) {}

std::string SegmentWriter::frame(const std::string& body) {
  char crc[16];
  std::snprintf(crc, sizeof crc, " %08x\n", support::fnv1a(body));
  return body + crc;
}

std::string SegmentWriter::header() {
  return frame(std::to_string(next_seq_++) + " H viprof-segment v1 " +
               std::to_string(segment_id_));
}

std::uint64_t SegmentWriter::intern(const std::string& s, std::string& out) {
  const auto [it, inserted] = dict_.try_emplace(s, next_dict_id_);
  if (inserted) {
    ++next_dict_id_;
    out += frame(std::to_string(next_seq_++) + " D " + std::to_string(it->second) +
                 "\t" + s);
  }
  return it->second;
}

std::string SegmentWriter::encode_interval(const IntervalProfile& iv) {
  std::string out;
  // Dictionary entries must precede the rows that reference them, so a
  // truncated file never leaves a committed row pointing at nothing.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ids;
  ids.reserve(iv.profile.row_count());
  for (const core::ProfileRow& row : iv.profile.rows())
    ids.emplace_back(intern(row.image, out), intern(row.symbol, out));

  out += frame(std::to_string(next_seq_++) + " I " + std::to_string(iv.tick_lo) +
               " " + std::to_string(iv.tick_hi) + " " + std::to_string(iv.epoch_lo) +
               " " + std::to_string(iv.epoch_hi) + " " + std::to_string(iv.pid) +
               " " + std::to_string(iv.first_seq) + " " +
               std::to_string(iv.profile.row_count()) + "\t" + iv.session);

  std::size_t i = 0;
  for (const core::ProfileRow& row : iv.profile.rows()) {
    std::string body = std::to_string(next_seq_++) + " R " +
                       core::to_string(row.domain);
    for (std::size_t e = 0; e < hw::kEventKindCount; ++e)
      body += " " + std::to_string(row.counts[e]);
    body += " " + std::to_string(ids[i].first) + " " + std::to_string(ids[i].second);
    out += frame(body);
    ++i;
  }
  return out;
}

std::string SegmentWriter::encode_seal(std::uint64_t interval_count) {
  return frame(std::to_string(next_seq_++) + " S " + std::to_string(interval_count));
}

namespace {

/// Decode state for the interval currently being assembled.
struct PendingInterval {
  bool open = false;
  bool broken = false;       // unresolvable dictionary id
  bool orphan = false;       // rows with no surviving interval record
  std::uint64_t declared_rows = 0;
  std::uint64_t rows_seen = 0;
  IntervalProfile iv;
};

void finalize(PendingInterval& p, SegmentSalvage& out) {
  if (!p.open) return;
  if (p.orphan) {
    // The interval record itself was lost; its observed rows are all we can
    // count (the segment- or manifest-level totals give the exact figure).
    ++out.intervals_dropped;
    out.rows_dropped += p.rows_seen;
  } else if (!p.broken && p.rows_seen == p.declared_rows) {
    ++out.intervals_salvaged;
    out.rows_salvaged += p.declared_rows;
    out.intervals.push_back(std::move(p.iv));
  } else {
    ++out.intervals_dropped;
    out.rows_dropped += p.declared_rows;
  }
  p = PendingInterval{};
}

}  // namespace

SegmentSalvage read_segment(const std::string& contents) {
  SegmentSalvage out;
  std::unordered_map<std::uint64_t, std::string> dict;
  PendingInterval pending;
  std::uint64_t last_seq = 0;
  bool any_seq = false;

  std::size_t pos = 0;
  while (pos < contents.size()) {
    std::size_t nl = contents.find('\n', pos);
    const bool unterminated = nl == std::string::npos;
    if (unterminated) nl = contents.size();
    const std::string line = contents.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;

    // Verify the frame: `body SP crc8hex` (an unterminated tail is torn).
    const std::size_t sp = line.rfind(' ');
    unsigned crc_read = 0;
    if (unterminated || sp == std::string::npos || line.size() - sp - 1 != 8 ||
        std::sscanf(line.c_str() + sp + 1, "%8x", &crc_read) != 1 ||
        support::fnv1a(line.data(), sp) != crc_read) {
      ++out.lines_discarded;
      continue;
    }
    const std::string body = line.substr(0, sp);

    char* cur = nullptr;
    const std::uint64_t seq = std::strtoull(body.c_str(), &cur, 10);
    if (cur == body.c_str() || *cur != ' ') {
      ++out.lines_discarded;
      continue;
    }
    if (any_seq) {
      if (seq <= last_seq) {
        ++out.duplicate_lines;
        continue;
      }
      out.gap_lines += seq - last_seq - 1;
    }
    last_seq = seq;
    any_seq = true;
    ++out.lines_valid;

    const char type = cur[1];
    if (type == '\0') {
      ++out.lines_discarded;
      --out.lines_valid;
      continue;
    }
    const char* rest = cur + 2;  // " <payload>" or end of body
    if (*rest == ' ') ++rest;

    if (type == 'H') {
      unsigned long long id = 0;
      if (std::sscanf(rest, "viprof-segment v1 %llu", &id) == 1) {
        out.header_ok = true;
        out.segment_id = id;
      } else {
        ++out.lines_discarded;
        --out.lines_valid;
      }
    } else if (type == 'D') {
      char* end = nullptr;
      const std::uint64_t id = std::strtoull(rest, &end, 10);
      if (end == rest || *end != '\t') {
        ++out.lines_discarded;
        --out.lines_valid;
        continue;
      }
      dict[id] = std::string(end + 1);
    } else if (type == 'I') {
      finalize(pending, out);
      unsigned long long tlo, thi, elo, ehi, pid, fseq, rows;
      const char* tab = std::strchr(rest, '\t');
      if (tab == nullptr ||
          std::sscanf(rest, "%llu %llu %llu %llu %llu %llu %llu", &tlo, &thi, &elo,
                      &ehi, &pid, &fseq, &rows) != 7) {
        ++out.lines_discarded;
        --out.lines_valid;
        continue;
      }
      pending.open = true;
      pending.declared_rows = rows;
      pending.iv.session = std::string(tab + 1);
      pending.iv.tick_lo = tlo;
      pending.iv.tick_hi = thi;
      pending.iv.epoch_lo = elo;
      pending.iv.epoch_hi = ehi;
      pending.iv.pid = pid;
      pending.iv.first_seq = fseq;
    } else if (type == 'R') {
      if (!pending.open) {
        // Interval record lost but its rows survived: orphans, counted.
        pending.open = true;
        pending.orphan = true;
      }
      char domain_buf[16] = {};
      unsigned long long c[hw::kEventKindCount] = {};
      unsigned long long img = 0, sym = 0;
      // One count column per event kind, then the two dictionary ids —
      // parsed with a cursor so the column count tracks kEventKindCount.
      bool row_ok = false;
      int consumed = 0;
      if (std::sscanf(rest, "%15s%n", domain_buf, &consumed) == 1) {
        const char* p = rest + consumed;
        row_ok = true;
        for (std::size_t e = 0; e < hw::kEventKindCount && row_ok; ++e) {
          char* endp = nullptr;
          c[e] = std::strtoull(p, &endp, 10);
          if (endp == p) row_ok = false;
          p = endp;
        }
        if (row_ok &&
            std::sscanf(p, "%llu %llu%n", &img, &sym, &consumed) != 2) {
          row_ok = false;
        }
      }
      if (!row_ok) {
        ++out.lines_discarded;
        --out.lines_valid;
        continue;
      }
      ++pending.rows_seen;
      if (pending.orphan || pending.broken) continue;
      const auto domain = domain_from(domain_buf);
      const auto img_it = dict.find(img);
      const auto sym_it = dict.find(sym);
      if (!domain || img_it == dict.end() || sym_it == dict.end()) {
        pending.broken = true;
        continue;
      }
      core::Resolution res;
      res.image = img_it->second;
      res.symbol = sym_it->second;
      res.domain = *domain;
      for (std::size_t e = 0; e < hw::kEventKindCount; ++e) {
        if (c[e] != 0)
          pending.iv.profile.add(static_cast<hw::EventKind>(e), res, c[e]);
      }
    } else if (type == 'S') {
      finalize(pending, out);
      unsigned long long n = 0;
      if (std::sscanf(rest, "%llu", &n) == 1) {
        out.sealed = true;
        out.seal_declared = n;
      } else {
        ++out.lines_discarded;
        --out.lines_valid;
      }
    } else {
      ++out.lines_discarded;
      --out.lines_valid;
    }
  }
  finalize(pending, out);
  return out;
}

}  // namespace viprof::store
