// Segment files: the store's on-disk unit, framed for salvage.
//
// A segment is an append-only text file of records using the §7 framing
// discipline (sample_log.hpp): every line is `body SP crc8hex`, lines carry
// strictly increasing sequence numbers, and a reader verifies each line
// independently — a torn tail or flipped bit costs exactly the damaged
// lines, never the file. Record types:
//
//   <seq> H viprof-segment v1 <segment_id>          file header (seq 0)
//   <seq> D <id>\t<string>                          dictionary entry
//   <seq> I <tlo> <thi> <elo> <ehi> <pid> <fseq> <rows>\t<session>
//   <seq> R <domain> <c0>..<c4> <img_id> <sym_id>   one profile row
//   <seq> S <interval_count>                        seal record
//
// Image and symbol names are interned once per segment (D records); rows
// reference them by id, so a method signature is stored once per segment,
// not once per row. An interval *commits* only when every one of its
// declared rows verified and every referenced dictionary id resolved;
// otherwise the whole interval is dropped and counted — loss is always
// accounted, never silent.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/interval.hpp"

namespace viprof::store {

/// Builds the framed bytes of one segment incrementally. The caller appends
/// the returned chunks to the segment file in order; the writer owns the
/// line sequence numbers and the string-intern dictionary.
class SegmentWriter {
 public:
  explicit SegmentWriter(std::uint64_t segment_id);

  /// The header line; append this first (returned once, by value).
  std::string header();

  /// Frames `iv`: new dictionary entries, the interval record, one row
  /// record per profile row. Returns the bytes to append.
  std::string encode_interval(const IntervalProfile& iv);

  /// The seal record; a sealed segment is immutable from then on.
  std::string encode_seal(std::uint64_t interval_count);

 private:
  std::string frame(const std::string& body);
  std::uint64_t intern(const std::string& s, std::string& out);

  std::uint64_t segment_id_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_dict_id_ = 0;
  std::unordered_map<std::string, std::uint64_t> dict_;
};

/// Everything a read of one segment file yields: the committed intervals
/// plus an exact account of what did not survive.
struct SegmentSalvage {
  bool header_ok = false;
  bool sealed = false;
  std::uint64_t segment_id = 0;
  std::uint64_t seal_declared = 0;     // interval count in the S record

  std::uint64_t lines_valid = 0;
  std::uint64_t lines_discarded = 0;   // failed checksum / unparseable
  std::uint64_t duplicate_lines = 0;   // repeated seq, discarded
  std::uint64_t gap_lines = 0;         // inferred missing from seq gaps

  std::uint64_t intervals_salvaged = 0;
  std::uint64_t intervals_dropped = 0;  // seen but incomplete/unresolvable
  std::uint64_t rows_salvaged = 0;
  std::uint64_t rows_dropped = 0;       // declared rows of dropped intervals

  std::vector<IntervalProfile> intervals;

  /// No damage of any kind (a clean unsealed segment is still clean).
  bool clean() const {
    return header_ok && lines_discarded == 0 && duplicate_lines == 0 &&
           gap_lines == 0 && intervals_dropped == 0 &&
           (!sealed || seal_declared == intervals_salvaged);
  }
};

/// Verifies and decodes a segment file, skipping and counting damage.
SegmentSalvage read_segment(const std::string& contents);

}  // namespace viprof::store
