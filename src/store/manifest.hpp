// The store manifest: the single source of truth for what is live.
//
// A crc-guarded text file listing every live segment (with its authoritative
// interval/row counts once sealed), the allocation cursors, tombstones for
// files awaiting deletion, and the cumulative retention-drop bins. It is
// only ever replaced whole, via temp-file + Vfs::rename, so a reader sees
// either the old generation or the new one — never a blend. Recovery
// (DESIGN.md §11) replays it: segments it lists are loaded and salvaged,
// tombstoned files are deleted, anything else in the segments directory is
// an orphan from an interrupted compaction and is discarded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace viprof::store {

struct ManifestSegment {
  std::string name;           // path relative to the store root
  std::uint64_t id = 0;
  bool sealed = false;
  /// Authoritative once sealed; 0 for the active segment (its true counts
  /// are only knowable from the file itself).
  std::uint64_t intervals = 0;
  std::uint64_t rows = 0;
  std::uint64_t tick_lo = 0, tick_hi = 0;
  std::uint64_t seq_lo = 0, seq_hi = 0;  // first_seq span (ingest order)
};

struct Manifest {
  std::uint64_t generation = 0;
  std::uint64_t next_seq = 1;      // next interval first_seq to assign
  std::uint64_t next_segment = 0;  // next segment id to allocate
  std::vector<ManifestSegment> segments;
  std::vector<std::string> tombstones;
  /// Cumulative retention-budget drops — aged-out data is counted forever,
  /// never silently forgotten.
  std::uint64_t dropped_intervals = 0;
  std::uint64_t dropped_rows = 0;
  std::uint64_t dropped_segments = 0;

  std::string serialize() const;
  /// nullopt on any damage: a manifest is all-or-nothing (the crc trailer
  /// guards the whole file), unlike segments which salvage line by line.
  static std::optional<Manifest> parse(const std::string& text);

  const ManifestSegment* find(const std::string& name) const;
};

/// One shard's entry in the fleet manifest. `root` is its partition root
/// (every shard's ProfileStore lives under its own directory, see
/// partition_root()); `sessions`/`records` are the counts the router has
/// flushed into that partition.
struct FleetShard {
  std::string name;
  std::string root;
  bool alive = true;
  std::uint64_t sessions = 0;
  std::uint64_t records = 0;
};

/// Fleet-wide degradation ledger. The exact-accounting invariant
/// (DESIGN.md §12) is:
///
///   acked_records == stored_records + lost_wire + lost_queue + lost_dead
///
/// where acked counts every record sent on a session's *terminal* attempt
/// (the attempt that either completed or had nowhere left to fail over to),
/// stored is what reached the partitions, lost_wire is frames the transport
/// dropped or tore, lost_queue is shard-side bounded-queue sheds, and
/// lost_dead is records sent on a terminal attempt whose shard died with no
/// live ring successor. failover_* counts re-sent work from *aborted*
/// attempts — informational, deliberately outside the invariant, because
/// those records were re-streamed and are accounted under their terminal
/// attempt. refused_sessions were never attempted at all (no live shard);
/// nothing of theirs enters acked.
struct FleetLedger {
  std::uint64_t acked_sessions = 0;
  std::uint64_t acked_records = 0;
  std::uint64_t stored_records = 0;
  std::uint64_t lost_wire = 0;
  std::uint64_t lost_queue = 0;
  std::uint64_t lost_dead_records = 0;
  std::uint64_t lost_dead_sessions = 0;
  std::uint64_t failover_sessions = 0;
  std::uint64_t failover_records = 0;
  std::uint64_t refused_sessions = 0;
  std::uint64_t retried_sends = 0;
  std::uint64_t retried_giveups = 0;
  std::uint64_t circuit_opens = 0;
  std::uint64_t rebalances = 0;

  /// Records the invariant can place: everything acked must be stored or
  /// in a counted loss bin.
  std::uint64_t accounted() const {
    return stored_records + lost_wire + lost_queue + lost_dead_records;
  }
  bool balanced() const { return acked_records == accounted(); }
};

/// The fleet manifest: the router's crc-guarded record of which shard
/// partitions exist and the cumulative degradation ledger. Same discipline
/// as the store Manifest — replaced whole via temp-file + rename, parsed
/// all-or-nothing — so `viprof_fsck --fleet` either trusts the whole file
/// or declares the fleet unrecoverable.
struct FleetManifest {
  std::uint64_t generation = 0;
  std::vector<FleetShard> shards;
  FleetLedger ledger;

  std::string serialize() const;
  static std::optional<FleetManifest> parse(const std::string& text);

  const FleetShard* find(const std::string& name) const;
};

/// Canonical partition root for a shard: every shard's ProfileStore lives
/// under `<shard>/store` inside the fleet Vfs, next to wherever the shard
/// would keep scratch state.
inline std::string partition_root(const std::string& shard_name) {
  return shard_name + "/store";
}

/// Where the fleet manifest lives inside the fleet Vfs.
inline constexpr const char* kFleetManifestPath = "MANIFEST";

}  // namespace viprof::store
