// The store manifest: the single source of truth for what is live.
//
// A crc-guarded text file listing every live segment (with its authoritative
// interval/row counts once sealed), the allocation cursors, tombstones for
// files awaiting deletion, and the cumulative retention-drop bins. It is
// only ever replaced whole, via temp-file + Vfs::rename, so a reader sees
// either the old generation or the new one — never a blend. Recovery
// (DESIGN.md §11) replays it: segments it lists are loaded and salvaged,
// tombstoned files are deleted, anything else in the segments directory is
// an orphan from an interrupted compaction and is discarded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace viprof::store {

struct ManifestSegment {
  std::string name;           // path relative to the store root
  std::uint64_t id = 0;
  bool sealed = false;
  /// Authoritative once sealed; 0 for the active segment (its true counts
  /// are only knowable from the file itself).
  std::uint64_t intervals = 0;
  std::uint64_t rows = 0;
  std::uint64_t tick_lo = 0, tick_hi = 0;
  std::uint64_t seq_lo = 0, seq_hi = 0;  // first_seq span (ingest order)
};

struct Manifest {
  std::uint64_t generation = 0;
  std::uint64_t next_seq = 1;      // next interval first_seq to assign
  std::uint64_t next_segment = 0;  // next segment id to allocate
  std::vector<ManifestSegment> segments;
  std::vector<std::string> tombstones;
  /// Cumulative retention-budget drops — aged-out data is counted forever,
  /// never silently forgotten.
  std::uint64_t dropped_intervals = 0;
  std::uint64_t dropped_rows = 0;
  std::uint64_t dropped_segments = 0;

  std::string serialize() const;
  /// nullopt on any damage: a manifest is all-or-nothing (the crc trailer
  /// guards the whole file), unlike segments which salvage line by line.
  static std::optional<Manifest> parse(const std::string& text);

  const ManifestSegment* find(const std::string& name) const;
};

}  // namespace viprof::store
