#include "store/profile_store.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "support/fault.hpp"
#include "support/format.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace viprof::store {

namespace {

std::string segment_rel_name(std::uint64_t id) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "segments/seg-%06llu.vseg",
                static_cast<unsigned long long>(id));
  return buf;
}

bool in_window(const IntervalProfile& iv, const WindowSpec& w) {
  if (iv.tick_lo < w.tick_lo || iv.tick_hi > w.tick_hi) return false;
  return w.session.empty() || iv.session == w.session;
}

}  // namespace

ProfileStore::ProfileStore(os::Vfs& vfs, StoreConfig config)
    : vfs_(vfs), config_(std::move(config)) {
  if (config_.seal_after_intervals == 0) config_.seal_after_intervals = 1;
  if (config_.compact_fanin < 2) config_.compact_fanin = 2;
  if (config_.compact_min_segments < 2) config_.compact_min_segments = 2;
  if (support::Telemetry* t = config_.telemetry) {
    mu_.attach(*t);
    ctr_ingest_intervals_ = &t->counter("store.ingest.intervals");
    ctr_ingest_rows_ = &t->counter("store.ingest.rows");
    ctr_append_errors_ = &t->counter("store.ingest.append_errors");
    ctr_seals_ = &t->counter("store.segments.sealed");
    ctr_compactions_ = &t->counter("store.compactions");
    ctr_compact_in_ = &t->counter("store.compaction.segments_in");
    ctr_compact_out_ = &t->counter("store.compaction.segments_out");
    ctr_dropped_intervals_ = &t->counter("store.retained.dropped_intervals");
    ctr_dropped_rows_ = &t->counter("store.retained.dropped_rows");
    ctr_dropped_segments_ = &t->counter("store.retained.dropped_segments");
  }
}

std::string ProfileStore::path(const std::string& rel) const {
  return config_.root.empty() ? rel : config_.root + "/" + rel;
}

bool ProfileStore::check_kill() {
  if (killed_) return true;
  support::FaultInjector* f = vfs_.fault_injector();
  if (f != nullptr &&
      f->should_kill(support::FaultComponent::kCompactor, ++kill_ops_))
    killed_ = true;
  return killed_;
}

bool ProfileStore::killed() const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  return killed_;
}

Manifest ProfileStore::build_manifest() const {
  Manifest m;
  m.generation = generation_;
  m.next_seq = next_seq_;
  m.next_segment = next_segment_;
  m.dropped_intervals = dropped_intervals_;
  m.dropped_rows = dropped_rows_;
  m.dropped_segments = dropped_segments_;
  for (const LoadedSegment& s : sealed_) m.segments.push_back(s.meta);
  if (active_) {
    // Counts are authoritative only once sealed; the active entry records
    // existence and its seq anchor, nothing more.
    ManifestSegment a = active_->meta;
    a.sealed = false;
    a.intervals = 0;
    a.rows = 0;
    a.tick_lo = a.tick_hi = 0;
    a.seq_hi = 0;
    m.segments.push_back(std::move(a));
  }
  m.tombstones = tombstones_;
  return m;
}

bool ProfileStore::swap_manifest() {
  ++generation_;
  const Manifest m = build_manifest();
  const std::string tmp = path("MANIFEST.tmp");
  if (vfs_.write(tmp, m.serialize()) != os::IoStatus::kOk) {
    // The previous manifest generation is still intact; nothing committed.
    if (ctr_append_errors_ != nullptr) ctr_append_errors_->inc();
    return false;
  }
  if (check_kill()) return false;  // crash between temp write and rename
  return vfs_.rename(tmp, path("MANIFEST")) == os::IoStatus::kOk;
}

bool ProfileStore::start_active_locked() {
  // Register the segment in the manifest *before* creating the file: a
  // crash in between leaves a listed-but-missing empty segment (zero loss,
  // dropped at recovery), never an unlisted file holding live data.
  const std::uint64_t id = next_segment_++;
  LoadedSegment seg;
  seg.meta.name = segment_rel_name(id);
  seg.meta.id = id;
  seg.meta.sealed = false;
  seg.meta.seq_lo = next_seq_;
  seg.meta.seq_hi = 0;
  active_ = std::move(seg);
  active_writer_ = SegmentWriter(id);
  if (!swap_manifest()) {
    if (killed_) return false;
  }
  if (vfs_.write(path(active_->meta.name), active_writer_.header()) !=
      os::IoStatus::kOk) {
    if (ctr_append_errors_ != nullptr) ctr_append_errors_->inc();
  }
  return !check_kill();
}

bool ProfileStore::ingest(IntervalProfile iv) {
  std::lock_guard<support::TracedMutex> lock(mu_);
  if (!open_ || killed_) return false;
  if (!active_ && !start_active_locked()) return false;

  iv.first_seq = next_seq_++;
  const std::string bytes = active_writer_.encode_interval(iv);
  if (vfs_.append(path(active_->meta.name), bytes) != os::IoStatus::kOk) {
    // Counted, not fatal: the interval stays queryable in memory; if we
    // crash before a later successful write it shows up as loss in fsck.
    if (ctr_append_errors_ != nullptr) ctr_append_errors_->inc();
  }

  ManifestSegment& meta = active_->meta;
  if (active_->intervals.empty()) {
    meta.tick_lo = iv.tick_lo;
    meta.tick_hi = iv.tick_hi;
    meta.seq_lo = iv.first_seq;
  } else {
    meta.tick_lo = std::min(meta.tick_lo, iv.tick_lo);
    meta.tick_hi = std::max(meta.tick_hi, iv.tick_hi);
  }
  meta.seq_hi = iv.first_seq;
  meta.intervals += 1;
  meta.rows += iv.profile.row_count();
  if (ctr_ingest_intervals_ != nullptr) ctr_ingest_intervals_->inc();
  if (ctr_ingest_rows_ != nullptr) ctr_ingest_rows_->inc(iv.profile.row_count());
  active_->intervals.push_back(std::move(iv));

  if (check_kill()) return false;  // crash right after the append landed
  if (active_->intervals.size() >= config_.seal_after_intervals)
    seal_active_locked();
  return !killed_;
}

bool ProfileStore::seal_active() {
  std::lock_guard<support::TracedMutex> lock(mu_);
  if (!open_ || killed_) return false;
  return seal_active_locked();
}

bool ProfileStore::seal_active_locked() {
  if (!active_) return true;
  if (active_->intervals.empty()) {
    // Nothing to keep: retire the empty segment instead of sealing it.
    vfs_.remove(path(active_->meta.name));
    active_.reset();
    return swap_manifest();
  }
  if (vfs_.append(path(active_->meta.name),
                  active_writer_.encode_seal(active_->intervals.size())) !=
      os::IoStatus::kOk) {
    if (ctr_append_errors_ != nullptr) ctr_append_errors_->inc();
  }
  if (check_kill()) return false;  // crash after seal record, before manifest
  active_->meta.sealed = true;
  sealed_.push_back(std::move(*active_));
  active_.reset();
  if (ctr_seals_ != nullptr) ctr_seals_->inc();
  swap_manifest();
  if (killed_) return false;
  enforce_retention_locked();
  return !killed_;
}

void ProfileStore::enforce_retention_locked() {
  if (config_.retention_budget_rows == 0) return;
  std::uint64_t total = active_ ? active_->meta.rows : 0;
  for (const LoadedSegment& s : sealed_) total += s.meta.rows;

  std::size_t drop = 0;
  while (drop < sealed_.size() && total > config_.retention_budget_rows) {
    total -= sealed_[drop].meta.rows;
    ++drop;
  }
  if (drop == 0) return;

  for (std::size_t i = 0; i < drop; ++i) {
    const ManifestSegment& meta = sealed_[i].meta;
    dropped_intervals_ += meta.intervals;
    dropped_rows_ += meta.rows;
    dropped_segments_ += 1;
    if (ctr_dropped_intervals_ != nullptr) ctr_dropped_intervals_->inc(meta.intervals);
    if (ctr_dropped_rows_ != nullptr) ctr_dropped_rows_->inc(meta.rows);
    if (ctr_dropped_segments_ != nullptr) ctr_dropped_segments_->inc();
    tombstones_.push_back(meta.name);
  }
  sealed_.erase(sealed_.begin(), sealed_.begin() + static_cast<std::ptrdiff_t>(drop));
  if (!swap_manifest()) {
    tombstones_.clear();
    return;
  }
  for (const std::string& name : tombstones_) vfs_.remove(path(name));
  tombstones_.clear();
  if (check_kill()) return;
  swap_manifest();
}

std::size_t ProfileStore::compact(support::ThreadPool* pool) {
  std::lock_guard<support::TracedMutex> lock(mu_);
  if (!open_ || killed_) return 0;

  // Plan deterministically, before any parallelism: maximal consecutive
  // runs of small sealed segments (consecutive in ingest order — their
  // first_seq spans are contiguous, so merging a run can never reorder the
  // canonical fold), chunked to the fan-in.
  const std::uint64_t small_limit =
      static_cast<std::uint64_t>(config_.seal_after_intervals) * config_.compact_fanin;
  struct Job {
    std::size_t begin = 0, end = 0;  // input range in sealed_
    LoadedSegment out;
    std::string content;
    bool failed = false;
  };
  std::vector<Job> jobs;
  std::size_t i = 0;
  while (i < sealed_.size()) {
    if (sealed_[i].meta.intervals >= small_limit) {
      ++i;
      continue;
    }
    std::size_t run_end = i;
    while (run_end < sealed_.size() && sealed_[run_end].meta.intervals < small_limit)
      ++run_end;
    for (std::size_t b = i; b < run_end; b += config_.compact_fanin) {
      const std::size_t e = std::min(b + config_.compact_fanin, run_end);
      if (e - b >= config_.compact_min_segments) {
        Job j;
        j.begin = b;
        j.end = e;
        j.out.meta.id = next_segment_++;
        j.out.meta.name = segment_rel_name(j.out.meta.id);
        jobs.push_back(std::move(j));
      }
    }
    i = run_end;
  }
  if (jobs.empty()) {
    enforce_retention_locked();
    return 0;
  }

  const auto build = [&](std::size_t jx) {
    Job& j = jobs[jx];
    std::vector<const IntervalProfile*> ivs;
    for (std::size_t s = j.begin; s < j.end; ++s)
      for (const IntervalProfile& iv : sealed_[s].intervals) ivs.push_back(&iv);
    std::sort(ivs.begin(), ivs.end(),
              [](const IntervalProfile* a, const IntervalProfile* b) {
                return canonical_less(*a, *b);
              });
    // Fold equal-merge-key neighbours in first_seq order; the merged
    // interval keeps the smallest first_seq, so later query sorts put it
    // exactly where its first constituent used to sit.
    std::vector<IntervalProfile> merged;
    for (const IntervalProfile* iv : ivs) {
      if (!merged.empty() && same_merge_key(merged.back(), *iv)) {
        merged.back().profile.merge(iv->profile);
        merged.back().epoch_lo = std::min(merged.back().epoch_lo, iv->epoch_lo);
        merged.back().epoch_hi = std::max(merged.back().epoch_hi, iv->epoch_hi);
      } else {
        merged.push_back(*iv);
      }
    }
    SegmentWriter w(j.out.meta.id);
    j.content = w.header();
    ManifestSegment& meta = j.out.meta;
    meta.sealed = true;
    meta.seq_lo = sealed_[j.begin].meta.seq_lo;
    meta.seq_hi = sealed_[j.end - 1].meta.seq_hi;
    bool first = true;
    for (const IntervalProfile& iv : merged) {
      j.content += w.encode_interval(iv);
      meta.intervals += 1;
      meta.rows += iv.profile.row_count();
      meta.tick_lo = first ? iv.tick_lo : std::min(meta.tick_lo, iv.tick_lo);
      meta.tick_hi = first ? iv.tick_hi : std::max(meta.tick_hi, iv.tick_hi);
      first = false;
    }
    j.content += w.encode_seal(merged.size());
    j.out.intervals = std::move(merged);
  };
  if (pool != nullptr) {
    pool->parallel_for(jobs.size(), build);
  } else {
    for (std::size_t jx = 0; jx < jobs.size(); ++jx) build(jx);
  }

  // Commit: outputs first (whole-file writes), then one manifest swap that
  // simultaneously adopts the outputs and tombstones the inputs, then file
  // deletion, then a second swap clearing the tombstones. A crash at any
  // point is recoverable: orphan outputs are discarded, tombstoned inputs
  // are deleted, and the data is always wholly in one generation.
  bool write_failed = false;
  for (Job& j : jobs) {
    if (vfs_.write(path(j.out.meta.name), j.content) != os::IoStatus::kOk) {
      j.failed = true;
      write_failed = true;
      if (ctr_append_errors_ != nullptr) ctr_append_errors_->inc();
    }
  }
  if (write_failed) {
    // Abort whole: inputs stay live, any outputs that did land are removed.
    for (const Job& j : jobs)
      if (!j.failed) vfs_.remove(path(j.out.meta.name));
    enforce_retention_locked();
    return 0;
  }
  if (check_kill()) return 0;  // crash: orphan outputs, previous manifest

  std::vector<LoadedSegment> next;
  next.reserve(sealed_.size());
  std::size_t jx = 0;
  for (std::size_t s = 0; s < sealed_.size();) {
    if (jx < jobs.size() && jobs[jx].begin == s) {
      for (std::size_t k = jobs[jx].begin; k < jobs[jx].end; ++k)
        tombstones_.push_back(sealed_[k].meta.name);
      next.push_back(std::move(jobs[jx].out));
      s = jobs[jx].end;
      ++jx;
    } else {
      next.push_back(std::move(sealed_[s]));
      ++s;
    }
  }
  sealed_ = std::move(next);
  if (!swap_manifest()) {
    tombstones_.clear();
    if (killed_) return 0;
    // Swap rejected by an injected write fault: the old generation still
    // lists the inputs we just dropped from memory. Treat like a crash —
    // the store object is no longer coherent with disk.
    killed_ = true;
    return 0;
  }
  if (ctr_compactions_ != nullptr) ctr_compactions_->inc();
  for (const Job& j : jobs) {
    if (ctr_compact_in_ != nullptr) ctr_compact_in_->inc(j.end - j.begin);
    if (ctr_compact_out_ != nullptr) ctr_compact_out_->inc();
  }
  if (check_kill()) return jobs.size();  // crash: tombstoned files linger
  for (const std::string& name : tombstones_) vfs_.remove(path(name));
  tombstones_.clear();
  swap_manifest();
  enforce_retention_locked();
  return jobs.size();
}

// ---------------------------------------------------------------- queries

void ProfileStore::collect_window_locked(
    const WindowSpec& w, std::vector<const IntervalProfile*>& out) const {
  for (const LoadedSegment& s : sealed_)
    for (const IntervalProfile& iv : s.intervals)
      if (in_window(iv, w)) out.push_back(&iv);
  if (active_)
    for (const IntervalProfile& iv : active_->intervals)
      if (in_window(iv, w)) out.push_back(&iv);
  std::sort(out.begin(), out.end(),
            [](const IntervalProfile* a, const IntervalProfile* b) {
              return canonical_less(*a, *b);
            });
}

core::Profile ProfileStore::window_profile_locked(const WindowSpec& w) const {
  std::vector<const IntervalProfile*> ivs;
  collect_window_locked(w, ivs);
  core::Profile out;
  for (const IntervalProfile* iv : ivs) out.merge(iv->profile);
  return out;
}

core::Profile ProfileStore::window_profile(const WindowSpec& w) const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  return window_profile_locked(w);
}

std::string ProfileStore::render_top(const WindowSpec& w,
                                     const std::vector<hw::EventKind>& events,
                                     std::size_t top_n) const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  return window_profile_locked(w).render(events, top_n);
}

std::string ProfileStore::render_series(const WindowSpec& w, const std::string& image,
                                        const std::string& symbol,
                                        hw::EventKind event) const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  std::vector<const IntervalProfile*> ivs;
  collect_window_locked(w, ivs);
  // Per-tick folds; map keeps the output in ascending tick order while the
  // fold *within* each tick keeps the canonical order.
  std::map<std::pair<std::uint64_t, std::uint64_t>, core::Profile> ticks;
  for (const IntervalProfile* iv : ivs)
    ticks[{iv->tick_lo, iv->tick_hi}].merge(iv->profile);

  support::TextTable table({"Tick", "Count", "Total", "%"});
  for (const auto& [span, profile] : ticks) {
    const core::ProfileRow* row = profile.find(image, symbol);
    const std::uint64_t count = row != nullptr ? row->count(event) : 0;
    const std::uint64_t total = profile.total(event);
    const double pct =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(count) / static_cast<double>(total);
    const std::string tick =
        span.first == span.second
            ? std::to_string(span.first)
            : std::to_string(span.first) + "-" + std::to_string(span.second);
    table.add_row({tick, std::to_string(count), std::to_string(total),
                   support::fixed(pct, 4)});
  }
  return table.render();
}

std::string ProfileStore::render_diff(const WindowSpec& before, const WindowSpec& after,
                                      hw::EventKind event, std::size_t top_n) const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  const core::Profile a = window_profile_locked(before);
  const core::Profile b = window_profile_locked(after);
  return core::render_diff(a, b, event, top_n);
}

std::string ProfileStore::render_segments() const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  support::TextTable table({"Segment", "State", "Intervals", "Rows", "Ticks", "Seqs"});
  const auto add = [&](const LoadedSegment& s, const char* state) {
    table.add_row({s.meta.name, state, std::to_string(s.meta.intervals),
                   std::to_string(s.meta.rows),
                   std::to_string(s.meta.tick_lo) + "-" + std::to_string(s.meta.tick_hi),
                   std::to_string(s.meta.seq_lo) + "-" + std::to_string(s.meta.seq_hi)});
  };
  for (const LoadedSegment& s : sealed_) add(s, "sealed");
  if (active_) add(*active_, "active");
  return table.render();
}

std::vector<ProfileStore::StoredSession> ProfileStore::sessions() const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  std::map<std::string, StoredSession> by_id;
  const auto fold = [&](const IntervalProfile& iv) {
    StoredSession& s = by_id[iv.session];
    s.session = iv.session;
    ++s.intervals;
    for (const hw::EventKind event : hw::kAllEventKinds)
      s.records += iv.profile.total(event);
  };
  for (const LoadedSegment& s : sealed_)
    for (const IntervalProfile& iv : s.intervals) fold(iv);
  if (active_)
    for (const IntervalProfile& iv : active_->intervals) fold(iv);
  std::vector<StoredSession> out;
  out.reserve(by_id.size());
  for (auto& [id, s] : by_id) out.push_back(std::move(s));
  return out;
}

std::uint64_t ProfileStore::live_intervals() const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  std::uint64_t n = active_ ? active_->meta.intervals : 0;
  for (const LoadedSegment& s : sealed_) n += s.meta.intervals;
  return n;
}

std::uint64_t ProfileStore::live_rows() const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  std::uint64_t n = active_ ? active_->meta.rows : 0;
  for (const LoadedSegment& s : sealed_) n += s.meta.rows;
  return n;
}

std::size_t ProfileStore::segment_count() const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  return sealed_.size() + (active_ ? 1 : 0);
}

}  // namespace viprof::store
