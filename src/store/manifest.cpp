#include "store/manifest.hpp"

#include <cstdio>

#include "support/format.hpp"

namespace viprof::store {

namespace {
constexpr const char* kHeader = "viprof-store-manifest v1";
}

std::string Manifest::serialize() const {
  std::string out = std::string(kHeader) + "\n";
  out += "gen " + std::to_string(generation) + "\n";
  out += "next-seq " + std::to_string(next_seq) + "\n";
  out += "next-segment " + std::to_string(next_segment) + "\n";
  out += "dropped " + std::to_string(dropped_intervals) + " " +
         std::to_string(dropped_rows) + " " + std::to_string(dropped_segments) + "\n";
  for (const ManifestSegment& s : segments) {
    out += "segment " + std::to_string(s.id) + " " + std::to_string(s.sealed ? 1 : 0) +
           " " + std::to_string(s.intervals) + " " + std::to_string(s.rows) + " " +
           std::to_string(s.tick_lo) + " " + std::to_string(s.tick_hi) + " " +
           std::to_string(s.seq_lo) + " " + std::to_string(s.seq_hi) + "\t" + s.name +
           "\n";
  }
  for (const std::string& t : tombstones) out += "tombstone " + t + "\n";
  char crc[16];
  std::snprintf(crc, sizeof crc, "crc %08x\n", support::fnv1a(out));
  out += crc;
  return out;
}

std::optional<Manifest> Manifest::parse(const std::string& text) {
  const std::size_t crc_at = text.rfind("crc ");
  if (crc_at == std::string::npos || (crc_at != 0 && text[crc_at - 1] != '\n'))
    return std::nullopt;
  unsigned crc_read = 0;
  if (std::sscanf(text.c_str() + crc_at + 4, "%8x", &crc_read) != 1)
    return std::nullopt;
  if (support::fnv1a(text.data(), crc_at) != crc_read) return std::nullopt;

  Manifest m;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos < crc_at) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos || nl > crc_at) nl = crc_at;
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kHeader) return std::nullopt;
      saw_header = true;
    } else if (line.rfind("gen ", 0) == 0) {
      m.generation = std::strtoull(line.c_str() + 4, nullptr, 10);
    } else if (line.rfind("next-seq ", 0) == 0) {
      m.next_seq = std::strtoull(line.c_str() + 9, nullptr, 10);
    } else if (line.rfind("next-segment ", 0) == 0) {
      m.next_segment = std::strtoull(line.c_str() + 13, nullptr, 10);
    } else if (line.rfind("dropped ", 0) == 0) {
      unsigned long long i = 0, r = 0, s = 0;
      if (std::sscanf(line.c_str() + 8, "%llu %llu %llu", &i, &r, &s) != 3)
        return std::nullopt;
      m.dropped_intervals = i;
      m.dropped_rows = r;
      m.dropped_segments = s;
    } else if (line.rfind("segment ", 0) == 0) {
      const std::size_t tab = line.find('\t');
      if (tab == std::string::npos) return std::nullopt;
      unsigned long long id, sealed, ivs, rows, tlo, thi, slo, shi;
      if (std::sscanf(line.c_str() + 8, "%llu %llu %llu %llu %llu %llu %llu %llu",
                      &id, &sealed, &ivs, &rows, &tlo, &thi, &slo, &shi) != 8)
        return std::nullopt;
      ManifestSegment seg;
      seg.name = line.substr(tab + 1);
      seg.id = id;
      seg.sealed = sealed != 0;
      seg.intervals = ivs;
      seg.rows = rows;
      seg.tick_lo = tlo;
      seg.tick_hi = thi;
      seg.seq_lo = slo;
      seg.seq_hi = shi;
      m.segments.push_back(std::move(seg));
    } else if (line.rfind("tombstone ", 0) == 0) {
      m.tombstones.push_back(line.substr(10));
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header) return std::nullopt;
  return m;
}

const ManifestSegment* Manifest::find(const std::string& name) const {
  for (const ManifestSegment& s : segments)
    if (s.name == name) return &s;
  return nullptr;
}

}  // namespace viprof::store
