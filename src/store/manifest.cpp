#include "store/manifest.hpp"

#include <cstdio>

#include "support/format.hpp"

namespace viprof::store {

namespace {
constexpr const char* kHeader = "viprof-store-manifest v1";
constexpr const char* kFleetHeader = "viprof-fleet-manifest v1";
}

std::string Manifest::serialize() const {
  std::string out = std::string(kHeader) + "\n";
  out += "gen " + std::to_string(generation) + "\n";
  out += "next-seq " + std::to_string(next_seq) + "\n";
  out += "next-segment " + std::to_string(next_segment) + "\n";
  out += "dropped " + std::to_string(dropped_intervals) + " " +
         std::to_string(dropped_rows) + " " + std::to_string(dropped_segments) + "\n";
  for (const ManifestSegment& s : segments) {
    out += "segment " + std::to_string(s.id) + " " + std::to_string(s.sealed ? 1 : 0) +
           " " + std::to_string(s.intervals) + " " + std::to_string(s.rows) + " " +
           std::to_string(s.tick_lo) + " " + std::to_string(s.tick_hi) + " " +
           std::to_string(s.seq_lo) + " " + std::to_string(s.seq_hi) + "\t" + s.name +
           "\n";
  }
  for (const std::string& t : tombstones) out += "tombstone " + t + "\n";
  char crc[16];
  std::snprintf(crc, sizeof crc, "crc %08x\n", support::fnv1a(out));
  out += crc;
  return out;
}

std::optional<Manifest> Manifest::parse(const std::string& text) {
  const std::size_t crc_at = text.rfind("crc ");
  if (crc_at == std::string::npos || (crc_at != 0 && text[crc_at - 1] != '\n'))
    return std::nullopt;
  unsigned crc_read = 0;
  if (std::sscanf(text.c_str() + crc_at + 4, "%8x", &crc_read) != 1)
    return std::nullopt;
  if (support::fnv1a(text.data(), crc_at) != crc_read) return std::nullopt;

  Manifest m;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos < crc_at) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos || nl > crc_at) nl = crc_at;
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kHeader) return std::nullopt;
      saw_header = true;
    } else if (line.rfind("gen ", 0) == 0) {
      m.generation = std::strtoull(line.c_str() + 4, nullptr, 10);
    } else if (line.rfind("next-seq ", 0) == 0) {
      m.next_seq = std::strtoull(line.c_str() + 9, nullptr, 10);
    } else if (line.rfind("next-segment ", 0) == 0) {
      m.next_segment = std::strtoull(line.c_str() + 13, nullptr, 10);
    } else if (line.rfind("dropped ", 0) == 0) {
      unsigned long long i = 0, r = 0, s = 0;
      if (std::sscanf(line.c_str() + 8, "%llu %llu %llu", &i, &r, &s) != 3)
        return std::nullopt;
      m.dropped_intervals = i;
      m.dropped_rows = r;
      m.dropped_segments = s;
    } else if (line.rfind("segment ", 0) == 0) {
      const std::size_t tab = line.find('\t');
      if (tab == std::string::npos) return std::nullopt;
      unsigned long long id, sealed, ivs, rows, tlo, thi, slo, shi;
      if (std::sscanf(line.c_str() + 8, "%llu %llu %llu %llu %llu %llu %llu %llu",
                      &id, &sealed, &ivs, &rows, &tlo, &thi, &slo, &shi) != 8)
        return std::nullopt;
      ManifestSegment seg;
      seg.name = line.substr(tab + 1);
      seg.id = id;
      seg.sealed = sealed != 0;
      seg.intervals = ivs;
      seg.rows = rows;
      seg.tick_lo = tlo;
      seg.tick_hi = thi;
      seg.seq_lo = slo;
      seg.seq_hi = shi;
      m.segments.push_back(std::move(seg));
    } else if (line.rfind("tombstone ", 0) == 0) {
      m.tombstones.push_back(line.substr(10));
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header) return std::nullopt;
  return m;
}

const ManifestSegment* Manifest::find(const std::string& name) const {
  for (const ManifestSegment& s : segments)
    if (s.name == name) return &s;
  return nullptr;
}

std::string FleetManifest::serialize() const {
  std::string out = std::string(kFleetHeader) + "\n";
  out += "gen " + std::to_string(generation) + "\n";
  const FleetLedger& l = ledger;
  out += "acked " + std::to_string(l.acked_sessions) + " " +
         std::to_string(l.acked_records) + "\n";
  out += "stored " + std::to_string(l.stored_records) + "\n";
  out += "lost " + std::to_string(l.lost_wire) + " " + std::to_string(l.lost_queue) +
         " " + std::to_string(l.lost_dead_records) + " " +
         std::to_string(l.lost_dead_sessions) + "\n";
  out += "failover " + std::to_string(l.failover_sessions) + " " +
         std::to_string(l.failover_records) + "\n";
  out += "refused " + std::to_string(l.refused_sessions) + "\n";
  out += "retried " + std::to_string(l.retried_sends) + " " +
         std::to_string(l.retried_giveups) + " " + std::to_string(l.circuit_opens) +
         "\n";
  out += "rebalances " + std::to_string(l.rebalances) + "\n";
  for (const FleetShard& s : shards) {
    out += "shard " + std::to_string(s.alive ? 1 : 0) + " " +
           std::to_string(s.sessions) + " " + std::to_string(s.records) + "\t" +
           s.name + "\t" + s.root + "\n";
  }
  char crc[16];
  std::snprintf(crc, sizeof crc, "crc %08x\n", support::fnv1a(out));
  out += crc;
  return out;
}

std::optional<FleetManifest> FleetManifest::parse(const std::string& text) {
  const std::size_t crc_at = text.rfind("crc ");
  if (crc_at == std::string::npos || (crc_at != 0 && text[crc_at - 1] != '\n'))
    return std::nullopt;
  unsigned crc_read = 0;
  if (std::sscanf(text.c_str() + crc_at + 4, "%8x", &crc_read) != 1)
    return std::nullopt;
  if (support::fnv1a(text.data(), crc_at) != crc_read) return std::nullopt;

  FleetManifest m;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos < crc_at) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos || nl > crc_at) nl = crc_at;
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kFleetHeader) return std::nullopt;
      saw_header = true;
    } else if (line.rfind("gen ", 0) == 0) {
      m.generation = std::strtoull(line.c_str() + 4, nullptr, 10);
    } else if (line.rfind("acked ", 0) == 0) {
      unsigned long long s = 0, r = 0;
      if (std::sscanf(line.c_str() + 6, "%llu %llu", &s, &r) != 2)
        return std::nullopt;
      m.ledger.acked_sessions = s;
      m.ledger.acked_records = r;
    } else if (line.rfind("stored ", 0) == 0) {
      m.ledger.stored_records = std::strtoull(line.c_str() + 7, nullptr, 10);
    } else if (line.rfind("lost ", 0) == 0) {
      unsigned long long w = 0, q = 0, dr = 0, ds = 0;
      if (std::sscanf(line.c_str() + 5, "%llu %llu %llu %llu", &w, &q, &dr, &ds) != 4)
        return std::nullopt;
      m.ledger.lost_wire = w;
      m.ledger.lost_queue = q;
      m.ledger.lost_dead_records = dr;
      m.ledger.lost_dead_sessions = ds;
    } else if (line.rfind("failover ", 0) == 0) {
      unsigned long long s = 0, r = 0;
      if (std::sscanf(line.c_str() + 9, "%llu %llu", &s, &r) != 2)
        return std::nullopt;
      m.ledger.failover_sessions = s;
      m.ledger.failover_records = r;
    } else if (line.rfind("refused ", 0) == 0) {
      m.ledger.refused_sessions = std::strtoull(line.c_str() + 8, nullptr, 10);
    } else if (line.rfind("retried ", 0) == 0) {
      unsigned long long s = 0, g = 0, c = 0;
      if (std::sscanf(line.c_str() + 8, "%llu %llu %llu", &s, &g, &c) != 3)
        return std::nullopt;
      m.ledger.retried_sends = s;
      m.ledger.retried_giveups = g;
      m.ledger.circuit_opens = c;
    } else if (line.rfind("rebalances ", 0) == 0) {
      m.ledger.rebalances = std::strtoull(line.c_str() + 11, nullptr, 10);
    } else if (line.rfind("shard ", 0) == 0) {
      const std::size_t tab1 = line.find('\t');
      if (tab1 == std::string::npos) return std::nullopt;
      const std::size_t tab2 = line.find('\t', tab1 + 1);
      if (tab2 == std::string::npos) return std::nullopt;
      unsigned long long alive = 0, sessions = 0, records = 0;
      if (std::sscanf(line.c_str() + 6, "%llu %llu %llu", &alive, &sessions,
                      &records) != 3)
        return std::nullopt;
      FleetShard shard;
      shard.alive = alive != 0;
      shard.sessions = sessions;
      shard.records = records;
      shard.name = line.substr(tab1 + 1, tab2 - tab1 - 1);
      shard.root = line.substr(tab2 + 1);
      m.shards.push_back(std::move(shard));
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header) return std::nullopt;
  return m;
}

const FleetShard* FleetManifest::find(const std::string& name) const {
  for (const FleetShard& s : shards)
    if (s.name == name) return &s;
  return nullptr;
}

}  // namespace viprof::store
