// The unit of storage in the profile store: one aggregated profile over a
// tick interval of one session.
//
// The continuous-profiling service answers "what is hot right now"; the
// store keeps history by persisting *interval profiles* — each one the
// aggregate the server flushed for a (session, pid) over a tick range and
// the epoch range that was live during it. Queries fold intervals back
// together with Profile::merge, so the canonical fold order below is what
// makes every answer byte-identical however the intervals are physically
// arranged (unsealed, sealed, or compacted — DESIGN.md §11).
#pragma once

#include <cstdint>
#include <string>

#include "core/report.hpp"

namespace viprof::store {

struct IntervalProfile {
  std::string session;
  std::uint64_t pid = 0;
  std::uint64_t tick_lo = 0, tick_hi = 0;    // inclusive tick range
  std::uint64_t epoch_lo = 0, epoch_hi = 0;  // epochs live during the range
  /// Store-assigned ingest sequence number; globally unique, so the
  /// canonical order below is total. A compacted interval keeps the
  /// smallest first_seq of its constituents.
  std::uint64_t first_seq = 0;
  core::Profile profile;
};

/// Two intervals with the same merge key may be folded into one by the
/// compactor (Profile::merge in first_seq order).
inline bool same_merge_key(const IntervalProfile& a, const IntervalProfile& b) {
  return a.tick_lo == b.tick_lo && a.tick_hi == b.tick_hi && a.pid == b.pid &&
         a.session == b.session;
}

/// Canonical query order: (session, pid, tick_lo, tick_hi, first_seq).
/// first_seq is unique, so this is a strict total order; equal-merge-key
/// intervals sort adjacent in ingest order, which is exactly the order the
/// compactor folds them — hence queries over compacted segments reproduce
/// the uncompacted fold byte for byte.
inline bool canonical_less(const IntervalProfile& a, const IntervalProfile& b) {
  if (a.session != b.session) return a.session < b.session;
  if (a.pid != b.pid) return a.pid < b.pid;
  if (a.tick_lo != b.tick_lo) return a.tick_lo < b.tick_lo;
  if (a.tick_hi != b.tick_hi) return a.tick_hi < b.tick_hi;
  return a.first_seq < b.first_seq;
}

}  // namespace viprof::store
