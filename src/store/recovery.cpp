// Store recovery: replay the manifest, salvage what the crash left.
//
// scan() is a pure read of the Vfs shared by fsck() (report only) and
// open() (apply: delete orphans and tombstoned files, rewrite damaged
// segments re-framed, publish a fresh manifest). Loss accounting is exact
// where the manifest is authoritative (sealed segments: manifest counts
// minus salvage) and framing-derived where it is not (the active segment:
// declared row counts of dropped intervals).
#include <algorithm>
#include <cstdio>
#include <set>

#include "store/profile_store.hpp"
#include "support/telemetry.hpp"

namespace viprof::store {

namespace {

std::uint64_t clamped_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

std::uint64_t id_from_name(const std::string& rel) {
  unsigned long long id = 0;
  std::sscanf(rel.c_str(), "segments/seg-%llu.vseg", &id);
  return id;
}

}  // namespace

struct ProfileStore::ScanState {
  StoreRecovery rec;
  bool manifest_ok = false;
  std::uint64_t generation = 0;
  std::uint64_t next_seq = 1;
  std::uint64_t next_segment = 0;
  std::uint64_t dropped_intervals = 0, dropped_rows = 0, dropped_segments = 0;
  std::vector<LoadedSegment> loaded;
  std::set<std::string> rewrite;       // segment names to re-frame on open
  std::vector<std::string> remove;     // vfs paths to delete on open
};

void ProfileStore::scan(ScanState& st) const {
  StoreRecovery& rec = st.rec;
  const std::string tmppath = path("MANIFEST.tmp");
  const auto mtext = vfs_.read(path("MANIFEST"));
  std::optional<Manifest> man;
  if (mtext) man = Manifest::parse(*mtext);

  bool damage = false;
  if (vfs_.exists(tmppath)) {
    // A crash landed between the temp write and the rename; the temp file
    // is a dead letter (the generation it carried never committed).
    ++rec.orphans_removed;
    st.remove.push_back(tmppath);
    damage = true;
  }

  const std::string seg_prefix = path("segments/");
  const std::vector<std::string> files = vfs_.list(seg_prefix);
  const auto rel_of = [&](const std::string& full) {
    return config_.root.empty() ? full : full.substr(config_.root.size() + 1);
  };
  const auto note = [&](const std::string& name, const std::string& what) {
    rec.details += name + ": " + what + "\n";
  };
  std::uint64_t max_seq = 0, max_id = 0;
  const auto track = [&](const LoadedSegment& ls) {
    max_seq = std::max(max_seq, ls.meta.seq_hi);
    max_id = std::max(max_id, ls.meta.id);
  };
  const auto load_salvaged = [&](SegmentSalvage&& sv, ManifestSegment meta) {
    meta.sealed = true;
    meta.intervals = sv.intervals.size();
    meta.rows = 0;
    bool first = true;
    for (const IntervalProfile& iv : sv.intervals) {
      meta.rows += iv.profile.row_count();
      meta.tick_lo = first ? iv.tick_lo : std::min(meta.tick_lo, iv.tick_lo);
      meta.tick_hi = first ? iv.tick_hi : std::max(meta.tick_hi, iv.tick_hi);
      meta.seq_lo = first ? iv.first_seq : std::min(meta.seq_lo, iv.first_seq);
      meta.seq_hi = first ? iv.first_seq : std::max(meta.seq_hi, iv.first_seq);
      first = false;
    }
    rec.intervals_salvaged += meta.intervals;
    rec.rows_salvaged += meta.rows;
    ++rec.segments_loaded;
    LoadedSegment ls;
    ls.meta = std::move(meta);
    ls.intervals = std::move(sv.intervals);
    track(ls);
    st.loaded.push_back(std::move(ls));
  };

  if (!man) {
    if (!mtext && files.empty()) {
      // Nothing at all: a brand new store (or only a dead MANIFEST.tmp).
      rec.fresh = !damage;
      rec.verdict = damage ? core::FsckVerdict::kSalvaged : core::FsckVerdict::kClean;
    } else {
      // Manifest missing or corrupt but segments exist: rebuild from a full
      // scan. The retention-drop bins cannot be recovered — noted, not
      // silently zeroed.
      rec.manifest_rebuilt = true;
      damage = true;
      if (mtext) note("MANIFEST", "corrupt, rebuilt from segment scan");
      else note("MANIFEST", "missing, rebuilt from segment scan");
      rec.details += "MANIFEST: cumulative retention-drop bins lost in rebuild\n";
      for (const std::string& full : files) {
        const auto text = vfs_.read(full);
        SegmentSalvage sv = read_segment(*text);
        rec.lines_discarded += sv.lines_discarded;
        rec.intervals_lost += sv.intervals_dropped;
        rec.rows_lost += sv.rows_dropped;
        const std::string rel = rel_of(full);
        if (sv.intervals.empty()) {
          ++rec.segments_lost;
          st.remove.push_back(full);
          note(rel, "dead segment (nothing salvageable)");
          continue;
        }
        ManifestSegment meta;
        meta.name = rel;
        meta.id = sv.header_ok ? sv.segment_id : id_from_name(rel);
        if (!sv.clean())
          note(rel, "salvaged " + std::to_string(sv.intervals.size()) +
                        " interval(s), dropped " +
                        std::to_string(sv.intervals_dropped));
        st.rewrite.insert(rel);
        load_salvaged(std::move(sv), std::move(meta));
      }
      rec.verdict = st.loaded.empty() ? core::FsckVerdict::kUnrecoverable
                                      : core::FsckVerdict::kSalvaged;
    }
  } else {
    st.manifest_ok = true;
    st.generation = man->generation;
    st.next_seq = man->next_seq;
    st.next_segment = man->next_segment;
    st.dropped_intervals = man->dropped_intervals;
    st.dropped_rows = man->dropped_rows;
    st.dropped_segments = man->dropped_segments;

    const std::set<std::string> tomb(man->tombstones.begin(), man->tombstones.end());
    for (const std::string& t : man->tombstones) {
      // Crash between the adopting swap and file deletion: finish the job.
      if (vfs_.exists(path(t))) st.remove.push_back(path(t));
      ++rec.tombstones_cleared;
      damage = true;
      note(t, "tombstone cleared");
    }

    std::set<std::string> live;
    for (const ManifestSegment& ms : man->segments) {
      live.insert(ms.name);
      const auto text = vfs_.read(path(ms.name));
      if (!text) {
        ++rec.segments_lost;
        rec.intervals_lost += ms.intervals;
        rec.rows_lost += ms.rows;
        damage = true;
        note(ms.name, "file missing; manifest counted " +
                          std::to_string(ms.intervals) + " interval(s), " +
                          std::to_string(ms.rows) + " row(s)");
        continue;
      }
      SegmentSalvage sv = read_segment(*text);
      rec.lines_discarded += sv.lines_discarded;
      if (ms.sealed) {
        // Manifest counts are authoritative: exact loss.
        const std::uint64_t lost_iv = clamped_sub(ms.intervals, sv.intervals_salvaged);
        const std::uint64_t lost_rows = clamped_sub(ms.rows, sv.rows_salvaged);
        rec.intervals_lost += lost_iv;
        rec.rows_lost += lost_rows;
        if (!sv.clean() || lost_iv != 0) {
          damage = true;
          st.rewrite.insert(ms.name);
          note(ms.name, "sealed segment damaged: lost " + std::to_string(lost_iv) +
                            " of " + std::to_string(ms.intervals) +
                            " interval(s), " + std::to_string(lost_rows) + " row(s)");
        }
        if (sv.intervals.empty() && ms.intervals > 0) {
          ++rec.segments_lost;
          st.remove.push_back(path(ms.name));
          st.rewrite.erase(ms.name);
          note(ms.name, "dead segment (nothing salvageable)");
          continue;
        }
      } else {
        // The active segment at crash time: the manifest never held its
        // counts, so the framing's declared-row accounting is the record.
        rec.intervals_lost += sv.intervals_dropped;
        rec.rows_lost += sv.rows_dropped;
        if (!sv.clean()) {
          damage = true;
          note(ms.name, "active segment salvaged: " +
                            std::to_string(sv.intervals_salvaged) +
                            " interval(s) kept, " +
                            std::to_string(sv.intervals_dropped) + " dropped");
        }
        if (sv.intervals.empty()) {
          st.remove.push_back(path(ms.name));
          continue;  // empty active: retire, no loss beyond counted drops
        }
        st.rewrite.insert(ms.name);  // re-frame + seal on open
      }
      load_salvaged(std::move(sv), ms);
    }

    for (const std::string& full : files) {
      const std::string rel = rel_of(full);
      if (live.count(rel) != 0 || tomb.count(rel) != 0) continue;
      ++rec.orphans_removed;
      st.remove.push_back(full);
      damage = true;
      const auto text = vfs_.read(full);
      SegmentSalvage sv = read_segment(*text);
      if (sv.sealed) {
        // Compaction output that never got adopted; its inputs are still
        // live in this generation, so discarding it loses nothing.
        note(rel, "orphan removed (unadopted compaction output)");
      } else {
        rec.intervals_lost += sv.intervals_salvaged + sv.intervals_dropped;
        rec.rows_lost += sv.rows_salvaged + sv.rows_dropped;
        note(rel, "unsealed orphan removed; " +
                      std::to_string(sv.intervals_salvaged + sv.intervals_dropped) +
                      " interval(s) counted lost");
      }
    }
    rec.verdict =
        damage ? core::FsckVerdict::kSalvaged : core::FsckVerdict::kClean;
  }

  std::sort(st.loaded.begin(), st.loaded.end(),
            [](const LoadedSegment& a, const LoadedSegment& b) {
              if (a.meta.seq_lo != b.meta.seq_lo) return a.meta.seq_lo < b.meta.seq_lo;
              return a.meta.id < b.meta.id;
            });
  st.next_seq = std::max(st.next_seq, max_seq + 1);
  st.next_segment = std::max(st.next_segment, max_id + 1);

  rec.summary = "store fsck: " + std::string(core::to_string(rec.verdict)) + " - " +
                std::to_string(rec.segments_loaded) + " segment(s) loaded, " +
                std::to_string(rec.intervals_salvaged) + " interval(s)/" +
                std::to_string(rec.rows_salvaged) + " row(s) salvaged, " +
                std::to_string(rec.intervals_lost) + " interval(s)/" +
                std::to_string(rec.rows_lost) + " row(s) lost, " +
                std::to_string(rec.orphans_removed) + " orphan(s), " +
                std::to_string(rec.segments_lost) + " segment(s) lost";
}

StoreRecovery ProfileStore::fsck() const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  ScanState st;
  scan(st);
  return st.rec;
}

StoreRecovery ProfileStore::open() {
  std::lock_guard<support::TracedMutex> lock(mu_);
  ScanState st;
  scan(st);

  for (const std::string& p : st.remove) vfs_.remove(p);
  sealed_ = std::move(st.loaded);
  active_.reset();
  tombstones_.clear();
  generation_ = st.generation;
  next_seq_ = st.next_seq;
  next_segment_ = st.next_segment;
  dropped_intervals_ = st.dropped_intervals;
  dropped_rows_ = st.dropped_rows;
  dropped_segments_ = st.dropped_segments;

  // Re-frame every segment salvage touched (and seal the one that was
  // active), so the next crash starts from intact files.
  for (LoadedSegment& s : sealed_) {
    if (st.rewrite.count(s.meta.name) == 0) continue;
    SegmentWriter w(s.meta.id);
    std::string content = w.header();
    for (const IntervalProfile& iv : s.intervals) content += w.encode_interval(iv);
    content += w.encode_seal(s.intervals.size());
    if (vfs_.write(path(s.meta.name), content) != os::IoStatus::kOk) {
      if (ctr_append_errors_ != nullptr) ctr_append_errors_->inc();
    }
  }

  open_ = true;
  swap_manifest();

  if (support::Telemetry* t = config_.telemetry) {
    t->counter("store.recovery.opens").inc();
    t->counter("store.recovery.intervals_salvaged").inc(st.rec.intervals_salvaged);
    t->counter("store.recovery.intervals_lost").inc(st.rec.intervals_lost);
    t->counter("store.recovery.rows_lost").inc(st.rec.rows_lost);
    t->counter("store.recovery.orphans_removed").inc(st.rec.orphans_removed);
    t->counter("store.recovery.segments_lost").inc(st.rec.segments_lost);
  }
  return st.rec;
}

}  // namespace viprof::store
