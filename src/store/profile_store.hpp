// The persistent profile store: crash-consistent segmented time-series
// storage for continuous profiles, with compaction, retention, and
// historical queries (DESIGN.md §11).
//
// Write path: ingest() assigns each interval a globally unique first_seq,
// appends it (framed, §7 discipline) to the active segment, and seals the
// segment after seal_after_intervals — a seal record plus a manifest swap.
// compact() merges consecutive runs of small sealed segments into larger
// ones with Profile::merge and deduplicated dictionaries; the merge plan is
// computed deterministically before any parallelism, so the result is
// byte-identical at any ThreadPool width. A retention budget ages out the
// oldest segments with counted dropped_* bins — never silently.
//
// Crash model: the store consults the FaultInjector's kCompactor kill
// schedule at every checkpoint (append, seal, between manifest temp-write
// and rename, between compaction phases). Once killed, every public call
// returns early — the object models a dead process and must be discarded;
// re-opening a fresh ProfileStore over the same Vfs replays the manifest,
// salvages segments, and accounts every lost interval and row exactly.
//
// Query model: answers are folds of interval profiles in the canonical
// order (interval.hpp), so a window query renders byte-identical whether
// its intervals sit in the unsealed segment, sealed segments, or compacted
// ones — the determinism anchor asserted by the `store` ctest label.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/fsck.hpp"
#include "os/vfs.hpp"
#include "store/interval.hpp"
#include "store/manifest.hpp"
#include "store/segment.hpp"
#include "support/traced_mutex.hpp"

namespace viprof::support {
class ThreadPool;
}

namespace viprof::store {

struct StoreConfig {
  /// Store root inside the Vfs ("" = the Vfs root itself).
  std::string root = "store";
  /// Active segment seals after this many intervals.
  std::size_t seal_after_intervals = 8;
  /// Max input segments merged into one compaction output.
  std::size_t compact_fanin = 4;
  /// compact() is a no-op below this many eligible sealed segments.
  std::size_t compact_min_segments = 2;
  /// Total live rows allowed; oldest sealed segments are dropped (and
  /// counted) beyond it. 0 = unlimited.
  std::uint64_t retention_budget_rows = 0;
  /// store.* metrics registry; not owned, nullptr disables.
  support::Telemetry* telemetry = nullptr;
};

/// What open()/fsck() found and did. The verdict doubles as the
/// `viprof_store fsck` exit code (core::FsckVerdict convention).
struct StoreRecovery {
  core::FsckVerdict verdict = core::FsckVerdict::kClean;
  bool fresh = false;             // no manifest, no segments: new store
  bool manifest_rebuilt = false;  // manifest missing/corrupt, rebuilt by scan

  std::uint64_t segments_loaded = 0;
  std::uint64_t segments_lost = 0;      // listed in manifest, file gone/dead
  std::uint64_t orphans_removed = 0;    // files no generation refers to
  std::uint64_t tombstones_cleared = 0;

  std::uint64_t intervals_salvaged = 0;
  std::uint64_t rows_salvaged = 0;
  /// Exact loss: manifest-authoritative counts minus what salvage yielded.
  std::uint64_t intervals_lost = 0;
  std::uint64_t rows_lost = 0;
  std::uint64_t lines_discarded = 0;

  std::string summary;  // one line, human-readable
  std::string details;  // per-segment findings
};

/// One (tick-window, session) query target; lo/hi are inclusive ticks and
/// an interval matches when fully contained. Empty session = all sessions.
struct WindowSpec {
  std::uint64_t tick_lo = 0;
  std::uint64_t tick_hi = ~0ull;
  std::string session;
};

class ProfileStore {
 public:
  explicit ProfileStore(os::Vfs& vfs, StoreConfig config = {});

  /// Replays the manifest, salvages segments, removes orphans and
  /// tombstoned files, rewrites damaged segments re-framed, and publishes a
  /// fresh manifest. Must be called (once) before ingest/queries.
  StoreRecovery open();

  /// Read-only dry run of open(): reports what recovery would find and do,
  /// touching nothing. Usable on a store opened by another instance.
  StoreRecovery fsck() const;

  /// Persists one interval (first_seq is assigned by the store). False when
  /// the store is not open or the simulated process was killed; an interval
  /// whose append was rejected by a fault is still queryable in memory but
  /// will be reported lost by fsck after a crash — counted, not silent.
  bool ingest(IntervalProfile iv);

  /// Seals the active segment now (normally automatic).
  bool seal_active();

  /// Merges eligible runs of sealed segments, then enforces the retention
  /// budget. Returns the number of compaction outputs written. With a pool,
  /// output contents build in parallel; the plan and therefore the result
  /// bytes are identical at any thread count.
  std::size_t compact(support::ThreadPool* pool = nullptr);

  /// True once a scheduled kCompactor kill fired; the store refuses all
  /// further work (discard it and re-open to model the process restart).
  bool killed() const;

  // -- Queries (all answers fold intervals in canonical order) --

  /// Aggregate profile over every interval contained in the window.
  core::Profile window_profile(const WindowSpec& w) const;

  /// Fig. 1-style top-N table over the window.
  std::string render_top(const WindowSpec& w, const std::vector<hw::EventKind>& events,
                         std::size_t top_n) const;

  /// Per-tick series for one (image, symbol): Tick / Count / Total / %.
  std::string render_series(const WindowSpec& w, const std::string& image,
                            const std::string& symbol, hw::EventKind event) const;

  /// Window-vs-window regression ranking (core::render_diff).
  std::string render_diff(const WindowSpec& before, const WindowSpec& after,
                          hw::EventKind event, std::size_t top_n) const;

  /// Segment inventory table (id, state, intervals, rows, tick span).
  std::string render_segments() const;

  /// One distinct session's live footprint in this store. `records` is the
  /// sum of the session's profile counts over every event — exactly the
  /// record count the service flushed, which is what the fleet ledger's
  /// stored side is audited against (viprof_fsck --fleet).
  struct StoredSession {
    std::string session;
    std::uint64_t intervals = 0;
    std::uint64_t records = 0;
  };

  /// Distinct sessions across all live intervals, sorted by id.
  std::vector<StoredSession> sessions() const;

  std::uint64_t live_intervals() const;
  std::uint64_t live_rows() const;
  std::size_t segment_count() const;
  const StoreConfig& config() const { return config_; }

 private:
  struct LoadedSegment {
    ManifestSegment meta;
    std::vector<IntervalProfile> intervals;
  };

  // All helpers assume mu_ is held.
  std::string path(const std::string& rel) const;
  bool check_kill();
  bool swap_manifest();
  Manifest build_manifest() const;
  bool start_active_locked();
  bool seal_active_locked();
  void enforce_retention_locked();
  void collect_window_locked(const WindowSpec& w,
                             std::vector<const IntervalProfile*>& out) const;
  core::Profile window_profile_locked(const WindowSpec& w) const;
  /// Read-only recovery analysis shared by open() and fsck(); defined in
  /// recovery.cpp.
  struct ScanState;
  void scan(ScanState& st) const;

  os::Vfs& vfs_;
  StoreConfig config_;
  // The whole store serialises on this one lock (manifest, segments,
  // queries) — the "store manifest mutex" of DESIGN.md §13. Contention
  // metrics publish into config_.telemetry when one is supplied.
  mutable support::TracedMutex mu_{"store.manifest"};

  bool open_ = false;
  bool killed_ = false;
  std::uint64_t kill_ops_ = 0;  // checkpoint counter driving should_kill

  std::uint64_t generation_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_segment_ = 0;
  std::uint64_t dropped_intervals_ = 0;
  std::uint64_t dropped_rows_ = 0;
  std::uint64_t dropped_segments_ = 0;

  /// Sealed segments in ingest order (ascending seq_lo); compaction only
  /// ever replaces consecutive runs, which preserves that order.
  std::vector<LoadedSegment> sealed_;
  std::optional<LoadedSegment> active_;
  SegmentWriter active_writer_{0};
  /// Non-empty only between the two manifest swaps of a compaction or
  /// retention drop: files adopted out of the live set, awaiting deletion.
  std::vector<std::string> tombstones_;

  support::Counter* ctr_ingest_intervals_ = nullptr;
  support::Counter* ctr_ingest_rows_ = nullptr;
  support::Counter* ctr_append_errors_ = nullptr;
  support::Counter* ctr_seals_ = nullptr;
  support::Counter* ctr_compactions_ = nullptr;
  support::Counter* ctr_compact_in_ = nullptr;
  support::Counter* ctr_compact_out_ = nullptr;
  support::Counter* ctr_dropped_intervals_ = nullptr;
  support::Counter* ctr_dropped_rows_ = nullptr;
  support::Counter* ctr_dropped_segments_ = nullptr;
};

}  // namespace viprof::store
