#include "vertical/vertical_profiler.hpp"

#include <algorithm>
#include <vector>

#include "support/format.hpp"

namespace viprof::vertical {

VerticalProfiler::VerticalProfiler(os::Machine& machine, const VerticalConfig& config)
    : machine_(&machine), config_(config) {}

hw::Cycles VerticalProfiler::on_vm_start(const jvm::VmStartInfo& info) {
  (void)info;
  return 1'500;  // monitor registry initialisation
}

hw::Cycles VerticalProfiler::on_invocation(const jvm::MethodInfo& method,
                                           std::uint64_t ops) {
  auto& m = metrics_[method.id];
  if (m.name.empty()) m.name = method.qualified_name();
  ++m.invocations;
  m.ops += ops;
  ++stats_.invocations_recorded;
  ++since_flush_;

  hw::Cycles cost =
      static_cast<hw::Cycles>(static_cast<double>(ops) * config_.per_op_cost);
  if (since_flush_ >= config_.flush_every_invocations) {
    flush();
    cost += config_.flush_base;
  }
  stats_.cost_cycles += cost;
  return cost;
}

hw::Cycles VerticalProfiler::on_method_compiled(const jvm::MethodInfo& method,
                                                const jvm::CodeObject& code) {
  trace_pending_ += "C " + method.qualified_name() + " " +
                    support::hex(code.address) + " " + std::to_string(code.size) + "\n";
  ++stats_.compiles_recorded;
  stats_.cost_cycles += config_.per_compile_cost;
  return config_.per_compile_cost;
}

hw::Cycles VerticalProfiler::on_gc_end(std::uint64_t new_epoch) {
  trace_pending_ += "G " + std::to_string(new_epoch) + "\n";
  ++stats_.gcs_recorded;
  stats_.cost_cycles += config_.per_gc_cost;
  return config_.per_gc_cost;
}

hw::Cycles VerticalProfiler::on_vm_shutdown() {
  flush();
  return config_.flush_base;
}

void VerticalProfiler::flush() {
  if (!trace_pending_.empty()) {
    machine_->vfs().append(config_.trace_path, trace_pending_);
    trace_pending_.clear();
  }
  since_flush_ = 0;
  ++stats_.flushes;
}

std::string VerticalProfiler::report(std::size_t top_n) const {
  std::vector<const PerMethod*> rows;
  rows.reserve(metrics_.size());
  std::uint64_t total_ops = 0;
  for (const auto& [id, m] : metrics_) {
    rows.push_back(&m);
    total_ops += m.ops;
  }
  std::sort(rows.begin(), rows.end(),
            [](const PerMethod* a, const PerMethod* b) { return a->ops > b->ops; });

  support::TextTable table({"Ops %", "Invocations", "Method"});
  std::size_t emitted = 0;
  for (const PerMethod* m : rows) {
    if (emitted >= top_n) break;
    const double pct =
        total_ops ? 100.0 * static_cast<double>(m->ops) / static_cast<double>(total_ops)
                  : 0.0;
    table.add_row({support::fixed(pct, 2), std::to_string(m->invocations), m->name});
    ++emitted;
  }
  return table.render();
}

}  // namespace viprof::vertical
