// "Vertical Profiling" comparator (Hauswirth et al., OOPSLA'04), the related
// system the paper compares against in Section 4.3: VM-instrumentation-based
// profiling that correlates software performance monitors inside the VM with
// application behaviour. It covers *only* the VM and application layers (no
// OS visibility) and pays for inline instrumentation at method granularity —
// the paper cites ~7% average overhead versus VIProf's ~5%.
//
// The model instruments every invocation (software monitor reads + trace
// record construction), logs compile/GC events, and periodically flushes its
// trace buffer. All costs flow through the same cycle accounting as VIProf,
// so the two are directly comparable in the Fig. 2 harness.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "jvm/hooks.hpp"
#include "os/machine.hpp"

namespace viprof::vertical {

struct VerticalConfig {
  /// Instrumentation cost per abstract instruction executed in app code
  /// (monitor reads + counter updates, amortised). The default lands near
  /// the published ~7% overhead on our CPI range.
  double per_op_cost = 0.34;
  hw::Cycles per_compile_cost = 900;    // compile-event trace record
  hw::Cycles per_gc_cost = 4'000;       // GC-boundary monitor dump
  hw::Cycles flush_base = 40'000;       // trace buffer flush
  std::uint64_t flush_every_invocations = 4'096;
  std::string trace_path = "vertical/trace.log";
};

struct VerticalStats {
  std::uint64_t invocations_recorded = 0;
  std::uint64_t compiles_recorded = 0;
  std::uint64_t gcs_recorded = 0;
  std::uint64_t flushes = 0;
  hw::Cycles cost_cycles = 0;
};

class VerticalProfiler : public jvm::VmEventListener {
 public:
  VerticalProfiler(os::Machine& machine, const VerticalConfig& config = {});

  hw::Cycles on_vm_start(const jvm::VmStartInfo& info) override;
  hw::Cycles on_invocation(const jvm::MethodInfo& method, std::uint64_t ops) override;
  hw::Cycles on_method_compiled(const jvm::MethodInfo& method,
                                const jvm::CodeObject& code) override;
  hw::Cycles on_gc_end(std::uint64_t new_epoch) override;
  hw::Cycles on_vm_shutdown() override;

  const VerticalStats& stats() const { return stats_; }

  /// Per-method metric table (invocations, ops) — what a vertical profile
  /// can show: VM/app detail, but no kernel or native attribution.
  std::string report(std::size_t top_n) const;

 private:
  void flush();

  os::Machine* machine_;
  VerticalConfig config_;
  VerticalStats stats_;
  struct PerMethod {
    std::string name;
    std::uint64_t invocations = 0;
    std::uint64_t ops = 0;
  };
  std::unordered_map<jvm::MethodId, PerMethod> metrics_;
  std::uint64_t since_flush_ = 0;
  std::string trace_pending_;
};

}  // namespace viprof::vertical
