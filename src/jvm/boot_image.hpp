// The JVM boot image: the VM's own runtime code (compiler, GC, class loader,
// scheduler glue), pre-compiled into a single opaque image — Jikes RVM's
// `RVM.code.image`. Stock OProfile sees it as a symbol-less blob; VIProf
// reads the accompanying `RVM.map` produced at build time and attributes
// samples to VM-internal Java methods (paper Section 3.2).
//
// The VM "executes" internal services (JIT compiles, collections, class
// loading, thread glue) by advancing the CPU inside these routines, so
// profiles naturally surface VM internals next to application methods.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/access_pattern.hpp"
#include "jvm/program.hpp"
#include "os/image.hpp"
#include "os/vfs.hpp"
#include "support/rng.hpp"

namespace viprof::jvm {

/// VM-internal activities that execute inside the boot image.
enum class VmService : std::uint8_t {
  kBaselineCompiler,
  kOptCompiler,
  kGc,
  kClassLoader,
  kGlue,  // main loop, yieldpoints, misc class library
};
inline constexpr std::size_t kVmServiceCount = 5;

struct BootRoutine {
  std::string name;       // fully qualified Java method name
  std::uint64_t offset;   // within the boot image
  std::uint64_t size;     // code bytes
  double weight;          // share of its service's cycles
  double cpi;
  std::uint64_t working_set;  // data footprint (GC routines get the heap)
  double random_frac;
  double accesses_per_op;
};

class BootImage {
 public:
  /// Builds the image, registers it with `registry`, and writes the
  /// symbol map into the vfs at `map_path` (build products, per the Jikes
  /// build flow). The flavor selects the runtime's identity: Jikes RVM's
  /// `RVM.code.image` or a CLR's `CLR.native.image` with clrjit/mscorwks
  /// internals — the profiler machinery is identical for both.
  BootImage(os::ImageRegistry& registry, os::Vfs& vfs, const std::string& map_path,
            VmFlavor flavor = VmFlavor::kJikesRvm);

  os::ImageId image() const { return image_; }
  std::uint64_t size() const { return size_; }
  const std::string& map_path() const { return map_path_; }

  const std::vector<BootRoutine>& routines(VmService service) const;

  /// Weighted pick of a routine for a service.
  const BootRoutine& pick(VmService service, support::Xoshiro256& rng) const;

  /// Every symbol (service routines + filler), offset-ordered.
  std::size_t symbol_count() const { return total_symbols_; }

 private:
  void add(VmService service, std::string name, std::uint64_t code_size, double weight,
           double cpi, std::uint64_t working_set, double random_frac);
  void add_filler(std::size_t count);
  void finalize(os::Image& img, os::Vfs& vfs);

  os::ImageId image_ = os::kInvalidImage;
  std::string map_path_;
  std::uint64_t cursor_ = 0;
  std::uint64_t size_ = 0;
  std::size_t total_symbols_ = 0;
  std::vector<BootRoutine> by_service_[kVmServiceCount];
  std::vector<std::pair<std::string, std::pair<std::uint64_t, std::uint64_t>>> filler_;
};

}  // namespace viprof::jvm
