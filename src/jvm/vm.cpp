#include "jvm/vm.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace viprof::jvm {

namespace {

constexpr hw::Cycles kGcBaseCost = 200'000;  // root scan, space flip
constexpr double kGcCyclesPerLiveByte = 0.5;
constexpr std::uint64_t kClassLoadOpsPerBytecode = 30;

std::uint64_t stable_hash(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

Vm::Vm(os::Machine& machine, const VmConfig& config)
    : machine_(&machine), config_(config), rng_(config.seed) {}

Vm::~Vm() = default;

void Vm::add_listener(VmEventListener* listener) { listeners_.push_back(listener); }
void Vm::add_service(os::BackgroundService* service) { services_.push_back(service); }

Heap& Vm::heap() { VIPROF_CHECK(heap_); return *heap_; }
const Heap& Vm::heap() const { VIPROF_CHECK(heap_); return *heap_; }
const BootImage& Vm::boot() const { VIPROF_CHECK(boot_); return *boot_; }
hw::Pid Vm::pid() const { VIPROF_CHECK(process_); return process_->pid(); }
const JitCompiler& Vm::jit() const { VIPROF_CHECK(jit_); return *jit_; }

const MethodInfo& Vm::method(MethodId id) const {
  VIPROF_CHECK(id < program_.methods.size());
  return program_.methods[id];
}

CodeId Vm::current_code(MethodId id) const {
  VIPROF_CHECK(id < runtime_.size());
  return runtime_[id].code;
}

void Vm::setup(const JavaProgramSpec& program) {
  VIPROF_CHECK(!setup_done_);
  program_ = program;
  VIPROF_CHECK(!program_.methods.empty());
  for (MethodId i = 0; i < program_.methods.size(); ++i) {
    VIPROF_CHECK(program_.methods[i].id == i);  // ids must be dense
  }

  const bool clr = program_.flavor == VmFlavor::kClr;
  const char* host_name = clr ? "clrhost" : "jikesrvm";
  process_ = &machine_->spawn(host_name);

  // The small C bootstrap executable that loads the boot image (paper §3.2:
  // "compiled into an object file and no additional work is needed").
  os::Image& exec = machine_->registry().create(host_name, os::ImageKind::kExecutable,
                                                96 * 1024);
  exec.symbols().add("main", 0, 4096);
  exec.symbols().add(clr ? "CorExeMain" : "createVM", 4096, 8192);
  exec.symbols().add("sysCall_bridge", 12288, 4096);
  machine_->loader().load_executable(*process_, exec.id());

  // Native libraries from the program spec.
  for (const NativeLibrarySpec& lib : program_.libraries) {
    std::uint64_t cursor = 0;
    os::Image* img = nullptr;
    {
      std::uint64_t total = 0;
      for (const auto& s : lib.symbols) total += s.code_size;
      img = &machine_->registry().create(lib.name, os::ImageKind::kSharedLib,
                                         std::max<std::uint64_t>(total, 4096), lib.stripped);
    }
    const os::Vma vma = machine_->loader().load_library(*process_, img->id());
    for (const NativeSymbolSpec& s : lib.symbols) {
      img->symbols().add(s.name, cursor, s.code_size);
      NativeTarget target;
      target.context = hw::ExecContext{vma.start + cursor, s.code_size,
                                       hw::CpuMode::kUser, process_->pid()};
      target.cpi = s.cpi;
      target.pattern.base = vma.start + img->size() + (cursor << 4);
      target.pattern.working_set = s.working_set;
      target.pattern.stride = 64;
      target.pattern.random_frac = s.random_frac;
      target.pattern.accesses_per_op = s.accesses_per_op;
      // Natives with ~1 access/op (memset, blitters) are streaming code;
      // they really do walk memory rather than sit in a hot region.
      target.pattern.hot_frac = s.accesses_per_op >= 0.9 ? 0.25 : 0.70;
      // hot_base is filled in once the heap exists (below).
      natives_.emplace_back(lib.name + "/" + s.name, target);
      cursor += s.code_size;
    }
  }

  // Boot image and heap.
  boot_ = std::make_unique<BootImage>(machine_->registry(), machine_->vfs(),
                                      clr ? "CLR.map" : "RVM.map", program_.flavor);
  boot_base_ = machine_->loader().map_at_anon_slot(*process_, boot_->image()).start;

  const os::Vma heap_vma =
      machine_->loader().map_anon(*process_, config_.heap.heap_bytes);
  heap_ = std::make_unique<Heap>(heap_vma.start, config_.heap);
  jit_ = std::make_unique<JitCompiler>(*heap_, config_.jit);
  for (auto& [key, target] : natives_) target.pattern.hot_base = stack_hot_base();

  runtime_.resize(program_.methods.size());
  cumulative_weight_.resize(program_.methods.size());
  double acc = 0.0;
  for (MethodId i = 0; i < program_.methods.size(); ++i) {
    acc += std::max(program_.methods[i].weight, 1e-9);
    cumulative_weight_[i] = acc;
    runtime_[i].pattern = pattern_for_method(program_.methods[i]);
  }

  VmStartInfo info;
  info.pid = process_->pid();
  info.heap_lo = heap_->base();
  info.heap_hi = heap_->end();
  info.boot = boot_.get();
  info.boot_base = boot_base_;
  info.heap = heap_.get();
  hw::Cycles cost = 0;
  for (VmEventListener* l : listeners_) cost += l->on_vm_start(info);
  charge_listeners(cost);

  // Announce allocation sites (two per method: long-lived and die-young,
  // each pinned to a deterministic bytecode index) so the memory profiler
  // knows every site before the first object exists. Skipped entirely when
  // the heap does not track objects — the baseline run is unperturbed.
  if (config_.heap.track_objects) {
    alloc_sites_.reserve(2 * program_.methods.size());
    hw::Cycles site_cost = 0;
    for (const MethodInfo& m : program_.methods) {
      const std::uint64_t bci_long = m.bytecode_size / 3;
      const std::uint64_t bci_young = (2 * m.bytecode_size) / 3;
      for (const std::uint64_t bci : {bci_long, bci_young}) {
        const auto site = static_cast<std::uint32_t>(alloc_sites_.size());
        alloc_sites_.push_back(m.qualified_name() + "@" + std::to_string(bci));
        for (VmEventListener* l : listeners_)
          site_cost += l->on_alloc_site(site, alloc_sites_.back());
      }
    }
    charge_listeners(site_cost);
  }

  setup_done_ = true;
}

hw::AccessPattern Vm::pattern_for_method(const MethodInfo& m) const {
  hw::AccessPattern p;
  const std::uint64_t data_span = heap_->data_bytes();
  const std::uint64_t ws = std::min<std::uint64_t>(m.working_set, data_span / 2);
  p.base = heap_->data_base() + stable_hash(m.id * 2654435761ULL) % (data_span - ws);
  p.working_set = ws;
  p.stride = m.stride;
  p.random_frac = m.random_frac;
  p.accesses_per_op = m.accesses_per_op;
  p.hot_base = stack_hot_base();
  return p;
}

const Vm::NativeTarget& Vm::native_target(const std::string& lib,
                                          const std::string& symbol) const {
  const std::string key = lib + "/" + symbol;
  for (const auto& [k, target] : natives_)
    if (k == key) return target;
  VIPROF_CHECK(false && "unknown native target");
  __builtin_unreachable();
}

void Vm::exec_chunk(const hw::ExecContext& ctx, std::uint64_t ops, double cpi,
                    const hw::AccessPattern& pattern) {
  if (ops == 0) return;
  const hw::SampledAccesses acc =
      machine_->sampler().sample(pattern, ops, machine_->cache());
  const double cycles_f = static_cast<double>(ops) * cpi +
                          acc.l1_misses * config_.l1_miss_penalty +
                          acc.l2_misses * config_.l2_miss_penalty;
  hw::ChunkEvents events;
  events.instructions = ops;
  events.l2_misses = acc.l2_misses;
  events.branch_mispredicts = static_cast<double>(ops) * config_.branch_mispredict_rate;
  // Data addresses that missed L2 ride along so a kObjDmiss overflow can be
  // delivered PEBS-style against the missing address, not the code PC.
  static_assert(hw::ChunkEvents::kMissAddrCap >= hw::SampledAccesses::kMissAddrCap);
  events.miss_addr_count = acc.miss_addr_count;
  for (std::uint32_t i = 0; i < acc.miss_addr_count; ++i)
    events.miss_addrs[i] = acc.miss_addrs[i];
  machine_->cpu().set_context(ctx);
  machine_->cpu().advance(std::max<hw::Cycles>(1, static_cast<hw::Cycles>(cycles_f)),
                          events);
  if (!in_service_) run_background_services();
}

void Vm::run_background_services() {
  in_service_ = true;
  for (os::BackgroundService* service : services_) {
    int guard = 0;
    while (auto work = service->next_work(machine_->cpu().now())) {
      VIPROF_CHECK(++guard < 10'000);
      const hw::Cycles before = machine_->cpu().now();
      // Service chunks carry their full cost in `cycles`; they bypass the
      // cache sampler (the daemon's own misses are folded into that cost)
      // but still generate instruction/miss events so heavy profiling can
      // sample the profiler itself.
      hw::ChunkEvents events;
      events.instructions = work->ops;
      events.l2_misses = static_cast<double>(work->cycles) *
                         work->pattern.accesses_per_op * 0.002;
      machine_->cpu().set_context(work->context);
      if (work->cycles > 0) machine_->cpu().advance(work->cycles, events);
      stats_.service_cycles += machine_->cpu().now() - before;
    }
  }
  in_service_ = false;
}

hw::Cycles Vm::charge_listeners(hw::Cycles cost_sum) {
  if (cost_sum == 0) return 0;
  // Hook bodies execute either in the agent's own library or inlined in the
  // VM; pick the first listener-provided context, else boot-image glue.
  const hw::ExecContext* ctx = nullptr;
  for (VmEventListener* l : listeners_) {
    if ((ctx = l->agent_context()) != nullptr) break;
  }
  hw::ExecContext where;
  if (ctx != nullptr) {
    where = *ctx;
    where.pid = process_->pid();
  } else {
    const BootRoutine& glue = boot_->routines(VmService::kGlue).front();
    where = hw::ExecContext{boot_base_ + glue.offset, glue.size, hw::CpuMode::kUser,
                            process_->pid()};
  }
  // Hook costs are fully specified in cycles; bypass the cache sampler so
  // an attached profiler perturbs *time*, not the workload's miss stream
  // (keeps base vs profiled runs exactly comparable, as on real hardware
  // where the agent's footprint is negligible next to the heap).
  hw::ChunkEvents events;
  events.instructions = std::max<std::uint64_t>(1, cost_sum / 2);
  machine_->cpu().set_context(where);
  machine_->cpu().advance(cost_sum, events);
  stats_.agent_cycles += cost_sum;
  if (!in_service_) run_background_services();
  return cost_sum;
}

void Vm::exec_service(VmService service, hw::Cycles budget) {
  const hw::Cycles start = machine_->cpu().now();
  while (machine_->cpu().now() - start < budget) {
    const BootRoutine& r = boot_->pick(service, rng_);
    hw::ExecContext ctx{boot_base_ + r.offset, r.size, hw::CpuMode::kUser,
                        process_->pid()};
    hw::AccessPattern p;
    p.base = heap_->data_base() + (stable_hash(r.offset) % heap_->data_bytes()) / 2;
    p.working_set = std::min<std::uint64_t>(r.working_set, heap_->data_bytes() / 2);
    p.stride = 64;
    p.random_frac = r.random_frac;
    p.accesses_per_op = r.accesses_per_op;
    // The collector genuinely walks the heap; compilers/class loaders work
    // over method-sized IR with decent locality.
    p.hot_frac = service == VmService::kGc ? 0.30 : 0.80;
    p.hot_base = stack_hot_base();
    const hw::Cycles remaining = budget - (machine_->cpu().now() - start);
    const auto ops = std::max<std::uint64_t>(
        64, std::min<std::uint64_t>(config_.chunk_ops,
                                    static_cast<std::uint64_t>(
                                        static_cast<double>(remaining) / r.cpi)));
    exec_chunk(ctx, ops, r.cpi, p);
    stats_.vm_ops += ops;
  }
}

void Vm::compile_method(MethodId id, OptLevel level) {
  MethodRuntime& rt = runtime_[id];
  const MethodInfo& info = method(id);

  if (!rt.klass_loaded) {
    // First touch of the method: charge class loading / resolution.
    exec_service(VmService::kClassLoader,
                 info.bytecode_size * kClassLoadOpsPerBytecode / 10);
    rt.klass_loaded = true;
  }

  const CompileOutcome outcome = jit_->compile(info, level, rt.code);
  exec_service(level == OptLevel::kBaseline ? VmService::kBaselineCompiler
                                            : VmService::kOptCompiler,
               outcome.cost);
  rt.code = outcome.code;
  rt.level = level;
  ++stats_.compiles[static_cast<std::size_t>(level)];

  hw::Cycles cost = 0;
  for (VmEventListener* l : listeners_)
    cost += l->on_method_compiled(info, heap_->code(outcome.code));
  charge_listeners(cost);

  if (heap_->gc_needed()) do_gc();
}

void Vm::force_compile(MethodId id, OptLevel level) { compile_method(id, level); }

void Vm::set_aggressive_methods(const std::vector<std::string>& qualified_names) {
  aggressive_.clear();
  for (const std::string& name : qualified_names) {
    for (const MethodInfo& m : program_.methods) {
      if (m.qualified_name() == name) aggressive_.push_back(m.id);
    }
  }
}

void Vm::alloc_app_objects(MethodRuntime& rt, const MethodInfo& info,
                           std::uint64_t bytes, hw::Cycles& hook_cost) {
  // Carve the chunk's allocation volume into discrete objects; what doesn't
  // fill a whole object carries to the next chunk so total volume — and
  // with it GC cadence — matches plain alloc_data() exactly.
  rt.alloc_carry += bytes;
  const std::uint64_t obj_bytes = std::max<std::uint64_t>(info.alloc_object_bytes, 16);
  const auto site_base = static_cast<std::uint32_t>(2 * info.id);
  while (rt.alloc_carry >= obj_bytes) {
    rt.alloc_carry -= obj_bytes;
    // Every fourth object is long-lived (the method's configured lifetime);
    // the rest die young. Deterministic by per-method sequence number.
    const bool long_lived = rt.obj_seq % 4 == 0;
    ++rt.obj_seq;
    const std::uint32_t site = long_lived ? site_base : site_base + 1;
    const std::uint32_t lifetime = long_lived ? info.alloc_object_lifetime : 0;
    const ObjId id = heap_->alloc_object(site, obj_bytes, lifetime);
    if (id == kInvalidObject) continue;  // counted untracked fallback
    for (VmEventListener* l : listeners_)
      hook_cost += l->on_object_alloc(heap_->object(id));
    if (long_lived) rt.anchor = id;  // accesses chase the newest hot object
  }
}

void Vm::do_gc() {
  const std::uint64_t closing_epoch = heap_->epoch();
  const hw::Cycles gc_begin = machine_->cpu().now();
  hw::Cycles cost = 0;
  for (VmEventListener* l : listeners_) cost += l->on_epoch_end(closing_epoch, false);
  charge_listeners(cost);

  hw::Cycles move_cost = 0;
  const GcStats gc = heap_->collect(
      [&](const CodeObject& moved, hw::Address old_address) {
        for (VmEventListener* l : listeners_)
          move_cost += l->on_method_moved(method(moved.method), old_address, moved);
      },
      [&](const DataObject& obj, hw::Address old_address) {
        for (VmEventListener* l : listeners_)
          move_cost += l->on_object_moved(obj, old_address);
      },
      [&](const DataObject& obj) {
        for (VmEventListener* l : listeners_) move_cost += l->on_object_dead(obj);
      });
  ++stats_.collections;

  // The collector's own execution: copy/scan work proportional to live bytes.
  exec_service(VmService::kGc,
               kGcBaseCost + static_cast<hw::Cycles>(
                                 static_cast<double>(gc.live_bytes) * kGcCyclesPerLiveByte));
  charge_listeners(move_cost);

  hw::Cycles end_cost = 0;
  for (VmEventListener* l : listeners_) end_cost += l->on_gc_end(heap_->epoch());
  charge_listeners(end_cost);

  // GC-epoch span marker: brackets the whole epoch boundary (agent map
  // write, collection, post-GC hooks). `arg` carries the epoch that closed.
  machine_->telemetry().spans().record("jvm.gc", "gc", gc_begin,
                                       machine_->cpu().now(), closing_epoch);
}

void Vm::force_gc() { do_gc(); }

void Vm::maybe_glue(std::uint64_t ops_just_executed) {
  if (program_.vm_glue_frac <= 0.0) return;
  glue_debt_ops_ += ops_just_executed;
  const auto threshold = static_cast<std::uint64_t>(
      static_cast<double>(config_.chunk_ops) / std::max(program_.vm_glue_frac, 1e-6));
  if (glue_debt_ops_ < threshold) return;
  const auto glue_ops = static_cast<std::uint64_t>(
      static_cast<double>(glue_debt_ops_) * program_.vm_glue_frac);
  glue_debt_ops_ = 0;
  exec_service(VmService::kGlue, static_cast<hw::Cycles>(static_cast<double>(glue_ops) * 1.2));
}

MethodId Vm::pick_method() {
  // Phase behaviour (paper's motivation for *dynamic* re-optimisation):
  // a rotating quarter of the methods receives 70% of invocations for
  // `phase_ops` instructions, then the hot set is re-drawn.
  if (program_.phase_ops > 0) {
    if (stats_.app_ops >= next_phase_at_ops_) {
      phase_set_.clear();
      const std::size_t n = std::max<std::size_t>(1, program_.methods.size() / 4);
      for (std::size_t i = 0; i < n; ++i)
        phase_set_.push_back(static_cast<MethodId>(rng_.below(program_.methods.size())));
      next_phase_at_ops_ = stats_.app_ops + program_.phase_ops;
    }
    if (!phase_set_.empty() && rng_.chance(0.7)) {
      return phase_set_[rng_.below(phase_set_.size())];
    }
  }
  const double total = cumulative_weight_.back();
  const double x = rng_.uniform() * total;
  const auto it = std::lower_bound(cumulative_weight_.begin(), cumulative_weight_.end(), x);
  return static_cast<MethodId>(it - cumulative_weight_.begin());
}

void Vm::invoke(MethodId id) {
  MethodRuntime& rt = runtime_[id];
  const MethodInfo& info = method(id);

  if (rt.code == kInvalidCode) {
    const bool aggressive =
        std::find(aggressive_.begin(), aggressive_.end(), id) != aggressive_.end();
    compile_method(id, aggressive ? OptLevel::kOpt2 : OptLevel::kBaseline);
    if (aggressive) rt.accumulated_ops = config_.recompile.opt2_ops;
  } else {
    const OptLevel target = config_.recompile.target_level(rt.accumulated_ops);
    if (static_cast<int>(target) > static_cast<int>(rt.level)) {
      compile_method(id, target);
    }
  }

  ++rt.invocations;
  ++stats_.invocations;

  const std::uint64_t total_ops = info.ops_per_invocation;
  double outcall_frac = 0.0;
  for (const OutCall& oc : info.outcalls) outcall_frac += oc.frac_ops;
  VIPROF_CHECK(outcall_frac < 0.95);
  const auto app_ops = static_cast<std::uint64_t>(
      static_cast<double>(total_ops) * (1.0 - outcall_frac));

  // JIT-code portion, chunked; allocation accrues with execution.
  const double cpi = info.base_cpi * jit_->cpi_scale(rt.level);
  const bool track = config_.heap.track_objects;
  hw::Cycles obj_hook_cost = 0;
  std::uint64_t remaining = app_ops;
  while (remaining > 0) {
    const std::uint64_t ops = std::min<std::uint64_t>(config_.chunk_ops, remaining);
    remaining -= ops;
    const CodeObject& body = heap_->code(rt.code);
    hw::ExecContext ctx{body.address, body.size, hw::CpuMode::kUser, process_->pid()};
    if (track && rt.anchor != kInvalidObject) {
      // The method's data accesses follow its anchor object — when GC moved
      // it, the pattern moves too, so post-GC misses land on live objects.
      const DataObject& a = heap_->object(rt.anchor);
      if (a.dead) {
        rt.anchor = kInvalidObject;
      } else {
        rt.pattern.base = a.address;
      }
    }
    exec_chunk(ctx, ops, cpi, rt.pattern);
    stats_.app_ops += ops;
    const auto alloc_bytes = static_cast<std::uint64_t>(
        static_cast<double>(ops) * info.alloc_bytes_per_op);
    if (track && info.alloc_object_bytes > 0) {
      alloc_app_objects(rt, info, alloc_bytes, obj_hook_cost);
    } else {
      heap_->alloc_data(alloc_bytes);
    }
    if (heap_->gc_needed()) do_gc();
  }
  if (obj_hook_cost > 0) charge_listeners(obj_hook_cost);
  rt.accumulated_ops += app_ops;
  maybe_glue(app_ops);

  // Inline-instrumentation hooks (vertical profiling). Costs are small and
  // frequent, so they accrue as a debt and are charged in batches.
  hw::Cycles instr_cost = 0;
  for (VmEventListener* l : listeners_) instr_cost += l->on_invocation(info, app_ops);
  if (instr_cost > 0) {
    instr_debt_ += instr_cost;
    if (instr_debt_ >= 20'000) {
      charge_listeners(instr_debt_);
      instr_debt_ = 0;
    }
  }

  // Out-of-JIT portions: native library calls and system calls. The return
  // address into the calling JIT body rides along for call-graph profiling.
  const hw::Address caller_pc = heap_->code(rt.code).address + heap_->code(rt.code).size / 2;
  for (const OutCall& oc : info.outcalls) {
    auto ops_left = static_cast<std::uint64_t>(
        static_cast<double>(total_ops) * oc.frac_ops);
    if (oc.kind == OutCall::Kind::kNative) {
      const NativeTarget& target = native_target(oc.library, oc.symbol);
      hw::ExecContext ctx = target.context;
      ctx.caller_pc = caller_pc;
      while (ops_left > 0) {
        const std::uint64_t ops = std::min<std::uint64_t>(config_.chunk_ops, ops_left);
        ops_left -= ops;
        exec_chunk(ctx, ops, target.cpi, target.pattern);
        stats_.native_ops += ops;
      }
    } else {
      const os::KernelRoutine& kr = machine_->kernel().routine(oc.symbol);
      hw::ExecContext ctx = machine_->kernel().context(oc.symbol, process_->pid());
      ctx.caller_pc = caller_pc;
      while (ops_left > 0) {
        const std::uint64_t ops = std::min<std::uint64_t>(config_.chunk_ops, ops_left);
        ops_left -= ops;
        exec_chunk(ctx, ops, kr.cpi, kr.pattern);
        stats_.kernel_ops += ops;
      }
    }
  }
}

bool Vm::step(std::uint64_t max_app_ops) {
  VIPROF_CHECK(setup_done_);
  if (!running_) {
    stats_ = RunStats{};
    run_start_ = machine_->cpu().now();
    running_ = true;
  }
  const std::uint64_t target =
      std::min(program_.total_app_ops,
               stats_.app_ops + std::max<std::uint64_t>(max_app_ops, 1));
  while (stats_.app_ops < target) {
    invoke(pick_method());
  }
  return stats_.app_ops < program_.total_app_ops;
}

RunStats Vm::finish() {
  VIPROF_CHECK(running_);
  // Final epoch closes at shutdown: the agent writes the last code map.
  hw::Cycles cost = 0;
  for (VmEventListener* l : listeners_) cost += l->on_epoch_end(heap_->epoch(), true);
  for (VmEventListener* l : listeners_) cost += l->on_vm_shutdown();
  charge_listeners(cost);

  for (std::size_t i = 0; i < kOptLevelCount; ++i)
    stats_.compiles[i] = jit_->compiles_at(static_cast<OptLevel>(i));
  stats_.cycles = machine_->cpu().now() - run_start_;
  running_ = false;
  return stats_;
}

RunStats Vm::run() {
  while (step(~0ull / 2)) {
  }
  return finish();
}

}  // namespace viprof::jvm
