#include "jvm/heap.hpp"

#include "support/check.hpp"

namespace viprof::jvm {

namespace {
constexpr std::uint64_t kCodeAlign = 16;

std::uint64_t align_up(std::uint64_t v) { return (v + kCodeAlign - 1) & ~(kCodeAlign - 1); }
}  // namespace

Heap::Heap(hw::Address base, const HeapConfig& config) : base_(base), config_(config) {
  VIPROF_CHECK(config.code_semi_bytes > 0);
  VIPROF_CHECK(2 * config.code_semi_bytes + config.mature_code_bytes <= config.heap_bytes);
}

hw::Address Heap::semispace_base(std::uint32_t which) const {
  return base_ + static_cast<std::uint64_t>(which) * config_.code_semi_bytes;
}

hw::Address Heap::data_base() const {
  return base_ + 2 * config_.code_semi_bytes + config_.mature_code_bytes;
}

std::uint64_t Heap::data_bytes() const {
  return config_.heap_bytes - (2 * config_.code_semi_bytes + config_.mature_code_bytes);
}

CodeObject& Heap::alloc_code(MethodId method, std::uint64_t size, OptLevel level) {
  const std::uint64_t aligned = align_up(size);
  VIPROF_CHECK(semi_cursor_ + aligned <= config_.code_semi_bytes);
  CodeObject obj;
  obj.id = static_cast<CodeId>(code_.size());
  obj.method = method;
  obj.address = semispace_base(active_semi_) + semi_cursor_;
  obj.size = size;
  obj.level = level;
  obj.epoch_compiled = epoch_;
  semi_cursor_ += aligned;
  code_.push_back(obj);
  return code_.back();
}

void Heap::kill_code(CodeId id) { code(id).dead = true; }

void Heap::alloc_data(std::uint64_t bytes) { data_since_gc_ += bytes; }

bool Heap::gc_needed() const {
  // Either the data nursery budget is exhausted or the code semispace is
  // nearly full (keep 1/8 headroom so the next compile always fits).
  return data_since_gc_ >= config_.nursery_data_bytes ||
         semi_cursor_ >= config_.code_semi_bytes - config_.code_semi_bytes / 8;
}

GcStats Heap::collect(const MoveCallback& on_move) {
  GcStats stats;
  stats.epoch = epoch_;

  const std::uint32_t to_space = active_semi_ ^ 1u;
  std::uint64_t to_cursor = 0;

  for (CodeObject& obj : code_) {
    if (obj.dead || obj.in_mature) continue;
    const hw::Address old_address = obj.address;
    ++obj.survivals;
    if (obj.survivals >= config_.mature_age) {
      VIPROF_CHECK(mature_cursor_ + align_up(obj.size) <= config_.mature_code_bytes);
      obj.address = base_ + 2 * config_.code_semi_bytes + mature_cursor_;
      mature_cursor_ += align_up(obj.size);
      obj.in_mature = true;
      ++stats.code_promoted;
    } else {
      obj.address = semispace_base(to_space) + to_cursor;
      to_cursor += align_up(obj.size);
    }
    ++stats.code_moved;
    stats.live_bytes += obj.size;
    if (on_move) on_move(obj, old_address);
  }

  for (CodeObject& obj : code_) {
    if (obj.dead && !obj.reclaimed) {
      obj.reclaimed = true;  // a dead nursery body is simply not copied
      ++stats.code_reclaimed;
    }
  }

  stats.live_bytes +=
      static_cast<std::uint64_t>(static_cast<double>(data_since_gc_) * config_.data_survival);

  active_semi_ = to_space;
  semi_cursor_ = to_cursor;
  data_since_gc_ = 0;
  ++epoch_;
  return stats;
}

const CodeObject& Heap::code(CodeId id) const {
  VIPROF_CHECK(id < code_.size());
  return code_[id];
}

CodeObject& Heap::code(CodeId id) {
  VIPROF_CHECK(id < code_.size());
  return code_[id];
}

std::uint64_t Heap::nursery_code_bytes() const {
  std::uint64_t total = 0;
  for (const CodeObject& obj : code_)
    if (!obj.dead && !obj.in_mature) total += align_up(obj.size);
  return total;
}

}  // namespace viprof::jvm
