#include "jvm/heap.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace viprof::jvm {

namespace {
constexpr std::uint64_t kCodeAlign = 16;

std::uint64_t align_up(std::uint64_t v) { return (v + kCodeAlign - 1) & ~(kCodeAlign - 1); }
}  // namespace

Heap::Heap(hw::Address base, const HeapConfig& config) : base_(base), config_(config) {
  VIPROF_CHECK(config.code_semi_bytes > 0);
  VIPROF_CHECK(2 * config.code_semi_bytes + config.mature_code_bytes <= config.heap_bytes);
}

hw::Address Heap::semispace_base(std::uint32_t which) const {
  return base_ + static_cast<std::uint64_t>(which) * config_.code_semi_bytes;
}

hw::Address Heap::data_base() const {
  return base_ + 2 * config_.code_semi_bytes + config_.mature_code_bytes;
}

std::uint64_t Heap::data_bytes() const {
  return config_.heap_bytes - (2 * config_.code_semi_bytes + config_.mature_code_bytes);
}

CodeObject& Heap::alloc_code(MethodId method, std::uint64_t size, OptLevel level) {
  const std::uint64_t aligned = align_up(size);
  VIPROF_CHECK(semi_cursor_ + aligned <= config_.code_semi_bytes);
  CodeObject obj;
  obj.id = static_cast<CodeId>(code_.size());
  obj.method = method;
  obj.address = semispace_base(active_semi_) + semi_cursor_;
  obj.size = size;
  obj.level = level;
  obj.epoch_compiled = epoch_;
  semi_cursor_ += aligned;
  code_.push_back(obj);
  return code_.back();
}

void Heap::kill_code(CodeId id) { code(id).dead = true; }

void Heap::alloc_data(std::uint64_t bytes) { data_since_gc_ += bytes; }

std::uint64_t Heap::object_semi_bytes() const {
  return config_.data_semi_bytes != 0 ? config_.data_semi_bytes : data_bytes() / 4;
}

hw::Address Heap::object_semispace_base(std::uint32_t which) const {
  return data_base() + static_cast<std::uint64_t>(which) * object_semi_bytes();
}

hw::Address Heap::mature_data_base() const {
  return data_base() + 2 * object_semi_bytes();
}

ObjId Heap::alloc_object(std::uint32_t site, std::uint64_t bytes, std::uint32_t lifetime) {
  // The nursery budget is charged unconditionally so GC cadence is identical
  // whether or not the object itself could be tracked.
  data_since_gc_ += bytes;
  const std::uint64_t aligned = align_up(std::max<std::uint64_t>(bytes, 1));
  if (!config_.track_objects || obj_semi_cursor_ + aligned > object_semi_bytes()) {
    untracked_alloc_bytes_ += bytes;
    return kInvalidObject;
  }
  DataObject obj;
  obj.id = static_cast<ObjId>(objects_.size());
  obj.site = site;
  obj.address = object_semispace_base(obj_active_semi_) + obj_semi_cursor_;
  obj.size = bytes;
  obj.lifetime = lifetime;
  obj_semi_cursor_ += aligned;
  objects_.push_back(obj);
  live_objects_.push_back(obj.id);
  return obj.id;
}

bool Heap::gc_needed() const {
  // Either the data nursery budget is exhausted or the code semispace is
  // nearly full (keep 1/8 headroom so the next compile always fits).
  return data_since_gc_ >= config_.nursery_data_bytes ||
         semi_cursor_ >= config_.code_semi_bytes - config_.code_semi_bytes / 8;
}

GcStats Heap::collect(const MoveCallback& on_move,
                      const ObjectMoveCallback& on_obj_move,
                      const ObjectDeadCallback& on_obj_dead) {
  GcStats stats;
  stats.epoch = epoch_;

  const std::uint32_t to_space = active_semi_ ^ 1u;
  std::uint64_t to_cursor = 0;

  for (CodeObject& obj : code_) {
    if (obj.dead || obj.in_mature) continue;
    const hw::Address old_address = obj.address;
    ++obj.survivals;
    if (obj.survivals >= config_.mature_age) {
      VIPROF_CHECK(mature_cursor_ + align_up(obj.size) <= config_.mature_code_bytes);
      obj.address = base_ + 2 * config_.code_semi_bytes + mature_cursor_;
      mature_cursor_ += align_up(obj.size);
      obj.in_mature = true;
      ++stats.code_promoted;
    } else {
      obj.address = semispace_base(to_space) + to_cursor;
      to_cursor += align_up(obj.size);
    }
    ++stats.code_moved;
    stats.live_bytes += obj.size;
    if (on_move) on_move(obj, old_address);
  }

  for (CodeObject& obj : code_) {
    if (obj.dead && !obj.reclaimed) {
      obj.reclaimed = true;  // a dead nursery body is simply not copied
      ++stats.code_reclaimed;
    }
  }

  stats.live_bytes +=
      static_cast<std::uint64_t>(static_cast<double>(data_since_gc_) * config_.data_survival);

  if (config_.track_objects) {
    // Copying collection over tracked data objects, mirroring the code path:
    // survivors move to the other object semispace, long-lived ones promote
    // to the mature data region (and stop moving), expired ones die. The
    // live list is rebuilt in place so collection stays O(live), not
    // O(ever-allocated). Note: tracked-object bytes are deliberately *not*
    // added to stats.live_bytes — data survival volume is already modelled
    // by data_survival above, and GC cost must not shift when tracking is
    // enabled.
    const std::uint32_t obj_to = obj_active_semi_ ^ 1u;
    std::uint64_t obj_to_cursor = 0;
    std::vector<ObjId> still_live;
    still_live.reserve(live_objects_.size());
    for (const ObjId id : live_objects_) {
      DataObject& obj = objects_[id];
      ++obj.survivals;
      if (obj.survivals > obj.lifetime) {
        obj.dead = true;
        obj.reclaimed = true;  // a dead object is simply not copied
        ++stats.objects_dead;
        if (on_obj_dead) on_obj_dead(obj);
        continue;
      }
      stats.obj_live_bytes += obj.size;
      if (obj.in_mature) {  // mature objects no longer move
        still_live.push_back(id);
        continue;
      }
      const hw::Address old_address = obj.address;
      const std::uint64_t aligned = align_up(std::max<std::uint64_t>(obj.size, 1));
      if (obj.survivals >= config_.object_mature_age &&
          mature_data_cursor_ + aligned <=
              data_bytes() - 2 * object_semi_bytes()) {
        obj.address = mature_data_base() + mature_data_cursor_;
        mature_data_cursor_ += aligned;
        obj.in_mature = true;
        ++stats.objects_promoted;
      } else {
        obj.address = object_semispace_base(obj_to) + obj_to_cursor;
        obj_to_cursor += aligned;
      }
      ++stats.objects_moved;
      still_live.push_back(id);
      if (on_obj_move) on_obj_move(obj, old_address);
    }
    live_objects_ = std::move(still_live);
    obj_active_semi_ = obj_to;
    obj_semi_cursor_ = obj_to_cursor;
  }

  active_semi_ = to_space;
  semi_cursor_ = to_cursor;
  data_since_gc_ = 0;
  ++epoch_;
  return stats;
}

const DataObject& Heap::object(ObjId id) const {
  VIPROF_CHECK(id < objects_.size());
  return objects_[id];
}

const CodeObject& Heap::code(CodeId id) const {
  VIPROF_CHECK(id < code_.size());
  return code_[id];
}

CodeObject& Heap::code(CodeId id) {
  VIPROF_CHECK(id < code_.size());
  return code_[id];
}

std::uint64_t Heap::nursery_code_bytes() const {
  std::uint64_t total = 0;
  for (const CodeObject& obj : code_)
    if (!obj.dead && !obj.in_mature) total += align_up(obj.size);
  return total;
}

}  // namespace viprof::jvm
