// GC-managed JVM heap with *code and data interwound*, as in Jikes RVM.
//
// Code bodies are allocated in a copying nursery (two semispaces); each
// collection copies live bodies to the other semispace — i.e. moves them —
// until a body has survived `mature_age` collections, after which it is
// promoted to a mature region and stops moving (the paper notes that mature
// code reduces runtime profiling work). Data allocation is tracked by volume
// only: it fills the nursery and triggers collections, and a configurable
// fraction survives, driving GC cost.
//
// Each collection closes one *execution epoch* — the unit VIProf's code maps
// are keyed by.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/types.hpp"
#include "jvm/method.hpp"

namespace viprof::jvm {

using CodeId = std::uint32_t;
inline constexpr CodeId kInvalidCode = ~0u;

using ObjId = std::uint32_t;
inline constexpr ObjId kInvalidObject = ~0u;

/// A tracked heap data object (memory profiling). Objects live in a copying
/// data nursery mirroring the code semispaces: each collection moves the
/// survivors, promotes long-lived ones to a mature data region, and drops
/// the dead. `site` names the allocation site (method + bytecode index) that
/// created it — the unit the memory profiler aggregates by.
struct DataObject {
  ObjId id = kInvalidObject;
  std::uint32_t site = 0;     // allocation-site index (VM-wide)
  hw::Address address = 0;
  std::uint64_t size = 0;
  std::uint32_t lifetime = 0;  // GCs to survive before dying (0 = die young)
  std::uint32_t survivals = 0;
  bool in_mature = false;
  bool dead = false;       // collected; address no longer meaningful
  bool reclaimed = false;  // space recycled
};

struct CodeObject {
  CodeId id = kInvalidCode;
  MethodId method = kInvalidMethod;
  hw::Address address = 0;
  std::uint64_t size = 0;
  OptLevel level = OptLevel::kBaseline;
  std::uint64_t epoch_compiled = 0;
  std::uint32_t survivals = 0;
  bool in_mature = false;
  bool dead = false;       // superseded by recompilation; reclaimed at next GC
  bool reclaimed = false;  // space already recycled (dead before last GC)
};

struct HeapConfig {
  std::uint64_t heap_bytes = 64ull << 20;
  std::uint64_t code_semi_bytes = 8ull << 20;   // two of these, then mature
  std::uint64_t mature_code_bytes = 16ull << 20;
  std::uint64_t nursery_data_bytes = 8ull << 20;  // data budget per epoch
  double data_survival = 0.15;   // fraction of nursery data that is live at GC
  std::uint32_t mature_age = 3;  // survivals before promotion (stops moving)

  // --- Object tracking (memory profiling) -------------------------------
  // Off by default: alloc_object() then degrades to plain alloc_data()
  // volume accounting and collect() touches no object state, so builds with
  // the memory profiler compiled in but idle behave byte-identically to
  // before it existed.
  bool track_objects = false;
  // Two object semispaces carved from the front of the data region; the
  // remainder is the mature data region. 0 = data_bytes() / 4 each.
  std::uint64_t data_semi_bytes = 0;
  std::uint32_t object_mature_age = 3;  // survivals before data promotion
};

struct GcStats {
  std::uint64_t epoch = 0;          // epoch just closed
  std::uint64_t code_moved = 0;     // bodies copied to the other semispace
  std::uint64_t code_promoted = 0;  // bodies promoted to mature
  std::uint64_t code_reclaimed = 0; // dead bodies dropped
  std::uint64_t live_bytes = 0;     // data+code copied (drives GC cost)
  std::uint64_t objects_moved = 0;     // tracked objects copied/promoted
  std::uint64_t objects_promoted = 0;  // tracked objects now mature
  std::uint64_t objects_dead = 0;      // tracked objects collected
  std::uint64_t obj_live_bytes = 0;    // bytes of tracked objects surviving
};

class Heap {
 public:
  /// `base` is where the heap's anon mapping starts in the process space.
  Heap(hw::Address base, const HeapConfig& config);

  hw::Address base() const { return base_; }
  hw::Address end() const { return base_ + config_.heap_bytes; }
  bool contains(hw::Address a) const { return a >= base_ && a < end(); }
  const HeapConfig& config() const { return config_; }

  /// Data region base — methods' access patterns point here.
  hw::Address data_base() const;
  std::uint64_t data_bytes() const;

  /// Current execution epoch (== number of collections completed).
  std::uint64_t epoch() const { return epoch_; }

  /// Allocates a code body in the nursery; may require a GC first
  /// (gc_needed() turns true when the semispace would overflow).
  CodeObject& alloc_code(MethodId method, std::uint64_t size, OptLevel level);

  /// Marks a body dead (superseded); space reclaimed at the next GC.
  void kill_code(CodeId id);

  /// Records `bytes` of data allocation.
  void alloc_data(std::uint64_t bytes);

  /// Allocates a *tracked* data object of `bytes` for allocation site
  /// `site`, dying after surviving `lifetime` collections. Always accounts
  /// the bytes toward the data nursery budget (identical GC cadence to
  /// alloc_data); when tracking is off or the object semispace is full the
  /// volume is still charged but the object itself is untracked and
  /// kInvalidObject is returned — a counted degradation, never an abort.
  ObjId alloc_object(std::uint32_t site, std::uint64_t bytes, std::uint32_t lifetime);

  bool gc_needed() const;

  /// One copying collection. `on_move` fires for every body whose address
  /// changed (after the move). Closes the current epoch. `on_obj_move` /
  /// `on_obj_dead` fire for tracked data objects that moved or died (both
  /// optional; only invoked when object tracking is on).
  using MoveCallback = std::function<void(const CodeObject& moved, hw::Address old_address)>;
  using ObjectMoveCallback =
      std::function<void(const DataObject& moved, hw::Address old_address)>;
  using ObjectDeadCallback = std::function<void(const DataObject& dead)>;
  GcStats collect(const MoveCallback& on_move,
                  const ObjectMoveCallback& on_obj_move = {},
                  const ObjectDeadCallback& on_obj_dead = {});

  const CodeObject& code(CodeId id) const;
  CodeObject& code(CodeId id);
  const std::vector<CodeObject>& all_code() const { return code_; }

  const DataObject& object(ObjId id) const;
  const std::vector<DataObject>& all_objects() const { return objects_; }
  /// ObjIds of tracked objects currently live (rebuilt at each GC).
  const std::vector<ObjId>& live_objects() const { return live_objects_; }
  /// Bytes allocated through alloc_object() that could not be tracked
  /// (tracking off, or object semispace full) — the counted fallback.
  std::uint64_t untracked_alloc_bytes() const { return untracked_alloc_bytes_; }
  /// Per-semispace size actually in effect (resolves the 0 = auto default).
  std::uint64_t object_semi_bytes() const;

  /// Live (non-dead) code bytes currently in the nursery semispace.
  std::uint64_t nursery_code_bytes() const;
  std::uint64_t mature_code_bytes_used() const { return mature_cursor_; }
  std::uint64_t data_allocated_since_gc() const { return data_since_gc_; }
  std::uint64_t total_collections() const { return epoch_; }

 private:
  hw::Address semispace_base(std::uint32_t which) const;
  hw::Address object_semispace_base(std::uint32_t which) const;
  hw::Address mature_data_base() const;

  hw::Address base_;
  HeapConfig config_;
  std::uint32_t active_semi_ = 0;        // 0 or 1
  std::uint64_t semi_cursor_ = 0;        // bump pointer within active semispace
  std::uint64_t mature_cursor_ = 0;      // bump pointer within mature region
  std::uint64_t data_since_gc_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<CodeObject> code_;         // CodeId-indexed, never shrinks
  // Object tracking state (all idle unless config_.track_objects).
  std::uint32_t obj_active_semi_ = 0;
  std::uint64_t obj_semi_cursor_ = 0;
  std::uint64_t mature_data_cursor_ = 0;
  std::uint64_t untracked_alloc_bytes_ = 0;
  std::vector<DataObject> objects_;      // ObjId-indexed, never shrinks
  std::vector<ObjId> live_objects_;      // rebuilt per GC; keeps collect O(live)
};

}  // namespace viprof::jvm
