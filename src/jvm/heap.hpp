// GC-managed JVM heap with *code and data interwound*, as in Jikes RVM.
//
// Code bodies are allocated in a copying nursery (two semispaces); each
// collection copies live bodies to the other semispace — i.e. moves them —
// until a body has survived `mature_age` collections, after which it is
// promoted to a mature region and stops moving (the paper notes that mature
// code reduces runtime profiling work). Data allocation is tracked by volume
// only: it fills the nursery and triggers collections, and a configurable
// fraction survives, driving GC cost.
//
// Each collection closes one *execution epoch* — the unit VIProf's code maps
// are keyed by.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/types.hpp"
#include "jvm/method.hpp"

namespace viprof::jvm {

using CodeId = std::uint32_t;
inline constexpr CodeId kInvalidCode = ~0u;

struct CodeObject {
  CodeId id = kInvalidCode;
  MethodId method = kInvalidMethod;
  hw::Address address = 0;
  std::uint64_t size = 0;
  OptLevel level = OptLevel::kBaseline;
  std::uint64_t epoch_compiled = 0;
  std::uint32_t survivals = 0;
  bool in_mature = false;
  bool dead = false;       // superseded by recompilation; reclaimed at next GC
  bool reclaimed = false;  // space already recycled (dead before last GC)
};

struct HeapConfig {
  std::uint64_t heap_bytes = 64ull << 20;
  std::uint64_t code_semi_bytes = 8ull << 20;   // two of these, then mature
  std::uint64_t mature_code_bytes = 16ull << 20;
  std::uint64_t nursery_data_bytes = 8ull << 20;  // data budget per epoch
  double data_survival = 0.15;   // fraction of nursery data that is live at GC
  std::uint32_t mature_age = 3;  // survivals before promotion (stops moving)
};

struct GcStats {
  std::uint64_t epoch = 0;          // epoch just closed
  std::uint64_t code_moved = 0;     // bodies copied to the other semispace
  std::uint64_t code_promoted = 0;  // bodies promoted to mature
  std::uint64_t code_reclaimed = 0; // dead bodies dropped
  std::uint64_t live_bytes = 0;     // data+code copied (drives GC cost)
};

class Heap {
 public:
  /// `base` is where the heap's anon mapping starts in the process space.
  Heap(hw::Address base, const HeapConfig& config);

  hw::Address base() const { return base_; }
  hw::Address end() const { return base_ + config_.heap_bytes; }
  bool contains(hw::Address a) const { return a >= base_ && a < end(); }
  const HeapConfig& config() const { return config_; }

  /// Data region base — methods' access patterns point here.
  hw::Address data_base() const;
  std::uint64_t data_bytes() const;

  /// Current execution epoch (== number of collections completed).
  std::uint64_t epoch() const { return epoch_; }

  /// Allocates a code body in the nursery; may require a GC first
  /// (gc_needed() turns true when the semispace would overflow).
  CodeObject& alloc_code(MethodId method, std::uint64_t size, OptLevel level);

  /// Marks a body dead (superseded); space reclaimed at the next GC.
  void kill_code(CodeId id);

  /// Records `bytes` of data allocation.
  void alloc_data(std::uint64_t bytes);

  bool gc_needed() const;

  /// One copying collection. `on_move` fires for every body whose address
  /// changed (after the move). Closes the current epoch.
  using MoveCallback = std::function<void(const CodeObject& moved, hw::Address old_address)>;
  GcStats collect(const MoveCallback& on_move);

  const CodeObject& code(CodeId id) const;
  CodeObject& code(CodeId id);
  const std::vector<CodeObject>& all_code() const { return code_; }

  /// Live (non-dead) code bytes currently in the nursery semispace.
  std::uint64_t nursery_code_bytes() const;
  std::uint64_t mature_code_bytes_used() const { return mature_cursor_; }
  std::uint64_t data_allocated_since_gc() const { return data_since_gc_; }
  std::uint64_t total_collections() const { return epoch_; }

 private:
  hw::Address semispace_base(std::uint32_t which) const;

  hw::Address base_;
  HeapConfig config_;
  std::uint32_t active_semi_ = 0;        // 0 or 1
  std::uint64_t semi_cursor_ = 0;        // bump pointer within active semispace
  std::uint64_t mature_cursor_ = 0;      // bump pointer within mature region
  std::uint64_t data_since_gc_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<CodeObject> code_;         // CodeId-indexed, never shrinks
};

}  // namespace viprof::jvm
