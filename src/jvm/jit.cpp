#include "jvm/jit.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace viprof::jvm {

std::uint64_t JitCompiler::code_size_for(const MethodInfo& method, OptLevel level) const {
  const double expanded =
      static_cast<double>(method.bytecode_size) * config_.expansion[static_cast<std::size_t>(level)];
  return std::max<std::uint64_t>(64, static_cast<std::uint64_t>(expanded));
}

hw::Cycles JitCompiler::compile_cost_for(const MethodInfo& method, OptLevel level) const {
  const double cost = static_cast<double>(method.bytecode_size) *
                      config_.compile_cost[static_cast<std::size_t>(level)];
  return std::max<hw::Cycles>(1'000, static_cast<hw::Cycles>(cost));
}

CompileOutcome JitCompiler::compile(const MethodInfo& method, OptLevel level,
                                    CodeId previous) {
  if (previous != kInvalidCode) {
    VIPROF_CHECK(heap_->code(previous).method == method.id);
    heap_->kill_code(previous);
  }
  CodeObject& body = heap_->alloc_code(method.id, code_size_for(method, level), level);
  ++compiles_[static_cast<std::size_t>(level)];
  return CompileOutcome{body.id, compile_cost_for(method, level)};
}

}  // namespace viprof::jvm
