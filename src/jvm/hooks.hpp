// VM instrumentation hooks — the seam VIProf's VM agent plugs into.
//
// The paper's agent is "a library with several hooks in the VM's code":
// instructions added to compile/recompile bodies, a flag in the GC move
// path, and map writes at epoch boundaries. Each hook returns the cycle
// cost of its own work; the VM charges that cost on the simulated CPU in
// the agent's code (so agent overhead is visible in profiles and in the
// Fig. 2 slowdown numbers).
#pragma once

#include <cstdint>
#include <string>

#include "hw/cpu.hpp"
#include "hw/types.hpp"
#include "jvm/boot_image.hpp"
#include "jvm/heap.hpp"
#include "jvm/method.hpp"

namespace viprof::jvm {

struct VmStartInfo {
  hw::Pid pid = 0;
  hw::Address heap_lo = 0;
  hw::Address heap_hi = 0;
  const BootImage* boot = nullptr;
  hw::Address boot_base = 0;      // where the boot image is mapped
  const Heap* heap = nullptr;     // for the agent's "VM probing routines"
};

class VmEventListener {
 public:
  virtual ~VmEventListener() = default;

  virtual hw::Cycles on_vm_start(const VmStartInfo&) { return 0; }

  /// After a (re)compile: the new body is live at `code.address`.
  virtual hw::Cycles on_method_compiled(const MethodInfo& method, const CodeObject& code) {
    (void)method; (void)code;
    return 0;
  }

  /// After each application method invocation completes `ops` abstract
  /// instructions of JIT-code work. Used by instrumentation-based profilers
  /// (the Vertical Profiling comparator); VIProf leaves it free.
  virtual hw::Cycles on_invocation(const MethodInfo& method, std::uint64_t ops) {
    (void)method; (void)ops;
    return 0;
  }

  /// During GC, after a body moved from `old_address` to `code.address`.
  /// Runs inside the collector — keep it cheap (the paper flags, not logs).
  virtual hw::Cycles on_method_moved(const MethodInfo& method, hw::Address old_address,
                                     const CodeObject& code) {
    (void)method; (void)old_address; (void)code;
    return 0;
  }

  /// A new allocation site was announced (method + bytecode index). Fired
  /// once per site, before any object is allocated at it.
  virtual hw::Cycles on_alloc_site(std::uint32_t site, const std::string& name) {
    (void)site; (void)name;
    return 0;
  }

  /// A tracked data object was just allocated at `obj.address`.
  virtual hw::Cycles on_object_alloc(const DataObject& obj) {
    (void)obj;
    return 0;
  }

  /// During GC, after a tracked object moved from `old_address` to
  /// `obj.address`. Runs inside the collector — keep it cheap (the memory
  /// profiler flags, exactly like on_method_moved).
  virtual hw::Cycles on_object_moved(const DataObject& obj, hw::Address old_address) {
    (void)obj; (void)old_address;
    return 0;
  }

  /// During GC, after a tracked object died (was not copied).
  virtual hw::Cycles on_object_dead(const DataObject& obj) {
    (void)obj;
    return 0;
  }

  /// Epoch `epoch` is ending: just before GC launch, or at VM shutdown
  /// (`final_epoch`). This is where VIProf writes the partial code map.
  virtual hw::Cycles on_epoch_end(std::uint64_t epoch, bool final_epoch) {
    (void)epoch; (void)final_epoch;
    return 0;
  }

  virtual hw::Cycles on_gc_end(std::uint64_t new_epoch) {
    (void)new_epoch;
    return 0;
  }

  virtual hw::Cycles on_vm_shutdown() { return 0; }

  /// Code the hook bodies execute in; hook costs are charged there.
  /// Null = charge inside the VM boot image (inlined instrumentation).
  virtual const hw::ExecContext* agent_context() const { return nullptr; }
};

}  // namespace viprof::jvm
