// JIT compiler and adaptive recompilation policy, Jikes-RVM style.
//
// There is no interpreter: a method is baseline-compiled on first invocation
// and recompiled at increasing opt levels once it has accumulated enough
// execution. Compilation allocates the machine-code body in the GC-managed
// heap (so it will move) and costs cycles that the VM executes inside the
// boot image's compiler methods — which is why the paper's Fig. 1 shows
// opt-compiler internals (`VM_OptCompiledMethod.createCodePatchMaps` etc.)
// near the top of the profile.
#pragma once

#include <cstdint>

#include "hw/types.hpp"
#include "jvm/heap.hpp"
#include "jvm/method.hpp"

namespace viprof::jvm {

struct JitConfig {
  // Machine-code bytes per bytecode byte, per tier.
  double expansion[kOptLevelCount] = {6.0, 8.0, 10.0, 11.0};
  // Compile cost in cycles per bytecode byte, per tier. Scaled down with
  // the workload time dilation (workloads/common.hpp) so compilation's
  // *share* of execution matches a real adaptive JVM rather than dominating
  // the shortened runs.
  double compile_cost[kOptLevelCount] = {8.0, 60.0, 180.0, 450.0};
  // Execution speedup: CPI multiplier relative to the method's base CPI.
  double cpi_scale[kOptLevelCount] = {1.0, 0.62, 0.47, 0.38};
};

struct CompileOutcome {
  CodeId code = kInvalidCode;
  hw::Cycles cost = 0;  // compiler cycles, to be executed in boot-image code
};

class JitCompiler {
 public:
  JitCompiler(Heap& heap, const JitConfig& config = {}) : heap_(&heap), config_(config) {}

  const JitConfig& config() const { return config_; }

  std::uint64_t code_size_for(const MethodInfo& method, OptLevel level) const;
  hw::Cycles compile_cost_for(const MethodInfo& method, OptLevel level) const;
  double cpi_scale(OptLevel level) const {
    return config_.cpi_scale[static_cast<std::size_t>(level)];
  }

  /// Compiles `method` at `level`; if `previous` is valid the old body is
  /// killed (recompilation). The caller charges `cost` to the right code.
  CompileOutcome compile(const MethodInfo& method, OptLevel level,
                         CodeId previous = kInvalidCode);

  std::uint64_t compiles_at(OptLevel level) const {
    return compiles_[static_cast<std::size_t>(level)];
  }

 private:
  Heap* heap_;
  JitConfig config_;
  std::uint64_t compiles_[kOptLevelCount] = {};
};

/// Accumulated-work recompilation triggers (abstract instructions executed
/// in the method). Coarse model of Jikes' cost-benefit adaptive system.
struct RecompilePolicy {
  std::uint64_t opt0_ops = 300'000;
  std::uint64_t opt1_ops = 3'000'000;
  std::uint64_t opt2_ops = 20'000'000;

  /// Level the method *should* be at given accumulated ops.
  OptLevel target_level(std::uint64_t accumulated_ops) const {
    if (accumulated_ops >= opt2_ops) return OptLevel::kOpt2;
    if (accumulated_ops >= opt1_ops) return OptLevel::kOpt1;
    if (accumulated_ops >= opt0_ops) return OptLevel::kOpt0;
    return OptLevel::kBaseline;
  }
};

}  // namespace viprof::jvm
