#include "jvm/boot_image.hpp"

#include "support/check.hpp"
#include "support/format.hpp"

namespace viprof::jvm {

namespace {
constexpr std::uint64_t kFillerSymbolSize = 4096;
constexpr std::size_t kFillerSymbols = 256;
}  // namespace

BootImage::BootImage(os::ImageRegistry& registry, os::Vfs& vfs,
                     const std::string& map_path, VmFlavor flavor)
    : map_path_(map_path) {
  if (flavor == VmFlavor::kClr) {
    // CLR 1.x/2.0-era internals: JIT in clrjit, GC/loader/threading in
    // mscorwks. Same services, different runtime.
    add(VmService::kBaselineCompiler, "clrjit!Compiler::compCompile",
        24'576, 0.45, 1.3, 96 * 1024, 0.35);
    add(VmService::kBaselineCompiler, "clrjit!CodeGen::genGenerateCode",
        16'384, 0.30, 1.1, 32 * 1024, 0.15);
    add(VmService::kBaselineCompiler, "clrjit!Compiler::lvaMarkLocalVars",
        4'096, 0.25, 1.2, 16 * 1024, 0.30);

    add(VmService::kOptCompiler, "clrjit!Compiler::optOptimizeLoops",
        49'152, 0.35, 1.5, 256 * 1024, 0.45);
    add(VmService::kOptCompiler, "clrjit!Compiler::fgInline",
        12'288, 0.30, 1.6, 128 * 1024, 0.50);
    add(VmService::kOptCompiler, "clrjit!Compiler::optCSE",
        16'384, 0.35, 1.4, 96 * 1024, 0.35);

    add(VmService::kGc, "mscorwks!WKS::gc_heap::mark_phase",
        8'192, 0.35, 1.9, 8 * 1024 * 1024, 0.80);
    add(VmService::kGc, "mscorwks!WKS::gc_heap::plan_phase",
        6'144, 0.30, 1.8, 8 * 1024 * 1024, 0.70);
    add(VmService::kGc, "mscorwks!WKS::gc_heap::relocate_phase",
        6'144, 0.35, 1.9, 8 * 1024 * 1024, 0.75);

    add(VmService::kClassLoader, "mscorwks!MethodTableBuilder::BuildMethodTable",
        12'288, 0.60, 1.4, 128 * 1024, 0.40);
    add(VmService::kClassLoader, "mscorwks!ClassLoader::LoadTypeHandle",
        8'192, 0.40, 1.4, 64 * 1024, 0.40);

    add(VmService::kGlue, "mscorwks!ThreadNative::Sleep",
        4'096, 0.40, 1.2, 16 * 1024, 0.20);
    add(VmService::kGlue, "mscorwks!Thread::DoAppropriateWait",
        1'024, 0.35, 1.1, 4 * 1024, 0.10);
    add(VmService::kGlue, "System.Collections.ArrayList.TrimToSize",
        2'048, 0.25, 1.3, 64 * 1024, 0.25);

    add_filler(kFillerSymbols);
    size_ = cursor_;
    os::Image& img =
        registry.create("CLR.native.image", os::ImageKind::kBootImage, size_);
    image_ = img.id();
    finalize(img, vfs);
    return;
  }

  // Service routine catalogue. Names follow Jikes RVM 2.4.x conventions and
  // include every VM-internal symbol visible in the paper's Fig. 1.
  add(VmService::kBaselineCompiler, "com.ibm.jikesrvm.VM_BaselineCompiler.compile",
      24'576, 0.45, 1.3, 96 * 1024, 0.35);
  add(VmService::kBaselineCompiler, "com.ibm.jikesrvm.VM_Assembler.emit",
      16'384, 0.30, 1.1, 32 * 1024, 0.15);
  add(VmService::kBaselineCompiler,
      "com.ibm.jikesrvm.classloader.VM_NormalMethod.getOsrPrologueLength",
      4'096, 0.15, 1.2, 16 * 1024, 0.30);
  add(VmService::kBaselineCompiler,
      "com.ibm.jikesrvm.VM_BaselineGCMapIterator.setupIterator",
      4'096, 0.10, 1.3, 24 * 1024, 0.40);

  add(VmService::kOptCompiler, "com.ibm.jikesrvm.opt.VM_OptimizingCompiler.optimize",
      49'152, 0.28, 1.5, 256 * 1024, 0.45);
  add(VmService::kOptCompiler,
      "com.ibm.jikesrvm.opt.VM_OptCompiledMethod.createCodePatchMaps",
      12'288, 0.18, 1.6, 128 * 1024, 0.50);
  add(VmService::kOptCompiler,
      "com.ibm.jikesrvm.opt.VM_OptMachineCodeMap.getMethodForMCOffset",
      6'144, 0.14, 1.4, 64 * 1024, 0.45);
  add(VmService::kOptCompiler, "com.ibm.jikesrvm.classloader.VM_NormalMethod.hasArrayRead",
      4'096, 0.14, 1.2, 32 * 1024, 0.30);
  add(VmService::kOptCompiler,
      "com.ibm.jikesrvm.classloader.VM_NormalMethod.finalizeOsrSpecialization",
      6'144, 0.12, 1.4, 48 * 1024, 0.40);
  add(VmService::kOptCompiler, "com.ibm.jikesrvm.opt.ir.VM_IR.simplify",
      16'384, 0.14, 1.4, 96 * 1024, 0.35);

  add(VmService::kGc, "com.ibm.jikesrvm.mm.mmtk.VM_CopySpace.copyObject",
      8'192, 0.35, 1.8, 8 * 1024 * 1024, 0.70);
  add(VmService::kGc, "com.ibm.jikesrvm.mm.mmtk.VM_Scanning.scanObject",
      6'144, 0.25, 1.9, 8 * 1024 * 1024, 0.80);
  add(VmService::kGc,
      "com.ibm.jikesrvm.opt.VM_OptGenericGCMapIterator.checkForMissedSpills",
      4'096, 0.20, 1.7, 2 * 1024 * 1024, 0.60);
  add(VmService::kGc, "com.ibm.jikesrvm.mm.mmtk.VM_TraceLocal.traceObject",
      6'144, 0.20, 1.9, 8 * 1024 * 1024, 0.75);

  add(VmService::kClassLoader, "com.ibm.jikesrvm.classloader.VM_ClassLoader.loadClass",
      12'288, 0.60, 1.4, 128 * 1024, 0.40);
  add(VmService::kClassLoader, "com.ibm.jikesrvm.classloader.VM_Class.resolve",
      8'192, 0.40, 1.4, 64 * 1024, 0.40);

  add(VmService::kGlue, "com.ibm.jikesrvm.MainThread.run",
      4'096, 0.50, 1.2, 16 * 1024, 0.20);
  add(VmService::kGlue, "com.ibm.jikesrvm.scheduler.VM_Thread.yieldpoint",
      1'024, 0.30, 1.1, 4 * 1024, 0.10);
  add(VmService::kGlue, "java.util.Vector.trimToSize",
      2'048, 0.20, 1.3, 64 * 1024, 0.25);

  add_filler(kFillerSymbols);
  size_ = cursor_;

  os::Image& img = registry.create("RVM.code.image", os::ImageKind::kBootImage, size_);
  image_ = img.id();
  finalize(img, vfs);
}

void BootImage::finalize(os::Image& img, os::Vfs& vfs) {
  std::string map;
  for (const auto& per_service : by_service_) {
    for (const BootRoutine& r : per_service) {
      img.symbols().add(r.name, r.offset, r.size);
      map += support::hex(r.offset) + " " + std::to_string(r.size) + " " + r.name + "\n";
      ++total_symbols_;
    }
  }
  for (const auto& [name, extent] : filler_) {
    img.symbols().add(name, extent.first, extent.second);
    map += support::hex(extent.first) + " " + std::to_string(extent.second) + " " + name + "\n";
    ++total_symbols_;
  }
  vfs.write(map_path_, std::move(map));
}

void BootImage::add(VmService service, std::string name, std::uint64_t code_size,
                    double weight, double cpi, std::uint64_t working_set,
                    double random_frac) {
  BootRoutine r;
  r.name = std::move(name);
  r.offset = cursor_;
  r.size = code_size;
  r.weight = weight;
  r.cpi = cpi;
  r.working_set = working_set;
  r.random_frac = random_frac;
  r.accesses_per_op = 0.5;
  cursor_ += code_size;
  by_service_[static_cast<std::size_t>(service)].push_back(std::move(r));
}

void BootImage::add_filler(std::size_t count) {
  // Plausible VM-internal names that pad the image to a realistic symbol
  // density; they receive no execution but make map search non-trivial.
  static const char* kStems[] = {
      "com.ibm.jikesrvm.runtime.VM_Runtime",   "com.ibm.jikesrvm.VM_Magic",
      "com.ibm.jikesrvm.classloader.VM_Array", "com.ibm.jikesrvm.opt.ir.VM_BURS",
      "com.ibm.jikesrvm.scheduler.VM_Lock",    "java.lang.String",
      "java.util.HashMap",                     "com.ibm.jikesrvm.VM_Reflection",
  };
  static const char* kLeaves[] = {"resolve", "invoke", "barrier", "copyTo",
                                  "hashCode", "alloc",  "enter",   "exit"};
  for (std::size_t i = 0; i < count; ++i) {
    std::string name = std::string(kStems[i % std::size(kStems)]) + "$" +
                       std::to_string(i / std::size(kStems)) + "." +
                       kLeaves[(i / 3) % std::size(kLeaves)];
    filler_.emplace_back(std::move(name), std::make_pair(cursor_, kFillerSymbolSize));
    cursor_ += kFillerSymbolSize;
  }
}

const std::vector<BootRoutine>& BootImage::routines(VmService service) const {
  return by_service_[static_cast<std::size_t>(service)];
}

const BootRoutine& BootImage::pick(VmService service, support::Xoshiro256& rng) const {
  const auto& rs = routines(service);
  VIPROF_CHECK(!rs.empty());
  double total = 0.0;
  for (const auto& r : rs) total += r.weight;
  double x = rng.uniform() * total;
  for (const auto& r : rs) {
    if (x < r.weight) return r;
    x -= r.weight;
  }
  return rs.back();
}

}  // namespace viprof::jvm
