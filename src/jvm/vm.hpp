// The JVM simulator: executes a JavaProgramSpec on a Machine, driving the
// CPU through JIT code, native libraries, kernel paths and VM-internal
// services, with Jikes-style adaptive recompilation and a moving GC.
//
// The VM is the *profiled subject*; it knows nothing about VIProf beyond
// the VmEventListener seam. Registered background services (the profiler
// daemon) are polled between execution chunks, modelling a single-core
// machine where the daemon steals time from the workload.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/access_pattern.hpp"
#include "hw/cpu.hpp"
#include "jvm/boot_image.hpp"
#include "jvm/heap.hpp"
#include "jvm/hooks.hpp"
#include "jvm/jit.hpp"
#include "jvm/method.hpp"
#include "jvm/program.hpp"
#include "os/machine.hpp"
#include "os/service.hpp"

namespace viprof::jvm {

struct VmConfig {
  std::uint64_t seed = 1;
  HeapConfig heap;
  JitConfig jit;
  RecompilePolicy recompile;
  std::uint64_t chunk_ops = 4'000;  // abstract instructions per CPU chunk
  double l1_miss_penalty = 8.0;     // cycles
  double l2_miss_penalty = 150.0;   // cycles
  double branch_mispredict_rate = 0.004;  // per op
};

struct RunStats {
  hw::Cycles cycles = 0;  // wall cycles for the run (includes profiling costs)
  std::uint64_t app_ops = 0;
  std::uint64_t native_ops = 0;
  std::uint64_t kernel_ops = 0;
  std::uint64_t vm_ops = 0;  // boot-image service work
  std::uint64_t invocations = 0;
  std::uint64_t collections = 0;
  std::uint64_t compiles[kOptLevelCount] = {};
  hw::Cycles agent_cycles = 0;   // charged through VmEventListener hooks
  hw::Cycles service_cycles = 0; // background daemons
};

class Vm {
 public:
  Vm(os::Machine& machine, const VmConfig& config);
  ~Vm();

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  /// Must be called before run(); loads images, maps heap + boot image,
  /// builds per-method runtime state, fires on_vm_start.
  void setup(const JavaProgramSpec& program);

  void add_listener(VmEventListener* listener);
  void add_service(os::BackgroundService* service);

  /// Executes the program to completion. setup() must have been called.
  RunStats run();

  /// Incremental execution (multi-stack scheduling): executes until at
  /// least `max_app_ops` further application ops ran or the program
  /// completed. Returns true while work remains. The first step() begins
  /// the run; call finish() once it returns false.
  bool step(std::uint64_t max_app_ops);

  /// Fires the shutdown hooks (final epoch map) and returns the run stats.
  RunStats finish();

  /// True once step()/run() has started and finish() has not been called.
  bool running() const { return running_; }

  /// Application ops executed so far in the current run.
  std::uint64_t app_ops_done() const { return stats_.app_ops; }

  /// Live view of the current run's statistics (valid while running()).
  const RunStats& stats_so_far() const { return stats_; }

  // --- Introspection (tests, benches) -------------------------------------
  Heap& heap();
  const Heap& heap() const;
  const BootImage& boot() const;
  hw::Address boot_base() const { return boot_base_; }
  hw::Pid pid() const;
  const JitCompiler& jit() const;
  const JavaProgramSpec& program() const { return program_; }
  const MethodInfo& method(MethodId id) const;

  /// Current compiled body of a method (kInvalidCode before first call).
  CodeId current_code(MethodId id) const;

  /// Forces a collection now (tests and the epoch ablation use this).
  void force_gc();

  /// Forces (re)compilation of a method at a level (tests).
  void force_compile(MethodId id, OptLevel level);

  /// Profile-guided feedback (the paper's cross-layer optimisation goal):
  /// methods named here skip the adaptive ladder and compile straight at
  /// the top tier on first touch. Call after setup(), before run().
  void set_aggressive_methods(const std::vector<std::string>& qualified_names);

  /// Allocation-site names ("klass.method@bci"), indexed by site id. Two
  /// sites per method — [2*id] long-lived, [2*id+1] die-young. Populated at
  /// setup() only when the heap tracks objects; empty otherwise.
  const std::vector<std::string>& alloc_sites() const { return alloc_sites_; }

 private:
  struct MethodRuntime {
    CodeId code = kInvalidCode;
    OptLevel level = OptLevel::kBaseline;
    std::uint64_t invocations = 0;
    std::uint64_t accumulated_ops = 0;
    hw::AccessPattern pattern;
    bool klass_loaded = false;
    // Object tracking: the method's data accesses anchor to its most recent
    // long-lived allocation, so the access pattern *follows the object when
    // GC moves it* — the behaviour the memory profiler must attribute
    // correctly across epochs.
    ObjId anchor = kInvalidObject;
    std::uint64_t obj_seq = 0;       // objects allocated so far (site split)
    std::uint64_t alloc_carry = 0;   // bytes short of one object, carried
  };

  struct NativeTarget {
    hw::ExecContext context;
    double cpi = 1.0;
    hw::AccessPattern pattern;
  };

  void exec_chunk(const hw::ExecContext& ctx, std::uint64_t ops, double cpi,
                  const hw::AccessPattern& pattern);
  void exec_service(VmService service, hw::Cycles budget);
  void run_background_services();
  hw::Cycles charge_listeners(hw::Cycles cost_sum);
  void compile_method(MethodId id, OptLevel level);
  void invoke(MethodId id);
  /// Carves `bytes` of a method's allocation volume into tracked objects
  /// (remainder carried to the next chunk); accumulates listener hook costs
  /// into `hook_cost`.
  void alloc_app_objects(MethodRuntime& rt, const MethodInfo& info,
                         std::uint64_t bytes, hw::Cycles& hook_cost);
  void do_gc();
  void maybe_glue(std::uint64_t ops_just_executed);
  MethodId pick_method();
  const NativeTarget& native_target(const std::string& lib, const std::string& symbol) const;
  hw::AccessPattern pattern_for_method(const MethodInfo& m) const;

  /// The process's shared cache-hot region (thread stack + hottest objects).
  hw::Address stack_hot_base() const { return heap_->end() - 16 * 1024; }

  os::Machine* machine_;
  VmConfig config_;
  JavaProgramSpec program_;
  support::Xoshiro256 rng_;

  os::Process* process_ = nullptr;
  std::unique_ptr<BootImage> boot_;
  hw::Address boot_base_ = 0;
  std::unique_ptr<Heap> heap_;
  std::unique_ptr<JitCompiler> jit_;

  std::vector<MethodRuntime> runtime_;
  std::vector<double> cumulative_weight_;
  std::vector<std::pair<std::string, NativeTarget>> natives_;  // "lib/sym" -> target

  std::vector<VmEventListener*> listeners_;
  std::vector<os::BackgroundService*> services_;
  bool in_service_ = false;

  RunStats stats_;
  std::uint64_t glue_debt_ops_ = 0;
  hw::Cycles instr_debt_ = 0;  // batched on_invocation hook costs
  bool setup_done_ = false;
  bool running_ = false;
  hw::Cycles run_start_ = 0;

  // Phase behaviour: a rotating subset of methods is temporally "hot".
  std::vector<MethodId> phase_set_;
  std::uint64_t next_phase_at_ops_ = 0;

  // Profile-guided feedback: first-touch top-tier compilation targets.
  std::vector<MethodId> aggressive_;

  // Allocation-site names, two per method (only when tracking objects).
  std::vector<std::string> alloc_sites_;
};

}  // namespace viprof::jvm
