// Static description of Java methods as the JVM simulator sees them.
//
// The simulator does not interpret real bytecode; a method is characterised
// by its size, execution rate, data locality, allocation behaviour and the
// native / kernel work it triggers — enough to reproduce where cycles and
// cache misses land across the stack.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace viprof::jvm {

using MethodId = std::uint32_t;
inline constexpr MethodId kInvalidMethod = ~0u;

/// Jikes-style compilation tiers: no interpreter — every method is baseline-
/// compiled on first invocation and may be recompiled at opt levels.
enum class OptLevel : std::uint8_t { kBaseline, kOpt0, kOpt1, kOpt2 };
inline constexpr std::size_t kOptLevelCount = 4;

inline const char* to_string(OptLevel level) {
  switch (level) {
    case OptLevel::kBaseline: return "base";
    case OptLevel::kOpt0:     return "O0";
    case OptLevel::kOpt1:     return "O1";
    case OptLevel::kOpt2:     return "O2";
  }
  return "?";
}

/// Work a method triggers outside JIT code: calls into native libraries
/// (libc & friends) or system calls. `frac_ops` of the method's abstract
/// instructions execute in the target instead of in JIT code.
struct OutCall {
  enum class Kind : std::uint8_t { kNative, kSyscall };
  Kind kind = Kind::kNative;
  std::string library;  // native: library name ("libc-2.3.2.so"); unused for syscalls
  std::string symbol;   // native symbol ("memset") or kernel routine ("sys_write")
  double frac_ops = 0.0;
};

struct MethodInfo {
  MethodId id = kInvalidMethod;
  std::string klass;      // "edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner"
  std::string name;       // "parseLine"
  std::string descriptor; // "(Ljava/lang/String;)V" — kept short in workloads

  std::uint64_t bytecode_size = 200;  // drives compile cost & code size
  double base_cpi = 1.0;              // cycles/op at baseline, before misses
  double weight = 1.0;                // relative share of app invocations
  std::uint64_t ops_per_invocation = 20'000;
  double alloc_bytes_per_op = 0.2;    // nursery pressure

  // Object-level allocation behaviour (memory profiling). When the heap
  // tracks objects, the method's allocation volume is carved into discrete
  // objects of ~alloc_object_bytes each, attributed to the method's
  // allocation sites; alloc_object_lifetime is the number of GCs objects
  // from the method's long-lived site survive (0 = everything dies young;
  // large values model leaks).
  std::uint64_t alloc_object_bytes = 256;
  std::uint32_t alloc_object_lifetime = 1;

  // Data locality of the method's heap accesses.
  std::uint64_t working_set = 32 * 1024;
  std::uint32_t stride = 64;
  double random_frac = 0.2;
  double accesses_per_op = 0.4;

  std::vector<OutCall> outcalls;

  /// "klass.name" — the form the paper's Fig. 1 prints for JIT.App symbols.
  std::string qualified_name() const { return klass + "." + name; }
};

/// A native library the program links against.
struct NativeSymbolSpec {
  std::string name;
  std::uint64_t code_size = 2048;
  double cpi = 1.0;
  std::uint64_t working_set = 64 * 1024;
  double random_frac = 0.1;
  double accesses_per_op = 0.5;
};

struct NativeLibrarySpec {
  std::string name;             // "libc-2.3.2.so"
  bool stripped = false;        // "(no symbols)" in reports, like libxul in Fig. 1
  std::vector<NativeSymbolSpec> symbols;
};

}  // namespace viprof::jvm
