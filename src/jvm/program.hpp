// A complete Java program specification: the unit the workloads module
// produces and the VM executes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jvm/method.hpp"

namespace viprof::jvm {

/// Which managed runtime hosts the program. The paper argues VIProf's
/// mechanism (registration + agent hooks + epoch maps) is VM-agnostic —
/// "general enough to support ... multiple Java virtual machines as well as
/// Microsoft .Net common language runtimes"; the CLR flavor demonstrates it:
/// same profiler, different runtime identity and internal-service symbols.
enum class VmFlavor : std::uint8_t { kJikesRvm, kClr };

struct JavaProgramSpec {
  std::string name;                       // "dacapo.ps"
  VmFlavor flavor = VmFlavor::kJikesRvm;  // hosting runtime
  std::vector<MethodInfo> methods;        // application methods
  std::vector<NativeLibrarySpec> libraries;
  std::uint64_t total_app_ops = 50'000'000;  // run length in abstract instructions

  /// Fraction of overall execution spent in VM glue (thread scheduler /
  /// yieldpoints / main loop) — shows up as boot-image time in profiles.
  double vm_glue_frac = 0.02;

  /// Invocation-order temporal skew: a phase-local subset of methods is
  /// preferred, re-drawn every `phase_ops` instructions. 0 disables phases.
  std::uint64_t phase_ops = 0;
};

}  // namespace viprof::jvm
