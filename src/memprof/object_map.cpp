#include "memprof/object_map.hpp"

#include <cstdio>

#include "support/check.hpp"
#include "support/format.hpp"
#include "support/str_scan.hpp"

namespace viprof::memprof {

namespace {

// "<hex-addr> <size> <obj_id> <site>" with nothing after.
bool parse_object_line(std::string_view line, ObjectMapEntry& entry) {
  std::uint64_t addr = 0, size = 0, obj_id = 0, site = 0;
  if (!support::scan_hex64(line, addr) || !support::scan_u64(line, size) ||
      !support::scan_u64(line, obj_id) || !support::scan_u64(line, site) ||
      site > 0xffffffffull || !support::at_end(line)) {
    return false;
  }
  entry.address = addr;
  entry.size = size;
  entry.obj_id = obj_id;
  entry.site = static_cast<std::uint32_t>(site);
  return true;
}

// "dead <obj_id> <size> <site>" with nothing after.
bool parse_dead_line(std::string_view line, ObjectDeath& death) {
  std::uint64_t obj_id = 0, size = 0, site = 0;
  if (!support::scan_lit(line, "dead") || !support::scan_u64(line, obj_id) ||
      !support::scan_u64(line, size) || !support::scan_u64(line, site) ||
      site > 0xffffffffull || !support::at_end(line)) {
    return false;
  }
  death.obj_id = obj_id;
  death.size = size;
  death.site = static_cast<std::uint32_t>(site);
  return true;
}

// "site <idx> <name>" — the name is a single token (site names carry no
// spaces), capped at the same on-disk limit as code-map symbols.
bool parse_site_line(std::string_view line, SiteName& site) {
  std::uint64_t idx = 0;
  std::string_view name;
  if (!support::scan_lit(line, "site") || !support::scan_u64(line, idx) ||
      idx > 0xffffffffull || !support::scan_token(line, name) ||
      name.size() > 511 || !support::at_end(line)) {
    return false;
  }
  site.site = static_cast<std::uint32_t>(idx);
  site.name = std::string(name);
  return true;
}

// "omap <epoch> objects <N> dead <D>" with nothing after D.
bool parse_header_line(std::string_view line, std::uint64_t& epoch,
                       std::uint64_t& objects, std::uint64_t& dead) {
  if (!support::scan_lit(line, "omap") || !support::scan_u64(line, epoch)) {
    return false;
  }
  support::skip_ws(line);
  if (!support::scan_lit(line, "objects") || !support::scan_u64(line, objects)) {
    return false;
  }
  support::skip_ws(line);
  return support::scan_lit(line, "dead") && support::scan_u64(line, dead) &&
         support::at_end(line);
}

bool parse_crc_line(std::string_view line, std::uint32_t& crc) {
  std::uint64_t value = 0;
  if (!support::scan_lit(line, "crc") ||
      !support::scan_hex64(line, value, /*max_digits=*/8) ||
      !support::at_end(line)) {
    return false;
  }
  crc = static_cast<std::uint32_t>(value);
  return true;
}

}  // namespace

std::string site_symbol(std::uint32_t site) {
  return "site#" + std::to_string(site);
}

std::optional<std::uint32_t> site_from_symbol(const std::string& symbol) {
  if (symbol.rfind("site#", 0) != 0 || symbol.size() == 5) return std::nullopt;
  std::uint64_t idx = 0;
  for (std::size_t i = 5; i < symbol.size(); ++i) {
    if (symbol[i] < '0' || symbol[i] > '9') return std::nullopt;
    idx = idx * 10 + static_cast<std::uint64_t>(symbol[i] - '0');
    if (idx > 0xffffffffull) return std::nullopt;
  }
  return static_cast<std::uint32_t>(idx);
}

std::string ObjectMapFile::serialize() const {
  std::string out = "omap " + std::to_string(epoch) + " objects " +
                    std::to_string(objects.size()) + " dead " +
                    std::to_string(dead.size()) + "\n";
  if (truncated) out += "truncated\n";
  for (const SiteName& s : sites) {
    out += "site " + std::to_string(s.site) + " " + s.name + "\n";
  }
  for (const ObjectMapEntry& e : objects) {
    out += support::hex(e.address);
    out += ' ';
    out += std::to_string(e.size);
    out += ' ';
    out += std::to_string(e.obj_id);
    out += ' ';
    out += std::to_string(e.site);
    out += '\n';
  }
  for (const ObjectDeath& d : dead) {
    out += "dead " + std::to_string(d.obj_id) + " " + std::to_string(d.size) +
           " " + std::to_string(d.site) + "\n";
  }
  char trailer[32];
  std::snprintf(trailer, sizeof trailer, "crc %08x\n", support::fnv1a(out));
  out += trailer;
  return out;
}

std::optional<ObjectMapFile> ObjectMapFile::parse(const std::string& contents) {
  // Strict parse accepts only fully verified files. A `truncated` marker
  // written by fsck is fine: the rewritten file carries its own header
  // counts and crc, so it verifies as intact while keeping the flag.
  const Recovery r = salvage(contents, 0);
  if (!r.intact) return std::nullopt;
  return r.file;
}

ObjectMapFile::Recovery ObjectMapFile::salvage(const std::string& contents,
                                               std::uint64_t epoch_hint) {
  Recovery r;
  r.file.epoch = epoch_hint;
  r.file.truncated = true;  // until proven intact

  support::LineCursor cursor(contents);
  std::string_view line;

  const bool header_unterminated = !cursor.next(line);
  if (header_unterminated) {
    if (cursor.tail().empty()) return r;  // empty file
    line = cursor.tail();
  }
  {
    std::uint64_t epoch = 0, objects = 0, dead = 0;
    if (!parse_header_line(line, epoch, objects, dead)) {
      return r;  // header unreadable: epoch_hint stands, nothing salvageable
    }
    r.header_ok = true;
    r.file.epoch = epoch;
    r.objects_expected = objects;
    r.dead_expected = dead;
  }
  if (header_unterminated) return r;

  bool marked_truncated = false;
  bool saw_crc = false;
  std::uint32_t crc_read = 0;
  std::size_t crc_covers = 0;

  std::size_t consumed = line.size() + 1;
  bool damaged = false;
  while (cursor.next(line)) {
    if (line == "truncated") {
      marked_truncated = true;
      consumed += line.size() + 1;
      continue;
    }
    if (parse_crc_line(line, crc_read)) {
      saw_crc = true;
      crc_covers = consumed;
      consumed += line.size() + 1;
      break;  // trailer is the last line; anything after it is damage
    }
    SiteName site;
    if (parse_site_line(line, site)) {
      r.file.sites.push_back(std::move(site));
      consumed += line.size() + 1;
      continue;
    }
    ObjectDeath death;
    if (parse_dead_line(line, death)) {
      r.file.dead.push_back(death);
      consumed += line.size() + 1;
      continue;
    }
    ObjectMapEntry e;
    if (!parse_object_line(line, e)) {
      damaged = true;
      break;  // stop at the first bad line: everything after is suspect
    }
    r.file.objects.push_back(e);
    consumed += line.size() + 1;
  }
  if (!damaged && !saw_crc && !cursor.tail().empty()) {
    // Unterminated final line: a tear mid-line can leave a prefix that
    // still parses, so nothing short of a newline-terminated line is
    // trusted.
    damaged = true;
  }

  const bool crc_ok =
      saw_crc && crc_covers <= contents.size() &&
      support::fnv1a(contents.data(), crc_covers) == crc_read;
  r.intact = !damaged && crc_ok && r.file.objects.size() == r.objects_expected &&
             r.file.dead.size() == r.dead_expected && consumed >= contents.size();
  r.file.truncated = marked_truncated || !r.intact;
  return r;
}

std::string ObjectMapFile::path_for(const std::string& dir, hw::Pid pid,
                                    std::uint64_t epoch) {
  char buf[64];
  // Zero-padded epoch keeps VFS listing in epoch order.
  std::snprintf(buf, sizeof buf, "/%u/omap.%08llu", pid,
                static_cast<unsigned long long>(epoch));
  return dir + buf;
}

std::optional<std::uint64_t> ObjectMapFile::epoch_from_path(const std::string& path) {
  const auto dot = path.rfind("omap.");
  if (dot == std::string::npos) return std::nullopt;
  const std::string digits = path.substr(dot + 5);
  if (digits.empty()) return std::nullopt;
  unsigned long long epoch = 0;
  char extra = 0;
  if (std::sscanf(digits.c_str(), "%llu%c", &epoch, &extra) != 1) return std::nullopt;
  return epoch;
}

core::CodeMapFile ObjectMapFile::to_code_map() const {
  core::CodeMapFile out;
  out.epoch = epoch;
  out.truncated = truncated;
  out.entries.reserve(objects.size());
  for (const ObjectMapEntry& e : objects) {
    core::CodeMapEntry c;
    c.address = e.address;
    c.size = e.size;
    c.symbol = site_symbol(e.site);
    out.entries.push_back(std::move(c));
  }
  return out;
}

ObjectIndexLoad load_object_index(const os::Vfs& vfs, const std::string& dir,
                                  hw::Pid pid) {
  ObjectIndexLoad out;
  const std::string prefix = dir + "/" + std::to_string(pid) + "/omap.";
  for (const std::string& path : vfs.list(prefix)) {
    const auto contents = vfs.read(path);
    VIPROF_CHECK(contents.has_value());
    // The file name carries the epoch, so even a fully corrupt file still
    // registers its epoch as truncated — resolution must know the epoch
    // existed and is unaccounted for.
    const auto hint = ObjectMapFile::epoch_from_path(path);
    ObjectMapFile::Recovery r = ObjectMapFile::salvage(*contents, hint.value_or(0));
    ++out.maps_loaded;
    if (r.file.truncated) ++out.maps_truncated;
    out.objects_loaded += r.file.objects.size();
    out.index.add(r.file.to_code_map());
    out.files.push_back(std::move(r.file));
  }
  out.index.prepare();
  return out;
}

}  // namespace viprof::memprof
