// Integrity scan of epoch object maps — the memprof extension of
// core::fsck_tree, composed by viprof_fsck after the sample-tree pass.
//
// Every omap.<epoch> file under the tree is salvage-parsed. A damaged map
// yields its longest verifiable prefix; the declared header counts make the
// loss *exact*: per damaged file, salvaged + lost == declared, and summed
// over the tree the declared totals equal what the agent acked at write
// time — so a kill mid object-map write degrades to counted loss
// (unresolved.obj.no_map at resolve time), never to wrong attribution.
#pragma once

#include <cstdint>
#include <string>

#include "os/vfs.hpp"
#include "support/telemetry.hpp"

namespace viprof::memprof {

struct ObjectFsckReport {
  bool corrupt = false;
  std::uint64_t maps_intact = 0;
  std::uint64_t maps_truncated = 0;
  /// Exact loss accounting over damaged maps with a readable header:
  /// objects_salvaged + objects_lost == the headers' declared object counts
  /// (which is what the writing agent acked).
  std::uint64_t objects_salvaged = 0;
  std::uint64_t objects_lost = 0;
  std::uint64_t deaths_salvaged = 0;
  std::uint64_t deaths_lost = 0;
  /// Damaged maps that yielded nothing — no readable header, so even the
  /// loss count is unknowable from the file alone.
  std::uint64_t dead_maps = 0;

  std::string details;
  std::string summary;
};

/// Scans every omap file in `in`; when `out` is non-null, damaged maps are
/// rewritten as their salvaged prefix (truncated marker set — resolution
/// will refuse to walk past them). Findings go to `telemetry` under
/// fsck.omaps.* and the returned report.
ObjectFsckReport fsck_object_maps(const os::Vfs& in, os::Vfs* out,
                                  support::Telemetry& telemetry, bool verbose = true);

}  // namespace viprof::memprof
