// The memory-profiling agent: object maps across a moving GC.
//
// The exact design of the VM agent (core/agent.hpp), applied to heap
// *objects* instead of JIT code: allocation hooks log (site, size, address)
// into an in-memory buffer; the GC move path only *flags* moved objects
// (logging from inside the collector is the same performance hit the paper
// rejects for code); at each epoch boundary — just before the collection,
// while the VM is already paused — the agent writes a partial object map.
// Object deaths are flagged by the collector and recorded in the *next*
// epoch's map, so a death line always post-dates every map entry for the
// object.
//
// The agent writes no registration (the VM agent's registration announces
// obj_map_dir for the pid) and enqueues no epoch markers (the VM agent's
// marker already advances the epoch for every sample of the pid — one
// marker per boundary, shared by both profilers).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "jvm/hooks.hpp"
#include "memprof/object_map.hpp"
#include "os/machine.hpp"
#include "support/fault.hpp"
#include "support/telemetry.hpp"

namespace viprof::memprof {

struct MemProfConfig {
  hw::Cycles site_hook_cost = 100;   // intern one allocation site at startup
  hw::Cycles alloc_hook_cost = 40;   // append to the object buffer
  hw::Cycles move_flag_cost = 12;    // set a bit on the object header
  hw::Cycles dead_flag_cost = 12;    // push (id, size, site) onto the dead list
  hw::Cycles map_write_base = 5'000;
  hw::Cycles map_write_per_entry = 300;

  /// Failed map writes: bounded flat-cost retries inside the GC pause,
  /// exactly the VM agent's policy.
  std::size_t map_write_retries = 2;
  hw::Cycles map_retry_cost = 8'000;

  std::string map_dir = "obj_maps";

  /// Optional fault injector; consulted for scheduled agent kills.
  support::FaultInjector* fault = nullptr;
};

struct MemProfStats {
  std::uint64_t sites_announced = 0;
  std::uint64_t allocs_logged = 0;
  std::uint64_t moves_flagged = 0;
  std::uint64_t deads_flagged = 0;
  std::uint64_t maps_written = 0;
  std::uint64_t map_entries_written = 0;
  std::uint64_t map_deaths_written = 0;
  hw::Cycles cost_cycles = 0;

  // Failure accounting.
  std::uint64_t map_write_errors = 0;
  std::uint64_t map_write_retries = 0;
  std::uint64_t maps_torn = 0;
  std::uint64_t maps_dropped = 0;
  std::uint64_t killed_epochs = 0;
};

class MemProfAgent : public jvm::VmEventListener {
 public:
  explicit MemProfAgent(os::Machine& machine, const MemProfConfig& config = {});

  hw::Cycles on_vm_start(const jvm::VmStartInfo& info) override;
  hw::Cycles on_alloc_site(std::uint32_t site, const std::string& name) override;
  hw::Cycles on_object_alloc(const jvm::DataObject& obj) override;
  hw::Cycles on_object_moved(const jvm::DataObject& obj, hw::Address old_address) override;
  hw::Cycles on_object_dead(const jvm::DataObject& obj) override;
  hw::Cycles on_epoch_end(std::uint64_t epoch, bool final_epoch) override;
  const hw::ExecContext* agent_context() const override { return &context_; }

  const MemProfStats& stats() const { return stats_; }
  const MemProfConfig& config() const { return config_; }
  bool killed() const { return dead_; }

 private:
  hw::Cycles write_map(std::uint64_t epoch);

  os::Machine* machine_;
  MemProfConfig config_;
  MemProfStats stats_;

  const jvm::Heap* heap_ = nullptr;
  hw::Pid pid_ = 0;
  bool dead_ = false;
  hw::ExecContext context_{};  // inside libviprofmemprof.so

  // Object buffer: objects allocated since the last map write, plus objects
  // the previous collection moved — exactly what a partial map holds.
  std::vector<jvm::ObjId> pending_;
  std::unordered_set<jvm::ObjId> pending_set_;
  // Deaths flagged by the previous collection, for the next map.
  std::vector<ObjectDeath> pending_dead_;
  // The full site dictionary; every map carries it (sites are few).
  std::vector<SiteName> sites_;

  // Self-telemetry handles (memprof.* namespace, DESIGN.md §8/§15).
  support::Counter* tele_allocs_ = nullptr;
  support::Counter* tele_moves_ = nullptr;
  support::Counter* tele_deads_ = nullptr;
  support::Counter* tele_maps_written_ = nullptr;
  support::Counter* tele_map_entries_ = nullptr;
  support::Counter* tele_maps_dropped_ = nullptr;
  support::Counter* tele_map_errors_ = nullptr;
  support::LatencyHistogram* tele_map_cost_ = nullptr;
  support::LatencyHistogram* tele_map_entries_hist_ = nullptr;
};

}  // namespace viprof::memprof
