#include "memprof/resolve.hpp"

namespace viprof::memprof {

core::Resolution resolve_object(const core::CodeMapIndex* index, hw::Address addr,
                                std::uint64_t epoch, ObjectResolveStats* stats) {
  core::Resolution out;
  out.domain = core::SampleDomain::kObject;
  out.image = kObjectImage;

  const core::CodeMapIndex::Lookup lk =
      index != nullptr
          ? index->lookup(addr, epoch)
          : core::CodeMapIndex::Lookup{std::nullopt, core::JitLookupMiss::kNoMaps};
  if (lk.hit) {
    out.symbol = lk.hit->symbol;
    out.maps_searched = lk.hit->maps_searched;
    out.symbol_base = lk.hit->address;
    out.symbol_size = lk.hit->size;
    if (stats != nullptr) {
      ++stats->resolved;
      stats->backward_steps += lk.hit->maps_searched;
    }
    return out;
  }
  if (stats != nullptr) ++stats->unresolved;
  switch (lk.miss) {
    case core::JitLookupMiss::kMissingEpochMap:
    case core::JitLookupMiss::kNoMaps:
      if (stats != nullptr) ++stats->no_map;
      out.symbol = kUnresolvedObjNoMap;
      break;
    case core::JitLookupMiss::kTruncatedMap:
      if (stats != nullptr) ++stats->truncated_map;
      out.symbol = kUnresolvedObjTruncated;
      break;
    default:
      if (stats != nullptr) ++stats->untracked;
      out.symbol = kUnresolvedObjUntracked;
      break;
  }
  return out;
}

}  // namespace viprof::memprof
