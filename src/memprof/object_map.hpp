// Epoch-keyed heap *object* maps — the memory-profiling twin of the JIT
// code maps (core/code_map.hpp).
//
// The memprof agent writes one partial object map per execution epoch, just
// before the GC that closes it: objects allocated during the epoch, plus
// objects the previous collection moved, plus a record of objects that died
// at that collection. Resolution of a data-address sample walks backwards
// through older maps exactly like code-map resolution — a mature object
// stops appearing in new maps once it stops moving, and the first (newest)
// map whose entry covers the address is authoritative.
//
// Crash consistency mirrors CodeMapFile byte-for-byte in spirit: declared
// entry counts in the header, an FNV-1a checksum trailer, salvage of the
// longest verifiable prefix, and a `truncated` marker that resolution
// refuses to step past. Rather than re-implementing the flattened epoch
// index, to_code_map() projects an object map onto a CodeMapFile (symbol =
// "site#<idx>") so a plain core::CodeMapIndex — with its walkback oracle
// and property tests — serves object resolution unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/code_map.hpp"
#include "hw/types.hpp"
#include "os/vfs.hpp"

namespace viprof::memprof {

/// One live tracked object as of the map's epoch.
struct ObjectMapEntry {
  hw::Address address = 0;
  std::uint64_t size = 0;
  std::uint64_t obj_id = 0;
  std::uint32_t site = 0;

  bool contains(hw::Address a) const { return a >= address && a < address + size; }
};

/// An object that died at the collection closing the *previous* epoch.
/// Carries size and site so allocation accounting survives even when every
/// other map mentioning the object is lost.
struct ObjectDeath {
  std::uint64_t obj_id = 0;
  std::uint64_t size = 0;
  std::uint32_t site = 0;
};

/// Allocation-site dictionary line; every map carries the full dictionary
/// (sites are few) so each map is self-contained for reporting.
struct SiteName {
  std::uint32_t site = 0;
  std::string name;
};

/// One epoch's object map: serialisation to/from the VFS file format.
///
///   omap <epoch> objects <N> dead <D>\n
///   [truncated\n]
///   site <idx> <name>\n           (dictionary; any number of lines)
///   <hex-addr> <size> <obj_id> <site>\n    (N object lines)
///   dead <obj_id> <size> <site>\n          (D dead lines)
///   crc <%08x>\n                  (FNV-1a of all preceding bytes)
struct ObjectMapFile {
  std::uint64_t epoch = 0;
  bool truncated = false;  // salvaged prefix of a damaged file
  std::vector<SiteName> sites;
  std::vector<ObjectMapEntry> objects;
  std::vector<ObjectDeath> dead;

  std::string serialize() const;

  /// Strict parse: header, declared counts and checksum must all verify.
  static std::optional<ObjectMapFile> parse(const std::string& contents);

  /// Tolerant parse: recovers the longest verifiable prefix, stopping at
  /// the first malformed line (everything after is suspect). (Defined after
  /// the class: it embeds one.)
  struct Recovery;
  static Recovery salvage(const std::string& contents, std::uint64_t epoch_hint);

  /// Conventional path for the map of `epoch` under `dir`.
  static std::string path_for(const std::string& dir, hw::Pid pid, std::uint64_t epoch);

  /// Epoch encoded in a path_for-style file name, or nullopt.
  static std::optional<std::uint64_t> epoch_from_path(const std::string& path);

  /// Projection onto the code-map model: each object becomes an address
  /// range whose symbol is the canonical "site#<idx>" token (stable even
  /// when a map's dictionary lines were lost), feeding an unmodified
  /// core::CodeMapIndex for epoch-walk resolution.
  core::CodeMapFile to_code_map() const;
};

struct ObjectMapFile::Recovery {
  bool intact = false;     // full parse with matching counts and checksum
  bool header_ok = false;  // declared counts readable (exact-loss accounting)
  std::uint64_t objects_expected = 0;
  std::uint64_t dead_expected = 0;
  ObjectMapFile file;  // truncated flag set when !intact
};

/// The canonical symbol for allocation site `site` inside the object index.
std::string site_symbol(std::uint32_t site);

/// Parses a "site#<idx>" symbol back to the site index; nullopt otherwise.
std::optional<std::uint32_t> site_from_symbol(const std::string& symbol);

struct ObjectIndexLoad {
  core::CodeMapIndex index;
  std::vector<ObjectMapFile> files;  // salvaged maps, listing order
  std::uint64_t maps_loaded = 0;
  std::uint64_t maps_truncated = 0;
  std::uint64_t objects_loaded = 0;
};

/// Loads every object map under `dir` for `pid`, salvaging damage, and
/// builds the epoch index over the projected entries. The file-name epoch
/// is the salvage hint, exactly as for code maps.
ObjectIndexLoad load_object_index(const os::Vfs& vfs, const std::string& dir,
                                  hw::Pid pid);

}  // namespace viprof::memprof
