#include "memprof/site_table.hpp"

namespace viprof::memprof {

SiteStats& SiteTable::site(hw::Pid pid, std::uint32_t idx) {
  SiteStats& s = sites_[{pid, idx}];
  if (s.name.empty()) s.name = site_symbol(idx);
  return s;
}

void SiteTable::ingest(const std::string& scope, hw::Pid pid,
                       const ObjectMapFile& file) {
  ++maps_ingested_;
  if (file.truncated) ++maps_truncated_;
  for (const SiteName& sn : file.sites) {
    SiteStats& s = site(pid, sn.site);
    // Lexicographic-min among dictionary names: within a session every
    // intact map carries the same dictionary, and across sessions that
    // share a pid the winner is the same no matter which scope folds
    // first — fold order never shows in the rendered bytes.
    if (s.name == site_symbol(sn.site) || sn.name < s.name) s.name = sn.name;
  }
  for (const ObjectMapEntry& e : file.objects) {
    if (!seen_alloc_.insert({scope, pid, e.obj_id}).second) continue;
    SiteStats& s = site(pid, e.site);
    ++s.alloc_objects;
    s.alloc_bytes += e.size;
  }
  for (const ObjectDeath& d : file.dead) {
    if (!seen_dead_.insert({scope, pid, d.obj_id}).second) continue;
    SiteStats& s = site(pid, d.site);
    ++s.dead_objects;
    s.dead_bytes += d.size;
  }
}

const std::string& SiteTable::name_of(hw::Pid pid, std::uint32_t idx) const {
  static const std::string kEmpty;
  const auto it = sites_.find({pid, idx});
  return it == sites_.end() ? kEmpty : it->second.name;
}

}  // namespace viprof::memprof
