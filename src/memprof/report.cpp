#include "memprof/report.hpp"

#include <algorithm>
#include <map>

#include "core/sample_log.hpp"
#include "support/format.hpp"

namespace viprof::memprof {

ObjectReport build_object_report(const os::Vfs& vfs, const std::string& sample_dir,
                                 const std::vector<core::VmRegistration>& regs) {
  ObjectReport out;
  std::map<hw::Pid, core::CodeMapIndex> indexes;
  for (const core::VmRegistration& reg : regs) {
    if (reg.obj_map_dir.empty()) continue;
    ObjectIndexLoad load = load_object_index(vfs, reg.obj_map_dir, reg.pid);
    for (const ObjectMapFile& file : load.files) out.sites.ingest(reg.pid, file);
    indexes.emplace(reg.pid, std::move(load.index));
  }

  const std::vector<core::LoggedSample> samples =
      core::SampleLogReader::read(vfs, sample_dir, hw::EventKind::kObjDmiss);
  out.samples = samples.size();
  for (const core::LoggedSample& s : samples) {
    const auto it = indexes.find(s.pid);
    const core::CodeMapIndex* index = it == indexes.end() ? nullptr : &it->second;
    out.profile.add(hw::EventKind::kObjDmiss,
                    resolve_object(index, s.pc, s.epoch, &out.stats));
  }
  return out;
}

std::string render_memprof(const SiteTable& sites, const core::Profile& profile,
                           std::size_t top_n) {
  // Collapse (pid, site) onto the site index — object rows in the profile
  // are keyed by "site#<idx>" alone, the same way JIT.App rows collapse
  // method names across VMs. First (lowest-pid) name wins.
  struct Agg {
    std::string name;
    std::uint64_t alloc_objects = 0, alloc_bytes = 0;
    std::uint64_t dead_objects = 0, dead_bytes = 0;
  };
  std::map<std::uint32_t, Agg> by_site;
  for (const auto& [key, stats] : sites.sites()) {
    Agg& agg = by_site[key.second];
    if (agg.name.empty()) agg.name = stats.name;
    agg.alloc_objects += stats.alloc_objects;
    agg.alloc_bytes += stats.alloc_bytes;
    agg.dead_objects += stats.dead_objects;
    agg.dead_bytes += stats.dead_bytes;
  }

  struct Row {
    std::uint32_t site;
    std::uint64_t misses;
    const Agg* agg;
  };
  std::vector<Row> rows;
  rows.reserve(by_site.size());
  for (const auto& [site, agg] : by_site) {
    const core::ProfileRow* pr = profile.find(kObjectImage, site_symbol(site));
    rows.push_back({site, pr ? pr->count(hw::EventKind::kObjDmiss) : 0, &agg});
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.misses != b.misses) return a.misses > b.misses;
    if (a.agg->alloc_bytes != b.agg->alloc_bytes)
      return a.agg->alloc_bytes > b.agg->alloc_bytes;
    return a.site < b.site;
  });

  const std::uint64_t total = profile.total(hw::EventKind::kObjDmiss);
  support::TextTable table({"Dmiss %", "Samples", "Alloc B", "Live B", "Objects",
                            "Ineff B/miss", "Allocation site"});
  std::size_t emitted = 0;
  for (const Row& r : rows) {
    if (emitted >= top_n) break;
    const double pct =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(r.misses) / static_cast<double>(total);
    // Saturating: deaths charged from dead lines alone (alloc sighting in a
    // lost map) may exceed the sighted allocations.
    const std::uint64_t live_bytes =
        r.agg->alloc_bytes > r.agg->dead_bytes ? r.agg->alloc_bytes - r.agg->dead_bytes : 0;
    const std::uint64_t live_objects = r.agg->alloc_objects > r.agg->dead_objects
                                           ? r.agg->alloc_objects - r.agg->dead_objects
                                           : 0;
    // Bytes allocated per observed miss (integer): high = allocated-but-cold.
    const std::uint64_t ineff = r.agg->alloc_bytes / (1 + r.misses);
    table.add_row({support::fixed(pct, 4), std::to_string(r.misses),
                   std::to_string(r.agg->alloc_bytes), std::to_string(live_bytes),
                   std::to_string(live_objects), std::to_string(ineff), r.agg->name});
    ++emitted;
  }

  std::string out = table.render();
  out += "\n";
  const auto bin = [&](const char* symbol) -> std::uint64_t {
    const core::ProfileRow* row = profile.find(kObjectImage, symbol);
    return row ? row->count(hw::EventKind::kObjDmiss) : 0;
  };
  out += "degradation: no_map " + std::to_string(bin(kUnresolvedObjNoMap)) +
         ", truncated " + std::to_string(bin(kUnresolvedObjTruncated)) +
         ", untracked " + std::to_string(bin(kUnresolvedObjUntracked)) + " of " +
         std::to_string(total) + " samples\n";
  out += "object maps: " + std::to_string(sites.maps_ingested()) + " ingested, " +
         std::to_string(sites.maps_truncated()) + " truncated\n";
  return out;
}

}  // namespace viprof::memprof
