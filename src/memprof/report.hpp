// Per-allocation-site memory report (DESIGN.md §15).
//
// Folds the DMISS_OBJ sample stream and the epoch object maps into the
// ranking the memory profiler exists for: per allocation site, the share of
// L2 data misses (hot), bytes allocated, bytes still live, and a
// memory-inefficiency score — bytes allocated per observed miss, so a site
// that allocates megabytes the CPU never touches ranks as
// allocated-but-cold. Sites with zero samples are listed too; absence of
// misses is the finding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/registration.hpp"
#include "core/report.hpp"
#include "memprof/resolve.hpp"
#include "memprof/site_table.hpp"
#include "os/vfs.hpp"

namespace viprof::memprof {

/// Everything the offline object pass produces from a session directory.
struct ObjectReport {
  core::Profile profile;  // object rows + degradation bins, log order
  SiteTable sites;
  ObjectResolveStats stats;
  std::uint64_t samples = 0;
};

/// Offline builder: for each registration with an obj_map_dir, loads the
/// epoch object maps, then folds the DMISS_OBJ log serially in record
/// order. The serial fold in stream order is exactly what the striped
/// online aggregation recovers, so the resulting profile rows are
/// byte-identical to the server's at any thread/stripe count.
ObjectReport build_object_report(const os::Vfs& vfs, const std::string& sample_dir,
                                 const std::vector<core::VmRegistration>& regs);

/// The per-allocation-site table: sites aggregated across pids by index
/// (the same collapse JIT.App rows apply to symbols), ranked by miss count,
/// then bytes allocated, then site index. Ends with the degradation bins —
/// lost attribution is part of the report, not a footnote.
std::string render_memprof(const SiteTable& sites, const core::Profile& profile,
                           std::size_t top_n);

}  // namespace viprof::memprof
