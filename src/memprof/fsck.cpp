#include "memprof/fsck.hpp"

#include "memprof/object_map.hpp"

namespace viprof::memprof {

namespace {

std::string basename_of(const std::string& path) {
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

ObjectFsckReport fsck_object_maps(const os::Vfs& in, os::Vfs* out,
                                  support::Telemetry& telemetry, bool verbose) {
  ObjectFsckReport report;
  for (const std::string& path : in.list("")) {
    if (basename_of(path).rfind("omap.", 0) != 0) continue;
    const auto contents = in.read(path);
    const auto hint = ObjectMapFile::epoch_from_path(path);
    const ObjectMapFile::Recovery rec =
        ObjectMapFile::salvage(*contents, hint.value_or(0));
    if (rec.intact) {
      ++report.maps_intact;
      continue;
    }
    ++report.maps_truncated;
    report.corrupt = true;
    if (!rec.header_ok) {
      // Nothing verifiable, not even the declared counts: the epoch is a
      // total loss and only the file name says it existed.
      ++report.dead_maps;
      if (verbose)
        report.details += path + " CORRUPT: no readable header (epoch " +
                          u64(rec.file.epoch) + " from file name)\n";
    } else {
      const std::uint64_t obj_got = rec.file.objects.size();
      const std::uint64_t dead_got = rec.file.dead.size();
      report.objects_salvaged += obj_got;
      report.objects_lost += rec.objects_expected - obj_got;
      report.deaths_salvaged += dead_got;
      report.deaths_lost += rec.dead_expected - dead_got;
      if (obj_got == 0 && dead_got == 0 &&
          (rec.objects_expected > 0 || rec.dead_expected > 0)) {
        ++report.dead_maps;
      }
      if (verbose) {
        report.details += path + " CORRUPT: salvaged " + u64(obj_got) + " of " +
                          u64(rec.objects_expected) + " object(s), " + u64(dead_got) +
                          " of " + u64(rec.dead_expected) + " death(s) (epoch " +
                          u64(rec.file.epoch) + ")\n";
      }
    }
    // Rewrite as the salvaged prefix: the truncated marker survives the
    // round trip, so resolution against the recovery tree still refuses to
    // walk past this epoch.
    if (out != nullptr) out->write(path, rec.file.serialize());
  }

  telemetry.counter("fsck.omaps.intact").inc(report.maps_intact);
  telemetry.counter("fsck.omaps.truncated").inc(report.maps_truncated);
  telemetry.counter("fsck.omaps.objects_salvaged").inc(report.objects_salvaged);
  telemetry.counter("fsck.omaps.objects_lost").inc(report.objects_lost);
  telemetry.counter("fsck.omaps.deaths_salvaged").inc(report.deaths_salvaged);
  telemetry.counter("fsck.omaps.deaths_lost").inc(report.deaths_lost);
  telemetry.counter("fsck.omaps.unrecoverable").inc(report.dead_maps);

  report.summary = u64(report.maps_intact) + " object map(s) intact, " +
                   u64(report.maps_truncated) + " truncated (" +
                   u64(report.objects_salvaged) + " object(s) salvaged, " +
                   u64(report.objects_lost) + " lost)";
  return report;
}

}  // namespace viprof::memprof
