// Object-sample resolution: data addresses → allocation sites.
//
// The cache model's L2-miss stream (hw::EventKind::kObjDmiss) carries data
// addresses inside a registered VM heap. Each sample resolves against the
// object map of its logging-time epoch with the same backward walk as JIT
// code (the index *is* a core::CodeMapIndex over projected object entries),
// and the same crash-aware refusal: a missing or truncated epoch map sends
// the sample to a counted unresolved.obj.* bin, never to a neighbouring
// object that happens to occupy the range today.
#pragma once

#include <cstdint>

#include "core/code_map.hpp"
#include "core/resolver.hpp"
#include "hw/types.hpp"

namespace viprof::memprof {

/// Image name shared by every object-domain row.
inline constexpr const char* kObjectImage = "heap.objects";

/// Degradation bins for object samples (DESIGN.md §15). `no_map`: the
/// epoch's object map was never written (agent dead, dropped write, no maps
/// at all). `truncated`: the map landed torn and the walk refuses to step
/// past the salvaged prefix. `untracked`: maps are fine but no tracked
/// object covers the address (untracked-allocation fallback, stack/mature
/// scratch data).
inline constexpr const char* kUnresolvedObjNoMap = "unresolved.obj.no_map";
inline constexpr const char* kUnresolvedObjTruncated = "unresolved.obj.truncated";
inline constexpr const char* kUnresolvedObjUntracked = "unresolved.obj.untracked";

struct ObjectResolveStats {
  std::uint64_t resolved = 0;
  std::uint64_t unresolved = 0;
  std::uint64_t backward_steps = 0;
  std::uint64_t no_map = 0;
  std::uint64_t truncated_map = 0;
  std::uint64_t untracked = 0;

  void merge(const ObjectResolveStats& o) {
    resolved += o.resolved;
    unresolved += o.unresolved;
    backward_steps += o.backward_steps;
    no_map += o.no_map;
    truncated_map += o.truncated_map;
    untracked += o.untracked;
  }
};

/// Resolves one data address against `index` (nullptr = no maps known for
/// the pid: everything bins as no_map). Deterministic per (index contents,
/// addr, epoch) — the online ingest workers and offline viprof_report call
/// exactly this function, which is what makes their rows byte-identical.
core::Resolution resolve_object(const core::CodeMapIndex* index, hw::Address addr,
                                std::uint64_t epoch,
                                ObjectResolveStats* stats = nullptr);

}  // namespace viprof::memprof
