#include "memprof/agent.hpp"

#include "jvm/heap.hpp"
#include "support/backoff.hpp"
#include "support/check.hpp"

namespace viprof::memprof {

MemProfAgent::MemProfAgent(os::Machine& machine, const MemProfConfig& config)
    : machine_(&machine), config_(config) {
  support::Telemetry& tele = machine_->telemetry();
  tele_allocs_ = &tele.counter("memprof.allocs_logged");
  tele_moves_ = &tele.counter("memprof.moves_flagged");
  tele_deads_ = &tele.counter("memprof.deads_flagged");
  tele_maps_written_ = &tele.counter("memprof.maps_written");
  tele_map_entries_ = &tele.counter("memprof.map_entries");
  tele_maps_dropped_ = &tele.counter("memprof.maps_dropped");
  tele_map_errors_ = &tele.counter("memprof.map_write_errors");
  tele_map_cost_ = &tele.histogram("memprof.map_write.cost_cycles", 0, 50'000, 32);
  tele_map_entries_hist_ = &tele.histogram("memprof.map_write.entries", 0, 64, 32);
}

hw::Cycles MemProfAgent::on_vm_start(const jvm::VmStartInfo& info) {
  heap_ = info.heap;
  pid_ = info.pid;

  // Like the VM agent, the memory profiler is a library with hooks in the
  // VM — its own image, so its overhead shows up in its own reports.
  os::Image& lib = machine_->registry().create("libviprofmemprof.so",
                                               os::ImageKind::kSharedLib, 12 * 1024);
  lib.symbols().add("viprof_log_alloc", 0, 2048);
  lib.symbols().add("viprof_flag_obj_move", 2048, 1024);
  lib.symbols().add("viprof_flag_obj_death", 3072, 1024);
  lib.symbols().add("viprof_write_object_map", 4096, 8192);
  os::Process* proc = machine_->find_process(info.pid);
  VIPROF_CHECK(proc != nullptr);
  const os::Vma vma = machine_->loader().load_library(*proc, lib.id());
  context_ = hw::ExecContext{vma.start, lib.size(), hw::CpuMode::kUser, info.pid};

  // No registration and no epoch markers from here: the VM agent's
  // registration carries obj_map_dir, and its markers already advance the
  // pid's epoch for every sample stream.
  return 0;
}

hw::Cycles MemProfAgent::on_alloc_site(std::uint32_t site, const std::string& name) {
  sites_.push_back({site, name});
  ++stats_.sites_announced;
  stats_.cost_cycles += config_.site_hook_cost;
  return config_.site_hook_cost;
}

hw::Cycles MemProfAgent::on_object_alloc(const jvm::DataObject& obj) {
  if (pending_set_.insert(obj.id).second) pending_.push_back(obj.id);
  ++stats_.allocs_logged;
  tele_allocs_->inc();
  stats_.cost_cycles += config_.alloc_hook_cost;
  return config_.alloc_hook_cost;
}

hw::Cycles MemProfAgent::on_object_moved(const jvm::DataObject& obj,
                                         hw::Address old_address) {
  (void)old_address;
  // Cheap flagging only — the collector never constructs map entries. The
  // object's post-move address is read at map-write time.
  if (pending_set_.insert(obj.id).second) pending_.push_back(obj.id);
  ++stats_.moves_flagged;
  tele_moves_->inc();
  stats_.cost_cycles += config_.move_flag_cost;
  return config_.move_flag_cost;
}

hw::Cycles MemProfAgent::on_object_dead(const jvm::DataObject& obj) {
  // Deaths happen inside the collection that closes an epoch — *after* that
  // epoch's map was written — so the death line lands in the next map.
  pending_dead_.push_back({obj.id, obj.size, obj.site});
  ++stats_.deads_flagged;
  tele_deads_->inc();
  stats_.cost_cycles += config_.dead_flag_cost;
  return config_.dead_flag_cost;
}

hw::Cycles MemProfAgent::on_epoch_end(std::uint64_t epoch, bool final_epoch) {
  (void)final_epoch;
  if (!dead_ && config_.fault != nullptr &&
      config_.fault->should_kill(support::FaultComponent::kAgent,
                                 machine_->cpu().now())) {
    dead_ = true;
  }
  if (dead_) {
    // No map for this epoch: its object samples degrade to the counted
    // unresolved.obj.no_map bin — degraded, never misattributed.
    ++stats_.killed_epochs;
    return 0;
  }
  return write_map(epoch);
}

hw::Cycles MemProfAgent::write_map(std::uint64_t epoch) {
  VIPROF_CHECK(heap_ != nullptr);
  ObjectMapFile file;
  file.epoch = epoch;
  file.sites = sites_;
  file.objects.reserve(pending_.size());
  for (const jvm::ObjId id : pending_) {
    const jvm::DataObject& obj = heap_->object(id);
    // An object allocated this epoch dies no earlier than the collection
    // that closes it, which runs after this write — every pending object is
    // still live and its address current. Guard anyway: a dead entry would
    // shadow whatever reuses its range.
    if (obj.dead) continue;
    file.objects.push_back({obj.address, obj.size, obj.id, obj.site});
  }
  file.dead = pending_dead_;

  const std::string path = ObjectMapFile::path_for(config_.map_dir, pid_, epoch);
  const std::string blob = file.serialize();
  hw::Cycles cost = config_.map_write_base +
                    config_.map_write_per_entry *
                        static_cast<hw::Cycles>(file.objects.size() + file.dead.size());

  os::IoStatus st = machine_->vfs().write(path, blob);
  if (st == os::IoStatus::kIoError || st == os::IoStatus::kNoSpace) {
    ++stats_.map_write_errors;
    tele_map_errors_->inc();
    support::BackoffConfig policy;
    policy.initial = config_.map_retry_cost;
    policy.multiplier = 1.0;
    policy.max_attempts = config_.map_write_retries;
    support::Backoff backoff(policy);
    while (st == os::IoStatus::kIoError || st == os::IoStatus::kNoSpace) {
      const auto delay = backoff.next();
      if (!delay) break;
      cost += *delay;
      ++stats_.map_write_retries;
      st = machine_->vfs().write(path, blob);
    }
  }
  switch (st) {
    case os::IoStatus::kOk:
    case os::IoStatus::kTorn:
      // Torn: a prefix landed; the reader salvages and marks the map
      // truncated, and resolution refuses to walk past it.
      if (st == os::IoStatus::kTorn) ++stats_.maps_torn;
      ++stats_.maps_written;
      stats_.map_entries_written += file.objects.size();
      stats_.map_deaths_written += file.dead.size();
      tele_maps_written_->inc();
      tele_map_entries_->inc(file.objects.size());
      break;
    case os::IoStatus::kIoError:
    case os::IoStatus::kNoSpace:
      // The epoch closes without an object map; its samples land in
      // unresolved.obj.no_map. Counted here, never silent.
      ++stats_.maps_dropped;
      tele_maps_dropped_->inc();
      break;
  }
  tele_map_cost_->add(static_cast<double>(cost));
  tele_map_entries_hist_->add(static_cast<double>(file.objects.size()));
  const hw::Cycles begin = machine_->cpu().now();
  machine_->telemetry().spans().record("memprof.map_write", "gc", begin, begin + cost,
                                       epoch);
  stats_.cost_cycles += cost;

  if (st == os::IoStatus::kIoError || st == os::IoStatus::kNoSpace) {
    // Keep the buffers: the entries ride into the next epoch's map, so the
    // objects are not lost forever — only the dropped epoch degrades.
    return cost;
  }
  pending_.clear();
  pending_set_.clear();
  pending_dead_.clear();
  return cost;
}

}  // namespace viprof::memprof
