// Per-allocation-site accounting folded from object maps.
//
// Object maps are *partial*: an object appears in the map of every epoch in
// which it was allocated or moved, and its death is recorded once in the
// map written after the collection that reclaimed it. The table therefore
// dedups by (pid, obj_id) — the first sighting of an object charges its
// allocation, the first death line charges its death — so the same totals
// fall out no matter how many maps mention an object or in which order the
// maps are folded. Both the online server and the offline resolver build
// this table from the same file bytes, which is what makes the rendered
// per-site rows byte-identical across ingest paths.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "hw/types.hpp"
#include "memprof/object_map.hpp"

namespace viprof::memprof {

struct SiteStats {
  std::string name;  // first dictionary name seen; "site#<idx>" fallback
  std::uint64_t alloc_objects = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t dead_objects = 0;
  std::uint64_t dead_bytes = 0;

  /// Saturating: a death can be charged from a dead line alone when the map
  /// holding the allocation sighting was lost, so dead may exceed alloc.
  std::uint64_t live_objects() const {
    return alloc_objects > dead_objects ? alloc_objects - dead_objects : 0;
  }
  std::uint64_t live_bytes() const {
    return alloc_bytes > dead_bytes ? alloc_bytes - dead_bytes : 0;
  }
};

class SiteTable {
 public:
  /// Folds one salvaged object map into the table. Safe to feed the same
  /// map twice (a federated query may see a map through several shards):
  /// object and death dedup make ingestion idempotent per (scope, pid,
  /// obj_id). `scope` names the session the map tree belongs to — obj_ids
  /// are per-session, so two sessions that happen to share a pid must not
  /// dedup against each other (and must total the same no matter which
  /// folds first).
  void ingest(const std::string& scope, hw::Pid pid, const ObjectMapFile& file);

  /// Single-session fold (the offline report path): empty scope.
  void ingest(hw::Pid pid, const ObjectMapFile& file) { ingest("", pid, file); }

  /// Sites keyed by (pid, site), ordered — deterministic render order.
  const std::map<std::pair<hw::Pid, std::uint32_t>, SiteStats>& sites() const {
    return sites_;
  }

  /// Display name for a site (dictionary name or "site#<idx>").
  const std::string& name_of(hw::Pid pid, std::uint32_t site) const;

  std::uint64_t maps_ingested() const { return maps_ingested_; }
  std::uint64_t maps_truncated() const { return maps_truncated_; }

 private:
  struct Key {
    std::string scope;
    hw::Pid pid;
    std::uint64_t obj_id;
    bool operator==(const Key& o) const {
      return pid == o.pid && obj_id == o.obj_id && scope == o.scope;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::string>{}(k.scope) ^
             static_cast<std::size_t>((static_cast<std::uint64_t>(k.pid) << 48) ^
                                      k.obj_id * 0x9e3779b97f4a7c15ull);
    }
  };

  SiteStats& site(hw::Pid pid, std::uint32_t site);

  std::map<std::pair<hw::Pid, std::uint32_t>, SiteStats> sites_;
  std::unordered_set<Key, KeyHash> seen_alloc_;
  std::unordered_set<Key, KeyHash> seen_dead_;
  std::uint64_t maps_ingested_ = 0;
  std::uint64_t maps_truncated_ = 0;
};

}  // namespace viprof::memprof
