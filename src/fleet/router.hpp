// The fleet router: sharded session ingest with failover and exact
// degradation accounting (DESIGN.md §12).
//
// N ProfileServer shards sit behind a consistent-hash ring; each shard
// flushes completed sessions into its own ProfileStore partition inside
// one shared fleet Vfs (`<shard>/store`), and the router publishes a
// crc-guarded fleet manifest after every terminal session. Sessions are
// streamed one at a time (the shard-internal ThreadPool still ingests
// concurrently; PR 4's reorder buffer keeps the result byte-identical at
// any width), which makes the failure path fully deterministic: the
// Backoff jitter draws, the fleet kill checkpoints, and therefore the
// fleet.retried.* counters replay exactly from the seed.
//
// Failure model, in escalation order:
//   - transient send fault ("fleet/send/<shard>" FaultInjector path):
//     retried through support::Backoff; on exhaustion the frame is dropped
//     and its records surface as fleet.lost.wire — counted, never silent.
//   - circuit break: `circuit_break_after` consecutive give-ups mark the
//     shard unroutable; the partial session is discarded on the (still
//     alive) shard and re-streamed from scratch to the ring successor.
//   - process death (FaultComponent::kFleet, one checkpoint per frame
//     routed): the shard's server object is destroyed and its partition
//     re-opened through store recovery — completed sessions survive on
//     disk, the in-flight one fails over.
// A session only ever reaches a partition on its *terminal* attempt, so
// failover can never double-count: acked == stored + lost, exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/ring.hpp"
#include "os/vfs.hpp"
#include "service/server.hpp"
#include "store/manifest.hpp"
#include "store/profile_store.hpp"
#include "support/backoff.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"

namespace viprof::fleet {

struct FleetConfig {
  /// Initial shard count; shards are named "shard-0" .. "shard-<N-1>".
  std::size_t shards = 3;
  std::size_t vnodes = 16;
  /// Per-shard server template. Its `fault` drives the existing wire/queue
  /// fault points inside each shard; the fleet-level `fault` below drives
  /// the send-retry and kill checkpoints. Tests usually point both at the
  /// same injector.
  service::ServerConfig server;
  /// Sample lines per streamed batch (ReplayOptions::batch_records).
  std::size_t batch_records = 256;
  /// Retry policy for transient send faults.
  support::BackoffConfig retry{/*initial=*/1'000, /*multiplier=*/2.0,
                               /*cap=*/16'000, /*jitter=*/0.25,
                               /*max_attempts=*/3, /*budget=*/0};
  /// Consecutive frame give-ups that open a shard's circuit.
  std::size_t circuit_break_after = 3;
  /// Seeds the router's Xoshiro256 (Backoff jitter): the whole retry
  /// schedule replays from this.
  std::uint64_t seed = 0xf1ee7;
  /// Fleet-level fault points: "fleet/send/<shard>" transient errors and
  /// FaultComponent::kFleet kill checkpoints. nullptr = no faults.
  support::FaultInjector* fault = nullptr;
};

/// What happened to one routed session — the per-session slice of the
/// fleet ledger (see store::FleetLedger for the invariant).
struct SessionOutcome {
  std::string session;
  std::string shard;  // terminal shard; "" when refused
  bool completed = false;
  bool refused = false;    // never attempted: no routable shard
  bool lost_dead = false;  // terminal attempt died with no live successor
  std::size_t attempts = 0;
  std::uint64_t records_sent = 0;  // terminal attempt only
  std::uint64_t records_stored = 0;
  std::uint64_t records_lost_wire = 0;
  std::uint64_t records_lost_queue = 0;
};

class Router {
 public:
  /// `fleet_vfs` is the fleet's persistent namespace: every shard's
  /// partition plus the fleet manifest live in it.
  Router(os::Vfs& fleet_vfs, const FleetConfig& config = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Streams one recorded session (client.hpp world layout) to its ring
  /// owner, failing over along the preference list as shards die. On the
  /// terminal attempt the session is drained and flushed to the shard's
  /// partition, the ledger is settled, and the fleet manifest republished.
  SessionOutcome ingest(const os::Vfs& world, const std::string& session_id);

  /// Shard join: fresh server + partition, ring rebalance. False when the
  /// name is taken.
  bool add_shard(const std::string& name);

  /// Shard leave: quiesces (drain + flush residual deltas), removes the
  /// shard from the ring so no further session routes to it. Its partition
  /// stays live for federated queries. False when unknown.
  bool remove_shard(const std::string& name);

  /// All shards ever created, in creation order (dead and departed ones
  /// included — their partitions still answer queries).
  std::vector<std::string> shard_names() const;

  /// Live server, or nullptr once the shard process died.
  service::ProfileServer* server(const std::string& name);
  /// Partition store; survives the shard process (re-opened on kill).
  store::ProfileStore* partition(const std::string& name);
  bool alive(const std::string& name) const;
  bool routable(const std::string& name) const;

  /// Publishes the fleet's live telemetry into the fleet Vfs:
  /// `<shard>/metrics.json` + `<shard>/trace.json` for every shard whose
  /// process is alive (the shard server's registry and span ring), and
  /// `fleet/metrics.json` + `fleet/trace.json` for the router's own. Each
  /// file is written temp + rename, same discipline as the manifests, and
  /// fleet fsck ignores them. `viprof_stat trace-merge` folds the trace
  /// files into one fleet-wide Chrome trace; OfflineFleet serves them to
  /// `viprof_query stats/trace --fleet`. Returns files written.
  std::size_t export_telemetry();

  const store::FleetLedger& ledger() const { return ledger_; }
  /// Current manifest view (same content as the published MANIFEST file).
  store::FleetManifest manifest() const;
  /// Fleet kill checkpoints consumed so far (one per frame routed toward a
  /// shard) — the kill-sweep tests enumerate this.
  std::uint64_t fleet_checkpoints() const { return checkpoints_; }

  support::Telemetry& telemetry() { return telemetry_; }
  const FleetConfig& config() const { return config_; }
  const Ring& ring() const { return ring_; }

 private:
  friend class RetryTransport;

  struct Shard {
    std::string name;
    bool alive = true;       // process alive; false once kFleet killed it
    bool routable = true;    // false once the circuit opened
    bool pending_reopen = false;  // killed mid-attempt; reopen deferred
    std::size_t consecutive_failures = 0;
    std::uint64_t flush_tick = 0;  // store tick cursor (one per session)
    std::uint64_t stored_sessions = 0;
    std::uint64_t stored_records = 0;
    std::unique_ptr<service::ProfileServer> server;
    std::unique_ptr<store::ProfileStore> store;
  };

  Shard* find(const std::string& name);
  const Shard* find(const std::string& name) const;
  Shard& create_shard(const std::string& name);
  /// Destroys the dead shard's server and re-opens its partition through
  /// store recovery. Deferred until the aborted attempt has unwound (the
  /// connection must not outlive its server).
  void finish_kill(Shard& shard);
  void bump(const char* counter, std::uint64_t n = 1);
  void publish_manifest();

  os::Vfs& vfs_;
  FleetConfig config_;
  Ring ring_;
  support::Xoshiro256 rng_;
  support::Telemetry telemetry_;
  std::vector<std::unique_ptr<Shard>> shards_;  // creation order
  store::FleetLedger ledger_;
  std::uint64_t generation_ = 0;
  std::uint64_t checkpoints_ = 0;
};

}  // namespace viprof::fleet
