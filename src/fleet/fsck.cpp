#include "fleet/fsck.hpp"

#include "hw/event.hpp"
#include "store/profile_store.hpp"

namespace viprof::fleet {

namespace {

void worsen(core::FsckVerdict& verdict, core::FsckVerdict to) {
  if (static_cast<int>(to) > static_cast<int>(verdict)) verdict = to;
}

}  // namespace

FleetFsckReport fsck_fleet(const os::Vfs& fleet) {
  FleetFsckReport report;

  // Work on a private copy: partition recovery rewrites damaged segments,
  // and fsck must leave the caller's namespace untouched.
  os::Vfs scratch = fleet;

  const std::optional<std::string> bytes = scratch.read(store::kFleetManifestPath);
  if (!bytes) {
    report.verdict = core::FsckVerdict::kUnrecoverable;
    report.summary = "fleet: no manifest";
    return report;
  }
  const std::optional<store::FleetManifest> manifest =
      store::FleetManifest::parse(*bytes);
  if (!manifest) {
    report.verdict = core::FsckVerdict::kUnrecoverable;
    report.summary = "fleet: manifest corrupt (crc)";
    return report;
  }
  report.manifest_ok = true;
  report.ledger = manifest->ledger;

  for (const store::FleetShard& shard : manifest->shards) {
    ++report.partitions;
    store::StoreConfig sc;
    sc.root = shard.root;
    store::ProfileStore store(scratch, sc);
    const store::StoreRecovery rec = store.open();
    report.partition_intervals_lost += rec.intervals_lost;
    report.partition_rows_lost += rec.rows_lost;
    switch (rec.verdict) {
      case core::FsckVerdict::kClean:
        ++report.partitions_clean;
        break;
      case core::FsckVerdict::kSalvaged:
        ++report.partitions_salvaged;
        break;
      case core::FsckVerdict::kUnrecoverable:
        ++report.partitions_unrecoverable;
        break;
    }
    worsen(report.verdict, rec.verdict);
    std::uint64_t partition_records = 0;
    for (const store::ProfileStore::StoredSession& ss : store.sessions())
      partition_records += ss.records;
    report.stored_audit += partition_records;
    report.details += shard.name + ": " + core::to_string(rec.verdict) + ", " +
                      std::to_string(partition_records) + " records (manifest says " +
                      std::to_string(shard.records) + ")\n";
  }

  report.ledger_balanced = report.ledger.balanced();
  // The books (ledger) against the shelves (partitions). With undamaged
  // partitions the two must agree to the record; once recovery salvaged
  // rows away the audit can only legitimately come in *below* the ledger
  // (the loss is already counted by the partition's own exact accounting
  // and the verdict is already kSalvaged) — anything else is unexplained.
  const bool partitions_damaged =
      report.partitions_salvaged > 0 || report.partitions_unrecoverable > 0;
  report.stored_matches =
      report.ledger.stored_records == report.stored_audit ||
      (partitions_damaged && report.ledger.stored_records > report.stored_audit);
  if (!report.ledger_balanced || !report.stored_matches)
    worsen(report.verdict, core::FsckVerdict::kUnrecoverable);

  report.summary =
      "fleet: " + std::string(core::to_string(report.verdict)) + ", " +
      std::to_string(report.partitions) + " partitions (" +
      std::to_string(report.partitions_clean) + " clean, " +
      std::to_string(report.partitions_salvaged) + " salvaged, " +
      std::to_string(report.partitions_unrecoverable) + " unrecoverable), acked " +
      std::to_string(report.ledger.acked_records) + " == stored " +
      std::to_string(report.ledger.stored_records) + " + lost " +
      std::to_string(report.ledger.lost_wire + report.ledger.lost_queue +
                     report.ledger.lost_dead_records) +
      (report.ledger_balanced ? " (exact)" : " (IMBALANCED)") +
      (report.stored_matches ? "" : ", partition audit MISMATCH");
  return report;
}

}  // namespace viprof::fleet
