// Consistent-hash ring for session-to-shard routing.
//
// Each shard contributes `vnodes` points on a 64-bit ring; a session is
// owned by the first point clockwise of its own hash. Virtual nodes keep
// the per-shard load even, and — the property the failover path leans on —
// adding or removing one shard only moves the keys adjacent to its points,
// so a rebalance re-routes a bounded slice of the fleet. preference()
// yields every shard exactly once in clockwise order starting at the
// owner: the router walks that list when shards die, so two routers with
// the same membership always agree on the failover target.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "support/hash.hpp"

namespace viprof::fleet {

/// 64-bit FNV-1a with an avalanche finalizer. Raw FNV-1a barely moves the
/// high bits for strings that differ only in a trailing character — which
/// is exactly what "shard-2#7" vs "shard-2#8" and "sess-41" vs "sess-42"
/// are — so without the finalizer every shard's vnodes collapse into a few
/// tight runs and one shard ends up owning the whole ring. The fmix step
/// spreads those neighbouring hashes across the full 64-bit space.
inline std::uint64_t fnv1a64(const std::string& s) {
  return support::fmix64(support::fnv1a64(s));
}

class Ring {
 public:
  explicit Ring(std::size_t vnodes = 16) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

  void add(const std::string& shard) {
    if (!members_.insert(shard).second) return;
    for (std::size_t i = 0; i < vnodes_; ++i)
      points_[fnv1a64(shard + "#" + std::to_string(i))] = shard;
  }

  void remove(const std::string& shard) {
    if (members_.erase(shard) == 0) return;
    for (auto it = points_.begin(); it != points_.end();) {
      if (it->second == shard) it = points_.erase(it);
      else ++it;
    }
  }

  bool contains(const std::string& shard) const { return members_.count(shard) != 0; }

  /// The shard owning `key`; empty when the ring is empty.
  std::string owner(const std::string& key) const {
    const std::vector<std::string> pref = preference(key);
    return pref.empty() ? std::string() : pref.front();
  }

  /// Every member exactly once, clockwise from `key`'s point: the owner
  /// first, then the failover successors in deterministic order.
  std::vector<std::string> preference(const std::string& key) const {
    std::vector<std::string> out;
    if (points_.empty()) return out;
    std::set<std::string> seen;
    auto it = points_.lower_bound(fnv1a64(key));
    for (std::size_t walked = 0; walked < points_.size(); ++walked) {
      if (it == points_.end()) it = points_.begin();
      if (seen.insert(it->second).second) out.push_back(it->second);
      ++it;
    }
    return out;
  }

  std::size_t size() const { return members_.size(); }
  const std::set<std::string>& members() const { return members_; }

 private:
  std::size_t vnodes_;
  std::set<std::string> members_;
  std::map<std::uint64_t, std::string> points_;
};

}  // namespace viprof::fleet
