// Scatter-gather federated queries over the fleet (DESIGN.md §12).
//
// Every completed session lives in exactly one shard partition (the router
// flushes at terminal success only), so a federated answer is a fold over
// partitions: gather each session's stored profile, merge in globally
// ascending session-id order — the same order a single ProfileServer's
// "top" query folds its session map — and render. That makes the federated
// report byte-identical to a single-server run over the same sessions, and
// it works uniformly whether a shard's process is alive, circuit-broken,
// or dead with its partition re-opened through recovery.
//
// Federator answers over a live Router; OfflineFleet answers over an
// exported fleet directory (manifest + partitions), the shape
// `viprof_fleet query` and `viprof_query --fleet` consume.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "fleet/router.hpp"
#include "store/manifest.hpp"
#include "store/profile_store.hpp"

namespace viprof::fleet {

class Federator {
 public:
  explicit Federator(Router& router) : router_(&router) {}

  /// All stored sessions fleet-wide, ascending id.
  std::vector<store::ProfileStore::StoredSession> sessions() const;

  /// One session's stored profile, from whichever partition holds it.
  core::Profile session_profile(const std::string& id) const;

  /// Fold of every stored session in ascending id order — the single
  /// server "top" merge order.
  core::Profile merged_profile() const;

  std::string render_top(const std::vector<hw::EventKind>& events,
                         std::size_t top_n) const;

  /// Live sessions table gathered from every alive shard, rows in
  /// ascending id order — column-identical to ProfileServer's "sessions"
  /// query. Sessions on dead shards are absent (their stats died with the
  /// process; their profiles did not — see sessions()).
  std::string sessions_table() const;

  /// Regression ranking between two sessions' stored profiles
  /// (core::render_diff — e.g. yesterday's canary session vs today's).
  std::string render_diff(const std::string& before_session,
                          const std::string& after_session, hw::EventKind event,
                          std::size_t top_n) const;

  /// Scatter-gather of live telemetry: the router's own registry plus
  /// every alive shard server's, one section per source (text) or one
  /// combined {"fleet":…,"shards":{…}} object (json). Dead shards are
  /// absent — their registries died with the process; their contention
  /// history survives only in exported metrics.json files.
  std::string stats(bool as_json) const;

  /// Every live span ring — the router's ("fleet", pid 1) and each alive
  /// shard server's — folded into one Chrome trace via
  /// support::merge_chrome_traces (shard = pid, worker thread = tid).
  std::string merged_trace() const;

  /// Query-string front end, mirroring ProfileServer::query:
  ///   sessions
  ///   top N [--event time|dmiss] [--session S]
  ///   diff BEFORE AFTER [--event E] [--top N]
  ///   stats [--json]
  ///   trace
  std::string query(const std::string& text) const;

 private:
  std::vector<store::ProfileStore*> partitions() const;

  Router* router_;
};

/// A fleet namespace opened read-only from its files: the crc-guarded
/// manifest plus one recovered ProfileStore per shard partition.
class OfflineFleet {
 public:
  /// nullopt when the manifest is missing or fails its crc — an offline
  /// fleet is all-or-nothing, like the store manifest it imitates.
  static std::optional<OfflineFleet> open(os::Vfs& fleet);

  const store::FleetManifest& manifest() const { return manifest_; }

  std::vector<store::ProfileStore::StoredSession> sessions() const;
  core::Profile session_profile(const std::string& id) const;
  core::Profile merged_profile() const;
  std::string render_top(const std::vector<hw::EventKind>& events,
                         std::size_t top_n) const;
  std::string render_diff(const std::string& before_session,
                          const std::string& after_session, hw::EventKind event,
                          std::size_t top_n) const;
  /// Same verbs as Federator::query; "sessions" renders the
  /// stored-session inventory (no live stats offline), while "stats" and
  /// "trace" answer from the telemetry files Router::export_telemetry
  /// published (and are errors when none were exported).
  std::string query(const std::string& text) const;

 private:
  OfflineFleet() = default;

  std::vector<store::ProfileStore*> partitions() const;

  store::FleetManifest manifest_;
  std::vector<std::unique_ptr<store::ProfileStore>> stores_;
  /// Exported telemetry, when present: (source, metrics json, trace json),
  /// "fleet" first then shards in manifest order. Missing files load as
  /// empty strings and are skipped at query time.
  struct ExportedTelemetry {
    std::string source;
    std::string metrics_json;
    std::string trace_json;
  };
  std::vector<ExportedTelemetry> telemetry_;
};

}  // namespace viprof::fleet
