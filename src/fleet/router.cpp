#include "fleet/router.hpp"

#include <utility>

#include "service/client.hpp"
#include "support/check.hpp"
#include "support/traced_mutex.hpp"

namespace viprof::fleet {

namespace {
constexpr const char* kSendPathPrefix = "fleet/send/";
}

// ---------------------------------------------------------------- transport

/// Wraps one shard connection for one streaming attempt. Every send is a
/// fleet kill checkpoint; a transient "fleet/send/<shard>" fault is
/// retried through Backoff (jitter drawn from the router's seeded rng, so
/// the schedule is reproducible); a frame whose retries exhaust is dropped
/// — its records surface in the lost.wire arithmetic — and counts toward
/// the shard's circuit breaker. Returning false aborts the client stream,
/// which is how both kill and circuit-break escalate into failover.
class RetryTransport final : public service::Transport {
 public:
  RetryTransport(Router& router, Router::Shard& shard,
                 service::ServerConnection& conn)
      : router_(router),
        shard_(shard),
        conn_(conn),
        backoff_(router.config_.retry, &router.rng_) {}

  bool send(const std::string& bytes) override {
    if (!shard_.alive || !shard_.routable) return false;
    support::FaultInjector* fault = router_.config_.fault;
    const std::uint64_t checkpoint = ++router_.checkpoints_;
    if (fault != nullptr &&
        fault->should_kill(support::FaultComponent::kFleet, checkpoint)) {
      // The shard process currently being streamed to dies. Destruction is
      // deferred to Router::finish_kill — this connection still points at
      // the server object.
      shard_.alive = false;
      shard_.pending_reopen = true;
      return false;
    }
    if (fault != nullptr) {
      backoff_.reset();
      for (;;) {
        const auto outcome =
            fault->on_write(kSendPathPrefix + shard_.name, bytes.size());
        if (outcome.result == support::FaultInjector::WriteOutcome::Result::kOk)
          break;
        if (backoff_.next()) {
          ++router_.ledger_.retried_sends;
          router_.bump("fleet.retried.sends");
          continue;
        }
        // Retries exhausted: this frame is gone. The stream continues —
        // whatever records it carried are counted as lost.wire when the
        // session settles — unless the give-up opens the circuit.
        ++router_.ledger_.retried_giveups;
        router_.bump("fleet.retried.giveups");
        if (++shard_.consecutive_failures >= router_.config_.circuit_break_after &&
            shard_.routable) {
          shard_.routable = false;
          ++router_.ledger_.circuit_opens;
          router_.bump("fleet.circuit.opens");
          return false;
        }
        return true;
      }
    }
    shard_.consecutive_failures = 0;
    return conn_.send(bytes);
  }

  void close() override { conn_.close(); }
  bool is_closed() const override {
    return conn_.is_closed() || !shard_.alive || !shard_.routable;
  }

 private:
  Router& router_;
  Router::Shard& shard_;
  service::ServerConnection& conn_;
  support::Backoff backoff_;
};

// ------------------------------------------------------------------- router

Router::Router(os::Vfs& fleet_vfs, const FleetConfig& config)
    : vfs_(fleet_vfs), config_(config), ring_(config.vnodes), rng_(config.seed) {
  for (std::size_t i = 0; i < config_.shards; ++i)
    create_shard("shard-" + std::to_string(i));
  publish_manifest();
}

Router::~Router() = default;

Router::Shard* Router::find(const std::string& name) {
  for (auto& s : shards_)
    if (s->name == name) return s.get();
  return nullptr;
}

const Router::Shard* Router::find(const std::string& name) const {
  for (const auto& s : shards_)
    if (s->name == name) return s.get();
  return nullptr;
}

Router::Shard& Router::create_shard(const std::string& name) {
  auto shard = std::make_unique<Shard>();
  shard->name = name;
  shard->server = std::make_unique<service::ProfileServer>(config_.server);
  store::StoreConfig sc;
  sc.root = store::partition_root(name);
  // Partitions share the router's registry: every shard's store.manifest
  // lock folds into one fleet-wide lock.store.manifest.wait_ns histogram.
  sc.telemetry = &telemetry_;
  shard->store = std::make_unique<store::ProfileStore>(vfs_, sc);
  shard->store->open();
  ring_.add(name);
  shards_.push_back(std::move(shard));
  telemetry_.gauge("fleet.shards").set(static_cast<double>(ring_.size()));
  return *shards_.back();
}

bool Router::add_shard(const std::string& name) {
  if (find(name) != nullptr) return false;
  create_shard(name);
  ++ledger_.rebalances;
  bump("fleet.rebalances");
  publish_manifest();
  return true;
}

bool Router::remove_shard(const std::string& name) {
  Shard* shard = find(name);
  if (shard == nullptr || !ring_.contains(name)) return false;
  if (shard->alive && shard->server) {
    // Quiesce: settle every enqueued batch, then flush any residual delta
    // so the partition holds everything the shard ever completed.
    shard->server->drain();
    shard->server->flush_to_store(*shard->store, ++shard->flush_tick);
  }
  ring_.remove(name);
  telemetry_.gauge("fleet.shards").set(static_cast<double>(ring_.size()));
  ++ledger_.rebalances;
  bump("fleet.rebalances");
  publish_manifest();
  return true;
}

void Router::finish_kill(Shard& shard) {
  if (!shard.pending_reopen) return;
  shard.pending_reopen = false;
  // Process death: the server's in-memory state is gone. Completed
  // sessions were flushed at their terminal attempt, so re-opening the
  // partition through recovery brings everything stored back online.
  shard.server.reset();
  ring_.remove(shard.name);
  telemetry_.gauge("fleet.shards").set(static_cast<double>(ring_.size()));
  store::StoreConfig sc;
  sc.root = store::partition_root(shard.name);
  sc.telemetry = &telemetry_;
  shard.store = std::make_unique<store::ProfileStore>(vfs_, sc);
  shard.store->open();
  bump("fleet.kills");
}

SessionOutcome Router::ingest(const os::Vfs& world, const std::string& session_id) {
  SessionOutcome out;
  out.session = session_id;

  // One trace context per session, minted from its id — the same id a
  // standalone server would mint for an untraced stream, so a span is
  // tagged identically whether the session arrived via the fleet or
  // directly. Every frame of every attempt carries it; failover re-streams
  // under the same trace, which is exactly what makes the retries visible.
  const support::TraceContext trace = support::TraceContext::mint(session_id);
  const std::uint64_t ingest_t0 = support::monotonic_ns();

  struct Attempt {
    Shard* shard = nullptr;
    std::uint64_t sent = 0;
    bool completed = false;
  };
  std::vector<Attempt> attempts;

  // The preference list is fixed up front; shards that die during this
  // session are skipped by the alive/routable check when their turn comes.
  const std::vector<std::string> candidates = ring_.preference(session_id);
  for (const std::string& name : candidates) {
    Shard* shard = find(name);
    if (shard == nullptr || !shard->alive || !shard->routable) continue;

    Attempt attempt;
    attempt.shard = shard;
    {
      std::unique_ptr<service::ServerConnection> conn =
          shard->server->connect(session_id);
      RetryTransport transport(*this, *shard, *conn);
      service::ReplayOptions opts;
      opts.batch_records = config_.batch_records;
      opts.trace = trace;
      service::ReplayClient client(world, session_id, transport, opts);
      attempt.completed = client.run();
      attempt.sent = client.records_sent();
    }  // connection closed before the dead server may be destroyed
    if (!shard->alive) finish_kill(*shard);
    attempts.push_back(attempt);

    if (attempt.completed) break;

    if (shard->alive && !shard->routable) {
      // Circuit break: the process lives but is unreachable. Discard the
      // partial session so the re-stream to the successor cannot double
      // count; the shard's previously completed sessions stay queryable.
      shard->server->drain();
      shard->server->drop_session(session_id);
    }
  }

  out.attempts = attempts.size();

  // Aborted attempts (everything before the terminal one) were re-streamed
  // in full: informational failover work, outside the ledger invariant.
  if (attempts.size() >= 2) {
    ++ledger_.failover_sessions;
    bump("fleet.failover.sessions");
    for (std::size_t i = 0; i + 1 < attempts.size(); ++i) {
      ledger_.failover_records += attempts[i].sent;
      bump("fleet.failover.records", attempts[i].sent);
    }
  }

  if (attempts.empty()) {
    // No routable shard at all: nothing was acked, nothing enters the
    // invariant — but the refusal itself is counted.
    out.refused = true;
    ++ledger_.refused_sessions;
    bump("fleet.refused.sessions");
    telemetry_.spans().record("fleet.ingest", "fleet", ingest_t0,
                              support::monotonic_ns(), 0, trace.trace_id);
    publish_manifest();
    return out;
  }

  const Attempt& terminal = attempts.back();
  out.shard = terminal.shard->name;
  out.records_sent = terminal.sent;
  ++ledger_.acked_sessions;
  ledger_.acked_records += terminal.sent;
  bump("fleet.acked.sessions");
  bump("fleet.acked.records", terminal.sent);

  if (!terminal.completed) {
    // The terminal attempt died (or broke) with no live successor left.
    // Nothing of this session reached any partition — on kill the server
    // state evaporated, on circuit break drop_session discarded it — so
    // every record sent on the terminal attempt is exactly lost.dead.
    out.lost_dead = true;
    ledger_.lost_dead_records += terminal.sent;
    ++ledger_.lost_dead_sessions;
    bump("fleet.lost.dead.records", terminal.sent);
    bump("fleet.lost.dead.sessions");
    telemetry_.spans().record("fleet.ingest", "fleet", ingest_t0,
                              support::monotonic_ns(), attempts.size(),
                              trace.trace_id);
    publish_manifest();
    return out;
  }

  // Terminal success: settle the session against the shard it landed on.
  Shard& shard = *terminal.shard;
  shard.server->drain();
  service::SessionStats stats;
  if (const std::shared_ptr<service::ServerSession> s =
          shard.server->session(session_id)) {
    stats = s->stats();
  }
  shard.server->flush_session_to_store(session_id, *shard.store,
                                       ++shard.flush_tick);

  out.completed = true;
  out.records_stored = stats.records_ingested;
  out.records_lost_queue = stats.records_dropped;
  // Whatever was sent but neither ingested nor shed by the queue fell on
  // the wire: retry give-ups, torn frames, lost frames.
  VIPROF_CHECK(terminal.sent >= stats.records_ingested + stats.records_dropped);
  out.records_lost_wire =
      terminal.sent - stats.records_ingested - stats.records_dropped;

  shard.stored_records += stats.records_ingested;
  ++shard.stored_sessions;
  ledger_.stored_records += out.records_stored;
  ledger_.lost_queue += out.records_lost_queue;
  ledger_.lost_wire += out.records_lost_wire;
  bump("fleet.stored.records", out.records_stored);
  bump("fleet.lost.queue", out.records_lost_queue);
  bump("fleet.lost.wire", out.records_lost_wire);

  telemetry_.spans().record("fleet.ingest", "fleet", ingest_t0,
                            support::monotonic_ns(), attempts.size(),
                            trace.trace_id);
  publish_manifest();
  return out;
}

std::vector<std::string> Router::shard_names() const {
  std::vector<std::string> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) out.push_back(s->name);
  return out;
}

service::ProfileServer* Router::server(const std::string& name) {
  Shard* s = find(name);
  return s != nullptr ? s->server.get() : nullptr;
}

store::ProfileStore* Router::partition(const std::string& name) {
  Shard* s = find(name);
  return s != nullptr ? s->store.get() : nullptr;
}

bool Router::alive(const std::string& name) const {
  const Shard* s = find(name);
  return s != nullptr && s->alive;
}

bool Router::routable(const std::string& name) const {
  const Shard* s = find(name);
  return s != nullptr && s->alive && s->routable && ring_.contains(name);
}

store::FleetManifest Router::manifest() const {
  store::FleetManifest m;
  m.generation = generation_;
  m.ledger = ledger_;
  for (const auto& s : shards_) {
    store::FleetShard entry;
    entry.name = s->name;
    entry.root = store::partition_root(s->name);
    entry.alive = s->alive;
    entry.sessions = s->stored_sessions;
    entry.records = s->stored_records;
    m.shards.push_back(std::move(entry));
  }
  return m;
}

void Router::bump(const char* counter, std::uint64_t n) {
  telemetry_.counter(counter).inc(n);
}

std::size_t Router::export_telemetry() {
  std::size_t written = 0;
  const auto publish = [&](const std::string& path, const std::string& bytes) {
    const std::string tmp = path + ".tmp";
    if (vfs_.write(tmp, bytes) != os::IoStatus::kOk) return;
    if (vfs_.rename(tmp, path) == os::IoStatus::kOk) ++written;
  };
  for (const auto& s : shards_) {
    if (!s->alive || !s->server) continue;  // a dead process has no registry
    support::Telemetry& t = s->server->telemetry();
    publish(s->name + "/metrics.json", t.snapshot().to_json());
    publish(s->name + "/trace.json", t.spans().to_chrome_json(1000.0));
  }
  publish("fleet/metrics.json", telemetry_.snapshot().to_json());
  publish("fleet/trace.json", telemetry_.spans().to_chrome_json(1000.0));
  return written;
}

void Router::publish_manifest() {
  ++generation_;
  const store::FleetManifest m = manifest();
  // Same discipline as the store manifest: temp + atomic rename, so a
  // reader sees either the previous generation or this one, never a blend.
  const std::string tmp = std::string(store::kFleetManifestPath) + ".tmp";
  if (vfs_.write(tmp, m.serialize()) != os::IoStatus::kOk) return;
  vfs_.rename(tmp, store::kFleetManifestPath);
}

}  // namespace viprof::fleet
