// Fleet-wide integrity check: `viprof_fsck --fleet` / `viprof_fleet fsck`.
//
// Walks the crc-guarded fleet manifest plus every shard partition and
// proves the exact-accounting invariant (DESIGN.md §12):
//
//   acked.records == stored + lost.wire + lost.queue + lost.dead
//
// and, independently of the ledger's own bookkeeping, audits the stored
// side against the partitions themselves: the ledger's stored.records must
// equal the sum of every partition's per-session profile counts. A fleet
// where the books balance but the shelves disagree is as broken as one
// with a corrupt manifest — both are kUnrecoverable. Partition damage
// found by store recovery degrades the verdict to kSalvaged (the store's
// own exact loss accounting still holds); a partition that cannot be
// opened, a missing/corrupt manifest, or an invariant violation is
// kUnrecoverable. The verdict doubles as the exit code
// (core::FsckVerdict convention).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fsck.hpp"
#include "os/vfs.hpp"
#include "store/manifest.hpp"

namespace viprof::fleet {

struct FleetFsckReport {
  core::FsckVerdict verdict = core::FsckVerdict::kClean;
  bool manifest_ok = false;

  std::size_t partitions = 0;
  std::size_t partitions_clean = 0;
  std::size_t partitions_salvaged = 0;
  std::size_t partitions_unrecoverable = 0;
  std::uint64_t partition_intervals_lost = 0;
  std::uint64_t partition_rows_lost = 0;

  store::FleetLedger ledger;      // as recorded by the manifest
  std::uint64_t stored_audit = 0; // Σ partitions' per-session record counts
  bool ledger_balanced = false;   // acked == stored + lost.*
  bool stored_matches = false;    // ledger.stored == stored_audit

  std::string summary;  // one line
  std::string details;  // per-partition findings
};

/// Read-only: works on a copy of `fleet`, so it is safe on a live
/// namespace or an imported export alike.
FleetFsckReport fsck_fleet(const os::Vfs& fleet);

}  // namespace viprof::fleet
