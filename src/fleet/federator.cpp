#include "fleet/federator.hpp"

#include <map>
#include <sstream>
#include <utility>

#include "hw/event.hpp"
#include "memprof/report.hpp"
#include "support/format.hpp"
#include "support/traced_mutex.hpp"

namespace viprof::fleet {

namespace {

/// The canonical report events (what viprof_report prints).
const std::vector<hw::EventKind> kReportEvents = {hw::EventKind::kGlobalPowerEvents,
                                                  hw::EventKind::kBsqCacheReference};

std::optional<hw::EventKind> event_from(const std::string& name) {
  for (hw::EventKind e : hw::kAllEventKinds)
    if (name == hw::to_string(e)) return e;
  if (name == "time") return hw::EventKind::kGlobalPowerEvents;
  if (name == "dmiss") return hw::EventKind::kBsqCacheReference;
  return std::nullopt;
}

std::vector<store::ProfileStore::StoredSession> gather_sessions(
    const std::vector<store::ProfileStore*>& stores) {
  std::map<std::string, store::ProfileStore::StoredSession> by_id;
  for (store::ProfileStore* s : stores) {
    for (store::ProfileStore::StoredSession& ss : s->sessions()) {
      auto [it, fresh] = by_id.emplace(ss.session, ss);
      if (!fresh) {  // defensive: a session lives in exactly one partition
        it->second.intervals += ss.intervals;
        it->second.records += ss.records;
      }
    }
  }
  std::vector<store::ProfileStore::StoredSession> out;
  out.reserve(by_id.size());
  for (auto& [id, ss] : by_id) out.push_back(std::move(ss));
  return out;
}

core::Profile gather_profile(const std::vector<store::ProfileStore*>& stores,
                             const std::string& id) {
  store::WindowSpec w;
  w.session = id;
  core::Profile out;
  for (store::ProfileStore* s : stores) out.merge(s->window_profile(w));
  return out;
}

core::Profile gather_merged(const std::vector<store::ProfileStore*>& stores) {
  // Globally ascending session-id order — exactly the fold order of a
  // single server's session map, the byte-identity anchor.
  core::Profile out;
  for (const store::ProfileStore::StoredSession& ss : gather_sessions(stores))
    out.merge(gather_profile(stores, ss.session));
  return out;
}

std::string stored_sessions_table(const std::vector<store::ProfileStore*>& stores) {
  support::TextTable table({"Session", "Records", "Intervals"});
  for (const store::ProfileStore::StoredSession& ss : gather_sessions(stores))
    table.add_row({ss.session, std::to_string(ss.records),
                   std::to_string(ss.intervals)});
  return table.render();
}

/// Shared "top"/"diff" verb handling; `sessions_text` is the
/// caller-specific "sessions" answer.
std::string dispatch_query(const std::vector<store::ProfileStore*>& stores,
                           const std::string& text,
                           const std::string& sessions_text) {
  std::istringstream in(text);
  std::string verb;
  in >> verb;
  if (verb == "sessions") return sessions_text;
  if (verb == "top") {
    std::size_t top = 20;
    in >> top;
    std::string session_id, event_name, word;
    while (in >> word) {
      if (word == "--session") in >> session_id;
      else if (word == "--event") in >> event_name;
      else if (word == "--top") in >> top;
    }
    std::vector<hw::EventKind> events = kReportEvents;
    if (!event_name.empty()) {
      const auto e = event_from(event_name);
      if (!e) return "error: unknown event: " + event_name + "\n";
      events = {*e};
    }
    const core::Profile merged = session_id.empty()
                                     ? gather_merged(stores)
                                     : gather_profile(stores, session_id);
    return merged.render(events, top);
  }
  if (verb == "diff") {
    std::string before, after;
    in >> before >> after;
    if (before.empty() || after.empty())
      return "error: diff needs two session ids\n";
    std::size_t top = 20;
    hw::EventKind event = hw::EventKind::kGlobalPowerEvents;
    std::string word;
    while (in >> word) {
      if (word == "--top") in >> top;
      else if (word == "--event") {
        std::string event_name;
        in >> event_name;
        const auto e = event_from(event_name);
        if (!e) return "error: unknown event: " + event_name + "\n";
        event = *e;
      }
    }
    return core::render_diff(gather_profile(stores, before),
                             gather_profile(stores, after), event, top);
  }
  return "error: unknown query: " + text + "\n";
}

}  // namespace

// ---------------------------------------------------------------- federator

std::vector<store::ProfileStore*> Federator::partitions() const {
  std::vector<store::ProfileStore*> out;
  for (const std::string& name : router_->shard_names())
    if (store::ProfileStore* s = router_->partition(name)) out.push_back(s);
  return out;
}

std::vector<store::ProfileStore::StoredSession> Federator::sessions() const {
  return gather_sessions(partitions());
}

core::Profile Federator::session_profile(const std::string& id) const {
  return gather_profile(partitions(), id);
}

core::Profile Federator::merged_profile() const {
  return gather_merged(partitions());
}

std::string Federator::render_top(const std::vector<hw::EventKind>& events,
                                  std::size_t top_n) const {
  return merged_profile().render(events, top_n);
}

std::string Federator::sessions_table() const {
  // Scatter to every live shard, gather rows keyed by session id: the map
  // re-sorts into the exact row order a single server's session map walks.
  std::map<std::string, std::vector<std::string>> rows;
  for (const std::string& name : router_->shard_names()) {
    if (!router_->alive(name)) continue;
    service::ProfileServer* server = router_->server(name);
    if (server == nullptr) continue;
    for (const std::string& id : server->session_ids()) {
      const std::shared_ptr<service::ServerSession> s = server->session(id);
      if (!s) continue;
      const service::SessionStats st = s->stats();
      rows[id] = {id,
                  std::to_string(st.records_ingested),
                  std::to_string(st.batches_applied),
                  std::to_string(st.batches_dropped),
                  std::to_string(st.torn_frames),
                  std::to_string(st.registrations),
                  st.ended ? "ended" : "streaming"};
    }
  }
  support::TextTable table(
      {"Session", "Records", "Batches", "Dropped", "Torn", "VMs", "State"});
  for (const auto& [id, row] : rows) table.add_row(row);
  return table.render();
}

std::string Federator::render_diff(const std::string& before_session,
                                   const std::string& after_session,
                                   hw::EventKind event, std::size_t top_n) const {
  return core::render_diff(session_profile(before_session),
                           session_profile(after_session), event, top_n);
}

std::string Federator::stats(bool as_json) const {
  if (as_json) {
    std::string out = "{\"fleet\":" + router_->telemetry().snapshot().to_json();
    out += ",\"shards\":{";
    bool first = true;
    for (const std::string& name : router_->shard_names()) {
      service::ProfileServer* server = router_->server(name);
      if (server == nullptr || !router_->alive(name)) continue;
      if (!first) out += ",";
      first = false;
      out += "\"" + name + "\":" + server->telemetry().snapshot().to_json();
    }
    out += "}}";
    return out;
  }
  std::ostringstream out;
  out << "== fleet ==\n" << router_->telemetry().snapshot().render_text();
  for (const std::string& name : router_->shard_names()) {
    service::ProfileServer* server = router_->server(name);
    if (server == nullptr || !router_->alive(name)) continue;
    out << "== " << name << " ==\n" << server->telemetry().snapshot().render_text();
  }
  return out.str();
}

std::string Federator::merged_trace() const {
  std::vector<std::pair<std::string, support::ChromeTrace>> inputs;
  if (auto t = support::parse_chrome_trace(
          router_->telemetry().spans().to_chrome_json(1000.0)))
    inputs.emplace_back("fleet", std::move(*t));
  for (const std::string& name : router_->shard_names()) {
    service::ProfileServer* server = router_->server(name);
    if (server == nullptr || !router_->alive(name)) continue;
    if (auto t = support::parse_chrome_trace(
            server->telemetry().spans().to_chrome_json(1000.0)))
      inputs.emplace_back(name, std::move(*t));
  }
  return support::merge_chrome_traces(inputs);
}

std::string Federator::query(const std::string& text) const {
  const std::uint64_t t0 = support::monotonic_ns();
  std::istringstream in(text);
  std::string verb;
  in >> verb;
  std::string out;
  if (verb == "stats") {
    std::string word;
    bool as_json = false;
    while (in >> word)
      if (word == "--json") as_json = true;
    out = stats(as_json);
  } else if (verb == "trace") {
    out = merged_trace();
  } else if (verb == "memprof") {
    // Allocation-site tables need the shards' live session worlds (object
    // maps are session files, not stored profile rows), so this verb
    // gathers from alive servers. render_memprof reads the profile through
    // point lookups only, so the shard fold order never shows in the bytes.
    std::size_t top = 20;
    in >> top;
    std::string word;
    while (in >> word)
      if (word == "--top") in >> top;
    memprof::SiteTable sites;
    core::Profile merged;
    for (const std::string& name : router_->shard_names()) {
      service::ProfileServer* server = router_->server(name);
      if (server == nullptr) continue;
      for (const std::string& id : server->session_ids()) {
        const std::shared_ptr<service::ServerSession> s = server->session(id);
        if (!s) continue;
        s->fold_object_sites(sites);
        merged.merge(s->merged_profile());
      }
    }
    out = memprof::render_memprof(sites, merged, top);
  } else {
    out = dispatch_query(partitions(), text, sessions_table());
  }
  router_->telemetry().spans().record("fleet.query", "fleet", t0,
                                      support::monotonic_ns());
  return out;
}

// ------------------------------------------------------------ offline fleet

std::optional<OfflineFleet> OfflineFleet::open(os::Vfs& fleet) {
  const std::optional<std::string> bytes = fleet.read(store::kFleetManifestPath);
  if (!bytes) return std::nullopt;
  std::optional<store::FleetManifest> manifest = store::FleetManifest::parse(*bytes);
  if (!manifest) return std::nullopt;
  OfflineFleet out;
  out.manifest_ = std::move(*manifest);
  const auto load_telemetry = [&](const std::string& source,
                                  const std::string& dir) {
    ExportedTelemetry t;
    t.source = source;
    t.metrics_json = fleet.read(dir + "/metrics.json").value_or("");
    t.trace_json = fleet.read(dir + "/trace.json").value_or("");
    if (!t.metrics_json.empty() || !t.trace_json.empty())
      out.telemetry_.push_back(std::move(t));
  };
  load_telemetry("fleet", "fleet");
  for (const store::FleetShard& shard : out.manifest_.shards) {
    store::StoreConfig sc;
    sc.root = shard.root;
    auto st = std::make_unique<store::ProfileStore>(fleet, sc);
    st->open();  // recovery: salvages whatever the partition holds
    out.stores_.push_back(std::move(st));
    load_telemetry(shard.name, shard.name);
  }
  return out;
}

std::vector<store::ProfileStore*> OfflineFleet::partitions() const {
  std::vector<store::ProfileStore*> out;
  out.reserve(stores_.size());
  for (const auto& s : stores_) out.push_back(s.get());
  return out;
}

std::vector<store::ProfileStore::StoredSession> OfflineFleet::sessions() const {
  return gather_sessions(partitions());
}

core::Profile OfflineFleet::session_profile(const std::string& id) const {
  return gather_profile(partitions(), id);
}

core::Profile OfflineFleet::merged_profile() const {
  return gather_merged(partitions());
}

std::string OfflineFleet::render_top(const std::vector<hw::EventKind>& events,
                                     std::size_t top_n) const {
  return merged_profile().render(events, top_n);
}

std::string OfflineFleet::render_diff(const std::string& before_session,
                                      const std::string& after_session,
                                      hw::EventKind event,
                                      std::size_t top_n) const {
  return core::render_diff(session_profile(before_session),
                           session_profile(after_session), event, top_n);
}

std::string OfflineFleet::query(const std::string& text) const {
  std::istringstream in(text);
  std::string verb;
  in >> verb;
  if (verb == "stats") {
    std::string word;
    bool as_json = false;
    while (in >> word)
      if (word == "--json") as_json = true;
    bool any = false;
    std::string json = "{";
    std::ostringstream sections;
    for (const ExportedTelemetry& t : telemetry_) {
      if (t.metrics_json.empty()) continue;
      if (any) json += ",";
      any = true;
      json += "\"" + t.source + "\":" + t.metrics_json;
      sections << "== " << t.source << " ==\n" << t.metrics_json << "\n";
    }
    json += "}";
    if (!any) return "error: no telemetry exported (run viprof_fleet serve first)\n";
    // Offline stats are the exported JSON snapshots verbatim — sectioned
    // for the eye, or one object keyed by source for machines.
    return as_json ? json : sections.str();
  }
  if (verb == "trace") {
    std::vector<std::pair<std::string, support::ChromeTrace>> inputs;
    for (const ExportedTelemetry& t : telemetry_) {
      if (t.trace_json.empty()) continue;
      if (auto parsed = support::parse_chrome_trace(t.trace_json))
        inputs.emplace_back(t.source, std::move(*parsed));
    }
    if (inputs.empty())
      return "error: no telemetry exported (run viprof_fleet serve first)\n";
    return support::merge_chrome_traces(inputs);
  }
  return dispatch_query(partitions(), text, stored_sessions_table(partitions()));
}

}  // namespace viprof::fleet
