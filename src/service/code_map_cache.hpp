// Shared LRU cache of prepared CodeMapIndex instances.
//
// Ingest workers resolve sample batches against the epoch code maps known
// at the batch's enqueue time. Rebuilding an index per batch would be
// O(maps) every few hundred samples; keeping every (vm, epoch-ceiling)
// generation forever would grow without bound on an always-on server. The
// cache holds the hot generations, keyed "session/pid@ceiling", and hands
// out shared_ptr pins — a worker mid-batch keeps its index alive even if
// the cache evicts that generation under it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/code_map.hpp"
#include "support/lru_cache.hpp"
#include "support/telemetry.hpp"
#include "support/traced_mutex.hpp"

namespace viprof::service {

class CodeMapCache {
 public:
  using IndexPtr = std::shared_ptr<const core::CodeMapIndex>;
  using Builder = std::function<core::CodeMapIndex()>;

  explicit CodeMapCache(std::size_t capacity) : cache_(capacity) {}

  /// Publishes this cache's lock contention metrics (the cache mutex is a
  /// prime serialization suspect: builders run *under* it so concurrent
  /// misses build once, which is exactly what makes workers queue up here).
  void attach_telemetry(support::Telemetry& telemetry) { mu_.attach(telemetry); }

  /// Index for `pid` of `session` at epoch ceiling `ceiling`; `build` runs
  /// (under the cache lock, so concurrent misses on one key build once) on
  /// a miss. The returned pin stays valid across later evictions.
  IndexPtr get(const std::string& session, hw::Pid pid, std::uint64_t ceiling,
               const Builder& build);

  /// Mirrors hit/miss/eviction counts into `telemetry` as monotonic
  /// counters under service.map_cache.* (each call adds the delta since the
  /// last publish, so viprof_stat diff works across snapshots); call after
  /// a batch (cheap, lock + 3 increments).
  void publish(support::Telemetry& telemetry);

  std::size_t capacity() const { return cache_.capacity(); }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  mutable support::TracedMutex mu_{"service.map_cache"};
  support::LruCache<std::string, IndexPtr> cache_;
  // Counts already published, so publish() emits exact deltas (mu_).
  std::uint64_t published_hits_ = 0;
  std::uint64_t published_misses_ = 0;
  std::uint64_t published_evictions_ = 0;
};

}  // namespace viprof::service
