// Shared cache of prepared CodeMapIndex instances, RCU-style.
//
// Ingest workers resolve sample batches against the epoch code maps known
// at the batch's enqueue time. Rebuilding an index per batch would be
// O(maps) every few hundred samples; keeping every (vm, epoch-ceiling)
// generation forever would grow without bound on an always-on server.
//
// Through PR 7 this was an LRU map under one mutex, and the TracedMutex
// evidence showed workers queueing on it for what is overwhelmingly a
// read-only lookup. The read path is now lock-free: the table lives in an
// immutable snapshot behind std::atomic<std::shared_ptr>, hits load the
// snapshot, find their entry and return the pin without ever taking
// `service.map_cache`. Writers (misses) still serialize on the mutex —
// concurrent misses on one key build once, as before — and install an
// updated copy-on-write snapshot with a single atomic store. Entries are
// shared between snapshot generations, so a swap costs one map copy of
// shared_ptrs, never an index rebuild. Eviction is least-recently-used by
// an atomic access tick that hits bump wait-free; a pin handed out keeps
// its index alive across any later eviction.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/code_map.hpp"
#include "support/telemetry.hpp"
#include "support/traced_mutex.hpp"

namespace viprof::service {

class CodeMapCache {
 public:
  using IndexPtr = std::shared_ptr<const core::CodeMapIndex>;
  using Builder = std::function<core::CodeMapIndex()>;

  explicit CodeMapCache(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    snapshot_.store(std::make_shared<const Table>(), std::memory_order_release);
  }

  /// Publishes the writer mutex's contention metrics. Steady-state reads
  /// never touch it, so lock.service.map_cache.wait_ns now records only
  /// build/install serialization (DESIGN.md §14).
  void attach_telemetry(support::Telemetry& telemetry) { mu_.attach(telemetry); }

  /// Index for `pid` of `session` at epoch ceiling `ceiling`; `build` runs
  /// (under the writer lock, so concurrent misses on one key build once)
  /// on a miss. The returned pin stays valid across later evictions.
  IndexPtr get(const std::string& session, hw::Pid pid, std::uint64_t ceiling,
               const Builder& build);

  /// Mirrors hit/miss/eviction counts into `telemetry` as monotonic
  /// counters under service.map_cache.* (each call adds the delta since the
  /// last publish, so viprof_stat diff works across snapshots); call after
  /// a batch (cheap: three atomic reads, no cache lock).
  void publish(support::Telemetry& telemetry);

  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    IndexPtr index;
    /// Access tick for LRU eviction; hits store relaxed, the (serialized)
    /// evictor reads — approximate ordering between racing hits is fine,
    /// eviction choice never affects correctness (pins outlive eviction).
    mutable std::atomic<std::uint64_t> last_used{0};
  };
  /// Immutable after install; generations share Entry objects.
  struct Table {
    std::unordered_map<std::string, std::shared_ptr<Entry>> entries;
  };
  using TablePtr = std::shared_ptr<const Table>;

  const std::size_t capacity_;
  std::atomic<TablePtr> snapshot_;
  mutable support::TracedMutex mu_{"service.map_cache"};  // writers only
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  // Counts already published, so publish() emits exact deltas.
  std::mutex publish_mu_;
  std::uint64_t published_hits_ = 0;
  std::uint64_t published_misses_ = 0;
  std::uint64_t published_evictions_ = 0;
};

}  // namespace viprof::service
