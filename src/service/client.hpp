// Replay client: streams a recorded session directory to the server.
//
// The recorded layout is exactly what offline viprof_report consumes —
// archive/manifest, the boot maps and epoch code maps it references, and
// the per-event sample logs. The client replays that world over the wire:
// session open, registrations, world files, then the raw (already
// checksummed) sample-log lines chunked into batches. Code maps are
// announced *incrementally*: before each batch the client ships every
// not-yet-sent map whose epoch the batch is about to reference, modelling
// a VM that emits maps as it compiles. The client never verifies the log
// lines itself — the server's stream parser is the single verification
// point, the same code the offline reader uses.
//
// A FaultInjector with a kClient kill rule models a mid-stream
// disconnect: the client stops cold after N frames, without kEndStream.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hw/event.hpp"
#include "hw/types.hpp"
#include "os/vfs.hpp"
#include "service/transport.hpp"
#include "service/wire.hpp"
#include "support/fault.hpp"

namespace viprof::service {

struct ReplayOptions {
  std::size_t batch_records = 256;          // sample lines per kSampleBatch
  support::FaultInjector* fault = nullptr;  // kClient = disconnect after N frames
  /// When valid, every frame carries the trace extension: trace_id from
  /// here, parent_span = the frame's send ordinal (so the server can tell
  /// which client-side hop each ingest span descends from).
  support::TraceContext trace;
};

class ReplayClient {
 public:
  /// `world` holds the recorded session; `out` is the connection to
  /// stream it over (typically a ServerConnection).
  ReplayClient(const os::Vfs& world, std::string session_id, Transport& out,
               ReplayOptions options = {});

  /// Streams the whole session. False when a disconnect fault (or a
  /// closed transport) ended the stream early — kEndStream not sent.
  bool run();

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t batches_sent() const { return batches_sent_; }
  std::uint64_t records_sent() const { return records_sent_; }
  bool disconnected() const { return disconnected_; }

 private:
  struct VmInfo {
    hw::Pid pid = 0;
    std::string jit_map_dir;
    // Unsent epoch maps, ascending; announced once their epoch is needed.
    std::vector<std::pair<std::uint64_t, std::string>> pending_maps;
  };

  bool send(FrameType type, const std::string& payload);
  bool send_file(const std::string& path);
  bool announce_maps(const std::map<hw::Pid, std::uint64_t>& needed);
  bool stream_event_log(hw::EventKind event);

  const os::Vfs& world_;
  const std::string session_id_;
  Transport& out_;
  const ReplayOptions options_;
  std::vector<VmInfo> vms_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t batches_sent_ = 0;
  std::uint64_t records_sent_ = 0;
  bool disconnected_ = false;
};

}  // namespace viprof::service
