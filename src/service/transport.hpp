// Transport abstraction between profiling clients and the profile server.
//
// The simulated environment has no sockets; what the service needs from a
// transport is only "an ordered, possibly-damaged byte stream with a
// close". Transport is that contract, and LoopbackTransport is the
// in-process implementation: send() delivers bytes synchronously into a
// sink (the server's per-connection frame decoder), after consulting the
// fault injector under the "wire/<name>" path — so torn and lost frames
// are injectable on the wire exactly as torn writes are on the VFS.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "support/fault.hpp"

namespace viprof::service {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues `bytes` toward the peer. Returns false once closed. Delivery
  /// may be damaged (torn/lost) — receivers must verify framing.
  virtual bool send(const std::string& bytes) = 0;

  virtual void close() = 0;
  virtual bool is_closed() const = 0;
};

/// In-process transport: bytes sent are handed to `sink` on the sender's
/// thread. `on_close` fires exactly once, on the first close().
class LoopbackTransport final : public Transport {
 public:
  using Sink = std::function<void(const char* data, std::size_t size)>;
  using CloseHook = std::function<void()>;

  LoopbackTransport(std::string name, Sink sink, CloseHook on_close,
                    support::FaultInjector* fault)
      : name_("wire/" + std::move(name)),
        sink_(std::move(sink)),
        on_close_(std::move(on_close)),
        fault_(fault) {}

  ~LoopbackTransport() override { close(); }

  bool send(const std::string& bytes) override {
    if (closed_) return false;
    std::size_t deliver = bytes.size();
    if (fault_ != nullptr) {
      const auto outcome = fault_->on_write(name_, bytes.size());
      using R = support::FaultInjector::WriteOutcome::Result;
      switch (outcome.result) {
        case R::kOk: break;
        case R::kTorn: deliver = outcome.kept_bytes; break;
        case R::kError:
        case R::kNoSpace: deliver = 0; break;  // the frame is lost entirely
      }
      if (deliver < bytes.size()) {
        ++torn_sends_;
        lost_bytes_ += bytes.size() - deliver;
      }
    }
    if (deliver > 0) sink_(bytes.data(), deliver);
    return true;
  }

  void close() override {
    if (closed_) return;
    closed_ = true;
    if (on_close_) on_close_();
  }

  bool is_closed() const override { return closed_; }

  std::uint64_t torn_sends() const { return torn_sends_; }
  std::uint64_t lost_bytes() const { return lost_bytes_; }

 private:
  std::string name_;
  Sink sink_;
  CloseHook on_close_;
  support::FaultInjector* fault_;
  bool closed_ = false;
  std::uint64_t torn_sends_ = 0;
  std::uint64_t lost_bytes_ = 0;
};

}  // namespace viprof::service
