#include "service/wire.hpp"

#include "support/format.hpp"

namespace viprof::service {

namespace {

constexpr char kMagic0 = 'V';
constexpr char kMagic1 = 'F';

// A frame longer than this is treated as damage rather than waited for: a
// corrupted length field must not make the decoder buffer forever.
constexpr std::size_t kMaxPayload = 64 * 1024 * 1024;

std::uint32_t read_u32le(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

void append_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint64_t read_u64le(const char* p) {
  return static_cast<std::uint64_t>(read_u32le(p)) |
         static_cast<std::uint64_t>(read_u32le(p + 4)) << 32;
}

void append_u64le(std::string& out, std::uint64_t v) {
  append_u32le(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  append_u32le(out, static_cast<std::uint32_t>(v >> 32));
}

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kError);
}

}  // namespace

std::string encode_frame(FrameType type, const std::string& payload) {
  return encode_frame(type, payload, support::TraceContext{});
}

std::string encode_frame(FrameType type, const std::string& payload,
                         const support::TraceContext& trace) {
  const bool traced = trace.valid();
  std::string out;
  out.reserve(kFrameHeaderBytes + (traced ? kFrameTraceExtBytes : 0) +
              payload.size() + kFrameTrailerBytes);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<char>(type));
  out.push_back(traced ? static_cast<char>(kFrameFlagTraced) : 0);
  append_u32le(out, static_cast<std::uint32_t>(payload.size()));
  if (traced) {
    append_u64le(out, trace.trace_id);
    append_u64le(out, trace.parent_span);
  }
  out += payload;
  append_u32le(out, support::fnv1a(out.data(), out.size()));
  return out;
}

void FrameDecoder::skip_damage(std::size_t min_drop) {
  // Resynchronise at the next magic marker. A trailing lone 'V' is kept —
  // its 'F' may simply not have arrived yet.
  std::size_t resync = buffer_.size();
  for (std::size_t i = min_drop; i < buffer_.size(); ++i) {
    if (buffer_[i] != kMagic0) continue;
    if (i + 1 < buffer_.size() && buffer_[i + 1] != kMagic1) continue;
    resync = i;
    break;
  }
  ++torn_frames_;
  skipped_bytes_ += resync;
  buffer_.erase(0, resync);
}

bool FrameDecoder::next_view(FrameView& out) {
  compact();
  for (;;) {
    if (buffer_.size() < kFrameHeaderBytes) return false;
    const auto flags = static_cast<std::uint8_t>(buffer_[3]);
    if (buffer_[0] != kMagic0 || buffer_[1] != kMagic1 ||
        !valid_type(static_cast<std::uint8_t>(buffer_[2])) ||
        (flags & ~kFrameFlagTraced) != 0) {  // unknown flag bits = damage
      skip_damage(1);
      continue;
    }
    const std::size_t ext = (flags & kFrameFlagTraced) != 0 ? kFrameTraceExtBytes : 0;
    const std::size_t length = read_u32le(buffer_.data() + 4);
    if (length > kMaxPayload) {
      skip_damage(1);
      continue;
    }
    const std::size_t total = kFrameHeaderBytes + ext + length + kFrameTrailerBytes;
    if (buffer_.size() < total) return false;  // frame still in flight
    const std::uint32_t crc_read =
        read_u32le(buffer_.data() + kFrameHeaderBytes + ext + length);
    const std::uint32_t crc_calc =
        support::fnv1a(buffer_.data(), kFrameHeaderBytes + ext + length);
    if (crc_read != crc_calc) {
      // A tear inside the frame body: the header looked fine, the bytes
      // did not. Skip past the bogus magic and rescan — anything that was
      // a real frame boundary inside survives the rescan.
      skip_damage(1);
      continue;
    }
    out.type = static_cast<FrameType>(buffer_[2]);
    out.trace = support::TraceContext{};
    if (ext != 0) {
      out.trace.trace_id = read_u64le(buffer_.data() + kFrameHeaderBytes);
      out.trace.parent_span = read_u64le(buffer_.data() + kFrameHeaderBytes + 8);
    }
    out.payload = std::string_view(buffer_).substr(kFrameHeaderBytes + ext, length);
    consumed_ = total;  // reclaimed lazily by the next compact()
    return true;
  }
}

bool FrameDecoder::next(Frame& out) {
  FrameView view;
  if (!next_view(view)) return false;
  out.type = view.type;
  out.trace = view.trace;
  out.payload.assign(view.payload.data(), view.payload.size());
  return true;
}

}  // namespace viprof::service
