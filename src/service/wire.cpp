#include "service/wire.hpp"

#include "support/format.hpp"

namespace viprof::service {

namespace {

constexpr char kMagic0 = 'V';
constexpr char kMagic1 = 'F';

// A frame longer than this is treated as damage rather than waited for: a
// corrupted length field must not make the decoder buffer forever.
constexpr std::size_t kMaxPayload = 64 * 1024 * 1024;

std::uint32_t read_u32le(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

void append_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kError);
}

}  // namespace

std::string encode_frame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<char>(type));
  out.push_back(0);  // reserved
  append_u32le(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  append_u32le(out, support::fnv1a(out.data(), out.size()));
  return out;
}

void FrameDecoder::skip_damage(std::size_t min_drop) {
  // Resynchronise at the next magic marker. A trailing lone 'V' is kept —
  // its 'F' may simply not have arrived yet.
  std::size_t resync = buffer_.size();
  for (std::size_t i = min_drop; i < buffer_.size(); ++i) {
    if (buffer_[i] != kMagic0) continue;
    if (i + 1 < buffer_.size() && buffer_[i + 1] != kMagic1) continue;
    resync = i;
    break;
  }
  ++torn_frames_;
  skipped_bytes_ += resync;
  buffer_.erase(0, resync);
}

bool FrameDecoder::next(Frame& out) {
  for (;;) {
    if (buffer_.size() < kFrameHeaderBytes) return false;
    if (buffer_[0] != kMagic0 || buffer_[1] != kMagic1 ||
        !valid_type(static_cast<std::uint8_t>(buffer_[2])) || buffer_[3] != 0) {
      skip_damage(1);
      continue;
    }
    const std::size_t length = read_u32le(buffer_.data() + 4);
    if (length > kMaxPayload) {
      skip_damage(1);
      continue;
    }
    const std::size_t total = kFrameHeaderBytes + length + kFrameTrailerBytes;
    if (buffer_.size() < total) return false;  // frame still in flight
    const std::uint32_t crc_read = read_u32le(buffer_.data() + kFrameHeaderBytes + length);
    const std::uint32_t crc_calc =
        support::fnv1a(buffer_.data(), kFrameHeaderBytes + length);
    if (crc_read != crc_calc) {
      // A tear inside the frame body: the header looked fine, the bytes
      // did not. Skip past the bogus magic and rescan — anything that was
      // a real frame boundary inside survives the rescan.
      skip_damage(1);
      continue;
    }
    out.type = static_cast<FrameType>(buffer_[2]);
    out.payload.assign(buffer_, kFrameHeaderBytes, length);
    buffer_.erase(0, total);
    return true;
  }
}

}  // namespace viprof::service
