#include "service/scenario.hpp"

#include "core/archive.hpp"
#include "core/code_map.hpp"
#include "core/resolve_pipeline.hpp"
#include "core/sample_log.hpp"
#include "os/loader.hpp"
#include "support/rng.hpp"

namespace viprof::service {

std::unique_ptr<RecordedScenario> record_scenario(const ScenarioConfig& config) {
  auto sc = std::make_unique<RecordedScenario>();
  const std::size_t vms = config.vms == 0 ? 1 : config.vms;

  os::Image& libc = sc->machine.registry().create("libc-2.3.2.so",
                                                  os::ImageKind::kSharedLib, 64 * 1024);
  libc.symbols().add("memset", 0x1000, 0x800);
  libc.symbols().add("memcpy", 0x1800, 0x800);

  sc->boot = std::make_unique<jvm::BootImage>(sc->machine.registry(),
                                              sc->machine.vfs(), "RVM.map");

  struct VmWorld {
    hw::Address exec_base = 0, libc_base = 0, boot_base = 0, heap_base = 0;
  };
  std::vector<VmWorld> worlds(vms);

  for (std::size_t v = 0; v < vms; ++v) {
    os::Process& proc = sc->machine.spawn("jikesrvm." + std::to_string(v));
    sc->pids.push_back(proc.pid());
    VmWorld& w = worlds[v];

    os::Image& exec = sc->machine.registry().create(
        "jikesrvm." + std::to_string(v), os::ImageKind::kExecutable, 32 * 1024);
    exec.symbols().add("main", 0, 4096);
    exec.symbols().add("boot", 4096, 4096);
    w.exec_base = sc->machine.loader().load_executable(proc, exec.id()).start;
    w.libc_base = sc->machine.loader().load_library(proc, libc.id()).start;
    w.boot_base = sc->machine.loader().map_at_anon_slot(proc, sc->boot->image()).start;
    w.heap_base = sc->machine.loader().map_anon(proc, 8 << 20).start;

    core::VmRegistration reg;
    reg.pid = proc.pid();
    reg.heap_lo = w.heap_base;
    reg.heap_hi = w.heap_base + (8 << 20);
    reg.boot_base = w.boot_base;
    reg.boot_size = sc->boot->size();
    reg.boot_map_path = "RVM.map";
    reg.jit_map_dir = "jit_maps";
    sc->table.add(reg);

    // Churning epoch maps: every epoch (re)places a rotating slice of the
    // VM's method population, shifted per VM so the two heaps disagree.
    for (std::uint64_t e = 0; e < config.epochs; ++e) {
      core::CodeMapFile file;
      file.epoch = e;
      for (std::uint64_t i = 0; i < config.methods / 2; ++i) {
        const std::uint64_t m = (e * 37 + i * 5 + v * 11) % config.methods;
        core::CodeMapEntry entry;
        entry.address = w.heap_base + m * 0x1000 + (e % 4) * 0x80;
        entry.size = 0x800;
        entry.symbol = "app.K" + std::to_string(m / 16) + ".m" + std::to_string(m);
        file.entries.push_back(std::move(entry));
      }
      sc->machine.vfs().write(core::CodeMapFile::path_for("jit_maps", proc.pid(), e),
                              file.serialize());
    }
  }

  const hw::Address kernel_pc = sc->machine.kernel().routine("sys_read").base + 8;
  core::SampleLogWriter writer(sc->machine.vfs(), "samples");
  support::Xoshiro256 rng(config.seed);
  const std::vector<hw::EventKind> events = {hw::EventKind::kGlobalPowerEvents,
                                             hw::EventKind::kBsqCacheReference};
  for (hw::EventKind event : events) {
    for (std::size_t n = 0; n < config.samples_per_event; ++n) {
      const std::size_t v = rng.below(vms);
      const VmWorld& w = worlds[v];
      core::LoggedSample s;
      s.pid = sc->pids[v];
      s.epoch = rng.below(config.epochs);
      s.cycle = n;
      s.caller_pc = w.exec_base + 16;
      const std::uint64_t kind = rng.below(100);
      if (kind < 70) {
        // JIT heap: random slot, random offset — misses included.
        s.pc = w.heap_base + rng.below(config.methods) * 0x1000 + rng.below(0x1000);
      } else if (kind < 80) {
        s.pc = w.boot_base + rng.below(sc->boot->size());
      } else if (kind < 90) {
        s.pc = (kind & 1) ? w.exec_base + rng.below(8 * 1024)
                          : w.libc_base + 0x1000 + rng.below(0x1000);
      } else {
        s.pc = kernel_pc;
        s.mode = hw::CpuMode::kKernel;
        s.caller_pc = 0;
      }
      writer.append(event, s);
    }
    writer.flush();
  }

  core::write_archive(sc->machine, sc->table, sc->machine.vfs(), "archive");
  return sc;
}

std::string offline_render(const os::Vfs& world, const std::vector<hw::EventKind>& events,
                           std::size_t top, std::size_t threads) {
  const core::ArchiveResolver resolver(world, "archive", /*vm_aware=*/true);
  core::ResolvePipeline pipeline(core::PipelineConfig{threads});
  const auto resolve_fn = [&resolver](const core::LoggedSample& s, core::ResolveStats&) {
    return resolver.resolve(s);
  };
  core::Profile profile;
  for (hw::EventKind event : events) {
    std::vector<core::LoggedSample> samples =
        core::SampleLogReader::read(world, "samples", event);
    pipeline.aggregate_profile(samples, event, resolve_fn, profile);
  }
  return profile.render(events, top);
}

}  // namespace viprof::service
