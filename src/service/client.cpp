#include "service/client.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/code_map.hpp"
#include "core/sample_log.hpp"
#include "memprof/object_map.hpp"

namespace viprof::service {

namespace {

constexpr const char* kManifestPath = "archive/manifest";

/// pid (token 4) and epoch (token 5) of one raw sample-log line; the
/// client only peeks at these two fields to drive map announcement — the
/// server does the real verification.
bool peek_pid_epoch(const std::string& line, hw::Pid& pid, std::uint64_t& epoch) {
  unsigned long long seq, pc, caller, e, cycle;
  unsigned p;
  char mode;
  if (std::sscanf(line.c_str(), "%llu %llx %llx %c %u %llu %llu", &seq, &pc, &caller,
                  &mode, &p, &e, &cycle) != 7)
    return false;
  pid = p;
  epoch = e;
  return true;
}

}  // namespace

ReplayClient::ReplayClient(const os::Vfs& world, std::string session_id, Transport& out,
                           ReplayOptions options)
    : world_(world), session_id_(std::move(session_id)), out_(out), options_(options) {}

bool ReplayClient::send(FrameType type, const std::string& payload) {
  if (disconnected_) return false;
  if (options_.fault != nullptr &&
      options_.fault->should_kill(support::FaultComponent::kClient, frames_sent_)) {
    disconnected_ = true;
    return false;
  }
  support::TraceContext trace = options_.trace;
  trace.parent_span = frames_sent_;  // which client hop this frame was
  if (!out_.send(encode_frame(type, payload, trace))) {
    disconnected_ = true;
    return false;
  }
  ++frames_sent_;
  return true;
}

bool ReplayClient::send_file(const std::string& path) {
  const auto bytes = world_.read(path);
  if (!bytes) return true;  // nothing recorded under that path
  return send(FrameType::kFile, path + "\n" + *bytes);
}

bool ReplayClient::announce_maps(const std::map<hw::Pid, std::uint64_t>& needed) {
  for (VmInfo& vm : vms_) {
    const auto it = needed.find(vm.pid);
    if (it == needed.end()) continue;
    while (!vm.pending_maps.empty() && vm.pending_maps.front().first <= it->second) {
      if (!send_file(vm.pending_maps.front().second)) return false;
      vm.pending_maps.erase(vm.pending_maps.begin());
    }
  }
  return true;
}

bool ReplayClient::stream_event_log(hw::EventKind event) {
  const auto raw = world_.read(core::SampleLogWriter::path_for("samples", event));
  if (!raw) return true;  // event not recorded

  const std::string header_prefix =
      "batch " + std::string(hw::to_string(event)) + " ";
  std::string body;
  std::size_t body_lines = 0;
  std::map<hw::Pid, std::uint64_t> needed;  // per-pid max epoch in this batch

  auto flush = [&]() -> bool {
    if (body_lines == 0) return true;
    if (!announce_maps(needed)) return false;
    if (!send(FrameType::kSampleBatch,
              header_prefix + std::to_string(body_lines) + "\n" + body))
      return false;
    ++batches_sent_;
    records_sent_ += body_lines;
    body.clear();
    body_lines = 0;
    needed.clear();
    return true;
  };

  std::istringstream in(*raw);
  std::string line;
  while (std::getline(in, line)) {
    hw::Pid pid = 0;
    std::uint64_t epoch = 0;
    if (peek_pid_epoch(line, pid, epoch)) {
      auto [it, inserted] = needed.emplace(pid, epoch);
      if (!inserted) it->second = std::max(it->second, epoch);
    }
    body += line;
    body += '\n';
    if (++body_lines >= options_.batch_records && !flush()) return false;
  }
  return flush();
}

bool ReplayClient::run() {
  if (!send(FrameType::kHello, session_id_)) return false;
  if (!send(FrameType::kOpenSession, session_id_)) return false;

  const auto manifest = world_.read(kManifestPath);
  if (manifest) {
    // Registrations first (live table), then the manifest itself (the
    // resolver world), then the boot maps it references.
    std::istringstream in(*manifest);
    std::string line;
    std::vector<std::string> boot_maps;
    while (std::getline(in, line)) {
      if (line.rfind("reg ", 0) != 0) continue;
      if (!send(FrameType::kRegisterVm, line)) return false;

      std::istringstream ls(line);
      std::string tag, lo, hi, boot, map_path, jit_dir;
      std::uint64_t boot_size;
      VmInfo vm;
      ls >> tag >> vm.pid >> lo >> hi >> boot >> boot_size >> map_path >> jit_dir;
      if (ls.fail()) continue;
      if (map_path != "-") boot_maps.push_back(map_path);
      if (jit_dir != "-") {
        vm.jit_map_dir = jit_dir;
        const std::string prefix = jit_dir + "/" + std::to_string(vm.pid) + "/";
        for (const std::string& path : world_.list(prefix)) {
          const auto epoch = core::CodeMapFile::epoch_from_path(path);
          if (epoch) vm.pending_maps.emplace_back(*epoch, path);
        }
      }
      // Optional 8th token (absent in old manifests): the object-map dir.
      // Object maps announce on the same epoch schedule as code maps — a
      // batch referencing epoch E needs both maps of E on the server first.
      std::string obj_dir;
      ls >> obj_dir;
      if (!obj_dir.empty() && obj_dir != "-") {
        const std::string prefix = obj_dir + "/" + std::to_string(vm.pid) + "/";
        for (const std::string& path : world_.list(prefix)) {
          const auto epoch = memprof::ObjectMapFile::epoch_from_path(path);
          if (epoch) vm.pending_maps.emplace_back(*epoch, path);
        }
      }
      std::sort(vm.pending_maps.begin(), vm.pending_maps.end());
      vms_.push_back(std::move(vm));
    }
    if (!send_file(kManifestPath)) return false;
    for (const std::string& path : boot_maps)
      if (!send_file(path)) return false;
  }

  for (hw::EventKind event : hw::kAllEventKinds)
    if (!stream_event_log(event)) return false;

  // Trailing maps no sample forced out (e.g. the final epoch's object map,
  // which may carry only death records) still belong to the session: flush
  // them so the server's world matches the recorded one exactly.
  for (VmInfo& vm : vms_)
    for (const auto& [epoch, path] : vm.pending_maps)
      if (!send_file(path)) return false;

  return send(FrameType::kEndStream, "");
}

}  // namespace viprof::service
