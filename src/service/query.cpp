#include "service/query.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "support/format.hpp"

namespace viprof::service {

namespace {

constexpr const char* kHeader = "viprof-snapshot v1";

std::optional<core::SampleDomain> domain_from(const std::string& name) {
  using D = core::SampleDomain;
  for (D d : {D::kHypervisor, D::kKernel, D::kImage, D::kBoot, D::kJit, D::kAnon,
              D::kObject, D::kUnknown}) {
    if (name == core::to_string(d)) return d;
  }
  return std::nullopt;
}

void append_counts_and_names(std::string& out, const core::ProfileRow& row) {
  for (std::size_t e = 0; e < hw::kEventKindCount; ++e)
    out += " " + std::to_string(row.counts[e]);
  out += "\t" + row.image + "\t" + row.symbol + "\n";
}

/// "<domain> c0 .. cN\t<image>\t<symbol>" (one count per event kind) → one
/// add() per event with count.
bool parse_row_into(const std::string& fields, core::Profile& profile) {
  const std::size_t tab1 = fields.find('\t');
  if (tab1 == std::string::npos) return false;
  const std::size_t tab2 = fields.find('\t', tab1 + 1);
  if (tab2 == std::string::npos) return false;

  std::uint64_t counts[hw::kEventKindCount] = {};
  char domain_buf[16] = {};
  const std::string head = fields.substr(0, tab1);
  int consumed = 0;
  if (std::sscanf(head.c_str(), "%15s%n", domain_buf, &consumed) != 1) return false;
  const char* p = head.c_str() + consumed;
  for (std::size_t e = 0; e < hw::kEventKindCount; ++e) {
    char* endp = nullptr;
    const unsigned long long v = std::strtoull(p, &endp, 10);
    if (endp == p) return false;  // fewer counts than event kinds: damage
    counts[e] = v;
    p = endp;
  }

  const auto domain = domain_from(domain_buf);
  if (!domain) return false;

  core::Resolution res;
  res.image = fields.substr(tab1 + 1, tab2 - tab1 - 1);
  res.symbol = fields.substr(tab2 + 1);
  res.domain = *domain;
  bool added = false;
  for (std::size_t e = 0; e < hw::kEventKindCount; ++e) {
    if (counts[e] == 0) continue;
    profile.add(static_cast<hw::EventKind>(e), res, counts[e]);
    added = true;
  }
  // A zero-count row cannot exist in a real profile; treat it as damage.
  return added;
}

}  // namespace

std::string ServiceSnapshot::serialize() const {
  std::string out = std::string(kHeader) + "\n";
  for (const SessionSnapshot& s : sessions) {
    out += "session " + s.id + "\n";
    for (const core::ProfileRow& row : s.profile.rows()) {
      out += "row " + std::string(core::to_string(row.domain));
      append_counts_and_names(out, row);
    }
    for (const auto& [epoch, profile] : s.epochs) {
      for (const core::ProfileRow& row : profile.rows()) {
        out += "erow " + std::to_string(epoch) + " " +
               std::string(core::to_string(row.domain));
        append_counts_and_names(out, row);
      }
    }
    out += "end\n";
  }
  char crc[16];
  std::snprintf(crc, sizeof crc, "crc %08x\n", support::fnv1a(out));
  out += crc;
  return out;
}

std::optional<ServiceSnapshot> ServiceSnapshot::parse(const std::string& text) {
  // Split off and verify the trailer first: everything before the final
  // "crc " line is checksummed.
  const std::size_t crc_at = text.rfind("crc ");
  if (crc_at == std::string::npos || (crc_at != 0 && text[crc_at - 1] != '\n'))
    return std::nullopt;
  unsigned crc_read = 0;
  if (std::sscanf(text.c_str() + crc_at + 4, "%8x", &crc_read) != 1) return std::nullopt;
  if (support::fnv1a(text.data(), crc_at) != crc_read) return std::nullopt;

  ServiceSnapshot snap;
  SessionSnapshot* current = nullptr;
  std::size_t pos = 0;
  bool saw_header = false;
  while (pos < crc_at) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos || nl > crc_at) nl = crc_at;
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kHeader) return std::nullopt;
      saw_header = true;
    } else if (line.rfind("session ", 0) == 0) {
      snap.sessions.push_back(SessionSnapshot{});
      current = &snap.sessions.back();
      current->id = line.substr(8);
    } else if (line == "end") {
      current = nullptr;
    } else if (line.rfind("row ", 0) == 0) {
      if (current == nullptr) return std::nullopt;
      if (!parse_row_into(line.substr(4), current->profile)) return std::nullopt;
    } else if (line.rfind("erow ", 0) == 0) {
      if (current == nullptr) return std::nullopt;
      char* end = nullptr;
      const unsigned long long epoch = std::strtoull(line.c_str() + 5, &end, 10);
      if (end == nullptr || *end != ' ') return std::nullopt;
      const std::string rest(end + 1);
      if (!parse_row_into(rest, current->epochs[epoch])) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header) return std::nullopt;
  return snap;
}

const SessionSnapshot* ServiceSnapshot::find(const std::string& id) const {
  for (const SessionSnapshot& s : sessions)
    if (s.id == id) return &s;
  return nullptr;
}

core::Profile ServiceSnapshot::merged() const {
  core::Profile out;
  for (const SessionSnapshot& s : sessions) out.merge(s.profile);
  return out;
}

core::Profile profile_since(const SessionSnapshot& s, std::uint64_t since) {
  core::Profile out;
  for (const auto& [epoch, profile] : s.epochs)
    if (epoch >= since) out.merge(profile);
  return out;
}

std::string render_sessions(const ServiceSnapshot& snap) {
  support::TextTable table({"Session", "Rows", "Time", "Dmiss"});
  for (const SessionSnapshot& s : snap.sessions) {
    table.add_row({s.id, std::to_string(s.profile.row_count()),
                   std::to_string(s.profile.total(hw::EventKind::kGlobalPowerEvents)),
                   std::to_string(s.profile.total(hw::EventKind::kBsqCacheReference))});
  }
  return table.render();
}

std::string render_diff(const ServiceSnapshot& before, const ServiceSnapshot& after,
                        const std::string& session, hw::EventKind event,
                        std::size_t top_n) {
  core::Profile a, b;
  if (session.empty()) {
    a = before.merged();
    b = after.merged();
  } else {
    if (const SessionSnapshot* s = before.find(session)) a = s->profile;
    if (const SessionSnapshot* s = after.find(session)) b = s->profile;
  }

  return core::render_diff(a, b, event, top_n);
}

}  // namespace viprof::service
