// Deterministic recorded multi-VM session for service tests and benches.
//
// record_scenario() builds a machine with `vms` managed runtimes (each
// with its own heap, registration and churning epoch code maps, sharing
// one boot image), logs per-event samples through the crash-consistent
// sample log, and archives the resolution world — leaving the machine's
// VFS in exactly the layout offline viprof_report consumes:
//
//   archive/manifest
//   RVM.map
//   jit_maps/<pid>/map.<epoch>
//   samples/<EVENT>.samples
//
// offline_render() then runs the viprof_report aggregation over such a
// world: it is the byte-identity oracle the online server is checked
// against.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/registration.hpp"
#include "jvm/boot_image.hpp"
#include "os/machine.hpp"

namespace viprof::service {

struct ScenarioConfig {
  std::size_t vms = 2;
  std::size_t samples_per_event = 4000;
  std::uint64_t epochs = 16;      // code-map generations per VM
  std::uint64_t methods = 128;    // JIT method slots per VM heap
  std::uint64_t seed = 0x5e55;
};

struct RecordedScenario {
  os::Machine machine;
  core::RegistrationTable table;
  std::unique_ptr<jvm::BootImage> boot;
  std::vector<hw::Pid> pids;

  os::Vfs& vfs() { return machine.vfs(); }
  const os::Vfs& vfs() const { return machine.vfs(); }
};

std::unique_ptr<RecordedScenario> record_scenario(const ScenarioConfig& config = {});

/// The offline viprof_report aggregation (ArchiveResolver + resolve
/// pipeline at `threads` workers) rendered over `events` — the oracle the
/// online aggregate must match byte for byte.
std::string offline_render(const os::Vfs& world, const std::vector<hw::EventKind>& events,
                           std::size_t top, std::size_t threads = 1);

}  // namespace viprof::service
