// Snapshot serialisation and the offline half of the query API.
//
// The server can freeze its rolling aggregates into a line-based text
// snapshot ("viprof-snapshot v1") that viprof_query evaluates later —
// sessions, top-N, since-epoch and diffs between two snapshots — without
// the server running. The format is row-per-line with an FNV-1a trailer
// (the PR 1 discipline again: never trust unverified bytes), and field
// separation is tab for the name fields because image names contain
// spaces ("anon (range:...)").
//
//   viprof-snapshot v1
//   session <id>
//   row <domain> <c0> <c1> <c2> <c3> <c4>\t<image>\t<symbol>
//   erow <epoch> <domain> <c0..c4>\t<image>\t<symbol>
//   end
//   crc <8 hex digits>
//
// Row order is the profile's first-insertion order, so a profile rebuilt
// from its snapshot renders byte-identically to the live one.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/report.hpp"

namespace viprof::service {

struct SessionSnapshot {
  std::string id;
  core::Profile profile;  // merged over events in canonical order
  std::map<std::uint64_t, core::Profile> epochs;
};

struct ServiceSnapshot {
  std::vector<SessionSnapshot> sessions;  // session-id order

  std::string serialize() const;

  /// nullopt on any framing damage: bad header, bad checksum, or a line
  /// that does not parse.
  static std::optional<ServiceSnapshot> parse(const std::string& text);

  const SessionSnapshot* find(const std::string& id) const;

  /// All sessions' profiles merged, in session-id order.
  core::Profile merged() const;
};

/// Merge of `s`'s per-epoch profiles with epoch >= `since`.
core::Profile profile_since(const SessionSnapshot& s, std::uint64_t since);

/// One line per session: rows and per-event sample totals.
std::string render_sessions(const ServiceSnapshot& snap);

/// Count movement between two snapshots of `event`, biggest movers first.
/// `session` empty = all sessions merged.
std::string render_diff(const ServiceSnapshot& before, const ServiceSnapshot& after,
                        const std::string& session, hw::EventKind event,
                        std::size_t top_n);

}  // namespace viprof::service
