// The continuous-profiling server.
//
// A long-running process (simulated in-process here) that accepts many
// concurrent client connections, each streaming one profiling session:
// archive world files, VM registrations, and checksummed sample batches.
// Ingest is staged: the receiver (the client's own thread, via the
// loopback transport) verifies framing, decodes batches zero-copy into a
// recycled per-batch arena — serially per session, preserving the stream's
// sample order and sequence-number accounting — and enqueues them on the
// session's bounded queue; a shared ThreadPool resolves batches
// concurrently through the RCU-snapshot code-map cache and folds each into
// one of the session's aggregation stripes in whatever order workers
// finish. Order-recovering accumulators (DESIGN.md §14) make the online
// aggregate byte-identical to offline viprof_report over the same logs, at
// any thread count, stripe count and interleaving (DESIGN.md §10).
//
// Overload: with kBackpressure a full queue blocks the sender (slow server
// slows its clients); with kDropNewest the batch is dropped and *counted*
// — never silently.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/code_map_cache.hpp"
#include "service/session.hpp"
#include "service/transport.hpp"
#include "service/wire.hpp"
#include "support/arena.hpp"
#include "support/fault.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace viprof::store {
class ProfileStore;
}

namespace viprof::service {

enum class OverloadPolicy : std::uint8_t {
  kBackpressure,  // block the sender until the queue has room
  kDropNewest,    // refuse the batch, count the drop
};

struct ServerConfig {
  std::size_t ingest_threads = 2;
  std::size_t queue_capacity = 64;  // batches buffered per session
  OverloadPolicy policy = OverloadPolicy::kBackpressure;
  std::size_t code_map_cache_capacity = 8;
  /// Aggregation stripes per session (DESIGN.md §14); 0 = one per ingest
  /// thread. Output is byte-identical at any value.
  std::size_t agg_stripes = 0;
  support::FaultInjector* fault = nullptr;  // wire + queue fault points
};

class ProfileServer;

/// Client end of a loopback connection. send() dispatches frames into the
/// server on the calling thread; server replies are polled via
/// next_reply(). One connection serves one session at a time.
class ServerConnection final : public Transport {
 public:
  ~ServerConnection() override { close(); }

  bool send(const std::string& bytes) override;
  void close() override;
  bool is_closed() const override { return closed_; }

  /// Oldest unread kReply/kError frame from the server, if any.
  std::optional<Frame> next_reply();

  /// Wire damage observed by this connection's decoder.
  std::uint64_t torn_frames() const { return decoder_.torn_frames(); }
  std::uint64_t skipped_bytes() const { return decoder_.skipped_bytes(); }

 private:
  friend class ProfileServer;
  ServerConnection(ProfileServer* server, std::string name)
      : server_(server), name_(std::move(name)) {}

  void deliver(const char* data, std::size_t size);

  ProfileServer* server_;
  const std::string name_;
  std::unique_ptr<LoopbackTransport> wire_;
  FrameDecoder decoder_;
  std::uint64_t reported_torn_ = 0;  // decoder torn count already counted
  std::shared_ptr<ServerSession> session_;
  std::mutex reply_mu_;
  std::vector<Frame> replies_;
  std::size_t reply_read_ = 0;
  bool closed_ = false;
};

class ProfileServer {
 public:
  explicit ProfileServer(const ServerConfig& config = {});
  ~ProfileServer();

  ProfileServer(const ProfileServer&) = delete;
  ProfileServer& operator=(const ProfileServer&) = delete;

  /// Opens a loopback connection named `client_name` (fault path
  /// "wire/<client_name>").
  std::unique_ptr<ServerConnection> connect(const std::string& client_name);

  /// Blocks until every enqueued batch has been resolved and applied.
  void drain();

  /// Online query API; the same strings arrive as kQuery frames.
  ///   sessions
  ///   top N [--session S] [--event time|dmiss]
  ///   since-epoch K [--session S] [--top N]
  ///   arcs N [--session S]
  ///   snapshot
  ///   stats [--json]       — live telemetry snapshot (text table / JSON)
  ///   trace                — the server's span ring as Chrome trace JSON
  std::string query(const std::string& text);

  /// viprof-snapshot v1 text over all sessions (see service/query.hpp).
  std::string snapshot();

  /// Writes <dir>/<session>/profile.txt, <dir>/service.snap,
  /// <dir>/metrics.json and <dir>/trace.json (the server's own span ring,
  /// host-clock ns at cycles_per_us = 1000). False when there are no
  /// sessions to export. Each file is published atomically (temp +
  /// rename), so a crash mid-export never clobbers a previous snapshot.
  bool export_state(const std::string& dir, std::size_t top = 20);

  /// Flushes each session's delta since the last flush into `store` as one
  /// interval profile at tick [tick, tick]. Sessions are visited in id
  /// order; merging a session's flush intervals in tick order reproduces
  /// its full profile exactly (DESIGN.md §11). Returns intervals ingested.
  std::size_t flush_to_store(store::ProfileStore& store, std::uint64_t tick);

  /// Flushes one session's delta (same semantics as flush_to_store, which
  /// is a loop over this). The fleet router flushes per session at its
  /// terminal attempt so a shard partition only ever holds completed work.
  /// Returns intervals ingested (0 when the delta is empty or `id` is
  /// unknown).
  std::size_t flush_session_to_store(const std::string& id,
                                     store::ProfileStore& store,
                                     std::uint64_t tick);

  /// Discards one session entirely — in-flight batches, stats, profile.
  /// The fleet router calls this when it circuit-breaks a shard mid-stream:
  /// the partial session is abandoned here and re-streamed from scratch to
  /// the ring successor, so nothing of the aborted attempt can be counted
  /// twice. Completed sessions on this server are untouched. False when
  /// `id` is unknown.
  bool drop_session(const std::string& id);

  std::vector<std::string> session_ids() const;
  std::shared_ptr<ServerSession> session(const std::string& id) const;

  /// Rendered top-`top` report of one session over `events` — the
  /// byte-identity anchor against offline viprof_report.
  std::string session_report(const std::string& id, std::size_t top,
                             const std::vector<hw::EventKind>& events);

  support::Telemetry& telemetry() { return telemetry_; }
  CodeMapCache& code_map_cache() { return cache_; }
  const ServerConfig& config() const { return config_; }

 private:
  friend class ServerConnection;

  void dispatch(ServerConnection& conn, const FrameView& frame);
  void handle_batch(ServerConnection& conn, std::string_view payload);
  void process_one(std::shared_ptr<ServerSession> session);
  std::shared_ptr<ServerSession> open_session(const std::string& id);
  void reply(ServerConnection& conn, FrameType type, std::string text);

  /// Per-batch arena recycling: batches decode into a rented arena and
  /// return it (reset, blocks kept) after apply, so steady-state ingest
  /// allocates no per-frame heap storage.
  std::unique_ptr<support::Arena> rent_arena();
  void recycle_arena(std::unique_ptr<support::Arena> arena);

  ServerConfig config_;
  support::Telemetry telemetry_;
  CodeMapCache cache_;
  std::mutex arena_mu_;
  std::vector<std::unique_ptr<support::Arena>> arena_pool_;
  // Reader-heavy (every query and flush walks the session table) and a
  // contention suspect: shared for lookups, exclusive for open/drop.
  mutable support::TracedSharedMutex sessions_mu_{"service.sessions"};
  std::map<std::string, std::shared_ptr<ServerSession>> sessions_;
  // The pool is declared last so its destructor (which joins workers that
  // may still touch sessions/cache/telemetry) runs first.
  support::ThreadPool pool_;
};

}  // namespace viprof::service
